package leaserelease

import "testing"

// TestFacadeQuickstart runs the doc-comment quickstart through the public
// façade only.
func TestFacadeQuickstart(t *testing.T) {
	cfg := DefaultConfig(4)
	m := New(cfg)
	s := NewStack(m.Direct(), StackOptions{Lease: 20000})
	for i := 0; i < 4; i++ {
		m.Spawn(0, func(c *Ctx) {
			for {
				s.Push(c, 1)
				s.Pop(c)
			}
		})
	}
	if err := m.Run(200_000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	st := m.Stats()
	if st.Leases == 0 || st.VoluntaryReleases == 0 {
		t.Fatalf("lease machinery unused: %+v", st)
	}
	if st.Cycles != 200_000 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
}

func TestFacadeStructures(t *testing.T) {
	m := New(DefaultConfig(2))
	d := m.Direct()

	q := NewQueue(d, QueueOptions{Mode: QueueSingleLease, LeaseTime: 20000})
	pqf := NewPQFine(d)
	pqg := NewPQGlobal(d, 20000)
	hl := NewHarrisList(d)
	sk := NewLazySkipList(d)
	bst := NewBST(d)
	hm := NewHashMap(d, 16, 20000)
	mq := NewMultiQueue(d, 4, 64, MultiQueueOptions{LeaseTime: 20000})
	tl := NewTL2(d, 10, 20000)
	tl.Mode = TL2HWMulti

	var ok [8]bool
	m.Spawn(0, func(c *Ctx) {
		q.Enqueue(c, 7)
		v, found := q.Dequeue(c)
		ok[0] = found && v == 7

		pqf.Insert(c, 5)
		v, found = pqf.DeleteMin(c)
		ok[1] = found && v == 5

		pqg.Insert(c, 9)
		v, found = pqg.DeleteMin(c)
		ok[2] = found && v == 9

		ok[3] = hl.Insert(c, 3) && hl.Contains(c, 3) && hl.Remove(c, 3)
		ok[4] = sk.Insert(c, 3) && sk.Contains(c, 3) && sk.Remove(c, 3)
		ok[5] = bst.Insert(c, 3) && bst.Contains(c, 3) && bst.Delete(c, 3)
		hm.Put(c, 3, 33)
		got, found := hm.Get(c, 3)
		ok[6] = found && got == 33

		mq.Insert(c, 11)
		v, found = mq.DeleteMin(c)
		ok[7] = found && v == 11

		tl.UpdatePair(c, 0, 1, 2)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, o := range ok {
		if !o {
			t.Fatalf("facade structure %d misbehaved", i)
		}
	}
	if tl.Read(d, 0) != 2 || tl.Read(d, 1) != 2 {
		t.Fatal("TL2 transaction did not commit")
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 15 {
		t.Fatalf("registry has %d experiments, want >= 15", len(exps))
	}
	if _, ok := FindExperiment("fig5-pagerank"); !ok {
		t.Fatal("fig5-pagerank missing")
	}
}

func TestFacadeLocksAndBarrier(t *testing.T) {
	m := New(DefaultConfig(4))
	d := m.Direct()
	lk := NewLeasedLock(NewTTSLock(d), 20000)
	bar := NewBarrier(d, 4)
	ctr := d.Alloc(8)
	for i := 0; i < 4; i++ {
		m.Spawn(0, func(c *Ctx) {
			h := bar.NewHandle()
			for n := 0; n < 25; n++ {
				lk.Lock(c)
				c.Store(ctr, c.Load(ctr)+1)
				lk.Unlock(c)
			}
			bar.Wait(c, h)
			if c.Load(ctr) != 100 {
				t.Errorf("after barrier counter = %d, want 100", c.Load(ctr))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
}
