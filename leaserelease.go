// Package leaserelease is a full reimplementation and reproduction of
// "Lease/Release: Architectural Support for Scaling Contended Data
// Structures" (Haider, Hasenplaugh, Alistarh — PPoPP 2016).
//
// It bundles, in pure Go with only the standard library:
//
//   - a deterministic cycle-level multicore simulator (Graphite's role in
//     the paper) with private L1 caches and a directory-based MSI
//     coherence protocol using per-line FIFO request queues;
//   - the Lease/Release mechanism itself: per-core lease tables, bounded
//     single-line leases, hardware MultiLease with globally sorted
//     acquisition, and the software MultiLease emulation;
//   - the paper's data structure suite implemented against simulated
//     memory (Treiber stack, Michael–Scott queue, Lotan–Shavit priority
//     queues, Harris list, lock-based skiplist/BST/hash table, spin-lock
//     family, MultiQueues, a TL2-style STM, and a lock-based Pagerank);
//   - a benchmark harness regenerating every table and figure in the
//     paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// This root package is the public façade: it re-exports the simulator,
// the instruction-set surface (API/Ctx), and the data structure
// constructors, so a user can reproduce the paper's headline experiment
// in a few lines:
//
//	cfg := leaserelease.DefaultConfig(8)
//	m := leaserelease.New(cfg)
//	s := leaserelease.NewStack(m.Direct(), leaserelease.StackOptions{Lease: 20000})
//	for i := 0; i < 8; i++ {
//		m.Spawn(0, func(c *leaserelease.Ctx) {
//			for { s.Push(c, 1); s.Pop(c) }
//		})
//	}
//	m.Run(1_000_000)
//	m.Stop()
//	fmt.Println(m.Stats())
//
// See examples/ for runnable programs and cmd/leasebench for the full
// evaluation driver.
package leaserelease

import (
	"leaserelease/internal/apps/pagerank"
	"leaserelease/internal/bench"
	"leaserelease/internal/ds"
	"leaserelease/internal/locks"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
	"leaserelease/internal/multiqueue"
	"leaserelease/internal/stm"
)

// Core simulator surface.
type (
	// Machine is a simulated multicore chip.
	Machine = machine.Machine
	// Ctx is a simulated thread's timed view of the machine.
	Ctx = machine.Ctx
	// Direct is the untimed setup accessor.
	Direct = machine.Direct
	// API is the instruction-set surface shared by Ctx and Direct.
	API = machine.API
	// Config describes a simulated machine (Table 1 defaults).
	Config = machine.Config
	// Stats is a snapshot of hardware event counters.
	Stats = machine.Stats
	// TraceEvent is one lease-mechanism event (see Machine.SetTracer).
	TraceEvent = machine.TraceEvent
	// Auto wraps a Ctx with §8-style automatic lease insertion.
	Auto = machine.Auto
	// Addr is a simulated memory address.
	Addr = mem.Addr
)

// New builds a simulated machine.
func New(cfg Config) *Machine { return machine.New(cfg) }

// DefaultConfig reproduces the paper's Table 1 system for the given core
// count (1 GHz in-order cores, 32 KB 4-way L1, MSI directory,
// MAX_LEASE_TIME = 20K cycles, MAX_NUM_LEASES = 8).
func DefaultConfig(cores int) Config { return machine.DefaultConfig(cores) }

// Data structures (the paper's evaluation suite).
type (
	// Stack is Treiber's lock-free stack with the Figure 1 lease option.
	Stack = ds.Stack
	// StackOptions selects lease/backoff stack variants.
	StackOptions = ds.StackOptions
	// Queue is the Michael–Scott queue with the Algorithm 3 lease modes.
	Queue = ds.Queue
	// QueueOptions selects the queue variant.
	QueueOptions = ds.QueueOptions
	// PQ is the priority-queue interface of the Figure 3 benchmark.
	PQ = ds.PQ
	// HarrisList is Harris's lock-free sorted list set.
	HarrisList = ds.HarrisList
	// LazySkipList is the fine-grained-locking skiplist set.
	LazySkipList = ds.LazySkipList
	// BST is the leaf-oriented locked binary search tree set.
	BST = ds.BST
	// HashMap is the per-bucket-locked chained hash table.
	HashMap = ds.HashMap
	// EliminationStack is the elimination-backoff stack [39].
	EliminationStack = ds.EliminationStack
	// FCStack is the flat-combining stack [18].
	FCStack = ds.FCStack
	// FCQueue is the flat-combining FIFO queue [18].
	FCQueue = ds.FCQueue
	// LCRQ is the Morrison–Afek fetch&add ring queue [29].
	LCRQ = ds.LCRQ
	// LFSkipList is the lock-free skiplist set [15].
	LFSkipList = ds.LFSkipList
	// NMTree is the Natarajan–Mittal lock-free external BST [31].
	NMTree = ds.NMTree
	// MichaelHashMap is Michael's lock-free hash table [26].
	MichaelHashMap = ds.MichaelHashMap
	// Snapshot is the §5 cheap-snapshot primitive.
	Snapshot = ds.Snapshot
	// Backoff configures exponential backoff.
	Backoff = ds.Backoff
	// MultiQueue is the relaxed priority queue of Figure 4.
	MultiQueue = multiqueue.MultiQueue
	// MultiQueueOptions selects MultiQueue lease strategies.
	MultiQueueOptions = multiqueue.Options
	// TL2 is the TL2-lite transactional memory of Figures 4 and 5.
	TL2 = stm.TL2
	// Pagerank is the CRONO-style lock-based Pagerank of Figure 5.
	Pagerank = pagerank.Pagerank
	// PagerankConfig sizes a Pagerank run.
	PagerankConfig = pagerank.Config
)

// Queue lease modes (Algorithm 3 variants).
const (
	QueueNoLease     = ds.QueueNoLease
	QueueSingleLease = ds.QueueSingleLease
	QueueMultiLease  = ds.QueueMultiLease
)

// TL2 lease modes.
const (
	TL2NoLease     = stm.NoLease
	TL2HWMulti     = stm.HWMulti
	TL2SWMulti     = stm.SWMulti
	TL2SingleFirst = stm.SingleFirst
)

// NewStack allocates a Treiber stack.
func NewStack(x API, opt StackOptions) *Stack { return ds.NewStack(x, opt) }

// NewQueue allocates a Michael–Scott queue.
func NewQueue(x API, opt QueueOptions) *Queue { return ds.NewQueue(x, opt) }

// NewPQFine allocates the fine-grained-locking Lotan–Shavit queue.
func NewPQFine(x API) PQ { return ds.NewPQFine(x) }

// NewPQGlobal allocates the global-lock priority queue; leaseTime > 0
// applies the §6 leased try-lock pattern.
func NewPQGlobal(x API, leaseTime uint64) PQ { return ds.NewPQGlobal(x, leaseTime) }

// NewHarrisList allocates a Harris list.
func NewHarrisList(x API) *HarrisList { return ds.NewHarrisList(x) }

// NewLazySkipList allocates a lazy skiplist set.
func NewLazySkipList(x API) *LazySkipList { return ds.NewLazySkipList(x) }

// NewBST allocates a leaf-oriented BST set.
func NewBST(x API) *BST { return ds.NewBST(x) }

// NewHashMap allocates a striped-lock hash table.
func NewHashMap(x API, buckets int, leaseTime uint64) *HashMap {
	return ds.NewHashMap(x, buckets, leaseTime)
}

// NewEliminationStack allocates an elimination-backoff stack.
func NewEliminationStack(x API, width int) *EliminationStack {
	return ds.NewEliminationStack(x, width)
}

// NewFCStack allocates a flat-combining stack for `threads` participants.
func NewFCStack(x API, threads int) *FCStack {
	return ds.NewFCStack(x, threads)
}

// NewFCQueue allocates a flat-combining queue for `threads` participants.
func NewFCQueue(x API, threads int) *FCQueue {
	return ds.NewFCQueue(x, threads)
}

// NewLCRQ allocates a Morrison–Afek ring queue with the given segment
// size.
func NewLCRQ(x API, ring int) *LCRQ { return ds.NewLCRQ(x, ring) }

// NewLFSkipList allocates a lock-free skiplist set.
func NewLFSkipList(x API) *LFSkipList { return ds.NewLFSkipList(x) }

// NewNMTree allocates a lock-free external BST.
func NewNMTree(x API) *NMTree { return ds.NewNMTree(x) }

// NewMichaelHashMap allocates a lock-free hash table.
func NewMichaelHashMap(x API, buckets int, leaseTime uint64) *MichaelHashMap {
	return ds.NewMichaelHashMap(x, buckets, leaseTime)
}

// NewSnapshot builds a §5 snapshot object.
func NewSnapshot(addrs []Addr, leaseTime uint64) *Snapshot {
	return ds.NewSnapshot(addrs, leaseTime)
}

// NewMultiQueue allocates a MultiQueue over m heaps.
func NewMultiQueue(x API, m, capacity int, opt MultiQueueOptions) *MultiQueue {
	return multiqueue.New(x, m, capacity, opt)
}

// NewTL2 allocates a TL2-lite object set.
func NewTL2(x API, nObjs int, leaseTime uint64) *TL2 { return stm.New(x, nObjs, leaseTime) }

// NewPagerank builds the Figure 5 Pagerank application.
func NewPagerank(d *Direct, cfg PagerankConfig) *Pagerank { return pagerank.New(d, cfg) }

// Locks (the paper's spin-lock family and the §6 leased pattern).
type (
	// TryLock is the lock interface on simulated memory.
	TryLock = locks.TryLock
	// LeasedLock wraps a TryLock with the §6 lease pattern.
	LeasedLock = locks.Leased
	// Barrier is a sense-reversing barrier on simulated memory.
	Barrier = locks.Barrier
)

// NewTTSLock allocates a test&test&set lock.
func NewTTSLock(x API) TryLock { return locks.NewTTS(x) }

// NewTicketLock allocates a ticket lock with proportional backoff.
func NewTicketLock(x API) *locks.Ticket { return locks.NewTicket(x) }

// NewMCSLock allocates an MCS queue lock.
func NewMCSLock(x API) *locks.MCS { return locks.NewMCS(x) }

// NewCLHLock allocates a CLH queue lock.
func NewCLHLock(x API) *locks.CLH { return locks.NewCLH(x) }

// NewLeasedLock wraps a lock with the §6 lease-for-critical-section
// pattern.
func NewLeasedLock(inner TryLock, leaseTime uint64) *LeasedLock {
	return locks.NewLeased(inner, leaseTime)
}

// NewBarrier allocates a barrier for n participants.
func NewBarrier(x API, n int) *Barrier { return locks.NewBarrier(x, n) }

// Benchmarks: the experiment registry that regenerates the paper's tables
// and figures (see cmd/leasebench).
type (
	// Experiment regenerates one table or figure.
	Experiment = bench.Experiment
	// BenchParams controls sweep scale.
	BenchParams = bench.Params
	// BenchResult summarizes one measurement window.
	BenchResult = bench.Result
)

// NewAuto wraps a thread's Ctx with automatic lease insertion (§8 future
// work): it learns hot load→CAS lines and leases them transparently.
func NewAuto(c *Ctx, leaseTime uint64) *Auto { return machine.NewAuto(c, leaseTime) }

// Experiments lists every experiment, in the paper's order.
func Experiments() []Experiment { return bench.All() }

// FindExperiment looks an experiment up by id (e.g. "fig2").
func FindExperiment(id string) (Experiment, bool) { return bench.Find(id) }
