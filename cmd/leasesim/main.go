// Command leasesim runs configurable simulations and dumps full hardware
// counters — an explorer/debugger for the simulated machine.
//
// Usage:
//
//	leasesim -ds stack -threads 8 -lease -cycles 1000000
//	leasesim -ds counter -threads 16 -priority
//	leasesim -ds tl2 -threads 8 -multilease sw
//	leasesim -ds stack -threads 16 -lease -json -hotlines 5 -timeline t.json
//	leasesim -ds stack -threads 4,8,16 -lease -invariants -faults
//	leasesim -ds stack -threads 1,2,4,8,16,32 -lease -parallel 4
//	leasesim -ds counter -threads 8 -lease -protocol tardis -spans
//
// -protocol selects the coherence backend: the default directory MSI, or
// Tardis timestamp coherence (per-line wts/rts, silent reservation expiry
// instead of invalidations). All other flags compose with either backend.
//
// -threads accepts a comma-separated sweep; each count is one cell. Cells
// run on a host worker pool (-parallel, default GOMAXPROCS; each cell owns
// a private simulated machine) with stdout/stderr buffered per cell and
// emitted in sweep order, so output is byte-identical for any -parallel
// value. -shards additionally parallelizes the event kernel *inside* each
// cell with conservative time-windowed PDES (DESIGN.md §14): simulated
// procs are partitioned across host threads and synchronized at network-
// lookahead window boundaries. The axes compose — workers across cells,
// shards within a cell — and output stays byte-identical at any -shards
// value. Telemetry-enabled cells shard too: the bus buffers emissions per
// shard and the window coordinator merges them in canonical event order at
// every barrier (DESIGN.md §15), so histograms, spans, ledgers, and
// timelines are byte-identical at any shard count. Cells outside the
// parallel certificate — Tardis, fault injection, -invariants (whose
// checker must observe events synchronously) — silently use the sequential
// kernel; -json reports the reason in "shard_downgrade". A run that did
// shard reports the engine's self-observability counters (windows,
// barrier stalls, per-shard utilization) as "shard_stats" in -json, or as
// a text table with -shardstats.
// A failing cell (deadlock, panic, protocol/invariant violation) is
// reported on stderr with a machine state dump, the rest of the sweep
// still runs, and the exit status is 1; -strict instead stops emitting at
// the first failed cell. -invariants attaches the runtime invariant
// checker; -faults enables deterministic protocol-legal fault injection
// (seeded from -seed, so failures replay exactly). -preempt N deschedules
// cores at N permille of memory accesses for -preemptmin..-preemptmax
// cycles (leases keep expiring while the core sleeps); -preempttargeted
// restricts preemption to lease/write holders — the adversarial
// stalled-holder schedule. -controller enables the adaptive
// lease-duration controller (per-site exponential backoff of granted
// durations after involuntary releases).
//
// Every run records telemetry (latency/hold-time/queue histograms and the
// per-line contention profile). -spans additionally records per-coherence-
// transaction spans and reports the critical-path cycle accounting ("where
// the cycles went"); -ledger records the per-line lease-efficiency ledger
// (granted vs. used cycles, ops absorbed per lease, deferral inflicted)
// and prints its top-N tables; -json switches the report to machine-
// readable JSON (-compactbuckets shrinks histogram bucket arrays to
// [lo,count] pairs there);
// -timeline additionally writes a Chrome trace-event file loadable in
// chrome://tracing or https://ui.perfetto.dev showing each core's lease
// intervals — and, with spans, nested transaction slices with flow arrows —
// on the simulated timeline.
// -serve binds a host-side HTTP endpoint with live sweep introspection
// (/progress JSON, /metrics Prometheus text, /debug/vars expvar): per-cell
// progress, worker-pool occupancy, and simulated-cycles/s. It is safe
// alongside -parallel and never perturbs simulated timing.
// -cpuprofile/-memprofile capture pprof profiles of the host process.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"leaserelease/internal/bench"
	"leaserelease/internal/coherence"
	"leaserelease/internal/ds"
	"leaserelease/internal/faults"
	"leaserelease/internal/machine"
	"leaserelease/internal/multiqueue"
	"leaserelease/internal/sim"
	"leaserelease/internal/stm"
	"leaserelease/internal/telemetry"
)

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 64 {
			return nil, fmt.Errorf("bad thread count %q (want 1..64)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		dsName     = flag.String("ds", "stack", "data structure: stack|queue|pq|counter|multiqueue|tl2|harris|skiplist|bst|hash|lfskip|lfbst|lfhash")
		protocol   = flag.String("protocol", "msi", "coherence protocol backend: msi|tardis")
		threads    = flag.String("threads", "8", "thread/core count, or a comma-separated sweep (e.g. 4,8,16)")
		lease      = flag.Bool("lease", false, "enable the paper's lease placement")
		leaseTime  = flag.Uint64("leasetime", 20000, "lease duration in cycles")
		maxLease   = flag.Uint64("maxleasetime", 20000, "MAX_LEASE_TIME in cycles")
		cycles     = flag.Uint64("cycles", 1_000_000, "cycles to simulate")
		warm       = flag.Uint64("warm", 100_000, "warmup cycles excluded from the report")
		priority   = flag.Bool("priority", false, "regular requests break leases (§5)")
		mesi       = flag.Bool("mesi", false, "MESI exclusive-clean read fills (§8)")
		trace      = flag.Int("trace", 0, "print the first N lease-mechanism events")
		predictor  = flag.Bool("predictor", false, "enable the §5 speculative lease predictor")
		multi      = flag.String("multilease", "hw", "tl2 multilease flavor: hw|sw|single|off")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		jsonOut    = flag.Bool("json", false, "emit each run report as JSON on stdout")
		hotlines   = flag.Int("hotlines", 10, "rank the top-N contended cache lines (0 disables)")
		timeline   = flag.String("timeline", "", "write a Chrome trace-event timeline to this file")
		samples    = flag.Int("sample", 0, "sample N windowed Stats deltas as a time series")
		invariants = flag.Bool("invariants", false, "attach the runtime invariant checker (violations fail the run)")
		faultsOn   = flag.Bool("faults", false, "enable deterministic protocol-legal fault injection")
		preempt    = flag.Int("preempt", 0, "core-preemption probability in permille per memory access (0 disables)")
		preemptMin = flag.Uint64("preemptmin", 500, "minimum preemption duration in cycles")
		preemptMax = flag.Uint64("preemptmax", 40000, "maximum preemption duration in cycles")
		preemptTgt = flag.Bool("preempttargeted", false, "preempt only lease/write holders (adversarial stalled-holder schedule)")
		controller = flag.Bool("controller", false, "enable the adaptive lease-duration controller")
		strict     = flag.Bool("strict", false, "abort the sweep at the first failed cell")
		spans      = flag.Bool("spans", false, "trace coherence-transaction spans and report the cycle accounting")
		shardstats = flag.Bool("shardstats", false, "print the parallel kernel's self-observability table (windows, barrier stalls, per-shard utilization)")
		ledger     = flag.Bool("ledger", false, "account per-line lease efficiency (granted/used/wasted cycles, ops absorbed, deferral inflicted)")
		compactB   = flag.Bool("compactbuckets", false, "with -json, emit histogram buckets as compact [lo,count] pairs")
		serveAddr  = flag.String("serve", "", "serve live sweep introspection over HTTP on this address (e.g. :9090)")

		parallel = flag.Int("parallel", 0, "worker pool size for sweep cells (0 = GOMAXPROCS, 1 = serial)")
		shards   = flag.Int("shards", 1, "conservative-PDES shard count inside each cell's simulated machine (1 = sequential kernel; output is byte-identical at any value)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	threadList, err := parseThreads(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "leasesim: %v\n", err)
		os.Exit(2)
	}
	if !validDS(*dsName) {
		fmt.Fprintf(os.Stderr, "leasesim: unknown -ds %q (valid: %s)\n",
			*dsName, strings.Join(dsNames, ", "))
		os.Exit(2)
	}
	if !coherence.ValidProtocol(*protocol) {
		fmt.Fprintf(os.Stderr, "leasesim: unknown -protocol %q (valid: %s)\n",
			*protocol, strings.Join(coherence.Protocols(), ", "))
		os.Exit(2)
	}
	if *preempt < 0 || *preempt > 1000 {
		fmt.Fprintf(os.Stderr, "leasesim: -preempt %d out of range (want 0..1000 permille)\n", *preempt)
		os.Exit(2)
	}
	if *dsName == "tl2" && parseMulti(*multi) < 0 {
		fmt.Fprintf(os.Stderr, "leasesim: bad -multilease %q\n", *multi)
		os.Exit(2)
	}

	stopProfiles := startProfiles(*cpuprof, *memprof)
	pool := bench.NewPool(*parallel)
	if pool.Workers() > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr,
			"leasesim: warning: -parallel %d exceeds NumCPU=%d; host threads will timeshare and wall-clock gains flatten\n",
			pool.Workers(), runtime.NumCPU())
	}
	exit := func(code int) {
		pool.Close()
		stopProfiles()
		os.Exit(code)
	}

	var prog *bench.Progress // nil (inert) unless -serve is set
	if *serveAddr != "" {
		prog = bench.NewProgress()
		prog.SetPool(pool)
		addr, err := prog.Serve(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasesim: -serve: %v\n", err)
			exit(2)
		}
		fmt.Fprintf(os.Stderr, "leasesim: introspection on http://%s (/progress /metrics /debug/vars)\n", addr)
	}

	// Submit every cell first, then emit buffered results in sweep order:
	// output is byte-identical to a serial run for any -parallel value.
	type cellResult struct {
		out, errOut []byte
		ok          bool
	}
	futures := make([]*bench.Future[cellResult], len(threadList))
	for i, n := range threadList {
		tl := *timeline
		if tl != "" && len(threadList) > 1 {
			tl = fmt.Sprintf("%s.t%d", tl, n)
		}
		c := cell{
			ds: *dsName, protocol: *protocol, threads: n, lease: *lease, leaseTime: *leaseTime,
			maxLease: *maxLease, cycles: *cycles, warm: *warm,
			priority: *priority, mesi: *mesi, trace: *trace,
			predictor: *predictor, multi: *multi, seed: *seed,
			jsonOut: *jsonOut, hotlines: *hotlines, timeline: tl,
			samples: *samples, invariants: *invariants, faults: *faultsOn,
			preempt: *preempt, preemptMin: *preemptMin, preemptMax: *preemptMax,
			preemptTargeted: *preemptTgt, controller: *controller,
			spans: *spans, ledger: *ledger, compactBuckets: *compactB, shards: *shards,
			shardstats: *shardstats,
			progress:   prog.Cell(fmt.Sprintf("%s/t%d", *dsName, n)),
		}
		futures[i] = bench.Go(pool, func() cellResult {
			var out, errOut bytes.Buffer
			ok := runCell(c, &out, &errOut)
			return cellResult{out: out.Bytes(), errOut: errOut.Bytes(), ok: ok}
		})
	}

	anyFailed := false
	for _, fu := range futures {
		r := fu.Get()
		os.Stdout.Write(r.out)
		os.Stderr.Write(r.errOut)
		if !r.ok {
			anyFailed = true
			if *strict {
				exit(1)
			}
		}
	}
	if anyFailed {
		exit(1)
	}
	exit(0)
}

// cell is one sweep configuration (one thread count).
type cell struct {
	ds                  string
	protocol            string
	threads             int
	lease               bool
	leaseTime, maxLease uint64
	cycles, warm        uint64
	priority, mesi      bool
	trace               int
	predictor           bool
	multi               string
	seed                uint64
	jsonOut             bool
	hotlines            int
	timeline            string
	samples             int
	invariants, faults  bool
	shards              int
	preempt             int
	preemptMin          uint64
	preemptMax          uint64
	preemptTargeted     bool
	controller          bool
	spans               bool
	ledger              bool
	compactBuckets      bool
	shardstats          bool
	progress            *bench.CellProgress
}

// dsNames lists every -ds value runCell's switch dispatches on; the
// unknown-ds error prints it so a typo fails fast with the full menu.
var dsNames = []string{"stack", "queue", "pq", "counter", "multiqueue", "tl2",
	"harris", "skiplist", "bst", "hash", "lfskip", "lfbst", "lfhash"}

func validDS(name string) bool {
	for _, n := range dsNames {
		if name == n {
			return true
		}
	}
	return false
}

// parseMulti maps a -multilease flavor to an stm mode, or -1 if unknown.
func parseMulti(s string) stm.LeaseMode {
	switch s {
	case "hw":
		return stm.HWMulti
	case "sw":
		return stm.SWMulti
	case "single":
		return stm.SingleFirst
	case "off":
		return stm.NoLease
	}
	return -1
}

// runCell runs one configuration and reports it on out/errOut (buffered
// per cell so sweep cells can run concurrently); false means the run
// failed (the failure has been reported on errOut).
func runCell(c cell, out, errOut io.Writer) bool {
	cfg := machine.DefaultConfig(c.threads)
	cfg.Protocol = c.protocol
	cfg.Shards = c.shards
	cfg.Lease.MaxLeaseTime = c.maxLease
	cfg.RegularBreaksLease = c.priority
	cfg.MESI = c.mesi
	cfg.Predictor.Enable = c.predictor
	cfg.Seed = c.seed
	if c.faults {
		cfg.Faults = faults.DefaultConfig()
		cfg.Faults.Seed = c.seed
	}
	if c.preempt > 0 {
		cfg.Faults.Enabled = true
		cfg.Faults.Seed = c.seed
		cfg.Faults.PreemptPermille = c.preempt
		cfg.Faults.PreemptMin = c.preemptMin
		cfg.Faults.PreemptMax = c.preemptMax
		cfg.Faults.PreemptTargeted = c.preemptTargeted
	}
	cfg.Controller.Enable = c.controller

	lt := uint64(0)
	if c.lease {
		lt = c.leaseTime
	}

	var build func(d *machine.Direct) bench.OpFunc
	var aborts uint64
	switch c.ds {
	case "stack":
		build = bench.StackWorkload(ds.StackOptions{Lease: lt})
	case "queue":
		mode := ds.QueueNoLease
		if c.lease {
			mode = ds.QueueSingleLease
		}
		build = bench.QueueWorkload(mode)
	case "pq":
		kind := bench.PQFineLocking
		if c.lease {
			kind = bench.PQGlobalLeased
		}
		build = bench.PQWorkload(kind, 512)
	case "counter":
		kind := bench.CounterTTS
		if c.lease {
			kind = bench.CounterLeasedTTS
		}
		build = bench.CounterWorkload(kind)
	case "multiqueue":
		build = bench.MQWorkload(multiqueue.Options{LeaseTime: lt})
	case "tl2":
		build = bench.TL2Workload(parseMulti(c.multi), &aborts)
	case "harris":
		build = bench.SetWorkload(bench.SetHarris, lt, 1024, 512)
	case "skiplist":
		build = bench.SetWorkload(bench.SetLazySkip, lt, 1024, 512)
	case "bst":
		build = bench.SetWorkload(bench.SetBST, lt, 1024, 512)
	case "hash":
		build = bench.SetWorkload(bench.SetHash, lt, 1024, 512)
	case "lfskip":
		build = bench.SetWorkload(bench.SetLFSkip, lt, 1024, 512)
	case "lfbst":
		build = bench.SetWorkload(bench.SetNMTree, lt, 1024, 512)
	case "lfhash":
		build = bench.SetWorkload(bench.SetMichaelHash, lt, 1024, 512)
	}

	rec := telemetry.NewRecorder()
	if c.timeline != "" {
		rec.EnableTimeline(float64(cfg.ClockHz) / 1e6) // cycles per µs
	}
	if c.spans || c.timeline != "" {
		rec.EnableSpans() // with -timeline, spans become nested txn slices
	}
	if c.ledger {
		rec.EnableLedger()
	}
	c.progress.Start()
	defer c.progress.Done()
	var hooks []func(*machine.Machine)
	// Capture the machine so the report can record the sharding outcome
	// (effective kernel, downgrade reason, engine self-observability).
	var mach *machine.Machine
	hooks = append(hooks, func(m *machine.Machine) { mach = m })
	if c.trace > 0 {
		left := c.trace
		hooks = append(hooks, func(m *machine.Machine) {
			m.SetTracer(func(e machine.TraceEvent) {
				if left > 0 {
					fmt.Fprintln(out, e)
					left--
				}
			})
		})
	}
	r := bench.ThroughputOpts(cfg, c.threads, c.warm, c.cycles, build,
		bench.Options{Recorder: rec, Samples: c.samples, Hooks: hooks,
			Invariants: c.invariants, Progress: c.progress})

	// Sharding outcome: the downgrade reason when -shards was requested
	// but the run used the sequential kernel, and the engine's
	// self-observability snapshot when it actually sharded.
	var shardDowngrade string
	var shardStats *sim.EngineStats
	if mach != nil && c.shards > 1 {
		if _, reason := mach.EffectiveShards(); reason != "" {
			shardDowngrade = reason
		}
		shardStats = mach.ShardStats()
	}

	if r.Err != nil {
		fmt.Fprintf(errOut, "leasesim: ds=%s threads=%d seed=%d FAILED (%s): %s\n",
			c.ds, c.threads, c.seed, r.Err.Reason, r.Err.Detail)
		if r.Err.Dump != nil {
			fmt.Fprint(errOut, r.Err.Dump)
		}
		if c.jsonOut {
			rep := bench.BuildReport(c.ds, c.threads, c.lease, cfg, c.warm, c.cycles, r, nil, 0)
			rep.ShardDowngrade = shardDowngrade
			rep.ShardStats = shardStats
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
		}
		return false
	}

	if c.timeline != "" {
		f, err := os.Create(c.timeline)
		if err != nil {
			fmt.Fprintf(errOut, "leasesim: %v\n", err)
			return false
		}
		if err := rec.Timeline.Write(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(errOut, "leasesim: writing timeline: %v\n", err)
			return false
		}
	}

	if c.jsonOut {
		rep := bench.BuildReport(c.ds, c.threads, c.lease, cfg, c.warm, c.cycles, r, rec, c.hotlines)
		rep.Aborts = aborts
		rep.TimelineFile = c.timeline
		rep.ShardDowngrade = shardDowngrade
		rep.ShardStats = shardStats
		if c.compactBuckets {
			bench.CompactReportBuckets(&rep)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(errOut, "leasesim: %v\n", err)
			return false
		}
		return true
	}

	proto := ""
	if c.protocol != "" && c.protocol != "msi" {
		proto = " protocol=" + c.protocol
	}
	fmt.Fprintf(out, "ds=%s threads=%d lease=%v%s window=%d cycles\n", c.ds, c.threads, c.lease, proto, r.Cycles)
	fmt.Fprintf(out, "ops            %d\n", r.Ops)
	fmt.Fprintf(out, "throughput     %.3f Mops/s\n", r.MopsPerSec)
	fmt.Fprintf(out, "energy         %.3f nJ/op\n", r.NJPerOp)
	fmt.Fprintf(out, "L1 misses/op   %.3f\n", r.MissesPerOp)
	fmt.Fprintf(out, "messages/op    %.3f\n", r.MsgsPerOp)
	fmt.Fprintf(out, "CAS fails/op   %.3f\n", r.CASFailsPerOp)
	fmt.Fprintf(out, "fairness       %.3f\n", r.Fairness)
	if aborts > 0 {
		fmt.Fprintf(out, "tl2 aborts     %d (warm+window)\n", aborts)
	}

	fmt.Fprintln(out, "\nlatency distributions (cycles):")
	printDist := func(name string, s *telemetry.Summary) {
		if s == nil || s.Count == 0 {
			return
		}
		fmt.Fprintf(out, "%-14s %s\n", name, s)
	}
	printDist("op latency", r.OpLatency)
	printDist("lease hold", r.LeaseHold)
	printDist("probe defer", r.ProbeDefer)
	printDist("dir queue", r.DirQueue)

	if t := r.Txns; t != nil && t.Count > 0 {
		fmt.Fprintf(out, "\ntransaction cycle accounting (%d txns, %d deferred):\n",
			t.Count, t.Deferred)
		printPhases := func(total uint64, ph telemetry.TxnPhases) {
			for i, v := range ph.Vec() {
				pct := 0.0
				if total > 0 {
					pct = 100 * float64(v) / float64(total)
				}
				fmt.Fprintf(out, "  %-14s %14d cycles %6.1f%%\n",
					telemetry.PhaseName(telemetry.Phase(i), c.protocol), v, pct)
			}
		}
		fmt.Fprintf(out, "span critical path (%d cycles):\n", t.TotalCycles)
		printPhases(t.TotalCycles, t.Phases)
		if t.Ops > 0 && t.OpPhases != nil {
			fmt.Fprintf(out, "measured ops (%d ops, %d cycles; %d in txns, %d l1+compute):\n",
				t.Ops, t.OpCycles, t.OpTxnCycles, t.OpOtherCycles)
			printPhases(t.OpCycles, *t.OpPhases)
			pct := 0.0
			if t.OpCycles > 0 {
				pct = 100 * float64(t.OpOtherCycles) / float64(t.OpCycles)
			}
			fmt.Fprintf(out, "  %-14s %14d cycles %6.1f%%\n", "l1+compute", t.OpOtherCycles, pct)
		}
	}

	if c.hotlines > 0 && rec.Lines.Len() > 0 {
		fmt.Fprintf(out, "\nhot lines (top %d of %d):\n", c.hotlines, rec.Lines.Len())
		fmt.Fprintf(out, "%-12s %10s %10s %8s %10s %10s %8s %8s\n",
			"line", "score", "msgs", "invals", "deferred", "defcycles", "leases", "maxdirq")
		for _, h := range bench.HotLineRows(rec, c.hotlines) {
			fmt.Fprintf(out, "%-12s %10d %10d %8d %10d %10d %8d %8d\n",
				h.Line, h.Score, h.Msgs, h.Invals, h.Deferred, h.DeferredCycles, h.Leases, h.MaxQueue)
		}
	}

	if led := r.LeaseLedger; led != nil {
		fmt.Fprintf(out, "\nlease-efficiency ledger (%d leases closed, %d expired, %d open at end):\n",
			led.Leases, led.Expired, led.OpenAtEnd)
		fmt.Fprintf(out, "granted %d cycles, used %d (efficiency %.3f), unused %d, wasted %d\n",
			led.GrantedCycles, led.UsedCycles, led.Efficiency,
			led.UnusedCycles, led.UnusedCycles+led.ExpiredIdleCycles)
		fmt.Fprintf(out, "ops absorbed %d (%.1f per lease), deferral inflicted %d cycles over %d txns\n",
			led.OpsUnder, led.Amortization, led.DeferInflictedCycles, led.DeferredTxns)
		printLedgerRows := func(title string, rows []bench.LedgerRow) {
			if len(rows) == 0 {
				return
			}
			fmt.Fprintf(out, "%s:\n", title)
			fmt.Fprintf(out, "%-12s %8s %8s %10s %10s %10s %6s %9s %10s %10s\n",
				"line", "leases", "expired", "granted", "used", "wasted", "eff", "ops/lease", "deferinfl", "hotscore")
			for _, l := range rows {
				fmt.Fprintf(out, "%-12s %8d %8d %10d %10d %10d %6.3f %9.1f %10d %10d\n",
					l.Line, l.Leases, l.Expired, l.GrantedCycles, l.UsedCycles,
					l.WastedCycles, l.Efficiency, l.Amortization,
					l.DeferInflictedCycles, l.HotScore)
			}
		}
		printLedgerRows("top wasted cycles", bench.LedgerRows(led.TopWasted, rec))
		printLedgerRows("top deferral inflicted", bench.LedgerRows(led.TopDeferInflicted, rec))
	}

	if len(r.Series) > 0 {
		fmt.Fprintln(out, "\ntime series (per-window deltas):")
		fmt.Fprintf(out, "%12s %10s %10s %10s %10s\n", "end cycle", "ops", "msgs", "l1miss", "deferred")
		for _, s := range r.Series {
			fmt.Fprintf(out, "%12d %10d %10d %10d %10d\n",
				s.EndCycle, s.Ops, s.Stats.TotalMsgs(), s.Stats.L1Misses, s.Stats.DeferredProbes)
		}
	}

	if c.timeline != "" {
		fmt.Fprintf(out, "\ntimeline written to %s (open in chrome://tracing or ui.perfetto.dev)\n", c.timeline)
	}

	if c.shardstats {
		printShardStats(out, c.shards, shardDowngrade, shardStats)
	}

	fmt.Fprintln(out, "\nwindow counters:")
	fmt.Fprintln(out, r.Window)
	return true
}

// printShardStats renders the parallel kernel's self-observability table
// (-shardstats): which kernel the run used and, when sharded, the window,
// barrier, and per-shard utilization counters. All values derive from the
// deterministic simulation, so the table is byte-reproducible.
func printShardStats(out io.Writer, requested int, downgrade string, st *sim.EngineStats) {
	fmt.Fprintln(out, "\nshard stats:")
	if st == nil {
		switch {
		case requested <= 1:
			fmt.Fprintln(out, "  sequential kernel (-shards 1)")
		case downgrade != "":
			fmt.Fprintf(out, "  sequential kernel (-shards %d downgraded: %s)\n", requested, downgrade)
		default:
			fmt.Fprintf(out, "  sequential kernel (-shards %d)\n", requested)
		}
		return
	}
	fmt.Fprintf(out, "  shards %d, lookahead %d cycles\n", st.Shards, st.Lookahead)
	fmt.Fprintf(out, "  windows %d, window cycles %d, lookahead occupancy %.3f\n",
		st.Windows, st.WindowCycles, st.LookaheadOccupancy)
	fmt.Fprintf(out, "  barriers %d, barrier stall cycles %d\n", st.Barriers, st.BarrierStallCycles)
	fmt.Fprintf(out, "  events %d, cross-shard merged %d, imbalance %.3f\n",
		st.EventsTotal, st.CrossShardMerged, st.ImbalanceRatio)
	fmt.Fprintf(out, "  %5s %12s %12s %6s\n", "shard", "events", "activewin", "util")
	for i, sh := range st.PerShard {
		fmt.Fprintf(out, "  %5d %12d %12d %6.3f\n", i, sh.Events, sh.ActiveWindows, sh.Utilization)
	}
}

// startProfiles starts CPU profiling and arranges a heap profile at exit
// (shared flag behavior with cmd/leasebench). The returned func must run
// before the process exits.
func startProfiles(cpu, mem string) func() {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasesim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "leasesim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "leasesim: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "leasesim: -memprofile: %v\n", err)
			}
			f.Close()
		}
	}
}
