// Command leasesim runs a single configurable simulation and dumps full
// hardware counters — an explorer/debugger for the simulated machine.
//
// Usage:
//
//	leasesim -ds stack -threads 8 -lease -cycles 1000000
//	leasesim -ds counter -threads 16 -priority
//	leasesim -ds tl2 -threads 8 -multilease sw
//	leasesim -ds stack -threads 16 -lease -json -hotlines 5 -timeline t.json
//
// Every run records telemetry (latency/hold-time/queue histograms and the
// per-line contention profile). -json switches the report to machine-
// readable JSON; -timeline additionally writes a Chrome trace-event file
// loadable in chrome://tracing or https://ui.perfetto.dev showing each
// core's lease intervals on the simulated timeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"leaserelease/internal/bench"
	"leaserelease/internal/ds"
	"leaserelease/internal/machine"
	"leaserelease/internal/multiqueue"
	"leaserelease/internal/stm"
	"leaserelease/internal/telemetry"
)

func main() {
	var (
		dsName    = flag.String("ds", "stack", "data structure: stack|queue|pq|counter|multiqueue|tl2|harris|skiplist|bst|hash|lfskip|lfbst|lfhash")
		threads   = flag.Int("threads", 8, "thread/core count (1..64)")
		lease     = flag.Bool("lease", false, "enable the paper's lease placement")
		leaseTime = flag.Uint64("leasetime", 20000, "lease duration in cycles")
		maxLease  = flag.Uint64("maxleasetime", 20000, "MAX_LEASE_TIME in cycles")
		cycles    = flag.Uint64("cycles", 1_000_000, "cycles to simulate")
		warm      = flag.Uint64("warm", 100_000, "warmup cycles excluded from the report")
		priority  = flag.Bool("priority", false, "regular requests break leases (§5)")
		mesi      = flag.Bool("mesi", false, "MESI exclusive-clean read fills (§8)")
		trace     = flag.Int("trace", 0, "print the first N lease-mechanism events")
		predictor = flag.Bool("predictor", false, "enable the §5 speculative lease predictor")
		multi     = flag.String("multilease", "hw", "tl2 multilease flavor: hw|sw|single|off")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		jsonOut   = flag.Bool("json", false, "emit the run report as JSON on stdout")
		hotlines  = flag.Int("hotlines", 10, "rank the top-N contended cache lines (0 disables)")
		timeline  = flag.String("timeline", "", "write a Chrome trace-event timeline to this file")
		samples   = flag.Int("sample", 0, "sample N windowed Stats deltas as a time series")
	)
	flag.Parse()

	cfg := machine.DefaultConfig(*threads)
	cfg.Lease.MaxLeaseTime = *maxLease
	cfg.RegularBreaksLease = *priority
	cfg.MESI = *mesi
	cfg.Predictor.Enable = *predictor
	cfg.Seed = *seed

	lt := uint64(0)
	if *lease {
		lt = *leaseTime
	}

	var build func(d *machine.Direct) bench.OpFunc
	var aborts uint64
	switch *dsName {
	case "stack":
		build = bench.StackWorkload(ds.StackOptions{Lease: lt})
	case "queue":
		mode := ds.QueueNoLease
		if *lease {
			mode = ds.QueueSingleLease
		}
		build = bench.QueueWorkload(mode)
	case "pq":
		kind := bench.PQFineLocking
		if *lease {
			kind = bench.PQGlobalLeased
		}
		build = bench.PQWorkload(kind, 512)
	case "counter":
		kind := bench.CounterTTS
		if *lease {
			kind = bench.CounterLeasedTTS
		}
		build = bench.CounterWorkload(kind)
	case "multiqueue":
		build = bench.MQWorkload(multiqueue.Options{LeaseTime: lt})
	case "tl2":
		mode := stm.NoLease
		switch *multi {
		case "hw":
			mode = stm.HWMulti
		case "sw":
			mode = stm.SWMulti
		case "single":
			mode = stm.SingleFirst
		case "off":
			mode = stm.NoLease
		default:
			fmt.Fprintf(os.Stderr, "leasesim: bad -multilease %q\n", *multi)
			os.Exit(2)
		}
		build = bench.TL2Workload(mode, &aborts)
	case "harris":
		build = bench.SetWorkload(bench.SetHarris, lt, 1024, 512)
	case "skiplist":
		build = bench.SetWorkload(bench.SetLazySkip, lt, 1024, 512)
	case "bst":
		build = bench.SetWorkload(bench.SetBST, lt, 1024, 512)
	case "hash":
		build = bench.SetWorkload(bench.SetHash, lt, 1024, 512)
	case "lfskip":
		build = bench.SetWorkload(bench.SetLFSkip, lt, 1024, 512)
	case "lfbst":
		build = bench.SetWorkload(bench.SetNMTree, lt, 1024, 512)
	case "lfhash":
		build = bench.SetWorkload(bench.SetMichaelHash, lt, 1024, 512)
	default:
		fmt.Fprintf(os.Stderr, "leasesim: unknown -ds %q\n", *dsName)
		os.Exit(2)
	}

	rec := telemetry.NewRecorder()
	if *timeline != "" {
		rec.EnableTimeline(float64(cfg.ClockHz) / 1e6) // cycles per µs
	}
	var hooks []func(*machine.Machine)
	if *trace > 0 {
		left := *trace
		hooks = append(hooks, func(m *machine.Machine) {
			m.SetTracer(func(e machine.TraceEvent) {
				if left > 0 {
					fmt.Println(e)
					left--
				}
			})
		})
	}
	r := bench.ThroughputOpts(cfg, *threads, *warm, *cycles, build,
		bench.Options{Recorder: rec, Samples: *samples, Hooks: hooks})

	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasesim: %v\n", err)
			os.Exit(1)
		}
		if err := rec.Timeline.Write(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasesim: writing timeline: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		rep := bench.BuildReport(*dsName, *threads, *lease, cfg, *warm, *cycles, r, rec, *hotlines)
		rep.Aborts = aborts
		rep.TimelineFile = *timeline
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "leasesim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("ds=%s threads=%d lease=%v window=%d cycles\n", *dsName, *threads, *lease, r.Cycles)
	fmt.Printf("ops            %d\n", r.Ops)
	fmt.Printf("throughput     %.3f Mops/s\n", r.MopsPerSec)
	fmt.Printf("energy         %.3f nJ/op\n", r.NJPerOp)
	fmt.Printf("L1 misses/op   %.3f\n", r.MissesPerOp)
	fmt.Printf("messages/op    %.3f\n", r.MsgsPerOp)
	fmt.Printf("CAS fails/op   %.3f\n", r.CASFailsPerOp)
	fmt.Printf("fairness       %.3f\n", r.Fairness)
	if aborts > 0 {
		fmt.Printf("tl2 aborts     %d (warm+window)\n", aborts)
	}

	fmt.Println("\nlatency distributions (cycles):")
	printDist := func(name string, s *telemetry.Summary) {
		if s == nil || s.Count == 0 {
			return
		}
		fmt.Printf("%-14s %s\n", name, s)
	}
	printDist("op latency", r.OpLatency)
	printDist("lease hold", r.LeaseHold)
	printDist("probe defer", r.ProbeDefer)
	printDist("dir queue", r.DirQueue)

	if *hotlines > 0 && rec.Lines.Len() > 0 {
		fmt.Printf("\nhot lines (top %d of %d):\n", *hotlines, rec.Lines.Len())
		fmt.Printf("%-12s %10s %10s %8s %10s %8s %8s\n",
			"line", "score", "msgs", "invals", "deferred", "leases", "maxdirq")
		for _, h := range bench.HotLineRows(rec, *hotlines) {
			fmt.Printf("%-12s %10d %10d %8d %10d %8d %8d\n",
				h.Line, h.Score, h.Msgs, h.Invals, h.Deferred, h.Leases, h.MaxQueue)
		}
	}

	if len(r.Series) > 0 {
		fmt.Println("\ntime series (per-window deltas):")
		fmt.Printf("%12s %10s %10s %10s %10s\n", "end cycle", "ops", "msgs", "l1miss", "deferred")
		for _, s := range r.Series {
			fmt.Printf("%12d %10d %10d %10d %10d\n",
				s.EndCycle, s.Ops, s.Stats.TotalMsgs(), s.Stats.L1Misses, s.Stats.DeferredProbes)
		}
	}

	if *timeline != "" {
		fmt.Printf("\ntimeline written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *timeline)
	}

	fmt.Println("\nwindow counters:")
	fmt.Println(r.Window)
}
