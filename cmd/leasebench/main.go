// Command leasebench regenerates the paper's tables and figures on the
// simulated multicore. Each experiment prints an aligned text table whose
// rows correspond to the paper's data series (see DESIGN.md for the
// mapping and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	leasebench -list
//	leasebench -exp fig2
//	leasebench -exp all [-quick] [-threads 2,4,8] [-window 1500000]
//
// An experiment that panics is recovered and reported; the remaining
// experiments still run and the exit status is 1. -strict aborts at the
// first failed experiment instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"leaserelease/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "small thread sweep and short windows")
		threads = flag.String("threads", "", "comma-separated thread counts (override)")
		warm    = flag.Uint64("warm", 0, "warmup cycles (override)")
		window  = flag.Uint64("window", 0, "measurement window cycles (override)")
		strict  = flag.Bool("strict", false, "abort at the first failed experiment")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	p := bench.FullParams()
	if *quick {
		p = bench.QuickParams()
	}
	if *threads != "" {
		p.Threads = nil
		for _, s := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 64 {
				fmt.Fprintf(os.Stderr, "leasebench: bad thread count %q\n", s)
				os.Exit(2)
			}
			p.Threads = append(p.Threads, n)
		}
	}
	if *warm > 0 {
		p.Warm = *warm
	}
	if *window > 0 {
		p.Window = *window
	}

	// run executes one experiment, converting an escaping panic (which the
	// sim kernel annotates with cycle/proc/event context) into a reported
	// failure so the remaining experiments still run.
	run := func(e bench.Experiment) (ok bool) {
		fmt.Printf("## %s — %s\n", e.ID, e.Paper)
		start := time.Now()
		defer func() {
			if r := recover(); r != nil {
				ok = false
				fmt.Fprintf(os.Stderr, "leasebench: experiment %s FAILED: %v\n", e.ID, r)
			}
			fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
		}()
		e.Run(os.Stdout, p)
		return true
	}

	if *exp == "all" {
		failed := false
		for _, e := range bench.All() {
			if !run(e) {
				failed = true
				if *strict {
					os.Exit(1)
				}
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "leasebench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	if !run(e) {
		os.Exit(1)
	}
}
