// Command leasebench regenerates the paper's tables and figures on the
// simulated multicore. Each experiment prints an aligned text table whose
// rows correspond to the paper's data series (see DESIGN.md for the
// mapping and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	leasebench -list
//	leasebench -exp fig2
//	leasebench -exp all [-quick] [-threads 2,4,8] [-window 1500000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"leaserelease/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "small thread sweep and short windows")
		threads = flag.String("threads", "", "comma-separated thread counts (override)")
		warm    = flag.Uint64("warm", 0, "warmup cycles (override)")
		window  = flag.Uint64("window", 0, "measurement window cycles (override)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	p := bench.FullParams()
	if *quick {
		p = bench.QuickParams()
	}
	if *threads != "" {
		p.Threads = nil
		for _, s := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 64 {
				fmt.Fprintf(os.Stderr, "leasebench: bad thread count %q\n", s)
				os.Exit(2)
			}
			p.Threads = append(p.Threads, n)
		}
	}
	if *warm > 0 {
		p.Warm = *warm
	}
	if *window > 0 {
		p.Window = *window
	}

	run := func(e bench.Experiment) {
		fmt.Printf("## %s — %s\n", e.ID, e.Paper)
		start := time.Now()
		e.Run(os.Stdout, p)
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "leasebench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
