// Command leasebench regenerates the paper's tables and figures on the
// simulated multicore. Each experiment prints an aligned text table whose
// rows correspond to the paper's data series (see DESIGN.md for the
// mapping and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	leasebench -list
//	leasebench -exp fig2
//	leasebench -exp all [-quick] [-threads 2,4,8] [-window 1500000]
//	leasebench -exp fig2 -protocol tardis
//	leasebench -exp protocol-compare -quick
//	leasebench -exp all -quick -parallel 4 -perfjson BENCH_host.json
//	leasebench -exp all -serve :9090
//	leasebench -compare old.json new.json [-threshold 5]
//	leasebench history [-dir .leasehistory] [-note s] run.json...
//	leasebench report [-dir .leasehistory] [-o lease-report.html] [run.json...]
//
// -protocol reruns any experiment on a different coherence backend
// (default directory MSI, or Tardis timestamp coherence); the dedicated
// protocol-compare experiment runs both side by side with identical seeds.
//
// -compare diffs two `leasesim -json` report files per configuration
// (ops, throughput, latency percentiles, messages per op); changes that
// regress by more than -threshold percent are marked '!', a one-line
// verdict goes to stderr, and the exit status is 1 when any exist.
// `history` appends per-run summary metrics from `leasesim -json` files
// to an append-only JSONL store keyed by configuration and git revision;
// `report` renders the store plus optional current-run files into a
// single self-contained HTML report (sweep tables, histogram sparklines,
// lease-ledger rankings, cross-run trend lines — no external assets).
// -serve exposes live sweep introspection
// (per-experiment cell progress, pool occupancy, simulated-cycles/s) over
// HTTP while experiments run; see cmd/leasesim for the endpoints.
//
// Sweep cells — one (experiment, thread count, variant) measurement each —
// run on a host worker pool (-parallel, default GOMAXPROCS). Each cell
// owns a private simulated machine and rows are emitted in the original
// serial order, so experiment output is byte-identical for any -parallel
// value; only wall-clock changes.
//
// -shards parallelizes the event kernel *inside* each cell with
// conservative time-windowed PDES (see DESIGN.md §14): the simulated
// procs are partitioned across host threads and synchronized at
// network-lookahead window boundaries, so a single large cell speeds up
// too. The two axes compose — workers across cells, shards within a
// cell. Output stays byte-identical at any -shards value. Telemetry-
// enabled measurements shard as well (the bus buffers per shard and
// merges at window barriers, DESIGN.md §15); cells outside the parallel
// certificate (Tardis, fault injection, synchronous subscribers like the
// invariant checker) silently run the sequential kernel. A sharded run's
// -perfjson additionally carries a "shard_stats" sample: the engine's
// self-observability counters (windows, barrier stalls, per-shard
// utilization) from the last sharded cell.
//
// -perfjson records per-experiment wall-clock times (the tracked host-
// performance trajectory; see EXPERIMENTS.md §Host performance), and
// -perfbase computes speedups against a previously recorded file.
// -cpuprofile/-memprofile capture pprof profiles of the harness itself.
//
// An experiment that panics is recovered and reported; the remaining
// experiments still run and the exit status is 1. -strict aborts at the
// first failed experiment instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"leaserelease/internal/bench"
	"leaserelease/internal/coherence"
	"leaserelease/internal/machine"
	"leaserelease/internal/sim"
)

// ExpPerf is one experiment's recorded host wall-clock.
type ExpPerf struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	OK          bool    `json:"ok"`
	// SpeedupVsBase is baseline wall-clock divided by this run's, when
	// -perfbase was given and the baseline has this experiment.
	SpeedupVsBase float64 `json:"speedup_vs_base,omitempty"`
}

// PerfReport is the schema of -perfjson output (BENCH_host.json): the
// host-performance trajectory every PR is measured against.
type PerfReport struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	Parallel      int    `json:"parallel"`
	// EffectiveWorkers is the worker count the pool actually started
	// (resolves -parallel 0 to GOMAXPROCS); Shards/EffectiveShards are
	// the requested and certified per-cell shard counts, with ShardNote
	// carrying the downgrade reason when they differ. A host where
	// effective_workers * effective_shards > num_cpu timeshares, so its
	// "parallel" wall-clock numbers are not scaling evidence.
	EffectiveWorkers int       `json:"effective_workers"`
	Shards           int       `json:"shards"`
	EffectiveShards  int       `json:"effective_shards"`
	ShardNote        string    `json:"shard_note,omitempty"`
	Quick            bool      `json:"quick"`
	Threads          []int     `json:"threads"`
	WarmCycles       uint64    `json:"warm_cycles"`
	WindowCycles     uint64    `json:"window_cycles"`
	Experiments      []ExpPerf `json:"experiments"`
	TotalWallSeconds float64   `json:"total_wall_seconds"`
	// ShardStats is an engine self-observability sample from the last
	// cell that executed on the parallel kernel (omitted when every cell
	// ran sequentially): windows executed, barrier stall cycles,
	// cross-shard traffic, and per-shard utilization/imbalance.
	ShardStats *sim.EngineStats `json:"shard_stats,omitempty"`
	// BaselineFile/TotalSpeedupVsBase are filled when -perfbase was given.
	BaselineFile       string  `json:"baseline_file,omitempty"`
	TotalSpeedupVsBase float64 `json:"total_speedup_vs_base,omitempty"`
}

func main() {
	// Subcommands of the report pipeline dispatch before the global flag
	// set: `leasebench history ...` and `leasebench report ...` have their
	// own flags (see runHistory/runReport).
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "history":
			os.Exit(runHistory(os.Args[2:]))
		case "report":
			os.Exit(runReport(os.Args[2:]))
		}
	}
	var (
		exp      = flag.String("exp", "", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		protocol = flag.String("protocol", "msi", "coherence protocol backend: msi|tardis")
		quick    = flag.Bool("quick", false, "small thread sweep and short windows")
		threads  = flag.String("threads", "", "comma-separated thread counts (override)")
		warm     = flag.Uint64("warm", 0, "warmup cycles (override)")
		window   = flag.Uint64("window", 0, "measurement window cycles (override)")
		strict   = flag.Bool("strict", false, "abort at the first failed experiment")

		compare   = flag.Bool("compare", false, "compare two leasesim -json report files: leasebench -compare old.json new.json")
		threshold = flag.Float64("threshold", 5, "with -compare, highlight regressions beyond this percentage (0 disables)")
		serveAddr = flag.String("serve", "", "serve live sweep introspection over HTTP on this address (e.g. :9090)")

		parallel = flag.Int("parallel", 0, "worker pool size for sweep cells (0 = GOMAXPROCS, 1 = serial)")
		shards   = flag.Int("shards", 1, "conservative-PDES shard count inside each cell's simulated machine (1 = sequential kernel; output is byte-identical at any value)")
		perfjson = flag.String("perfjson", "", "write per-experiment wall-clock times as JSON to this file")
		perfbase = flag.String("perfbase", "", "baseline perfjson file to compute speedups against")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "leasebench: -compare wants exactly two files: old.json new.json")
			os.Exit(2)
		}
		oldReps, err := bench.ReadReportFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: -compare: %v\n", err)
			os.Exit(2)
		}
		newReps, err := bench.ReadReportFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: -compare: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("## compare %s -> %s\n", flag.Arg(0), flag.Arg(1))
		regressions, compared := bench.CompareReports(os.Stdout, oldReps, newReps, *threshold)
		// One-line verdict on stderr so CI logs carry the outcome without
		// scraping the stdout table.
		verdict := "OK"
		if regressions > 0 {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(os.Stderr, "leasebench: -compare %s: %d configs compared, %d regressions beyond %.1f%%\n",
			verdict, compared, regressions, *threshold)
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !coherence.ValidProtocol(*protocol) {
		fmt.Fprintf(os.Stderr, "leasebench: unknown -protocol %q (valid: %s)\n",
			*protocol, strings.Join(coherence.Protocols(), ", "))
		os.Exit(2)
	}

	p := bench.FullParams()
	if *quick {
		p = bench.QuickParams()
	}
	if *protocol != "" && *protocol != coherence.ProtocolMSI {
		// The default MSI stays the empty tag so default sweeps are
		// byte-identical to builds that predate -protocol.
		p.Protocol = *protocol
	}
	if *threads != "" {
		p.Threads = nil
		for _, s := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 64 {
				fmt.Fprintf(os.Stderr, "leasebench: bad thread count %q\n", s)
				os.Exit(2)
			}
			p.Threads = append(p.Threads, n)
		}
	}
	if *warm > 0 {
		p.Warm = *warm
	}
	if *window > 0 {
		p.Window = *window
	}

	p.Shards = *shards

	stopProfiles := startProfiles(*cpuprof, *memprof)
	p.Pool = bench.NewPool(*parallel)
	// Record the counts the run actually gets, not the requested ones: a
	// -parallel 4 run on a 1-CPU host timeshares, and a -shards request
	// can fail certification — BENCH_host.json must say so.
	effWorkers := p.Pool.Workers()
	maxThreads := 0
	for _, n := range p.Threads {
		if n > maxThreads {
			maxThreads = n
		}
	}
	perfCfg := machine.DefaultConfig(maxThreads)
	perfCfg.Protocol = p.Protocol
	perfCfg.Shards = p.Shards
	effShards, shardNote := machine.ShardPlan(perfCfg, maxThreads)
	if over := effWorkers * effShards; over > runtime.NumCPU() {
		fmt.Fprintf(os.Stderr,
			"leasebench: warning: %d workers x %d shards exceeds NumCPU=%d; host threads will timeshare and wall-clock gains flatten\n",
			effWorkers, effShards, runtime.NumCPU())
	}
	if *serveAddr != "" {
		p.Progress = bench.NewProgress()
		p.Progress.SetPool(p.Pool)
		addr, err := p.Progress.Serve(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: -serve: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "leasebench: introspection on http://%s (/progress /metrics /debug/vars)\n", addr)
	}
	perf := &PerfReport{
		SchemaVersion:    1,
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		Parallel:         *parallel,
		EffectiveWorkers: effWorkers,
		Shards:           *shards,
		EffectiveShards:  effShards,
		ShardNote:        shardNote,
		Quick:            *quick,
		Threads:          p.Threads,
		WarmCycles:       p.Warm,
		WindowCycles:     p.Window,
	}
	// exit tears down the pool and flushes profiles and the perf report
	// before the process ends (os.Exit skips deferred calls).
	exit := func(code int) {
		p.Pool.Close()
		perf.ShardStats = bench.ShardSample()
		writePerf(*perfjson, *perfbase, perf)
		stopProfiles()
		os.Exit(code)
	}

	// run executes one experiment, converting an escaping panic (which the
	// sim kernel annotates with cycle/proc/event context) into a reported
	// failure so the remaining experiments still run.
	run := func(e bench.Experiment) (ok bool) {
		fmt.Printf("## %s — %s\n", e.ID, e.Paper)
		start := time.Now()
		defer func() {
			if r := recover(); r != nil {
				ok = false
				fmt.Fprintf(os.Stderr, "leasebench: experiment %s FAILED: %v\n", e.ID, r)
			}
			wall := time.Since(start).Seconds()
			perf.Experiments = append(perf.Experiments, ExpPerf{ID: e.ID, WallSeconds: wall, OK: ok})
			perf.TotalWallSeconds += wall
			fmt.Printf("(wall time %.1fs)\n\n", wall)
		}()
		pe := p
		pe.Exp = e.ID // progress cells report as "<exp>/tN"
		e.Run(os.Stdout, pe)
		return true
	}

	if *exp == "all" {
		failed := false
		for _, e := range bench.All() {
			if !run(e) {
				failed = true
				if *strict {
					exit(1)
				}
			}
		}
		if failed {
			exit(1)
		}
		exit(0)
	}
	e, ok := bench.Find(*exp)
	if !ok {
		// Fail fast with the full menu: a typo'd -exp should not cost a
		// trip through -list.
		fmt.Fprintf(os.Stderr, "leasebench: unknown experiment %q; valid experiments:\n", *exp)
		for _, e := range bench.All() {
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", e.ID, e.Paper)
		}
		fmt.Fprintln(os.Stderr, "  all                  run every experiment")
		os.Exit(2)
	}
	if !run(e) {
		exit(1)
	}
	exit(0)
}

// runHistory implements `leasebench history [-dir D] [-note s] run.json...`:
// every report in the given `leasesim -json` files is summarized into one
// line of the append-only JSONL store, keyed by configuration and the
// working tree's git revision.
func runHistory(args []string) int {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	dir := fs.String("dir", ".leasehistory", "history store directory")
	note := fs.String("note", "", "free-form note attached to each entry")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: leasebench history [-dir D] [-note s] run.json...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	var reports []bench.Report
	for _, path := range fs.Args() {
		reps, err := bench.ReadReportFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: history: %v\n", err)
			return 2
		}
		reports = append(reports, reps...)
	}
	entries, err := bench.AppendHistory(*dir, bench.GitSHA(), *note, reports, time.Now())
	if err != nil {
		fmt.Fprintf(os.Stderr, "leasebench: history: %v\n", err)
		return 1
	}
	for _, e := range entries {
		fmt.Printf("recorded %s (%.3f Mops/s)\n", e.Key, e.MopsPerSec)
	}
	fmt.Printf("%d entries appended to %s\n", len(entries), *dir)
	return 0
}

// runReport implements `leasebench report [-dir D] [-o F] [run.json...]`:
// render the self-contained HTML report from the history store plus any
// current-run report files (which supply the sweep table, histogram
// sparklines, and ledger rankings).
func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	dir := fs.String("dir", ".leasehistory", "history store directory")
	out := fs.String("o", "lease-report.html", "output HTML file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: leasebench report [-dir D] [-o F] [run.json...]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	var current []bench.Report
	for _, path := range fs.Args() {
		reps, err := bench.ReadReportFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: report: %v\n", err)
			return 2
		}
		current = append(current, reps...)
	}
	history, err := bench.ReadHistory(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "leasebench: report: %v\n", err)
		return 1
	}
	if len(current) == 0 && len(history) == 0 {
		fmt.Fprintf(os.Stderr, "leasebench: report: nothing to render (no report files, empty history in %s)\n", *dir)
		return 1
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "leasebench: report: %v\n", err)
		return 1
	}
	if err := bench.WriteHTMLReport(f, current, history, bench.GitSHA(), time.Now()); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "leasebench: report: %v\n", err)
		return 1
	}
	fmt.Printf("report written to %s (%d current runs, %d history entries)\n",
		*out, len(current), len(history))
	return 0
}

// writePerf fills in speedups against the optional baseline file and
// writes the perf report.
func writePerf(path, basePath string, perf *PerfReport) {
	if path == "" {
		return
	}
	if basePath != "" {
		base, err := readPerf(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: -perfbase: %v\n", err)
		} else {
			perf.BaselineFile = basePath
			baseWall := make(map[string]float64, len(base.Experiments))
			var baseTotal float64
			for _, e := range base.Experiments {
				baseWall[e.ID] = e.WallSeconds
			}
			for i := range perf.Experiments {
				e := &perf.Experiments[i]
				if bw, ok := baseWall[e.ID]; ok && e.WallSeconds > 0 {
					e.SpeedupVsBase = bw / e.WallSeconds
					baseTotal += bw
				}
			}
			if perf.TotalWallSeconds > 0 && baseTotal > 0 {
				perf.TotalSpeedupVsBase = baseTotal / perf.TotalWallSeconds
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "leasebench: -perfjson: %v\n", err)
		return
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(perf); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "leasebench: -perfjson: %v\n", err)
	}
}

func readPerf(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p PerfReport
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &p, nil
}

// startProfiles starts CPU profiling and arranges a heap profile at exit
// (shared flag behavior with cmd/leasesim). The returned func must run
// before the process exits.
func startProfiles(cpu, mem string) func() {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "leasebench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "leasebench: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "leasebench: -memprofile: %v\n", err)
			}
			f.Close()
		}
	}
}
