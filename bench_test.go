package leaserelease

import (
	"testing"

	"leaserelease/internal/bench"
	"leaserelease/internal/ds"
	"leaserelease/internal/machine"
	"leaserelease/internal/multiqueue"
	"leaserelease/internal/stm"
)

// The benchmarks below regenerate every table and figure of the paper at
// bench scale (8 simulated threads, short windows) and attach the
// simulated metrics to the Go benchmark output:
//
//	simMops/s  — simulated million operations per second (throughput axes)
//	simNJ/op   — simulated nanojoules per operation (energy axes)
//
// Run the full paper-scale sweeps with cmd/leasebench instead; wall-clock
// ns/op here measures the simulator itself, not the simulated hardware.

const (
	benchThreads = 8
	benchWarm    = 50_000
	benchWindow  = 250_000
)

func simBench(b *testing.B, variant string, build func(d *machine.Direct) bench.OpFunc) {
	b.Helper()
	b.Run(variant, func(b *testing.B) {
		var r bench.Result
		for i := 0; i < b.N; i++ {
			r = bench.Throughput(machine.DefaultConfig(benchThreads), benchThreads,
				benchWarm, benchWindow, build)
		}
		b.ReportMetric(r.MopsPerSec, "simMops/s")
		b.ReportMetric(r.NJPerOp, "simNJ/op")
		b.ReportMetric(r.MissesPerOp, "simMiss/op")
	})
}

// BenchmarkTable1Config exercises machine construction at the Table 1
// configuration (sanity: the config itself is printed by `leasebench
// -exp table1`).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := machine.New(machine.DefaultConfig(64))
		_ = m.Stats()
	}
}

// BenchmarkFig2Stack — Figure 2: Treiber stack, 100% updates.
func BenchmarkFig2Stack(b *testing.B) {
	simBench(b, "base", bench.StackWorkload(ds.StackOptions{}))
	simBench(b, "lease", bench.StackWorkload(ds.StackOptions{Lease: bench.LeaseTime}))
}

// BenchmarkFig3Counter — Figure 3: contended lock-based counter.
func BenchmarkFig3Counter(b *testing.B) {
	simBench(b, "tts", bench.CounterWorkload(bench.CounterTTS))
	simBench(b, "lease", bench.CounterWorkload(bench.CounterLeasedTTS))
	simBench(b, "ticket", bench.CounterWorkload(bench.CounterTicket))
	simBench(b, "clh", bench.CounterWorkload(bench.CounterCLH))
}

// BenchmarkFig3Queue — Figure 3: Michael–Scott queue.
func BenchmarkFig3Queue(b *testing.B) {
	simBench(b, "base", bench.QueueWorkload(ds.QueueNoLease))
	simBench(b, "lease", bench.QueueWorkload(ds.QueueSingleLease))
	simBench(b, "multilease", bench.QueueWorkload(ds.QueueMultiLease))
	simBench(b, "flatcombining", bench.FCQueueWorkload(benchThreads))
	simBench(b, "lcrq", bench.LCRQWorkload())
}

// BenchmarkFig3PQ — Figure 3: skiplist-based priority queue.
func BenchmarkFig3PQ(b *testing.B) {
	simBench(b, "fine", bench.PQWorkload(bench.PQFineLocking, 256))
	simBench(b, "global", bench.PQWorkload(bench.PQGlobalBase, 256))
	simBench(b, "lease", bench.PQWorkload(bench.PQGlobalLeased, 256))
}

// BenchmarkFig4MultiQueue — Figure 4: MultiQueues.
func BenchmarkFig4MultiQueue(b *testing.B) {
	simBench(b, "base", bench.MQWorkload(multiqueue.Options{}))
	simBench(b, "lease", bench.MQWorkload(multiqueue.Options{LeaseTime: bench.LeaseTime}))
}

// BenchmarkFig4TL2 — Figure 4: TL2 transactions on 2-of-10 objects.
func BenchmarkFig4TL2(b *testing.B) {
	var a1, a2, a3 uint64
	simBench(b, "base", bench.TL2Workload(stm.NoLease, &a1))
	simBench(b, "multilease", bench.TL2Workload(stm.HWMulti, &a2))
	simBench(b, "singlelease", bench.TL2Workload(stm.SingleFirst, &a3))
}

// BenchmarkFig5SwHw — Figure 5 left: hardware vs software MultiLeases.
func BenchmarkFig5SwHw(b *testing.B) {
	var a1, a2 uint64
	simBench(b, "hw", bench.TL2Workload(stm.HWMulti, &a1))
	simBench(b, "sw", bench.TL2Workload(stm.SWMulti, &a2))
}

// BenchmarkFig5Pagerank — Figure 5 right: lock-based Pagerank (fixed work;
// the metric is simulated Mcycles to completion).
func BenchmarkFig5Pagerank(b *testing.B) {
	for _, v := range []struct {
		name  string
		lease uint64
	}{{"base", 0}, {"lease", bench.LeaseTime}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				var err error
				cycles, _, err = bench.PagerankRun(machine.DefaultConfig(benchThreads),
					benchThreads, v.lease, 256, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles)/1e6, "simMcycles")
		})
	}
}

// BenchmarkTextBackoff — §7 text: software mitigations vs leases.
func BenchmarkTextBackoff(b *testing.B) {
	simBench(b, "backoff", bench.StackWorkload(ds.StackOptions{Backoff: ds.Backoff{Min: 32, Max: 4096}}))
	simBench(b, "elimination", bench.EliminationStackWorkload())
	simBench(b, "flatcombining", bench.FCStackWorkload(benchThreads))
	simBench(b, "lease", bench.StackWorkload(ds.StackOptions{Lease: bench.LeaseTime}))
}

// BenchmarkTextLowContention — §7 text: 20% updates on search structures
// (lock-based and lock-free suites).
func BenchmarkTextLowContention(b *testing.B) {
	for _, kind := range bench.AllSetKinds() {
		simBench(b, kind.String()+"/base", bench.SetWorkload(kind, 0, 1024, 512))
		simBench(b, kind.String()+"/lease", bench.SetWorkload(kind, bench.LeaseTime, 1024, 512))
	}
}

// BenchmarkSnapshot — §5: cheap snapshots vs double-collect.
func BenchmarkSnapshot(b *testing.B) {
	var a1, s1, a2, s2 uint64
	simBench(b, "lease", bench.SnapshotWorkload(true, 4, &a1, &s1))
	simBench(b, "doublecollect", bench.SnapshotWorkload(false, 4, &a2, &s2))
}

// BenchmarkSimulatorThroughput measures the simulator engine itself:
// simulated cycles executed per wall-clock second for a contended
// workload (useful when sizing experiment windows).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Throughput(machine.DefaultConfig(8), 8, 0, 200_000,
			bench.StackWorkload(ds.StackOptions{Lease: bench.LeaseTime}))
	}
	b.ReportMetric(float64(200_000*b.N)/b.Elapsed().Seconds(), "simCycles/s")
}
