// Quickstart: reproduce the paper's headline experiment (Figure 2) in
// miniature — a contended Treiber stack with and without Lease/Release on
// an 8-core simulated machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"leaserelease"
)

func run(lease uint64) (opsPerUs float64, stats leaserelease.Stats) {
	const threads = 8
	m := leaserelease.New(leaserelease.DefaultConfig(threads))
	s := leaserelease.NewStack(m.Direct(), leaserelease.StackOptions{Lease: lease})

	var ops uint64
	for i := 0; i < threads; i++ {
		m.Spawn(0, func(c *leaserelease.Ctx) {
			for {
				if c.Rand().Intn(2) == 0 {
					s.Push(c, 1)
				} else {
					s.Pop(c)
				}
				ops++
			}
		})
	}
	const cycles = 1_000_000 // 1 ms of simulated time at 1 GHz
	if err := m.Run(cycles); err != nil {
		panic(err)
	}
	m.Stop()
	return float64(ops) / 1000.0, m.Stats()
}

func main() {
	base, baseStats := run(0)
	leased, leasedStats := run(20_000)

	fmt.Println("Treiber stack, 8 threads, 100% updates, 1 ms simulated:")
	fmt.Printf("  base:  %7.2f Mops/s   %6.2f msgs/op   %d failed CAS\n",
		base, float64(baseStats.TotalMsgs())/float64(baseStats.CASSuccesses+1), baseStats.CASFailures)
	fmt.Printf("  lease: %7.2f Mops/s   %6.2f msgs/op   %d failed CAS\n",
		leased, float64(leasedStats.TotalMsgs())/float64(leasedStats.CASSuccesses+1), leasedStats.CASFailures)
	fmt.Printf("  speedup: %.2fx\n", leased/base)
}
