// Counter: the paper's lock-based counter (Figure 3, left) — a single
// contended test&test&set lock protecting one shared counter, with and
// without the §6 "Leases for TryLocks" pattern, swept over thread counts.
//
//	go run ./examples/counter
package main

import (
	"fmt"

	"leaserelease"
)

func run(threads int, leaseTime uint64) float64 {
	m := leaserelease.New(leaserelease.DefaultConfig(threads))
	d := m.Direct()
	var lock leaserelease.TryLock = leaserelease.NewTTSLock(d)
	if leaseTime > 0 {
		lock = leaserelease.NewLeasedLock(lock, leaseTime)
	}
	ctr := d.Alloc(8)

	var ops uint64
	for i := 0; i < threads; i++ {
		m.Spawn(0, func(c *leaserelease.Ctx) {
			for {
				lock.Lock(c)
				c.Store(ctr, c.Load(ctr)+1) // plain increment: the lock is the protection
				lock.Unlock(c)
				ops++
				c.Work(c.Rand().Uint64n(32))
			}
		})
	}
	const cycles = 800_000
	if err := m.Run(cycles); err != nil {
		panic(err)
	}
	m.Stop()
	// Threads torn down mid-operation may have incremented the counter
	// without reaching their local ops++; anything beyond that slack is a
	// real mutual-exclusion violation.
	if got := m.Peek(ctr); got < ops || got > ops+uint64(threads) {
		panic(fmt.Sprintf("mutual exclusion violated: counter %d, ops %d", got, ops))
	}
	return float64(ops) / (float64(cycles) / 1000)
}

func main() {
	fmt.Println("Lock-based counter throughput (Mops/s):")
	fmt.Printf("%8s %12s %12s %9s\n", "threads", "tts", "tts+lease", "speedup")
	for _, n := range []int{2, 4, 8, 16, 32} {
		base := run(n, 0)
		leased := run(n, 20_000)
		fmt.Printf("%8d %12.2f %12.2f %8.2fx\n", n, base, leased, leased/base)
	}
}
