// TL2: the Figure 4/5 transactional benchmark — TL2-style transactions
// updating two random objects out of ten, comparing no leases, hardware
// MultiLease, software-emulated MultiLease, and a single lease on the
// first object. Joint leases make lock acquisition conflict-free, so the
// abort rate collapses.
//
//	go run ./examples/tl2
package main

import (
	"fmt"

	"leaserelease"
)

func run(threads int, mode int) (mtxPerSec float64, abortsPerTx float64) {
	m := leaserelease.New(leaserelease.DefaultConfig(threads))
	tl := leaserelease.NewTL2(m.Direct(), 10, 20_000)
	switch mode {
	case 1:
		tl.Mode = leaserelease.TL2HWMulti
	case 2:
		tl.Mode = leaserelease.TL2SWMulti
	case 3:
		tl.Mode = leaserelease.TL2SingleFirst
	}
	var commits, aborts uint64
	for i := 0; i < threads; i++ {
		m.Spawn(0, func(c *leaserelease.Ctx) {
			for {
				i := c.Rand().Intn(10)
				j := c.Rand().Intn(9)
				if j >= i {
					j++
				}
				aborts += uint64(tl.UpdatePair(c, i, j, 1))
				commits++
			}
		})
	}
	const cycles = 1_000_000
	if err := m.Run(cycles); err != nil {
		panic(err)
	}
	m.Stop()
	return float64(commits) / (float64(cycles) / 1000), float64(aborts) / float64(commits)
}

func main() {
	fmt.Println("TL2 transactions (2 random objects of 10, 1 ms simulated):")
	fmt.Printf("%8s %12s %12s %12s %12s %16s\n",
		"threads", "base Mtx/s", "hw-multi", "sw-multi", "single", "base aborts/tx")
	for _, n := range []int{2, 4, 8, 16, 32} {
		base, baseAb := run(n, 0)
		hw, _ := run(n, 1)
		sw, _ := run(n, 2)
		single, _ := run(n, 3)
		fmt.Printf("%8d %12.2f %12.2f %12.2f %12.2f %16.2f\n", n, base, hw, sw, single, baseAb)
	}
}
