// Pagerank: the Figure 5 (right) application — CRONO-style lock-based
// Pagerank where every thread funnels the rank mass of its dangling pages
// (~25% of the web graph) through one global lock. Leasing that lock lets
// the application scale.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"

	"leaserelease"
)

func run(threads int, leaseTime uint64) (mcycles float64, ranksSum float64) {
	m := leaserelease.New(leaserelease.DefaultConfig(threads))
	d := m.Direct()
	cfg := leaserelease.PagerankConfig{
		Nodes:        1024,
		AvgInDegree:  8,
		DanglingFrac: 0.25,
		Iterations:   3,
		Threads:      threads,
		LeaseTime:    leaseTime,
	}
	p := leaserelease.NewPagerank(d, cfg)
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(0, func(c *leaserelease.Ctx) { p.Run(c, i) })
	}
	if err := m.Drain(); err != nil {
		panic(err)
	}
	var sum float64
	for _, r := range p.Ranks(d) {
		sum += r
	}
	return float64(m.Now()) / 1e6, sum
}

func main() {
	fmt.Println("Lock-based Pagerank, 1024 pages (25% dangling), 3 iterations:")
	fmt.Printf("%8s %14s %14s %9s\n", "threads", "base Mcycles", "lease Mcycles", "speedup")
	for _, n := range []int{2, 4, 8, 16, 32} {
		base, _ := run(n, 0)
		leased, sum := run(n, 20_000)
		fmt.Printf("%8d %14.2f %14.2f %8.2fx   (rank mass %.3f)\n",
			n, base, leased, base/leased, sum)
	}
}
