// MultiQueue: the Figure 4 relaxed priority queue — 8 sequential binary
// heaps behind try-locks; DeleteMin jointly leases two random queue locks
// (Algorithm 4) and releases them right after comparing the heads.
//
//	go run ./examples/multiqueue
package main

import (
	"fmt"

	"leaserelease"
)

func run(threads int, opt leaserelease.MultiQueueOptions) float64 {
	m := leaserelease.New(leaserelease.DefaultConfig(threads))
	d := m.Direct()
	q := leaserelease.NewMultiQueue(d, 8, 1<<16, opt)
	for i := 0; i < 512; i++ {
		q.Insert(d, d.Rand().Next()>>16|1)
	}
	var ops uint64
	for i := 0; i < threads; i++ {
		m.Spawn(0, func(c *leaserelease.Ctx) {
			for {
				if c.Rand().Intn(2) == 0 {
					q.Insert(c, c.Rand().Next()>>16|1)
				} else {
					q.DeleteMin(c)
				}
				ops++
			}
		})
	}
	const cycles = 800_000
	if err := m.Run(cycles); err != nil {
		panic(err)
	}
	m.Stop()
	return float64(ops) / (float64(cycles) / 1000)
}

func main() {
	fmt.Println("MultiQueues (8 queues, insert/deleteMin mix), Mops/s:")
	fmt.Printf("%8s %10s %12s %12s %9s\n", "threads", "base", "multilease", "soft-multi", "hw gain")
	for _, n := range []int{2, 4, 8, 16, 32} {
		base := run(n, leaserelease.MultiQueueOptions{})
		hw := run(n, leaserelease.MultiQueueOptions{LeaseTime: 20_000})
		sw := run(n, leaserelease.MultiQueueOptions{LeaseTime: 20_000, SoftMulti: true})
		fmt.Printf("%8d %10.2f %12.2f %12.2f %8.2fx\n", n, base, hw, sw, hw/base)
	}
}
