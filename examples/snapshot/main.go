// Snapshot: the §5 "cheap snapshots" trick — the boolean Release result
// tells a reader whether its leases survived untouched, turning
// lease/read/release into an atomic multi-word snapshot. Compared against
// the classic double-collect.
//
//	go run ./examples/snapshot
package main

import (
	"fmt"

	"leaserelease"
)

func main() {
	const words = 4
	m := leaserelease.New(leaserelease.DefaultConfig(4))
	d := m.Direct()

	addrs := make([]leaserelease.Addr, words)
	for i := range addrs {
		addrs[i] = d.Alloc(8)
	}
	snap := leaserelease.NewSnapshot(addrs, 20_000)

	// One writer keeps all words advancing in lockstep (they must always
	// be equal in a consistent view).
	m.Spawn(0, func(c *leaserelease.Ctx) {
		for {
			c.MultiLease(20_000, addrs...)
			for _, a := range addrs {
				c.Store(a, c.Load(a)+1)
			}
			c.ReleaseAll()
			c.Work(2000) // update period; double-collect needs quiet gaps
		}
	})

	type tally struct {
		snaps, rounds uint64
		torn          int
	}
	var lease, double tally
	collect := func(t *tally, f func(c *leaserelease.Ctx) ([]uint64, int)) func(c *leaserelease.Ctx) {
		return func(c *leaserelease.Ctx) {
			for {
				vals, n := f(c)
				t.snaps++
				t.rounds += uint64(n)
				for _, v := range vals[1:] {
					if v != vals[0] {
						t.torn++
					}
				}
				c.Work(100)
			}
		}
	}
	m.Spawn(0, collect(&lease, func(c *leaserelease.Ctx) ([]uint64, int) { return snap.LeaseCollect(c) }))
	m.Spawn(0, collect(&double, func(c *leaserelease.Ctx) ([]uint64, int) { return snap.DoubleCollect(c) }))

	if err := m.Run(2_000_000); err != nil {
		panic(err)
	}
	m.Stop()

	report := func(name string, t tally) {
		rounds := 0.0
		if t.snaps > 0 {
			rounds = float64(t.rounds) / float64(t.snaps)
		}
		fmt.Printf("  %-15s %6d snapshots, %.2f rounds each, %d torn reads\n",
			name, t.snaps, rounds, t.torn)
	}
	fmt.Println("4-word atomic snapshots against a joint-lease writer (2 ms simulated):")
	report("lease/release:", lease)
	report("double-collect:", double)
}
