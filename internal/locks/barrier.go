package locks

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// Barrier is a sense-reversing centralized barrier on simulated memory,
// used by the Pagerank application to separate iteration phases. Each
// thread keeps its own local sense.
type Barrier struct {
	count mem.Addr // arrivals in the current phase
	sense mem.Addr // global sense, flipped by the last arriver
	n     uint64
}

// BarrierHandle is a thread's private sense state.
type BarrierHandle struct{ local uint64 }

// NewBarrier allocates a barrier for n participants.
func NewBarrier(x machine.API, n int) *Barrier {
	return &Barrier{count: x.Alloc(8), sense: x.Alloc(8), n: uint64(n)}
}

// NewHandle returns a fresh per-thread handle.
func (b *Barrier) NewHandle() *BarrierHandle { return &BarrierHandle{} }

// Wait blocks until all n participants have arrived.
func (b *Barrier) Wait(x machine.API, h *BarrierHandle) {
	h.local ^= 1
	if x.FetchAdd(b.count, 1)+1 == b.n {
		x.Store(b.count, 0)
		x.Store(b.sense, h.local)
		return
	}
	for x.Load(b.sense) != h.local {
		x.Work(64)
	}
}
