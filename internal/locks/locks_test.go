package locks

import (
	"testing"

	"leaserelease/internal/machine"
)

// exerciseMutex runs `cores` threads each incrementing a plain (non-atomic)
// shared counter `per` times under the provided lock/unlock and checks the
// exact final count — any mutual-exclusion failure loses increments.
func exerciseMutex(t *testing.T, cores, per int,
	setup func(d *machine.Direct) (lock func(*machine.Ctx), unlock func(*machine.Ctx))) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(cores))
	d := m.Direct()
	ctr := d.Alloc(8)
	lock, unlock := setup(d)
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				lock(c)
				c.Store(ctr, c.Load(ctr)+1)
				c.Work(20)
				unlock(c)
				c.Work(uint64(c.Rand().Intn(30)))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != uint64(cores*per) {
		t.Fatalf("counter = %d, want %d: mutual exclusion violated", got, cores*per)
	}
}

func TestTASMutex(t *testing.T) {
	exerciseMutex(t, 8, 40, func(d *machine.Direct) (func(*machine.Ctx), func(*machine.Ctx)) {
		l := NewTAS(d)
		return func(c *machine.Ctx) { l.Lock(c) }, func(c *machine.Ctx) { l.Unlock(c) }
	})
}

func TestTTSMutex(t *testing.T) {
	exerciseMutex(t, 8, 40, func(d *machine.Direct) (func(*machine.Ctx), func(*machine.Ctx)) {
		l := NewTTS(d)
		return func(c *machine.Ctx) { l.Lock(c) }, func(c *machine.Ctx) { l.Unlock(c) }
	})
}

func TestTicketMutex(t *testing.T) {
	exerciseMutex(t, 8, 40, func(d *machine.Direct) (func(*machine.Ctx), func(*machine.Ctx)) {
		l := NewTicket(d)
		return func(c *machine.Ctx) { l.Lock(c) }, func(c *machine.Ctx) { l.Unlock(c) }
	})
}

func TestCLHMutex(t *testing.T) {
	m := machine.New(machine.DefaultConfig(8))
	d := m.Direct()
	ctr := d.Alloc(8)
	l := NewCLH(d)
	const per = 40
	for i := 0; i < 8; i++ {
		m.Spawn(0, func(c *machine.Ctx) {
			h := l.NewHandle(c)
			for n := 0; n < per; n++ {
				l.Lock(c, h)
				c.Store(ctr, c.Load(ctr)+1)
				c.Work(20)
				l.Unlock(c, h)
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != 8*per {
		t.Fatalf("counter = %d, want %d", got, 8*per)
	}
}

func TestLeasedTTSMutex(t *testing.T) {
	exerciseMutex(t, 8, 40, func(d *machine.Direct) (func(*machine.Ctx), func(*machine.Ctx)) {
		l := NewLeased(NewTTS(d), 20000)
		return func(c *machine.Ctx) { l.Lock(c) }, func(c *machine.Ctx) { l.Unlock(c) }
	})
}

func TestLeasedTASMutex(t *testing.T) {
	exerciseMutex(t, 6, 30, func(d *machine.Direct) (func(*machine.Ctx), func(*machine.Ctx)) {
		l := NewLeased(NewTAS(d), 20000)
		return func(c *machine.Ctx) { l.Lock(c) }, func(c *machine.Ctx) { l.Unlock(c) }
	})
}

func TestTryLockSemantics(t *testing.T) {
	m := machine.New(machine.DefaultConfig(1))
	d := m.Direct()
	tts := NewTTS(d)
	ticket := NewTicket(d)
	var ttsFirst, ttsSecond, tktFirst, tktSecond, afterUnlock bool
	m.Spawn(0, func(c *machine.Ctx) {
		ttsFirst = tts.TryLock(c)
		ttsSecond = tts.TryLock(c)
		tts.Unlock(c)
		tktFirst = ticket.TryLock(c)
		tktSecond = ticket.TryLock(c)
		ticket.Unlock(c)
		afterUnlock = ticket.TryLock(c)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !ttsFirst || ttsSecond {
		t.Fatalf("TTS TryLock = %v,%v, want true,false", ttsFirst, ttsSecond)
	}
	if !tktFirst || tktSecond || !afterUnlock {
		t.Fatalf("Ticket TryLock = %v,%v,%v, want true,false,true", tktFirst, tktSecond, afterUnlock)
	}
}

// TestLeasedFailedTryLockDropsLease: per §6, a failed try_lock must drop
// the lease immediately so the holder's unlock is not delayed. The holder
// uses the raw lock (no lease) so the contender's lease is granted while
// the lock is still locked.
func TestLeasedFailedTryLockDropsLease(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	d := m.Direct()
	inner := NewTTS(d)
	l := NewLeased(inner, 20000)
	var triedAt, failedTryHeldLease, unlocked = false, false, false
	m.Spawn(0, func(c *machine.Ctx) {
		if !inner.TryLock(c) {
			t.Error("first TryLock failed")
			return
		}
		c.Work(50000)
		inner.Unlock(c)
		unlocked = true
	})
	m.Spawn(500, func(c *machine.Ctx) {
		if l.TryLock(c) {
			t.Error("TryLock succeeded while lock held")
			return
		}
		triedAt = true
		failedTryHeldLease = c.LeaseHeld(l.Addr())
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !triedAt {
		t.Fatal("contender never ran")
	}
	if failedTryHeldLease {
		t.Fatal("lease retained after failed TryLock")
	}
	if !unlocked {
		t.Fatal("holder never unlocked")
	}
}

// TestLeasedUnlockIsLocal: with the lease held, the unlock's store must be
// an L1 hit (no extra miss on the lock line while leased).
func TestLeasedUnlockIsLocal(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	d := m.Direct()
	l := NewLeased(NewTTS(d), 20000)
	probeAddr := l.Addr()
	var missesBefore, missesAfter uint64
	m.Spawn(0, func(c *machine.Ctx) {
		l.Lock(c)
		c.Work(4000) // let the contender's probe arrive and queue
		c.Fence()
		missesBefore = m.Stats().L1Misses
		l.Unlock(c)
		c.Fence()
		missesAfter = m.Stats().L1Misses
	})
	m.Spawn(200, func(c *machine.Ctx) {
		c.Load(probeAddr) // contends on the lock line
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if missesAfter != missesBefore {
		t.Fatalf("unlock caused %d L1 misses; lease should keep ownership", missesAfter-missesBefore)
	}
}

// TestTicketFairness: under heavy contention every thread makes progress
// (FIFO order implies bounded difference in acquisition counts).
func TestTicketFairness(t *testing.T) {
	const cores = 6
	m := machine.New(machine.DefaultConfig(cores))
	d := m.Direct()
	l := NewTicket(d)
	counts := make([]int, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for {
				l.Lock(c)
				counts[i]++
				c.Work(50)
				l.Unlock(c)
			}
		})
	}
	if err := m.Run(400000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	min, max := counts[0], counts[0]
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Fatalf("starved thread under ticket lock: %v", counts)
	}
	if max > 3*min {
		t.Fatalf("ticket lock unfair: %v", counts)
	}
}
