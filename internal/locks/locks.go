// Package locks implements the spin lock family used in the paper's
// evaluation — test&set, test&test&set, ticket locks with proportional
// backoff, and CLH queue locks — all on simulated memory, plus the §6
// "Leases for TryLocks" pattern that leases the lock variable for the
// duration of the critical section.
package locks

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// TryLock is a lock offering try-acquire, blocking acquire, and release.
// Implementations live entirely in simulated memory; all methods take the
// calling thread's machine.API.
type TryLock interface {
	// TryLock attempts to acquire without waiting, reporting success.
	TryLock(x machine.API) bool
	// Lock acquires, spinning as needed.
	Lock(x machine.API)
	// Unlock releases. Only the holder may call it.
	Unlock(x machine.API)
	// Addr returns the lock word's address (the natural lease target).
	Addr() mem.Addr
}

// TAS is a test&set spin lock: one word, 0 = free.
type TAS struct{ a mem.Addr }

// NewTAS allocates a TAS lock on its own cache line.
func NewTAS(x machine.API) *TAS { return &TAS{a: x.Alloc(8)} }

// TryLock attempts a single atomic swap.
func (l *TAS) TryLock(x machine.API) bool { return x.Swap(l.a, 1) == 0 }

// Lock spins on the swap (every attempt is a coherence write).
func (l *TAS) Lock(x machine.API) {
	for x.Swap(l.a, 1) != 0 {
		x.Work(4)
	}
}

// Unlock clears the lock word.
func (l *TAS) Unlock(x machine.API) { x.Store(l.a, 0) }

// Addr returns the lock word address.
func (l *TAS) Addr() mem.Addr { return l.a }

// TTS is a test&test&set lock: spin reading (cheap, Shared) and attempt
// the swap only when the lock looks free — the classic pattern the paper's
// lock examples assume.
type TTS struct{ a mem.Addr }

// NewTTS allocates a TTS lock on its own cache line.
func NewTTS(x machine.API) *TTS { return &TTS{a: x.Alloc(8)} }

// TryLock tests, then sets.
func (l *TTS) TryLock(x machine.API) bool {
	if x.Load(l.a) != 0 {
		return false
	}
	return x.Swap(l.a, 1) == 0
}

// Lock spins on the read, swapping when free.
func (l *TTS) Lock(x machine.API) {
	for {
		for x.Load(l.a) != 0 {
			x.Work(4)
		}
		if x.Swap(l.a, 1) == 0 {
			return
		}
	}
}

// Unlock clears the lock word.
func (l *TTS) Unlock(x machine.API) { x.Store(l.a, 0) }

// Addr returns the lock word address.
func (l *TTS) Addr() mem.Addr { return l.a }

// Ticket is a ticket lock with proportional (linear) backoff, the
// "optimized ticket lock" baseline of Figure 3. The next-ticket and
// now-serving words live on separate cache lines.
type Ticket struct {
	next    mem.Addr
	serving mem.Addr
	// BackoffUnit is the per-waiter spin pause multiplied by the queue
	// distance (linear backoff; 0 disables).
	BackoffUnit uint64
}

// NewTicket allocates a ticket lock with a default proportional backoff.
func NewTicket(x machine.API) *Ticket {
	return &Ticket{next: x.Alloc(8), serving: x.Alloc(8), BackoffUnit: 30}
}

// Lock takes a ticket and spins until served, backing off proportionally
// to its distance from the head of the queue.
func (l *Ticket) Lock(x machine.API) {
	t := x.FetchAdd(l.next, 1)
	for {
		s := x.Load(l.serving)
		if s == t {
			return
		}
		if l.BackoffUnit > 0 {
			x.Work(l.BackoffUnit * (t - s))
		}
	}
}

// TryLock acquires only if the lock is immediately free (no waiters).
func (l *Ticket) TryLock(x machine.API) bool {
	s := x.Load(l.serving)
	n := x.Load(l.next)
	if s != n {
		return false
	}
	return x.CAS(l.next, n, n+1)
}

// Unlock passes the lock to the next ticket holder.
func (l *Ticket) Unlock(x machine.API) {
	x.Store(l.serving, x.Load(l.serving)+1)
}

// Addr returns the now-serving word (the word critical sections contend
// on; leasing a ticket lock is not meaningful and not used by the paper).
func (l *Ticket) Addr() mem.Addr { return l.serving }

// CLH is a CLH queue lock [6, 24]: threads enqueue on a tail pointer and
// spin locally on their predecessor's node.
type CLH struct{ tail mem.Addr }

// CLHHandle is a thread's private queue node state. Each thread must use
// its own handle.
type CLHHandle struct {
	node mem.Addr
	pred mem.Addr
}

// NewCLH allocates the lock with a free dummy node at the tail.
func NewCLH(x machine.API) *CLH {
	l := &CLH{tail: x.Alloc(8)}
	dummy := x.Alloc(8) // 0 = released
	x.Store(dummy, 0)
	x.Store(l.tail, uint64(dummy))
	return l
}

// NewHandle allocates a thread's CLH node.
func (l *CLH) NewHandle(x machine.API) *CLHHandle {
	return &CLHHandle{node: x.Alloc(8)}
}

// Lock enqueues h's node and spins on the predecessor's node word.
func (l *CLH) Lock(x machine.API, h *CLHHandle) {
	x.Store(h.node, 1) // locked
	h.pred = mem.Addr(x.Swap(l.tail, uint64(h.node)))
	for x.Load(h.pred) != 0 {
		x.Work(8)
	}
}

// Unlock releases h's node; the predecessor node is recycled as h's next
// queue node (standard CLH recycling).
func (l *CLH) Unlock(x machine.API, h *CLHHandle) {
	x.Store(h.node, 0)
	h.node = h.pred
}

// Addr returns the tail pointer address.
func (l *CLH) Addr() mem.Addr { return l.tail }

// MCS is an MCS queue lock [25]: threads enqueue via a tail swap and each
// spins on a flag in its own queue node; the releaser hands the lock to
// its successor directly.
type MCS struct{ tail mem.Addr }

// MCSHandle is a thread's private queue node: [locked, next].
type MCSHandle struct{ node mem.Addr }

const (
	mcsLocked = 0
	mcsNext   = 8
)

// NewMCS allocates the lock (tail = 0 means free).
func NewMCS(x machine.API) *MCS { return &MCS{tail: x.Alloc(8)} }

// NewHandle allocates a thread's MCS node.
func (l *MCS) NewHandle(x machine.API) *MCSHandle {
	return &MCSHandle{node: x.Alloc(16)}
}

// Lock enqueues h's node and spins on its own flag until the predecessor
// hands over.
func (l *MCS) Lock(x machine.API, h *MCSHandle) {
	x.Store(h.node+mcsLocked, 1)
	x.Store(h.node+mcsNext, 0)
	pred := x.Swap(l.tail, uint64(h.node))
	if pred == 0 {
		return // lock was free
	}
	x.Store(mem.Addr(pred)+mcsNext, uint64(h.node))
	for x.Load(h.node+mcsLocked) != 0 {
		x.Work(8)
	}
}

// Unlock hands the lock to the successor, or frees it if none.
func (l *MCS) Unlock(x machine.API, h *MCSHandle) {
	next := x.Load(h.node + mcsNext)
	if next == 0 {
		if x.CAS(l.tail, uint64(h.node), 0) {
			return // no successor
		}
		// A successor is enqueueing; wait for its link.
		for next == 0 {
			x.Work(4)
			next = x.Load(h.node + mcsNext)
		}
	}
	x.Store(mem.Addr(next)+mcsLocked, 0)
}

// Addr returns the tail pointer address.
func (l *MCS) Addr() mem.Addr { return l.tail }

// Leased wraps a TryLock with the §6 pattern: the thread leases the lock
// variable before try_lock and holds the lease for the whole critical
// section, so (a) the unlock is a guaranteed L1 hit and (b) waiters queue
// behind the lease instead of bouncing the line. A failed try_lock drops
// the lease immediately ("a thread should immediately release a lock that
// is already owned").
type Leased struct {
	Inner     TryLock
	LeaseTime uint64
}

// NewLeased wraps inner, leasing for leaseTime cycles per acquisition.
func NewLeased(inner TryLock, leaseTime uint64) *Leased {
	return &Leased{Inner: inner, LeaseTime: leaseTime}
}

// TryLock leases the lock line, then tries the inner lock; on failure the
// lease is dropped at once.
func (l *Leased) TryLock(x machine.API) bool {
	x.Lease(l.Inner.Addr(), l.LeaseTime)
	if l.Inner.TryLock(x) {
		return true
	}
	x.Release(l.Inner.Addr())
	return false
}

// Lock loops TryLock with a brief pause between failures.
func (l *Leased) Lock(x machine.API) {
	for !l.TryLock(x) {
		x.Work(16)
	}
}

// Unlock releases the inner lock, then the lease (the reset is an L1 hit
// while the lease holds).
func (l *Leased) Unlock(x machine.API) {
	l.Inner.Unlock(x)
	x.Release(l.Inner.Addr())
}

// Addr returns the inner lock's address.
func (l *Leased) Addr() mem.Addr { return l.Inner.Addr() }
