package locks

import (
	"testing"

	"leaserelease/internal/machine"
)

func TestMCSMutex(t *testing.T) {
	const cores, per = 8, 40
	m := machine.New(machine.DefaultConfig(cores))
	d := m.Direct()
	ctr := d.Alloc(8)
	l := NewMCS(d)
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *machine.Ctx) {
			h := l.NewHandle(c)
			for n := 0; n < per; n++ {
				l.Lock(c, h)
				c.Store(ctr, c.Load(ctr)+1)
				c.Work(20)
				l.Unlock(c, h)
				c.Work(uint64(c.Rand().Intn(30)))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != cores*per {
		t.Fatalf("counter = %d, want %d", got, cores*per)
	}
}

func TestMCSUncontendedFastPath(t *testing.T) {
	m := machine.New(machine.DefaultConfig(1))
	d := m.Direct()
	l := NewMCS(d)
	done := false
	m.Spawn(0, func(c *machine.Ctx) {
		h := l.NewHandle(c)
		for i := 0; i < 10; i++ {
			l.Lock(c, h)
			l.Unlock(c, h)
		}
		done = true
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("single-thread lock/unlock did not complete")
	}
}

func TestMCSHandoffNoStarvation(t *testing.T) {
	const cores = 6
	m := machine.New(machine.DefaultConfig(cores))
	d := m.Direct()
	l := NewMCS(d)
	counts := make([]int, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			h := l.NewHandle(c)
			for {
				l.Lock(c, h)
				counts[i]++
				c.Work(40)
				l.Unlock(c, h)
			}
		})
	}
	if err := m.Run(300000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("thread %d starved under MCS: %v", i, counts)
		}
	}
}
