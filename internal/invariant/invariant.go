// Package invariant is the simulator's runtime correctness monitor. It
// subscribes to the telemetry bus (PR 1) and validates, on every event,
// the invariants the paper's argument rests on:
//
//   - MSI agreement: for every non-busy line an event touches, the
//     directory's committed state must agree with all cores' L1 states —
//     a Modified line has no second writer and no stale sharer, a Shared
//     line has no writer and only recorded sharers, an Invalid line is
//     cached nowhere.
//   - Lease-table bounds: each core holds at most MAX_NUM_LEASES entries,
//     in FIFO (strictly generation-increasing) order, and no started
//     lease survives past its deadline (the MAX_LEASE_TIME bound).
//   - Proposition 1: at most one coherence probe is ever queued behind a
//     leased line; a second concurrent deferral is a protocol bug.
//   - Bounded probe deferral: a deferred probe must be served by the
//     lease's deadline (plus a small scheduling slack); probes deferred
//     during a MultiLease acquisition phase get the correspondingly
//     larger Proposition-2-style bound.
//   - Event-order sanity: bus events carry non-decreasing timestamps.
//
// The checker is a pure observer: it reads simulated state but never
// mutates it and schedules no events, so — like all telemetry — enabling
// it cannot change simulated timing. Violations are collected (not
// panicked) together with a structured machine.StateDump captured at the
// first violation, giving harnesses a typed, debuggable failure instead
// of a dead process.
package invariant

import (
	"fmt"
	"strings"

	"leaserelease/internal/core"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
	"leaserelease/internal/telemetry"
)

// Config tunes the checker. The zero value picks sensible defaults.
type Config struct {
	// History is the size of the last-events ring included in diagnostic
	// dumps (default 32).
	History int
	// MaxViolations caps how many violations are recorded before the
	// checker goes quiet (default 16). The first violation usually
	// cascades; the cap keeps dumps readable.
	MaxViolations int
	// DeadlineSlack is the scheduling slack, in cycles, allowed past a
	// lease deadline before a still-deferred probe counts as starved
	// (default 256 — expiry timers fire exactly at the deadline, but the
	// serve itself takes a few events).
	DeadlineSlack uint64
}

func (c Config) withDefaults() Config {
	if c.History <= 0 {
		c.History = 32
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 16
	}
	if c.DeadlineSlack == 0 {
		c.DeadlineSlack = 256
	}
	return c
}

// Violation is one observed invariant breach.
type Violation struct {
	Cycle  uint64 `json:"cycle"`
	Rule   string `json:"rule"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[cycle %d] %s: %s", v.Cycle, v.Rule, v.Detail)
}

// Error aggregates a run's violations with the diagnostic dump captured
// when the first one was observed.
type Error struct {
	Violations []Violation        `json:"violations"`
	Dump       *machine.StateDump `json:"dump,omitempty"`
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s); first: %s", len(e.Violations), e.Violations[0])
	return b.String()
}

type defKey struct {
	core int
	line mem.Line
}

type deferral struct {
	queuedAt uint64
	deadline uint64 // latest legal serve time
}

// Checker validates invariants on every telemetry event. Construct with
// Attach; all methods must be called from the simulation goroutine (the
// same context bus subscribers run in).
type Checker struct {
	m   *machine.Machine
	cfg Config

	maxLease uint64
	maxN     int

	lastTime uint64
	deferred map[defKey]deferral

	history  []telemetry.Event
	histPos  int
	histFull bool

	// agreementRule names the per-line agreement invariant after the
	// machine's protocol: "msi-agreement" or "tardis-agreement".
	agreementRule string

	// Checks counts individual invariant evaluations (tests use it to
	// prove the checker actually ran).
	Checks uint64

	violations []Violation
	dump       *machine.StateDump
}

// Attach subscribes a new checker to the machine's telemetry bus. The
// machine's bus is created on first use, so attaching enables telemetry
// emission — but the checker itself never perturbs simulated timing.
//
// The checker's handlers read live machine state (directory entries, L1
// states) at the moment of each event, so it requires synchronous event
// delivery: attaching marks the bus with RequireSync, which makes the
// machine degrade a sharded configuration to the sequential executor.
// Buffer-and-merge subscribers (histograms, spans, ledger, timelines)
// have no such requirement and shard freely.
func Attach(m *machine.Machine, cfg Config) *Checker {
	cfg = cfg.withDefaults()
	c := &Checker{
		m:             m,
		cfg:           cfg,
		maxLease:      m.Config().Lease.MaxLeaseTime,
		maxN:          m.Config().Lease.MaxNumLeases,
		deferred:      make(map[defKey]deferral),
		history:       make([]telemetry.Event, cfg.History),
		agreementRule: m.ProtocolName() + "-agreement",
	}
	bus := m.Telemetry()
	bus.RequireSync()
	bus.SubscribeAll(c.onEvent)
	return c
}

// groupBound is the deferral bound for probes queued during a MultiLease
// acquisition phase: every group line acquisition can itself wait behind
// another core's lease, so the phase is bounded by MAX_NUM_LEASES chained
// waits (cf. Proposition 2's wait-time analysis) plus transit latency.
func (c *Checker) groupBound(now uint64) uint64 {
	return now + uint64(c.maxN+1)*c.maxLease + 50_000
}

func (c *Checker) violate(cycle uint64, rule, format string, args ...interface{}) {
	if len(c.violations) >= c.cfg.MaxViolations {
		return
	}
	c.violations = append(c.violations, Violation{
		Cycle: cycle, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
	if c.dump == nil {
		c.dump = c.m.DumpState()
		c.dump.Events = machine.DumpEvents(c.History())
	}
}

func (c *Checker) onEvent(e telemetry.Event) {
	c.Checks++
	c.history[c.histPos] = e
	c.histPos++
	if c.histPos == len(c.history) {
		c.histPos = 0
		c.histFull = true
	}

	if e.Time < c.lastTime {
		c.violate(e.Time, "event-order",
			"event time %d precedes previous event time %d (cat %s kind %d)",
			e.Time, c.lastTime, e.Cat, e.Kind)
	}
	c.lastTime = e.Time

	switch e.Cat {
	case telemetry.CatLease:
		c.checkLeaseEvent(e)
		if e.Core >= 0 && e.Core < c.m.NumCores() {
			c.checkTable(e.Core, e.Time)
		}
	case telemetry.CatDirQueue:
		if e.Val < 1 {
			c.violate(e.Time, "dir-queue",
				"line %#x arrival reported occupancy %d < 1", uint64(e.Line), e.Val)
		}
	}

	// CatTxn events mark transaction-internal instants (queue arrival,
	// service, invalidation fan-out, completion hand-off) where the line
	// is legitimately mid-transition — e.g. the directory has granted M
	// while invalidation acks are still in flight — so line agreement is
	// only probed on the protocol-level events. The rule is named after
	// the active protocol: MSI agreement for the directory, timestamp
	// order (wts <= rts, reservations within rts) for Tardis.
	if e.Line != 0 && e.Cat != telemetry.CatTxn {
		if err := c.m.VerifyLine(e.Line); err != nil {
			c.violate(e.Time, c.agreementRule, "%v", err)
		}
	}

	c.checkDeferred(e.Time)
}

// findLease returns core's lease entry for line, or nil.
func (c *Checker) findLease(coreID int, line mem.Line) *core.Entry {
	var found *core.Entry
	c.m.ForEachLease(coreID, func(e *core.Entry) {
		if e.Line == line {
			found = e
		}
	})
	return found
}

func (c *Checker) checkLeaseEvent(e telemetry.Event) {
	switch e.Kind {
	case telemetry.ProbeDeferred:
		k := defKey{core: e.Core, line: e.Line}
		if d, ok := c.deferred[k]; ok {
			c.violate(e.Time, "proposition-1",
				"second probe deferred on core %d line %#x (first queued at cycle %d)",
				e.Core, uint64(e.Line), d.queuedAt)
			return
		}
		// A probe on a started lease must be served by the deadline; one
		// queued during a group acquisition phase gets the larger bound.
		deadline := c.groupBound(e.Time)
		if le := c.findLease(e.Core, e.Line); le != nil && le.Started {
			deadline = le.Deadline + c.cfg.DeadlineSlack
		}
		c.deferred[k] = deferral{queuedAt: e.Time, deadline: deadline}

	case telemetry.ProbeServed:
		k := defKey{core: e.Core, line: e.Line}
		d, ok := c.deferred[k]
		if !ok {
			c.violate(e.Time, "proposition-1",
				"probe served on core %d line %#x with no recorded deferral",
				e.Core, uint64(e.Line))
			return
		}
		delete(c.deferred, k)
		if e.Time > d.deadline {
			c.violate(e.Time, "probe-deferral-bound",
				"probe on core %d line %#x served %d cycles after queueing (deadline was cycle %d)",
				e.Core, uint64(e.Line), e.Time-d.queuedAt, d.deadline)
		}
	}
}

// checkTable validates one core's lease table: size bound, FIFO
// (generation) order, and the MAX_LEASE_TIME deadline bound.
func (c *Checker) checkTable(coreID int, now uint64) {
	n, lastGen := 0, uint64(0)
	c.m.ForEachLease(coreID, func(e *core.Entry) {
		n++
		if e.Gen <= lastGen {
			c.violate(now, "lease-fifo",
				"core %d lease table out of FIFO order: gen %d after gen %d (line %#x)",
				coreID, e.Gen, lastGen, uint64(e.Line))
		}
		lastGen = e.Gen
		if e.Duration > c.maxLease {
			c.violate(now, "lease-bound",
				"core %d line %#x lease duration %d exceeds MAX_LEASE_TIME %d",
				coreID, uint64(e.Line), e.Duration, c.maxLease)
		}
		if e.Started && now > e.Deadline {
			c.violate(now, "lease-deadline",
				"core %d line %#x lease outlived its deadline %d (now %d)",
				coreID, uint64(e.Line), e.Deadline, now)
		}
	})
	if n > c.maxN {
		c.violate(now, "lease-bound",
			"core %d holds %d leases, exceeding MAX_NUM_LEASES %d", coreID, n, c.maxN)
	}
}

// checkDeferred flags probes still queued past their serve deadline (a
// starved probe would otherwise only surface as a deadlock much later).
func (c *Checker) checkDeferred(now uint64) {
	for k, d := range c.deferred {
		if now > d.deadline {
			c.violate(now, "probe-deferral-bound",
				"probe on core %d line %#x still deferred %d cycles after queueing (deadline was cycle %d)",
				k.core, uint64(k.line), now-d.queuedAt, d.deadline)
			delete(c.deferred, k) // report once
		}
	}
}

// CheckNow runs the full quiescent-state validation: the whole-protocol
// line cross-check plus every core's lease table. Call it after Run/Drain
// returns (per-event checks only cover lines that emitted events).
func (c *Checker) CheckNow() {
	now := c.m.Now()
	c.Checks++
	if err := c.m.VerifyCoherence(); err != nil {
		c.violate(now, c.agreementRule, "%v", err)
	}
	for i := 0; i < c.m.NumCores(); i++ {
		c.checkTable(i, now)
	}
	c.checkDeferred(now)
}

// Violations returns the recorded violations (nil if none).
func (c *Checker) Violations() []Violation { return c.violations }

// History returns the last events observed, oldest first.
func (c *Checker) History() []telemetry.Event {
	if !c.histFull {
		return append([]telemetry.Event(nil), c.history[:c.histPos]...)
	}
	out := make([]telemetry.Event, 0, len(c.history))
	out = append(out, c.history[c.histPos:]...)
	out = append(out, c.history[:c.histPos]...)
	return out
}

// Err returns nil if every check passed, or an *Error carrying the
// violations and the diagnostic dump captured at the first one.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return &Error{Violations: c.violations, Dump: c.dump}
}
