package invariant_test

import (
	"testing"

	"leaserelease/internal/faults"
	"leaserelease/internal/invariant"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// FuzzMachineOps drives full machines (cores, L1s, directory, lease
// tables) with byte-derived instruction streams — leases, releases,
// MultiLease groups, plain and RMW accesses — under fault injection, with
// the invariant checker attached. Any violation or escaped panic fails.
func FuzzMachineOps(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77})
	f.Add([]byte{0x03, 0x03, 0x03, 0x03, 0x13, 0x13, 0x13, 0x13})
	f.Add([]byte{0xf0, 0xe1, 0xd2, 0xc3, 0xb4, 0xa5, 0x96, 0x87, 0x78, 0x69,
		0x5a, 0x4b, 0x3c, 0x2d, 0x1e, 0x0f})
	f.Add([]byte{0x04, 0x40, 0x04, 0x40, 0x04, 0x40})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512] // bound sim length per exec
		}
		cfg := machine.DefaultConfig(3)
		cfg.Faults = faults.DefaultConfig()
		if len(data) > 0 {
			cfg.Seed = uint64(data[0]) + 1
		}
		m := machine.New(cfg)
		chk := invariant.Attach(m, invariant.Config{})
		d := m.Direct()
		shared := make([]mem.Addr, 8)
		for i := range shared {
			shared[i] = d.Alloc(8)
		}

		// Each thread consumes an interleaved slice of the input.
		for tid := 0; tid < 3; tid++ {
			tid := tid
			m.Spawn(0, func(c *machine.Ctx) {
				for i := tid; i < len(data); i += 3 {
					b := data[i]
					a := shared[int(b>>3)%len(shared)]
					switch b % 8 {
					case 0, 1:
						c.Lease(a, 200+uint64(b)*8)
						c.Store(a, c.Load(a)+1)
						c.Release(a)
					case 2:
						c.Lease(a, 150)
						c.FetchAdd(a, 1)
						// No release: left to expire or be FIFO-evicted.
					case 3:
						b2 := shared[int(b>>5)%len(shared)]
						if c.MultiLease(400, a, b2) {
							c.Store(a, 1)
							c.Store(b2, 2)
							c.ReleaseAll()
						}
					case 4:
						c.SoftMultiLease(300, a, shared[(int(b>>3)+1)%len(shared)])
						c.FetchAdd(a, 1)
						c.ReleaseAll()
					case 5:
						c.CAS(a, 0, uint64(b))
					case 6:
						c.Load(a)
					case 7:
						c.Work(uint64(b))
					}
				}
				c.ReleaseAll()
			})
		}
		if err := m.Drain(); err != nil {
			t.Fatalf("drain: %v\n%s", err, m.DumpState())
		}
		chk.CheckNow()
		if err := chk.Err(); err != nil {
			t.Fatalf("invariant violations:\n%v", err)
		}
	})
}
