package invariant_test

import (
	"errors"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"leaserelease/internal/cache"
	"leaserelease/internal/faults"
	"leaserelease/internal/invariant"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
	"leaserelease/internal/telemetry"
)

// chaosWorkload exercises every lease-path the checker watches: contended
// single leases, MultiLease groups, plain RMWs that probe leased lines,
// and deliberate lease-table overflow (FIFO eviction).
func chaosWorkload(c *machine.Ctx, shared []mem.Addr, iters int) {
	r := c.Rand()
	maxN := 8
	for i := 0; i < iters; i++ {
		a := shared[r.Intn(len(shared))]
		switch r.Intn(6) {
		case 0, 1, 2:
			c.Lease(a, 300+uint64(r.Intn(1200)))
			c.Store(a, c.Load(a)+1)
			c.Work(uint64(r.Intn(80)))
			c.Release(a)
		case 3:
			b := shared[r.Intn(len(shared))]
			if c.MultiLease(600, a, b) {
				c.Store(a, c.Load(b)+1)
				c.Work(uint64(r.Intn(60)))
				c.ReleaseAll()
			}
		case 4:
			c.FetchAdd(a, 1)
		case 5:
			// Overflow the lease table to force FIFO evictions.
			for j := 0; j < maxN+2 && j < len(shared); j++ {
				c.Lease(shared[j], 400)
			}
			c.Work(uint64(r.Intn(50)))
			c.ReleaseAll()
		}
		c.Work(uint64(r.Intn(30)))
	}
	c.ReleaseAll()
}

func runChaos(cfg machine.Config, threads, iters int, withChecker bool) (machine.Stats, uint64, *invariant.Checker, error) {
	m := machine.New(cfg)
	var chk *invariant.Checker
	if withChecker {
		chk = invariant.Attach(m, invariant.Config{})
	}
	d := m.Direct()
	shared := make([]mem.Addr, 12)
	for i := range shared {
		shared[i] = d.Alloc(8)
	}
	for t := 0; t < threads; t++ {
		m.Spawn(0, func(c *machine.Ctx) { chaosWorkload(c, shared, iters) })
	}
	err := m.Drain()
	if chk != nil {
		chk.CheckNow()
	}
	return m.Stats(), m.Now(), chk, err
}

func TestHealthyRunHasNoViolations(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	_, _, chk, err := runChaos(cfg, 4, 120, true)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if chk.Checks == 0 {
		t.Fatal("checker observed no events — bus wiring broken")
	}
	if verr := chk.Err(); verr != nil {
		t.Fatalf("healthy run reported violations:\n%v", verr)
	}
}

func TestHealthyFaultRunHasNoViolations(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.Faults = faults.DefaultConfig()
	_, _, chk, err := runChaos(cfg, 4, 120, true)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if verr := chk.Err(); verr != nil {
		t.Fatalf("fault-injected run reported violations (faults must stay protocol-legal):\n%v", verr)
	}
}

// TestCheckerZeroPerturbation is the acceptance regression: with faults
// disabled, a run with the checker attached must produce byte-for-byte
// the same timing and statistics as a run without it.
func TestCheckerZeroPerturbation(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	s1, cyc1, _, err1 := runChaos(cfg, 4, 150, false)
	s2, cyc2, _, err2 := runChaos(cfg, 4, 150, true)
	if err1 != nil || err2 != nil {
		t.Fatalf("drain: %v / %v", err1, err2)
	}
	if cyc1 != cyc2 {
		t.Fatalf("checker changed simulated time: %d vs %d cycles", cyc1, cyc2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("checker changed machine statistics:\n  off: %+v\n  on:  %+v", s1, s2)
	}
}

// TestFaultRunsDeterministic: identical seeds must replay identically,
// fault injection included.
func TestFaultRunsDeterministic(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.Faults = faults.DefaultConfig()
	cfg.Seed = 7
	s1, cyc1, chk1, err1 := runChaos(cfg, 4, 150, true)
	s2, cyc2, chk2, err2 := runChaos(cfg, 4, 150, true)
	if err1 != nil || err2 != nil {
		t.Fatalf("drain: %v / %v", err1, err2)
	}
	if cyc1 != cyc2 || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed, different run: %d vs %d cycles\n  %+v\n  %+v", cyc1, cyc2, s1, s2)
	}
	if chk1.Checks != chk2.Checks {
		t.Fatalf("same seed, different event streams: %d vs %d checks", chk1.Checks, chk2.Checks)
	}
}

// TestMutationSecondWriter corrupts a second core's L1 mid-run — the
// classic single-writer violation — and requires the checker to produce a
// structured diagnostic (violations + state dump), not a bare panic.
func TestMutationSecondWriter(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	m := machine.New(cfg)
	chk := invariant.Attach(m, invariant.Config{})
	d := m.Direct()
	ctr := d.Alloc(8)
	line := mem.LineOf(ctr)

	m.Spawn(0, func(c *machine.Ctx) {
		for i := 0; i < 12; i++ {
			c.Lease(ctr, 2000)
			c.Store(ctr, c.Load(ctr)+1)
			c.Work(60)
			c.Release(ctr)
			c.Work(120)
		}
	})
	m.Spawn(0, func(c *machine.Ctx) {
		c.Work(900)
		c.Fence()
		// Deliberate corruption: a second writer appears without any
		// coherence transaction.
		m.L1(1).Install(line, cache.Modified)
		c.Work(4000)
	})
	if err := m.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	chk.CheckNow()

	err := chk.Err()
	if err == nil {
		t.Fatal("second writer went undetected")
	}
	var ierr *invariant.Error
	if !errors.As(err, &ierr) {
		t.Fatalf("Err() returned %T, want *invariant.Error", err)
	}
	found := false
	for _, v := range ierr.Violations {
		if v.Rule == "msi-agreement" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no msi-agreement violation in: %v", ierr.Violations)
	}
	if ierr.Dump == nil {
		t.Fatal("violation carries no state dump")
	}
	if !strings.Contains(ierr.Dump.String(), "core") {
		t.Fatal("dump renders empty")
	}
}

// TestMutationEventStream feeds the checker corrupt telemetry directly:
// time running backwards and a double probe deferral.
func TestMutationEventStream(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	m := machine.New(cfg)
	chk := invariant.Attach(m, invariant.Config{})
	bus := m.Telemetry()
	l := mem.LineOf(0x40)

	bus.Emit(telemetry.CatLease, 0, telemetry.ProbeDeferred, l, telemetry.NoVal)
	bus.Emit(telemetry.CatLease, 0, telemetry.ProbeDeferred, l, telemetry.NoVal)

	err := chk.Err()
	if err == nil {
		t.Fatal("double deferral went undetected")
	}
	var ierr *invariant.Error
	if !errors.As(err, &ierr) {
		t.Fatalf("Err() returned %T", err)
	}
	if ierr.Violations[0].Rule != "proposition-1" {
		t.Fatalf("want proposition-1 violation, got %v", ierr.Violations[0])
	}
}

// TestChaosSoak runs the chaos workload under fault injection across many
// seeds with the checker attached, rotating through fault profiles that
// now include core preemption (untargeted and targeted stalled-holder,
// with and without the adaptive lease controller). SOAK_SEEDS scales it
// up for CI (default kept small for the ordinary test run).
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	seeds := 24
	if s := os.Getenv("SOAK_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			seeds = n
		}
	}
	profiles := []struct {
		name string
		cfg  func(seed uint64) (faults.Config, bool)
	}{
		{"faults", func(seed uint64) (faults.Config, bool) {
			return faults.DefaultConfig(), false
		}},
		{"faults+preempt", func(seed uint64) (faults.Config, bool) {
			return faults.DefaultConfig().WithPreemption(), false
		}},
		{"faults+preempt-targeted", func(seed uint64) (faults.Config, bool) {
			fc := faults.DefaultConfig().WithPreemption()
			fc.PreemptTargeted = true
			return fc, false
		}},
		{"faults+preempt+controller", func(seed uint64) (faults.Config, bool) {
			return faults.DefaultConfig().WithPreemption(), true
		}},
	}
	for seed := 1; seed <= seeds; seed++ {
		p := profiles[seed%len(profiles)]
		cfg := machine.DefaultConfig(4)
		cfg.Seed = uint64(seed)
		fc, ctrl := p.cfg(uint64(seed))
		fc.Seed = uint64(seed)
		cfg.Faults = fc
		cfg.Controller.Enable = ctrl
		_, _, chk, err := runChaos(cfg, 4, 60, true)
		if err != nil {
			t.Fatalf("seed %d (%s): drain: %v", seed, p.name, err)
		}
		if verr := chk.Err(); verr != nil {
			t.Fatalf("seed %d (%s): invariant violations under fault injection:\n%v", seed, p.name, verr)
		}
	}
}
