package faults

import (
	"reflect"
	"testing"

	"leaserelease/internal/sim"
)

// TestDisabledConfigYieldsNilInjector: the disabled configuration is the
// nil injector, and every nil method returns the no-fault value with zero
// stats — the zero-overhead path clean runs depend on.
func TestDisabledConfigYieldsNilInjector(t *testing.T) {
	if inj := New(Config{}, 1); inj != nil {
		t.Fatal("New with zero Config returned a non-nil injector")
	}
	cfg := DefaultConfig()
	cfg.Enabled = false
	if inj := New(cfg, 1); inj != nil {
		t.Fatal("New with Enabled=false returned a non-nil injector")
	}
	var inj *Injector
	if d := inj.MsgDelay(); d != 0 {
		t.Fatalf("nil MsgDelay = %d, want 0", d)
	}
	if d := inj.DirStall(); d != 0 {
		t.Fatalf("nil DirStall = %d, want 0", d)
	}
	if c := inj.LeaseCut(10_000); c != 0 {
		t.Fatalf("nil LeaseCut = %d, want 0", c)
	}
	if d := inj.Preempt(3, true); d != 0 {
		t.Fatalf("nil Preempt = %d, want 0", d)
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", s)
	}
}

// TestEnabledAllZeroConfigInjectsNothing: an enabled config whose every
// fault field is zero draws nothing and delivers nothing.
func TestEnabledAllZeroConfigInjectsNothing(t *testing.T) {
	inj := New(Config{Enabled: true}, 7)
	if inj == nil {
		t.Fatal("New with Enabled=true returned nil")
	}
	for i := 0; i < 100; i++ {
		if inj.MsgDelay() != 0 || inj.DirStall() != 0 ||
			inj.LeaseCut(10_000) != 0 || inj.Preempt(i%4, i%2 == 0) != 0 {
			t.Fatal("all-zero enabled config injected a fault")
		}
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("all-zero enabled config counted faults: %+v", s)
	}
}

// TestPreemptDeterministicPerCore: a core's preemption schedule is a pure
// function of (seed, core, eligible-point count) — two injectors with the
// same seeds produce identical draw sequences regardless of the order
// cores interleave their points.
func TestPreemptDeterministicPerCore(t *testing.T) {
	cfg := Config{Enabled: true, PreemptPermille: 100, PreemptMin: 100, PreemptMax: 5000}
	draw := func(order []int) map[int][]sim.Time {
		inj := New(cfg, 42)
		out := make(map[int][]sim.Time)
		for _, core := range order {
			out[core] = append(out[core], inj.Preempt(core, false))
		}
		return out
	}
	// Round-robin vs core-major orderings of the same per-core point counts.
	var rr, cm []int
	for i := 0; i < 60; i++ {
		rr = append(rr, i%3)
	}
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			cm = append(cm, c)
		}
	}
	if a, b := draw(rr), draw(cm); !reflect.DeepEqual(a, b) {
		t.Fatal("per-core preemption schedule depends on interleaving")
	}
}

// TestPreemptStatsConserve: PreemptCycles equals the sum of delivered
// durations, and each duration respects the [Min, Max] bounds.
func TestPreemptStatsConserve(t *testing.T) {
	cfg := Config{Enabled: true, PreemptPermille: 300, PreemptMin: 200, PreemptMax: 3000}
	inj := New(cfg, 9)
	var sum sim.Time
	var count uint64
	for i := 0; i < 5000; i++ {
		d := inj.Preempt(i%8, i%3 == 0)
		if d == 0 {
			continue
		}
		if d < cfg.PreemptMin || d > cfg.PreemptMax {
			t.Fatalf("duration %d outside [%d, %d]", d, cfg.PreemptMin, cfg.PreemptMax)
		}
		sum += d
		count++
	}
	s := inj.Stats()
	if s.Preemptions != count || s.PreemptCycles != sum {
		t.Fatalf("stats %d/%d cycles, delivered %d/%d", s.Preemptions, s.PreemptCycles, count, sum)
	}
	if count == 0 {
		t.Fatal("permille 300 over 5000 points delivered nothing")
	}
}

// TestPreemptTargetedSkipsNonHolders: targeted mode never preempts a
// non-holder, consumes no draw for one, and counts every delivery as a
// holder hit.
func TestPreemptTargetedSkipsNonHolders(t *testing.T) {
	cfg := Config{Enabled: true, PreemptPermille: 1000, PreemptMin: 10, PreemptMax: 10, PreemptTargeted: true}
	inj := New(cfg, 5)
	if d := inj.Preempt(0, false); d != 0 {
		t.Fatalf("targeted mode preempted a non-holder for %d cycles", d)
	}
	if d := inj.Preempt(0, true); d == 0 {
		t.Fatal("permille 1000 did not preempt a holder")
	}
	s := inj.Stats()
	if s.Preemptions != 1 || s.HolderPreemptions != 1 {
		t.Fatalf("stats %+v, want 1 preemption, all holder", s)
	}
	// Interleaving ineligible points must not perturb the schedule.
	a := New(cfg, 6)
	b := New(cfg, 6)
	var da, db []sim.Time
	for i := 0; i < 50; i++ {
		a.Preempt(0, false) // ineligible: no draw
		da = append(da, a.Preempt(0, true))
		db = append(db, b.Preempt(0, true))
	}
	if !reflect.DeepEqual(da, db) {
		t.Fatal("ineligible points consumed draws in targeted mode")
	}
}

// TestProfileStrings: Profile is "" exactly for configs that inject
// nothing, and distinguishes targeted from untargeted schedules.
func TestProfileStrings(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, ""},
		{Config{Enabled: true}, ""},
		{DefaultConfig(), "j8d5x40c10w2"},
		{Config{Enabled: true, PreemptPermille: 10, PreemptMin: 500, PreemptMax: 40000}, "p10x500-40000"},
		{Config{Enabled: true, PreemptPermille: 10, PreemptMin: 500, PreemptMax: 40000, PreemptTargeted: true}, "P10x500-40000"},
		{DefaultConfig().WithPreemption(), "j8d5x40c10w2p5x200-30000"},
		// PreemptMax == 0 disables preemption, so it must not tag.
		{Config{Enabled: true, PreemptPermille: 10}, ""},
	}
	for _, c := range cases {
		if got := c.cfg.Profile(); got != c.want {
			t.Errorf("Profile(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}
