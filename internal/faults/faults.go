// Package faults is the simulator's fault-injection layer: deterministic,
// protocol-legal perturbations of the simulated hardware, in the spirit of
// the perturbation-based validation used for hardware coherence protocols
// (e.g. Tardis's model-checked validation runs).
//
// Every perturbation stays within what the architecture already permits —
// message latencies only grow, lease durations only shrink, the directory
// only delays (never reorders) its per-line FIFO queues, and capacity
// pressure only reduces the L1's effective associativity. A correct
// simulator must therefore survive any fault schedule with every invariant
// intact; the invariant package checks exactly that.
//
// All draws come from one splitmix64 stream seeded from the simulation
// seed, and the engine is sequential, so a faulty run is bit-for-bit
// reproducible from (Config, seed). With Enabled == false no draw is ever
// made and simulated timing is byte-for-byte identical to a build without
// this package.
package faults

import "leaserelease/internal/sim"

// Config selects which faults to inject and how hard. The zero value
// injects nothing.
type Config struct {
	// Enabled master-switches the injector; when false no other field is
	// consulted and no RNG draw happens.
	Enabled bool

	// Seed is mixed with the machine seed to derive the injection stream,
	// so the same workload seed can be run under many fault schedules.
	Seed uint64

	// MsgJitter adds a uniform 0..MsgJitter extra cycles to every
	// coherence message hop (requests, probe forwards, grants), on top of
	// the protocol's own NetJitter.
	MsgJitter sim.Time

	// DirStallPct is the percent chance (0..100) that the directory stalls
	// before servicing a line's next queued request; DirStallCycles is the
	// stall length. FIFO order per line is preserved.
	DirStallPct    int
	DirStallCycles sim.Time

	// LeaseCutPct is the percent chance (0..100) that a started lease's
	// expiry timer fires early — an involuntary break before the full
	// duration. The cut point is uniform in (0, duration). Shorter leases
	// are always legal (MAX_LEASE_TIME is an upper bound).
	LeaseCutPct int

	// CapacityWays, when positive and below the configured associativity,
	// caps the L1's ways (shrinking capacity proportionally) to force
	// eviction and fully-pinned-set pressure on the lease machinery.
	CapacityWays int
}

// DefaultConfig returns a moderate all-faults-on schedule used by the
// chaos-soak tests and `leasesim -faults`.
func DefaultConfig() Config {
	return Config{
		Enabled:        true,
		MsgJitter:      8,
		DirStallPct:    5,
		DirStallCycles: 40,
		LeaseCutPct:    10,
		CapacityWays:   2,
	}
}

// Stats counts injected faults; exported fields so harnesses can report
// how much perturbation a run actually received.
type Stats struct {
	MsgDelays      uint64 `json:"msg_delays"`
	MsgDelayCycles uint64 `json:"msg_delay_cycles"`
	DirStalls      uint64 `json:"dir_stalls"`
	DirStallCycles uint64 `json:"dir_stall_cycles"`
	LeaseCuts      uint64 `json:"lease_cuts"`
	LeaseCutCycles uint64 `json:"lease_cut_cycles"`
}

// Injector draws fault decisions from a deterministic stream. A nil
// *Injector is valid and inert: every method returns the no-fault value,
// so emit sites need no separate enabled checks.
type Injector struct {
	cfg   Config
	rng   sim.RNG
	stats Stats
}

// New builds an injector for cfg, mixing machineSeed into the stream.
// It returns nil when cfg.Enabled is false — the nil injector is the
// zero-overhead disabled configuration.
func New(cfg Config, machineSeed uint64) *Injector {
	if !cfg.Enabled {
		return nil
	}
	return &Injector{cfg: cfg, rng: sim.NewRNG((machineSeed*0x9E3779B1 + cfg.Seed) ^ 0xFA017FA01)}
}

// Stats returns a snapshot of the injection counters (zero for nil).
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// pct draws a percent check: true with probability p/100.
func (i *Injector) pct(p int) bool {
	if p <= 0 {
		return false
	}
	if p >= 100 {
		return true
	}
	return i.rng.Uint64n(100) < uint64(p)
}

// MsgDelay returns extra cycles to add to one coherence message hop.
func (i *Injector) MsgDelay() sim.Time {
	if i == nil || i.cfg.MsgJitter == 0 {
		return 0
	}
	d := i.rng.Uint64n(uint64(i.cfg.MsgJitter) + 1)
	if d > 0 {
		i.stats.MsgDelays++
		i.stats.MsgDelayCycles += d
	}
	return d
}

// DirStall returns a stall, in cycles, to insert before the directory
// services a line's next request (0 = no stall).
func (i *Injector) DirStall() sim.Time {
	if i == nil || i.cfg.DirStallCycles == 0 || !i.pct(i.cfg.DirStallPct) {
		return 0
	}
	i.stats.DirStalls++
	i.stats.DirStallCycles += uint64(i.cfg.DirStallCycles)
	return i.cfg.DirStallCycles
}

// LeaseCut returns how many cycles to cut from a started lease of the
// given duration (0 = run to the full deadline). The cut is uniform in
// [1, duration-1] so a cut lease still runs for at least one cycle.
func (i *Injector) LeaseCut(duration uint64) uint64 {
	if i == nil || duration < 2 || !i.pct(i.cfg.LeaseCutPct) {
		return 0
	}
	cut := 1 + i.rng.Uint64n(duration-1)
	i.stats.LeaseCuts++
	i.stats.LeaseCutCycles += cut
	return cut
}

// CapWays returns the effective L1 associativity under capacity pressure:
// min(configured, CapacityWays) when the fault is on, ways otherwise.
func (c Config) CapWays(ways int) int {
	if !c.Enabled || c.CapacityWays <= 0 || c.CapacityWays >= ways {
		return ways
	}
	return c.CapacityWays
}
