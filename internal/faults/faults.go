// Package faults is the simulator's fault-injection layer: deterministic,
// protocol-legal perturbations of the simulated hardware, in the spirit of
// the perturbation-based validation used for hardware coherence protocols
// (e.g. Tardis's model-checked validation runs).
//
// Every perturbation stays within what the architecture already permits —
// message latencies only grow, lease durations only shrink, the directory
// only delays (never reorders) its per-line FIFO queues, and capacity
// pressure only reduces the L1's effective associativity. A correct
// simulator must therefore survive any fault schedule with every invariant
// intact; the invariant package checks exactly that.
//
// All draws come from one splitmix64 stream seeded from the simulation
// seed, and the engine is sequential, so a faulty run is bit-for-bit
// reproducible from (Config, seed). With Enabled == false no draw is ever
// made and simulated timing is byte-for-byte identical to a build without
// this package.
package faults

import (
	"fmt"
	"strings"

	"leaserelease/internal/sim"
)

// Config selects which faults to inject and how hard. The zero value
// injects nothing.
type Config struct {
	// Enabled master-switches the injector; when false no other field is
	// consulted and no RNG draw happens.
	Enabled bool

	// Seed is mixed with the machine seed to derive the injection stream,
	// so the same workload seed can be run under many fault schedules.
	Seed uint64

	// MsgJitter adds a uniform 0..MsgJitter extra cycles to every
	// coherence message hop (requests, probe forwards, grants), on top of
	// the protocol's own NetJitter.
	MsgJitter sim.Time

	// DirStallPct is the percent chance (0..100) that the directory stalls
	// before servicing a line's next queued request; DirStallCycles is the
	// stall length. FIFO order per line is preserved.
	DirStallPct    int
	DirStallCycles sim.Time

	// LeaseCutPct is the percent chance (0..100) that a started lease's
	// expiry timer fires early — an involuntary break before the full
	// duration. The cut point is uniform in (0, duration). Shorter leases
	// are always legal (MAX_LEASE_TIME is an upper bound).
	LeaseCutPct int

	// CapacityWays, when positive and below the configured associativity,
	// caps the L1's ways (shrinking capacity proportionally) to force
	// eviction and fully-pinned-set pressure on the lease machinery.
	CapacityWays int

	// PreemptPermille is the per-preemption-point chance (0..1000) that a
	// core is descheduled by the "OS": the proc stops issuing events for
	// the drawn duration while its lease timers keep counting down in the
	// (still-powered) cache hardware, so held leases expire involuntarily.
	// Preemption points are memory-access boundaries (see machine.Ctx).
	PreemptPermille int

	// PreemptMin/PreemptMax bound the uniformly drawn preemption duration
	// in cycles. PreemptMax == 0 disables preemption regardless of
	// PreemptPermille.
	PreemptMin, PreemptMax sim.Time

	// PreemptTargeted restricts preemption to "holders": cores that hold
	// at least one lease, or are issuing an exclusive (write) access —
	// the adversarial stalled-holder schedule, which maximizes the time
	// victims wait behind the preempted core.
	PreemptTargeted bool
}

// DefaultConfig returns a moderate all-faults-on schedule used by the
// chaos-soak tests and `leasesim -faults`.
func DefaultConfig() Config {
	return Config{
		Enabled:        true,
		MsgJitter:      8,
		DirStallPct:    5,
		DirStallCycles: 40,
		LeaseCutPct:    10,
		CapacityWays:   2,
	}
}

// WithPreemption returns c with a moderate core-preemption schedule
// added (and the injector enabled): ~0.5% of preemption points
// descheduled for 200..30K cycles, untargeted. Used by the chaos soak's
// preemption profiles; the degradation experiments configure the fields
// directly.
func (c Config) WithPreemption() Config {
	c.Enabled = true
	c.PreemptPermille = 5
	c.PreemptMin = 200
	c.PreemptMax = 30_000
	return c
}

// Stats counts injected faults; exported fields so harnesses can report
// how much perturbation a run actually received.
type Stats struct {
	MsgDelays      uint64 `json:"msg_delays"`
	MsgDelayCycles uint64 `json:"msg_delay_cycles"`
	DirStalls      uint64 `json:"dir_stalls"`
	DirStallCycles uint64 `json:"dir_stall_cycles"`
	LeaseCuts      uint64 `json:"lease_cuts"`
	LeaseCutCycles uint64 `json:"lease_cut_cycles"`

	Preemptions       uint64 `json:"preemptions,omitempty"`
	PreemptCycles     uint64 `json:"preempt_cycles,omitempty"`
	HolderPreemptions uint64 `json:"holder_preemptions,omitempty"`
}

// Injector draws fault decisions from a deterministic stream. A nil
// *Injector is valid and inert: every method returns the no-fault value,
// so emit sites need no separate enabled checks.
type Injector struct {
	cfg   Config
	seed  uint64 // machine seed, kept to derive per-core preempt streams
	rng   sim.RNG
	prng  []sim.RNG // per-core preemption streams, grown on first use
	stats Stats
}

// New builds an injector for cfg, mixing machineSeed into the stream.
// It returns nil when cfg.Enabled is false — the nil injector is the
// zero-overhead disabled configuration.
func New(cfg Config, machineSeed uint64) *Injector {
	if !cfg.Enabled {
		return nil
	}
	return &Injector{cfg: cfg, seed: machineSeed,
		rng: sim.NewRNG((machineSeed*0x9E3779B1 + cfg.Seed) ^ 0xFA017FA01)}
}

// Stats returns a snapshot of the injection counters (zero for nil).
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// pct draws a percent check: true with probability p/100.
func (i *Injector) pct(p int) bool {
	if p <= 0 {
		return false
	}
	if p >= 100 {
		return true
	}
	return i.rng.Uint64n(100) < uint64(p)
}

// MsgDelay returns extra cycles to add to one coherence message hop.
func (i *Injector) MsgDelay() sim.Time {
	if i == nil || i.cfg.MsgJitter == 0 {
		return 0
	}
	d := i.rng.Uint64n(uint64(i.cfg.MsgJitter) + 1)
	if d > 0 {
		i.stats.MsgDelays++
		i.stats.MsgDelayCycles += d
	}
	return d
}

// DirStall returns a stall, in cycles, to insert before the directory
// services a line's next request (0 = no stall).
func (i *Injector) DirStall() sim.Time {
	if i == nil || i.cfg.DirStallCycles == 0 || !i.pct(i.cfg.DirStallPct) {
		return 0
	}
	i.stats.DirStalls++
	i.stats.DirStallCycles += uint64(i.cfg.DirStallCycles)
	return i.cfg.DirStallCycles
}

// LeaseCut returns how many cycles to cut from a started lease of the
// given duration (0 = run to the full deadline). The cut is uniform in
// [1, duration-1] so a cut lease still runs for at least one cycle.
func (i *Injector) LeaseCut(duration uint64) uint64 {
	if i == nil || duration < 2 || !i.pct(i.cfg.LeaseCutPct) {
		return 0
	}
	cut := 1 + i.rng.Uint64n(duration-1)
	i.stats.LeaseCuts++
	i.stats.LeaseCutCycles += cut
	return cut
}

// preemptRNG returns core's preemption stream, created on first use.
// Preemption draws come from per-core streams — not the shared fault
// stream — for two reasons: adding preemption to an existing schedule
// leaves every other fault's draw sequence (and so its byte-exact
// behaviour) unchanged, and each core's preemption schedule depends only
// on how many preemption points that core has passed, not on the global
// event interleaving.
func (i *Injector) preemptRNG(core int) *sim.RNG {
	for len(i.prng) <= core {
		id := uint64(len(i.prng))
		i.prng = append(i.prng, sim.NewRNG(
			(i.seed*0x9E3779B1+i.cfg.Seed)^(0xBADC0FFEE+id*0x9E3779B97F4A7C15)))
	}
	return &i.prng[core]
}

// Preempt draws one preemption decision at a core-local preemption point
// and returns the descheduled duration in cycles (0 = not preempted).
// holder reports whether the core currently holds a lease or is issuing
// an exclusive access; with PreemptTargeted only holders are eligible
// (ineligible points consume no draw, keeping each core's stream a pure
// function of its eligible-point count).
func (i *Injector) Preempt(core int, holder bool) sim.Time {
	if i == nil || i.cfg.PreemptPermille <= 0 || i.cfg.PreemptMax == 0 {
		return 0
	}
	if i.cfg.PreemptTargeted && !holder {
		return 0
	}
	r := i.preemptRNG(core)
	if r.Uint64n(1000) >= uint64(i.cfg.PreemptPermille) {
		return 0
	}
	lo, hi := i.cfg.PreemptMin, i.cfg.PreemptMax
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	d := lo + r.Uint64n(hi-lo+1)
	i.stats.Preemptions++
	i.stats.PreemptCycles += d
	if holder {
		i.stats.HolderPreemptions++
	}
	return d
}

// CapWays returns the effective L1 associativity under capacity pressure:
// min(configured, CapacityWays) when the fault is on, ways otherwise.
func (c Config) CapWays(ways int) int {
	if !c.Enabled || c.CapacityWays <= 0 || c.CapacityWays >= ways {
		return ways
	}
	return c.CapacityWays
}

// Profile renders a compact, stable identifier of the fault schedule for
// grouping runs (history keys, report labels). A disabled config — or an
// enabled one whose every field is zero, which injects nothing — renders
// as "", so clean runs keep their unsuffixed keys.
func (c Config) Profile() string {
	if !c.Enabled {
		return ""
	}
	var b strings.Builder
	if c.MsgJitter > 0 {
		fmt.Fprintf(&b, "j%d", c.MsgJitter)
	}
	if c.DirStallPct > 0 && c.DirStallCycles > 0 {
		fmt.Fprintf(&b, "d%dx%d", c.DirStallPct, c.DirStallCycles)
	}
	if c.LeaseCutPct > 0 {
		fmt.Fprintf(&b, "c%d", c.LeaseCutPct)
	}
	if c.CapacityWays > 0 {
		fmt.Fprintf(&b, "w%d", c.CapacityWays)
	}
	if c.PreemptPermille > 0 && c.PreemptMax > 0 {
		tag := "p"
		if c.PreemptTargeted {
			tag = "P" // targeted (holder-only) schedule
		}
		fmt.Fprintf(&b, "%s%dx%d-%d", tag, c.PreemptPermille, c.PreemptMin, c.PreemptMax)
	}
	return b.String()
}
