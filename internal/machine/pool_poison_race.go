//go:build race

package machine

import (
	"fmt"

	"leaserelease/internal/coherence"
	"leaserelease/internal/mem"
)

// Poison mode, enabled in -race builds: pooled-request lifecycle bugs fail
// loudly instead of corrupting determinism. poisonRelease scribbles the
// request with values every downstream consumer chokes on — the directory's
// bit() panics on the core index, and the line maps to an address no
// workload allocates — so a protocol path that holds a Request past its
// transaction trips immediately.

const (
	poisonCore = -0x0150_0150 // bit() panics on any negative core
	poisonLine = mem.Line(^uint64(0) >> 1)
)

func poisonAcquire(cs *coreState, req *coherence.Request) {
	if cs.reqBusy {
		panic(fmt.Sprintf(
			"machine: pooled request reused while in flight (core %d, line %#x): "+
				"a second transaction started before the first completed",
			cs.id, uint64(req.Line)))
	}
	cs.reqBusy = true
}

func poisonRelease(cs *coreState, req *coherence.Request) {
	if !cs.reqBusy {
		panic(fmt.Sprintf("machine: pooled request double-released (core %d)", cs.id))
	}
	cs.reqBusy = false
	req.Core = poisonCore
	req.Line = poisonLine
	req.Txn = 0
}
