package machine

import "testing"

// TestAutoLearnsLoadCASPattern: a hot load→CAS line gets leases inserted
// after the learning phase, and CAS failures disappear.
func TestAutoLearnsLoadCASPattern(t *testing.T) {
	run := func(auto bool) (casFails, inserted uint64) {
		m := New(testConfig(8))
		head := m.Direct().Alloc(8)
		var autos []*Auto
		for i := 0; i < 8; i++ {
			m.Spawn(0, func(c *Ctx) {
				var x API = c
				if auto {
					a := NewAuto(c, 20000)
					autos = append(autos, a)
					x = a
				}
				for {
					// Plain Treiber-style read-CAS loop, no manual leases.
					for {
						v := x.Load(head)
						if x.CAS(head, v, v+1) {
							break
						}
					}
					x.Work(x.Rand().Uint64n(32))
				}
			})
		}
		if err := m.Run(400000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		var ins uint64
		for _, a := range autos {
			ins += a.Inserted
		}
		return m.Stats().CASFailures, ins
	}
	baseFails, _ := run(false)
	autoFails, inserted := run(true)
	if baseFails == 0 {
		t.Fatal("no CAS failures without auto-leases; contention model broken")
	}
	if inserted == 0 {
		t.Fatal("Auto never inserted a lease on a hot load-CAS line")
	}
	if autoFails*5 > baseFails {
		t.Fatalf("auto-lease CAS failures %d vs base %d: pattern not protected",
			autoFails, baseFails)
	}
}

// TestAutoHarmlessOnReadOnly: lines that are only read never get leases.
func TestAutoHarmlessOnReadOnly(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)
	var inserted uint64
	for i := 0; i < 2; i++ {
		m.Spawn(0, func(c *Ctx) {
			au := NewAuto(c, 20000)
			for n := 0; n < 200; n++ {
				au.Load(a)
				au.Work(10)
			}
			inserted += au.Inserted
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if inserted != 0 {
		t.Fatalf("Auto inserted %d leases on a read-only line", inserted)
	}
}

// TestAutoCorrectness: results under Auto match plain execution exactly
// (advisory property) — counter sums come out right.
func TestAutoCorrectness(t *testing.T) {
	const cores, per = 6, 60
	m := New(testConfig(cores))
	ctr := m.Direct().Alloc(8)
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			au := NewAuto(c, 20000)
			for n := 0; n < per; n++ {
				for {
					v := au.Load(ctr)
					if au.CAS(ctr, v, v+1) {
						break
					}
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != cores*per {
		t.Fatalf("counter = %d, want %d", got, cores*per)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}
