package machine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"leaserelease/internal/coherence"
)

// fillStats sets every uint64 counter (and each Msgs element) to a distinct
// value derived from base, via reflection so new fields can't be missed.
func fillStats(t *testing.T, base uint64) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	next := base
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(next)
			next += base
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(next)
				next += base
			}
		case reflect.Int: // MaxDirQueue
			f.SetInt(int64(next))
			next += base
		default:
			t.Fatalf("unhandled Stats field kind %v (%s): extend fillStats and Sub",
				f.Kind(), v.Type().Field(i).Name)
		}
	}
	return s
}

// Sub must subtract every counter field-by-field; (prev + delta) - prev
// round-trips to delta for all of them. MaxDirQueue is documented as a
// high-water mark, not a counter: Sub carries over the newer snapshot's
// value unchanged.
func TestStatsSubRoundTrip(t *testing.T) {
	prev := fillStats(t, 3)
	delta := fillStats(t, 1000)

	cur := prev // cur = prev + delta, field by field
	cv := reflect.ValueOf(&cur).Elem()
	dv := reflect.ValueOf(delta)
	for i := 0; i < cv.NumField(); i++ {
		switch f := cv.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(f.Uint() + dv.Field(i).Uint())
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(f.Index(j).Uint() + dv.Field(i).Index(j).Uint())
			}
		case reflect.Int:
			f.SetInt(f.Int() + dv.Field(i).Int())
		}
	}

	got := cur.Sub(prev)
	want := delta
	want.MaxDirQueue = cur.MaxDirQueue // carried over, not subtracted
	if got != want {
		t.Fatalf("Sub round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestStatsTotalMsgs(t *testing.T) {
	var s Stats
	var want uint64
	for i := range s.Msgs {
		s.Msgs[i] = uint64(i + 1)
		want += uint64(i + 1)
	}
	if got := s.TotalMsgs(); got != want {
		t.Fatalf("TotalMsgs = %d, want %d", got, want)
	}
}

// Every defined TraceKind must have a distinct human-readable name; only
// out-of-range values fall through to the TraceKind(%d) default.
func TestTraceKindStringExhaustive(t *testing.T) {
	kinds := []TraceKind{
		TraceLease, TraceStart, TraceVoluntary, TraceInvoluntary,
		TraceEvicted, TraceForced, TraceBroken, TraceDeferred, TraceIgnored,
	}
	if len(kinds) != int(TraceIgnored)+1 {
		t.Fatalf("test covers %d kinds but TraceIgnored = %d; update the list",
			len(kinds), int(TraceIgnored))
	}
	seen := make(map[string]TraceKind, len(kinds))
	for i, k := range kinds {
		if int(k) != i {
			t.Fatalf("kind %d numbered %d; telemetry aliasing broke the ordering", i, int(k))
		}
		name := k.String()
		if strings.HasPrefix(name, "TraceKind(") {
			t.Fatalf("TraceKind(%d) has no String case", int(k))
		}
		if other, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", int(other), int(k), name)
		}
		seen[name] = k
	}
	if got, want := TraceKind(99).String(), fmt.Sprintf("TraceKind(%d)", 99); got != want {
		t.Fatalf("out-of-range String = %q, want %q", got, want)
	}
}

// Coherence message kinds alias the telemetry numbering; the Stats.Msgs
// array must still be indexed by every kind.
func TestMsgKindsCoverStatsArray(t *testing.T) {
	var s Stats
	for _, k := range []coherence.MsgKind{
		coherence.MsgRequest, coherence.MsgReply, coherence.MsgForward,
		coherence.MsgInval, coherence.MsgAck, coherence.MsgWriteback,
	} {
		if int(k) < 0 || int(k) >= len(s.Msgs) {
			t.Fatalf("MsgKind %v = %d outside Msgs[%d]", k, int(k), len(s.Msgs))
		}
		if strings.HasPrefix(k.String(), "MsgKind(") {
			t.Fatalf("MsgKind %d has no String case", int(k))
		}
	}
}
