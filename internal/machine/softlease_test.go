package machine

import (
	"testing"

	"leaserelease/internal/mem"
)

// TestSoftMultiLeaseStagger: the j-th outer (lower-address) lease must run
// longer by j*SoftLeaseStagger so the group expires jointly-ish (§4).
func TestSoftMultiLeaseStagger(t *testing.T) {
	cfg := testConfig(1)
	cfg.SoftLeaseStagger = 100
	cfg.Lease.MaxLeaseTime = 100000
	m := New(cfg)
	d := m.Direct()
	a, b := d.Alloc(8), d.Alloc(8) // a < b
	var durA, durB uint64
	m.Spawn(0, func(c *Ctx) {
		c.SoftMultiLease(1000, a, b)
		durA = c.cs.leases.Find(mem.LineOf(a)).Duration
		durB = c.cs.leases.Find(mem.LineOf(b)).Duration
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if durA != 1100 || durB != 1000 {
		t.Fatalf("durations = %d, %d; want 1100, 1000", durA, durB)
	}
}

// TestSoftMultiLeaseIsSingleLeases: entries are not group entries, so
// probes are NOT deferred during acquisition (the weaker semantics).
func TestSoftMultiLeaseIsSingleLeases(t *testing.T) {
	m := New(testConfig(1))
	d := m.Direct()
	a, b := d.Alloc(8), d.Alloc(8)
	var inGroup bool
	m.Spawn(0, func(c *Ctx) {
		c.SoftMultiLease(1000, a, b)
		inGroup = c.cs.leases.Find(mem.LineOf(a)).InGroup ||
			c.cs.leases.Find(mem.LineOf(b)).InGroup
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if inGroup {
		t.Fatal("software multilease created hardware group entries")
	}
}

// TestMultiLeaseReleasesPriorLeases: "the MultiLease call will first
// release all currently held leases" (§4).
func TestMultiLeaseReleasesPriorLeases(t *testing.T) {
	m := New(testConfig(1))
	d := m.Direct()
	old := d.Alloc(8)
	a, b := d.Alloc(8), d.Alloc(8)
	var oldHeld, newHeld bool
	m.Spawn(0, func(c *Ctx) {
		c.Lease(old, 100000)
		c.MultiLease(1000, a, b)
		oldHeld = c.LeaseHeld(old)
		newHeld = c.LeaseHeld(a) && c.LeaseHeld(b)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if oldHeld {
		t.Fatal("MultiLease kept a previously held lease")
	}
	if !newHeld {
		t.Fatal("MultiLease group not held")
	}
}

// TestMultiLeaseSortedAcquisition: group lines are acquired in ascending
// line order regardless of argument order.
func TestMultiLeaseSortedAcquisition(t *testing.T) {
	m := New(testConfig(1))
	d := m.Direct()
	a, b, cAddr := d.Alloc(8), d.Alloc(8), d.Alloc(8)
	var lines []mem.Line
	m.Spawn(0, func(c *Ctx) {
		c.MultiLease(1000, cAddr, a, b) // deliberately unsorted args
		lines = c.cs.leases.GroupLines()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("group size = %d, want 3", len(lines))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] <= lines[i-1] {
			t.Fatalf("acquisition order not sorted: %v", lines)
		}
	}
}

// TestMultiLeaseDuplicateAddrsCoalesce: duplicate addresses and same-line
// addresses collapse into one lease entry.
func TestMultiLeaseDuplicateAddrsCoalesce(t *testing.T) {
	m := New(testConfig(1))
	d := m.Direct()
	a := d.Alloc(16)
	var n int
	m.Spawn(0, func(c *Ctx) {
		c.MultiLease(1000, a, a+8, a)
		n = c.cs.leases.Len()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("lease entries = %d, want 1", n)
	}
}
