package machine

import (
	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
)

// Auto is a prototype of the paper's §8 future work, "automatic lease
// insertion": it wraps a thread's Ctx and learns, per cache line, the
// optimistic load→CAS-same-line pattern that leases protect (§1
// "scan-and-validate"). Once a line's loads are frequently followed by a
// CAS, Auto leases the line before the load and releases right after the
// CAS — with no changes to the data structure code, which is written
// against the plain API.
//
// Auto is advisory, like leases themselves: it can only change timing,
// never results.
type Auto struct {
	c *Ctx

	// LeaseTime is the lease length for inserted leases.
	LeaseTime uint64
	// MinSamples loads must be seen on a line before it can be judged.
	MinSamples uint64
	// InsertPermille inserts leases once CAS-follows-load exceeds this
	// rate (per thousand loads).
	InsertPermille uint64

	stats map[mem.Line]*autoLineStat
	// loadedSinceCAS tracks lines loaded since the last CAS, so a CAS on
	// a recently-loaded line is recognized as the scan-and-validate
	// pattern even with node-preparation accesses in between.
	loadedSinceCAS map[mem.Line]bool
	leased         mem.Line
	isLeased       bool
	idleOps        uint64 // ops since the leased line was last touched

	// Inserted counts automatically inserted leases.
	Inserted uint64
}

// autoIdleLimit drops an inserted lease after this many operations that
// never touch the leased line (the pattern evidently moved on).
const autoIdleLimit = 16

type autoLineStat struct {
	loads    uint64
	casAfter uint64
}

var _ API = (*Auto)(nil)

// NewAuto wraps c with default learning parameters.
func NewAuto(c *Ctx, leaseTime uint64) *Auto {
	return &Auto{
		c: c, LeaseTime: leaseTime,
		MinSamples: 8, InsertPermille: 300,
		stats:          make(map[mem.Line]*autoLineStat),
		loadedSinceCAS: make(map[mem.Line]bool),
	}
}

// touch updates the idle counter for the held lease; returns whether the
// op touched the leased line.
func (a *Auto) touch(l mem.Line) {
	if !a.isLeased {
		return
	}
	if l == a.leased {
		a.idleOps = 0
		return
	}
	a.idleOps++
	if a.idleOps > autoIdleLimit {
		a.dropLease()
	}
}

func (a *Auto) stat(l mem.Line) *autoLineStat {
	s, ok := a.stats[l]
	if !ok {
		s = &autoLineStat{}
		a.stats[l] = s
	}
	return s
}

// dropLease releases the inserted lease.
func (a *Auto) dropLease() {
	if a.isLeased {
		a.c.Release(a.leased.Base())
		a.isLeased = false
		a.idleOps = 0
	}
}

// Load learns and, on hot scan-and-validate lines, leases before loading.
// A held inserted lease survives loads of other lines (node reads between
// the scan and the validate), bounded by autoIdleLimit.
func (a *Auto) Load(addr mem.Addr) uint64 {
	l := mem.LineOf(addr)
	s := a.stat(l)
	if !a.isLeased && s.loads >= a.MinSamples &&
		s.casAfter*1000 > s.loads*a.InsertPermille {
		a.c.Lease(addr, a.LeaseTime)
		a.leased, a.isLeased = l, true
		a.Inserted++
	}
	a.touch(l)
	s.loads++
	if len(a.loadedSinceCAS) > 8 {
		for k := range a.loadedSinceCAS {
			delete(a.loadedSinceCAS, k)
		}
	}
	a.loadedSinceCAS[l] = true
	return a.c.Load(addr)
}

// CAS completes a detected pattern: it records CAS-follows-load and
// releases the inserted lease on the CASed line.
func (a *Auto) CAS(addr mem.Addr, old, new uint64) bool {
	l := mem.LineOf(addr)
	if a.loadedSinceCAS[l] {
		a.stat(l).casAfter++
	}
	for k := range a.loadedSinceCAS {
		delete(a.loadedSinceCAS, k)
	}
	r := a.c.CAS(addr, old, new)
	if a.isLeased && a.leased == l {
		a.dropLease()
	} else {
		a.touch(l)
	}
	return r
}

// Store passes through; a store to the leased line completes its
// exclusive use and releases the lease, stores elsewhere (e.g. preparing
// a new node) keep it.
func (a *Auto) Store(addr mem.Addr, v uint64) {
	l := mem.LineOf(addr)
	a.c.Store(addr, v)
	if a.isLeased && a.leased == l {
		a.dropLease()
	} else {
		a.touch(l)
	}
}

// FetchAdd passes through; like Store it completes the leased line's use.
func (a *Auto) FetchAdd(addr mem.Addr, delta uint64) uint64 {
	l := mem.LineOf(addr)
	r := a.c.FetchAdd(addr, delta)
	if a.isLeased && a.leased == l {
		a.dropLease()
	} else {
		a.touch(l)
	}
	return r
}

// Swap passes through; like Store it completes the leased line's use.
func (a *Auto) Swap(addr mem.Addr, v uint64) uint64 {
	l := mem.LineOf(addr)
	r := a.c.Swap(addr, v)
	if a.isLeased && a.leased == l {
		a.dropLease()
	} else {
		a.touch(l)
	}
	return r
}

// Lease passes through (manual leases still work under Auto).
func (a *Auto) Lease(addr mem.Addr, dur uint64) { a.c.Lease(addr, dur) }

// LeaseAt passes through.
func (a *Auto) LeaseAt(site uint64, addr mem.Addr, dur uint64) { a.c.LeaseAt(site, addr, dur) }

// Release passes through; it also clears Auto's record if it owned the
// lease.
func (a *Auto) Release(addr mem.Addr) bool {
	if a.isLeased && a.leased == mem.LineOf(addr) {
		a.isLeased = false
	}
	return a.c.Release(addr)
}

// MultiLease passes through (it releases all leases, including inserted
// ones).
func (a *Auto) MultiLease(dur uint64, addrs ...mem.Addr) bool {
	a.isLeased = false
	return a.c.MultiLease(dur, addrs...)
}

// SoftMultiLease passes through.
func (a *Auto) SoftMultiLease(dur uint64, addrs ...mem.Addr) {
	a.c.SoftMultiLease(dur, addrs...)
}

// ReleaseAll passes through.
func (a *Auto) ReleaseAll() {
	a.isLeased = false
	a.c.ReleaseAll()
}

// Work passes through.
func (a *Auto) Work(n uint64) { a.c.Work(n) }

// Alloc passes through.
func (a *Auto) Alloc(size uint64) mem.Addr { return a.c.Alloc(size) }

// Rand passes through.
func (a *Auto) Rand() *sim.RNG { return a.c.Rand() }

// Now passes through.
func (a *Auto) Now() uint64 { return a.c.Now() }
