package machine

// This file implements the §5 "Speculative Execution" suggestion: "a
// speculative mechanism which keeps track of leases which cause frequent
// involuntary releases, and ignores the corresponding lease. More
// precisely, such a mechanism could track the program counter of the
// lease [and] count the number of involuntary releases... If these numbers
// exceed a set threshold, the lease is ignored."
//
// Sites stand in for program counters: programs pass a stable site id to
// Ctx.LeaseAt. Plain Ctx.Lease uses site 0.

// PredictorConfig tunes the per-core lease predictor.
type PredictorConfig struct {
	// Enable turns the predictor on.
	Enable bool
	// MinSamples is how many leases a site must take before it can be
	// judged.
	MinSamples uint64
	// IgnorePermille blacklists a site once its involuntary-release rate
	// exceeds this many per thousand leases.
	IgnorePermille uint64
	// RetryEvery re-samples a blacklisted site once every N skipped
	// leases, so sites whose behaviour improves are rehabilitated.
	RetryEvery uint64
}

// DefaultPredictorConfig mirrors the spirit of §5: ignore a site once
// most of its leases expire involuntarily.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{MinSamples: 16, IgnorePermille: 500, RetryEvery: 64}
}

type predictorSite struct {
	leases  uint64
	invol   uint64
	skipped uint64
}

// leasePredictor is per-core (like the hardware table it models).
type leasePredictor struct {
	cfg   PredictorConfig
	sites map[uint64]*predictorSite
}

func newLeasePredictor(cfg PredictorConfig) *leasePredictor {
	return &leasePredictor{cfg: cfg, sites: make(map[uint64]*predictorSite)}
}

func (p *leasePredictor) site(id uint64) *predictorSite {
	s, ok := p.sites[id]
	if !ok {
		s = &predictorSite{}
		p.sites[id] = s
	}
	return s
}

// shouldIgnore reports whether a lease at this site should be skipped.
func (p *leasePredictor) shouldIgnore(id uint64) bool {
	if !p.cfg.Enable {
		return false
	}
	s := p.site(id)
	if s.leases < p.cfg.MinSamples {
		return false
	}
	if s.invol*1000 <= s.leases*p.cfg.IgnorePermille {
		return false
	}
	s.skipped++
	if p.cfg.RetryEvery > 0 && s.skipped%p.cfg.RetryEvery == 0 {
		return false // probation: take one lease to re-sample
	}
	return true
}

// record notes a completed lease at the site; voluntary=false means the
// timer expired.
func (p *leasePredictor) record(id uint64, voluntary bool) {
	if !p.cfg.Enable {
		return
	}
	s := p.site(id)
	s.leases++
	if !voluntary {
		s.invol++
	}
	// Age the counters so the rate tracks recent behaviour.
	if s.leases >= 1<<12 {
		s.leases >>= 1
		s.invol >>= 1
	}
}
