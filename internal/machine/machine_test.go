package machine

import (
	"fmt"
	"testing"

	"leaserelease/internal/coherence"
	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
)

// testConfig returns a small, fast config for protocol tests.
func testConfig(cores int) Config {
	cfg := DefaultConfig(cores)
	return cfg
}

func TestLoadStoreSingleCore(t *testing.T) {
	m := New(testConfig(1))
	a := m.Direct().Alloc(8)
	var v1, v2 uint64
	m.Spawn(0, func(c *Ctx) {
		c.Store(a, 7)
		v1 = c.Load(a)
		c.Store(a, 9)
		v2 = c.Load(a)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if v1 != 7 || v2 != 9 {
		t.Fatalf("v1=%d v2=%d, want 7, 9", v1, v2)
	}
	s := m.Stats()
	if s.L1Misses == 0 {
		t.Fatal("first access should miss")
	}
	if s.L1Hits < 3 {
		t.Fatalf("subsequent same-line accesses should hit; hits=%d", s.L1Hits)
	}
}

func TestCrossCorePropagation(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)
	flag := m.Direct().Alloc(8)
	var got uint64
	m.Spawn(0, func(c *Ctx) {
		c.Store(a, 123)
		c.Store(flag, 1)
	})
	m.Spawn(0, func(c *Ctx) {
		for c.Load(flag) != 1 {
			c.Work(100)
		}
		got = c.Load(a)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Fatalf("core 1 read %d, want 123", got)
	}
}

func TestCASAtomicUnderContention(t *testing.T) {
	const cores, per = 8, 50
	m := New(testConfig(cores))
	ctr := m.Direct().Alloc(8)
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < per; n++ {
				for {
					v := c.Load(ctr)
					if c.CAS(ctr, v, v+1) {
						break
					}
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != cores*per {
		t.Fatalf("counter = %d, want %d", got, cores*per)
	}
	if m.Stats().CASSuccesses != cores*per {
		t.Fatalf("CAS successes = %d, want %d", m.Stats().CASSuccesses, cores*per)
	}
}

func TestFetchAddAtomic(t *testing.T) {
	const cores, per = 6, 40
	m := New(testConfig(cores))
	ctr := m.Direct().Alloc(8)
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < per; n++ {
				c.FetchAdd(ctr, 1)
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != cores*per {
		t.Fatalf("counter = %d, want %d", got, cores*per)
	}
}

func TestSwap(t *testing.T) {
	m := New(testConfig(1))
	a := m.Direct().Alloc(8)
	m.Poke(a, 5)
	var old uint64
	m.Spawn(0, func(c *Ctx) { old = c.Swap(a, 11) })
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if old != 5 || m.Peek(a) != 11 {
		t.Fatalf("Swap: old=%d now=%d, want 5, 11", old, m.Peek(a))
	}
}

// TestLeaseDefersProbe checks the core mechanism: a probe arriving during a
// lease is queued until the voluntary release, so the leased read-CAS
// window is never interrupted.
func TestLeaseDefersProbe(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)
	var casOK bool
	var loadDone, releaseAt uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 10000)
		v := c.Load(a)
		c.Work(3000) // long critical window
		casOK = c.CAS(a, v, v+1)
		c.Release(a)
		releaseAt = c.Now()
	})
	m.Spawn(100, func(c *Ctx) {
		// This write will probe core 0's leased line and must wait.
		c.Store(a, 99)
		loadDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !casOK {
		t.Fatal("CAS inside leased window failed")
	}
	if loadDone < releaseAt {
		t.Fatalf("probing store completed at %d, before release at %d", loadDone, releaseAt)
	}
	if m.Peek(a) != 99 {
		t.Fatalf("final value %d, want 99 (store must still apply)", m.Peek(a))
	}
	if m.Stats().DeferredProbes != 1 {
		t.Fatalf("deferred probes = %d, want 1", m.Stats().DeferredProbes)
	}
	if m.Stats().VoluntaryReleases != 1 {
		t.Fatalf("voluntary releases = %d, want 1", m.Stats().VoluntaryReleases)
	}
}

// TestInvoluntaryExpiry checks the MAX_LEASE_TIME bound: a never-released
// lease expires and the deferred probe is then serviced.
func TestInvoluntaryExpiry(t *testing.T) {
	cfg := testConfig(2)
	cfg.Lease.MaxLeaseTime = 2000
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var leaseStart, storeDone uint64
	var relVoluntary bool
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 1e9) // clamped to 2000
		leaseStart = c.Now()
		c.Work(50000) // sit well past the lease
		relVoluntary = c.Release(a)
	})
	m.Spawn(100, func(c *Ctx) {
		c.Store(a, 1)
		storeDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if relVoluntary {
		t.Fatal("Release after expiry must report involuntary (false)")
	}
	deadline := leaseStart + 2000
	if storeDone < deadline {
		t.Fatalf("store done at %d, before lease deadline %d", storeDone, deadline)
	}
	if storeDone > deadline+200 {
		t.Fatalf("store done at %d, too long after deadline %d", storeDone, deadline)
	}
	if m.Stats().InvoluntaryReleases != 1 {
		t.Fatalf("involuntary releases = %d, want 1", m.Stats().InvoluntaryReleases)
	}
}

// TestBoundedDelay is Proposition 2: with leases, no request waits more
// than (base protocol delay + MAX_LEASE_TIME).
func TestBoundedDelay(t *testing.T) {
	cfg := testConfig(4)
	cfg.Lease.MaxLeaseTime = 500
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var worst uint64
	for i := 0; i < 4; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < 30; n++ {
				start := c.Now()
				c.Lease(a, 500)
				c.Load(a)
				c.Work(1000) // always expires involuntarily
				c.Release(a)
				if d := c.Now() - start; d > worst {
					worst = d
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	// A queued GetX waits for at most 3 predecessors, each holding the
	// line for <= MAX_LEASE_TIME plus protocol hops. Generous bound:
	limit := uint64(4*(500+200) + 2000)
	if worst > limit {
		t.Fatalf("worst op latency %d exceeds bound %d", worst, limit)
	}
}

func TestReleaseWithoutLease(t *testing.T) {
	m := New(testConfig(1))
	a := m.Direct().Alloc(8)
	var r bool
	m.Spawn(0, func(c *Ctx) { r = c.Release(a) })
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if r {
		t.Fatal("Release on unleased line returned true")
	}
}

func TestLeaseNoExtension(t *testing.T) {
	cfg := testConfig(2)
	cfg.Lease.MaxLeaseTime = 1000
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var storeDone, leaseStart uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 1000)
		leaseStart = c.Now()
		for i := 0; i < 100; i++ {
			c.Lease(a, 1000) // must not extend
			c.Work(100)
		}
	})
	m.Spawn(50, func(c *Ctx) { c.Store(a, 1); storeDone = c.Now() })
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if storeDone > leaseStart+1000+200 {
		t.Fatalf("store done at %d: repeated Lease extended the lease (start %d)", storeDone, leaseStart)
	}
}

func TestLeaseTableFIFOEviction(t *testing.T) {
	cfg := testConfig(1)
	cfg.Lease.MaxNumLeases = 2
	m := New(cfg)
	d := m.Direct()
	a, b, cc := d.Alloc(8), d.Alloc(8), d.Alloc(8)
	var heldA, heldB, heldC bool
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 10000)
		c.Lease(b, 10000)
		c.Lease(cc, 10000) // evicts a
		heldA, heldB, heldC = c.LeaseHeld(a), c.LeaseHeld(b), c.LeaseHeld(cc)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if heldA || !heldB || !heldC {
		t.Fatalf("held = %v %v %v, want false true true", heldA, heldB, heldC)
	}
	if m.Stats().EvictedLeases != 1 {
		t.Fatalf("evicted leases = %d, want 1", m.Stats().EvictedLeases)
	}
}

// TestMultiLeaseJointHold: once a MultiLease group is acquired, probes on
// all members are deferred until ReleaseAll.
func TestMultiLeaseJointHold(t *testing.T) {
	m := New(testConfig(3))
	d := m.Direct()
	a, b := d.Alloc(8), d.Alloc(8)
	var releaseAt, doneA, doneB uint64
	m.Spawn(0, func(c *Ctx) {
		if !c.MultiLease(10000, a, b) {
			t.Error("MultiLease refused")
			return
		}
		c.Store(a, 1)
		c.Store(b, 2)
		c.Work(3000)
		c.ReleaseAll()
		releaseAt = c.Now()
	})
	m.Spawn(500, func(c *Ctx) { c.Store(a, 10); doneA = c.Now() })
	m.Spawn(500, func(c *Ctx) { c.Store(b, 20); doneB = c.Now() })
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if doneA < releaseAt || doneB < releaseAt {
		t.Fatalf("probe completed before ReleaseAll: a=%d b=%d rel=%d", doneA, doneB, releaseAt)
	}
	if m.Peek(a) != 10 || m.Peek(b) != 20 {
		t.Fatal("post-release stores lost")
	}
}

func TestMultiLeaseTooManyIgnored(t *testing.T) {
	cfg := testConfig(1)
	cfg.Lease.MaxNumLeases = 2
	m := New(cfg)
	d := m.Direct()
	addrs := []mem.Addr{d.Alloc(8), d.Alloc(8), d.Alloc(8)}
	var ok bool
	var held bool
	m.Spawn(0, func(c *Ctx) {
		ok = c.MultiLease(1000, addrs...)
		held = c.LeaseHeld(addrs[0])
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if ok || held {
		t.Fatal("oversized MultiLease must be ignored")
	}
}

// TestMultiLeaseStorm drives randomized MultiLease transactions and checks
// deadlock-freedom (Proposition 3) plus value consistency: each transaction
// increments two counters under the group lease using plain loads/stores,
// and lock words guarantee we detect any mutual-exclusion violation.
func TestMultiLeaseStorm(t *testing.T) {
	const cores, objs, txPerCore = 8, 6, 60
	m := New(testConfig(cores))
	d := m.Direct()
	addrs := make([]mem.Addr, objs)
	for i := range addrs {
		addrs[i] = d.Alloc(8)
	}
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < txPerCore; n++ {
				i := c.Rand().Intn(objs)
				j := c.Rand().Intn(objs)
				if !c.MultiLease(5000, addrs[i], addrs[j]) {
					t.Error("MultiLease refused")
					return
				}
				// Increments are load+store, racy without the joint
				// lease; total must still come out exact.
				c.Store(addrs[i], c.Load(addrs[i])+1)
				if j != i {
					c.Store(addrs[j], c.Load(addrs[j])+1)
				}
				c.ReleaseAll()
				c.Work(uint64(c.Rand().Intn(200)))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("multilease storm deadlocked or failed: %v", err)
	}
	var total uint64
	for _, a := range addrs {
		total += m.Peek(a)
	}
	want := uint64(cores * txPerCore * 2)
	// Same-index picks increment once instead of twice; count them out.
	if total > want || total < want/2 {
		t.Fatalf("total increments = %d, out of plausible range (max %d)", total, want)
	}
}

// TestMultiLeaseExactWithDistinctPairs repeats the storm with guaranteed
// distinct pairs so the final sum is exact — a real mutual-exclusion check.
func TestMultiLeaseExactWithDistinctPairs(t *testing.T) {
	const cores, objs, txPerCore = 8, 6, 60
	m := New(testConfig(cores))
	d := m.Direct()
	addrs := make([]mem.Addr, objs)
	for i := range addrs {
		addrs[i] = d.Alloc(8)
	}
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < txPerCore; n++ {
				i := c.Rand().Intn(objs)
				j := c.Rand().Intn(objs - 1)
				if j >= i {
					j++
				}
				if !c.MultiLease(5000, addrs[i], addrs[j]) {
					t.Error("MultiLease refused")
					return
				}
				c.Store(addrs[i], c.Load(addrs[i])+1)
				c.Store(addrs[j], c.Load(addrs[j])+1)
				c.ReleaseAll()
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("deadlock: %v", err)
	}
	var total uint64
	for _, a := range addrs {
		total += m.Peek(a)
	}
	if want := uint64(cores * txPerCore * 2); total != want {
		t.Fatalf("total = %d, want %d: joint leases failed to serialize", total, want)
	}
}

// TestUnsortedAcquisitionDeadlocks is the negative counterpart of
// Proposition 3: acquiring group lines in *opposite* orders while deferring
// probes during acquisition deadlocks, and the engine detects it. It uses
// package internals to bypass MultiLease's sorting.
func TestUnsortedAcquisitionDeadlocks(t *testing.T) {
	m := New(testConfig(2))
	d := m.Direct()
	a, b := d.Alloc(8), d.Alloc(8)
	grab := func(c *Ctx, order []mem.Addr) {
		cs := c.cs
		for _, ad := range order {
			c.p.Sync()
			l := mem.LineOf(ad)
			cs.leases.Insert(l, 1000, true) // group entry: defers pre-start
			if cs.l1.Lookup(l, true) {
				cs.l1.Pin(l)
				c.p.Work(1)
				continue
			}
			req := newLeaseRequest(cs.id, l)
			c.m.proto.Submit(req)
			c.p.Block("unsorted group acquire")
		}
	}
	m.Spawn(0, func(c *Ctx) {
		c.Store(a, 1) // own A first
		grab(c, []mem.Addr{a, b})
	})
	m.Spawn(0, func(c *Ctx) {
		c.Store(b, 1) // own B first
		grab(c, []mem.Addr{b, a})
	})
	err := m.Drain()
	de, ok := err.(*sim.DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError (unsorted acquisition must deadlock)", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %v, want both cores", de.Blocked)
	}
	m.Stop()
}

// TestRegularBreaksLease checks the §5 prioritization optimization.
func TestRegularBreaksLease(t *testing.T) {
	cfg := testConfig(2)
	cfg.RegularBreaksLease = true
	cfg.Lease.MaxLeaseTime = 100000
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var storeDone uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 100000)
		c.Work(200000)
	})
	m.Spawn(100, func(c *Ctx) {
		c.Store(a, 1) // regular request: breaks the lease immediately
		storeDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if storeDone > 1000 {
		t.Fatalf("store done at %d: regular request did not break the lease", storeDone)
	}
	if m.Stats().BrokenLeases != 1 {
		t.Fatalf("broken leases = %d, want 1", m.Stats().BrokenLeases)
	}
}

// TestLeaseRequestStillQueuesUnderPriority: with RegularBreaksLease on, a
// lease-initiated request must still be deferred.
func TestLeaseRequestStillQueuesUnderPriority(t *testing.T) {
	cfg := testConfig(2)
	cfg.RegularBreaksLease = true
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var releaseAt, leaseDone uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 20000)
		c.Work(3000)
		c.Release(a)
		releaseAt = c.Now()
	})
	m.Spawn(100, func(c *Ctx) {
		c.Lease(a, 1000) // lease request: queues
		leaseDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if leaseDone < releaseAt {
		t.Fatalf("lease request completed at %d before release at %d", leaseDone, releaseAt)
	}
}

func TestEvictionWritebackPath(t *testing.T) {
	// Thrash one set far beyond associativity; dirty evictions must write
	// back and later reloads must see the stored values.
	m := New(testConfig(1))
	cfg := m.Config()
	sets := cfg.L1.SizeBytes / mem.LineSize / cfg.L1.Ways
	n := cfg.L1.Ways * 4
	addrs := make([]mem.Addr, n)
	al := m.Direct()
	base := al.Alloc(uint64(n * sets * mem.LineSize))
	for i := range addrs {
		addrs[i] = base + mem.Addr(i*sets*mem.LineSize) // all map to one set
	}
	m.Spawn(0, func(c *Ctx) {
		for i, a := range addrs {
			c.Store(a, uint64(i)+1)
		}
		for i, a := range addrs {
			if got := c.Load(a); got != uint64(i)+1 {
				t.Errorf("after thrash, Load(%d) = %d, want %d", i, got, i+1)
			}
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Msgs[coherence.MsgWriteback] == 0 {
		t.Fatal("no writebacks recorded despite dirty thrashing")
	}
}

func TestStopKillsBlockedThreads(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 1e9)
		for {
			c.Work(1000)
			c.p.Sync()
		}
	})
	m.Spawn(0, func(c *Ctx) {
		c.Store(a, 1) // blocks on the lease for a long time
	})
	if err := m.Run(5000); err != nil {
		t.Fatal(err)
	}
	m.Stop() // must not hang
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (Stats, uint64) {
		m := New(testConfig(4))
		ctr := m.Direct().Alloc(8)
		for i := 0; i < 4; i++ {
			m.Spawn(0, func(c *Ctx) {
				for n := 0; n < 100; n++ {
					c.Lease(ctr, 5000)
					v := c.Load(ctr)
					c.CAS(ctr, v, v+1)
					c.Release(ctr)
					c.Work(uint64(c.Rand().Intn(50)))
				}
			})
		}
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Stats(), m.Peek(ctr)
	}
	s1, v1 := run()
	s2, v2 := run()
	if v1 != v2 {
		t.Fatalf("final values differ: %d vs %d", v1, v2)
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatalf("stats differ:\n%v\nvs\n%v", s1, s2)
	}
}

func TestDirectSetupVisible(t *testing.T) {
	m := New(testConfig(1))
	d := m.Direct()
	a := d.Alloc(8)
	d.Store(a, 77)
	if d.Load(a) != 77 {
		t.Fatal("Direct round trip failed")
	}
	var got uint64
	m.Spawn(0, func(c *Ctx) { got = c.Load(a) })
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("simulated read of setup data = %d, want 77", got)
	}
}

func TestStatsSubWindow(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)
	for i := 0; i < 2; i++ {
		m.Spawn(0, func(c *Ctx) {
			for {
				c.FetchAdd(a, 1)
				c.Work(50)
			}
		})
	}
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	mid := m.Stats()
	if err := m.Run(20000); err != nil {
		t.Fatal(err)
	}
	end := m.Stats()
	m.Stop()
	w := end.Sub(mid)
	if w.Cycles != 10000 {
		t.Fatalf("window cycles = %d, want 10000", w.Cycles)
	}
	if w.TotalMsgs() == 0 || w.TotalMsgs() >= end.TotalMsgs() {
		t.Fatalf("window msgs = %d (end %d): Sub broken", w.TotalMsgs(), end.TotalMsgs())
	}
	if w.EnergyNJ(m.Config().Energy) <= 0 {
		t.Fatal("window energy must be positive")
	}
}

// TestUncontendedLeaseNoSlowdown: on a single core, adding leases must not
// change throughput appreciably (paper: "leases do not affect overall
// throughput" without contention).
func TestUncontendedLeaseNoSlowdown(t *testing.T) {
	run := func(lease bool) uint64 {
		m := New(testConfig(1))
		a := m.Direct().Alloc(8)
		var ops uint64
		m.Spawn(0, func(c *Ctx) {
			for {
				if lease {
					c.Lease(a, 5000)
				}
				v := c.Load(a)
				c.CAS(a, v, v+1)
				if lease {
					c.Release(a)
				}
				ops++
			}
		})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return ops
	}
	base, leased := run(false), run(true)
	if leased*2 < base {
		t.Fatalf("leases halved uncontended throughput: base=%d leased=%d", base, leased)
	}
}

// newLeaseRequest builds a lease-marked exclusive request (test helper for
// the unsorted-acquisition negative test).
func newLeaseRequest(core int, l mem.Line) *coherence.Request {
	return &coherence.Request{Core: core, Line: l, Excl: true, Lease: true}
}
