package machine

import (
	"testing"

	"leaserelease/internal/mem"
)

// TestCoherenceInvariantAfterStress drives mixed random traffic (reads,
// writes, CASes, leases, multileases) across many lines and verifies the
// single-writer / directory-consistency invariant at the end.
func TestCoherenceInvariantAfterStress(t *testing.T) {
	const cores, lines, opsPer = 10, 24, 200
	m := New(testConfig(cores))
	d := m.Direct()
	addrs := make([]mem.Addr, lines)
	for i := range addrs {
		addrs[i] = d.Alloc(8)
	}
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < opsPer; n++ {
				a := addrs[c.Rand().Intn(lines)]
				switch c.Rand().Intn(6) {
				case 0:
					c.Load(a)
				case 1:
					c.Store(a, c.Rand().Next())
				case 2:
					c.CAS(a, c.Load(a), c.Rand().Next())
				case 3:
					c.FetchAdd(a, 1)
				case 4:
					c.Lease(a, 500)
					c.Load(a)
					c.Work(uint64(c.Rand().Intn(800))) // sometimes expires
					c.Release(a)
				case 5:
					b := addrs[c.Rand().Intn(lines)]
					c.MultiLease(500, a, b)
					c.Store(a, 1)
					c.ReleaseAll()
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceInvariantWithEvictions thrashes one cache set so lines are
// evicted (including dirty writebacks) and re-fetched, then verifies.
func TestCoherenceInvariantWithEvictions(t *testing.T) {
	const cores = 4
	m := New(testConfig(cores))
	cfg := m.Config()
	sets := cfg.L1.SizeBytes / mem.LineSize / cfg.L1.Ways
	d := m.Direct()
	n := cfg.L1.Ways * 3
	base := d.Alloc(uint64(n * sets * mem.LineSize))
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = base + mem.Addr(i*sets*mem.LineSize)
	}
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for k := 0; k < 150; k++ {
				a := addrs[c.Rand().Intn(n)]
				if c.Rand().Intn(2) == 0 {
					c.Store(a, c.Rand().Next())
				} else {
					c.Load(a)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}
