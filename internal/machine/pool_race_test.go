//go:build race

package machine

import "testing"

// Poison-mode tests, compiled only into -race builds (where poison mode is
// armed): pooled-request lifecycle bugs must fail loudly, not corrupt
// determinism silently.

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
	}()
	f()
}

// TestPoisonReuseWhileInFlightPanics: acquiring a core's request slot
// while a transaction is still in flight is a Proposition-1 violation.
func TestPoisonReuseWhileInFlightPanics(t *testing.T) {
	m := New(testConfig(1))
	cs := m.cores[0]
	req := m.acquireReq(cs, 5, true, false)
	mustPanic(t, "reused while in flight", func() {
		m.acquireReq(cs, 6, false, false)
	})
	m.releaseReq(cs, req)
}

// TestPoisonDoubleReleasePanics: releasing a request that is not in
// flight indicates a completion delivered twice.
func TestPoisonDoubleReleasePanics(t *testing.T) {
	m := New(testConfig(1))
	cs := m.cores[0]
	req := m.acquireReq(cs, 5, true, false)
	m.releaseReq(cs, req)
	mustPanic(t, "double-released", func() {
		m.releaseReq(cs, req)
	})
}

// TestPoisonScribble: after release the request is scribbled with values
// every downstream consumer chokes on, so use-after-release trips fast —
// the directory's bit() panics on the negative core index.
func TestPoisonScribble(t *testing.T) {
	m := New(testConfig(1))
	cs := m.cores[0]
	req := m.acquireReq(cs, 5, true, false)
	m.releaseReq(cs, req)
	if req.Core != poisonCore || req.Line != poisonLine || req.Txn != 0 {
		t.Fatalf("released request not scribbled: %+v", req)
	}
	// A fresh acquire un-poisons the slot completely.
	req = m.acquireReq(cs, 7, false, false)
	if req.Core != 0 || req.Line != 7 {
		t.Fatalf("acquire after poison left stale fields: %+v", req)
	}
	m.releaseReq(cs, req)
}
