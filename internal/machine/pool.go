package machine

import (
	"leaserelease/internal/coherence"
	"leaserelease/internal/mem"
)

// Request pooling. An in-order core has at most one coherence transaction
// outstanding (Proposition 1: the core blocks in Ctx until Complete wakes
// it), so a single reusable Request per core replaces one heap allocation
// per L1 miss. The pooled object is live from acquireReq until the
// requester's Block returns; by then the protocol side has finished with
// it — the MSI directory's commit event deliberately captures the decided
// transition by value instead of reading the Request (see
// coherence.Directory.scheduleComplete), and Tardis reads it only inside
// the completion event that precedes the requester's wake.
//
// Race builds add a poison mode (pool_poison_race.go): reuse while a
// request is still in flight panics, and released requests are scribbled
// so any stale read trips loudly (bit() panics on the poisoned core index)
// instead of silently corrupting determinism.

// acquireReq readies the core's pooled request for one transaction.
func (m *Machine) acquireReq(cs *coreState, l mem.Line, excl, lease bool) *coherence.Request {
	req := cs.req
	poisonAcquire(cs, req)
	*req = coherence.Request{Core: cs.id, Line: l, Excl: excl, Lease: lease}
	return req
}

// releaseReq returns the pooled request after its transaction completed.
func (m *Machine) releaseReq(cs *coreState, req *coherence.Request) {
	poisonRelease(cs, req)
}
