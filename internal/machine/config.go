package machine

import (
	"leaserelease/internal/cache"
	"leaserelease/internal/coherence"
	"leaserelease/internal/core"
	"leaserelease/internal/faults"
)

// Config describes a simulated machine. The defaults reproduce the paper's
// Table 1 system configuration.
type Config struct {
	// Cores is the number of simulated cores (= threads; one thread per
	// core, as in the paper's experiments). At most 64.
	Cores int

	// ClockHz is the core clock (Table 1: 1 GHz). Used only to convert
	// cycles to seconds when reporting throughput.
	ClockHz uint64

	// L1 sizes each core's private L1 data cache.
	L1 cache.Config

	// L1HitLat is the L1 access latency in cycles (Table 1: 1 cycle).
	L1HitLat uint64

	// Timing holds L2/directory/network/DRAM latencies.
	Timing coherence.Timing

	// Protocol selects the coherence protocol backend: "" or
	// coherence.ProtocolMSI for the directory MSI the paper evaluates on,
	// coherence.ProtocolTardis for Tardis-style timestamp coherence. New
	// panics on any other value (cmds validate before construction).
	Protocol string

	// Lease bounds the Lease/Release mechanism (MAX_LEASE_TIME,
	// MAX_NUM_LEASES).
	Lease core.Config

	// MESI enables MESI-style Exclusive-clean read fills (§8 "Other
	// Protocols"): a sole reader is granted exclusive state, making its
	// first write a silent upgrade.
	MESI bool

	// RegularBreaksLease enables the §5 prioritization optimization:
	// a non-lease ("regular") coherence request automatically breaks an
	// existing lease instead of being queued, while lease-initiated
	// requests still queue.
	RegularBreaksLease bool

	// SoftLeaseStagger is the X parameter of the software MultiLease
	// emulation (§4): the j-th outer lease is requested for time + j·X,
	// where X approximates the time to fulfil an ownership request.
	SoftLeaseStagger uint64

	// SoftLeaseOverhead charges the software MultiLease emulation's
	// per-line instruction cost (sorting, group-id bookkeeping) — the
	// "extra software operations" of §7 that make it slightly slower
	// than the hardware MultiLease.
	SoftLeaseOverhead uint64

	// Predictor configures the §5 speculative mechanism that ignores
	// leases at sites with frequent involuntary releases.
	Predictor PredictorConfig

	// Controller configures the adaptive lease-duration controller:
	// per-site exponential backoff of granted durations after
	// involuntary releases, gradual regrowth on clean releases.
	Controller ControllerConfig

	// Energy is the event-count energy model.
	Energy EnergyModel

	// Faults selects deterministic, protocol-legal fault injection
	// (latency perturbation, early lease expiry, directory stalls, L1
	// capacity pressure). The zero value injects nothing and adds no
	// overhead; see the faults package.
	Faults faults.Config

	// Shards requests conservative time-windowed parallel execution of
	// this single machine: cores are partitioned over Shards-1 worker
	// shards (shard 0 runs the directory/memory side) and windows of
	// Timing.Net cycles execute concurrently. Output is byte-identical to
	// Shards <= 1 by construction. The request only takes effect for
	// configurations the machine can certify race-free — MSI, faults
	// off, no synchronous telemetry subscriber (buffered recorders
	// shard; the invariant checker does not), at least two threads;
	// everything else silently runs sequentially (see
	// Machine.EffectiveShards).
	Shards int

	// Seed derives each core's deterministic RNG stream (and, with
	// Faults.Seed, the fault-injection stream).
	Seed uint64
}

// EnergyModel assigns an energy cost (nanojoules) to each counted event.
// The absolute values are synthetic; the paper's energy results track
// coherence messages and cache misses, which dominate here too.
type EnergyModel struct {
	MsgNJ  float64 // per coherence message
	L1NJ   float64 // per L1 access (hit or miss lookup)
	L2NJ   float64 // per L2 data access
	DRAMNJ float64 // per DRAM access
}

// DefaultEnergy returns plausible per-event energies for a 2016-era CMP.
func DefaultEnergy() EnergyModel {
	return EnergyModel{MsgNJ: 0.5, L1NJ: 0.1, L2NJ: 0.8, DRAMNJ: 15}
}

// DefaultConfig reproduces the paper's simulated system (Table 1) for the
// given core count: 1 GHz in-order cores, 32 KB 4-way L1 (1 cycle), shared
// L2 with 3/8-cycle tag/data, directory MSI, MAX_LEASE_TIME = 20K cycles.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:             cores,
		ClockHz:           1_000_000_000,
		L1:                cache.DefaultConfig(),
		L1HitLat:          1,
		Timing:            coherence.DefaultTiming(),
		Lease:             core.DefaultConfig(),
		SoftLeaseStagger:  50,                        // ≈ one ownership-request round trip
		SoftLeaseOverhead: 12,                        // sort + group bookkeeping per line
		Predictor:         DefaultPredictorConfig(),  // Enable defaults to false
		Controller:        DefaultControllerConfig(), // Enable defaults to false
		Energy:            DefaultEnergy(),
		Seed:              1,
	}
}
