package machine

import (
	"reflect"
	"testing"

	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
	"leaserelease/internal/telemetry"
)

// TestVoluntaryReleaseRacesDeferredProbe: a probe is deferred behind an
// active lease and the holder releases voluntarily while the requester is
// still blocked. The probe must be served exactly once, the requester
// must complete with the leased value, and the release must still count
// as voluntary.
func TestVoluntaryReleaseRacesDeferredProbe(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)

	var served uint64
	m.Telemetry().Subscribe(telemetry.CatLease, func(e telemetry.Event) {
		if e.Kind == telemetry.ProbeServed {
			served++
		}
	})

	var got uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 10_000)
		c.Store(a, 41)
		// Hold long enough for core 1's ownership probe to arrive and be
		// deferred, then release while the probe sits queued.
		c.Work(2_000)
		c.Store(a, 42)
		c.Release(a)
	})
	m.Spawn(100, func(c *Ctx) {
		got = c.FetchAdd(a, 1) // blocks behind the lease
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.DeferredProbes != 1 {
		t.Fatalf("DeferredProbes = %d, want 1", s.DeferredProbes)
	}
	if served != 1 {
		t.Fatalf("ProbeServed events = %d, want exactly 1", served)
	}
	if s.VoluntaryReleases != 1 || s.InvoluntaryReleases != 0 {
		t.Fatalf("releases: voluntary=%d involuntary=%d, want 1/0 (release won the race)",
			s.VoluntaryReleases, s.InvoluntaryReleases)
	}
	if got != 42 {
		t.Fatalf("requester read %d, want 42 (the value at release)", got)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestFullyPinnedSetForcedRelease drives the installLine path where the
// victim set is fully pinned by leases: the machine must force-release
// the oldest lease rather than fail the install.
func TestFullyPinnedSetForcedRelease(t *testing.T) {
	cfg := testConfig(1)
	// 128 B, 2-way, 64 B lines -> one set with two ways: two leased lines
	// pin the whole cache.
	cfg.L1.SizeBytes = 128
	cfg.L1.Ways = 2
	m := New(cfg)
	d := m.Direct()
	a := d.Alloc(8)
	b := d.Alloc(8)
	x := d.Alloc(8)

	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 50_000)
		c.Lease(b, 50_000)
		c.Load(x) // install needs a victim; both ways are pinned
		c.ReleaseAll()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.ForcedReleases == 0 {
		t.Fatal("fully pinned set did not force a release")
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestCapacityPressureFault: the capacity-pressure fault shrinks L1
// associativity (same set count), which must increase misses but never
// correctness; and the run must stay deterministic per seed.
func TestCapacityPressureFault(t *testing.T) {
	run := func(capWays int) Stats {
		cfg := testConfig(1)
		if capWays > 0 {
			cfg.Faults = faults.Config{Enabled: true, CapacityWays: capWays}
		}
		m := New(cfg)
		d := m.Direct()
		// 8 lines mapping across sets; re-walk them to create reuse the
		// smaller cache cannot hold.
		addrs := make([]mem.Addr, 8)
		for i := range addrs {
			addrs[i] = d.Alloc(8)
		}
		m.Spawn(0, func(c *Ctx) {
			for round := 0; round < 6; round++ {
				for _, a := range addrs {
					c.Load(a)
				}
			}
		})
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	base := run(0)
	squeezed := run(1)
	if squeezed.L1Misses < base.L1Misses {
		t.Fatalf("capacity pressure reduced misses: %d -> %d", base.L1Misses, squeezed.L1Misses)
	}
	again := run(1)
	if !reflect.DeepEqual(squeezed, again) {
		t.Fatalf("capacity-pressure run not deterministic:\n%+v\n%+v", squeezed, again)
	}
}

// TestLeaseCutFaultForcesEarlyExpiry: with LeaseCutPct=100 every lease
// expires before its full duration, so a probe deferred behind the lease
// is served strictly earlier than in the fault-free run.
func TestLeaseCutFaultForcesEarlyExpiry(t *testing.T) {
	run := func(cut int) (Stats, uint64) {
		cfg := testConfig(2)
		if cut > 0 {
			cfg.Faults = faults.Config{Enabled: true, LeaseCutPct: cut}
		}
		m := New(cfg)
		var deferDelay uint64
		m.Telemetry().Subscribe(telemetry.CatLease, func(e telemetry.Event) {
			if e.Kind == telemetry.ProbeServed {
				deferDelay = e.Val
			}
		})
		a := m.Direct().Alloc(8)
		m.Spawn(0, func(c *Ctx) {
			c.Lease(a, 10_000)
			c.Store(a, 1)
			c.Work(20_000) // outlive the lease; it expires involuntarily
		})
		m.Spawn(100, func(c *Ctx) {
			c.FetchAdd(a, 1) // probe deferred until the lease expires
		})
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Stats(), deferDelay
	}
	base, baseDelay := run(0)
	if base.InvoluntaryReleases != 1 || baseDelay == 0 {
		t.Fatalf("baseline: involuntary=%d deferDelay=%d, want 1 and >0",
			base.InvoluntaryReleases, baseDelay)
	}
	cut, cutDelay := run(100)
	if cut.InvoluntaryReleases != 1 {
		t.Fatalf("lease-cut run: involuntary=%d, want 1", cut.InvoluntaryReleases)
	}
	if cutDelay >= baseDelay {
		t.Fatalf("100%% lease cut did not shorten the probe deferral: %d vs %d cycles",
			cutDelay, baseDelay)
	}
	// Determinism: the faulted run replays identically.
	again, againDelay := run(100)
	if !reflect.DeepEqual(cut, again) || againDelay != cutDelay {
		t.Fatalf("lease-cut run not deterministic")
	}
}

// TestProtocolViolationErrorIsTyped: ProtocolViolationError formats with
// rule, core, and line so harness dumps are self-describing.
func TestProtocolViolationErrorIsTyped(t *testing.T) {
	err := &ProtocolViolationError{Rule: "pinned-set", Core: 3, Line: mem.LineOf(0x1c0),
		Detail: "L1 set fully pinned but lease table empty"}
	msg := err.Error()
	for _, want := range []string{"pinned-set", "core 3", "pinned"} {
		if !contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
