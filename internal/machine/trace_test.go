package machine

import "testing"

func TestTraceEvents(t *testing.T) {
	cfg := testConfig(2)
	cfg.Lease.MaxLeaseTime = 500
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var events []TraceEvent
	m.SetTracer(func(e TraceEvent) { events = append(events, e) })
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 500)
		c.Load(a)
		c.Release(a) // voluntary
		c.Lease(a, 500)
		c.Work(2000) // expires
		c.Release(a)
	})
	m.Spawn(100, func(c *Ctx) {
		c.Store(a, 1) // probe is deferred behind the first lease
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	count := map[TraceKind]int{}
	for _, e := range events {
		count[e.Kind]++
		if e.String() == "" {
			t.Fatal("empty trace string")
		}
	}
	if count[TraceLease] != 2 || count[TraceStart] != 2 {
		t.Fatalf("lease/start counts = %d/%d, want 2/2", count[TraceLease], count[TraceStart])
	}
	if count[TraceVoluntary] != 1 || count[TraceInvoluntary] != 1 {
		t.Fatalf("vol/invol = %d/%d, want 1/1", count[TraceVoluntary], count[TraceInvoluntary])
	}
	if count[TraceDeferred] != 1 {
		t.Fatalf("deferred = %d, want 1", count[TraceDeferred])
	}
	// Events must be time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("trace out of order: %v then %v", events[i-1], events[i])
		}
	}
}

func TestTracerDisabledNoOverheadPath(t *testing.T) {
	m := New(testConfig(1))
	a := m.Direct().Alloc(8)
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 1000)
		c.Release(a)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err) // must not panic with nil tracer
	}
}
