package machine

// This file implements the adaptive lease-duration controller: a
// per-core, per-site closed loop over lease release outcomes. The paper
// fixes MAX_LEASE_TIME as an architectural upper bound; the controller
// adapts the duration actually *granted* below that bound. After an
// involuntary release (the expiry timer fired — including fault-injected
// lease cuts and expiries while the holder was preempted) the site's cap
// shrinks multiplicatively (exponential backoff); after a clean
// voluntary-class release it re-grows gradually toward MAX_LEASE_TIME.
// A preempted holder therefore pins contended lines for ever-shorter
// windows, bounding the time victims wait far below the fixed cap, while
// well-behaved sites keep their full duration.
//
// Like the §5 predictor it shadows, the controller is per-core (the
// hardware table it models is core-private) and purely sequential:
// every grant/record happens on the owning core's event stream, so
// adaptation is deterministic for a fixed seed.

// ControllerConfig tunes the adaptive lease-duration controller.
type ControllerConfig struct {
	// Enable turns the controller on (Ctx.Lease/LeaseAt only; MultiLease
	// groups keep their requested duration).
	Enable bool
	// MinDuration floors the adapted cap — leases never shrink below
	// this, so a site under permanent preemption still makes progress.
	MinDuration uint64
	// ShrinkNum/ShrinkDen scale the cap after an involuntary release
	// (multiplicative backoff; 1/2 halves it each time).
	ShrinkNum, ShrinkDen uint64
	// GrowNum/GrowDen scale the cap after a clean voluntary-class
	// release (9/8 regrows ~12% per release). Growth is capped at
	// MAX_LEASE_TIME.
	GrowNum, GrowDen uint64
}

// DefaultControllerConfig shrinks fast (halving) and regrows slowly, the
// usual asymmetry of backoff loops. Enable defaults to false.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{MinDuration: 250, ShrinkNum: 1, ShrinkDen: 2, GrowNum: 9, GrowDen: 8}
}

type ctrlSite struct {
	cap uint64 // current duration cap; 0 until the site's first grant
}

// leaseController is per-core, like the predictor.
type leaseController struct {
	cfg   ControllerConfig
	max   uint64 // MAX_LEASE_TIME: ceiling for regrowth
	sites map[uint64]*ctrlSite
}

func newLeaseController(cfg ControllerConfig, maxLease uint64) *leaseController {
	return &leaseController{cfg: cfg, max: maxLease, sites: make(map[uint64]*ctrlSite)}
}

func (lc *leaseController) site(id uint64) *ctrlSite {
	s, ok := lc.sites[id]
	if !ok {
		s = &ctrlSite{}
		lc.sites[id] = s
	}
	return s
}

// grant returns the duration to grant for a request of dur at site:
// min(dur, adapted cap). clamped reports whether the controller cut the
// request. The first request at a site initializes its cap.
func (lc *leaseController) grant(site, dur uint64) (granted uint64, clamped bool) {
	if !lc.cfg.Enable {
		return dur, false
	}
	s := lc.site(site)
	if s.cap == 0 {
		s.cap = dur
		return dur, false
	}
	if dur <= s.cap {
		return dur, false
	}
	return s.cap, true
}

// record notes a release outcome at the site; voluntary=false means the
// expiry timer fired. It reports whether the cap shrank or grew (for the
// machine's counters). Sites never granted through the controller are
// ignored.
func (lc *leaseController) record(site uint64, voluntary bool) (shrank, grew bool) {
	if !lc.cfg.Enable {
		return false, false
	}
	s := lc.site(site)
	if s.cap == 0 {
		return false, false
	}
	if voluntary {
		if lc.cfg.GrowDen == 0 || lc.cfg.GrowNum <= lc.cfg.GrowDen {
			return false, false
		}
		n := s.cap * lc.cfg.GrowNum / lc.cfg.GrowDen
		if n == s.cap {
			n++
		}
		if n > lc.max {
			n = lc.max
		}
		if n <= s.cap {
			return false, false
		}
		s.cap = n
		return false, true
	}
	if lc.cfg.ShrinkDen == 0 {
		return false, false
	}
	n := s.cap * lc.cfg.ShrinkNum / lc.cfg.ShrinkDen
	if n < lc.cfg.MinDuration {
		n = lc.cfg.MinDuration
	}
	if n >= s.cap {
		return false, false
	}
	s.cap = n
	return true, false
}

// capOf returns the site's current cap (0 = not yet granted), for tests
// and diagnostics.
func (lc *leaseController) capOf(site uint64) uint64 {
	if s, ok := lc.sites[site]; ok {
		return s.cap
	}
	return 0
}
