package machine

import (
	"testing"

	"leaserelease/internal/faults"
)

// TestControllerUnitLoop exercises the controller's closed loop directly:
// shrink on involuntary release, floor at MinDuration, regrow on clean
// releases, ceiling at MAX_LEASE_TIME, and clamping of later grants.
func TestControllerUnitLoop(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Enable = true
	lc := newLeaseController(cfg, 20_000)

	const site = 7
	if g, clamped := lc.grant(site, 20_000); g != 20_000 || clamped {
		t.Fatalf("first grant = %d (clamped=%v), want full 20000 unclamped", g, clamped)
	}
	// Involuntary releases halve the cap down to the floor.
	want := uint64(20_000)
	for i := 0; i < 10; i++ {
		shrank, _ := lc.record(site, false)
		next := want * cfg.ShrinkNum / cfg.ShrinkDen
		if next < cfg.MinDuration {
			next = cfg.MinDuration
		}
		if (next < want) != shrank {
			t.Fatalf("step %d: shrank=%v with cap %d -> %d", i, shrank, want, next)
		}
		want = next
		if got := lc.capOf(site); got != want {
			t.Fatalf("step %d: cap = %d, want %d", i, got, want)
		}
	}
	if lc.capOf(site) != cfg.MinDuration {
		t.Fatalf("cap %d did not floor at MinDuration %d", lc.capOf(site), cfg.MinDuration)
	}
	// A grant is now clamped to the shrunken cap.
	if g, clamped := lc.grant(site, 20_000); g != cfg.MinDuration || !clamped {
		t.Fatalf("post-shrink grant = %d (clamped=%v), want %d clamped", g, clamped, cfg.MinDuration)
	}
	// Clean releases regrow toward (and stop at) MAX_LEASE_TIME.
	for i := 0; i < 200; i++ {
		lc.record(site, true)
	}
	if lc.capOf(site) != 20_000 {
		t.Fatalf("cap %d did not regrow to MAX_LEASE_TIME", lc.capOf(site))
	}
	if _, grew := lc.record(site, true); grew {
		t.Fatal("cap grew past MAX_LEASE_TIME")
	}
	// Requests below the cap pass through unclamped.
	if g, clamped := lc.grant(site, 1_000); g != 1_000 || clamped {
		t.Fatalf("small request = %d (clamped=%v), want 1000 unclamped", g, clamped)
	}
}

// TestControllerDisabledIsInert: with Enable=false grant/record are
// identity operations — the default path adds no behavior.
func TestControllerDisabledIsInert(t *testing.T) {
	lc := newLeaseController(DefaultControllerConfig(), 20_000)
	if g, clamped := lc.grant(1, 20_000); g != 20_000 || clamped {
		t.Fatal("disabled controller clamped a grant")
	}
	lc.record(1, false)
	if g, _ := lc.grant(1, 20_000); g != 20_000 {
		t.Fatal("disabled controller adapted a cap")
	}
}

// TestControllerShrinksUnderPreemption: machine-level closed loop. A
// leased site whose holder keeps getting descheduled past its lease
// accumulates involuntary releases; with the controller on, later grants
// at that site are clamped ever shorter (CtrlClamps/CtrlShrinks count),
// and the per-site cap observably decays below the requested duration.
func TestControllerShrinksUnderPreemption(t *testing.T) {
	cfg := testConfig(2)
	cfg.Controller.Enable = true
	cfg.Faults = faults.Config{Enabled: true, PreemptPermille: 400,
		PreemptMin: 30_000, PreemptMax: 30_000, PreemptTargeted: true}
	m := New(cfg)
	a := m.Direct().Alloc(8)
	const site = 42
	for i := 0; i < 2; i++ {
		m.Spawn(0, func(c *Ctx) {
			for {
				c.LeaseAt(site, a, 5_000)
				c.Store(a, c.Load(a)+1)
				c.Release(a)
				c.Work(64)
			}
		})
	}
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	s := m.Stats()
	if s.InvoluntaryReleases == 0 {
		t.Fatalf("adversarial preemption caused no involuntary releases: %+v", s)
	}
	if s.CtrlShrinks == 0 {
		t.Fatalf("controller never shrank despite %d involuntary releases", s.InvoluntaryReleases)
	}
	if s.CtrlClamps == 0 {
		t.Fatal("controller never clamped a grant after shrinking")
	}
	decayed := false
	for _, cs := range m.cores {
		if c := cs.ctrl.capOf(site); c > 0 && c < 5_000 {
			decayed = true
		}
	}
	if !decayed {
		t.Fatal("no core's site cap decayed below the requested duration")
	}
}

// TestControllerRegrowsAfterCleanReleases: after shrinking, a run of
// voluntary releases regrows the cap (CtrlGrows counts), so transient
// preemption storms do not permanently cripple a site.
func TestControllerRegrowsAfterCleanReleases(t *testing.T) {
	cfg := testConfig(1)
	cfg.Controller.Enable = true
	m := New(cfg)
	a := m.Direct().Alloc(8)
	const site = 9
	m.Spawn(0, func(c *Ctx) {
		// One involuntary expiry (outlive the lease), then clean cycles.
		c.LeaseAt(site, a, 1_000)
		c.Store(a, 1)
		c.Work(2_000)
		c.ReleaseAll() // already expired: the timer recorded the shrink
		for i := 0; i < 50; i++ {
			c.LeaseAt(site, a, 1_000)
			c.Store(a, c.Load(a)+1)
			c.Release(a)
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.CtrlShrinks == 0 {
		t.Fatalf("expiry did not shrink the site: %+v", s)
	}
	if s.CtrlGrows == 0 {
		t.Fatalf("clean releases did not regrow the site: %+v", s)
	}
	if got := m.cores[0].ctrl.capOf(site); got < 1_000 {
		t.Fatalf("cap %d did not recover to the requested duration", got)
	}
}
