package machine

import "testing"

// TestLeaseUpgradeFromShared: leasing a line currently held Shared issues
// an exclusive upgrade; other sharers get invalidated and the lease then
// defers their probes.
func TestLeaseUpgradeFromShared(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)
	var releaseAt, otherDone uint64
	m.Spawn(0, func(c *Ctx) {
		c.Load(a) // line Shared at core 0
		c.Lease(a, 20000)
		if !c.LeaseHeld(a) {
			t.Error("lease not held after upgrade")
		}
		c.Store(a, 5) // must be a local hit under the lease
		c.Work(3000)
		c.Release(a)
		releaseAt = c.Now()
	})
	m.Spawn(50, func(c *Ctx) {
		c.Load(a) // co-sharer before the lease
		c.Work(500)
		c.Store(a, 9) // ownership probe: deferred behind the lease
		otherDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if otherDone < releaseAt {
		t.Fatalf("contending store at %d finished before release at %d", otherDone, releaseAt)
	}
	if m.Peek(a) != 9 {
		t.Fatalf("final value %d, want 9", m.Peek(a))
	}
}

// TestReadProbeDeferredAndDowngrades: a GetS probe against a leased line
// waits, then the owner ends up Shared (not invalid).
func TestReadProbeDeferredAndDowngrades(t *testing.T) {
	m := New(testConfig(2))
	a := m.Direct().Alloc(8)
	var releaseAt, readerDone, readerVal uint64
	var ownerHitAfter bool
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 20000)
		c.Store(a, 42)
		c.Work(2500)
		c.Release(a)
		releaseAt = c.Now()
		c.Fence()
		before := m.Stats().L1Misses
		_ = c.Load(a) // owner keeps a Shared copy: still a hit
		c.Fence()
		ownerHitAfter = m.Stats().L1Misses == before
	})
	m.Spawn(100, func(c *Ctx) {
		readerVal = c.Load(a)
		readerDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if readerDone < releaseAt {
		t.Fatalf("read at %d completed before release at %d", readerDone, releaseAt)
	}
	if readerVal != 42 {
		t.Fatalf("reader saw %d, want 42", readerVal)
	}
	if !ownerHitAfter {
		t.Fatal("owner lost its copy entirely on a read probe (should downgrade to S)")
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}
