package machine

import "testing"

// TestMESIExclusiveFill: under MESI, a sole reader's first write is a
// silent upgrade (L1 hit); under MSI it needs an upgrade transaction.
func TestMESIExclusiveFill(t *testing.T) {
	run := func(mesi bool) uint64 {
		cfg := testConfig(2)
		cfg.MESI = mesi
		m := New(cfg)
		a := m.Direct().Alloc(8)
		m.Spawn(0, func(c *Ctx) {
			c.Load(a)     // fill (sole reader)
			c.Store(a, 1) // write to the same line
		})
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Stats().L1Misses
	}
	msi, mesi := run(false), run(true)
	if mesi != 1 {
		t.Fatalf("MESI misses = %d, want 1 (silent upgrade)", mesi)
	}
	if msi != 2 {
		t.Fatalf("MSI misses = %d, want 2 (read fill + upgrade)", msi)
	}
}

// TestMESISharedReadersStillShared: with a second reader, fills degrade to
// Shared and a write still upgrades.
func TestMESISharedReadersStillShared(t *testing.T) {
	cfg := testConfig(2)
	cfg.MESI = true
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var v0, v1 uint64
	m.Spawn(0, func(c *Ctx) {
		v0 = c.Load(a)
		c.Work(2000)
		c.Store(a, 7)
	})
	m.Spawn(100, func(c *Ctx) {
		v1 = c.Load(a) // second reader: probe downgrades core 0 to S
		c.Work(5000)
		v1 = c.Load(a) // may have been invalidated by core 0's store
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
	if v0 != 0 || v1 != 7 {
		t.Fatalf("v0=%d v1=%d, want 0, 7", v0, v1)
	}
}

// TestMESIStressInvariant reruns the random stress mix under MESI and
// checks the coherence invariant plus CAS atomicity.
func TestMESIStressInvariant(t *testing.T) {
	cfg := testConfig(8)
	cfg.MESI = true
	m := New(cfg)
	ctr := m.Direct().Alloc(8)
	const per = 60
	for i := 0; i < 8; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < per; n++ {
				switch c.Rand().Intn(3) {
				case 0:
					for {
						v := c.Load(ctr)
						if c.CAS(ctr, v, v+1) {
							break
						}
					}
				case 1:
					c.Lease(ctr, 2000)
					v := c.Load(ctr)
					if !c.CAS(ctr, v, v+1) {
						t.Error("leased CAS failed")
					}
					c.Release(ctr)
				case 2:
					for {
						v := c.Load(ctr)
						if c.CAS(ctr, v, v+1) {
							break
						}
						c.Work(c.Rand().Uint64n(64))
					}
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != 8*per {
		t.Fatalf("counter = %d, want %d", got, 8*per)
	}
}
