package machine

import "testing"

// TestPredictorLearnsToIgnore: a site whose leases always expire
// involuntarily must get blacklisted once enabled.
func TestPredictorLearnsToIgnore(t *testing.T) {
	cfg := testConfig(2)
	cfg.Lease.MaxLeaseTime = 200
	cfg.Predictor.Enable = true
	m := New(cfg)
	a := m.Direct().Alloc(8)
	m.Spawn(0, func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.LeaseAt(42, a, 200)
			c.Load(a)
			c.Work(1000) // always outlives the lease
			c.Release(a)
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.IgnoredLeases == 0 {
		t.Fatalf("predictor never ignored the always-expiring site: %+v", s)
	}
	if s.InvoluntaryReleases < cfg.Predictor.MinSamples {
		t.Fatalf("too few samples before judging: %d", s.InvoluntaryReleases)
	}
	// It must keep re-sampling occasionally rather than ignoring forever.
	if s.Leases < cfg.Predictor.MinSamples+1 {
		t.Fatalf("no probation re-samples: leases=%d", s.Leases)
	}
}

// TestPredictorLeavesGoodSitesAlone: voluntary-release sites are never
// skipped.
func TestPredictorLeavesGoodSitesAlone(t *testing.T) {
	cfg := testConfig(1)
	cfg.Predictor.Enable = true
	m := New(cfg)
	a := m.Direct().Alloc(8)
	m.Spawn(0, func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.LeaseAt(7, a, 20000)
			c.Load(a)
			c.Release(a)
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.IgnoredLeases != 0 {
		t.Fatalf("predictor skipped a well-behaved site %d times", s.IgnoredLeases)
	}
	if s.Leases != 100 {
		t.Fatalf("leases = %d, want 100", s.Leases)
	}
}

// TestPredictorDisabledByDefault: with Enable=false nothing is skipped
// even for pathological sites.
func TestPredictorDisabledByDefault(t *testing.T) {
	cfg := testConfig(1)
	cfg.Lease.MaxLeaseTime = 100
	m := New(cfg)
	a := m.Direct().Alloc(8)
	m.Spawn(0, func(c *Ctx) {
		for i := 0; i < 50; i++ {
			c.LeaseAt(9, a, 100)
			c.Work(500)
			c.Release(a)
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.IgnoredLeases != 0 || s.Leases != 50 {
		t.Fatalf("disabled predictor interfered: %+v", s)
	}
}

// TestPredictorRecoversThroughput: the improper long-critical-section
// pattern (CS > MAX_LEASE_TIME) wastes probe-deferral time; with the
// predictor the workload converges back toward base throughput.
func TestPredictorRecoversThroughput(t *testing.T) {
	run := func(enable bool) uint64 {
		cfg := testConfig(4)
		cfg.Lease.MaxLeaseTime = 300
		cfg.Predictor.Enable = enable
		m := New(cfg)
		a := m.Direct().Alloc(8)
		var ops uint64
		for i := 0; i < 4; i++ {
			m.Spawn(0, func(c *Ctx) {
				for {
					c.LeaseAt(1, a, 300)
					v := c.Load(a)
					c.Work(1500) // lease always expires mid-window
					c.CAS(a, v, v+1)
					c.Release(a)
					ops++
				}
			})
		}
		if err := m.Run(400000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return ops
	}
	off, on := run(false), run(true)
	if on < off {
		t.Fatalf("predictor made things worse: %d vs %d ops", on, off)
	}
}
