package machine

import (
	"sort"
	"sync/atomic"

	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
)

// API is the instruction-set surface simulated programs are written
// against: plain and read-modify-write memory accesses, the Lease/Release
// instruction family, local compute, and allocation.
//
// Two implementations exist: *Ctx (fully timed, runs on a simulated core)
// and *Direct (zero-latency, for building initial data structure state
// before the simulation starts). Data structures take an API so the same
// algorithm code serves both setup and measurement.
type API interface {
	// Load returns the word at a.
	Load(a mem.Addr) uint64
	// Store writes the word at a.
	Store(a mem.Addr, v uint64)
	// CAS atomically replaces the word at a with new if it equals old,
	// reporting success.
	CAS(a mem.Addr, old, new uint64) bool
	// FetchAdd atomically adds delta to the word at a, returning the old
	// value.
	FetchAdd(a mem.Addr, delta uint64) uint64
	// Swap atomically stores v, returning the old value.
	Swap(a mem.Addr, v uint64) uint64

	// Lease leases the cache line containing a for dur cycles (clamped
	// to MAX_LEASE_TIME). Re-leasing a leased line is a no-op.
	Lease(a mem.Addr, dur uint64)
	// LeaseAt is Lease attributed to a program site, so the §5
	// speculative predictor (when enabled) can learn to skip leases that
	// keep expiring involuntarily.
	LeaseAt(site uint64, a mem.Addr, dur uint64)
	// Release voluntarily releases the lease on a's line, reporting
	// whether a lease was still held (false means it already expired
	// involuntarily or was never taken) — the boolean variant of §3.
	Release(a mem.Addr) bool
	// MultiLease jointly leases the lines of all addrs (hardware
	// MultiLease, Algorithm 2): releases all held leases, acquires the
	// group in global sorted order, then starts all countdowns together.
	// Returns false if the group exceeds MAX_NUM_LEASES (the request is
	// ignored, per §4).
	MultiLease(dur uint64, addrs ...mem.Addr) bool
	// SoftMultiLease is the software emulation of MultiLease (§4):
	// sorted single leases with staggered timeouts time + j·X. Joint
	// holding is not guaranteed.
	SoftMultiLease(dur uint64, addrs ...mem.Addr)
	// ReleaseAll releases every held lease (MultiRelease).
	ReleaseAll()

	// Work burns n cycles of local computation.
	Work(n uint64)
	// Alloc returns a fresh cache-line-aligned block of at least size
	// bytes, padded to whole lines (no false sharing between blocks).
	Alloc(size uint64) mem.Addr
	// Rand is this thread's deterministic RNG.
	Rand() *sim.RNG
	// Now is the current simulated time in cycles.
	Now() uint64
}

// Ctx is a simulated thread's timed view of the machine. All methods must
// be called only from inside the thread function passed to Machine.Spawn.
type Ctx struct {
	m  *Machine
	cs *coreState
	p  *sim.Proc
}

var _ API = (*Ctx)(nil)

// ID returns the core/thread id.
func (c *Ctx) ID() int { return c.cs.id }

// Cores returns the machine's core count.
func (c *Ctx) Cores() int { return len(c.m.cores) }

// Now returns the thread's local clock in cycles.
func (c *Ctx) Now() uint64 { return c.p.Clock() }

// Work burns n cycles of local computation.
func (c *Ctx) Work(n uint64) { c.p.Work(n) }

// Rand returns the thread's deterministic RNG.
func (c *Ctx) Rand() *sim.RNG { return c.p.RNG() }

// Alloc returns a fresh cache-line-aligned, line-padded block. Each core
// allocates from its own fixed-base arena, so the addresses a thread sees
// depend only on its own allocation sequence — shard- and
// interleaving-invariant, and lock-free under parallel windows.
func (c *Ctx) Alloc(size uint64) mem.Addr { return c.cs.arena.AllocAligned(size) }

// Observe runs fn at the current point of the thread's telemetry stream.
// Under the sequential executor (or with no telemetry bus) fn runs
// immediately; under the parallel executor it is buffered alongside the
// core's emissions and replayed by the barrier merge in canonical order.
// The harness uses it for operation-boundary observations — latency
// histograms, span and ledger op accounting — which touch single-consumer
// host state and must fold in the same order at any shard count.
func (c *Ctx) Observe(fn func()) { c.m.bus.Defer(c.cs.dom, fn) }

// access obtains the line of a with read or write permission, blocking
// through the coherence protocol on a miss. On return the access itself
// has been charged (L1 hit latency) and the value may be read/written.
func (c *Ctx) access(a mem.Addr, write, lease bool) {
	c.m.maybePreempt(c.cs, c.p, write)
	c.p.Sync()
	l := mem.LineOf(a)
	if c.cs.l1.Lookup(l, write) {
		c.p.Work(c.m.cfg.L1HitLat)
		return
	}
	req := c.m.acquireReq(c.cs, l, write, lease)
	c.m.mintTxn(c.cs, req)
	c.m.proto.Submit(req)
	c.p.Block(describeReq(req))
	c.m.releaseReq(c.cs, req)
	c.p.Work(c.m.cfg.L1HitLat)
}

// Load returns the word at a, timed through the memory hierarchy.
func (c *Ctx) Load(a mem.Addr) uint64 {
	c.access(a, false, false)
	return c.m.store.Load(a)
}

// Store writes the word at a, obtaining exclusive ownership first.
func (c *Ctx) Store(a mem.Addr, v uint64) {
	c.access(a, true, false)
	c.m.store.Store(a, v)
}

// CAS performs a compare-and-swap on the word at a.
func (c *Ctx) CAS(a mem.Addr, old, new uint64) bool {
	c.access(a, true, false)
	if c.m.store.Load(a) != old {
		atomic.AddUint64(&c.m.stats.CASFailures, 1)
		return false
	}
	c.m.store.Store(a, new)
	atomic.AddUint64(&c.m.stats.CASSuccesses, 1)
	return true
}

// FetchAdd atomically adds delta to the word at a, returning the old value.
func (c *Ctx) FetchAdd(a mem.Addr, delta uint64) uint64 {
	c.access(a, true, false)
	v := c.m.store.Load(a)
	c.m.store.Store(a, v+delta)
	return v
}

// Swap atomically stores v at a, returning the old value.
func (c *Ctx) Swap(a mem.Addr, v uint64) uint64 {
	c.access(a, true, false)
	old := c.m.store.Load(a)
	c.m.store.Store(a, v)
	return old
}

// Lease implements the single-line Lease instruction (Algorithm 1): create
// the lease-table entry (FIFO-evicting the oldest if full), bring the line
// in Exclusive state, and start the countdown once ownership is granted.
func (c *Ctx) Lease(a mem.Addr, dur uint64) { c.LeaseAt(0, a, dur) }

// LeaseAt is Lease with an explicit site id (the "program counter" of the
// §5 speculative mechanism). When the predictor is enabled and the site's
// leases keep expiring involuntarily, the lease is skipped — since lease
// usage is advisory, this never affects correctness.
func (c *Ctx) LeaseAt(site uint64, a mem.Addr, dur uint64) {
	c.p.Sync()
	cs := c.cs
	if cs.pred.shouldIgnore(site) {
		atomic.AddUint64(&c.m.stats.IgnoredLeases, 1)
		c.m.trace(cs, TraceIgnored, mem.LineOf(a))
		c.p.Work(1)
		return
	}
	l := mem.LineOf(a)
	if cs.leases.Find(l) != nil {
		// Already leased: no extension (preserves MAX_LEASE_TIME).
		c.p.Work(1)
		return
	}
	if g, clamped := cs.ctrl.grant(site, dur); clamped {
		atomic.AddUint64(&c.m.stats.CtrlClamps, 1)
		dur = g
	}
	atomic.AddUint64(&c.m.stats.Leases, 1)
	c.m.trace(cs, TraceLease, l)
	evicted, _ := cs.leases.Insert(l, dur, false)
	cs.leases.Find(l).Site = site
	if evicted != nil {
		atomic.AddUint64(&c.m.stats.EvictedLeases, 1)
		c.m.traceVal(cs, TraceEvicted, evicted.Line, leaseHold(evicted, c.p.Clock()))
		c.m.releaseEntry(cs, evicted)
	}
	if cs.l1.Lookup(l, true) {
		// Already owned Exclusive: the lease starts immediately.
		if started := cs.leases.Start(l, c.p.Clock()); started != nil {
			cs.l1.Pin(l)
			c.m.proto.LeaseStarted(cs.id, l, started.Duration)
			c.m.traceVal(cs, TraceStart, l, started.Duration)
			c.m.scheduleExpiry(cs, started)
		}
		c.p.Work(c.m.cfg.L1HitLat)
		return
	}
	req := c.m.acquireReq(cs, l, true, true)
	c.m.mintTxn(cs, req)
	c.m.proto.Submit(req)
	c.p.Block(describeReq(req))
	c.m.releaseReq(cs, req)
	c.p.Work(c.m.cfg.L1HitLat)
}

// Release implements the Release instruction, with the optional boolean
// result of §3: true means the release was voluntary (a lease was still
// held). Release has fence semantics in the paper; on this in-order core a
// fence is free.
func (c *Ctx) Release(a mem.Addr) bool {
	c.p.Sync()
	cs := c.cs
	now := c.p.Clock()
	e := cs.leases.Remove(mem.LineOf(a))
	c.p.Work(1)
	if e == nil {
		return false
	}
	atomic.AddUint64(&c.m.stats.VoluntaryReleases, 1)
	c.m.traceVal(cs, TraceVoluntary, e.Line, leaseHold(e, now))
	c.m.releaseEntry(cs, e)
	return true
}

// ReleaseAll implements MultiRelease: every held lease is released and any
// deferred probes are serviced (Algorithm 2, ReleaseAll).
func (c *Ctx) ReleaseAll() {
	c.p.Sync()
	c.releaseAllNow()
	c.p.Work(1)
}

// releaseAllNow releases all leases at the current (synced) instant.
func (c *Ctx) releaseAllNow() {
	cs := c.cs
	for _, e := range cs.leases.RemoveAll() {
		atomic.AddUint64(&c.m.stats.VoluntaryReleases, 1)
		c.m.traceVal(cs, TraceVoluntary, e.Line, leaseHold(e, c.p.Clock()))
		c.m.releaseEntry(cs, e)
	}
}

// MultiLease implements the hardware MultiLease (Algorithm 2): all held
// leases are first released; the group's lines are acquired in Exclusive
// state in global sorted order, deferring probes on already-acquired group
// lines during the acquisition phase; once the whole group is owned, all
// countdowns start together. Proposition 3 shows the sorted order makes
// this deadlock-free.
func (c *Ctx) MultiLease(dur uint64, addrs ...mem.Addr) bool {
	c.p.Sync()
	c.releaseAllNow()
	lines := sortedUniqueLines(addrs)
	if len(lines) > c.m.cfg.Lease.MaxNumLeases {
		// "A MultiLease request that causes the MAX_NUM_LEASES bound to
		// be exceeded is ignored."
		c.p.Work(1)
		return false
	}
	atomic.AddUint64(&c.m.stats.MultiLeases, 1)
	cs := c.cs
	for _, l := range lines {
		c.p.Sync()
		cs.leases.Insert(l, dur, true)
		if cs.l1.Lookup(l, true) {
			cs.l1.Pin(l)
			c.p.Work(c.m.cfg.L1HitLat)
			continue
		}
		req := c.m.acquireReq(cs, l, true, true)
		c.m.mintTxn(cs, req)
		c.m.proto.Submit(req)
		c.p.Block(describeReq(req))
		c.m.releaseReq(cs, req)
		c.p.Work(c.m.cfg.L1HitLat)
	}
	c.p.Sync()
	for _, e := range cs.leases.StartGroup(c.p.Clock()) {
		c.m.proto.LeaseStarted(cs.id, e.Line, e.Duration)
		c.m.traceVal(cs, TraceStart, e.Line, e.Duration)
		c.m.scheduleExpiry(cs, e)
	}
	return true
}

// SoftMultiLease emulates MultiLease in software over single-line leases
// (§4): leases are taken in sorted order and the j-th outer (earlier) lease
// runs longer by j·SoftLeaseStagger, approximating a joint hold.
func (c *Ctx) SoftMultiLease(dur uint64, addrs ...mem.Addr) {
	lines := sortedUniqueLines(addrs)
	n := len(lines)
	for j, l := range lines {
		// Per-line software bookkeeping (sorting, group-id management):
		// the instruction overhead that makes the emulation "incur a
		// slight, but consistent performance hit" (§7).
		c.p.Work(c.m.cfg.SoftLeaseOverhead)
		c.Lease(l.Base(), dur+uint64(n-1-j)*c.m.cfg.SoftLeaseStagger)
	}
}

func sortedUniqueLines(addrs []mem.Addr) []mem.Line {
	lines := make([]mem.Line, 0, len(addrs))
	for _, a := range addrs {
		lines = append(lines, mem.LineOf(a))
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	out := lines[:0]
	var prev mem.Line
	for i, l := range lines {
		if i == 0 || l != prev {
			out = append(out, l)
			prev = l
		}
	}
	return out
}

// Fence advances global simulated time to the thread's local clock. Memory
// operations fence implicitly; call this before sampling Machine.Stats from
// inside a thread so the snapshot reflects everything up to "now".
func (c *Ctx) Fence() { c.p.Sync() }

// LeaseHeld reports whether the thread currently holds a lease on a's line
// (diagnostics/tests).
func (c *Ctx) LeaseHeld(a mem.Addr) bool {
	return c.cs.leases.Find(mem.LineOf(a)) != nil
}

// Direct is the zero-latency API implementation used to build initial data
// structure state before the simulation starts (and to inspect it after).
// Lease operations are no-ops; Release reports true. Direct must not be
// used while the engine is running.
type Direct struct {
	m   *Machine
	rng sim.RNG
}

var _ API = (*Direct)(nil)

// Direct returns the machine's setup accessor.
func (m *Machine) Direct() *Direct {
	return &Direct{m: m, rng: sim.NewRNG(m.cfg.Seed ^ 0xD1EC7)}
}

// Load returns the word at a.
func (d *Direct) Load(a mem.Addr) uint64 { return d.m.store.Load(a) }

// Store writes the word at a.
func (d *Direct) Store(a mem.Addr, v uint64) { d.m.store.Store(a, v) }

// CAS performs an (uncontended) compare-and-swap.
func (d *Direct) CAS(a mem.Addr, old, new uint64) bool {
	if d.m.store.Load(a) != old {
		return false
	}
	d.m.store.Store(a, new)
	return true
}

// FetchAdd adds delta to the word at a, returning the old value.
func (d *Direct) FetchAdd(a mem.Addr, delta uint64) uint64 {
	v := d.m.store.Load(a)
	d.m.store.Store(a, v+delta)
	return v
}

// Swap stores v at a, returning the old value.
func (d *Direct) Swap(a mem.Addr, v uint64) uint64 {
	old := d.m.store.Load(a)
	d.m.store.Store(a, v)
	return old
}

// Lease is a no-op during setup.
func (d *Direct) Lease(mem.Addr, uint64) {}

// LeaseAt is a no-op during setup.
func (d *Direct) LeaseAt(uint64, mem.Addr, uint64) {}

// Release is a no-op during setup; it reports true (voluntary).
func (d *Direct) Release(mem.Addr) bool { return true }

// MultiLease is a no-op during setup; it reports true.
func (d *Direct) MultiLease(uint64, ...mem.Addr) bool { return true }

// SoftMultiLease is a no-op during setup.
func (d *Direct) SoftMultiLease(uint64, ...mem.Addr) {}

// ReleaseAll is a no-op during setup.
func (d *Direct) ReleaseAll() {}

// Work is free during setup.
func (d *Direct) Work(uint64) {}

// Alloc returns a fresh cache-line-aligned block.
func (d *Direct) Alloc(size uint64) mem.Addr { return d.m.alloc.AllocAligned(size) }

// Rand returns the setup RNG.
func (d *Direct) Rand() *sim.RNG { return &d.rng }

// Now returns the engine time (0 before the simulation starts).
func (d *Direct) Now() uint64 { return d.m.eng.Now() }
