//go:build !race

package machine

import "leaserelease/internal/coherence"

// Poison mode is compiled out of regular builds: pooling costs nothing.

func poisonAcquire(*coreState, *coherence.Request) {}

func poisonRelease(*coreState, *coherence.Request) {}
