package machine

import (
	"reflect"
	"testing"

	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
)

// preemptWorkload runs a contended leased counter on `cores` cores for
// `cycles` simulated cycles under the given fault config and returns the
// machine (stopped, ready for inspection).
func preemptWorkload(t *testing.T, cores int, cycles uint64, fc faults.Config) *Machine {
	t.Helper()
	cfg := testConfig(cores)
	cfg.Faults = fc
	m := New(cfg)
	a := m.Direct().Alloc(8)
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for {
				c.Lease(a, 5_000)
				c.Store(a, c.Load(a)+1)
				c.Release(a)
				c.Work(c.Rand().Uint64n(64))
			}
		})
	}
	if err := m.Run(cycles); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	return m
}

// TestPreemptionZeroConfigIsNoOp: an enabled fault config whose every
// field is zero (and so a live injector that never draws) leaves the run
// bit-identical to the fault-free one — the guarantee that keeps all
// existing golden outputs valid.
func TestPreemptionZeroConfigIsNoOp(t *testing.T) {
	clean := preemptWorkload(t, 4, 200_000, faults.Config{}).Stats()
	armed := preemptWorkload(t, 4, 200_000, faults.Config{Enabled: true}).Stats()
	if !reflect.DeepEqual(clean, armed) {
		t.Fatalf("enabled-but-zero fault config changed the run:\nclean: %+v\narmed: %+v", clean, armed)
	}
	if clean.Preemptions != 0 || clean.PreemptedCycles != 0 {
		t.Fatalf("fault-free run counted preemptions: %+v", clean)
	}
}

// TestPreemptionConservation: every preempted cycle is accounted once and
// identically in three places — the injector's delivery stats, the
// machine's hardware counters, and the per-core proc clocks surfaced in
// the state dump.
func TestPreemptionConservation(t *testing.T) {
	fc := faults.Config{Enabled: true, PreemptPermille: 20, PreemptMin: 300, PreemptMax: 8_000}
	m := preemptWorkload(t, 4, 300_000, fc)

	ms, fs := m.Stats(), m.FaultStats()
	if ms.Preemptions == 0 {
		t.Fatal("preemption schedule delivered nothing; rate too low for the workload")
	}
	if ms.Preemptions != fs.Preemptions || ms.PreemptedCycles != fs.PreemptCycles {
		t.Fatalf("machine counters (%d, %d cycles) != injector stats (%d, %d cycles)",
			ms.Preemptions, ms.PreemptedCycles, fs.Preemptions, fs.PreemptCycles)
	}
	var dumpSum uint64
	for _, cd := range m.DumpState().Cores {
		dumpSum += cd.Preempted
	}
	if dumpSum != ms.PreemptedCycles {
		t.Fatalf("dump per-core preempted cycles sum %d != machine total %d", dumpSum, ms.PreemptedCycles)
	}
}

// TestPreemptionDeterminism: the same (config, seed) replays to identical
// counters, and a different fault seed gives a different schedule.
func TestPreemptionDeterminism(t *testing.T) {
	fc := faults.Config{Enabled: true, PreemptPermille: 20, PreemptMin: 300, PreemptMax: 8_000}
	a := preemptWorkload(t, 4, 200_000, fc).Stats()
	b := preemptWorkload(t, 4, 200_000, fc).Stats()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("preempted run not deterministic:\n%+v\n%+v", a, b)
	}
	fc2 := fc
	fc2.Seed = 99
	c := preemptWorkload(t, 4, 200_000, fc2).Stats()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different fault seed produced an identical run")
	}
}

// TestPreemptedHolderExpiresInvoluntarily: a lease holder descheduled for
// longer than its lease must lose it to the expiry timer (the cache
// hardware keeps counting while the core sleeps), and the victim's
// deferred probe must then be served — no deadlock.
func TestPreemptedHolderExpiresInvoluntarily(t *testing.T) {
	cfg := testConfig(2)
	// Deterministic adversary: preempt only holders, always, and sleep
	// far past the lease.
	cfg.Faults = faults.Config{Enabled: true, PreemptPermille: 1000,
		PreemptMin: 50_000, PreemptMax: 50_000, PreemptTargeted: true}
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var got uint64
	var voluntary bool
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 10_000)
		// The store is a preemption point: the core is descheduled for
		// 50K cycles *before* the write lands, and the 10K lease expires
		// while it sleeps.
		c.Store(a, 41)
		voluntary = c.Release(a)
	})
	m.Spawn(100, func(c *Ctx) {
		got = c.FetchAdd(a, 1)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Preemptions == 0 {
		t.Fatal("targeted always-on schedule never preempted the holder")
	}
	if s.InvoluntaryReleases == 0 {
		t.Fatalf("preempted holder's lease did not expire involuntarily: %+v", s)
	}
	// The victim drains at lease expiry (~10K), long before the holder
	// wakes (~50K): it reads the pre-store value, proving it waited only
	// for the lease bound, not the whole preemption.
	if got != 0 {
		t.Fatalf("victim read %d, want 0 (served at expiry, before the holder's write)", got)
	}
	if voluntary {
		t.Fatal("Release reported voluntary, but the lease expired during the preemption")
	}
	// The woken holder reacquires the line and its write lands last.
	if v := m.Direct().Load(a); v != 41 {
		t.Fatalf("final value %d, want 41 (holder's write after waking)", v)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestStateDumpShowsHeldLeases: the dump lists currently-held leases with
// owner, grant cycle, and deadline — the satellite making StallError
// dumps actionable.
func TestStateDumpShowsHeldLeases(t *testing.T) {
	m := New(testConfig(1))
	a := m.Direct().Alloc(8)
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 10_000)
		c.Store(a, 1)
		c.Work(500_000) // hold the lease while we dump
	})
	if err := m.Run(5_000); err != nil {
		t.Fatal(err)
	}
	d := m.DumpState()
	if len(d.Cores) != 1 || len(d.Cores[0].Leases) != 1 {
		t.Fatalf("dump shows %d cores / no held lease: %+v", len(d.Cores), d.Cores)
	}
	ld := d.Cores[0].Leases[0]
	if ld.Line != uint64(mem.LineOf(a)) {
		t.Fatalf("dump lease line %#x, want %#x", ld.Line, uint64(mem.LineOf(a)))
	}
	if !ld.Started || ld.Deadline == 0 || ld.GrantCycle >= ld.Deadline {
		t.Fatalf("dump lease window implausible: %+v", ld)
	}
	if ld.Deadline-ld.GrantCycle != ld.Duration {
		t.Fatalf("grant %d + duration %d != deadline %d", ld.GrantCycle, ld.Duration, ld.Deadline)
	}
	text := d.String()
	if !contains(text, "granted @") {
		t.Fatalf("dump text does not render the grant cycle:\n%s", text)
	}
	m.Stop()
}
