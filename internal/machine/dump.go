package machine

import (
	"fmt"
	"sort"
	"strings"

	"leaserelease/internal/cache"
	"leaserelease/internal/coherence"
	"leaserelease/internal/core"
	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
	"leaserelease/internal/telemetry"
)

// StateDump is a structured snapshot of the simulated machine, produced
// when a run fails (deadlock, protocol violation, invariant violation, or
// an escaping panic) so the failure is debuggable without re-running under
// a tracer. It marshals to JSON and renders as text via String.
type StateDump struct {
	Cycle      uint64        `json:"cycle"`
	EventCount uint64        `json:"event_count"`
	Pending    int           `json:"pending_events"`
	Seed       uint64        `json:"seed"`
	Protocol   string        `json:"protocol,omitempty"` // omitted under MSI (the default)
	Cores      []CoreDump    `json:"cores"`
	DirLines   []DirLineDump `json:"dir_lines"`
	Faults     faults.Stats  `json:"fault_stats"`
	Events     []EventDump   `json:"last_events,omitempty"`
}

// CoreDump is one core's state: scheduling status and lease table.
type CoreDump struct {
	ID          int         `json:"id"`
	Done        bool        `json:"done"`
	Blocked     bool        `json:"blocked"`
	BlockReason string      `json:"block_reason,omitempty"`
	BlockSince  uint64      `json:"block_since,omitempty"`
	Preempted   uint64      `json:"preempted_cycles,omitempty"`
	PTS         uint64      `json:"pts,omitempty"` // program timestamp (timestamp protocols only)
	Leases      []LeaseDump `json:"leases,omitempty"`
}

// LeaseDump is one currently-held lease-table entry. The owning core is
// the enclosing CoreDump; GrantCycle/Deadline bound the hold window, so a
// StallError/RunError dump shows exactly which lease a victim is waiting
// behind and until when — without rerunning under a tracer.
type LeaseDump struct {
	Line       uint64 `json:"line"`
	Duration   uint64 `json:"duration"`
	Started    bool   `json:"started"`
	GrantCycle uint64 `json:"grant_cycle,omitempty"`
	Deadline   uint64 `json:"deadline,omitempty"`
	InGroup    bool   `json:"in_group,omitempty"`
	HasProbe   bool   `json:"has_probe,omitempty"`
	Pinned     bool   `json:"pinned"`
}

// DirLineDump is the protocol's view of one active line (lines that are
// Invalid with no queued work are omitted). WTS/RTS carry the per-line
// timestamps of a timestamp protocol and are omitted under MSI.
type DirLineDump struct {
	Line     uint64 `json:"line"`
	State    string `json:"state"`
	Owner    int    `json:"owner,omitempty"`
	Sharers  uint64 `json:"sharers,omitempty"`
	Busy     bool   `json:"busy,omitempty"`
	QueueLen int    `json:"queue_len,omitempty"`
	WTS      uint64 `json:"wts,omitempty"`
	RTS      uint64 `json:"rts,omitempty"`
}

// EventDump is one telemetry event in dump form (stringly typed so the
// JSON is readable without the numbering tables).
type EventDump struct {
	Time uint64 `json:"t"`
	Core int    `json:"core"`
	Cat  string `json:"cat"`
	Kind uint8  `json:"kind"`
	Line uint64 `json:"line"`
	Val  uint64 `json:"val,omitempty"`
}

// DumpEvents converts telemetry events (e.g. an invariant checker's
// history ring) to dump form.
func DumpEvents(evs []telemetry.Event) []EventDump {
	out := make([]EventDump, 0, len(evs))
	for _, e := range evs {
		v := e.Val
		if v == telemetry.NoVal {
			v = 0
		}
		out = append(out, EventDump{Time: e.Time, Core: e.Core,
			Cat: e.Cat.String(), Kind: e.Kind, Line: uint64(e.Line), Val: v})
	}
	return out
}

// DumpState snapshots the machine for diagnostics. It is safe to call at
// any point the engine is paused (between events, or after Run returns).
func (m *Machine) DumpState() *StateDump {
	d := &StateDump{
		Cycle:      m.eng.Now(),
		EventCount: m.eng.EventCount,
		Pending:    m.eng.Pending(),
		Seed:       m.cfg.Seed,
		Faults:     m.faults.Stats(),
	}
	if name := m.proto.Name(); name != coherence.ProtocolMSI {
		d.Protocol = name
	}
	for _, cs := range m.cores {
		cd := CoreDump{ID: cs.id}
		if cs.proc != nil {
			blocked, reason, since, done := cs.proc.Status()
			if blocked && strings.HasPrefix(reason, "waiting for Get") {
				// Blocked on a coherence miss: the core's pooled request
				// is in flight exactly while it blocks, so the line it
				// waits on is read back here instead of being formatted
				// into the (hot-path, allocation-free) block reason.
				reason = fmt.Sprintf("%s on line %#x", reason, uint64(cs.req.Line))
			}
			cd.Blocked, cd.BlockReason, cd.BlockSince, cd.Done = blocked, reason, since, done
			cd.Preempted = cs.proc.PreemptedCycles()
		}
		if pts, ok := m.proto.CoreTimestamp(cs.id); ok {
			cd.PTS = pts
		}
		cs.leases.ForEach(func(e *core.Entry) {
			grant, _ := e.GrantCycle()
			cd.Leases = append(cd.Leases, LeaseDump{
				Line: uint64(e.Line), Duration: e.Duration, Started: e.Started,
				GrantCycle: grant,
				Deadline:   e.Deadline, InGroup: e.InGroup, HasProbe: e.HasProbe(),
				Pinned: cs.l1.Pinned(e.Line),
			})
		})
		d.Cores = append(d.Cores, cd)
	}
	m.proto.ForEachLine(func(l mem.Line, state string, owner int, sharers uint64, busy bool) {
		q := m.proto.QueueLen(l)
		if state == "I" && !busy && q == 0 {
			return
		}
		ld := DirLineDump{
			Line: uint64(l), State: state, Owner: owner, Sharers: sharers,
			Busy: busy, QueueLen: q,
		}
		if wts, rts, ok := m.proto.LineTimestamps(l); ok {
			ld.WTS, ld.RTS = wts, rts
		}
		d.DirLines = append(d.DirLines, ld)
	})
	sort.Slice(d.DirLines, func(i, j int) bool { return d.DirLines[i].Line < d.DirLines[j].Line })
	return d
}

// String renders the dump as an indented text report.
func (d *StateDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine state at cycle %d (seed %d, %d events executed, %d pending)\n",
		d.Cycle, d.Seed, d.EventCount, d.Pending)
	if d.Protocol != "" {
		fmt.Fprintf(&b, "  protocol: %s\n", d.Protocol)
	}
	for _, c := range d.Cores {
		status := "running"
		switch {
		case c.Done:
			status = "done"
		case c.Blocked:
			status = fmt.Sprintf("blocked: %s (since cycle %d)", c.BlockReason, c.BlockSince)
		}
		if c.Preempted > 0 {
			status += fmt.Sprintf(" (preempted %d cycles total)", c.Preempted)
		}
		if c.PTS > 0 {
			status += fmt.Sprintf(" pts=%d", c.PTS)
		}
		fmt.Fprintf(&b, "  core %2d: %s\n", c.ID, status)
		for _, l := range c.Leases {
			state := "pending"
			if l.Started {
				state = fmt.Sprintf("granted @%d, deadline %d", l.GrantCycle, l.Deadline)
			}
			extras := ""
			if l.InGroup {
				extras += " group"
			}
			if l.HasProbe {
				extras += " +probe"
			}
			if l.Pinned {
				extras += " pinned"
			}
			fmt.Fprintf(&b, "    lease line %#x dur %d (%s)%s\n", l.Line, l.Duration, state, extras)
		}
	}
	for _, l := range d.DirLines {
		ts := ""
		if l.WTS > 0 || l.RTS > 0 {
			ts = fmt.Sprintf(" wts=%d rts=%d", l.WTS, l.RTS)
		}
		fmt.Fprintf(&b, "  dir line %#x: %s owner %d sharers %#x busy=%v queue=%d%s\n",
			l.Line, l.State, l.Owner, l.Sharers, l.Busy, l.QueueLen, ts)
	}
	if f := (faults.Stats{}); d.Faults != f {
		fmt.Fprintf(&b, "  faults injected: %+v\n", d.Faults)
	}
	if len(d.Events) > 0 {
		fmt.Fprintf(&b, "  last %d telemetry events:\n", len(d.Events))
		for _, e := range d.Events {
			fmt.Fprintf(&b, "    [%10d] core %2d %-9s kind %d line %#x val %d\n",
				e.Time, e.Core, e.Cat, e.Kind, e.Line, e.Val)
		}
	}
	return b.String()
}

// ---- diagnostic accessors used by the invariant checker and tests ----

// NumCores returns the machine's core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// ForEachLease visits core c's lease table in FIFO (insertion) order.
// Read-only: callers must not mutate entries.
func (m *Machine) ForEachLease(c int, fn func(e *core.Entry)) {
	m.cores[c].leases.ForEach(fn)
}

// LeaseCount returns the number of live leases on core c.
func (m *Machine) LeaseCount(c int) int { return m.cores[c].leases.Len() }

// L1 exposes core c's private cache for tests and diagnostics (e.g. the
// invariant mutation tests corrupt it deliberately).
func (m *Machine) L1(c int) *cache.Cache { return m.cores[c].l1 }

// FaultStats reports how many faults the injector delivered (zero when
// fault injection is disabled).
func (m *Machine) FaultStats() faults.Stats { return m.faults.Stats() }

// BlockedProcs describes every currently blocked simulated thread.
func (m *Machine) BlockedProcs() []string { return m.eng.Blocked() }
