package machine

import "testing"

// TestRequestPoolReuse pins the pooling contract: a core's coherence
// requests come from a single per-core slot (an in-order core has at most
// one transaction in flight — Proposition 1), so consecutive transactions
// reuse the same Request object with fields freshly initialized.
func TestRequestPoolReuse(t *testing.T) {
	m := New(testConfig(2))
	cs := m.cores[1]

	r1 := m.acquireReq(cs, 5, true, false)
	if r1.Core != 1 || r1.Line != 5 || !r1.Excl || r1.Lease {
		t.Fatalf("first acquire fields wrong: %+v", r1)
	}
	m.releaseReq(cs, r1)

	r2 := m.acquireReq(cs, 9, false, true)
	if r2 != r1 {
		t.Fatal("pool did not reuse the per-core request slot")
	}
	if r2.Core != 1 || r2.Line != 9 || r2.Excl || !r2.Lease || r2.Txn != 0 {
		t.Fatalf("reused request not reinitialized: %+v", r2)
	}
	m.releaseReq(cs, r2)
}
