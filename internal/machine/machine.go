// Package machine assembles the full simulated multicore: event engine,
// per-core L1 caches and lease tables, a pluggable coherence protocol
// (directory MSI by default, Tardis timestamp coherence via
// Config.Protocol), the backing store, and the Ctx instruction-set surface
// that simulated programs are written against.
//
// It corresponds to the paper's modified Graphite setup: "we extended the
// L1 cache controller logic (at the cores) to implement memory leases. As
// such, the directory did not have to be modified in any way." Here, too,
// all lease logic lives on the core side (DeliverProbe, release paths);
// the coherence.Protocol backend is lease-agnostic apart from waiting for
// ProbeDone — though a protocol with native reservations (Tardis) is
// additionally notified of lease starts/releases so it can mirror them
// onto its own timestamp mechanism (see coherence.Protocol).
package machine

import (
	"fmt"
	"sync/atomic"

	"leaserelease/internal/cache"
	"leaserelease/internal/coherence"
	"leaserelease/internal/coherence/tardis"
	"leaserelease/internal/core"
	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
	"leaserelease/internal/telemetry"
)

// Machine is one simulated multicore chip.
type Machine struct {
	cfg   Config
	eng   *sim.Engine
	store mem.Store
	alloc *mem.Allocator
	proto coherence.Protocol
	cores []*coreState

	stats   Stats // machine-level counters (caches keep their own)
	spawned int
	bus     *telemetry.Bus   // nil until Telemetry() — telemetry disabled
	faults  *faults.Injector // nil unless cfg.Faults.Enabled

	// Sharding state (see applySharding): effShards is the certified
	// shard count actually applied to the engine (1 = sequential),
	// shardReason explains a downgrade from cfg.Shards.
	shardsDone  bool
	effShards   int
	shardReason string
}

// ProtocolViolationError is the panic value raised when simulated hardware
// state contradicts a protocol invariant (e.g. Proposition 1's single
// queued probe, or a pinned set with an empty lease table). It indicates a
// simulator bug — not a recoverable simulation condition — but carrying a
// typed value lets harnesses recover it into a structured diagnostic
// instead of dying on a bare string.
type ProtocolViolationError struct {
	Rule   string   // short invariant name
	Core   int      // core involved, or -1
	Line   mem.Line // line involved, or 0
	Detail string
}

func (e *ProtocolViolationError) Error() string {
	return fmt.Sprintf("machine: protocol violation [%s] core %d line %#x: %s",
		e.Rule, e.Core, uint64(e.Line), e.Detail)
}

type coreState struct {
	id     int
	l1     *cache.Cache
	leases *core.Table
	proc   *sim.Proc
	dom    *sim.Domain    // the core's scheduling domain (shard-local clock)
	arena  *mem.Allocator // per-core allocation arena (Ctx.Alloc)
	pred   *leasePredictor
	ctrl   *leaseController
	txnSeq uint64 // per-core transaction counter (span tracing only)

	// req is the core's reusable coherence request: an in-order core has
	// at most one outstanding transaction, so one pooled Request per core
	// replaces a heap allocation per miss. reqBusy backs the race-build
	// poison mode (see pool_poison_race.go).
	req     *coherence.Request
	reqBusy bool
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 || cfg.Cores > 64 {
		panic("machine: Cores must be in 1..64")
	}
	m := &Machine{
		cfg:   cfg,
		eng:   sim.NewEngine(),
		alloc: mem.NewAllocator(),
	}
	m.faults = faults.New(cfg.Faults, cfg.Seed)
	switch cfg.Protocol {
	case "", coherence.ProtocolMSI:
		dir := coherence.NewDirectory(m.eng, (*dirEnv)(m), cfg.Timing)
		dir.MESI = cfg.MESI
		dir.Faults = m.faults
		m.proto = dir
	case coherence.ProtocolTardis:
		// cfg.MESI does not apply: Tardis has no Exclusive-clean state.
		tp := tardis.New(m.eng, (*dirEnv)(m), cfg.Timing, tardis.Config{}, cfg.Cores)
		tp.Faults = m.faults
		m.proto = tp
	default:
		panic(fmt.Sprintf("machine: unknown Protocol %q (valid: %v)", cfg.Protocol, coherence.Protocols()))
	}
	l1cfg := cfg.L1
	if ways := cfg.Faults.CapWays(l1cfg.Ways); ways != l1cfg.Ways {
		// Capacity pressure: shrink associativity (and size with it, so
		// the set count — and thus line-to-set mapping — is unchanged).
		l1cfg.SizeBytes = l1cfg.SizeBytes / l1cfg.Ways * ways
		l1cfg.Ways = ways
	}
	m.cores = make([]*coreState, cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &coreState{
			id:     i,
			l1:     cache.New(l1cfg),
			leases: core.NewTable(cfg.Lease),
			dom:    m.eng.Domain(uint32(i)),
			arena:  mem.NewAllocatorAt(coreArenaBase(i)),
			pred:   newLeasePredictor(cfg.Predictor),
			ctrl:   newLeaseController(cfg.Controller, cfg.Lease.MaxLeaseTime),
			req:    new(coherence.Request),
		}
	}
	return m
}

// coreArenaBase places each core's allocation arena at a fixed,
// core-indexed address so Ctx.Alloc is lock-free under sharding and the
// addresses a workload sees depend only on its own allocation sequence —
// never on cross-core interleaving or the shard count.
func coreArenaBase(core int) mem.Addr {
	return mem.Addr(1)<<40 | mem.Addr(core)<<32
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the current simulated time in cycles.
func (m *Machine) Now() uint64 { return m.eng.Now() }

// Seconds converts a cycle count to seconds at the configured clock.
func (m *Machine) Seconds(cycles uint64) float64 {
	return float64(cycles) / float64(m.cfg.ClockHz)
}

// Spawn starts a simulated thread running fn on the next free core at time
// start. It panics if all cores are occupied.
func (m *Machine) Spawn(start uint64, fn func(*Ctx)) {
	if m.spawned >= len(m.cores) {
		panic("machine: more threads than cores")
	}
	cs := m.cores[m.spawned]
	id := m.spawned
	m.spawned++
	cs.proc = m.eng.Spawn(id, start, m.cfg.Seed*1_000_003+uint64(id)*2_654_435_761+1, func(p *sim.Proc) {
		fn(&Ctx{m: m, cs: cs, p: p})
	})
}

// Run advances the simulation until the given absolute cycle (or until all
// threads finish). It returns a *sim.DeadlockError if the simulation
// deadlocks — which Lease/Release guarantees cannot happen unless the
// protocol is misused (see the unsorted-multilease negative test).
func (m *Machine) Run(untilCycle uint64) error {
	m.applySharding()
	return m.eng.Run(untilCycle)
}

// Drain runs until all threads finish.
func (m *Machine) Drain() error {
	m.applySharding()
	return m.eng.Drain()
}

// applySharding certifies and applies the cfg.Shards request before the
// first Run. Parallel windows only engage for configurations whose entire
// event graph is shard-safe: the MSI directory (whose message paths are
// domain-routed with >= Timing.Net lookahead) and no fault injection (the
// injector's draw order is defined by the global event order). A telemetry
// bus is shard-safe — when windows engage, it switches to per-shard
// append-only buffers that the engine's barrier hook drains into the
// subscribers in canonical order (telemetry.Bus.ShardBuffers), so derived
// telemetry is byte-identical at any shard count. The one exception is a
// subscriber that must observe events synchronously with simulated
// execution (the invariant checker reads live machine state): such a bus
// reports NeedsSync and the run degrades to the sequential executor.
// Everything degraded runs the identical event order anyway —
// byte-identical output is preserved in both directions.
func (m *Machine) applySharding() {
	if m.shardsDone {
		return
	}
	m.shardsDone = true
	k, reason := shardPlan(m.cfg.Shards, m.proto.Name(), m.bus.NeedsSync(),
		m.faults != nil, m.cfg.Timing.Net, m.spawned)
	m.effShards, m.shardReason = k, reason
	if k <= 1 {
		return
	}
	workers := uint32(k - 1)
	m.eng.ConfigureSharding(k, m.cfg.Timing.Net, func(dom uint32) int {
		if dom == sim.SysDomain {
			return 0 // directory/L2/memory side
		}
		return 1 + int(dom%workers)
	})
	if m.bus != nil {
		m.bus.ShardBuffers(k)
		m.eng.SetBarrierHook(m.bus.DrainBarrier)
	}
}

// shardPlan is the certification decision itself, pure so hosts can
// predict it: the requested shard count is granted only when every input
// to the event graph is shard-safe, and otherwise downgraded to 1 with
// the reason.
func shardPlan(requested int, protoName string, busNeedsSync, faultsEnabled bool,
	net sim.Time, spawned int) (int, string) {
	k := requested
	var reason string
	switch {
	case k <= 1:
		k = 1
	case protoName != coherence.ProtocolMSI:
		k, reason = 1, "protocol "+protoName+" is not shard-certified"
	case busNeedsSync:
		k, reason = 1, "synchronous telemetry subscriber attached"
	case faultsEnabled:
		k, reason = 1, "fault injection enabled"
	case net == 0:
		k, reason = 1, "Timing.Net = 0 leaves no lookahead"
	case spawned < 2:
		k, reason = 1, "fewer than two threads"
	}
	if k > spawned+1 {
		k = spawned + 1 // no empty worker shards
	}
	return k, reason
}

// ShardPlan predicts the shard count a run of cfg with the given spawned
// thread count will certify to, and the downgrade reason if any. Hosts use
// it to record effective shard counts (e.g. leasebench -perfjson) without
// building a machine. Telemetry no longer downgrades a run (the bus
// buffers per shard and merges at barriers); only a synchronous subscriber
// — the invariant checker — does, which a host cannot see from cfg alone.
func ShardPlan(cfg Config, threads int) (int, string) {
	proto := cfg.Protocol
	if proto == "" {
		proto = coherence.ProtocolMSI
	}
	return shardPlan(cfg.Shards, proto, false, cfg.Faults.Enabled, cfg.Timing.Net, threads)
}

// EffectiveShards reports the shard count actually applied (1 before the
// first Run, or when the configuration could not be certified) and, when
// cfg.Shards was downgraded, why.
func (m *Machine) EffectiveShards() (int, string) {
	if !m.shardsDone {
		return 1, "not yet running"
	}
	return m.effShards, m.shardReason
}

// ShardStats returns the parallel executor's self-observability snapshot —
// windows, barriers, stall cycles, per-shard utilization — or nil for a
// run that executed sequentially. Call while the machine is idle (between
// or after Runs).
func (m *Machine) ShardStats() *sim.EngineStats {
	if !m.shardsDone || m.effShards <= 1 {
		return nil
	}
	st := m.eng.Stats()
	return &st
}

// Stop tears down all still-blocked threads. Call after the final Run so
// machines do not leak goroutines.
func (m *Machine) Stop() { m.eng.KillAll() }

// Stats returns a snapshot of all hardware counters.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Cycles = m.eng.Now()
	for _, c := range m.cores {
		s.L1Hits += c.l1.Hits
		s.L1Misses += c.l1.Misses
	}
	ps := m.proto.ProtoStats()
	s.DeferredProbes = ps.DeferredProbes
	s.MaxDirQueue = ps.MaxQueue
	s.Renewals = ps.Renewals
	s.RTSJumps = ps.RTSJumps
	return s
}

// Protocol exposes the coherence protocol for tests and diagnostics.
func (m *Machine) Protocol() coherence.Protocol { return m.proto }

// ProtocolName returns the canonical name of the active protocol.
func (m *Machine) ProtocolName() string { return m.proto.Name() }

// VerifyCoherence cross-checks every tracked line's committed protocol
// state against the cores' L1 states and the protocol's own internal
// invariants (MSI agreement for the directory, timestamp order for
// Tardis). Lines with in-flight transactions are skipped. Call when the
// simulation is quiescent (after Run/Drain); it returns the first
// violation found.
func (m *Machine) VerifyCoherence() error {
	var err error
	m.proto.ForEachLine(func(l mem.Line, state string, owner int, sharers uint64, busy bool) {
		if err != nil || busy {
			return
		}
		err = m.proto.VerifyLine(l, len(m.cores), func(core int) cache.State {
			return m.cores[core].l1.State(l)
		})
	})
	return err
}

// VerifyLine cross-checks one line's committed protocol state against
// every core's L1 state; a line mid-transaction is skipped (nil). The
// runtime invariant checker calls this on every event touching the line,
// which is how state corruption (e.g. a second writer) is caught within
// one event of its introduction.
func (m *Machine) VerifyLine(l mem.Line) error {
	if _, _, _, busy := m.proto.LineInfo(l); busy {
		return nil
	}
	return m.proto.VerifyLine(l, len(m.cores), func(core int) cache.State {
		return m.cores[core].l1.State(l)
	})
}

// Peek reads a word directly from the backing store (setup/verification
// only; no timing, no coherence).
func (m *Machine) Peek(a mem.Addr) uint64 { return m.store.Load(a) }

// Poke writes a word directly to the backing store (setup only; must not
// be used once lines may be cached).
func (m *Machine) Poke(a mem.Addr, v uint64) { m.store.Store(a, v) }

// ---- lease-side mechanics shared by Ctx ops, probes, and timers ----

// leaseHold returns the cycles a started lease has been held as of now,
// or telemetry.NoVal for a lease whose countdown never started.
func leaseHold(e *core.Entry, now uint64) uint64 {
	if e == nil {
		return telemetry.NoVal
	}
	g, ok := e.GrantCycle()
	if !ok {
		return telemetry.NoVal
	}
	return now - g
}

// mintTxn assigns req a machine-unique transaction ID and emits TxnBegin,
// if and only if someone subscribed to span tracing. With tracing off the
// cost is Bus.Wants — a nil check plus one bitmask test — and req.Txn
// stays zero, which keeps every downstream CatTxn emit site to a single
// predictable branch.
func (m *Machine) mintTxn(cs *coreState, req *coherence.Request) {
	if !m.bus.Wants(telemetry.CatTxn) {
		return
	}
	cs.txnSeq++
	req.Txn = uint64(cs.id)<<48 | cs.txnSeq
	var flags uint64
	if req.Excl {
		flags |= telemetry.TxnFlagExcl
	}
	if req.Lease {
		flags |= telemetry.TxnFlagLease
	}
	if cs.l1.State(req.Line) == cache.Shared {
		flags |= telemetry.TxnFlagUpgrade
	}
	m.bus.EmitOn2(cs.dom, telemetry.CatTxn, cs.id, telemetry.TxnBegin, req.Line, req.Txn, flags)
}

// serveDeferred delivers the (at most one) probe deferred on a released
// lease entry: downgrade the local copy and let the directory finish the
// stalled transaction.
func (m *Machine) serveDeferred(cs *coreState, e *core.Entry) {
	p := e.TakeProbe()
	if p == nil {
		return
	}
	req := p.(*coherence.Request)
	m.bus.EmitOn2(cs.dom, telemetry.CatLease, cs.id, telemetry.ProbeServed, e.Line,
		cs.dom.Now()-e.ProbeQueuedAt, req.Txn)
	to := cache.Shared
	if req.Excl {
		to = cache.Invalid
	}
	cs.l1.Downgrade(req.Line, to)
	m.proto.ProbeDone(cs.id, req)
}

// scheduleExpiry arms the involuntary-release timer for a started lease.
// Cancellation is lazy: the timer checks the entry generation. Fault
// injection may pull the timer earlier — an involuntary break before the
// full duration, always legal since MAX_LEASE_TIME is only an upper bound.
func (m *Machine) scheduleExpiry(cs *coreState, e *core.Entry) {
	line, gen := e.Line, e.Gen
	at := e.Deadline
	if cut := m.faults.LeaseCut(e.Duration); cut > 0 {
		at -= cut
	}
	cs.dom.At(at, func() {
		x := cs.leases.RemoveIfGen(line, gen)
		if x == nil {
			return // released voluntarily (or evicted) in the meantime
		}
		atomic.AddUint64(&m.stats.InvoluntaryReleases, 1)
		m.traceVal(cs, TraceInvoluntary, line, x.Duration)
		cs.pred.record(x.Site, false)
		if shrank, _ := cs.ctrl.record(x.Site, false); shrank {
			atomic.AddUint64(&m.stats.CtrlShrinks, 1)
		}
		cs.l1.Unpin(line)
		m.proto.LeaseReleased(cs.id, line)
		m.serveDeferred(cs, x)
	})
}

// releaseEntry performs the core-side actions of a voluntary-class release
// (voluntary, FIFO eviction, ReleaseAll): unpin and service the probe.
func (m *Machine) releaseEntry(cs *coreState, e *core.Entry) {
	cs.pred.record(e.Site, true)
	if _, grew := cs.ctrl.record(e.Site, true); grew {
		atomic.AddUint64(&m.stats.CtrlGrows, 1)
	}
	cs.l1.Unpin(e.Line)
	m.proto.LeaseReleased(cs.id, e.Line)
	m.serveDeferred(cs, e)
}

// maybePreempt is the fault model's preemption point, reached before a
// core issues a memory access: the "OS" may deschedule the core for a
// drawn duration. The proc simply stops issuing events while its local
// clock advances (sim.Proc.Preempt); expiry timers armed on the cache
// hardware keep firing, so held leases expire involuntarily per
// Algorithm 1 — exactly the bounded-delay scenario of §3. write feeds
// the targeted mode's holder test: a core holding a lease, or issuing an
// exclusive access (inside or entering a critical section for lock-based
// structures), counts as a holder.
func (m *Machine) maybePreempt(cs *coreState, p *sim.Proc, write bool) {
	if m.faults == nil {
		return
	}
	holder := write || cs.leases.Len() > 0
	d := m.faults.Preempt(cs.id, holder)
	if d == 0 {
		return
	}
	m.stats.Preemptions++
	m.stats.PreemptedCycles += d
	p.Preempt(d)
}

// installLine places a granted line into the core's L1, force-releasing
// leases if the target set is fully pinned, and notifying the directory of
// dirty evictions.
func (m *Machine) installLine(cs *coreState, l mem.Line, st cache.State) {
	for {
		_, _, allPinned := cs.l1.Victim(l)
		if !allPinned {
			break
		}
		e := cs.leases.RemoveOldest()
		if e == nil {
			panic(&ProtocolViolationError{Rule: "pinned-set", Core: cs.id, Line: l,
				Detail: "L1 set fully pinned but lease table empty"})
		}
		atomic.AddUint64(&m.stats.ForcedReleases, 1)
		m.traceVal(cs, TraceForced, e.Line, leaseHold(e, cs.dom.Now()))
		m.releaseEntry(cs, e)
	}
	victim, vst, evicted := cs.l1.Install(l, st)
	if !evicted {
		return
	}
	switch vst {
	case cache.Modified:
		m.proto.Writeback(cs.id, victim)
	case cache.Shared:
		m.proto.SharerDrop(cs.id, victim)
	}
}

// ---- coherence.Env implementation ----
//
// dirEnv is Machine under a separate method set so that the Env methods do
// not pollute Machine's public API.
type dirEnv Machine

func (d *dirEnv) m() *Machine { return (*Machine)(d) }

// DeliverProbe implements the lease check of Algorithm 1 ("upon event
// Coherence-Probe"): a probe hitting an active lease is queued at the core
// until the lease is released or expires.
func (d *dirEnv) DeliverProbe(owner int, req *coherence.Request) bool {
	m := d.m()
	cs := m.cores[owner]
	if cs.leases.ShouldDefer(req.Line, cs.dom.Now()) {
		if m.cfg.RegularBreaksLease && !req.Lease {
			// §5 prioritization: a regular request breaks the lease.
			e := cs.leases.Remove(req.Line)
			atomic.AddUint64(&m.stats.BrokenLeases, 1)
			m.traceVal(cs, TraceBroken, req.Line, leaseHold(e, cs.dom.Now()))
			cs.l1.Unpin(req.Line)
			m.proto.LeaseReleased(owner, req.Line)
			if e.HasProbe() {
				panic(&ProtocolViolationError{Rule: "proposition-1", Core: owner, Line: req.Line,
					Detail: "broken lease already had a deferred probe"})
			}
		} else {
			cs.leases.QueueProbe(req.Line, req)
			if e := cs.leases.Find(req.Line); e != nil {
				e.ProbeQueuedAt = cs.dom.Now()
			}
			m.trace(cs, TraceDeferred, req.Line)
			return true
		}
	}
	to := cache.Shared
	if req.Excl {
		to = cache.Invalid
	}
	cs.l1.Downgrade(req.Line, to)
	return false
}

func (d *dirEnv) Invalidate(c int, l mem.Line) {
	d.m().cores[c].l1.Downgrade(l, cache.Invalid)
}

// Complete installs the granted line, starts a pending lease countdown if
// the transaction was lease-initiated, and resumes the stalled thread.
func (d *dirEnv) Complete(req *coherence.Request, st cache.State) {
	m := d.m()
	cs := m.cores[req.Core]
	m.installLine(cs, req.Line, st)
	if req.Lease {
		if e := cs.leases.Find(req.Line); e != nil {
			if e.InGroup {
				// Group countdowns start jointly once the whole group
				// is owned (Ctx.MultiLease drives StartGroup).
				cs.l1.Pin(req.Line)
			} else if started := cs.leases.Start(req.Line, cs.dom.Now()); started != nil {
				cs.l1.Pin(req.Line)
				m.proto.LeaseStarted(cs.id, req.Line, started.Duration)
				m.traceVal(cs, TraceStart, req.Line, started.Duration)
				m.scheduleExpiry(cs, started)
			}
		}
	}
	cs.proc.WakeAt(cs.dom.Now())
}

// CountMsg runs in whichever domain sent the message, so the shared
// counters are atomic; sums are order-free and therefore shard-invariant.
func (d *dirEnv) CountMsg(kind coherence.MsgKind, n int) {
	atomic.AddUint64(&d.m().stats.Msgs[kind], uint64(n))
}

func (d *dirEnv) CountL2()   { d.m().stats.L2Accesses++ }
func (d *dirEnv) CountDRAM() { d.m().stats.DRAMAccesses++ }

var _ coherence.Env = (*dirEnv)(nil)

// describeReq names the block reason for a coherence miss. It returns one
// of four static strings so the miss path stays allocation-free; the line
// being waited on is recovered from the core's pooled in-flight request on
// the cold dump path (see DumpState), not carried in the string.
func describeReq(req *coherence.Request) string {
	switch {
	case req.Excl && req.Lease:
		return "waiting for GetX(lease)"
	case req.Excl:
		return "waiting for GetX"
	case req.Lease:
		return "waiting for GetS(lease)"
	default:
		return "waiting for GetS"
	}
}
