package machine

import (
	"fmt"

	"leaserelease/internal/mem"
)

// TraceKind classifies lease-mechanism events for tracing.
type TraceKind int

const (
	// TraceLease: a lease entry was created.
	TraceLease TraceKind = iota
	// TraceStart: a lease countdown started (ownership granted).
	TraceStart
	// TraceVoluntary: released by the program before expiry.
	TraceVoluntary
	// TraceInvoluntary: the MAX_LEASE_TIME timer fired.
	TraceInvoluntary
	// TraceEvicted: FIFO-evicted by a newer lease (table full).
	TraceEvicted
	// TraceForced: force-released to unpin a full L1 set.
	TraceForced
	// TraceBroken: broken by a regular request (prioritization mode).
	TraceBroken
	// TraceDeferred: an incoming probe was queued behind the lease.
	TraceDeferred
	// TraceIgnored: skipped by the speculative predictor.
	TraceIgnored
)

func (k TraceKind) String() string {
	switch k {
	case TraceLease:
		return "lease"
	case TraceStart:
		return "start"
	case TraceVoluntary:
		return "release"
	case TraceInvoluntary:
		return "expire"
	case TraceEvicted:
		return "evict"
	case TraceForced:
		return "force"
	case TraceBroken:
		return "break"
	case TraceDeferred:
		return "defer"
	case TraceIgnored:
		return "ignore"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent is one lease-mechanism event.
type TraceEvent struct {
	Time uint64
	Core int
	Kind TraceKind
	Line mem.Line
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("[%10d] core %2d %-7s line %#x", e.Time, e.Core, e.Kind, uint64(e.Line))
}

// SetTracer installs fn to receive every lease-mechanism event (nil
// disables tracing, the default). Tracing is for debugging and
// demonstrations; it does not affect timing.
func (m *Machine) SetTracer(fn func(TraceEvent)) { m.tracer = fn }

func (m *Machine) trace(core int, kind TraceKind, line mem.Line) {
	if m.tracer != nil {
		m.tracer(TraceEvent{Time: m.eng.Now(), Core: core, Kind: kind, Line: line})
	}
}
