package machine

import (
	"fmt"

	"leaserelease/internal/mem"
	"leaserelease/internal/telemetry"
)

// TraceKind classifies lease-mechanism events for tracing. The values
// alias the telemetry package's canonical lease-kind numbering, so bus
// subscribers and TraceEvent consumers agree on kinds.
type TraceKind int

const (
	// TraceLease: a lease entry was created.
	TraceLease = TraceKind(telemetry.LeaseCreated)
	// TraceStart: a lease countdown started (ownership granted).
	TraceStart = TraceKind(telemetry.LeaseStarted)
	// TraceVoluntary: released by the program before expiry.
	TraceVoluntary = TraceKind(telemetry.LeaseReleased)
	// TraceInvoluntary: the MAX_LEASE_TIME timer fired.
	TraceInvoluntary = TraceKind(telemetry.LeaseExpired)
	// TraceEvicted: FIFO-evicted by a newer lease (table full).
	TraceEvicted = TraceKind(telemetry.LeaseEvicted)
	// TraceForced: force-released to unpin a full L1 set.
	TraceForced = TraceKind(telemetry.LeaseForced)
	// TraceBroken: broken by a regular request (prioritization mode).
	TraceBroken = TraceKind(telemetry.LeaseBroken)
	// TraceDeferred: an incoming probe was queued behind the lease.
	TraceDeferred = TraceKind(telemetry.ProbeDeferred)
	// TraceIgnored: skipped by the speculative predictor.
	TraceIgnored = TraceKind(telemetry.LeaseIgnored)
)

func (k TraceKind) String() string {
	switch k {
	case TraceLease:
		return "lease"
	case TraceStart:
		return "start"
	case TraceVoluntary:
		return "release"
	case TraceInvoluntary:
		return "expire"
	case TraceEvicted:
		return "evict"
	case TraceForced:
		return "force"
	case TraceBroken:
		return "break"
	case TraceDeferred:
		return "defer"
	case TraceIgnored:
		return "ignore"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent is one lease-mechanism event.
type TraceEvent struct {
	Time uint64
	Core int
	Kind TraceKind
	Line mem.Line
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("[%10d] core %2d %-7s line %#x", e.Time, e.Core, e.Kind, uint64(e.Line))
}

// Telemetry returns the machine's telemetry bus, creating and wiring it on
// first use (directory and per-core L1 caches start emitting into it).
// Before the first call, no bus exists and every emit site is a single
// nil-check — the disabled configuration has zero observable overhead.
func (m *Machine) Telemetry() *telemetry.Bus {
	if m.bus == nil {
		m.bus = telemetry.NewBus(m.eng.Now)
		m.proto.SetBus(m.bus)
		for _, cs := range m.cores {
			cs.l1.Bus = m.bus
			cs.l1.CoreID = cs.id
			cs.l1.Dom = cs.dom // emit context: evictions run on the core's domain
		}
	}
	return m.bus
}

// SetTracer subscribes fn to every lease-mechanism event, adapting the
// telemetry bus to the legacy single-callback interface. Tracing is for
// debugging and demonstrations; it does not affect timing. A nil fn is
// ignored (tracing stays as it was).
func (m *Machine) SetTracer(fn func(TraceEvent)) {
	if fn == nil {
		return
	}
	m.Telemetry().Subscribe(telemetry.CatLease, func(e telemetry.Event) {
		if e.Kind > uint8(TraceIgnored) {
			return // bus-only kinds (e.g. ProbeServed) are not TraceEvents
		}
		fn(TraceEvent{Time: e.Time, Core: e.Core, Kind: TraceKind(e.Kind), Line: e.Line})
	})
}

// trace emits a lease-lifecycle event with no measurement payload. The
// emitting core's state carries the execution context (its scheduling
// domain): every lease-lifecycle emit site runs on the core's own domain,
// which is what routes the event to the right shard buffer under the
// parallel executor.
func (m *Machine) trace(cs *coreState, kind TraceKind, line mem.Line) {
	m.traceVal(cs, kind, line, telemetry.NoVal)
}

// traceVal emits a lease-lifecycle event onto the telemetry bus; val
// carries the kind-specific measurement (hold cycles for release-class
// kinds) or telemetry.NoVal.
func (m *Machine) traceVal(cs *coreState, kind TraceKind, line mem.Line, val uint64) {
	m.bus.EmitOn(cs.dom, telemetry.CatLease, cs.id, uint8(kind), line, val)
}
