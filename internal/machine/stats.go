package machine

import (
	"fmt"
	"strings"

	"leaserelease/internal/coherence"
)

// Stats is a snapshot of the machine's hardware event counters. Subtract
// two snapshots (Sub) to measure a window.
type Stats struct {
	Cycles uint64 // simulated time of the snapshot

	L1Hits   uint64
	L1Misses uint64

	Msgs         [coherence.NumMsgKinds]uint64
	L2Accesses   uint64
	DRAMAccesses uint64

	Leases              uint64 // Lease instructions that created an entry
	MultiLeases         uint64 // MultiLease group acquisitions
	VoluntaryReleases   uint64
	InvoluntaryReleases uint64 // lease timers expired
	EvictedLeases       uint64 // FIFO-evicted by a newer lease (full table)
	ForcedReleases      uint64 // released to unpin a fully-pinned L1 set
	BrokenLeases        uint64 // broken by a regular request (prioritization)
	IgnoredLeases       uint64 // skipped by the §5 speculative predictor
	DeferredProbes      uint64 // probes queued at a leased core

	Renewals uint64 // Tardis tag-only timestamp renewals (0 under MSI)
	RTSJumps uint64 // Tardis writes whose commit time jumped past rts (0 under MSI)

	CASSuccesses uint64
	CASFailures  uint64

	Preemptions     uint64 // fault-injected core preemptions delivered
	PreemptedCycles uint64 // cycles cores spent descheduled

	CtrlClamps  uint64 // lease requests cut by the adaptive controller
	CtrlShrinks uint64 // controller cap shrinks (involuntary releases)
	CtrlGrows   uint64 // controller cap regrowths (clean releases)

	MaxDirQueue int // peak per-line directory queue occupancy
}

// TotalMsgs returns the total coherence message count.
func (s Stats) TotalMsgs() uint64 {
	var n uint64
	for _, m := range s.Msgs {
		n += m
	}
	return n
}

// EnergyNJ evaluates the energy model over the counted events.
func (s Stats) EnergyNJ(e EnergyModel) float64 {
	return e.MsgNJ*float64(s.TotalMsgs()) +
		e.L1NJ*float64(s.L1Hits+s.L1Misses) +
		e.L2NJ*float64(s.L2Accesses) +
		e.DRAMNJ*float64(s.DRAMAccesses)
}

// Sub returns the per-window delta s - prev. MaxDirQueue is not a counter
// and is carried over from s.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Cycles -= prev.Cycles
	d.L1Hits -= prev.L1Hits
	d.L1Misses -= prev.L1Misses
	for i := range d.Msgs {
		d.Msgs[i] -= prev.Msgs[i]
	}
	d.L2Accesses -= prev.L2Accesses
	d.DRAMAccesses -= prev.DRAMAccesses
	d.Leases -= prev.Leases
	d.MultiLeases -= prev.MultiLeases
	d.VoluntaryReleases -= prev.VoluntaryReleases
	d.InvoluntaryReleases -= prev.InvoluntaryReleases
	d.EvictedLeases -= prev.EvictedLeases
	d.ForcedReleases -= prev.ForcedReleases
	d.BrokenLeases -= prev.BrokenLeases
	d.IgnoredLeases -= prev.IgnoredLeases
	d.DeferredProbes -= prev.DeferredProbes
	d.Renewals -= prev.Renewals
	d.RTSJumps -= prev.RTSJumps
	d.CASSuccesses -= prev.CASSuccesses
	d.CASFailures -= prev.CASFailures
	d.Preemptions -= prev.Preemptions
	d.PreemptedCycles -= prev.PreemptedCycles
	d.CtrlClamps -= prev.CtrlClamps
	d.CtrlShrinks -= prev.CtrlShrinks
	d.CtrlGrows -= prev.CtrlGrows
	return d
}

// String renders a compact multi-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d l1hit=%d l1miss=%d msgs=%d l2=%d dram=%d\n",
		s.Cycles, s.L1Hits, s.L1Misses, s.TotalMsgs(), s.L2Accesses, s.DRAMAccesses)
	fmt.Fprintf(&b, "leases=%d multi=%d volrel=%d involrel=%d evicted=%d forced=%d broken=%d ignored=%d deferred=%d\n",
		s.Leases, s.MultiLeases, s.VoluntaryReleases, s.InvoluntaryReleases,
		s.EvictedLeases, s.ForcedReleases, s.BrokenLeases, s.IgnoredLeases, s.DeferredProbes)
	fmt.Fprintf(&b, "cas ok=%d fail=%d maxdirq=%d", s.CASSuccesses, s.CASFailures, s.MaxDirQueue)
	// Preemption/controller counters appear only when active, so runs
	// without those features render byte-identically to older builds.
	if s.Preemptions > 0 || s.CtrlClamps > 0 || s.CtrlShrinks > 0 || s.CtrlGrows > 0 {
		fmt.Fprintf(&b, "\npreempt=%d (%d cycles) ctrl clamp=%d shrink=%d grow=%d",
			s.Preemptions, s.PreemptedCycles, s.CtrlClamps, s.CtrlShrinks, s.CtrlGrows)
	}
	// Timestamp-protocol counters likewise stay silent under MSI.
	if s.Renewals > 0 || s.RTSJumps > 0 {
		fmt.Fprintf(&b, "\nrenewals=%d rtsjumps=%d", s.Renewals, s.RTSJumps)
	}
	return b.String()
}
