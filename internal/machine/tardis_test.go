package machine

import (
	"fmt"
	"testing"

	"leaserelease/internal/coherence"
	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
)

// tardisConfig returns the standard test config on the Tardis backend.
func tardisConfig(cores int) Config {
	cfg := testConfig(cores)
	cfg.Protocol = coherence.ProtocolTardis
	return cfg
}

func TestTardisCrossCorePropagation(t *testing.T) {
	m := New(tardisConfig(2))
	a := m.Direct().Alloc(8)
	flag := m.Direct().Alloc(8)
	var got uint64
	m.Spawn(0, func(c *Ctx) {
		c.Store(a, 123)
		c.Store(flag, 1)
	})
	m.Spawn(0, func(c *Ctx) {
		for c.Load(flag) != 1 {
			c.Work(100)
		}
		got = c.Load(a)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Fatalf("core 1 read %d, want 123", got)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestTardisCASAtomicUnderContention(t *testing.T) {
	const cores, per = 8, 50
	m := New(tardisConfig(cores))
	ctr := m.Direct().Alloc(8)
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *Ctx) {
			for n := 0; n < per; n++ {
				for {
					v := c.Load(ctr)
					if c.CAS(ctr, v, v+1) {
						break
					}
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != cores*per {
		t.Fatalf("counter = %d, want %d", got, cores*per)
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestTardisRenewalAndRTSJump exercises the two timestamp-native paths: a
// re-read of an unwritten line after the reservation lapses is served as a
// tag-only renewal, and a write under an active read reservation commits
// by jumping its logical time past rts instead of invalidating.
func TestTardisRenewalAndRTSJump(t *testing.T) {
	m := New(tardisConfig(2))
	a := m.Direct().Alloc(8)
	b := m.Direct().Alloc(128) // separate line from a
	m.Spawn(0, func(c *Ctx) {
		c.Load(b)    // take a read reservation on b's line
		c.Work(3000) // outlive the default 2000-cycle reservation
		c.Load(b)    // line unwritten since: tag-only renewal
	})
	m.Spawn(50, func(c *Ctx) {
		c.Load(a) // reservation on a's line...
		c.Work(200)
		c.Store(a, 7) // ...written under it: rts jump, no invalidation
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Renewals == 0 {
		t.Fatalf("re-read of unwritten line not served as renewal: %+v", s)
	}
	if s.RTSJumps == 0 {
		t.Fatalf("write under an active reservation did not jump rts: %+v", s)
	}
	if s.Msgs[coherence.MsgInval] != 0 {
		t.Fatalf("Tardis sent %d invalidation messages; reservations must expire silently",
			s.Msgs[coherence.MsgInval])
	}
	if m.Peek(a) != 7 {
		t.Fatalf("final value %d, want 7", m.Peek(a))
	}
	if err := m.VerifyCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestTardisLeaseDefersProbe mirrors the MSI test: the paper's core-side
// lease machinery (probe deferral, voluntary release) works unchanged on
// the timestamp backend.
func TestTardisLeaseDefersProbe(t *testing.T) {
	m := New(tardisConfig(2))
	a := m.Direct().Alloc(8)
	var casOK bool
	var storeDone, releaseAt uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 10000)
		v := c.Load(a)
		c.Work(3000)
		casOK = c.CAS(a, v, v+1)
		c.Release(a)
		releaseAt = c.Now()
	})
	m.Spawn(100, func(c *Ctx) {
		c.Store(a, 99)
		storeDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !casOK {
		t.Fatal("CAS inside leased window failed")
	}
	if storeDone < releaseAt {
		t.Fatalf("probing store completed at %d, before release at %d", storeDone, releaseAt)
	}
	if m.Peek(a) != 99 {
		t.Fatalf("final value %d, want 99", m.Peek(a))
	}
	if m.Stats().DeferredProbes != 1 {
		t.Fatalf("deferred probes = %d, want 1", m.Stats().DeferredProbes)
	}
}

// TestTardisLeaseMapsToRTS checks the lease<->rts mapping: a started lease
// extends the owned line's rts to cover the lease window, and a voluntary
// release truncates the extension back down.
func TestTardisLeaseMapsToRTS(t *testing.T) {
	m := New(tardisConfig(1))
	a := m.Direct().Alloc(8)
	line := mem.LineOf(a)
	var grantAt, rtsUnderLease, rtsAfterRelease uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 10000)
		grantAt = c.Now()
		_, rtsUnderLease, _ = m.Protocol().LineTimestamps(line)
		c.Store(a, 1)
		c.Release(a)
		_, rtsAfterRelease, _ = m.Protocol().LineTimestamps(line)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	// grantAt is read a cycle or two after the grant committed, so allow
	// that much slack on the window check.
	if rtsUnderLease+16 < grantAt+10000 {
		t.Fatalf("rts %d under lease does not cover the lease window (grant %d + 10000)",
			rtsUnderLease, grantAt)
	}
	if rtsAfterRelease >= rtsUnderLease {
		t.Fatalf("release did not truncate rts: %d -> %d", rtsUnderLease, rtsAfterRelease)
	}
	if _, ok := m.Protocol().CoreTimestamp(0); !ok {
		t.Fatal("Tardis must report a core program timestamp")
	}
}

// TestTardisInvoluntaryExpiry: MAX_LEASE_TIME still bounds a never-released
// lease on the timestamp backend, and the deferred probe is then serviced.
func TestTardisInvoluntaryExpiry(t *testing.T) {
	cfg := tardisConfig(2)
	cfg.Lease.MaxLeaseTime = 2000
	m := New(cfg)
	a := m.Direct().Alloc(8)
	var leaseStart, storeDone uint64
	m.Spawn(0, func(c *Ctx) {
		c.Lease(a, 1e9) // clamped to 2000
		leaseStart = c.Now()
		c.Work(50000)
		c.Release(a)
	})
	m.Spawn(100, func(c *Ctx) {
		c.Store(a, 1)
		storeDone = c.Now()
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	deadline := leaseStart + 2000
	if storeDone < deadline {
		t.Fatalf("store done at %d, before lease deadline %d", storeDone, deadline)
	}
	if storeDone > deadline+200 {
		t.Fatalf("store done at %d, too long after deadline %d", storeDone, deadline)
	}
	if m.Stats().InvoluntaryReleases != 1 {
		t.Fatalf("involuntary releases = %d, want 1", m.Stats().InvoluntaryReleases)
	}
}

// TestTardisPreemptionFeedsController closes the loop of satellite 4:
// preemption faults force involuntary releases under Tardis, and those
// feed the AIMD lease-duration controller exactly as under MSI.
func TestTardisPreemptionFeedsController(t *testing.T) {
	cfg := tardisConfig(2)
	cfg.Controller.Enable = true
	cfg.Faults = faults.Config{Enabled: true, PreemptPermille: 400,
		PreemptMin: 30_000, PreemptMax: 30_000, PreemptTargeted: true}
	m := New(cfg)
	a := m.Direct().Alloc(8)
	const site = 42
	for i := 0; i < 2; i++ {
		m.Spawn(0, func(c *Ctx) {
			for {
				c.LeaseAt(site, a, 5_000)
				c.Store(a, c.Load(a)+1)
				c.Release(a)
				c.Work(64)
			}
		})
	}
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	s := m.Stats()
	if s.InvoluntaryReleases == 0 {
		t.Fatalf("adversarial preemption caused no involuntary releases: %+v", s)
	}
	if s.CtrlShrinks == 0 {
		t.Fatalf("controller never shrank despite %d involuntary releases", s.InvoluntaryReleases)
	}
	if s.CtrlClamps == 0 {
		t.Fatal("controller never clamped a grant after shrinking")
	}
}

func TestTardisDeterminismAcrossRuns(t *testing.T) {
	run := func() (Stats, uint64) {
		m := New(tardisConfig(4))
		ctr := m.Direct().Alloc(8)
		for i := 0; i < 4; i++ {
			m.Spawn(0, func(c *Ctx) {
				for n := 0; n < 100; n++ {
					c.Lease(ctr, 5000)
					v := c.Load(ctr)
					c.CAS(ctr, v, v+1)
					c.Release(ctr)
					c.Work(uint64(c.Rand().Intn(50)))
				}
			})
		}
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Stats(), m.Peek(ctr)
	}
	s1, v1 := run()
	s2, v2 := run()
	if v1 != v2 {
		t.Fatalf("final values differ: %d vs %d", v1, v2)
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatalf("stats differ:\n%v\nvs\n%v", s1, s2)
	}
}

// TestTardisStateDump: dumps name the protocol and carry the per-line
// timestamp section (satellite 2).
func TestTardisStateDump(t *testing.T) {
	m := New(tardisConfig(2))
	a := m.Direct().Alloc(8)
	m.Spawn(0, func(c *Ctx) { c.Store(a, 1); c.Load(a) })
	m.Spawn(0, func(c *Ctx) { c.Load(a) })
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	d := m.DumpState()
	if d.Protocol != coherence.ProtocolTardis {
		t.Fatalf("dump protocol = %q, want %q", d.Protocol, coherence.ProtocolTardis)
	}
	found := false
	for _, l := range d.DirLines {
		if l.WTS > 0 || l.RTS > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dumped line carries timestamps: %+v", d.DirLines)
	}
	if ds := d.String(); ds == "" {
		t.Fatal("empty dump rendering")
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an unknown protocol")
		}
	}()
	cfg := testConfig(1)
	cfg.Protocol = "mesif"
	New(cfg)
}
