//go:build !race

package machine

import "testing"

// Zero-alloc guards for the pooled request path, in the style of
// sim/alloc_test.go: every simulated memory access that misses issues one
// coherence request, so a per-transaction allocation here would dominate
// host time with GC work at scale. (The whole file is compiled out under
// -race, where poison mode deliberately trades cost for loud lifecycle
// failures and AllocsPerRun over-counts anyway.)

// TestRequestPoolZeroAlloc asserts an acquire/release transaction cycle
// allocates nothing: the request is a per-core slot, not a fresh object.
func TestRequestPoolZeroAlloc(t *testing.T) {
	m := New(testConfig(1))
	cs := m.cores[0]
	allocs := testing.AllocsPerRun(1000, func() {
		req := m.acquireReq(cs, 5, true, false)
		m.releaseReq(cs, req)
	})
	if allocs != 0 {
		t.Errorf("request acquire/release allocates %.1f objects, want 0", allocs)
	}
}

// TestDescribeReqZeroAlloc asserts the block-reason string for a miss is
// static (the waited-on line is recovered from the pooled request on the
// cold dump path instead of being formatted per miss).
func TestDescribeReqZeroAlloc(t *testing.T) {
	m := New(testConfig(1))
	cs := m.cores[0]
	req := m.acquireReq(cs, 5, true, true)
	defer m.releaseReq(cs, req)
	allocs := testing.AllocsPerRun(1000, func() {
		_ = describeReq(req)
	})
	if allocs != 0 {
		t.Errorf("describeReq allocates %.1f objects, want 0", allocs)
	}
}

// TestCoreArenaAllocZeroAlloc asserts simulated-memory allocation from a
// core's private arena is a pure bump (no host allocation, no lock).
func TestCoreArenaAllocZeroAlloc(t *testing.T) {
	m := New(testConfig(1))
	cs := m.cores[0]
	allocs := testing.AllocsPerRun(1000, func() {
		_ = cs.arena.AllocAligned(64)
	})
	if allocs != 0 {
		t.Errorf("arena AllocAligned allocates %.1f host objects, want 0", allocs)
	}
}
