package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(1, func() {
		e.After(4, func() { fired = append(fired, e.Now()) })
		e.At(2, func() { fired = append(fired, e.Now()) })
	})
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired = %v, want [2 5]", fired)
	}
}

func TestRunUntilStops(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(100, func() { ran++ })
	if err := e.Run(50); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (event at 100 must stay queued)", ran)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d after drain, want 2", ran)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestProcWorkAndSync(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn(0, 0, 1, func(p *Proc) {
		p.Work(100)
		p.Sync()
		at = append(at, e.Now())
		p.Work(50)
		p.Sync()
		at = append(at, e.Now())
	})
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 100 || at[1] != 150 {
		t.Fatalf("sync points = %v, want [100 150]", at)
	}
}

func TestProcsInterleaveByClock(t *testing.T) {
	e := NewEngine()
	var order []int
	mk := func(id int, step Time) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Work(step)
				p.Sync()
				order = append(order, id)
			}
		}
	}
	e.Spawn(0, 0, 1, mk(0, 10)) // acts at 10, 20, 30
	e.Spawn(1, 0, 2, mk(1, 7))  // acts at 7, 14, 21
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1, 0, 1, 0} // 7,10,14,20,21,30
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine()
	var woke Time
	var blocked *Proc
	e.Spawn(0, 0, 1, func(p *Proc) {
		blocked = p
		woke = p.Block("waiting for test event")
	})
	e.At(5, func() { blocked.WakeAt(42) })
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if woke != 42 {
		t.Fatalf("woke = %d, want 42", woke)
	}
	if blocked.Clock() != 42 {
		t.Fatalf("clock = %d, want 42", blocked.Clock())
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Spawn(0, 0, 1, func(p *Proc) {
		p.Block("never woken")
	})
	err := e.Drain()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want one entry", de.Blocked)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var trace []Time
		for id := 0; id < 4; id++ {
			id := id
			e.Spawn(id, 0, uint64(id)*7+1, func(p *Proc) {
				for i := 0; i < 20; i++ {
					p.Work(Time(p.RNG().Intn(50) + 1))
					p.Sync()
					trace = append(trace, e.Now()*10+Time(id))
				}
			})
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}
