package sim

import "testing"

// The hot paths of the kernel must not allocate in steady state: every
// simulated memory access costs at least one event or proc handoff, so a
// single allocation per step dominates host time with GC work. These
// guards pin the zero-alloc property the typed event queue and the
// allocation-free proc wakes were built for. (Skipped under -race: the
// detector instruments allocations and AllocsPerRun over-counts.)

// TestEventDispatchZeroAlloc drives a self-rescheduling event chain — the
// event-dispatch path: heap/ring pop, exec, reschedule — and asserts the
// steady state allocates nothing.
func TestEventDispatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	e := NewEngine()
	var step func()
	step = func() { e.After(1, step) }
	e.After(1, step)
	var chain func()
	chain = func() { e.After(0, func() {}); e.After(2, chain) }
	e.After(1, chain)
	if err := e.Run(100); err != nil { // warm up queue capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Run(e.Now() + 16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("event dispatch allocates %.1f objects per 16 cycles, want 0", allocs)
	}
}

// TestProcHandoffZeroAlloc runs two procs that interleave cycle-by-cycle
// through Sync — the park/wake handoff path: wake scheduling, token
// transfer, resume — and asserts the steady state allocates nothing.
func TestProcHandoffZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	e := NewEngine()
	worker := func(p *Proc) {
		for {
			p.Work(1)
			p.Sync()
		}
	}
	e.Spawn(0, 0, 1, worker)
	e.Spawn(1, 0, 2, worker)
	if err := e.Run(100); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Run(e.Now() + 32); err != nil {
			t.Fatal(err)
		}
	})
	e.KillAll()
	if allocs != 0 {
		t.Errorf("proc handoff allocates %.1f objects per 32 cycles, want 0", allocs)
	}
}

// TestBlockWakeZeroAlloc exercises the third hot shape — a proc blocking
// on an external event that wakes it (the coherence-miss path).
func TestBlockWakeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	e := NewEngine()
	p := e.Spawn(0, 0, 1, func(p *Proc) {
		for {
			p.Block("waiting for reply")
		}
	})
	var ping func()
	ping = func() {
		p.WakeAt(e.Now() + 1)
		e.After(2, ping)
	}
	e.After(1, ping)
	if err := e.Run(100); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Run(e.Now() + 32); err != nil {
			t.Fatal(err)
		}
	})
	e.KillAll()
	if allocs != 0 {
		t.Errorf("block/wake allocates %.1f objects per 32 cycles, want 0", allocs)
	}
}
