// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is sequential: events execute one at a time in global
// (cycle, sequence) order, and simulated cores run as coroutines that are
// woken by events and yield before every action that can observe or affect
// shared simulated state. Exactly one actor — the Run caller or one proc —
// executes at any instant, so given fixed seeds every run is bit-for-bit
// reproducible.
//
// Scheduling uses direct switching: whichever goroutine currently holds the
// execution token drives the event loop, and when the next event is another
// proc's wake the token moves goroutine-to-goroutine in a single channel
// handoff (when it is the driver's own wake, no handoff at all) instead of
// bouncing through a central scheduler goroutine. The Run caller gets the
// token back when the run is over. This halves — often eliminates — the
// channel operations per proc wake, the dominant host cost of the
// simulation.
package sim

import (
	"fmt"
	"math"
	"strings"
)

// Time is a simulated time in core clock cycles.
type Time = uint64

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxUint64

// event is a scheduled callback (p == nil) or a proc wake (p != nil; fn is
// unused). Wakes are distinguished so the driver can hand the execution
// token directly to the target proc instead of calling into it.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
	p   *Proc
}

// before is the global event order: (cycle, sequence).
func (a *event) before(b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventHeap is an inlined 4-ary min-heap of events ordered by (at, seq).
// Compared to container/heap it avoids the interface{} boxing allocation on
// every push and the indirect Less/Swap calls on every sift; the wider
// fan-out halves the tree depth, trading cheap sibling compares (same cache
// line) for expensive level hops.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !s[i].before(&s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = event{} // drop the fn/proc references so they can be collected
	s = s[:n]
	*h = s
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			best := c
			for j := c + 1; j < end; j++ {
				if s[j].before(&s[best]) {
					best = j
				}
			}
			if !s[best].before(&last) {
				break
			}
			s[i] = s[best]
			i = best
		}
		s[i] = last
	}
	return top
}

// eventRing is a growable power-of-two ring buffer holding the same-cycle
// FIFO: events scheduled for the current cycle (After(0, ...) — the
// dominant case in coherence message hops and proc wakes) bypass the heap
// and run in plain insertion order, which by construction is their
// sequence order.
type eventRing struct {
	buf  []event // len(buf) is always a power of two (or zero)
	head int
	n    int
}

func (r *eventRing) push(ev event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = ev
	r.n++
}

func (r *eventRing) pop() event {
	ev := r.buf[r.head]
	r.buf[r.head] = event{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return ev
}

func (r *eventRing) grow() {
	nb := make([]event, max2(16, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Engine is a sequential discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap // future events, ordered by (at, seq)
	fifo   eventRing // events at the current cycle, in insertion order
	procs  []*Proc

	// Stop condition: Run returns once now >= stopAt (events at later
	// times stay queued).
	stopAt Time

	// home returns the execution token to the Run caller once a driver
	// hits a stop condition; runErr carries that driver's verdict.
	home   chan struct{}
	runErr error

	// fatal holds a proc goroutine's wrapped panic until the Run caller
	// can re-raise it (see Proc and PanicError); curSeq is the sequence
	// number of the event currently executing.
	fatal  *PanicError
	curSeq uint64

	// EventCount is the total number of events executed so far. A proc
	// Sync that fast-forwards time (nothing else was due first) consumes
	// no event and is not counted.
	EventCount uint64

	// StallLimit is the no-progress watchdog: the maximum number of
	// events the engine will execute at a single cycle before declaring a
	// livelock (a zero-delay event loop never advances time, so a plain
	// deadlock check would spin forever). Legal simulations execute at
	// most a few events per core per cycle; the default is orders of
	// magnitude above that.
	StallLimit uint64

	stallEvents uint64 // events executed at the current cycle
}

// DefaultStallLimit is the default per-cycle event watchdog threshold.
const DefaultStallLimit = 1 << 20

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{stopAt: MaxTime, StallLimit: DefaultStallLimit,
		home: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the simulation logic and panics.
//
// Same-cycle events (t == Now()) go to the FIFO ring; future events go to
// the heap. The two never disagree about order: every heap event at cycle
// T was scheduled before the simulation reached T, so it carries a smaller
// sequence number than any event the FIFO holds while the engine executes
// cycle T, and the dispatch loop drains heap events at the current cycle
// before FIFO ones.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d in the past (now %d)", t, e.now))
	}
	e.seq++
	ev := event{at: t, seq: e.seq, fn: fn}
	if t == e.now {
		e.fifo.push(ev)
	} else {
		e.events.push(ev)
	}
}

// atProc schedules a wake for p at time t (same ordering rules as At, but
// the event carries the proc instead of a callback, so waking allocates
// nothing and the driver hands the token over directly).
func (e *Engine) atProc(t Time, p *Proc) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling wake at %d in the past (now %d)", t, e.now))
	}
	e.seq++
	ev := event{at: t, seq: e.seq, p: p}
	if t == e.now {
		e.fifo.push(ev)
	} else {
		e.events.push(ev)
	}
}

// After schedules fn to run dt cycles from now.
func (e *Engine) After(dt Time, fn func()) { e.At(e.now+dt, fn) }

// DeadlockError reports that no event is pending while procs are still
// blocked waiting to be woken.
type DeadlockError struct {
	Time    Time
	Blocked []string // description of each blocked proc
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; blocked procs:\n  %s",
		d.Time, strings.Join(d.Blocked, "\n  "))
}

// StallError reports a livelock: the engine executed StallLimit events
// without simulated time advancing (e.g. a zero-delay event loop).
type StallError struct {
	Time   Time
	Events uint64 // events executed at Time before the watchdog fired
}

func (s *StallError) Error() string {
	return fmt.Sprintf("sim: no progress — %d events executed at cycle %d without time advancing",
		s.Events, s.Time)
}

// next pops the next due event, advancing time and the watchdog counters.
// Only the current token holder may call it. ok == false means the run is
// over and e.runErr holds the verdict: nil (stop time reached or queue
// drained cleanly), a *DeadlockError, or a *StallError.
func (e *Engine) next() (event, bool) {
	var ev event
	if e.fifo.n > 0 {
		// Same-cycle work pending. Heap events at this cycle were
		// scheduled earlier (smaller seq) and run first.
		if e.now >= e.stopAt {
			e.runErr = nil // keep them queued for a later Run
			return event{}, false
		}
		if len(e.events) > 0 && e.events[0].at == e.now {
			ev = e.events.pop()
		} else {
			ev = e.fifo.pop()
		}
	} else if len(e.events) > 0 {
		if e.events[0].at >= e.stopAt {
			if e.stopAt > e.now {
				e.now = e.stopAt
			}
			e.runErr = nil
			return event{}, false
		}
		ev = e.events.pop()
		if ev.at > e.now {
			e.stallEvents = 0
			e.now = ev.at
		}
	} else {
		if blocked := e.Blocked(); len(blocked) > 0 {
			e.runErr = &DeadlockError{Time: e.now, Blocked: blocked}
		} else {
			e.runErr = nil
		}
		return event{}, false
	}
	e.EventCount++
	e.stallEvents++
	if e.StallLimit > 0 && e.stallEvents > e.StallLimit {
		e.runErr = &StallError{Time: e.now, Events: e.stallEvents}
		return event{}, false
	}
	return ev, true
}

// Run executes events in order until either the event queue drains or
// simulated time reaches until. It returns a *DeadlockError if the queue
// drains while some procs remain blocked (a genuine simulated deadlock),
// a *StallError if the StallLimit watchdog detects a livelock, and nil
// otherwise.
//
// Run drives the event loop on the calling goroutine until the first proc
// wake, hands the execution token to that proc, and waits for the token to
// come home; from then on the loop runs on whichever proc goroutine holds
// the token (see Engine.drive). Any panic escaping simulation code — an
// event callback or a proc goroutine — is re-raised out of Run on the
// caller's goroutine as a *PanicError carrying the simulated cycle, event
// sequence number, and proc id, so a harness can recover it with full sim
// context.
func (e *Engine) Run(until Time) error {
	e.stopAt = until
	e.runErr = nil
	for {
		ev, ok := e.next()
		if !ok {
			break
		}
		if ev.p == nil {
			e.exec(ev)
			continue
		}
		q := ev.p
		if q.state == procDone {
			continue // stale wake for a finished proc
		}
		e.curSeq = ev.seq
		q.state = procRunning
		q.resume <- ev.at // hand the token to q ...
		<-e.home          // ... and wait for the run to end
		break
	}
	if e.fatal != nil {
		pe := e.fatal
		e.fatal = nil
		panic(pe)
	}
	return e.runErr
}

// drive runs the event loop on a parked proc's goroutine (the token
// holder) until the proc's own wake pops, returning the wake time. Another
// proc's wake hands the token to that proc in a single channel send — the
// Run caller is not involved — after which self waits to be resumed the
// same way. A stop condition sends the token home (Run returns) and leaves
// self parked for a later Run.
func (e *Engine) drive(self *Proc) Time {
	for {
		ev, ok := e.next()
		if !ok {
			e.sendHome()
			return <-self.resume
		}
		if ev.p == nil {
			e.exec(ev)
			continue
		}
		q := ev.p
		if q.state == procDone {
			continue
		}
		e.curSeq = ev.seq
		if q == self {
			return ev.at // own wake: keep the token, no handoff at all
		}
		q.state = procRunning
		q.resume <- ev.at
		return <-self.resume
	}
}

// driveDetached runs the event loop on a completed proc's goroutine, which
// still holds the token but is about to exit: it drives until the token
// can move to another proc or go home. An event panic here has no user
// stack to unwind through, so it is captured like a proc panic and
// re-raised by Run.
func (e *Engine) driveDetached() {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*PanicError)
			if !ok {
				pe = &PanicError{Cycle: e.now, EventSeq: e.curSeq, ProcID: -1,
					Value: r, Stack: stack()}
			}
			e.fatal = pe
			e.sendHome()
		}
	}()
	for {
		ev, ok := e.next()
		if !ok {
			e.sendHome()
			return
		}
		if ev.p == nil {
			e.exec(ev)
			continue
		}
		q := ev.p
		if q.state == procDone {
			continue
		}
		e.curSeq = ev.seq
		q.state = procRunning
		q.resume <- ev.at
		return
	}
}

// sendHome returns the execution token to the Run caller. The caller is
// always waiting: the token only ever leaves Run's goroutine via its own
// handoff, after which it blocks on home.
func (e *Engine) sendHome() { e.home <- struct{}{} }

// exec runs one event, wrapping any escaping panic in a *PanicError so it
// reaches Run's caller with sim context attached.
func (e *Engine) exec(ev event) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				panic(pe) // already wrapped (proc-side or nested event)
			}
			panic(&PanicError{Cycle: e.now, EventSeq: ev.seq, ProcID: -1,
				Value: r, Stack: stack()})
		}
	}()
	e.curSeq = ev.seq
	ev.fn()
}

// Drain runs until the event queue is empty (no time bound).
func (e *Engine) Drain() error { return e.Run(MaxTime) }

// Pending returns the number of queued (not yet executed) events.
func (e *Engine) Pending() int { return len(e.events) + e.fifo.n }

// Blocked describes every currently blocked proc (diagnostics; the same
// strings a DeadlockError would carry).
func (e *Engine) Blocked() []string {
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, p.describe())
		}
	}
	return blocked
}
