// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is sequential: events execute one at a time in global
// (cycle, sequence) order, and simulated cores run as coroutines that are
// woken by events and yield back to the engine before every action that can
// observe or affect shared simulated state. Given fixed seeds, every run is
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
)

// Time is a simulated time in core clock cycles.
type Time = uint64

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxUint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a sequential discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc

	// Stop condition: Run returns once now >= stopAt (events at later
	// times stay queued).
	stopAt Time

	// EventCount is the total number of events executed so far.
	EventCount uint64
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{stopAt: MaxTime}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d in the past (now %d)", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run dt cycles from now.
func (e *Engine) After(dt Time, fn func()) { e.At(e.now+dt, fn) }

// DeadlockError reports that no event is pending while procs are still
// blocked waiting to be woken.
type DeadlockError struct {
	Time    Time
	Blocked []string // description of each blocked proc
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; blocked procs:\n  %s",
		d.Time, strings.Join(d.Blocked, "\n  "))
}

// Run executes events in order until either the event queue drains or
// simulated time reaches until. It returns a *DeadlockError if the queue
// drains while some procs remain blocked (a genuine simulated deadlock),
// and nil otherwise.
func (e *Engine) Run(until Time) error {
	e.stopAt = until
	for len(e.events) > 0 {
		if e.events[0].at >= e.stopAt {
			e.now = e.stopAt
			return nil
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.EventCount++
		ev.fn()
	}
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, p.describe())
		}
	}
	if len(blocked) > 0 {
		return &DeadlockError{Time: e.now, Blocked: blocked}
	}
	return nil
}

// Drain runs until the event queue is empty (no time bound).
func (e *Engine) Drain() error { return e.Run(MaxTime) }
