// Package sim provides a deterministic discrete-event simulation kernel.
//
// Events execute in a canonical total order keyed by
// (cycle, target domain, source domain, per-source sequence). A domain is a
// scheduling context owned by one simulated actor (one core, or the shared
// system side — directory, L2, memory). The key is shard-invariant: it never
// references global scheduling order, so the same simulation partitioned
// across any number of shards executes per-domain work in the same order and
// produces bit-identical results (see shard.go for the windowed parallel
// executor; with one shard the engine is the familiar sequential kernel).
//
// Simulated cores run as coroutines that are woken by events and yield
// before every action that can observe or affect shared simulated state.
// Within a shard exactly one actor — the driver or one proc — executes at
// any instant. Scheduling uses direct switching: whichever goroutine
// currently holds the shard's execution token drives the event loop, and
// when the next event is another proc's wake the token moves
// goroutine-to-goroutine in a single channel handoff (when it is the
// driver's own wake, no handoff at all). The Run caller gets the token back
// when the run is over.
package sim

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Time is a simulated time in core clock cycles.
type Time = uint64

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxUint64

// SysDomain is the domain id of the shared system side (directory, L2,
// memory). It orders after every core domain at the same cycle, so a
// same-cycle (deliver-to-core, commit-at-directory) pair always delivers
// first.
const SysDomain = ^uint32(0)

// noDomain marks "no event executing" (engine idle / between events).
const noDomain = SysDomain - 1

// event is a scheduled callback (p == nil) or a proc wake (p != nil; fn is
// unused). Wakes are distinguished so the driver can hand the execution
// token directly to the target proc instead of calling into it.
type event struct {
	at  Time
	seq uint64 // per-source-domain sequence: FIFO among same-key ties
	dom uint32 // target domain
	src uint32 // scheduling (source) domain
	fn  func()
	p   *Proc
}

// before is the canonical event order: (cycle, target domain, source
// domain, per-source sequence). Every component is derived from simulation
// structure, never from global scheduling order, which is what makes the
// order identical at any shard count.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dom != b.dom {
		return a.dom < b.dom
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// eventHeap is an inlined 4-ary min-heap of events. Compared to
// container/heap it avoids the interface{} boxing allocation on every push
// and the indirect Less/Swap calls on every sift; the wider fan-out halves
// the tree depth, trading cheap sibling compares (same cache line) for
// expensive level hops.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !s[i].before(&s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = event{} // drop the fn/proc references so they can be collected
	s = s[:n]
	*h = s
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			best := c
			for j := c + 1; j < end; j++ {
				if s[j].before(&s[best]) {
					best = j
				}
			}
			if !s[best].before(&last) {
				break
			}
			s[i] = s[best]
			i = best
		}
		s[i] = last
	}
	return top
}

// eventRing is a growable power-of-two ring buffer holding the same-cycle
// same-domain FIFO: events a domain schedules for itself at the current
// cycle (After(0, ...) — the dominant case in coherence message hops and
// proc wakes) bypass the heap and run in plain insertion order, which by
// construction is their sequence order. All buffered events share one
// (cycle, domain), so the ring is totally ordered and the dispatcher only
// has to compare its head against the heap top.
type eventRing struct {
	buf  []event // len(buf) is always a power of two (or zero)
	head int
	n    int
}

func (r *eventRing) push(ev event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = ev
	r.n++
}

func (r *eventRing) pop() event {
	ev := r.buf[r.head]
	r.buf[r.head] = event{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return ev
}

func (r *eventRing) grow() {
	nb := make([]event, max2(16, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Domain is a scheduling context owned by one simulated actor. Each core is
// its own domain (id = proc id); the shared system side is SysDomain. A
// domain carries its own sequence counter, so the canonical event key never
// depends on which shard (or how many shards) executed the scheduling code.
//
// A domain's At/After may only be called from that domain's own execution
// context (or while the engine is idle); CrossAt schedules onto another
// domain and, under sharding, is subject to the lookahead bound.
type Domain struct {
	eng *Engine
	sh  *shard
	id  uint32
	seq uint64
}

// ID returns the domain id.
func (d *Domain) ID() uint32 { return d.id }

// Now returns the current simulated time as observed by this domain. Under
// sharding this is the owning shard's clock, which is only meaningful from
// the domain's own execution context.
func (d *Domain) Now() Time { return d.sh.now }

// At schedules fn to run on this domain at absolute time t.
func (d *Domain) At(t Time, fn func()) { d.sh.push(d, d, t, fn, nil) }

// After schedules fn to run on this domain dt cycles from the domain's now.
func (d *Domain) After(dt Time, fn func()) { d.At(d.sh.now+dt, fn) }

// CrossAt schedules fn to run on domain dst at absolute time t. The
// receiver is the calling (source) domain; its clock and sequence counter
// key the event. Under sharding a cross-shard event must land at or beyond
// the current window horizon (guaranteed by construction when every
// cross-domain message has latency ≥ the configured lookahead).
func (d *Domain) CrossAt(dst *Domain, t Time, fn func()) { d.sh.push(dst, d, t, fn, nil) }

// CrossAfter schedules fn on dst dt cycles from the source domain's now.
func (d *Domain) CrossAfter(dst *Domain, dt Time, fn func()) { d.CrossAt(dst, d.sh.now+dt, fn) }

// EmitContext reports the emitting execution context for buffered
// telemetry (it satisfies telemetry.DomainContext): the index of the
// owning shard's event buffer — or -1 while the engine is not executing
// parallel windows, meaning the emission must be delivered synchronously —
// plus the shard clock and the canonical key (cycle, domain, src, seq) of
// the event currently executing. Like Now, it may only be called from the
// domain's own execution context.
func (d *Domain) EmitContext() (buf int, now, at Time, dom, src uint32, seq uint64) {
	s := d.sh
	if !s.eng.windowing {
		return -1, s.now, 0, 0, 0, 0
	}
	return s.idx, s.now, s.curAt, s.curDom, s.curSrc, s.curSeq
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct with NewEngine. By default the engine is sequential
// (one shard); ConfigureSharding enables the windowed parallel executor.
type Engine struct {
	shards  []*shard
	domains map[uint32]*Domain
	sys     *Domain
	procs   []*Proc

	// Stop condition: Run returns once now >= stopAt (events at later
	// times stay queued).
	stopAt Time

	// idleNow is the global time reported while no run is active and the
	// engine has more than one shard (with one shard the shard clock is
	// authoritative).
	idleNow Time

	runErr error
	fatal  *PanicError

	// Sharding configuration (see ConfigureSharding); applied lazily at
	// the first Run.
	wantShards  int
	lookahead   Time
	domShard    func(uint32) int
	partitioned bool

	// windowing is true while runWindows is executing parallel windows.
	// It is written only by the coordinator while every worker is parked
	// (before the first window starts and after the last barrier), so
	// shard-goroutine reads during a window are race-free.
	windowing bool

	// barrierHook, if set, runs on the coordinating goroutine at every
	// window barrier, after all shards have parked (SetBarrierHook).
	barrierHook func()

	// stats accumulates the self-observability counters of the windowed
	// executor; see Stats.
	stats engineCounters

	// EventCount is the total number of events executed so far, across all
	// shards; refreshed when Run returns. A proc Sync that fast-forwards
	// time (nothing else was due first) consumes no event and is not
	// counted.
	EventCount uint64

	// StallLimit is the no-progress watchdog: the maximum number of
	// events a shard will execute at a single cycle before declaring a
	// livelock (a zero-delay event loop never advances time, so a plain
	// deadlock check would spin forever). Legal simulations execute at
	// most a few events per core per cycle; the default is orders of
	// magnitude above that.
	StallLimit uint64
}

// DefaultStallLimit is the default per-cycle event watchdog threshold.
const DefaultStallLimit = 1 << 20

// NewEngine returns an empty sequential engine at time 0.
func NewEngine() *Engine {
	e := &Engine{stopAt: MaxTime, StallLimit: DefaultStallLimit,
		domains: make(map[uint32]*Domain)}
	e.shards = []*shard{newShard(e, 0)}
	e.sys = e.Domain(SysDomain)
	return e
}

// Domain returns the handle for domain id, creating it on first use. New
// domains live on shard 0 until ConfigureSharding's mapping is applied.
func (e *Engine) Domain(id uint32) *Domain {
	if d, ok := e.domains[id]; ok {
		return d
	}
	d := &Domain{eng: e, sh: e.shards[0], id: id}
	e.domains[id] = d
	return d
}

// Sys returns the system domain handle (directory, L2, memory).
func (e *Engine) Sys() *Domain { return e.sys }

// ConfigureSharding requests the windowed parallel executor: n shards, a
// conservative lookahead (the minimum latency of any cross-domain message —
// every CrossAt across shards must land at least lookahead cycles after the
// window start), and a domain→shard mapping. It must be called before the
// first Run; n <= 1 keeps the sequential executor. The mapping is applied
// lazily when Run first executes, so it may be called at any point during
// setup.
func (e *Engine) ConfigureSharding(n int, lookahead Time, domShard func(uint32) int) {
	if e.partitioned {
		panic("sim: ConfigureSharding after Run")
	}
	if n < 1 {
		n = 1
	}
	if n > 1 && lookahead == 0 {
		panic("sim: sharding requires a nonzero lookahead")
	}
	e.wantShards, e.lookahead, e.domShard = n, lookahead, domShard
}

// Shards returns the effective shard count.
func (e *Engine) Shards() int {
	if !e.partitioned && e.wantShards > 1 {
		return e.wantShards
	}
	return len(e.shards)
}

// Now returns the current simulated time. With multiple shards this is only
// meaningful while the engine is idle (between Runs); during execution each
// domain observes time through its own handle.
func (e *Engine) Now() Time {
	if len(e.shards) == 1 {
		return e.shards[0].now
	}
	return e.idleNow
}

// At schedules fn to run on the system domain at absolute time t.
// Scheduling in the past is an error in the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) { e.shards[0].push(e.sys, e.sys, t, fn, nil) }

// After schedules fn to run on the system domain dt cycles from now. Like
// At, it is the single-shard (or idle-engine) convenience surface; sharded
// simulations schedule through Domain handles.
func (e *Engine) After(dt Time, fn func()) { e.At(e.shards[0].now+dt, fn) }

// DeadlockError reports that no event is pending while procs are still
// blocked waiting to be woken.
type DeadlockError struct {
	Time    Time
	Blocked []string // description of each blocked proc
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; blocked procs:\n  %s",
		d.Time, strings.Join(d.Blocked, "\n  "))
}

// StallError reports a livelock: a shard executed StallLimit events
// without simulated time advancing (e.g. a zero-delay event loop).
type StallError struct {
	Time   Time
	Events uint64 // events executed at Time before the watchdog fired
}

func (s *StallError) Error() string {
	return fmt.Sprintf("sim: no progress — %d events executed at cycle %d without time advancing",
		s.Events, s.Time)
}

// shard is one partition of the simulation: a set of domains, their event
// queues, and an execution token. With one shard the Run caller drives it
// directly; with several, each shard has a worker goroutine and executes
// lookahead-bounded windows between barriers (shard.go).
type shard struct {
	eng *Engine
	idx int

	now    Time
	events eventHeap // future (and cross-domain same-cycle) events
	fifo   eventRing // same-cycle same-domain events, in insertion order

	// Canonical key of the event currently executing (curAt/curDom/
	// curSrc/curSeq), maintained by next() as the single source of truth.
	// Emissions made while a proc holds the token are attributed to the
	// proc's wake event — the last event popped on this shard — which is
	// the same attribution the sequential executor would make, since no
	// other event runs while the proc holds the token.
	curAt  Time
	curDom uint32 // domain of the event currently executing
	curSrc uint32

	// windowEnd is the exclusive execution horizon for the current window
	// (MaxTime when sequential); stopAt caches the engine stop time.
	windowEnd Time
	stopAt    Time

	// home returns the shard's execution token to its driver (the Run
	// caller, or the shard worker) once a stop condition is hit.
	home chan struct{}

	// verdict holds a stall error detected by this shard's watchdog;
	// fatal holds a wrapped panic from one of its procs or events.
	verdict error
	fatal   *PanicError

	curSeq      uint64 // sequence of the event currently executing
	eventCount  uint64
	stallEvents uint64 // events executed at the current cycle

	// inbox receives cross-shard events; appended under inmu by source
	// shards mid-window, drained into the heap by the coordinator at
	// window barriers.
	inmu  sync.Mutex
	inbox []event
}

func newShard(e *Engine, idx int) *shard {
	return &shard{eng: e, idx: idx, curDom: noDomain,
		windowEnd: MaxTime, stopAt: MaxTime, home: make(chan struct{})}
}

// push schedules an event from source domain src onto destination domain
// dst. It must run on src's shard (the caller's execution context) or on an
// idle engine.
func (s *shard) push(dst, src *Domain, t Time, fn func(), p *Proc) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d in the past (now %d)", t, s.now))
	}
	src.seq++
	ev := event{at: t, seq: src.seq, dom: dst.id, src: src.id, fn: fn, p: p}
	ts := dst.sh
	if ts == s {
		// The ring only buffers a domain's same-cycle self-schedules, and
		// only while the ring is homogeneous (one cycle, one domain), so
		// its entries are totally ordered by construction.
		if t == s.now && ev.dom == s.curDom && ev.src == s.curDom &&
			(s.fifo.n == 0 || s.fifo.buf[s.fifo.head].dom == ev.dom) {
			s.fifo.push(ev)
		} else {
			s.events.push(ev)
		}
		return
	}
	// Cross-shard: conservative lookahead guarantees delivery beyond the
	// current window, so the target shard never misses it.
	if t < s.windowEnd {
		panic(fmt.Sprintf("sim: lookahead violation: cross-shard event at cycle %d inside window ending %d", t, s.windowEnd))
	}
	ts.inmu.Lock()
	ts.inbox = append(ts.inbox, ev)
	ts.inmu.Unlock()
}

// bound returns the shard's current execution horizon.
func (s *shard) bound() Time {
	if s.windowEnd < s.stopAt {
		return s.windowEnd
	}
	return s.stopAt
}

// next pops the next due event, advancing time and the watchdog counters.
// Only the current token holder may call it. ok == false means this shard
// is done for now: the horizon was reached, the queue drained, or the
// watchdog fired (s.verdict). The driver decides what that means.
func (s *shard) next() (event, bool) {
	var ev event
	bound := s.bound()
	if s.fifo.n > 0 {
		// Same-cycle work pending (s.now < bound by construction: the
		// ring only fills at the executing cycle). Heap events can still
		// order first — compare keys.
		if s.now >= bound {
			return event{}, false // keep them queued for a later Run
		}
		if len(s.events) > 0 && s.events[0].at == s.now && s.events[0].before(&s.fifo.buf[s.fifo.head]) {
			ev = s.events.pop()
		} else {
			ev = s.fifo.pop()
		}
	} else if len(s.events) > 0 {
		if s.events[0].at >= bound {
			if bound > s.now {
				s.now = bound
				s.stallEvents = 0
			}
			return event{}, false
		}
		ev = s.events.pop()
		if ev.at > s.now {
			s.stallEvents = 0
			s.now = ev.at
		}
	} else {
		// Queue drained: leave the clock at the last executed event (the
		// sequential semantics; windowed shards converge at barriers).
		return event{}, false
	}
	s.curAt, s.curDom, s.curSrc, s.curSeq = ev.at, ev.dom, ev.src, ev.seq
	s.eventCount++
	s.stallEvents++
	if limit := s.eng.StallLimit; limit > 0 && s.stallEvents > limit {
		s.verdict = &StallError{Time: s.now, Events: s.stallEvents}
		return event{}, false
	}
	return ev, true
}

// empty reports whether the shard has no queued work at all (inbox
// included; callers must be at a barrier or idle).
func (s *shard) empty() bool {
	return len(s.events) == 0 && s.fifo.n == 0 && len(s.inbox) == 0
}

// Run executes events in canonical order until either every event queue
// drains or simulated time reaches until. It returns a *DeadlockError if
// the queues drain while some procs remain blocked (a genuine simulated
// deadlock), a *StallError if the StallLimit watchdog detects a livelock,
// and nil otherwise.
//
// Run drives the event loop on the calling goroutine until the first proc
// wake, hands the execution token to that proc, and waits for the token to
// come home; from then on the loop runs on whichever proc goroutine holds
// the token (see shard.drive). Any panic escaping simulation code — an
// event callback or a proc goroutine — is re-raised out of Run on the
// caller's goroutine as a *PanicError carrying the simulated cycle, event
// sequence number, and proc id, so a harness can recover it with full sim
// context.
//
// With sharding configured, Run instead executes lookahead-bounded windows
// on per-shard workers (see shard.go); the observable results are
// bit-identical to the sequential executor by construction of the event
// key.
func (e *Engine) Run(until Time) error {
	e.partition()
	if len(e.shards) > 1 {
		return e.runWindows(until)
	}
	s := e.shards[0]
	s.stopAt = until
	e.stopAt = until
	s.verdict = nil
	for {
		ev, ok := s.next()
		if !ok {
			break
		}
		if ev.p == nil {
			s.exec(ev)
			continue
		}
		q := ev.p
		if q.state == procDone {
			continue // stale wake for a finished proc
		}
		q.state = procRunning
		q.resume <- ev.at // hand the token to q ...
		<-s.home          // ... and wait for the run to end
		break
	}
	e.EventCount = s.eventCount
	if s.fatal != nil {
		pe := s.fatal
		s.fatal = nil
		panic(pe)
	}
	return e.finishVerdict(s)
}

// finishVerdict turns a stopped shard's state into Run's return value for
// the sequential executor.
func (e *Engine) finishVerdict(s *shard) error {
	if s.verdict != nil {
		v := s.verdict
		s.verdict = nil
		return v
	}
	if s.empty() {
		if blocked := e.Blocked(); len(blocked) > 0 {
			return &DeadlockError{Time: s.now, Blocked: blocked}
		}
	}
	return nil
}

// partition applies the sharding configuration on first Run: create the
// worker shards, move every domain (and its queued events) to its mapped
// shard.
func (e *Engine) partition() {
	if e.partitioned {
		return
	}
	e.partitioned = true
	if e.wantShards <= 1 {
		return
	}
	s0 := e.shards[0]
	for i := 1; i < e.wantShards; i++ {
		sh := newShard(e, i)
		sh.now = s0.now
		e.shards = append(e.shards, sh)
	}
	for _, d := range e.domains {
		idx := 0
		if e.domShard != nil {
			idx = e.domShard(d.id)
		}
		if idx < 0 || idx >= len(e.shards) {
			panic(fmt.Sprintf("sim: domain %d mapped to invalid shard %d", d.id, idx))
		}
		d.sh = e.shards[idx]
	}
	// Redistribute setup-time events (the ring is empty while idle; all
	// queued work sits in shard 0's heap).
	pending := s0.events
	s0.events = nil
	for len(pending) > 0 {
		ev := pending.pop()
		d, ok := e.domains[ev.dom]
		if !ok {
			panic(fmt.Sprintf("sim: queued event for unknown domain %d", ev.dom))
		}
		d.sh.events.push(ev)
	}
}

// drive runs the event loop on a parked proc's goroutine (the token
// holder) until the proc's own wake pops, returning the wake time. Another
// proc's wake hands the token to that proc in a single channel send — the
// driver is not involved — after which self waits to be resumed the same
// way. A stop condition sends the token home and leaves self parked for a
// later window or Run.
func (s *shard) drive(self *Proc) Time {
	for {
		ev, ok := s.next()
		if !ok {
			s.sendHome()
			return <-self.resume
		}
		if ev.p == nil {
			s.exec(ev)
			continue
		}
		q := ev.p
		if q.state == procDone {
			continue
		}
		if q == self {
			return ev.at // own wake: keep the token, no handoff at all
		}
		q.state = procRunning
		q.resume <- ev.at
		return <-self.resume
	}
}

// driveDetached runs the event loop on a completed proc's goroutine, which
// still holds the token but is about to exit: it drives until the token
// can move to another proc or go home. An event panic here has no user
// stack to unwind through, so it is captured like a proc panic and
// re-raised by Run.
func (s *shard) driveDetached() {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*PanicError)
			if !ok {
				pe = &PanicError{Cycle: s.now, EventSeq: s.curSeq, ProcID: -1,
					Value: r, Stack: stack()}
			}
			s.fatal = pe
			s.sendHome()
		}
	}()
	for {
		ev, ok := s.next()
		if !ok {
			s.sendHome()
			return
		}
		if ev.p == nil {
			s.exec(ev)
			continue
		}
		q := ev.p
		if q.state == procDone {
			continue
		}
		q.state = procRunning
		q.resume <- ev.at
		return
	}
}

// sendHome returns the execution token to the shard's driver. The driver
// is always waiting: the token only ever leaves its goroutine via its own
// handoff, after which it blocks on home.
func (s *shard) sendHome() { s.home <- struct{}{} }

// exec runs one event, wrapping any escaping panic in a *PanicError so it
// reaches Run's caller with sim context attached.
func (s *shard) exec(ev event) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				panic(pe) // already wrapped (proc-side or nested event)
			}
			panic(&PanicError{Cycle: s.now, EventSeq: ev.seq, ProcID: -1,
				Value: r, Stack: stack()})
		}
	}()
	ev.fn()
}

// Drain runs until the event queue is empty (no time bound).
func (e *Engine) Drain() error { return e.Run(MaxTime) }

// Pending returns the number of queued (not yet executed) events.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += len(s.events) + s.fifo.n + len(s.inbox)
	}
	return n
}

// Blocked describes every currently blocked proc (diagnostics; the same
// strings a DeadlockError would carry).
func (e *Engine) Blocked() []string {
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, p.describe())
		}
	}
	return blocked
}
