// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is sequential: events execute one at a time in global
// (cycle, sequence) order, and simulated cores run as coroutines that are
// woken by events and yield back to the engine before every action that can
// observe or affect shared simulated state. Given fixed seeds, every run is
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
)

// Time is a simulated time in core clock cycles.
type Time = uint64

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxUint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a sequential discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc

	// Stop condition: Run returns once now >= stopAt (events at later
	// times stay queued).
	stopAt Time

	// fatal holds a proc goroutine's wrapped panic until the engine
	// goroutine can re-raise it (see Proc and PanicError); curSeq is the
	// sequence number of the event currently executing.
	fatal  *PanicError
	curSeq uint64

	// EventCount is the total number of events executed so far.
	EventCount uint64

	// StallLimit is the no-progress watchdog: the maximum number of
	// events the engine will execute at a single cycle before declaring a
	// livelock (a zero-delay event loop never advances time, so a plain
	// deadlock check would spin forever). Legal simulations execute at
	// most a few events per core per cycle; the default is orders of
	// magnitude above that.
	StallLimit uint64

	stallEvents uint64 // events executed at the current cycle
}

// DefaultStallLimit is the default per-cycle event watchdog threshold.
const DefaultStallLimit = 1 << 20

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{stopAt: MaxTime, StallLimit: DefaultStallLimit}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the simulation logic and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d in the past (now %d)", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run dt cycles from now.
func (e *Engine) After(dt Time, fn func()) { e.At(e.now+dt, fn) }

// DeadlockError reports that no event is pending while procs are still
// blocked waiting to be woken.
type DeadlockError struct {
	Time    Time
	Blocked []string // description of each blocked proc
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; blocked procs:\n  %s",
		d.Time, strings.Join(d.Blocked, "\n  "))
}

// StallError reports a livelock: the engine executed StallLimit events
// without simulated time advancing (e.g. a zero-delay event loop).
type StallError struct {
	Time   Time
	Events uint64 // events executed at Time before the watchdog fired
}

func (s *StallError) Error() string {
	return fmt.Sprintf("sim: no progress — %d events executed at cycle %d without time advancing",
		s.Events, s.Time)
}

// Run executes events in order until either the event queue drains or
// simulated time reaches until. It returns a *DeadlockError if the queue
// drains while some procs remain blocked (a genuine simulated deadlock),
// a *StallError if the StallLimit watchdog detects a livelock, and nil
// otherwise.
//
// Any panic escaping simulation code — an event callback or a proc
// goroutine — is re-raised out of Run on the caller's goroutine as a
// *PanicError carrying the simulated cycle, event sequence number, and
// proc id, so a harness can recover it with full sim context.
func (e *Engine) Run(until Time) error {
	e.stopAt = until
	for len(e.events) > 0 {
		if e.events[0].at >= e.stopAt {
			e.now = e.stopAt
			return nil
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at > e.now {
			e.stallEvents = 0
		}
		e.now = ev.at
		e.EventCount++
		e.stallEvents++
		if e.StallLimit > 0 && e.stallEvents > e.StallLimit {
			return &StallError{Time: e.now, Events: e.stallEvents}
		}
		e.exec(ev)
	}
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, p.describe())
		}
	}
	if len(blocked) > 0 {
		return &DeadlockError{Time: e.now, Blocked: blocked}
	}
	return nil
}

// exec runs one event, wrapping any escaping panic in a *PanicError so it
// reaches Run's caller with sim context attached.
func (e *Engine) exec(ev event) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				panic(pe) // already wrapped (proc-side or nested event)
			}
			panic(&PanicError{Cycle: e.now, EventSeq: ev.seq, ProcID: -1,
				Value: r, Stack: stack()})
		}
	}()
	e.curSeq = ev.seq
	ev.fn()
}

// Drain runs until the event queue is empty (no time bound).
func (e *Engine) Drain() error { return e.Run(MaxTime) }

// Pending returns the number of queued (not yet executed) events.
func (e *Engine) Pending() int { return len(e.events) }

// Blocked describes every currently blocked proc (diagnostics; the same
// strings a DeadlockError would carry).
func (e *Engine) Blocked() []string {
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, p.describe())
		}
	}
	return blocked
}
