package sim

import "sync"

// This file implements the conservative time-windowed parallel executor.
//
// The engine's event key (cycle, target domain, source domain, per-source
// seq) defines one canonical total order that does not depend on how
// domains are packed onto shards. The sequential executor simply pops that
// order. The windowed executor exploits lookahead: if every cross-domain
// message carries at least L cycles of latency, then inside a window
// [T0, T0+L) no shard can affect another — every cross-shard event
// scheduled during the window lands at or beyond its end (enforced by a
// runtime check in shard.push). Shards therefore execute their own slice
// of the canonical order concurrently, and the coordinator merges
// cross-shard events into the target heaps at the barrier, where the key
// restores the canonical order. The observable simulation is bit-identical
// at any shard count.
//
// T0 jumps to the earliest pending event across shards at every barrier,
// so idle stretches cost one barrier instead of one barrier per lookahead
// quantum.

// runWindows executes lookahead-bounded windows until the stop condition.
// The Run caller coordinates barriers and drives shard 0 inline; shards
// 1..n-1 run on worker goroutines spawned for the duration of this Run.
func (e *Engine) runWindows(until Time) error {
	e.stopAt = until
	for _, s := range e.shards {
		s.stopAt = until
		s.verdict = nil
	}
	e.windowing = true
	defer func() { e.windowing = false }()
	if e.stats.active == nil {
		e.stats.active = make([]uint64, len(e.shards))
	}
	var wg sync.WaitGroup
	starts := make([]chan struct{}, len(e.shards))
	for i := 1; i < len(e.shards); i++ {
		ch := make(chan struct{})
		starts[i] = ch
		go func(s *shard, ch chan struct{}) {
			for range ch {
				s.runWindow()
				wg.Done()
			}
		}(e.shards[i], ch)
	}
	defer func() {
		for _, ch := range starts[1:] {
			close(ch)
		}
	}()

	for {
		// Barrier: all workers parked. Merge cross-shard arrivals, then
		// find the earliest pending event anywhere.
		t0 := MaxTime
		for _, s := range e.shards {
			if len(s.inbox) > 0 {
				e.stats.merged += uint64(len(s.inbox))
				for _, ev := range s.inbox {
					s.events.push(ev)
				}
				s.inbox = s.inbox[:0]
			}
			if len(s.events) > 0 && s.events[0].at < t0 {
				t0 = s.events[0].at
			}
		}
		if t0 >= until {
			return e.windowsDone(until)
		}
		wend := until
		if la := t0 + e.lookahead; la > t0 && la < until {
			wend = la
		}
		nactive, nbusy := 0, 0
		for i, s := range e.shards {
			s.windowEnd = wend
			if len(s.events) > 0 && s.events[0].at < wend {
				e.stats.active[i]++
				nbusy++
				if i > 0 {
					nactive++
				}
			}
		}
		e.stats.windows++
		e.stats.windowCycles += wend - t0
		e.stats.stallCycles += (wend - t0) * uint64(len(e.shards)-nbusy)
		wg.Add(nactive)
		for i, s := range e.shards {
			if i > 0 && len(s.events) > 0 && s.events[0].at < wend {
				starts[i] <- struct{}{}
			}
		}
		e.shards[0].runWindow()
		wg.Wait()
		e.stats.barriers++
		if e.barrierHook != nil {
			e.barrierHook()
		}

		if err := e.collectWindow(); err != nil {
			return err
		}
	}
}

// collectWindow gathers per-shard failures after a barrier. Fatal panics
// win over stall verdicts; ties resolve by shard index so the outcome is
// deterministic.
func (e *Engine) collectWindow() error {
	e.refreshCounts()
	for _, s := range e.shards {
		if s.fatal != nil {
			pe := s.fatal
			s.fatal = nil
			panic(pe)
		}
	}
	for _, s := range e.shards {
		if s.verdict != nil {
			v := s.verdict
			s.verdict = nil
			return v
		}
	}
	return nil
}

// windowsDone finalises a windowed run that reached its stop condition,
// mirroring the sequential executor's clock semantics: a shard with events
// still pending beyond the stop time parks at the stop time; a drained
// shard keeps the time of its last executed event.
func (e *Engine) windowsDone(until Time) error {
	e.refreshCounts()
	pending := false
	maxNow := Time(0)
	for _, s := range e.shards {
		if len(s.events) > 0 {
			pending = true
			if until > s.now {
				s.now = until
				s.stallEvents = 0
			}
		}
		if s.now > maxNow {
			maxNow = s.now
		}
	}
	e.idleNow = maxNow
	if !pending {
		if blocked := e.Blocked(); len(blocked) > 0 {
			return &DeadlockError{Time: maxNow, Blocked: blocked}
		}
	}
	return nil
}

func (e *Engine) refreshCounts() {
	total := uint64(0)
	for _, s := range e.shards {
		total += s.eventCount
	}
	e.EventCount = total
}

// runWindow drives one shard until its horizon (windowEnd, set by the
// coordinator, or the run's stop time). It owns the shard's execution
// token for the duration; proc wakes hand the token out and it comes home
// when a stop condition is reached. Panics from events or procs are
// captured into s.fatal for the coordinator to re-raise.
func (s *shard) runWindow() {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*PanicError)
			if !ok {
				pe = &PanicError{Cycle: s.now, EventSeq: s.curSeq, ProcID: -1,
					Value: r, Stack: stack()}
			}
			s.fatal = pe
		}
	}()
	for {
		ev, ok := s.next()
		if !ok {
			return
		}
		if ev.p == nil {
			s.exec(ev)
			continue
		}
		q := ev.p
		if q.state == procDone {
			continue
		}
		q.state = procRunning
		q.resume <- ev.at // hand the token to q ...
		<-s.home          // ... and take it back when the window is over
		return
	}
}
