package sim

import "testing"

func TestKillBlockedProc(t *testing.T) {
	e := NewEngine()
	cleanedUp := false
	e.Spawn(0, 0, 1, func(p *Proc) {
		defer func() { cleanedUp = true }()
		p.Block("forever")
		t.Error("proc resumed after kill")
	})
	// Run drains with a deadlock (the proc never wakes).
	if _, ok := e.Drain().(*DeadlockError); !ok {
		t.Fatal("expected deadlock before kill")
	}
	e.KillAll()
	if !cleanedUp {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestKillBeforeFirstDispatch(t *testing.T) {
	e := NewEngine()
	ran := false
	p := e.Spawn(0, 100, 1, func(p *Proc) { ran = true })
	p.Kill()
	if ran {
		t.Fatal("killed proc ran its body")
	}
	// The stale start event must be a no-op.
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestKillFinishedProcIsNoop(t *testing.T) {
	e := NewEngine()
	p := e.Spawn(0, 0, 1, func(p *Proc) {})
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	p.Kill() // must not hang or panic
}

func TestKillAllMixed(t *testing.T) {
	e := NewEngine()
	done := 0
	for i := 0; i < 3; i++ {
		e.Spawn(i, 0, uint64(i+1), func(p *Proc) {
			done++
		})
	}
	for i := 3; i < 6; i++ {
		e.Spawn(i, 0, uint64(i+1), func(p *Proc) {
			p.Block("never")
		})
	}
	if _, ok := e.Drain().(*DeadlockError); !ok {
		t.Fatal("expected deadlock")
	}
	e.KillAll()
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	// Idempotent.
	e.KillAll()
}
