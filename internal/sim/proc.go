package sim

import "fmt"

type procState int

const (
	procCreated procState = iota
	procRunning           // currently executing (all other actors on its shard are parked)
	procBlocked           // waiting for an external wake (coherence reply, ...)
	procDone
)

// Proc is a simulated hardware context (one in-order core running one
// thread). Proc code runs on its own goroutine, but exactly one actor per
// shard — the shard's driver or one of its procs — executes at any
// instant: a single "execution token" moves between them (see shard.drive),
// so all engine and simulated state owned by the shard is accessed
// race-free without locks. Each proc is its own scheduling domain
// (id = proc id), which under sharding pins it to one shard.
//
// A proc keeps a local clock that it advances as it "executes". Before any
// action that can touch shared simulated state it must call Sync, which
// parks the proc until simulated time has caught up with its local clock.
// This is what makes the whole simulation deterministic.
type Proc struct {
	ID  int
	eng *Engine
	dom *Domain

	clock Time
	state procState

	// resume delivers the execution token (and the wake time) to a parked
	// proc: from the driver that popped its wake event, or from Kill.
	resume chan Time
	// yield hands control back to Kill after a killed proc unwinds.
	yield chan struct{}

	blockReason string
	blockSince  Time

	preempted Time // cycles spent descheduled (Preempt)

	killed bool

	rng RNG
}

// scheduleWake schedules the proc's (single) pending wake at time t. A
// proc is parked from when its wake is scheduled until it fires, so there
// is never more than one outstanding wake per proc. Wakes are same-domain
// events keyed by the proc's own sequence counter.
func (p *Proc) scheduleWake(t Time) { p.dom.sh.push(p.dom, p.dom, t, nil, p) }

// killToken unwinds a killed proc's goroutine through a panic that the
// Spawn wrapper recovers.
type killToken struct{}

// Spawn creates a proc running fn, starting at time start. fn runs to
// completion on its own goroutine, interleaved deterministically with other
// procs by the engine. The proc's scheduling domain is uint32(id).
func (e *Engine) Spawn(id int, start Time, seed uint64, fn func(*Proc)) *Proc {
	p := &Proc{
		ID:     id,
		eng:    e,
		dom:    e.Domain(uint32(id)),
		resume: make(chan Time),
		yield:  make(chan struct{}),
		rng:    NewRNG(seed),
	}
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			s := p.dom.sh
			if r := recover(); r != nil {
				if _, ok := r.(killToken); !ok {
					// A panic here is on the proc goroutine, where no
					// harness can recover it. Wrap it with sim context
					// and hand it to the Run caller, which re-raises it
					// on its own goroutine (see Engine.Run).
					pe, ok := r.(*PanicError)
					if !ok {
						pe = &PanicError{ProcID: p.ID, Cycle: s.now,
							LocalClk: p.clock, EventSeq: s.curSeq,
							Value: r, Stack: stack()}
					}
					s.fatal = pe
				}
			}
			p.state = procDone
			if p.killed {
				p.yield <- struct{}{} // hand control back to Kill
				return
			}
			if s.fatal != nil {
				// Abort the run: send the token home; the driver
				// re-raises.
				s.sendHome()
				return
			}
			// Normal completion: this goroutine still holds the shard's
			// execution token, so it keeps driving the simulation until
			// the token can move to another actor, then exits.
			s.driveDetached()
		}()
		t := <-p.resume
		p.clock = t
		if !p.killed {
			fn(p)
		}
	}()
	p.state = procBlocked
	p.blockReason = "waiting to start"
	p.scheduleWake(start)
	return p
}

// park records the proc as blocked and drives the engine until the proc's
// own wake fires (possibly after handing the token to other procs in
// between), returning the wake time.
func (p *Proc) park(reason string) Time {
	if p.killed {
		// The killToken unwind can run user defers (e.g. a deferred
		// Unlock) that re-enter the simulation; the engine is idle and
		// being torn down, so parking would hang. Pretend the wait
		// completed instantly.
		return p.clock
	}
	p.state = procBlocked
	p.blockReason = reason
	p.blockSince = p.dom.sh.now
	t := p.dom.sh.drive(p)
	if p.killed {
		panic(killToken{})
	}
	p.state = procRunning
	return t
}

// Kill unwinds a blocked proc: its goroutine exits without running further
// user code. Kill must only be called while the engine is idle (Run has
// returned); it is a no-op on running or finished procs.
func (p *Proc) Kill() {
	if p.state != procBlocked {
		return
	}
	p.killed = true
	p.state = procRunning
	p.resume <- 0
	<-p.yield
}

// KillAll unwinds every blocked proc. Call after Run returns to tear a
// simulation down without leaking goroutines.
func (e *Engine) KillAll() {
	for _, p := range e.procs {
		p.Kill()
	}
}

// Sync parks the proc until simulated time reaches its local clock. After
// Sync returns, the proc's domain clock equals p.Clock() and the proc may
// safely perform an action on shared simulated state timestamped at its
// local clock.
//
// Fast path: when nothing else is scheduled on the shard before the proc's
// local clock (and the clock is inside the current execution horizon),
// parking would only make the proc's own wake the next event executed, so
// the proc advances the shard clock itself and keeps running — no event,
// no handoff. This is safe (the proc holds the shard's execution token, so
// it has exclusive access to shard state) and exactly order-preserving:
// the wake it skips would have been the next event.
func (p *Proc) Sync() {
	s := p.dom.sh
	if p.killed {
		return // unwinding defers must not schedule wakes or move time
	}
	if p.clock < s.now {
		// The proc fell behind shard time (it was woken by an event
		// that completed later than its local clock): jump forward.
		p.clock = s.now
		return
	}
	if p.clock == s.now {
		return
	}
	if s.fifo.n == 0 && (len(s.events) == 0 || s.events[0].at > p.clock) && p.clock < s.bound() {
		s.now = p.clock
		s.stallEvents = 0
		return
	}
	p.scheduleWake(p.clock)
	p.clock = p.park("advancing clock")
}

// Block parks the proc until some event calls WakeAt. It returns the wake
// time and sets the local clock to it. reason is used in deadlock reports.
func (p *Proc) Block(reason string) Time {
	t := p.park(reason)
	p.clock = t
	return t
}

// WakeAt schedules p (which must be blocked via Block) to resume at time t.
// It must be called from event context on p's own domain (e.g. the
// completion delivery that unblocks it).
func (p *Proc) WakeAt(t Time) { p.scheduleWake(t) }

// Domain returns the proc's scheduling domain handle.
func (p *Proc) Domain() *Domain { return p.dom }

// Clock returns the proc's local time.
func (p *Proc) Clock() Time { return p.clock }

// Work advances the local clock by n cycles of purely local computation.
func (p *Proc) Work(n Time) { p.clock += n }

// Preempt models the core being descheduled for n cycles: the proc
// issues no events and performs no work while its local clock advances.
// To the engine this is indistinguishable from local compute — which is
// the architectural point: timers armed on the (still-powered) cache
// hardware, such as lease expiries, keep firing while the thread is off
// the core. Preempted cycles are counted separately so harnesses can
// check conservation against the fault injector's draws.
func (p *Proc) Preempt(n Time) {
	p.clock += n
	p.preempted += n
}

// PreemptedCycles returns the total cycles this proc spent descheduled.
func (p *Proc) PreemptedCycles() Time { return p.preempted }

// RNG returns the proc's deterministic random number generator.
func (p *Proc) RNG() *RNG { return &p.rng }

// Status reports the proc's scheduling state for diagnostics: done means
// the thread function returned (or the proc was killed); blocked means it
// is parked waiting for a wake, with the reason and the cycle it parked.
func (p *Proc) Status() (blocked bool, reason string, since Time, done bool) {
	switch p.state {
	case procBlocked:
		return true, p.blockReason, p.blockSince, false
	case procDone:
		return false, "", 0, true
	}
	return false, "", 0, false
}

func (p *Proc) describe() string {
	return fmt.Sprintf("proc %d: %s (since cycle %d, local clock %d)",
		p.ID, p.blockReason, p.blockSince, p.clock)
}
