package sim

import "fmt"

type procState int

const (
	procCreated procState = iota
	procRunning           // currently executing (engine is parked)
	procBlocked           // waiting for an external wake (coherence reply, ...)
	procDone
)

// Proc is a simulated hardware context (one in-order core running one
// thread). Proc code runs on its own goroutine, but the engine and all
// procs alternate strictly: exactly one of them executes at any instant.
//
// A proc keeps a local clock that it advances as it "executes". Before any
// action that can touch shared simulated state it must call Sync, which
// parks the proc until global simulated time has caught up with its local
// clock. This is what makes the whole simulation deterministic.
type Proc struct {
	ID  int
	eng *Engine

	clock Time
	state procState

	resume chan Time     // engine -> proc, carries the wake time
	yield  chan struct{} // proc -> engine

	blockReason string
	blockSince  Time

	killed bool

	rng RNG
}

// killToken unwinds a killed proc's goroutine through a panic that the
// Spawn wrapper recovers.
type killToken struct{}

// Spawn creates a proc running fn, starting at time start. fn runs to
// completion on its own goroutine, interleaved deterministically with other
// procs by the engine.
func (e *Engine) Spawn(id int, start Time, seed uint64, fn func(*Proc)) *Proc {
	p := &Proc{
		ID:     id,
		eng:    e,
		resume: make(chan Time),
		yield:  make(chan struct{}),
		rng:    NewRNG(seed),
	}
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killToken); !ok {
					// A panic here is on the proc goroutine, where no
					// harness can recover it. Wrap it with sim context
					// and hand it to the engine, which re-raises it on
					// its own goroutine (see Engine.dispatch).
					pe, ok := r.(*PanicError)
					if !ok {
						pe = &PanicError{ProcID: p.ID, Cycle: e.now,
							LocalClk: p.clock, EventSeq: e.curSeq,
							Value: r, Stack: stack()}
					}
					e.fatal = pe
				}
			}
			p.state = procDone
			p.yield <- struct{}{}
		}()
		t := <-p.resume
		p.clock = t
		if !p.killed {
			fn(p)
		}
	}()
	p.state = procBlocked
	p.blockReason = "waiting to start"
	e.At(start, func() { e.dispatch(p, start) })
	return p
}

// dispatch hands control to p until it yields again. Must run inside an
// engine event. If the proc's goroutine died in a panic, the wrapped
// *PanicError is re-raised here — on the engine goroutine — so it unwinds
// through Run to a caller that can recover it.
func (e *Engine) dispatch(p *Proc, t Time) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.resume <- t
	<-p.yield
	if e.fatal != nil {
		pe := e.fatal
		e.fatal = nil
		panic(pe)
	}
}

// park yields control back to the engine and blocks until woken, returning
// the wake time.
func (p *Proc) park(reason string) Time {
	p.state = procBlocked
	p.blockReason = reason
	p.blockSince = p.eng.Now()
	p.yield <- struct{}{}
	t := <-p.resume
	if p.killed {
		panic(killToken{})
	}
	p.state = procRunning
	return t
}

// Kill unwinds a blocked proc: its goroutine exits without running further
// user code. Kill must only be called while the engine is idle (Run has
// returned); it is a no-op on running or finished procs.
func (p *Proc) Kill() {
	if p.state != procBlocked {
		return
	}
	p.killed = true
	p.state = procRunning
	p.resume <- 0
	<-p.yield
}

// KillAll unwinds every blocked proc. Call after Run returns to tear a
// simulation down without leaking goroutines.
func (e *Engine) KillAll() {
	for _, p := range e.procs {
		p.Kill()
	}
}

// Sync parks the proc until global time reaches its local clock. After
// Sync returns, eng.Now() == p.Clock() and the proc may safely perform an
// action on shared simulated state timestamped at its local clock.
func (p *Proc) Sync() {
	if p.clock < p.eng.Now() {
		// The proc fell behind global time (it was woken by an event
		// that completed later than its local clock): jump forward.
		p.clock = p.eng.Now()
		return
	}
	if p.clock == p.eng.Now() {
		return
	}
	e, t := p.eng, p.clock
	e.At(t, func() { e.dispatch(p, t) })
	p.clock = p.park("advancing clock")
}

// Block parks the proc until some event calls WakeAt. It returns the wake
// time and sets the local clock to it. reason is used in deadlock reports.
func (p *Proc) Block(reason string) Time {
	t := p.park(reason)
	p.clock = t
	return t
}

// WakeAt schedules p (which must be blocked via Block) to resume at time t.
// It must be called from engine context, i.e. inside an event callback.
func (p *Proc) WakeAt(t Time) {
	e := p.eng
	e.At(t, func() { e.dispatch(p, t) })
}

// Clock returns the proc's local time.
func (p *Proc) Clock() Time { return p.clock }

// Work advances the local clock by n cycles of purely local computation.
func (p *Proc) Work(n Time) { p.clock += n }

// RNG returns the proc's deterministic random number generator.
func (p *Proc) RNG() *RNG { return &p.rng }

// Status reports the proc's scheduling state for diagnostics: done means
// the thread function returned (or the proc was killed); blocked means it
// is parked waiting for a wake, with the reason and the cycle it parked.
func (p *Proc) Status() (blocked bool, reason string, since Time, done bool) {
	switch p.state {
	case procBlocked:
		return true, p.blockReason, p.blockSince, false
	case procDone:
		return false, "", 0, true
	}
	return false, "", 0, false
}

func (p *Proc) describe() string {
	return fmt.Sprintf("proc %d: %s (since cycle %d, local clock %d)",
		p.ID, p.blockReason, p.blockSince, p.clock)
}
