package sim

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Each proc owns one so that simulations are reproducible regardless of
// interleaving.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) RNG { return RNG{state: seed + 0x9e3779b97f4a7c15} }

// Next returns the next 64-bit pseudo-random value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). n must be non-zero.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Next() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}
