package sim

import "testing"

// The kernel microbenchmarks below are the tracked host-performance
// baseline for the simulator (see EXPERIMENTS.md "Host performance"):
// wall-clock ns/op here is nanoseconds of host time per simulated event
// or per proc handoff. Run with
//
//	go test ./internal/sim -bench=. -benchmem
//
// and compare against the table recorded in EXPERIMENTS.md before
// touching the engine or proc hot paths.

// BenchmarkEventChainDelay1 measures the heap path: a chain of events
// each scheduling its successor one cycle later, so the queue stays
// shallow and every event pays one push and one pop.
func BenchmarkEventChainDelay1(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventChainZeroDelay measures the same-cycle path: every event
// schedules its successor with After(0), the dominant pattern in
// coherence message hops and proc wakes.
func BenchmarkEventChainZeroDelay(b *testing.B) {
	e := NewEngine()
	e.StallLimit = 0 // the chain intentionally stays at one cycle
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(0, tick)
		}
	}
	e.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventQueueDepth256 measures heap churn at a realistic pending
// depth: 256 in-flight events with deterministic pseudo-random delays
// (coherence traffic across many lines), each pop scheduling one push.
func BenchmarkEventQueueDepth256(b *testing.B) {
	e := NewEngine()
	rng := NewRNG(42)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1+rng.Uint64n(64), tick)
		}
	}
	for i := 0; i < 256; i++ {
		e.After(1+rng.Uint64n(64), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSyncSolo measures a lone proc advancing its clock with
// Work(1)+Sync in a loop — the local-compute hot path of every simulated
// thread. Nothing else is scheduled, so the engine has no reason to run
// any other event between syncs.
func BenchmarkProcSyncSolo(b *testing.B) {
	e := NewEngine()
	e.Spawn(0, 0, 1, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Work(1)
			p.Sync()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSyncPingPong measures the full engine<->proc handoff: two
// procs interleave cycle by cycle, so every Sync must park and be woken
// by an engine event.
func BenchmarkProcSyncPingPong(b *testing.B) {
	e := NewEngine()
	for id := 0; id < 2; id++ {
		e.Spawn(id, 0, uint64(id+1), func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Work(1)
				p.Sync()
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcBlockWake measures the Block/WakeAt handoff used by the
// coherence protocol to resume a thread when its miss completes.
func BenchmarkProcBlockWake(b *testing.B) {
	e := NewEngine()
	p := e.Spawn(0, 0, 1, func(p *Proc) {
		for {
			p.Block("bench wait")
		}
	})
	n := 0
	var tick func()
	tick = func() {
		p.WakeAt(e.Now())
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ReportAllocs()
	b.ResetTimer()
	// The proc blocks forever after the last wake, so a drained queue is
	// reported as a (benign, expected) deadlock here.
	if err := e.Run(uint64(b.N) + 2); err != nil {
		if _, ok := err.(*DeadlockError); !ok {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.KillAll()
}
