package sim

import (
	"fmt"
	"runtime/debug"
)

// PanicError wraps a panic that escaped simulation code with the sim
// context needed to debug it: the simulated cycle, the sequence number of
// the event being executed, and the proc involved (-1 for panics raised in
// engine-event context, e.g. inside the coherence protocol).
//
// Panics on proc goroutines cannot unwind into a harness's recover (they
// are on the wrong goroutine), so the Spawn wrapper captures them, parks
// the proc as done, and the engine re-raises the PanicError on its own
// goroutine — the one Run's caller can recover on.
type PanicError struct {
	ProcID   int    // panicking proc, or -1 for engine-event context
	Cycle    Time   // simulated time of the panic
	LocalClk Time   // panicking proc's local clock (0 for engine context)
	EventSeq uint64 // sequence number of the event being executed
	Value    interface{}
	Stack    []byte // goroutine stack captured at the panic site
}

func (e *PanicError) Error() string {
	where := "engine event"
	if e.ProcID >= 0 {
		where = fmt.Sprintf("proc %d (local clock %d)", e.ProcID, e.LocalClk)
	}
	return fmt.Sprintf("sim: panic in %s at cycle %d (event seq %d): %v",
		where, e.Cycle, e.EventSeq, e.Value)
}

// Unwrap exposes an underlying error panic value, if any.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

func stack() []byte { return debug.Stack() }
