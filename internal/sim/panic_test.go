package sim

import (
	"strings"
	"testing"
)

// recoverPanicError runs fn and returns the *PanicError it panics with
// (nil if fn returns normally or panics with something else).
func recoverPanicError(t *testing.T, fn func()) (pe *PanicError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		if pe, ok = r.(*PanicError); !ok {
			t.Fatalf("panic value = %T (%v), want *PanicError", r, r)
		}
	}()
	fn()
	return nil
}

func TestProcPanicCarriesContext(t *testing.T) {
	e := NewEngine()
	e.Spawn(3, 0, 1, func(p *Proc) {
		p.Work(50)
		p.Sync()
		panic("boom")
	})
	pe := recoverPanicError(t, func() { e.Drain() })
	if pe == nil {
		t.Fatal("proc panic did not reach the engine caller")
	}
	if pe.ProcID != 3 {
		t.Errorf("ProcID = %d, want 3", pe.ProcID)
	}
	if pe.Cycle != 50 {
		t.Errorf("Cycle = %d, want 50", pe.Cycle)
	}
	if pe.Value != "boom" {
		t.Errorf("Value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "proc 3") || !strings.Contains(pe.Error(), "cycle 50") {
		t.Errorf("Error() = %q, missing context", pe.Error())
	}
}

func TestEventPanicCarriesContext(t *testing.T) {
	e := NewEngine()
	e.At(10, func() { panic("evt") })
	pe := recoverPanicError(t, func() { e.Drain() })
	if pe == nil {
		t.Fatal("event panic not wrapped")
	}
	if pe.ProcID != -1 {
		t.Errorf("ProcID = %d, want -1 (engine context)", pe.ProcID)
	}
	if pe.Cycle != 10 {
		t.Errorf("Cycle = %d, want 10", pe.Cycle)
	}
}

func TestPanicErrorNotDoubleWrapped(t *testing.T) {
	e := NewEngine()
	inner := &PanicError{ProcID: 7, Cycle: 1, Value: "inner"}
	e.At(5, func() { panic(inner) })
	pe := recoverPanicError(t, func() { e.Drain() })
	if pe != inner {
		t.Fatalf("wrapped an already-wrapped PanicError: %v", pe)
	}
}

// After a proc panic, the remaining blocked procs must still be killable
// so a harness can tear the simulation down without leaking goroutines.
func TestKillAllAfterProcPanic(t *testing.T) {
	e := NewEngine()
	cleaned := false
	e.Spawn(0, 0, 1, func(p *Proc) {
		defer func() { cleaned = true }()
		p.Block("forever")
	})
	e.Spawn(1, 5, 2, func(p *Proc) { panic("die") })
	if pe := recoverPanicError(t, func() { e.Drain() }); pe == nil {
		t.Fatal("expected a PanicError")
	}
	e.KillAll()
	if !cleaned {
		t.Fatal("blocked proc was not unwound after panic")
	}
}
