package sim

// This file is the windowed executor's self-observability layer: counters
// the coordinator accumulates at barriers (where every shard is parked, so
// no synchronization is needed) digested into an EngineStats snapshot.
// Every field is derived from simulated structure — window bounds, event
// counts, inbox sizes — never from wall-clock time, so for a given seed
// and shard count the stats are as deterministic as the simulation itself.

// engineCounters is the raw accumulator behind Engine.Stats.
type engineCounters struct {
	windows      uint64
	barriers     uint64
	windowCycles uint64 // sum of (windowEnd - T0) over executed windows
	stallCycles  uint64 // window cycles spent by shards parked with no work
	merged       uint64 // cross-shard inbox events merged at barriers
	active       []uint64
}

// ShardStat is one shard's slice of an EngineStats snapshot.
type ShardStat struct {
	// Events is the number of events the shard executed.
	Events uint64 `json:"events"`
	// ActiveWindows is the number of windows in which the shard had at
	// least one event due before the horizon.
	ActiveWindows uint64 `json:"active_windows"`
	// Utilization is ActiveWindows divided by the total window count.
	Utilization float64 `json:"utilization"`
}

// EngineStats is a snapshot of the windowed parallel executor's
// self-observability counters (Engine.Stats). For a sequential engine all
// window/barrier counters are zero. Every field is deterministic per seed
// and shard count; none is wall-clock derived.
type EngineStats struct {
	// Shards is the effective shard count.
	Shards int `json:"shards"`
	// Lookahead is the conservative window width in cycles.
	Lookahead uint64 `json:"lookahead"`
	// Windows is the number of parallel windows executed.
	Windows uint64 `json:"windows"`
	// Barriers is the number of window barriers crossed.
	Barriers uint64 `json:"barriers"`
	// BarrierStallCycles is the total simulated cycles shards spent parked
	// at a barrier with no work due inside the window — the deterministic
	// load-imbalance cost of the conservative schedule.
	BarrierStallCycles uint64 `json:"barrier_stall_cycles"`
	// WindowCycles is the total simulated cycles covered by executed
	// windows (each window contributes windowEnd − T0).
	WindowCycles uint64 `json:"window_cycles"`
	// LookaheadOccupancy is WindowCycles / (Windows × Lookahead): 1.0
	// means every window used the full lookahead horizon; lower values
	// mean stop-time-clipped windows.
	LookaheadOccupancy float64 `json:"lookahead_occupancy"`
	// CrossShardMerged is the number of cross-shard events merged from
	// inboxes into destination heaps at barriers.
	CrossShardMerged uint64 `json:"cross_shard_merged"`
	// EventsTotal is the total events executed across all shards.
	EventsTotal uint64 `json:"events_total"`
	// ImbalanceRatio is max(per-shard events) / mean(per-shard events);
	// 1.0 is a perfectly balanced partition.
	ImbalanceRatio float64 `json:"imbalance_ratio"`
	// PerShard is the per-shard breakdown, indexed by shard id (shard 0
	// is the system side).
	PerShard []ShardStat `json:"per_shard"`
}

// SetBarrierHook registers fn to run on the coordinating goroutine at
// every window barrier of a windowed run, after all shards have parked.
// The hook observes a quiescent engine — no shard executes while it runs,
// and everything the shards wrote during the window happens-before it.
// The telemetry layer uses it to drain per-shard event buffers in
// canonical order. It has no effect on a sequential engine.
func (e *Engine) SetBarrierHook(fn func()) { e.barrierHook = fn }

// Stats digests the executor's self-observability counters. It must be
// called while the engine is idle (between Runs or after the last one).
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Shards:             len(e.shards),
		Lookahead:          e.lookahead,
		Windows:            e.stats.windows,
		Barriers:           e.stats.barriers,
		BarrierStallCycles: e.stats.stallCycles,
		WindowCycles:       e.stats.windowCycles,
		CrossShardMerged:   e.stats.merged,
	}
	if st.Windows > 0 && st.Lookahead > 0 {
		st.LookaheadOccupancy = float64(st.WindowCycles) / float64(st.Windows*st.Lookahead)
	}
	var maxEvents uint64
	for i, s := range e.shards {
		ss := ShardStat{Events: s.eventCount}
		if i < len(e.stats.active) {
			ss.ActiveWindows = e.stats.active[i]
		}
		if st.Windows > 0 {
			ss.Utilization = float64(ss.ActiveWindows) / float64(st.Windows)
		}
		st.EventsTotal += ss.Events
		if ss.Events > maxEvents {
			maxEvents = ss.Events
		}
		st.PerShard = append(st.PerShard, ss)
	}
	if st.EventsTotal > 0 && len(e.shards) > 0 {
		mean := float64(st.EventsTotal) / float64(len(e.shards))
		st.ImbalanceRatio = float64(maxEvents) / mean
	}
	return st
}
