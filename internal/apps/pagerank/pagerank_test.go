package pagerank

import (
	"math"
	"testing"

	"leaserelease/internal/machine"
)

func run(t *testing.T, threads int, leaseTime uint64) (*machine.Machine, *Pagerank) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(threads))
	cfg := DefaultConfig(threads)
	cfg.Nodes = 128
	cfg.Iterations = 3
	cfg.LeaseTime = leaseTime
	p := New(m.Direct(), cfg)
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) { p.Run(c, i) })
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestPagerankMatchesReference(t *testing.T) {
	for _, threads := range []int{1, 4} {
		for _, lease := range []uint64{0, 20000} {
			m, p := run(t, threads, lease)
			got := p.Ranks(m.Direct())
			want := p.Reference(m.Direct())
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("threads=%d lease=%d: rank[%d] = %v, want %v",
						threads, lease, v, got[v], want[v])
				}
			}
		}
	}
}

func TestPagerankRanksSumToOne(t *testing.T) {
	m, p := run(t, 4, 20000)
	var sum float64
	for _, r := range p.Ranks(m.Direct()) {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += r
	}
	// Fixed-point truncation loses a little mass each iteration; the
	// dangling redistribution keeps most of it.
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("rank sum = %v, want ~1", sum)
	}
}

func TestPagerankDanglingContention(t *testing.T) {
	// The dangling accumulator must actually be contended: with 4 threads
	// the lock sees one critical section per dangling page per iteration.
	m := machine.New(machine.DefaultConfig(4))
	cfg := DefaultConfig(4)
	cfg.Nodes = 128
	cfg.Iterations = 2
	p := New(m.Direct(), cfg)
	crit := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) { crit[i] = p.Run(c, i) })
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range crit {
		total += c
	}
	wantPerIter := int(float64(cfg.Nodes) * cfg.DanglingFrac)
	if total != wantPerIter*cfg.Iterations {
		t.Fatalf("critical sections = %d, want %d", total, wantPerIter*cfg.Iterations)
	}
}

// TestPagerankLeaseSpeedup reproduces Figure 5 (right)'s direction: the
// leased dangling lock speeds up the whole application at high thread
// counts.
func TestPagerankLeaseSpeedup(t *testing.T) {
	duration := func(leaseTime uint64) uint64 {
		m := machine.New(machine.DefaultConfig(16))
		cfg := DefaultConfig(16)
		cfg.Nodes = 512
		cfg.Iterations = 2
		cfg.LeaseTime = leaseTime
		p := New(m.Direct(), cfg)
		for i := 0; i < 16; i++ {
			i := i
			m.Spawn(0, func(c *machine.Ctx) { p.Run(c, i) })
		}
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	base := duration(0)
	leased := duration(20000)
	if leased >= base {
		t.Fatalf("leased pagerank %d cycles >= base %d cycles at 16 threads", leased, base)
	}
}
