// Package pagerank reproduces the paper's Figure 5 (right) application: the
// lock-based Pagerank of the CRONO benchmark suite [2], in which "the
// variable corresponding to inaccessible pages in the web graph (around
// 25%) is protected by a contended lock". Each iteration, every thread
// adds the rank mass of its dangling (no-outlink) pages into one shared
// accumulator under a global try-lock — the contention hotspot that the
// lease removes.
//
// Ranks are 34.30 fixed-point words in simulated memory; the graph is a
// synthetic uniform random web graph in CSR (incoming-edge) form built at
// setup time.
package pagerank

import (
	"leaserelease/internal/locks"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// fixed-point scale for ranks.
const (
	frac    = 30
	oneFix  = 1 << frac
	damping = (85 * oneFix) / 100 // d = 0.85
)

func mulFix(a, b uint64) uint64 { return (a * b) >> frac }

// Config sizes the synthetic web graph and the run.
type Config struct {
	Nodes        int
	AvgInDegree  int
	DanglingFrac float64 // fraction of pages with no out-links (paper: ~0.25)
	Iterations   int
	Threads      int
	// LeaseTime leases the dangling-sum lock per critical section
	// (0 = base implementation).
	LeaseTime uint64
}

// DefaultConfig mirrors the paper's setup shape.
func DefaultConfig(threads int) Config {
	return Config{
		Nodes:        512,
		AvgInDegree:  8,
		DanglingFrac: 0.25,
		Iterations:   4,
		Threads:      threads,
	}
}

// Pagerank holds the simulated-memory state of one run.
type Pagerank struct {
	cfg Config

	rank     mem.Addr // [n] current ranks
	next     mem.Addr // [n] next-iteration ranks
	outDeg   mem.Addr // [n] out-degrees (0 = dangling)
	rowPtr   mem.Addr // [n+1] CSR offsets of incoming edges
	colIdx   mem.Addr // [m] incoming-edge sources
	dangling mem.Addr // shared dangling-rank accumulator (the hotspot)

	lock    locks.TryLock
	barrier *locks.Barrier

	nEdges int
}

// New builds the graph and initial ranks via the untimed setup accessor.
func New(d *machine.Direct, cfg Config) *Pagerank {
	n := cfg.Nodes
	p := &Pagerank{cfg: cfg}
	p.rank = d.Alloc(uint64(8 * n))
	p.next = d.Alloc(uint64(8 * n))
	p.outDeg = d.Alloc(uint64(8 * n))
	p.rowPtr = d.Alloc(uint64(8 * (n + 1)))
	p.dangling = d.Alloc(8)
	var inner locks.TryLock = locks.NewTTS(d)
	if cfg.LeaseTime > 0 {
		inner = locks.NewLeased(inner, cfg.LeaseTime)
	}
	p.lock = inner
	p.barrier = locks.NewBarrier(d, cfg.Threads)

	// Choose dangling pages, then draw incoming edges whose sources are
	// non-dangling pages.
	r := d.Rand()
	danglingSet := make([]bool, n)
	nDangling := int(float64(n) * cfg.DanglingFrac)
	for c := 0; c < nDangling; {
		i := r.Intn(n)
		if !danglingSet[i] {
			danglingSet[i] = true
			c++
		}
	}
	var sources []int
	for i := 0; i < n; i++ {
		if !danglingSet[i] {
			sources = append(sources, i)
		}
	}
	inEdges := make([][]int, n)
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		k := 1 + r.Intn(2*cfg.AvgInDegree-1)
		for e := 0; e < k; e++ {
			u := sources[r.Intn(len(sources))]
			inEdges[v] = append(inEdges[v], u)
			outDeg[u]++
			p.nEdges++
		}
	}
	p.colIdx = d.Alloc(uint64(8 * p.nEdges))
	off := 0
	initRank := uint64(oneFix / uint64(n))
	for v := 0; v < n; v++ {
		d.Store(p.rowPtr+mem.Addr(8*v), uint64(off))
		for _, u := range inEdges[v] {
			d.Store(p.colIdx+mem.Addr(8*off), uint64(u))
			off++
		}
		d.Store(p.outDeg+mem.Addr(8*v), uint64(outDeg[v]))
		d.Store(p.rank+mem.Addr(8*v), initRank)
	}
	d.Store(p.rowPtr+mem.Addr(8*n), uint64(off))
	return p
}

// Run executes all iterations as thread tid (0-based). Every configured
// thread must call Run concurrently. It returns the number of dangling
// critical sections this thread executed.
func (p *Pagerank) Run(x machine.API, tid int) int {
	n := p.cfg.Nodes
	h := p.barrier.NewHandle()
	lo := tid * n / p.cfg.Threads
	hi := (tid + 1) * n / p.cfg.Threads
	criticals := 0
	for it := 0; it < p.cfg.Iterations; it++ {
		// Phase A: accumulate dangling rank mass under the global lock —
		// one critical section per owned dangling page, as in CRONO.
		for v := lo; v < hi; v++ {
			if x.Load(p.outDeg+mem.Addr(8*v)) == 0 {
				p.lock.Lock(x)
				x.Store(p.dangling, x.Load(p.dangling)+x.Load(p.rank+mem.Addr(8*v)))
				p.lock.Unlock(x)
				criticals++
			}
		}
		p.barrier.Wait(x, h)

		// Phase B: pull-style rank update over incoming edges.
		dShare := mulFix(damping, x.Load(p.dangling)) / uint64(n)
		base := (oneFix - damping) / uint64(n)
		for v := lo; v < hi; v++ {
			start := x.Load(p.rowPtr + mem.Addr(8*v))
			end := x.Load(p.rowPtr + mem.Addr(8*(v+1)))
			var sum uint64
			for e := start; e < end; e++ {
				u := x.Load(p.colIdx + mem.Addr(8*e))
				sum += x.Load(p.rank+mem.Addr(8*u)) / x.Load(p.outDeg+mem.Addr(8*u))
			}
			x.Store(p.next+mem.Addr(8*v), base+mulFix(damping, sum)+dShare)
		}
		p.barrier.Wait(x, h)

		// Phase C: publish next -> rank; thread 0 resets the accumulator.
		for v := lo; v < hi; v++ {
			x.Store(p.rank+mem.Addr(8*v), x.Load(p.next+mem.Addr(8*v)))
		}
		if tid == 0 {
			x.Store(p.dangling, 0)
		}
		p.barrier.Wait(x, h)
	}
	return criticals
}

// Ranks reads back all ranks as float64 (test oracle).
func (p *Pagerank) Ranks(d *machine.Direct) []float64 {
	out := make([]float64, p.cfg.Nodes)
	for v := range out {
		out[v] = float64(d.Load(p.rank+mem.Addr(8*v))) / float64(oneFix)
	}
	return out
}

// Reference computes the same fixed-point iteration sequentially in Go
// (test oracle).
func (p *Pagerank) Reference(d *machine.Direct) []float64 {
	n := p.cfg.Nodes
	rank := make([]uint64, n)
	next := make([]uint64, n)
	outDeg := make([]uint64, n)
	rowPtr := make([]uint64, n+1)
	for v := 0; v < n; v++ {
		rank[v] = uint64(oneFix / uint64(n))
		outDeg[v] = d.Load(p.outDeg + mem.Addr(8*v))
		rowPtr[v] = d.Load(p.rowPtr + mem.Addr(8*v))
	}
	rowPtr[n] = d.Load(p.rowPtr + mem.Addr(8*n))
	for it := 0; it < p.cfg.Iterations; it++ {
		var dangling uint64
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		dShare := mulFix(damping, dangling) / uint64(n)
		base := (oneFix - damping) / uint64(n)
		for v := 0; v < n; v++ {
			var sum uint64
			for e := rowPtr[v]; e < rowPtr[v+1]; e++ {
				u := d.Load(p.colIdx + mem.Addr(8*e))
				sum += rank[u] / outDeg[u]
			}
			next[v] = base + mulFix(damping, sum) + dShare
		}
		copy(rank, next)
	}
	out := make([]float64, n)
	for v := range out {
		out[v] = float64(rank[v]) / float64(oneFix)
	}
	return out
}
