package cache

import (
	"testing"
	"testing/quick"

	"leaserelease/internal/mem"
)

// tiny returns a 4-line, 2-way cache (2 sets) for eviction tests.
func tiny() *Cache { return New(Config{SizeBytes: 4 * mem.LineSize, Ways: 2}) }

func TestLookupStates(t *testing.T) {
	c := tiny()
	l := mem.Line(8)
	if c.Lookup(l, false) {
		t.Fatal("hit on empty cache")
	}
	c.Install(l, Shared)
	if !c.Lookup(l, false) {
		t.Fatal("read miss on Shared line")
	}
	if c.Lookup(l, true) {
		t.Fatal("write hit on Shared line")
	}
	c.Install(l, Modified)
	if !c.Lookup(l, true) || !c.Lookup(l, false) {
		t.Fatal("miss on Modified line")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Lines 0, 2, 4 map to set 0 (2 sets => even lines to set 0).
	c.Install(mem.Line(0), Shared)
	c.Install(mem.Line(2), Shared)
	c.Lookup(mem.Line(0), false) // make line 2 the LRU
	v, st, ev := c.Install(mem.Line(4), Modified)
	if !ev || v != mem.Line(2) || st != Shared {
		t.Fatalf("evicted (%v,%v,%v), want line 2 Shared", v, st, ev)
	}
	if c.State(mem.Line(0)) != Shared || c.State(mem.Line(4)) != Modified {
		t.Fatal("survivors have wrong state")
	}
}

func TestPinnedNotEvicted(t *testing.T) {
	c := tiny()
	c.Install(mem.Line(0), Modified)
	c.Pin(mem.Line(0))
	c.Install(mem.Line(2), Shared)
	c.Lookup(mem.Line(2), false)
	// Line 0 is LRU but pinned: line 2 must be the victim.
	v, _, ev := c.Install(mem.Line(4), Shared)
	if !ev || v != mem.Line(2) {
		t.Fatalf("victim = (%v, %v), want line 2", v, ev)
	}
	if c.State(mem.Line(0)) != Modified {
		t.Fatal("pinned line was evicted")
	}
}

func TestAllPinnedDetected(t *testing.T) {
	c := tiny()
	c.Install(mem.Line(0), Modified)
	c.Install(mem.Line(2), Modified)
	c.Pin(mem.Line(0))
	c.Pin(mem.Line(2))
	_, _, allPinned := c.Victim(mem.Line(4))
	if !allPinned {
		t.Fatal("Victim did not report fully pinned set")
	}
	defer func() {
		if recover() == nil {
			t.Error("Install into fully pinned set did not panic")
		}
	}()
	c.Install(mem.Line(4), Shared)
}

func TestDowngrade(t *testing.T) {
	c := tiny()
	c.Install(mem.Line(1), Modified)
	c.Downgrade(mem.Line(1), Shared)
	if c.State(mem.Line(1)) != Shared {
		t.Fatal("M->S downgrade failed")
	}
	c.Downgrade(mem.Line(1), Invalid)
	if c.State(mem.Line(1)) != Invalid {
		t.Fatal("S->I downgrade failed")
	}
	c.Downgrade(mem.Line(99), Invalid) // absent: must not panic
}

func TestDowngradeClearsPin(t *testing.T) {
	c := tiny()
	c.Install(mem.Line(1), Modified)
	c.Pin(mem.Line(1))
	c.Downgrade(mem.Line(1), Invalid)
	if c.Pinned(mem.Line(1)) {
		t.Fatal("pin survived invalidation")
	}
}

func TestInstallUpgradesInPlace(t *testing.T) {
	c := tiny()
	c.Install(mem.Line(0), Shared)
	_, _, ev := c.Install(mem.Line(0), Modified)
	if ev {
		t.Fatal("upgrade evicted something")
	}
	if c.State(mem.Line(0)) != Modified {
		t.Fatal("upgrade did not stick")
	}
}

func TestStatsCount(t *testing.T) {
	c := tiny()
	c.Lookup(mem.Line(0), false) // miss
	c.Install(mem.Line(0), Shared)
	c.Lookup(mem.Line(0), false) // hit
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid geometry did not panic")
		}
	}()
	New(Config{SizeBytes: 3 * mem.LineSize, Ways: 2})
}

// TestVsModel drives random installs/lookups/downgrades against a map-based
// model of a fully-associative-per-set cache and checks state agreement.
func TestVsModel(t *testing.T) {
	type op struct {
		Kind byte
		L    uint8
	}
	f := func(ops []op) bool {
		c := New(Config{SizeBytes: 8 * mem.LineSize, Ways: 4}) // 2 sets
		model := map[mem.Line]State{}
		inSet := func(set uint64) []mem.Line {
			var ls []mem.Line
			for l := range model {
				if uint64(l)&1 == set {
					ls = append(ls, l)
				}
			}
			return ls
		}
		for _, o := range ops {
			l := mem.Line(o.L % 16)
			switch o.Kind % 3 {
			case 0: // install M
				c.Install(l, Modified)
				if len(inSet(uint64(l)&1)) >= 4 {
					// An eviction happened; drop whatever the cache dropped.
					for k := range model {
						if uint64(k)&1 == uint64(l)&1 && c.State(k) == Invalid {
							delete(model, k)
						}
					}
				}
				model[l] = Modified
			case 1: // downgrade to I
				c.Downgrade(l, Invalid)
				delete(model, l)
			case 2: // downgrade to S
				c.Downgrade(l, Shared)
				if model[l] == Modified {
					model[l] = Shared
				}
			}
			if got, want := c.State(l), model[l]; got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
