// Package cache models a private set-associative write-back L1 cache with
// MSI line states and LRU replacement, matching the paper's Table 1
// configuration (32 KB, 4-way, 64-byte lines by default).
//
// The cache tracks coherence state and replacement only; architectural data
// lives in the shared mem.Store. Lines may be pinned while leased so that
// replacement never silently drops a leased line.
package cache

import (
	"fmt"

	"leaserelease/internal/mem"
	"leaserelease/internal/telemetry"
)

// State is an MSI cache line state.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: read permission; other caches may also hold the line.
	Shared
	// Modified: exclusive read/write permission ("M" covers the MSI
	// protocol's single exclusive/dirty state).
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Config sizes an L1 cache.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
}

// DefaultConfig is the paper's L1: 32 KB, 4-way, 64 B lines.
func DefaultConfig() Config { return Config{SizeBytes: 32 * 1024, Ways: 4} }

type way struct {
	line   mem.Line
	state  State
	pinned bool
	lru    uint64 // larger = more recently used
}

// Cache is one core's private L1.
type Cache struct {
	cfg     Config
	sets    [][]way
	setMask uint64
	tick    uint64

	// Stats
	Hits, Misses, Evictions uint64

	// Bus, when set, receives a telemetry.CatCache event for every
	// replacement victim (kind = the victim's state, CoreID = this
	// cache's core). Dom is the owning core's scheduling domain — the
	// emit context that routes buffered events to the right shard under
	// the parallel executor (evictions always run on the core's own
	// domain). The machine wires all three when telemetry is enabled.
	Bus    *telemetry.Bus
	CoreID int
	Dom    telemetry.DomainContext
}

// New builds an L1 from cfg. The number of sets must come out a power of
// two; New panics otherwise (configuration error).
func New(cfg Config) *Cache {
	nLines := cfg.SizeBytes / mem.LineSize
	if cfg.Ways <= 0 || nLines <= 0 || nLines%cfg.Ways != 0 {
		panic("cache: invalid geometry")
	}
	nSets := nLines / cfg.Ways
	if nSets&(nSets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	sets := make([][]way, nSets)
	backing := make([]way, nSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nSets - 1)}
}

func (c *Cache) set(l mem.Line) []way { return c.sets[uint64(l)&c.setMask] }

func (c *Cache) find(l mem.Line) *way {
	s := c.set(l)
	for i := range s {
		if s[i].state != Invalid && s[i].line == l {
			return &s[i]
		}
	}
	return nil
}

// State returns the line's current state (Invalid if absent).
func (c *Cache) State(l mem.Line) State {
	if w := c.find(l); w != nil {
		return w.state
	}
	return Invalid
}

// Lookup checks whether the cache can satisfy an access: Shared or Modified
// for reads, Modified for writes. On a hit it refreshes LRU and returns
// true.
func (c *Cache) Lookup(l mem.Line, write bool) bool {
	w := c.find(l)
	ok := w != nil && (w.state == Modified || (!write && w.state == Shared))
	if ok {
		c.tick++
		w.lru = c.tick
		c.Hits++
	} else {
		c.Misses++
	}
	return ok
}

// Victim reports the line that Install would evict to make room for l, or
// (0, false) if no eviction is needed (line already present, or a free way
// exists). Pinned ways are never chosen; if every way is pinned, Victim
// returns ok=false and full=true so the caller can force-release a lease.
func (c *Cache) Victim(l mem.Line) (victim mem.Line, evict bool, allPinned bool) {
	if c.find(l) != nil {
		return 0, false, false
	}
	s := c.set(l)
	var lru *way
	for i := range s {
		if s[i].state == Invalid {
			return 0, false, false
		}
		if s[i].pinned {
			continue
		}
		if lru == nil || s[i].lru < lru.lru {
			lru = &s[i]
		}
	}
	if lru == nil {
		return 0, false, true
	}
	return lru.line, true, false
}

// Install places line l in state st, evicting per Victim if needed. It
// returns the evicted line and its prior state; evicted is false when a free
// or matching way was used. Installing when all ways are pinned panics: the
// controller must unpin (force-release) first.
func (c *Cache) Install(l mem.Line, st State) (victim mem.Line, victimState State, evicted bool) {
	if st == Invalid {
		panic("cache: installing Invalid")
	}
	c.tick++
	if w := c.find(l); w != nil {
		w.state = st
		w.lru = c.tick
		return 0, Invalid, false
	}
	s := c.set(l)
	var slot *way
	for i := range s {
		if s[i].state == Invalid {
			slot = &s[i]
			break
		}
	}
	if slot == nil {
		var lru *way
		for i := range s {
			if s[i].pinned {
				continue
			}
			if lru == nil || s[i].lru < lru.lru {
				lru = &s[i]
			}
		}
		if lru == nil {
			panic("cache: all ways pinned; controller must force-release a lease")
		}
		victim, victimState, evicted = lru.line, lru.state, true
		c.Evictions++
		c.Bus.EmitOn(c.Dom, telemetry.CatCache, c.CoreID, uint8(victimState), victim, 1)
		slot = lru
	}
	*slot = way{line: l, state: st, lru: c.tick}
	return victim, victimState, evicted
}

// Downgrade sets the line's state in response to a coherence probe:
// to Shared on a read probe, to Invalid on an ownership probe. Downgrading
// an absent line is a no-op (the probe raced a silent eviction).
func (c *Cache) Downgrade(l mem.Line, to State) {
	w := c.find(l)
	if w == nil {
		return
	}
	if to == Invalid {
		w.state = Invalid
		w.pinned = false
		return
	}
	if to == Shared && w.state == Modified {
		w.state = Shared
	}
}

// Pin marks the line unevictable (it holds an active lease). Pinning an
// absent line panics: leases pin only lines the core owns.
func (c *Cache) Pin(l mem.Line) {
	w := c.find(l)
	if w == nil {
		panic("cache: pinning absent line")
	}
	w.pinned = true
}

// Unpin clears the pin; absent lines are ignored (the lease may have been
// force-released during an eviction).
func (c *Cache) Unpin(l mem.Line) {
	if w := c.find(l); w != nil {
		w.pinned = false
	}
}

// Pinned reports whether the line is present and pinned.
func (c *Cache) Pinned(l mem.Line) bool {
	w := c.find(l)
	return w != nil && w.pinned
}
