package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// LazySkipList is a concurrent skiplist set with fine-grained per-node
// locks and lazy (mark-then-unlink) deletion, after Herlihy & Shavit's
// LazySkipList. It stands in for the paper's fine-grained-locking skiplist
// baselines: Pugh's locking skiplist under the Lotan–Shavit priority queue
// (via DeleteMin) and the skiplist of the low-contention suite (see
// DESIGN.md substitution 3).
//
// Keys must lie in [1, 2^64-2]. Searches are wait-free; updates lock the
// affected predecessor towers and validate.
type LazySkipList struct {
	head mem.Addr
	tail mem.Addr
	// LeaseTime, when nonzero, leases the bottom-level predecessor while
	// its lock is held (the §7 low-contention lease placement). Two
	// placements turned out to be anti-patterns and are deliberately NOT
	// leased: tall routing predecessors (their lease defers every
	// traversal through them) and the removal victim (it stays linked on
	// the traversal path until unlinked, so its lease stalls all passing
	// searches). See EXPERIMENTS.md.
	LeaseTime uint64
}

const (
	lskMaxLevel = 12

	lskKey         = 0
	lskLock        = 8
	lskMarked      = 16
	lskFullyLinked = 24
	lskTopLevel    = 32
	lskNext        = 40 // next[level] at lskNext + 8*level
)

func lskNodeSize() uint64 { return lskNext + 8*lskMaxLevel }

// NewLazySkipList allocates an empty set.
func NewLazySkipList(x machine.API) *LazySkipList {
	s := &LazySkipList{head: x.Alloc(lskNodeSize()), tail: x.Alloc(lskNodeSize())}
	x.Store(s.head+lskKey, 0)
	x.Store(s.tail+lskKey, ^uint64(0))
	x.Store(s.head+lskTopLevel, lskMaxLevel-1)
	x.Store(s.tail+lskTopLevel, lskMaxLevel-1)
	x.Store(s.head+lskFullyLinked, 1)
	x.Store(s.tail+lskFullyLinked, 1)
	for l := 0; l < lskMaxLevel; l++ {
		x.Store(s.head+lskNext+mem.Addr(8*l), uint64(s.tail))
	}
	return s
}

func (s *LazySkipList) next(x machine.API, n mem.Addr, level int) mem.Addr {
	return mem.Addr(x.Load(n + lskNext + mem.Addr(8*level)))
}

// lockNode spin-acquires a node's lock. With leases enabled and
// lease=true, the node line is leased only once the lock is won (so the
// update window and the unlock store stay local). Only the bottom-level
// predecessor (where linking happens) is leased — leasing tall routing
// nodes would defer every traversal through them, the kind of improper
// use §7 warns about.
func (s *LazySkipList) lockNode(x machine.API, n mem.Addr, lease bool) {
	for {
		if x.Load(n+lskLock) == 0 && x.Swap(n+lskLock, 1) == 0 {
			if lease && s.LeaseTime > 0 {
				x.Lease(n, s.LeaseTime)
			}
			return
		}
		x.Work(8)
	}
}

func (s *LazySkipList) unlockNode(x machine.API, n mem.Addr) {
	x.Store(n+lskLock, 0)
	if s.LeaseTime > 0 {
		x.Release(n) // no-op unless this node's line was leased
	}
}

// find locates key's predecessors and successors per level. It returns the
// highest level at which key was found, or -1.
func (s *LazySkipList) find(x machine.API, key uint64, preds, succs *[lskMaxLevel]mem.Addr) int {
	lFound := -1
	pred := s.head
	for level := lskMaxLevel - 1; level >= 0; level-- {
		curr := s.next(x, pred, level)
		for x.Load(curr+lskKey) < key {
			pred = curr
			curr = s.next(x, pred, level)
		}
		if lFound == -1 && x.Load(curr+lskKey) == key {
			lFound = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return lFound
}

// Insert adds key to the set, reporting whether it was absent.
func (s *LazySkipList) Insert(x machine.API, key uint64) bool {
	topLevel := randomLevel(x, lskMaxLevel) - 1
	var preds, succs [lskMaxLevel]mem.Addr
	for {
		lFound := s.find(x, key, &preds, &succs)
		if lFound != -1 {
			nodeFound := succs[lFound]
			if x.Load(nodeFound+lskMarked) == 0 {
				for x.Load(nodeFound+lskFullyLinked) == 0 {
					x.Work(8) // wait for the in-flight insert to link
				}
				return false
			}
			continue // marked: being removed, retry
		}
		// Lock predecessors bottom-up and validate.
		highest := -1
		valid := true
		for level := 0; valid && level <= topLevel; level++ {
			pred, succ := preds[level], succs[level]
			if level == 0 || preds[level-1] != pred {
				s.lockNode(x, pred, level == 0)
			}
			highest = level
			valid = x.Load(pred+lskMarked) == 0 &&
				x.Load(succ+lskMarked) == 0 &&
				s.next(x, pred, level) == succ
		}
		if !valid {
			s.unlockPreds(x, &preds, highest)
			continue
		}
		node := x.Alloc(lskNodeSize())
		x.Store(node+lskKey, key)
		x.Store(node+lskTopLevel, uint64(topLevel))
		for level := 0; level <= topLevel; level++ {
			x.Store(node+lskNext+mem.Addr(8*level), uint64(succs[level]))
		}
		for level := 0; level <= topLevel; level++ {
			x.Store(preds[level]+lskNext+mem.Addr(8*level), uint64(node))
		}
		x.Store(node+lskFullyLinked, 1)
		s.unlockPreds(x, &preds, highest)
		return true
	}
}

// unlockPreds unlocks preds[0..highest], skipping duplicates.
func (s *LazySkipList) unlockPreds(x machine.API, preds *[lskMaxLevel]mem.Addr, highest int) {
	for level := highest; level >= 0; level-- {
		if level == highest || preds[level] != preds[level+1] {
			s.unlockNode(x, preds[level])
		}
	}
}

// Remove deletes key from the set, reporting whether it was present.
func (s *LazySkipList) Remove(x machine.API, key uint64) bool {
	var preds, succs [lskMaxLevel]mem.Addr
	victim := mem.Addr(0)
	isMarked := false
	topLevel := -1
	for {
		lFound := s.find(x, key, &preds, &succs)
		if lFound != -1 {
			victim = succs[lFound]
		}
		if !isMarked {
			if lFound == -1 {
				return false
			}
			if x.Load(victim+lskFullyLinked) == 0 ||
				x.Load(victim+lskMarked) != 0 ||
				int(x.Load(victim+lskTopLevel)) != lFound {
				return false
			}
			topLevel = int(x.Load(victim + lskTopLevel))
			s.lockNode(x, victim, false) // leasing the victim would stall traversals through it
			if x.Load(victim+lskMarked) != 0 {
				s.unlockNode(x, victim)
				return false
			}
			x.Store(victim+lskMarked, 1)
			isMarked = true
		}
		highest := -1
		valid := true
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			if level == 0 || preds[level-1] != pred {
				s.lockNode(x, pred, level == 0)
			}
			highest = level
			valid = x.Load(pred+lskMarked) == 0 && s.next(x, pred, level) == victim
		}
		if !valid {
			s.unlockPreds(x, &preds, highest)
			continue
		}
		for level := topLevel; level >= 0; level-- {
			x.Store(preds[level]+lskNext+mem.Addr(8*level),
				uint64(s.next(x, victim, level)))
		}
		s.unlockNode(x, victim)
		s.unlockPreds(x, &preds, highest)
		return true
	}
}

// Contains reports key membership (wait-free).
func (s *LazySkipList) Contains(x machine.API, key uint64) bool {
	var preds, succs [lskMaxLevel]mem.Addr
	lFound := s.find(x, key, &preds, &succs)
	return lFound != -1 &&
		x.Load(succs[lFound]+lskFullyLinked) == 1 &&
		x.Load(succs[lFound]+lskMarked) == 0
}

// FirstKey returns the smallest unmarked key, or ok=false (used by the
// Lotan–Shavit DeleteMin scan).
func (s *LazySkipList) FirstKey(x machine.API) (uint64, bool) {
	curr := s.next(x, s.head, 0)
	for curr != s.tail {
		if x.Load(curr+lskMarked) == 0 && x.Load(curr+lskFullyLinked) == 1 {
			return x.Load(curr + lskKey), true
		}
		curr = s.next(x, curr, 0)
	}
	return 0, false
}

// DeleteMin implements the Lotan–Shavit priority-queue removal [23]: scan
// the bottom level for the first live node and logically-then-physically
// delete it; on a race, advance to the next candidate.
func (s *LazySkipList) DeleteMin(x machine.API) (uint64, bool) {
	curr := s.next(x, s.head, 0)
	for curr != s.tail {
		k := x.Load(curr + lskKey)
		if x.Load(curr+lskMarked) == 0 && x.Load(curr+lskFullyLinked) == 1 {
			if s.Remove(x, k) {
				return k, true
			}
		}
		curr = s.next(x, curr, 0)
	}
	return 0, false
}

// CheckInvariants validates bottom-level sortedness and tower consistency
// (untimed oracle for tests; call with machine.Direct on a quiescent list).
func (s *LazySkipList) CheckInvariants(x machine.API) error {
	prev := uint64(0)
	for curr := s.next(x, s.head, 0); curr != s.tail; curr = s.next(x, curr, 0) {
		k := x.Load(curr + lskKey)
		if k <= prev {
			return errOutOfOrder
		}
		prev = k
		top := int(x.Load(curr + lskTopLevel))
		for l := 0; l <= top; l++ {
			if s.next(x, curr, l) == 0 {
				return errBrokenTower
			}
		}
	}
	return nil
}

// Len counts live elements (test oracle).
func (s *LazySkipList) Len(x machine.API) int {
	n := 0
	for curr := s.next(x, s.head, 0); curr != s.tail; curr = s.next(x, curr, 0) {
		if x.Load(curr+lskMarked) == 0 {
			n++
		}
	}
	return n
}
