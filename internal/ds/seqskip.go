package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// SeqSkipList is a sequential skiplist on simulated memory, used under a
// single (leased) global lock — the paper's lease-based Lotan–Shavit
// priority queue "relies on a global lock" over a sequential structure.
// Keys must lie in [1, 2^64-2]; smaller key = higher priority.
type SeqSkipList struct {
	head mem.Addr
	tail mem.Addr
}

const (
	seqMaxLevel = 16

	sskKey   = 0
	sskValue = 8
	sskNext  = 16 // next[level] at sskNext + 8*level
)

func seqNodeSize() uint64 { return sskNext + 8*seqMaxLevel }

// NewSeqSkipList allocates an empty list with head/tail sentinels.
func NewSeqSkipList(x machine.API) *SeqSkipList {
	s := &SeqSkipList{head: x.Alloc(seqNodeSize()), tail: x.Alloc(seqNodeSize())}
	x.Store(s.head+sskKey, 0)
	x.Store(s.tail+sskKey, ^uint64(0))
	for l := 0; l < seqMaxLevel; l++ {
		x.Store(s.head+sskNext+mem.Addr(8*l), uint64(s.tail))
	}
	return s
}

// randomLevel draws a geometric tower height from the thread's RNG.
func randomLevel(x machine.API, max int) int {
	lvl := 1
	for lvl < max && x.Rand().Next()&3 == 0 { // p = 1/4
		lvl++
	}
	return lvl
}

// Insert adds key with value v (duplicates allowed for PQ use; a duplicate
// key lands adjacent to its twins).
func (s *SeqSkipList) Insert(x machine.API, key, v uint64) {
	var preds [seqMaxLevel]mem.Addr
	p := s.head
	for l := seqMaxLevel - 1; l >= 0; l-- {
		for {
			n := mem.Addr(x.Load(p + sskNext + mem.Addr(8*l)))
			if x.Load(n+sskKey) < key {
				p = n
				continue
			}
			break
		}
		preds[l] = p
	}
	top := randomLevel(x, seqMaxLevel)
	node := x.Alloc(seqNodeSize())
	x.Store(node+sskKey, key)
	x.Store(node+sskValue, v)
	for l := 0; l < top; l++ {
		next := x.Load(preds[l] + sskNext + mem.Addr(8*l))
		x.Store(node+sskNext+mem.Addr(8*l), next)
		x.Store(preds[l]+sskNext+mem.Addr(8*l), uint64(node))
	}
}

// DeleteMin removes and returns the smallest key; ok=false when empty.
func (s *SeqSkipList) DeleteMin(x machine.API) (key uint64, ok bool) {
	first := mem.Addr(x.Load(s.head + sskNext))
	if first == s.tail {
		return 0, false
	}
	key = x.Load(first + sskKey)
	for l := 0; l < seqMaxLevel; l++ {
		if mem.Addr(x.Load(s.head+sskNext+mem.Addr(8*l))) == first {
			x.Store(s.head+sskNext+mem.Addr(8*l), x.Load(first+sskNext+mem.Addr(8*l)))
		}
	}
	return key, true
}

// Contains reports whether key is present.
func (s *SeqSkipList) Contains(x machine.API, key uint64) bool {
	p := s.head
	for l := seqMaxLevel - 1; l >= 0; l-- {
		for {
			n := mem.Addr(x.Load(p + sskNext + mem.Addr(8*l)))
			if x.Load(n+sskKey) < key {
				p = n
				continue
			}
			break
		}
	}
	n := mem.Addr(x.Load(p + sskNext))
	return x.Load(n+sskKey) == key
}

// Delete removes one instance of key, reporting whether it was found.
func (s *SeqSkipList) Delete(x machine.API, key uint64) bool {
	var preds [seqMaxLevel]mem.Addr
	p := s.head
	for l := seqMaxLevel - 1; l >= 0; l-- {
		for {
			n := mem.Addr(x.Load(p + sskNext + mem.Addr(8*l)))
			if x.Load(n+sskKey) < key {
				p = n
				continue
			}
			break
		}
		preds[l] = p
	}
	victim := mem.Addr(x.Load(preds[0] + sskNext))
	if x.Load(victim+sskKey) != key {
		return false
	}
	for l := 0; l < seqMaxLevel; l++ {
		if mem.Addr(x.Load(preds[l]+sskNext+mem.Addr(8*l))) == victim {
			x.Store(preds[l]+sskNext+mem.Addr(8*l), x.Load(victim+sskNext+mem.Addr(8*l)))
		}
	}
	return true
}

// Min returns the smallest key without removing it; ok=false when empty.
func (s *SeqSkipList) Min(x machine.API) (key uint64, ok bool) {
	first := mem.Addr(x.Load(s.head + sskNext))
	if first == s.tail {
		return 0, false
	}
	return x.Load(first + sskKey), true
}

// Len counts elements via the bottom level (test oracle).
func (s *SeqSkipList) Len(x machine.API) int {
	n := 0
	for p := mem.Addr(x.Load(s.head + sskNext)); p != s.tail; p = mem.Addr(x.Load(p + sskNext)) {
		n++
	}
	return n
}
