package ds

import (
	"leaserelease/internal/locks"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// HashMap is a fixed-size chained hash table with one lock per bucket —
// the paper's "lock-based hash tables" of the low-contention suite
// (modeled on the Java concurrent hash table's striped locking). With
// LeaseTime > 0, each bucket lock uses the §6 leased try-lock pattern.
type HashMap struct {
	buckets []bucket
	mask    uint64
}

type bucket struct {
	lock locks.TryLock
	head mem.Addr // sorted singly-linked chain: [key, value, next]
}

const (
	hmKey   = 0
	hmValue = 8
	hmNext  = 16
	hmSize  = 24
)

// NewHashMap allocates a table with nBuckets (rounded up to a power of
// two). leaseTime > 0 leases bucket locks across critical sections.
func NewHashMap(x machine.API, nBuckets int, leaseTime uint64) *HashMap {
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	h := &HashMap{buckets: make([]bucket, n), mask: uint64(n - 1)}
	for i := range h.buckets {
		var l locks.TryLock = locks.NewTTS(x)
		if leaseTime > 0 {
			l = locks.NewLeased(l, leaseTime)
		}
		h.buckets[i] = bucket{lock: l, head: x.Alloc(8)}
	}
	return h
}

func (h *HashMap) bucket(key uint64) *bucket {
	// Fibonacci hashing spreads adjacent keys across buckets.
	return &h.buckets[(key*0x9e3779b97f4a7c15)>>32&h.mask]
}

// Put inserts or updates key -> v, reporting whether the key was new.
func (h *HashMap) Put(x machine.API, key, v uint64) bool {
	b := h.bucket(key)
	b.lock.Lock(x)
	defer b.lock.Unlock(x)
	prev := b.head
	curr := mem.Addr(x.Load(prev))
	for curr != 0 && x.Load(curr+hmKey) < key {
		prev = curr + hmNext
		curr = mem.Addr(x.Load(prev))
	}
	if curr != 0 && x.Load(curr+hmKey) == key {
		x.Store(curr+hmValue, v)
		return false
	}
	node := x.Alloc(hmSize)
	x.Store(node+hmKey, key)
	x.Store(node+hmValue, v)
	x.Store(node+hmNext, uint64(curr))
	x.Store(prev, uint64(node))
	return true
}

// Get returns the value for key. Reads are lock-free, as in the Java
// concurrent hash table the paper benchmarks: Put links fully-initialized
// nodes and Delete unlinks whole nodes, so a concurrent reader always sees
// a consistent chain.
func (h *HashMap) Get(x machine.API, key uint64) (uint64, bool) {
	b := h.bucket(key)
	curr := mem.Addr(x.Load(b.head))
	for curr != 0 && x.Load(curr+hmKey) < key {
		curr = mem.Addr(x.Load(curr + hmNext))
	}
	if curr != 0 && x.Load(curr+hmKey) == key {
		return x.Load(curr + hmValue), true
	}
	return 0, false
}

// Delete removes key, reporting whether it was present.
func (h *HashMap) Delete(x machine.API, key uint64) bool {
	b := h.bucket(key)
	b.lock.Lock(x)
	defer b.lock.Unlock(x)
	prev := b.head
	curr := mem.Addr(x.Load(prev))
	for curr != 0 && x.Load(curr+hmKey) < key {
		prev = curr + hmNext
		curr = mem.Addr(x.Load(prev))
	}
	if curr != 0 && x.Load(curr+hmKey) == key {
		x.Store(prev, x.Load(curr+hmNext))
		return true
	}
	return false
}

// Len counts all entries (test oracle; quiescent use only).
func (h *HashMap) Len(x machine.API) int {
	n := 0
	for i := range h.buckets {
		for curr := mem.Addr(x.Load(h.buckets[i].head)); curr != 0; curr = mem.Addr(x.Load(curr + hmNext)) {
			n++
		}
	}
	return n
}
