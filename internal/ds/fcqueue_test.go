package ds

import (
	"testing"

	"leaserelease/internal/linearize"
	"leaserelease/internal/machine"
)

func TestFCQueueSequentialFIFO(t *testing.T) {
	m := newM(1)
	q := NewFCQueue(m.Direct(), 1)
	var out []uint64
	var emptyOK bool
	m.Spawn(0, func(c *machine.Ctx) {
		_, ok := q.Dequeue(c, 0)
		emptyOK = !ok
		for i := uint64(1); i <= 6; i++ {
			q.Enqueue(c, 0, i)
		}
		for i := 0; i < 6; i++ {
			v, ok := q.Dequeue(c, 0)
			if !ok {
				t.Error("premature empty")
				return
			}
			out = append(out, v)
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !emptyOK {
		t.Fatal("empty Dequeue returned a value")
	}
	for i, v := range out {
		if v != uint64(i+1) {
			t.Fatalf("FIFO violated: %v", out)
		}
	}
}

func TestFCQueueConservation(t *testing.T) {
	const cores, per = 8, 50
	m := newM(cores)
	q := NewFCQueue(m.Direct(), cores)
	popped := make([][]uint64, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				q.Enqueue(c, i, tag(i, n))
				if v, ok := q.Dequeue(c, i); ok {
					popped[i] = append(popped[i], v)
				}
				c.Work(c.Rand().Uint64n(40))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	total := 0
	for _, ps := range popped {
		for _, v := range ps {
			seen[v]++
			total++
		}
	}
	d := m.Direct()
	for v, ok := q.Dequeue(d, 0); ok; v, ok = q.Dequeue(d, 0) {
		seen[v]++
		total++
	}
	if total != cores*per {
		t.Fatalf("enqueued %d, accounted %d", cores*per, total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
}

func TestFCQueueLinearizable(t *testing.T) {
	m := newM(4)
	q := NewFCQueue(m.Direct(), 4)
	rec := &linearize.Recorder{}
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 4; n++ {
				if c.Rand().Intn(2) == 0 {
					v := tag(i, n)
					inv := c.Now()
					q.Enqueue(c, i, v)
					rec.Record(i, inv, c.Now(), "enq", v, 0, true)
				} else {
					inv := c.Now()
					v, ok := q.Dequeue(c, i)
					rec.Record(i, inv, c.Now(), "deq", 0, v, ok)
				}
				c.Work(c.Rand().Uint64n(64))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !linearize.Check(rec.Ops, linearize.QueueModel()) {
		t.Fatalf("flat-combining queue history not linearizable:\n%v", rec.Ops)
	}
}
