package ds

import (
	"testing"

	"leaserelease/internal/linearize"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// These tests record real timestamped operation histories from the
// simulated machine and check them for linearizability against sequential
// models — for every lease variant, since lease bugs (e.g. a CAS window
// "protected" by an already-expired lease) would manifest as
// non-linearizable results.

// collectQueueHistory runs a small concurrent workload and returns the
// completed-op history (64-op cap for the checker).
func collectQueueHistory(t *testing.T, mode QueueLeaseMode, cores, per int) []linearize.Op {
	t.Helper()
	m := newM(cores)
	q := NewQueue(m.Direct(), QueueOptions{Mode: mode, LeaseTime: 20000})
	rec := &linearize.Recorder{}
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				if c.Rand().Intn(2) == 0 {
					v := tag(i, n)
					inv := c.Now()
					q.Enqueue(c, v)
					rec.Record(i, inv, c.Now(), "enq", v, 0, true)
				} else {
					inv := c.Now()
					v, ok := q.Dequeue(c)
					rec.Record(i, inv, c.Now(), "deq", 0, v, ok)
				}
				c.Work(c.Rand().Uint64n(64))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	return rec.Ops
}

func TestQueueLinearizable(t *testing.T) {
	for _, mode := range []QueueLeaseMode{QueueNoLease, QueueSingleLease, QueueMultiLease} {
		mode := mode
		for seed := 0; seed < 3; seed++ {
			h := collectQueueHistory(t, mode, 4, 4)
			if len(h) > 64 {
				t.Fatalf("history too long: %d", len(h))
			}
			if !linearize.Check(h, linearize.QueueModel()) {
				t.Fatalf("mode %v: queue history not linearizable:\n%v", mode, h)
			}
		}
	}
}

func TestStackLinearizable(t *testing.T) {
	for _, opt := range []StackOptions{{}, {Lease: 20000}, {Lease: 300}} {
		opt := opt
		m := newM(4)
		s := NewStack(m.Direct(), opt)
		rec := &linearize.Recorder{}
		for i := 0; i < 4; i++ {
			i := i
			m.Spawn(0, func(c *machine.Ctx) {
				for n := 0; n < 4; n++ {
					if c.Rand().Intn(2) == 0 {
						v := tag(i, n)
						inv := c.Now()
						s.Push(c, v)
						rec.Record(i, inv, c.Now(), "push", v, 0, true)
					} else {
						inv := c.Now()
						v, ok := s.Pop(c)
						rec.Record(i, inv, c.Now(), "pop", 0, v, ok)
					}
					c.Work(c.Rand().Uint64n(64))
				}
			})
		}
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		if !linearize.Check(rec.Ops, linearize.StackModel()) {
			t.Fatalf("opt %+v: stack history not linearizable:\n%v", opt, rec.Ops)
		}
	}
}

func TestHarrisListLinearizable(t *testing.T) {
	m := newM(4)
	l := NewHarrisList(m.Direct())
	rec := &linearize.Recorder{}
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 5; n++ {
				k := uint64(c.Rand().Intn(3) + 1) // tiny key space: max conflicts
				inv := c.Now()
				switch c.Rand().Intn(3) {
				case 0:
					ok := l.Insert(c, k)
					rec.Record(i, inv, c.Now(), "ins", k, 0, ok)
				case 1:
					ok := l.Remove(c, k)
					rec.Record(i, inv, c.Now(), "del", k, 0, ok)
				default:
					ok := l.Contains(c, k)
					rec.Record(i, inv, c.Now(), "has", k, 0, ok)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !linearize.Check(rec.Ops, linearize.SetModel()) {
		t.Fatalf("harris list history not linearizable:\n%v", rec.Ops)
	}
}

// TestBrokenQueueCaughtByChecker sanity-checks the checker's power: a
// deliberately racy queue (plain head/tail indices into an array, no
// atomicity) must produce non-linearizable histories under contention.
func TestBrokenQueueCaughtByChecker(t *testing.T) {
	m := newM(4)
	d := m.Direct()
	headIdx := d.Alloc(8)
	tailIdx := d.Alloc(8)
	buf := d.Alloc(8 * 128)
	rec := &linearize.Recorder{}
	// Phase 1: two racing enqueuers (their read-modify-write of the tail
	// index overlaps, losing elements). Phase 2 (well after): dequeuers
	// drain, eventually reporting empty while the model still holds the
	// lost elements — non-linearizable.
	for i := 0; i < 2; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 3; n++ {
				v := tag(i, n)
				inv := c.Now()
				ti := c.Load(tailIdx) // racy read-modify-write
				c.Work(300)           // widen the race window
				c.Store(buf+mem.Addr(8*ti), v)
				c.Store(tailIdx, ti+1)
				rec.Record(i, inv, c.Now(), "enq", v, 0, true)
			}
		})
	}
	for i := 2; i < 4; i++ {
		i := i
		m.Spawn(100_000, func(c *machine.Ctx) {
			for n := 0; n < 5; n++ {
				inv := c.Now()
				hi := c.Load(headIdx)
				ti := c.Load(tailIdx)
				if hi < ti {
					v := c.Load(buf + mem.Addr(8*hi))
					c.Store(headIdx, hi+1)
					rec.Record(i, inv, c.Now(), "deq", 0, v, true)
				} else {
					rec.Record(i, inv, c.Now(), "deq", 0, 0, false)
				}
				c.Work(c.Rand().Uint64n(64))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if linearize.Check(rec.Ops, linearize.QueueModel()) {
		t.Fatal("racy queue produced a linearizable history; race did not trigger")
	}
}
