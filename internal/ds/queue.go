package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// QueueLeaseMode selects how the Michael–Scott queue uses leases.
type QueueLeaseMode int

const (
	// QueueNoLease is the base lock-free queue [27].
	QueueNoLease QueueLeaseMode = iota
	// QueueSingleLease leases the head (dequeue) / tail (enqueue)
	// sentinel pointer for each attempt, exactly as in Algorithm 3 —
	// the variant the paper found best.
	QueueSingleLease
	// QueueMultiLease additionally leases the last node's next pointer
	// together with the tail on enqueue (the §7 "multiple leases for
	// linear structures" variant, included to reproduce its measured
	// inferiority to the single lease).
	QueueMultiLease
)

// QueueOptions configures the queue variant.
type QueueOptions struct {
	Mode      QueueLeaseMode
	LeaseTime uint64
	Backoff   Backoff
}

// Queue is the Michael–Scott non-blocking FIFO queue [27] with the lease
// placements of Algorithm 3.
type Queue struct {
	head mem.Addr // sentinel pointer, own cache line
	tail mem.Addr // sentinel pointer, own cache line (no false sharing, §7)
	opt  QueueOptions
}

// Queue node layout.
const (
	qNext  = 0
	qValue = 8
	qSize  = 16
)

// NewQueue allocates an empty queue with its dummy node.
func NewQueue(x machine.API, opt QueueOptions) *Queue {
	q := &Queue{head: x.Alloc(8), tail: x.Alloc(8), opt: opt}
	dummy := x.Alloc(qSize)
	x.Store(q.head, uint64(dummy))
	x.Store(q.tail, uint64(dummy))
	return q
}

// Enqueue appends v (Algorithm 3, ENQUEUE).
func (q *Queue) Enqueue(x machine.API, v uint64) {
	w := x.Alloc(qSize)
	x.Store(w+qValue, v)
	var pause uint64
	for {
		leased := false
		switch q.opt.Mode {
		case QueueSingleLease:
			x.Lease(q.tail, q.opt.LeaseTime)
			leased = true
		case QueueMultiLease:
			// Joint lease on the tail pointer and the last node's next
			// pointer. The next address depends on the tail value, so
			// peek at the tail first; the MultiLease itself re-orders
			// the pair in global sorted order.
			tPeek := x.Load(q.tail)
			x.MultiLease(q.opt.LeaseTime, q.tail, mem.Addr(tPeek)+qNext)
			leased = true
		}
		t := x.Load(q.tail)
		n := x.Load(mem.Addr(t) + qNext)
		done := false
		if t == x.Load(q.tail) { // tail still consistent?
			if n == 0 { // tail points to last node
				if x.CAS(mem.Addr(t)+qNext, 0, uint64(w)) {
					x.CAS(q.tail, t, uint64(w)) // swing tail
					done = true
				}
			} else { // tail fell behind: help swing it
				x.CAS(q.tail, t, n)
			}
		}
		if leased {
			if q.opt.Mode == QueueMultiLease {
				x.ReleaseAll()
			} else {
				x.Release(q.tail)
			}
		}
		if done {
			return
		}
		q.opt.Backoff.wait(x, &pause)
	}
}

// Dequeue removes the oldest value (Algorithm 3, DEQUEUE); ok=false when
// the queue is empty.
func (q *Queue) Dequeue(x machine.API) (v uint64, ok bool) {
	var pause uint64
	for {
		leased := false
		if q.opt.Mode != QueueNoLease {
			x.Lease(q.head, q.opt.LeaseTime)
			leased = true
		}
		h := x.Load(q.head)
		t := x.Load(q.tail)
		n := x.Load(mem.Addr(h) + qNext)
		done, empty := false, false
		if h == x.Load(q.head) { // pointers consistent?
			if h == t {
				if n == 0 {
					empty = true
				} else {
					x.CAS(q.tail, t, n) // tail fell behind, help it
				}
			} else {
				v = x.Load(mem.Addr(n) + qValue)
				if x.CAS(q.head, h, n) { // swing head
					done = true
				}
			}
		}
		if leased {
			x.Release(q.head)
		}
		if empty {
			return 0, false
		}
		if done {
			return v, true
		}
		q.opt.Backoff.wait(x, &pause)
	}
}

// Len walks the queue, excluding the dummy (untimed oracle for tests).
func (q *Queue) Len(x machine.API) int {
	n := 0
	for p := x.Load(mem.Addr(x.Load(q.head)) + qNext); p != 0; p = x.Load(mem.Addr(p) + qNext) {
		n++
	}
	return n
}
