package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// NMTree is the lock-free external binary search tree of Natarajan &
// Mittal [31] — the paper's tree baseline. Child-pointer words (edges)
// carry two low bits: FLAG marks the edge to a leaf being deleted (the
// injection point) and TAG freezes the sibling edge during cleanup, so
// that the whole parent chain can be swung off the ancestor with one CAS.
// Updates write only edges; searches are wait-free.
//
// Keys must lie in [1, 2^64-4]; the top three values are the ∞₀<∞₁<∞₂
// sentinels.
type NMTree struct {
	rootR mem.Addr // internal(∞₂)
	rootS mem.Addr // internal(∞₁)
	// LeaseTime, when nonzero, leases the parent's line around each
	// update CAS window (the predecessor-lease placement of §7).
	LeaseTime uint64
}

const (
	nmKey    = 0
	nmIsLeaf = 8
	nmLeft   = 16
	nmRight  = 24
	nmSize   = 32

	nmInf0 = ^uint64(0) - 2
	nmInf1 = ^uint64(0) - 1
	nmInf2 = ^uint64(0)

	flagBit  = 1
	tagBit   = 2
	edgeBits = flagBit | tagBit
)

func edgeAddr(w uint64) mem.Addr { return mem.Addr(w &^ uint64(edgeBits)) }
func edgeFlagged(w uint64) bool  { return w&flagBit != 0 }
func edgeTagged(w uint64) bool   { return w&tagBit != 0 }

// NewNMTree allocates the sentinel skeleton: R(∞₂){S(∞₁){leaf ∞₀,
// leaf ∞₁}, leaf ∞₂}.
func NewNMTree(x machine.API) *NMTree {
	t := &NMTree{rootR: x.Alloc(nmSize), rootS: x.Alloc(nmSize)}
	leaf := func(k uint64) mem.Addr {
		n := x.Alloc(nmSize)
		x.Store(n+nmKey, k)
		x.Store(n+nmIsLeaf, 1)
		return n
	}
	x.Store(t.rootR+nmKey, nmInf2)
	x.Store(t.rootR+nmLeft, uint64(t.rootS))
	x.Store(t.rootR+nmRight, uint64(leaf(nmInf2)))
	x.Store(t.rootS+nmKey, nmInf1)
	x.Store(t.rootS+nmLeft, uint64(leaf(nmInf0)))
	x.Store(t.rootS+nmRight, uint64(leaf(nmInf1)))
	return t
}

// seekRec is the result of a traversal: the deepest untagged edge on the
// path (ancestor → successor) and the final parent → leaf edge.
type seekRec struct {
	ancestor, successor, parent, leaf mem.Addr
}

// edgeField returns the address of node's child-pointer word that a search
// for key follows.
func nmEdgeField(x machine.API, node mem.Addr, key uint64) mem.Addr {
	if key < x.Load(node+nmKey) {
		return node + nmLeft
	}
	return node + nmRight
}

// seek walks from the root to key's leaf, tracking the last untagged edge.
func (t *NMTree) seek(x machine.API, key uint64) seekRec {
	r := seekRec{ancestor: t.rootR, successor: t.rootS, parent: t.rootS}
	pEdge := x.Load(t.rootS + nmLeft)
	cur := edgeAddr(pEdge)
	for x.Load(cur+nmIsLeaf) == 0 {
		if !edgeTagged(pEdge) {
			r.ancestor = r.parent
			r.successor = cur
		}
		r.parent = cur
		pEdge = x.Load(nmEdgeField(x, cur, key))
		cur = edgeAddr(pEdge)
	}
	r.leaf = cur
	return r
}

// Insert adds key, reporting whether it was absent.
func (t *NMTree) Insert(x machine.API, key uint64) bool {
	var node, newLeaf mem.Addr
	for {
		r := t.seek(x, key)
		leafKey := x.Load(r.leaf + nmKey)
		if leafKey == key {
			return false
		}
		if node == 0 {
			newLeaf = x.Alloc(nmSize)
			x.Store(newLeaf+nmKey, key)
			x.Store(newLeaf+nmIsLeaf, 1)
			node = x.Alloc(nmSize)
		}
		if key < leafKey {
			x.Store(node+nmKey, leafKey)
			x.Store(node+nmLeft, uint64(newLeaf))
			x.Store(node+nmRight, uint64(r.leaf))
		} else {
			x.Store(node+nmKey, key)
			x.Store(node+nmLeft, uint64(r.leaf))
			x.Store(node+nmRight, uint64(newLeaf))
		}
		field := nmEdgeField(x, r.parent, key)
		if t.LeaseTime > 0 {
			x.Lease(r.parent, t.LeaseTime)
		}
		ok := x.CAS(field, uint64(r.leaf), uint64(node))
		if t.LeaseTime > 0 {
			x.Release(r.parent)
		}
		if ok {
			return true
		}
		// CAS failed: if the edge to our leaf is flagged, help the
		// pending deletion before retrying.
		cur := x.Load(field)
		if edgeAddr(cur) == r.leaf && edgeFlagged(cur) {
			t.cleanup(x, key, r)
		}
	}
}

// Delete removes key, reporting whether this call logically deleted it.
func (t *NMTree) Delete(x machine.API, key uint64) bool {
	injecting := true
	var leaf mem.Addr
	for {
		r := t.seek(x, key)
		if !injecting {
			// Cleanup mode: keep helping until our flagged leaf is gone.
			if r.leaf != leaf {
				return true
			}
			if t.cleanup(x, key, r) {
				return true
			}
			continue
		}
		if x.Load(r.leaf+nmKey) != key {
			return false
		}
		field := nmEdgeField(x, r.parent, key)
		old := x.Load(field)
		if edgeAddr(old) != r.leaf {
			continue // path changed underneath; re-seek
		}
		if edgeFlagged(old) || edgeTagged(old) {
			// Another deletion owns this edge; help it along.
			if edgeFlagged(old) {
				t.cleanup(x, key, r)
			}
			continue
		}
		if t.LeaseTime > 0 {
			x.Lease(r.parent, t.LeaseTime)
		}
		ok := x.CAS(field, old, old|flagBit)
		if t.LeaseTime > 0 {
			x.Release(r.parent)
		}
		if ok {
			injecting = false
			leaf = r.leaf
			if t.cleanup(x, key, r) {
				return true
			}
		}
	}
}

// cleanup physically removes the flagged leaf's parent chain: it tags the
// sibling edge (blocking inserts under it) and swings the ancestor's edge
// from the successor to the sibling, preserving the sibling's flag.
// It reports whether the swing succeeded.
func (t *NMTree) cleanup(x machine.API, key uint64, r seekRec) bool {
	ancestorField := nmEdgeField(x, r.ancestor, key)
	var childField, siblingField mem.Addr
	if key < x.Load(r.parent+nmKey) {
		childField, siblingField = r.parent+nmLeft, r.parent+nmRight
	} else {
		childField, siblingField = r.parent+nmRight, r.parent+nmLeft
	}
	if !edgeFlagged(x.Load(childField)) {
		// The flag sits on the other edge: that leaf is the one being
		// deleted, and the search-path child survives as the sibling.
		siblingField = childField
	}
	for {
		sv := x.Load(siblingField)
		if edgeTagged(sv) {
			break
		}
		if x.CAS(siblingField, sv, sv|tagBit) {
			break
		}
	}
	sv := x.Load(siblingField)
	return x.CAS(ancestorField, uint64(r.successor), sv&^uint64(tagBit))
}

// Contains reports key membership (wait-free).
func (t *NMTree) Contains(x machine.API, key uint64) bool {
	cur := edgeAddr(x.Load(t.rootS + nmLeft))
	for x.Load(cur+nmIsLeaf) == 0 {
		cur = edgeAddr(x.Load(nmEdgeField(x, cur, key)))
	}
	return x.Load(cur+nmKey) == key
}

// Keys returns all live keys in order (test oracle; quiescent use only).
func (t *NMTree) Keys(x machine.API) []uint64 {
	var out []uint64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if x.Load(n+nmIsLeaf) == 1 {
			if k := x.Load(n + nmKey); k < nmInf0 {
				out = append(out, k)
			}
			return
		}
		walk(edgeAddr(x.Load(n + nmLeft)))
		walk(edgeAddr(x.Load(n + nmRight)))
	}
	walk(t.rootR)
	return out
}

// CheckInvariants validates external-BST ordering and routing keys on a
// quiescent tree (test oracle).
func (t *NMTree) CheckInvariants(x machine.API) error {
	keys := t.Keys(x)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return errOutOfOrder
		}
	}
	var check func(n mem.Addr, lo, hi uint64) error
	check = func(n mem.Addr, lo, hi uint64) error {
		k := x.Load(n + nmKey)
		if k < lo || k > hi {
			return errOutOfOrder
		}
		if x.Load(n+nmIsLeaf) == 1 {
			return nil
		}
		if err := check(edgeAddr(x.Load(n+nmLeft)), lo, k-1); err != nil {
			return err
		}
		return check(edgeAddr(x.Load(n+nmRight)), k, hi)
	}
	return check(t.rootR, 0, ^uint64(0))
}
