package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// LCRQ is a simplified Morrison–Afek LCRQ [29] — the "fast concurrent
// queue for x86" the paper cites among architecture-optimized queue
// designs. A linked list of CRQ ring segments; within a segment, enqueue
// and dequeue positions come from fetch&add, so the hot counters never
// suffer CAS retry storms.
//
// Adaptation to the simulated ISA: the original updates (value, index)
// cell pairs with a double-width CAS; our words are 64-bit, so a cell
// packs [safe:1 | idx:32 | val:31] into one word. Values must therefore
// lie in [1, 2^31-1] and a segment supports 2^32 operations — ample for
// simulation workloads.
type LCRQ struct {
	first mem.Addr // pointer cell -> current head CRQ
	last  mem.Addr // pointer cell -> current tail CRQ
	ring  int      // cells per CRQ segment
}

// CRQ segment layout: [head, tail, next, cells[0..R-1]].
const (
	crqHead  = 0
	crqTail  = 8
	crqNext  = 16
	crqCells = 24

	crqClosed = uint64(1) << 63

	cellValBits = 31
	cellValMask = (uint64(1) << cellValBits) - 1
	cellIdxMask = (uint64(1) << 32) - 1
)

func packCell(safe uint64, idx uint64, val uint64) uint64 {
	return safe<<63 | (idx&cellIdxMask)<<cellValBits | (val & cellValMask)
}

func cellSafe(w uint64) uint64 { return w >> 63 }
func cellIdx(w uint64) uint64  { return (w >> cellValBits) & cellIdxMask }
func cellVal(w uint64) uint64  { return w & cellValMask }

// NewLCRQ allocates a queue with ring-sized segments (power of two
// recommended).
func NewLCRQ(x machine.API, ring int) *LCRQ {
	q := &LCRQ{first: x.Alloc(8), last: x.Alloc(8), ring: ring}
	seg := q.newCRQ(x)
	x.Store(q.first, uint64(seg))
	x.Store(q.last, uint64(seg))
	return q
}

// newCRQ allocates an empty segment: every cell is (safe=1, idx=i, val=0).
func (q *LCRQ) newCRQ(x machine.API) mem.Addr {
	seg := x.Alloc(uint64(crqCells + 8*q.ring))
	for i := 0; i < q.ring; i++ {
		x.Store(seg+crqCells+mem.Addr(8*i), packCell(1, uint64(i), 0))
	}
	return seg
}

func (q *LCRQ) cell(seg mem.Addr, idx uint64) mem.Addr {
	return seg + crqCells + mem.Addr(8*(idx%uint64(q.ring)))
}

// crqEnqueue attempts to enqueue v into segment seg; false means the
// segment is (now) closed.
func (q *LCRQ) crqEnqueue(x machine.API, seg mem.Addr, v uint64) bool {
	for attempts := 0; ; attempts++ {
		t := x.FetchAdd(seg+crqTail, 1)
		if t&crqClosed != 0 {
			return false
		}
		c := q.cell(seg, t)
		w := x.Load(c)
		if cellVal(w) == 0 && cellIdx(w) <= t &&
			(cellSafe(w) == 1 || x.Load(seg+crqHead) <= t) {
			if x.CAS(c, w, packCell(1, t, v)) {
				return true
			}
		}
		// Transition failed. Close when the ring looks full or we keep
		// starving (livelock guard from the original design).
		h := x.Load(seg + crqHead)
		if t >= h+uint64(q.ring) || attempts >= 8*q.ring {
			q.closeCRQ(x, seg)
			return false
		}
	}
}

func (q *LCRQ) closeCRQ(x machine.API, seg mem.Addr) {
	for {
		t := x.Load(seg + crqTail)
		if t&crqClosed != 0 {
			return
		}
		if x.CAS(seg+crqTail, t, t|crqClosed) {
			return
		}
	}
}

// crqDequeue attempts to dequeue from segment seg; ok=false means the
// segment is empty (possibly transiently — the caller checks closure).
func (q *LCRQ) crqDequeue(x machine.API, seg mem.Addr) (uint64, bool) {
	for {
		h := x.FetchAdd(seg+crqHead, 1)
		c := q.cell(seg, h)
		for {
			w := x.Load(c)
			val := cellVal(w)
			idx := cellIdx(w)
			if val != 0 {
				if idx == h {
					// Dequeue transition: empty the cell for round h+R.
					if x.CAS(c, w, packCell(cellSafe(w), h+uint64(q.ring), 0)) {
						return val, true
					}
					continue
				}
				// A value from another round: mark unsafe so its
				// enqueuer cannot be wrongly matched later.
				if x.CAS(c, w, packCell(0, idx, val)) {
					break
				}
				continue
			}
			// Empty cell: advance it past our round.
			if idx <= h {
				if x.CAS(c, w, packCell(cellSafe(w), h+uint64(q.ring), 0)) {
					break
				}
				continue
			}
			break
		}
		// Is the segment drained up to our position?
		t := x.Load(seg+crqTail) &^ crqClosed
		if t <= h+1 {
			q.fixState(x, seg)
			return 0, false
		}
	}
}

// fixState repairs head > tail after overshooting dequeues.
func (q *LCRQ) fixState(x machine.API, seg mem.Addr) {
	for {
		h := x.Load(seg + crqHead)
		tw := x.Load(seg + crqTail)
		t := tw &^ crqClosed
		if t >= h {
			return
		}
		if x.CAS(seg+crqTail, tw, h|(tw&crqClosed)) {
			return
		}
	}
}

// Enqueue appends v (1 <= v < 2^31).
func (q *LCRQ) Enqueue(x machine.API, v uint64) {
	if v == 0 || v > cellValMask {
		panic("lcrq: value out of range [1, 2^31-1]")
	}
	for {
		seg := mem.Addr(x.Load(q.last))
		if n := x.Load(seg + crqNext); n != 0 {
			x.CAS(q.last, uint64(seg), n) // help swing last
			continue
		}
		if q.crqEnqueue(x, seg, v) {
			return
		}
		// Segment closed: append a fresh one.
		nseg := q.newCRQ(x)
		x.Store(q.cell(nseg, 0), packCell(1, 0, v))
		x.Store(nseg+crqTail, 1)
		if x.CAS(seg+crqNext, 0, uint64(nseg)) {
			x.CAS(q.last, uint64(seg), uint64(nseg))
			return
		}
		// Someone else appended; retry into their segment.
	}
}

// Dequeue removes the oldest value; ok=false when the queue is empty.
func (q *LCRQ) Dequeue(x machine.API) (uint64, bool) {
	for {
		seg := mem.Addr(x.Load(q.first))
		if v, ok := q.crqDequeue(x, seg); ok {
			return v, true
		}
		// Segment empty: if it is closed and has a successor, advance.
		if x.Load(seg+crqTail)&crqClosed == 0 {
			return 0, false // open and empty: queue is empty
		}
		n := x.Load(seg + crqNext)
		if n == 0 {
			return 0, false // closed, no successor yet
		}
		x.CAS(q.first, uint64(seg), n)
	}
}

// Len drains nothing; walks segments counting live cells (test oracle;
// quiescent use only).
func (q *LCRQ) Len(x machine.API) int {
	n := 0
	for seg := mem.Addr(x.Load(q.first)); seg != 0; {
		h := x.Load(seg + crqHead)
		t := x.Load(seg+crqTail) &^ crqClosed
		for i := h; i < t; i++ {
			w := x.Load(q.cell(seg, i))
			if cellVal(w) != 0 && cellIdx(w) == i {
				n++
			}
		}
		seg = mem.Addr(x.Load(seg + crqNext))
	}
	return n
}
