package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// EliminationStack is the elimination-backoff stack of Shavit–Touitou [39]
// (in the Hendler–Shavit–Yerushalmi style): a Treiber stack whose threads,
// upon CAS failure, back off into an elimination array where a concurrent
// push and pop can cancel each other without touching the hotspot. It is
// the classic software contention mitigation the paper compares leases
// against (§2 "elimination").
type EliminationStack struct {
	head  mem.Addr
	slots []mem.Addr
	// SpinCycles is how long an offer waits in a slot before retracting.
	SpinCycles uint64
	// Eliminations counts operations completed through the array.
	Eliminations uint64
}

// Exchange-offer record layout (one line per offer, never reused).
const (
	oKind   = 0 // 1 = push, 2 = pop
	oValue  = 8
	oDone   = 16
	oResult = 24
	oSize   = 32

	kindPush = 1
	kindPop  = 2
)

// NewEliminationStack allocates the stack with `width` elimination slots.
func NewEliminationStack(x machine.API, width int) *EliminationStack {
	s := &EliminationStack{head: x.Alloc(8), SpinCycles: 400}
	for i := 0; i < width; i++ {
		s.slots = append(s.slots, x.Alloc(8))
	}
	return s
}

// pushAttempt performs one Treiber push attempt.
func (s *EliminationStack) pushAttempt(x machine.API, node mem.Addr) bool {
	h := x.Load(s.head)
	x.Store(node+stkNext, h)
	return x.CAS(s.head, h, uint64(node))
}

// popAttempt performs one Treiber pop attempt; empty=true ends the op.
func (s *EliminationStack) popAttempt(x machine.API) (v uint64, ok, empty bool) {
	h := x.Load(s.head)
	if h == 0 {
		return 0, false, true
	}
	next := x.Load(mem.Addr(h) + stkNext)
	val := x.Load(mem.Addr(h) + stkValue)
	if x.CAS(s.head, h, next) {
		return val, true, false
	}
	return 0, false, false
}

// Push pushes v, eliminating against a concurrent Pop when contended.
func (s *EliminationStack) Push(x machine.API, v uint64) {
	node := x.Alloc(stkSize)
	x.Store(node+stkValue, v)
	for {
		if s.pushAttempt(x, node) {
			return
		}
		if s.eliminatePush(x, v) {
			s.Eliminations++
			return
		}
	}
}

// Pop removes the top value, eliminating against a concurrent Push when
// contended; ok=false on an empty stack.
func (s *EliminationStack) Pop(x machine.API) (uint64, bool) {
	for {
		v, ok, empty := s.popAttempt(x)
		if ok {
			return v, true
		}
		if empty {
			return 0, false
		}
		if v, ok := s.eliminatePop(x); ok {
			s.Eliminations++
			return v, true
		}
	}
}

// eliminatePush tries to hand v to a concurrent pop via a random slot.
func (s *EliminationStack) eliminatePush(x machine.API, v uint64) bool {
	slot := s.slots[x.Rand().Intn(len(s.slots))]
	cur := x.Load(slot)
	if cur == 0 {
		// Park a push offer and wait to be taken.
		offer := x.Alloc(oSize)
		x.Store(offer+oKind, kindPush)
		x.Store(offer+oValue, v)
		if !x.CAS(slot, 0, uint64(offer)) {
			return false
		}
		return s.awaitOrRetract(x, slot, offer)
	}
	other := mem.Addr(cur)
	if x.Load(other+oKind) != kindPop {
		return false
	}
	// Claim the waiting pop and hand it our value.
	if !x.CAS(slot, cur, 0) {
		return false
	}
	x.Store(other+oResult, v)
	x.Store(other+oDone, 1)
	return true
}

// eliminatePop tries to take a value from a concurrent push via a slot.
func (s *EliminationStack) eliminatePop(x machine.API) (uint64, bool) {
	slot := s.slots[x.Rand().Intn(len(s.slots))]
	cur := x.Load(slot)
	if cur == 0 {
		offer := x.Alloc(oSize)
		x.Store(offer+oKind, kindPop)
		if !x.CAS(slot, 0, uint64(offer)) {
			return 0, false
		}
		if !s.awaitOrRetract(x, slot, offer) {
			return 0, false
		}
		return x.Load(offer + oResult), true
	}
	other := mem.Addr(cur)
	if x.Load(other+oKind) != kindPush {
		return 0, false
	}
	if !x.CAS(slot, cur, 0) {
		return 0, false
	}
	v := x.Load(other + oValue)
	x.Store(other+oDone, 1)
	return v, true
}

// awaitOrRetract waits for the parked offer to be matched; on timeout it
// retracts the offer, racing a late matcher.
func (s *EliminationStack) awaitOrRetract(x machine.API, slot, offer mem.Addr) bool {
	deadline := x.Now() + s.SpinCycles
	for x.Now() < deadline {
		if x.Load(offer+oDone) == 1 {
			return true
		}
		x.Work(16)
	}
	if x.CAS(slot, uint64(offer), 0) {
		return false // retracted unmatched
	}
	// A matcher claimed the offer concurrently; wait for completion.
	for x.Load(offer+oDone) == 0 {
		x.Work(4)
	}
	return true
}

// Len walks the underlying stack (test oracle; quiescent use only).
func (s *EliminationStack) Len(x machine.API) int {
	n := 0
	for p := x.Load(s.head); p != 0; p = x.Load(mem.Addr(p) + stkNext) {
		n++
	}
	return n
}
