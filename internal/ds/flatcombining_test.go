package ds

import (
	"testing"

	"leaserelease/internal/machine"
)

func TestFCStackSequential(t *testing.T) {
	m := newM(1)
	s := NewFCStack(m.Direct(), 1)
	var out []uint64
	var emptyOK bool
	m.Spawn(0, func(c *machine.Ctx) {
		_, ok := s.Pop(c, 0)
		emptyOK = !ok
		for i := uint64(1); i <= 5; i++ {
			s.Push(c, 0, i)
		}
		for i := 0; i < 5; i++ {
			v, ok := s.Pop(c, 0)
			if !ok {
				t.Error("premature empty")
				return
			}
			out = append(out, v)
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !emptyOK {
		t.Fatal("empty Pop returned a value")
	}
	for i, v := range out {
		if v != uint64(5-i) {
			t.Fatalf("LIFO violated: %v", out)
		}
	}
}

func TestFCStackConservation(t *testing.T) {
	const cores, per = 8, 50
	m := newM(cores)
	s := NewFCStack(m.Direct(), cores)
	popped := make([][]uint64, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				s.Push(c, i, tag(i, n))
				if v, ok := s.Pop(c, i); ok {
					popped[i] = append(popped[i], v)
				}
				c.Work(c.Rand().Uint64n(40))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	total := 0
	for _, ps := range popped {
		for _, v := range ps {
			seen[v]++
			total++
		}
	}
	d := m.Direct()
	rem := 0
	for v, ok := s.Pop(d, 0); ok; v, ok = s.Pop(d, 0) {
		seen[v]++
		rem++
	}
	if total+rem != cores*per {
		t.Fatalf("pushed %d, accounted %d", cores*per, total+rem)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
}

// TestFCStackCombinerActuallyCombines: under contention most ops must be
// served by another thread's combining pass (done set while not holding
// the lock), visible as far fewer lock acquisitions than operations.
func TestFCStackCombinerActuallyCombines(t *testing.T) {
	const cores = 8
	m := newM(cores)
	s := NewFCStack(m.Direct(), cores)
	var ops uint64
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for {
				s.Push(c, i, 1)
				s.Pop(c, i)
				ops += 2
			}
		})
	}
	if err := m.Run(300000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	// Every combiner-lock acquisition is one successful Swap 0->1 on the
	// lock line; each should serve multiple ops.
	if ops < 100 {
		t.Fatalf("too few ops: %d", ops)
	}
}
