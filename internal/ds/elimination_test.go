package ds

import (
	"testing"

	"leaserelease/internal/machine"
)

func TestEliminationStackSequential(t *testing.T) {
	m := newM(1)
	s := NewEliminationStack(m.Direct(), 4)
	var out []uint64
	var emptyOK bool
	m.Spawn(0, func(c *machine.Ctx) {
		_, ok := s.Pop(c)
		emptyOK = !ok
		for i := uint64(1); i <= 5; i++ {
			s.Push(c, i)
		}
		for i := 0; i < 5; i++ {
			v, ok := s.Pop(c)
			if !ok {
				t.Error("premature empty")
				return
			}
			out = append(out, v)
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !emptyOK {
		t.Fatal("empty Pop returned a value")
	}
	for i, v := range out {
		if v != uint64(5-i) {
			t.Fatalf("LIFO violated: %v", out)
		}
	}
}

// TestEliminationStackConservation: under contention (including eliminated
// pairs that never touch the stack) every pushed value is popped exactly
// once or remains on the stack.
func TestEliminationStackConservation(t *testing.T) {
	const cores, per = 8, 50
	m := newM(cores)
	s := NewEliminationStack(m.Direct(), 4)
	popped := make([][]uint64, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				s.Push(c, tag(i, n))
				if v, ok := s.Pop(c); ok {
					popped[i] = append(popped[i], v)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	total := 0
	for _, ps := range popped {
		for _, v := range ps {
			seen[v]++
			total++
		}
	}
	d := m.Direct()
	for {
		v, ok := s.Pop(d)
		if !ok {
			break
		}
		seen[v]++
		total++
	}
	if total != cores*per {
		t.Fatalf("pushed %d, accounted %d", cores*per, total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
}

// TestEliminationHappens: under symmetric contention some operations must
// complete through the array rather than the hotspot. We detect it by the
// stack length staying bounded while ops complete faster than head CASes
// alone could.
func TestEliminationHappens(t *testing.T) {
	const cores = 8
	m := newM(cores)
	s := NewEliminationStack(m.Direct(), 4)
	s.SpinCycles = 800
	var pushes, pops uint64
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for {
				if i%2 == 0 {
					s.Push(c, 1)
					pushes++
				} else {
					if _, ok := s.Pop(c); ok {
						pops++
					}
				}
			}
		})
	}
	if err := m.Run(400000); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	if s.Eliminations == 0 {
		t.Fatalf("no eliminations under symmetric 8-way contention (pushes %d, pops %d)",
			pushes, pops)
	}
}
