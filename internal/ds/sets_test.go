package ds

import (
	"sort"
	"testing"
	"testing/quick"

	"leaserelease/internal/machine"
)

// setOps is the common interface of the low-contention set structures.
type setOps interface {
	ins(x machine.API, k uint64) bool
	del(x machine.API, k uint64) bool
	has(x machine.API, k uint64) bool
	check(x machine.API) error
}

type harrisOps struct{ l *HarrisList }

func (h harrisOps) ins(x machine.API, k uint64) bool { return h.l.Insert(x, k) }
func (h harrisOps) del(x machine.API, k uint64) bool { return h.l.Remove(x, k) }
func (h harrisOps) has(x machine.API, k uint64) bool { return h.l.Contains(x, k) }
func (h harrisOps) check(x machine.API) error        { return h.l.CheckInvariants(x) }

type lazyOps struct{ s *LazySkipList }

func (l lazyOps) ins(x machine.API, k uint64) bool { return l.s.Insert(x, k) }
func (l lazyOps) del(x machine.API, k uint64) bool { return l.s.Remove(x, k) }
func (l lazyOps) has(x machine.API, k uint64) bool { return l.s.Contains(x, k) }
func (l lazyOps) check(x machine.API) error        { return l.s.CheckInvariants(x) }

type bstOps struct{ t *BST }

func (b bstOps) ins(x machine.API, k uint64) bool { return b.t.Insert(x, k) }
func (b bstOps) del(x machine.API, k uint64) bool { return b.t.Delete(x, k) }
func (b bstOps) has(x machine.API, k uint64) bool { return b.t.Contains(x, k) }
func (b bstOps) check(x machine.API) error        { return b.t.CheckInvariants(x) }

type hashOps struct{ h *HashMap }

func (h hashOps) ins(x machine.API, k uint64) bool { return h.h.Put(x, k, k) }
func (h hashOps) del(x machine.API, k uint64) bool { return h.h.Delete(x, k) }
func (h hashOps) has(x machine.API, k uint64) bool { _, ok := h.h.Get(x, k); return ok }
func (h hashOps) check(x machine.API) error        { return nil }

// makers builds each structure in both plain and leased flavours.
func makers() map[string]func(x machine.API, lease uint64) setOps {
	return map[string]func(x machine.API, lease uint64) setOps{
		"harris": func(x machine.API, lease uint64) setOps {
			l := NewHarrisList(x)
			l.LeaseTime = lease
			return harrisOps{l}
		},
		"lazyskip": func(x machine.API, lease uint64) setOps {
			s := NewLazySkipList(x)
			s.LeaseTime = lease
			return lazyOps{s}
		},
		"bst": func(x machine.API, lease uint64) setOps {
			b := NewBST(x)
			b.LeaseTime = lease
			return bstOps{b}
		},
		"hash": func(x machine.API, lease uint64) setOps {
			return hashOps{NewHashMap(x, 64, lease)}
		},
	}
}

// TestSetsSequentialModel drives each set against a map model on one core.
func TestSetsSequentialModel(t *testing.T) {
	for name, mk := range makers() {
		for _, lease := range []uint64{0, 20000} {
			name, mk, lease := name, mk, lease
			t.Run(name, func(t *testing.T) {
				m := newM(1)
				s := mk(m.Direct(), lease)
				m.Spawn(0, func(c *machine.Ctx) {
					model := map[uint64]bool{}
					r := c.Rand()
					for i := 0; i < 400; i++ {
						k := uint64(r.Intn(40) + 1)
						switch r.Intn(3) {
						case 0:
							if s.ins(c, k) == model[k] {
								t.Errorf("%s insert(%d) disagrees with model", name, k)
								return
							}
							model[k] = true
						case 1:
							if s.del(c, k) != model[k] {
								t.Errorf("%s delete(%d) disagrees with model", name, k)
								return
							}
							delete(model, k)
						case 2:
							if s.has(c, k) != model[k] {
								t.Errorf("%s contains(%d) disagrees with model", name, k)
								return
							}
						}
					}
				})
				if err := m.Drain(); err != nil {
					t.Fatal(err)
				}
				if err := s.check(m.Direct()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSetsConcurrentDisjointKeys gives each thread a disjoint key range so
// per-thread op results are exactly checkable while the structure itself is
// shared and contended.
func TestSetsConcurrentDisjointKeys(t *testing.T) {
	const cores, opsPer, keysPer = 8, 120, 16
	for name, mk := range makers() {
		for _, lease := range []uint64{0, 20000} {
			name, mk, lease := name, mk, lease
			t.Run(name, func(t *testing.T) {
				m := newM(cores)
				s := mk(m.Direct(), lease)
				finalModel := make([]map[uint64]bool, cores)
				for i := 0; i < cores; i++ {
					i := i
					m.Spawn(0, func(c *machine.Ctx) {
						model := map[uint64]bool{}
						finalModel[i] = model
						base := uint64(i*keysPer + 1)
						r := c.Rand()
						for n := 0; n < opsPer; n++ {
							k := base + uint64(r.Intn(keysPer))
							switch r.Intn(3) {
							case 0:
								if s.ins(c, k) == model[k] {
									t.Errorf("%s: core %d insert(%d) wrong", name, i, k)
									return
								}
								model[k] = true
							case 1:
								if s.del(c, k) != model[k] {
									t.Errorf("%s: core %d delete(%d) wrong", name, i, k)
									return
								}
								delete(model, k)
							case 2:
								if s.has(c, k) != model[k] {
									t.Errorf("%s: core %d contains(%d) wrong", name, i, k)
									return
								}
							}
						}
					})
				}
				if err := m.Drain(); err != nil {
					t.Fatal(err)
				}
				if err := s.check(m.Direct()); err != nil {
					t.Fatal(err)
				}
				// Final membership must match the union of the models.
				d := m.Direct()
				for i, model := range finalModel {
					base := uint64(i*keysPer + 1)
					for k := base; k < base+keysPer; k++ {
						if s.has(d, k) != model[k] {
							t.Fatalf("%s: final membership of %d = %v, model %v",
								name, k, s.has(d, k), model[k])
						}
					}
				}
			})
		}
	}
}

// TestSeqSkipListVsSortedSlice property-checks the sequential skiplist
// against a sorted-slice model including DeleteMin order.
func TestSeqSkipListVsSortedSlice(t *testing.T) {
	f := func(keys []uint16) bool {
		if len(keys) > 64 {
			keys = keys[:64]
		}
		m := newM(1)
		d := m.Direct()
		s := NewSeqSkipList(d)
		var model []uint64
		for _, k := range keys {
			key := uint64(k) + 1
			s.Insert(d, key, 0)
			model = append(model, key)
		}
		sort.Slice(model, func(i, j int) bool { return model[i] < model[j] })
		if s.Len(d) != len(model) {
			return false
		}
		for _, want := range model {
			got, ok := s.DeleteMin(d)
			if !ok || got != want {
				return false
			}
		}
		_, ok := s.DeleteMin(d)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqSkipListDeleteContains(t *testing.T) {
	m := newM(1)
	d := m.Direct()
	s := NewSeqSkipList(d)
	for _, k := range []uint64{5, 3, 9, 7, 1} {
		s.Insert(d, k, k*10)
	}
	if !s.Contains(d, 7) || s.Contains(d, 4) {
		t.Fatal("Contains wrong")
	}
	if !s.Delete(d, 7) || s.Delete(d, 7) {
		t.Fatal("Delete wrong")
	}
	if s.Contains(d, 7) {
		t.Fatal("deleted key still present")
	}
	if min, ok := s.Min(d); !ok || min != 1 {
		t.Fatalf("Min = %d,%v", min, ok)
	}
	if s.Len(d) != 4 {
		t.Fatalf("Len = %d, want 4", s.Len(d))
	}
}
