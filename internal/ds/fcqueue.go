package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// FCQueue is a flat-combining FIFO queue [18] — the optimized software
// comparator for the Michael–Scott queue (§2 cites combining as a leading
// software technique for contended queues). Same publication-record
// protocol as FCStack over a sequential linked queue.
type FCQueue struct {
	lock    mem.Addr
	head    mem.Addr // sequential queue head (combiner-only)
	tail    mem.Addr // sequential queue tail (combiner-only)
	records []mem.Addr
	// CombineRounds bounds how long a waiting thread spins before trying
	// to become the combiner itself.
	CombineRounds int
}

// NewFCQueue allocates the queue (with dummy node) and one publication
// record per thread.
func NewFCQueue(x machine.API, threads int) *FCQueue {
	q := &FCQueue{lock: x.Alloc(8), head: x.Alloc(8), tail: x.Alloc(8), CombineRounds: 32}
	dummy := x.Alloc(qSize)
	x.Store(q.head, uint64(dummy))
	x.Store(q.tail, uint64(dummy))
	for i := 0; i < threads; i++ {
		q.records = append(q.records, x.Alloc(fcSize))
	}
	return q
}

// Enqueue appends v on behalf of thread tid.
func (q *FCQueue) Enqueue(x machine.API, tid int, v uint64) {
	q.run(x, tid, fcPush, v)
}

// Dequeue removes the oldest value on behalf of thread tid.
func (q *FCQueue) Dequeue(x machine.API, tid int) (uint64, bool) {
	r := q.records[tid]
	q.run(x, tid, fcPop, 0)
	return x.Load(r + fcRet), x.Load(r+fcRetOK) == 1
}

func (q *FCQueue) run(x machine.API, tid int, op, arg uint64) {
	r := q.records[tid]
	x.Store(r+fcDone, 0)
	x.Store(r+fcArg, arg)
	x.Store(r+fcOp, op)
	for {
		for i := 0; i < q.CombineRounds; i++ {
			if x.Load(r+fcDone) == 1 {
				return
			}
			x.Work(16)
		}
		if x.Load(q.lock) == 0 && x.Swap(q.lock, 1) == 0 {
			q.combine(x)
			x.Store(q.lock, 0)
			if x.Load(r+fcDone) == 1 {
				return
			}
		}
	}
}

func (q *FCQueue) combine(x machine.API) {
	for _, r := range q.records {
		op := x.Load(r + fcOp)
		if op == fcNone || x.Load(r+fcDone) == 1 {
			continue
		}
		switch op {
		case fcPush: // enqueue
			node := x.Alloc(qSize)
			x.Store(node+qValue, x.Load(r+fcArg))
			t := mem.Addr(x.Load(q.tail))
			x.Store(t+qNext, uint64(node))
			x.Store(q.tail, uint64(node))
		case fcPop: // dequeue
			h := mem.Addr(x.Load(q.head))
			n := x.Load(h + qNext)
			if n == 0 {
				x.Store(r+fcRetOK, 0)
			} else {
				x.Store(r+fcRet, x.Load(mem.Addr(n)+qValue))
				x.Store(r+fcRetOK, 1)
				x.Store(q.head, n)
			}
		}
		x.Store(r+fcOp, fcNone)
		x.Store(r+fcDone, 1)
	}
}

// Len walks the sequential queue (test oracle; quiescent use only).
func (q *FCQueue) Len(x machine.API) int {
	n := 0
	for p := x.Load(mem.Addr(x.Load(q.head)) + qNext); p != 0; p = x.Load(mem.Addr(p) + qNext) {
		n++
	}
	return n
}
