package ds

import (
	"sort"
	"testing"

	"leaserelease/internal/machine"
)

func pqVariants() map[string]func(x machine.API) PQ {
	return map[string]func(x machine.API) PQ{
		"fine":          func(x machine.API) PQ { return NewPQFine(x) },
		"global":        func(x machine.API) PQ { return NewPQGlobal(x, 0) },
		"global-leased": func(x machine.API) PQ { return NewPQGlobal(x, 20000) },
	}
}

func TestPQSequentialOrder(t *testing.T) {
	for name, mk := range pqVariants() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newM(1)
			pq := mk(m.Direct())
			keys := []uint64{50, 20, 90, 10, 70, 30}
			var out []uint64
			m.Spawn(0, func(c *machine.Ctx) {
				for _, k := range keys {
					pq.Insert(c, k)
				}
				for range keys {
					v, ok := pq.DeleteMin(c)
					if !ok {
						t.Error("premature empty")
						return
					}
					out = append(out, v)
				}
				if _, ok := pq.DeleteMin(c); ok {
					t.Error("DeleteMin on empty returned a value")
				}
			})
			if err := m.Drain(); err != nil {
				t.Fatal(err)
			}
			want := append([]uint64(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("order = %v, want %v", out, want)
				}
			}
		})
	}
}

// TestPQConcurrentConservation: every inserted key is deleted exactly once
// or remains; nothing is lost or duplicated.
func TestPQConcurrentConservation(t *testing.T) {
	const cores, per = 8, 30
	for name, mk := range pqVariants() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newM(cores)
			pq := mk(m.Direct())
			removed := make([][]uint64, cores)
			for i := 0; i < cores; i++ {
				i := i
				m.Spawn(0, func(c *machine.Ctx) {
					for n := 0; n < per; n++ {
						// Unique keys: tag in the high bits keeps
						// priorities random-ish via the low bits.
						k := uint64(c.Rand().Intn(1<<20))<<20 | tag(i, n)
						pq.Insert(c, k)
						if v, ok := pq.DeleteMin(c); ok {
							removed[i] = append(removed[i], v)
						}
					}
				})
			}
			if err := m.Drain(); err != nil {
				t.Fatal(err)
			}
			seen := map[uint64]int{}
			total := 0
			for _, rs := range removed {
				for _, v := range rs {
					seen[v]++
					total++
				}
			}
			d := m.Direct()
			for {
				v, ok := pq.DeleteMin(d)
				if !ok {
					break
				}
				seen[v]++
				total++
			}
			if total != cores*per {
				t.Fatalf("inserted %d, accounted %d", cores*per, total)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("key %#x seen %d times", v, n)
				}
			}
		})
	}
}

// TestPQGlobalLeaseBeatsFine reproduces the Figure 3 priority-queue
// direction at 8 threads: the leased global-lock queue outperforms the
// fine-grained locking baseline under 100% updates.
func TestPQGlobalLeaseBeatsFine(t *testing.T) {
	run := func(mk func(x machine.API) PQ) uint64 {
		m := newM(8)
		pq := mk(m.Direct())
		d := m.Direct()
		for i := 0; i < 256; i++ { // prefill so DeleteMin has work
			pq.Insert(d, uint64(d.Rand().Intn(1<<30))+1)
		}
		var ops uint64
		for i := 0; i < 8; i++ {
			m.Spawn(0, func(c *machine.Ctx) {
				for {
					pq.Insert(c, uint64(c.Rand().Intn(1<<30))+1)
					pq.DeleteMin(c)
					ops += 2
				}
			})
		}
		if err := m.Run(400000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return ops
	}
	fine := run(func(x machine.API) PQ { return NewPQFine(x) })
	leased := run(func(x machine.API) PQ { return NewPQGlobal(x, 20000) })
	if leased <= fine {
		t.Fatalf("leased global PQ %d <= fine-grained %d at 8 threads", leased, fine)
	}
}
