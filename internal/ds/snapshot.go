package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// Snapshot implements the §5 "cheap snapshots" primitive: an atomic read
// of a set of words. LeaseCollect exploits the boolean Release result —
// lease every line, read, release; if every release was voluntary, no
// other core could have written between the first lease grant and the last
// release, so the values form a consistent snapshot. DoubleCollect is the
// classic software alternative it is compared against.
type Snapshot struct {
	addrs []mem.Addr
	// LeaseTime bounds each line's lease during LeaseCollect.
	LeaseTime uint64
}

// NewSnapshot builds a snapshot object over addrs. len(addrs) must not
// exceed MAX_NUM_LEASES for LeaseCollect to be usable.
func NewSnapshot(addrs []mem.Addr, leaseTime uint64) *Snapshot {
	return &Snapshot{addrs: addrs, LeaseTime: leaseTime}
}

// LeaseCollect returns a consistent snapshot and the number of attempts
// it took.
func (s *Snapshot) LeaseCollect(x machine.API) ([]uint64, int) {
	vals := make([]uint64, len(s.addrs))
	for attempt := 1; ; attempt++ {
		for _, a := range s.addrs {
			x.Lease(a, s.LeaseTime)
		}
		for i, a := range s.addrs {
			vals[i] = x.Load(a)
		}
		allVoluntary := true
		for _, a := range s.addrs {
			if !x.Release(a) {
				allVoluntary = false
			}
		}
		if allVoluntary {
			return vals, attempt
		}
	}
}

// DoubleCollect returns a consistent snapshot via the classic
// read-twice-until-stable scheme, plus the number of collect rounds.
func (s *Snapshot) DoubleCollect(x machine.API) ([]uint64, int) {
	prev := make([]uint64, len(s.addrs))
	for i, a := range s.addrs {
		prev[i] = x.Load(a)
	}
	for rounds := 2; ; rounds++ {
		cur := make([]uint64, len(s.addrs))
		same := true
		for i, a := range s.addrs {
			cur[i] = x.Load(a)
			if cur[i] != prev[i] {
				same = false
			}
		}
		if same {
			return cur, rounds
		}
		prev = cur
	}
}
