package ds

import (
	"testing"

	"leaserelease/internal/linearize"
	"leaserelease/internal/machine"
)

func TestLCRQSequentialFIFO(t *testing.T) {
	m := newM(1)
	q := NewLCRQ(m.Direct(), 8)
	var out []uint64
	var emptyOK bool
	m.Spawn(0, func(c *machine.Ctx) {
		_, ok := q.Dequeue(c)
		emptyOK = !ok
		for i := uint64(1); i <= 20; i++ { // crosses segment boundaries
			q.Enqueue(c, i)
		}
		for i := 0; i < 20; i++ {
			v, ok := q.Dequeue(c)
			if !ok {
				t.Errorf("premature empty at %d", i)
				return
			}
			out = append(out, v)
		}
		if _, ok := q.Dequeue(c); ok {
			t.Error("Dequeue on drained queue returned a value")
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !emptyOK {
		t.Fatal("empty Dequeue returned a value")
	}
	for i, v := range out {
		if v != uint64(i+1) {
			t.Fatalf("FIFO violated at %d: %v", i, out)
		}
	}
}

func TestLCRQInterleavedSequential(t *testing.T) {
	m := newM(1)
	q := NewLCRQ(m.Direct(), 4)
	m.Spawn(0, func(c *machine.Ctx) {
		next, expect := uint64(1), uint64(1)
		r := c.Rand()
		for op := 0; op < 300; op++ {
			if r.Intn(2) == 0 {
				q.Enqueue(c, next)
				next++
			} else if v, ok := q.Dequeue(c); ok {
				if v != expect {
					t.Errorf("dequeued %d, expected %d", v, expect)
					return
				}
				expect++
			} else if expect != next {
				t.Errorf("empty but %d..%d outstanding", expect, next-1)
				return
			}
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestLCRQConservation(t *testing.T) {
	const cores, per = 8, 50
	m := newM(cores)
	q := NewLCRQ(m.Direct(), 16)
	popped := make([][]uint64, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				q.Enqueue(c, uint64(i*per+n)+1)
				if v, ok := q.Dequeue(c); ok {
					popped[i] = append(popped[i], v)
				}
				c.Work(c.Rand().Uint64n(40))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	total := 0
	for ci, ps := range popped {
		last := map[uint64]uint64{}
		for _, v := range ps {
			producer := (v - 1) / per
			if prev, ok := last[producer]; ok && v <= prev {
				t.Fatalf("consumer %d saw producer %d out of order (%d after %d)",
					ci, producer, v, prev)
			}
			last[producer] = v
			seen[v]++
			total++
		}
	}
	d := m.Direct()
	for v, ok := q.Dequeue(d); ok; v, ok = q.Dequeue(d) {
		seen[v]++
		total++
	}
	if total != cores*per {
		t.Fatalf("enqueued %d, accounted %d", cores*per, total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d seen %d times", v, n)
		}
	}
}

func TestLCRQLinearizable(t *testing.T) {
	for trial := 0; trial < 2; trial++ {
		m := newM(4)
		q := NewLCRQ(m.Direct(), 4) // tiny ring: exercise closing under load
		rec := &linearize.Recorder{}
		for i := 0; i < 4; i++ {
			i := i
			m.Spawn(0, func(c *machine.Ctx) {
				for n := 0; n < 4; n++ {
					if c.Rand().Intn(2) == 0 {
						v := uint64(i*100+n) + 1
						inv := c.Now()
						q.Enqueue(c, v)
						rec.Record(i, inv, c.Now(), "enq", v, 0, true)
					} else {
						inv := c.Now()
						v, ok := q.Dequeue(c)
						rec.Record(i, inv, c.Now(), "deq", 0, v, ok)
					}
					c.Work(c.Rand().Uint64n(64))
				}
			})
		}
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		if !linearize.Check(rec.Ops, linearize.QueueModel()) {
			t.Fatalf("LCRQ history not linearizable:\n%v", rec.Ops)
		}
	}
}

func TestLCRQValueRangePanics(t *testing.T) {
	m := newM(1)
	q := NewLCRQ(m.Direct(), 8)
	m.Spawn(0, func(c *machine.Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range value did not panic")
			}
		}()
		q.Enqueue(c, 1<<40)
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
}
