package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// FCStack is a flat-combining stack after Hendler, Incze, Shavit &
// Tzafrir [18] — the §2 "combining" software technique: threads publish
// operations in per-thread records; whoever wins the combiner lock applies
// everyone's pending operations to a sequential stack and distributes the
// results, so the hotspot is touched by one thread at a time.
type FCStack struct {
	lock    mem.Addr // combiner try-lock
	head    mem.Addr // sequential stack head (combiner-only)
	records []mem.Addr
	// CombineRounds bounds how long a waiting thread spins before trying
	// to become the combiner itself.
	CombineRounds int
}

// Publication record layout (one line per thread).
const (
	fcOp    = 0 // 0 = none, 1 = push pending, 2 = pop pending
	fcArg   = 8
	fcDone  = 16 // set by the combiner
	fcRet   = 24
	fcRetOK = 32
	fcSize  = 40
	fcNone  = 0
	fcPush  = 1
	fcPop   = 2
)

// NewFCStack allocates the stack with one publication record per thread.
func NewFCStack(x machine.API, threads int) *FCStack {
	s := &FCStack{lock: x.Alloc(8), head: x.Alloc(8), CombineRounds: 32}
	for i := 0; i < threads; i++ {
		s.records = append(s.records, x.Alloc(fcSize))
	}
	return s
}

// Push pushes v on behalf of thread tid.
func (s *FCStack) Push(x machine.API, tid int, v uint64) {
	s.run(x, tid, fcPush, v)
}

// Pop pops on behalf of thread tid.
func (s *FCStack) Pop(x machine.API, tid int) (uint64, bool) {
	r := s.records[tid]
	s.run(x, tid, fcPop, 0)
	return x.Load(r + fcRet), x.Load(r+fcRetOK) == 1
}

// run publishes the op and waits for a combiner (possibly itself).
func (s *FCStack) run(x machine.API, tid int, op, arg uint64) {
	r := s.records[tid]
	x.Store(r+fcDone, 0)
	x.Store(r+fcArg, arg)
	x.Store(r+fcOp, op) // publish last
	for {
		// Spin a little waiting for a passing combiner.
		for i := 0; i < s.CombineRounds; i++ {
			if x.Load(r+fcDone) == 1 {
				return
			}
			x.Work(16)
		}
		// Try to become the combiner.
		if x.Load(s.lock) == 0 && x.Swap(s.lock, 1) == 0 {
			s.combine(x)
			x.Store(s.lock, 0)
			if x.Load(r+fcDone) == 1 {
				return
			}
			// The record republished after our own scan: loop again.
		}
	}
}

// combine applies every pending published op to the sequential stack.
func (s *FCStack) combine(x machine.API) {
	for _, r := range s.records {
		op := x.Load(r + fcOp)
		if op == fcNone || x.Load(r+fcDone) == 1 {
			continue
		}
		switch op {
		case fcPush:
			node := x.Alloc(stkSize)
			x.Store(node+stkValue, x.Load(r+fcArg))
			x.Store(node+stkNext, x.Load(s.head))
			x.Store(s.head, uint64(node))
		case fcPop:
			h := x.Load(s.head)
			if h == 0 {
				x.Store(r+fcRetOK, 0)
			} else {
				x.Store(r+fcRet, x.Load(mem.Addr(h)+stkValue))
				x.Store(r+fcRetOK, 1)
				x.Store(s.head, x.Load(mem.Addr(h)+stkNext))
			}
		}
		x.Store(r+fcOp, fcNone)
		x.Store(r+fcDone, 1)
	}
}

// Len walks the sequential stack (test oracle; quiescent use only).
func (s *FCStack) Len(x machine.API) int {
	n := 0
	for p := x.Load(s.head); p != 0; p = x.Load(mem.Addr(p) + stkNext) {
		n++
	}
	return n
}
