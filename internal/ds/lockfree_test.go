package ds

import (
	"testing"

	"leaserelease/internal/machine"
)

// lock-free structure adapters for the shared set test harness.

type lfskipOps struct{ s *LFSkipList }

func (l lfskipOps) ins(x machine.API, k uint64) bool { return l.s.Insert(x, k) }
func (l lfskipOps) del(x machine.API, k uint64) bool { return l.s.Remove(x, k) }
func (l lfskipOps) has(x machine.API, k uint64) bool { return l.s.Contains(x, k) }
func (l lfskipOps) check(x machine.API) error        { return l.s.CheckInvariants(x) }

type nmOps struct{ t *NMTree }

func (n nmOps) ins(x machine.API, k uint64) bool { return n.t.Insert(x, k) }
func (n nmOps) del(x machine.API, k uint64) bool { return n.t.Delete(x, k) }
func (n nmOps) has(x machine.API, k uint64) bool { return n.t.Contains(x, k) }
func (n nmOps) check(x machine.API) error        { return n.t.CheckInvariants(x) }

type mhashOps struct{ h *MichaelHashMap }

func (m mhashOps) ins(x machine.API, k uint64) bool { return m.h.Insert(x, k) }
func (m mhashOps) del(x machine.API, k uint64) bool { return m.h.Remove(x, k) }
func (m mhashOps) has(x machine.API, k uint64) bool { return m.h.Contains(x, k) }
func (m mhashOps) check(x machine.API) error        { return m.h.CheckInvariants(x) }

func lockFreeMakers() map[string]func(x machine.API, lease uint64) setOps {
	return map[string]func(x machine.API, lease uint64) setOps{
		"lfskip": func(x machine.API, lease uint64) setOps {
			s := NewLFSkipList(x)
			s.LeaseTime = lease
			return lfskipOps{s}
		},
		"nmtree": func(x machine.API, lease uint64) setOps {
			t := NewNMTree(x)
			t.LeaseTime = lease
			return nmOps{t}
		},
		"michaelhash": func(x machine.API, lease uint64) setOps {
			return mhashOps{NewMichaelHashMap(x, 16, lease)}
		},
	}
}

func TestLockFreeSetsSequentialModel(t *testing.T) {
	for name, mk := range lockFreeMakers() {
		for _, lease := range []uint64{0, 20000} {
			name, mk, lease := name, mk, lease
			t.Run(name, func(t *testing.T) {
				m := newM(1)
				s := mk(m.Direct(), lease)
				m.Spawn(0, func(c *machine.Ctx) {
					model := map[uint64]bool{}
					r := c.Rand()
					for i := 0; i < 500; i++ {
						k := uint64(r.Intn(48) + 1)
						switch r.Intn(3) {
						case 0:
							if s.ins(c, k) == model[k] {
								t.Errorf("%s insert(%d) disagrees with model", name, k)
								return
							}
							model[k] = true
						case 1:
							if s.del(c, k) != model[k] {
								t.Errorf("%s delete(%d) disagrees with model", name, k)
								return
							}
							delete(model, k)
						case 2:
							if s.has(c, k) != model[k] {
								t.Errorf("%s contains(%d) disagrees with model", name, k)
								return
							}
						}
					}
				})
				if err := m.Drain(); err != nil {
					t.Fatal(err)
				}
				if err := s.check(m.Direct()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestLockFreeSetsConcurrentDisjointKeys(t *testing.T) {
	const cores, opsPer, keysPer = 8, 150, 16
	for name, mk := range lockFreeMakers() {
		for _, lease := range []uint64{0, 20000} {
			name, mk, lease := name, mk, lease
			t.Run(name, func(t *testing.T) {
				m := newM(cores)
				s := mk(m.Direct(), lease)
				finalModel := make([]map[uint64]bool, cores)
				for i := 0; i < cores; i++ {
					i := i
					m.Spawn(0, func(c *machine.Ctx) {
						model := map[uint64]bool{}
						finalModel[i] = model
						base := uint64(i*keysPer + 1)
						r := c.Rand()
						for n := 0; n < opsPer; n++ {
							k := base + uint64(r.Intn(keysPer))
							switch r.Intn(3) {
							case 0:
								if s.ins(c, k) == model[k] {
									t.Errorf("%s: core %d insert(%d) wrong", name, i, k)
									return
								}
								model[k] = true
							case 1:
								if s.del(c, k) != model[k] {
									t.Errorf("%s: core %d delete(%d) wrong", name, i, k)
									return
								}
								delete(model, k)
							case 2:
								if s.has(c, k) != model[k] {
									t.Errorf("%s: core %d contains(%d) wrong", name, i, k)
									return
								}
							}
						}
					})
				}
				if err := m.Drain(); err != nil {
					t.Fatal(err)
				}
				if err := s.check(m.Direct()); err != nil {
					t.Fatal(err)
				}
				d := m.Direct()
				for i, model := range finalModel {
					base := uint64(i*keysPer + 1)
					for k := base; k < base+keysPer; k++ {
						if s.has(d, k) != model[k] {
							t.Fatalf("%s: final membership of %d = %v, model %v",
								name, k, s.has(d, k), model[k])
						}
					}
				}
			})
		}
	}
}

// TestLockFreeSetsSharedHotKeys hammers a tiny shared key range from all
// threads (maximum structural contention: concurrent inserts and deletes
// of the same keys) and then checks structural invariants plus a final
// sequential sanity pass.
func TestLockFreeSetsSharedHotKeys(t *testing.T) {
	const cores, opsPer, keys = 8, 150, 6
	for name, mk := range lockFreeMakers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newM(cores)
			s := mk(m.Direct(), 0)
			for i := 0; i < cores; i++ {
				m.Spawn(0, func(c *machine.Ctx) {
					r := c.Rand()
					for n := 0; n < opsPer; n++ {
						k := uint64(r.Intn(keys) + 1)
						switch r.Intn(3) {
						case 0:
							s.ins(c, k)
						case 1:
							s.del(c, k)
						default:
							s.has(c, k)
						}
					}
				})
			}
			if err := m.Drain(); err != nil {
				t.Fatal(err)
			}
			if err := s.check(m.Direct()); err != nil {
				t.Fatal(err)
			}
			// Quiescent sequential sanity: the structure still behaves
			// as a set.
			m2 := m.Direct()
			for k := uint64(1); k <= keys; k++ {
				was := s.has(m2, k)
				if s.ins(m2, k) == was {
					t.Fatalf("%s: post-stress insert(%d) inconsistent", name, k)
				}
				if !s.has(m2, k) {
					t.Fatalf("%s: post-stress key %d missing after insert", name, k)
				}
				if !s.del(m2, k) || s.has(m2, k) {
					t.Fatalf("%s: post-stress delete(%d) inconsistent", name, k)
				}
			}
		})
	}
}
