package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// BST is a leaf-oriented (external) binary search tree with per-node locks
// and mark-based validation: searches are lock-free; an insert locks the
// parent, a delete locks grandparent and parent (always ancestor before
// descendant, so lock ordering is acyclic). It stands in for the paper's
// low-contention tree baselines [31] (see DESIGN.md substitution 3).
//
// With LeaseTime > 0 the locked nodes' lines are leased for the update
// window (the low-contention lease placement of §7). Keys must lie in
// [1, 2^64-3]; the two largest values are infinity sentinels.
type BST struct {
	root      mem.Addr // internal sentinel (key = inf2)
	LeaseTime uint64
}

const (
	bstKey    = 0
	bstIsLeaf = 8
	bstLeft   = 16
	bstRight  = 24
	bstLock   = 32
	bstMarked = 40
	bstSize   = 48

	inf1 = ^uint64(0) - 1
	inf2 = ^uint64(0)
)

// NewBST allocates the sentinel skeleton: root(inf2) with children
// leaf(inf1) and leaf(inf2).
func NewBST(x machine.API) *BST {
	t := &BST{root: x.Alloc(bstSize)}
	l1 := x.Alloc(bstSize)
	l2 := x.Alloc(bstSize)
	x.Store(l1+bstKey, inf1)
	x.Store(l1+bstIsLeaf, 1)
	x.Store(l2+bstKey, inf2)
	x.Store(l2+bstIsLeaf, 1)
	x.Store(t.root+bstKey, inf2)
	x.Store(t.root+bstLeft, uint64(l1))
	x.Store(t.root+bstRight, uint64(l2))
	return t
}

func (t *BST) newLeaf(x machine.API, key uint64) mem.Addr {
	n := x.Alloc(bstSize)
	x.Store(n+bstKey, key)
	x.Store(n+bstIsLeaf, 1)
	return n
}

// childField returns the address of the parent's pointer slot that a
// search for key follows.
func childField(x machine.API, parent mem.Addr, key uint64) mem.Addr {
	if key < x.Load(parent+bstKey) {
		return parent + bstLeft
	}
	return parent + bstRight
}

// find walks to the leaf for key, returning grandparent, parent, and leaf.
func (t *BST) find(x machine.API, key uint64) (gparent, parent, leaf mem.Addr) {
	gparent = 0
	parent = t.root
	leaf = mem.Addr(x.Load(childField(x, parent, key)))
	for x.Load(leaf+bstIsLeaf) == 0 {
		gparent = parent
		parent = leaf
		leaf = mem.Addr(x.Load(childField(x, leaf, key)))
	}
	return gparent, parent, leaf
}

// lockNode spin-acquires a node's lock, leasing the node line only once
// the lock is won (see LazySkipList.lockNode for the rationale).
func (t *BST) lockNode(x machine.API, n mem.Addr) {
	for {
		if x.Load(n+bstLock) == 0 && x.Swap(n+bstLock, 1) == 0 {
			if t.LeaseTime > 0 {
				x.Lease(n, t.LeaseTime)
			}
			return
		}
		x.Work(8)
	}
}

func (t *BST) unlockNode(x machine.API, n mem.Addr) {
	x.Store(n+bstLock, 0)
	if t.LeaseTime > 0 {
		x.Release(n)
	}
}

// Insert adds key, reporting whether it was absent.
func (t *BST) Insert(x machine.API, key uint64) bool {
	for {
		_, parent, leaf := t.find(x, key)
		if x.Load(leaf+bstKey) == key {
			return false
		}
		t.lockNode(x, parent)
		slot := childField(x, parent, key)
		if x.Load(parent+bstMarked) != 0 || mem.Addr(x.Load(slot)) != leaf {
			t.unlockNode(x, parent)
			continue // structure changed underneath; retry
		}
		// Replace leaf by internal(max) with {leaf, newLeaf} ordered.
		newLeaf := t.newLeaf(x, key)
		internal := x.Alloc(bstSize)
		leafKey := x.Load(leaf + bstKey)
		if key < leafKey {
			x.Store(internal+bstKey, leafKey)
			x.Store(internal+bstLeft, uint64(newLeaf))
			x.Store(internal+bstRight, uint64(leaf))
		} else {
			x.Store(internal+bstKey, key)
			x.Store(internal+bstLeft, uint64(leaf))
			x.Store(internal+bstRight, uint64(newLeaf))
		}
		x.Store(slot, uint64(internal))
		t.unlockNode(x, parent)
		return true
	}
}

// Delete removes key, reporting whether it was present. The parent
// internal node is spliced out and marked.
func (t *BST) Delete(x machine.API, key uint64) bool {
	for {
		gparent, parent, leaf := t.find(x, key)
		if x.Load(leaf+bstKey) != key {
			return false
		}
		if gparent == 0 {
			// key's leaf hangs directly off the root sentinel; the
			// sentinel structure guarantees this only happens for
			// sentinel keys, which are never deleted.
			return false
		}
		t.lockNode(x, gparent)
		t.lockNode(x, parent)
		gslot := childField(x, gparent, key)
		pslot := childField(x, parent, key)
		valid := x.Load(gparent+bstMarked) == 0 &&
			x.Load(parent+bstMarked) == 0 &&
			mem.Addr(x.Load(gslot)) == parent &&
			mem.Addr(x.Load(pslot)) == leaf
		if !valid {
			t.unlockNode(x, parent)
			t.unlockNode(x, gparent)
			continue
		}
		// Splice: grandparent adopts the sibling; parent is retired.
		var sibling uint64
		if pslot == parent+bstLeft {
			sibling = x.Load(parent + bstRight)
		} else {
			sibling = x.Load(parent + bstLeft)
		}
		x.Store(parent+bstMarked, 1)
		x.Store(gslot, sibling)
		t.unlockNode(x, parent)
		t.unlockNode(x, gparent)
		return true
	}
}

// Contains reports key membership (lock-free traversal).
func (t *BST) Contains(x machine.API, key uint64) bool {
	_, _, leaf := t.find(x, key)
	return x.Load(leaf+bstKey) == key
}

// Keys returns all live keys in order (test oracle; quiescent use only).
func (t *BST) Keys(x machine.API) []uint64 {
	var out []uint64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if x.Load(n+bstIsLeaf) == 1 {
			if k := x.Load(n + bstKey); k < inf1 {
				out = append(out, k)
			}
			return
		}
		walk(mem.Addr(x.Load(n + bstLeft)))
		walk(mem.Addr(x.Load(n + bstRight)))
	}
	walk(t.root)
	return out
}

// CheckInvariants validates the external-BST ordering property on a
// quiescent tree (test oracle).
func (t *BST) CheckInvariants(x machine.API) error {
	keys := t.Keys(x)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return errOutOfOrder
		}
	}
	return nil
}
