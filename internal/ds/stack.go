// Package ds implements the paper's data structure suite on simulated
// memory: the Treiber stack, the Michael–Scott queue, skiplist-based
// priority queues (Lotan–Shavit), the Harris lock-free list, a lazy
// lock-based skiplist set, a chained hash table, a leaf-oriented BST, and
// the §5 cheap-snapshot primitive — each with the paper's lease placements
// as options.
//
// All structures operate on mem.Addr words through a machine.API, so the
// same code runs both untimed (setup, via machine.Direct) and fully timed
// on simulated cores (via machine.Ctx). Simulated pointers are word values
// holding addresses; 0 is NULL. Nodes are cache-line aligned so that no
// two nodes (or a node and a sentinel pointer) falsely share a line — the
// §7 requirement for correct lease behaviour.
package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// Backoff configures truncated exponential backoff between retries of a
// failed atomic update. Zero value = no backoff.
type Backoff struct {
	Min uint64 // initial pause in cycles (0 disables backoff)
	Max uint64 // pause cap
}

// wait burns the current pause and doubles it up to Max, with a ±25%
// deterministic jitter from the thread's RNG.
func (b *Backoff) wait(x machine.API, cur *uint64) {
	if b.Min == 0 {
		return
	}
	if *cur == 0 {
		*cur = b.Min
	}
	p := *cur
	jitter := p / 4
	if jitter > 0 {
		p = p - jitter + x.Rand().Uint64n(2*jitter)
	}
	x.Work(p)
	if *cur *= 2; *cur > b.Max {
		*cur = b.Max
	}
}

// StackOptions selects the Treiber stack variant.
type StackOptions struct {
	// Lease, when nonzero, leases the head pointer for the read-CAS
	// window (Figure 1) with the given lease time.
	Lease uint64
	// Backoff adds exponential backoff on CAS failure (the classic
	// software mitigation the paper compares against).
	Backoff Backoff
}

// Stack is Treiber's lock-free stack [41].
type Stack struct {
	head mem.Addr
	opt  StackOptions
}

// Stack node layout (one cache line per node).
const (
	stkNext  = 0
	stkValue = 8
	stkSize  = 16
)

// NewStack allocates an empty stack.
func NewStack(x machine.API, opt StackOptions) *Stack {
	return &Stack{head: x.Alloc(8), opt: opt}
}

// Push pushes v, following Figure 1's lease placement: lease the head for
// the read-CAS interval so the CAS cannot fail while the lease holds.
func (s *Stack) Push(x machine.API, v uint64) {
	node := x.Alloc(stkSize)
	x.Store(node+stkValue, v)
	var pause uint64
	for {
		if s.opt.Lease > 0 {
			x.Lease(s.head, s.opt.Lease)
		}
		h := x.Load(s.head)
		x.Store(node+stkNext, h)
		ok := x.CAS(s.head, h, uint64(node))
		if s.opt.Lease > 0 {
			x.Release(s.head)
		}
		if ok {
			return
		}
		s.opt.Backoff.wait(x, &pause)
	}
}

// Pop removes and returns the top value; ok=false on an empty stack.
func (s *Stack) Pop(x machine.API) (v uint64, ok bool) {
	var pause uint64
	for {
		if s.opt.Lease > 0 {
			x.Lease(s.head, s.opt.Lease)
		}
		h := x.Load(s.head)
		if h == 0 {
			if s.opt.Lease > 0 {
				x.Release(s.head)
			}
			return 0, false
		}
		next := x.Load(mem.Addr(h) + stkNext)
		val := x.Load(mem.Addr(h) + stkValue)
		okCAS := x.CAS(s.head, h, next)
		if s.opt.Lease > 0 {
			x.Release(s.head)
		}
		if okCAS {
			return val, true
		}
		s.opt.Backoff.wait(x, &pause)
	}
}

// Len walks the stack (untimed oracle for tests; use with machine.Direct).
func (s *Stack) Len(x machine.API) int {
	n := 0
	for p := x.Load(s.head); p != 0; p = x.Load(mem.Addr(p) + stkNext) {
		n++
	}
	return n
}
