package ds

import "errors"

// Structural-invariant violations reported by the Check* test oracles.
var (
	errOutOfOrder  = errors.New("ds: keys out of order")
	errBrokenTower = errors.New("ds: skiplist tower has a nil link")
)
