package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// LFSkipList is a lock-free skiplist set in the Fraser / Herlihy–Shavit
// style (the paper's skiplist baseline [15]): towers of markable next
// pointers, logical deletion by marking every level top-down, physical
// unlinking by the find routine. Keys must lie in [1, 2^64-2].
//
// With LeaseTime > 0 the bottom-level predecessor is leased around the
// linking/unlinking CAS windows — the paper's predecessor-lease placement
// for linear structures.
type LFSkipList struct {
	head mem.Addr
	tail mem.Addr
	// LeaseTime enables the predecessor lease (0 = base).
	LeaseTime uint64
}

const (
	lfsMaxLevel = 12

	lfsKey  = 0
	lfsTop  = 8
	lfsNext = 16 // markable next[level] at lfsNext + 8*level
)

func lfsNodeSize() uint64 { return lfsNext + 8*lfsMaxLevel }

// NewLFSkipList allocates an empty set.
func NewLFSkipList(x machine.API) *LFSkipList {
	s := &LFSkipList{head: x.Alloc(lfsNodeSize()), tail: x.Alloc(lfsNodeSize())}
	x.Store(s.head+lfsKey, 0)
	x.Store(s.tail+lfsKey, ^uint64(0))
	x.Store(s.head+lfsTop, lfsMaxLevel-1)
	x.Store(s.tail+lfsTop, lfsMaxLevel-1)
	for l := 0; l < lfsMaxLevel; l++ {
		x.Store(s.head+lfsNext+mem.Addr(8*l), uint64(s.tail))
	}
	return s
}

func lfsNextField(n mem.Addr, level int) mem.Addr { return n + lfsNext + mem.Addr(8*level) }

// find locates key's unmarked predecessors and successors per level,
// snipping out marked nodes as it goes. It reports whether an unmarked
// node with the key sits at the bottom level.
func (s *LFSkipList) find(x machine.API, key uint64, preds, succs *[lfsMaxLevel]mem.Addr) bool {
retry:
	for {
		pred := s.head
		for level := lfsMaxLevel - 1; level >= 0; level-- {
			curr := mem.Addr(unmark(x.Load(lfsNextField(pred, level))))
			for {
				succ := x.Load(lfsNextField(curr, level))
				for marked(succ) {
					// curr is logically deleted at this level: snip it.
					if !x.CAS(lfsNextField(pred, level), uint64(curr), unmark(succ)) {
						continue retry
					}
					curr = mem.Addr(unmark(succ))
					succ = x.Load(lfsNextField(curr, level))
				}
				if x.Load(curr+lfsKey) < key {
					pred = curr
					curr = mem.Addr(unmark(succ))
					continue
				}
				break
			}
			preds[level] = pred
			succs[level] = curr
		}
		return x.Load(succs[0]+lfsKey) == key
	}
}

// Insert adds key, reporting whether it was absent.
func (s *LFSkipList) Insert(x machine.API, key uint64) bool {
	topLevel := randomLevel(x, lfsMaxLevel) - 1
	var preds, succs [lfsMaxLevel]mem.Addr
	var node mem.Addr
	for {
		if s.find(x, key, &preds, &succs) {
			return false
		}
		if node == 0 {
			node = x.Alloc(lfsNodeSize())
			x.Store(node+lfsKey, key)
			x.Store(node+lfsTop, uint64(topLevel))
		}
		for level := 0; level <= topLevel; level++ {
			x.Store(lfsNextField(node, level), uint64(succs[level]))
		}
		// Linearize: link at the bottom level.
		if s.LeaseTime > 0 {
			x.Lease(preds[0], s.LeaseTime)
		}
		ok := x.CAS(lfsNextField(preds[0], 0), uint64(succs[0]), uint64(node))
		if s.LeaseTime > 0 {
			x.Release(preds[0])
		}
		if !ok {
			continue
		}
		// Link the upper levels, refreshing preds/succs as needed.
		for level := 1; level <= topLevel; level++ {
			for {
				cur := x.Load(lfsNextField(node, level))
				if marked(cur) {
					return true // concurrently deleted; stop linking
				}
				if mem.Addr(cur) != succs[level] {
					// Our forward pointer went stale after a re-find.
					if !x.CAS(lfsNextField(node, level), cur, uint64(succs[level])) {
						return true // marked under us
					}
				}
				if x.CAS(lfsNextField(preds[level], level), uint64(succs[level]), uint64(node)) {
					break
				}
				s.find(x, key, &preds, &succs)
				if succs[0] != node {
					return true // physically removed already
				}
			}
		}
		return true
	}
}

// Remove deletes key, reporting whether this call logically deleted it.
func (s *LFSkipList) Remove(x machine.API, key uint64) bool {
	var preds, succs [lfsMaxLevel]mem.Addr
	for {
		if !s.find(x, key, &preds, &succs) {
			return false
		}
		victim := succs[0]
		topLevel := int(x.Load(victim + lfsTop))
		// Mark the upper levels top-down.
		for level := topLevel; level >= 1; level-- {
			for {
				succ := x.Load(lfsNextField(victim, level))
				if marked(succ) {
					break
				}
				if x.CAS(lfsNextField(victim, level), succ, succ|markBit) {
					break
				}
			}
		}
		// Linearize: mark the bottom level.
		for {
			succ := x.Load(lfsNextField(victim, 0))
			if marked(succ) {
				return false // another thread won the deletion
			}
			if s.LeaseTime > 0 {
				x.Lease(victim, s.LeaseTime)
			}
			ok := x.CAS(lfsNextField(victim, 0), succ, succ|markBit)
			if s.LeaseTime > 0 {
				x.Release(victim)
			}
			if ok {
				s.find(x, key, &preds, &succs) // physically unlink
				return true
			}
		}
	}
}

// Contains reports key membership (wait-free, no writes).
func (s *LFSkipList) Contains(x machine.API, key uint64) bool {
	pred := s.head
	var curr mem.Addr
	for level := lfsMaxLevel - 1; level >= 0; level-- {
		curr = mem.Addr(unmark(x.Load(lfsNextField(pred, level))))
		for {
			succ := x.Load(lfsNextField(curr, level))
			for marked(succ) {
				curr = mem.Addr(unmark(succ))
				succ = x.Load(lfsNextField(curr, level))
			}
			if x.Load(curr+lfsKey) < key {
				pred = curr
				curr = mem.Addr(unmark(succ))
				continue
			}
			break
		}
	}
	return x.Load(curr+lfsKey) == key && !marked(x.Load(lfsNextField(curr, 0)))
}

// Len counts unmarked bottom-level nodes (test oracle; quiescent only).
func (s *LFSkipList) Len(x machine.API) int {
	n := 0
	curr := mem.Addr(unmark(x.Load(lfsNextField(s.head, 0))))
	for curr != s.tail {
		if !marked(x.Load(lfsNextField(curr, 0))) {
			n++
		}
		curr = mem.Addr(unmark(x.Load(lfsNextField(curr, 0))))
	}
	return n
}

// CheckInvariants validates sortedness at every level and that upper-level
// chains are sub-sequences of the bottom level (test oracle; quiescent
// use only, after marked nodes settle).
func (s *LFSkipList) CheckInvariants(x machine.API) error {
	// Collect live bottom-level keys.
	live := map[uint64]bool{}
	prev := uint64(0)
	curr := mem.Addr(unmark(x.Load(lfsNextField(s.head, 0))))
	for curr != s.tail {
		if !marked(x.Load(lfsNextField(curr, 0))) {
			k := x.Load(curr + lfsKey)
			if k <= prev {
				return errOutOfOrder
			}
			prev = k
			live[k] = true
		}
		curr = mem.Addr(unmark(x.Load(lfsNextField(curr, 0))))
	}
	// Every unmarked node reachable at an upper level must be live.
	for level := 1; level < lfsMaxLevel; level++ {
		prev = 0
		curr = mem.Addr(unmark(x.Load(lfsNextField(s.head, level))))
		for curr != s.tail {
			k := x.Load(curr + lfsKey)
			if !marked(x.Load(lfsNextField(curr, level))) {
				if k <= prev {
					return errOutOfOrder
				}
				prev = k
				if !marked(x.Load(lfsNextField(curr, 0))) && !live[k] {
					return errBrokenTower
				}
			}
			curr = mem.Addr(unmark(x.Load(lfsNextField(curr, level))))
		}
	}
	return nil
}
