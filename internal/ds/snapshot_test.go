package ds

import (
	"testing"

	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// TestSnapshotConsistency: writers keep all words equal (incrementing them
// together under a joint lease); any consistent snapshot must therefore
// read k identical values. Both snapshot flavours are checked.
func TestSnapshotConsistency(t *testing.T) {
	const words = 4
	for _, flavor := range []string{"lease", "double"} {
		flavor := flavor
		t.Run(flavor, func(t *testing.T) {
			m := newM(4)
			d := m.Direct()
			addrs := make([]mem.Addr, words)
			for i := range addrs {
				addrs[i] = d.Alloc(8)
			}
			snap := NewSnapshot(addrs, 20000)
			// Writer: bumps every word by 1, atomically via MultiLease.
			m.Spawn(0, func(c *machine.Ctx) {
				for {
					c.MultiLease(20000, addrs...)
					for _, a := range addrs {
						c.Store(a, c.Load(a)+1)
					}
					c.ReleaseAll()
					c.Work(200)
				}
			})
			bad := false
			for r := 1; r < 4; r++ {
				m.Spawn(0, func(c *machine.Ctx) {
					for n := 0; n < 25; n++ {
						var vals []uint64
						if flavor == "lease" {
							vals, _ = snap.LeaseCollect(c)
						} else {
							vals, _ = snap.DoubleCollect(c)
						}
						for _, v := range vals[1:] {
							if v != vals[0] {
								bad = true
							}
						}
						c.Work(100)
					}
				})
			}
			if err := m.Run(3_000_000); err != nil {
				t.Fatal(err)
			}
			m.Stop()
			if bad {
				t.Fatalf("%s snapshot observed torn values", flavor)
			}
		})
	}
}

// TestLeaseSnapshotSingleAttemptUncontended: without writers the lease
// snapshot must succeed on the first attempt.
func TestLeaseSnapshotSingleAttemptUncontended(t *testing.T) {
	m := newM(1)
	d := m.Direct()
	addrs := []mem.Addr{d.Alloc(8), d.Alloc(8)}
	d.Store(addrs[0], 10)
	d.Store(addrs[1], 20)
	snap := NewSnapshot(addrs, 20000)
	var vals []uint64
	var attempts int
	m.Spawn(0, func(c *machine.Ctx) { vals, attempts = snap.LeaseCollect(c) })
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if attempts != 1 || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("vals=%v attempts=%d", vals, attempts)
	}
}
