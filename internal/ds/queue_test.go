package ds

import (
	"testing"

	"leaserelease/internal/machine"
)

func TestQueueSequentialFIFO(t *testing.T) {
	for _, mode := range []QueueLeaseMode{QueueNoLease, QueueSingleLease, QueueMultiLease} {
		m := newM(1)
		q := NewQueue(m.Direct(), QueueOptions{Mode: mode, LeaseTime: 20000})
		var out []uint64
		var emptyOK bool
		m.Spawn(0, func(c *machine.Ctx) {
			_, ok := q.Dequeue(c)
			emptyOK = !ok
			for i := uint64(1); i <= 6; i++ {
				q.Enqueue(c, i)
			}
			for i := 0; i < 6; i++ {
				v, ok := q.Dequeue(c)
				if !ok {
					t.Error("premature empty")
					return
				}
				out = append(out, v)
			}
		})
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		if !emptyOK {
			t.Fatalf("mode %v: empty Dequeue returned a value", mode)
		}
		for i, v := range out {
			if v != uint64(i+1) {
				t.Fatalf("mode %v: FIFO violated: %v", mode, out)
			}
		}
	}
}

func runQueueConservation(t *testing.T, mode QueueLeaseMode, cores, per int) {
	t.Helper()
	m := newM(cores)
	q := NewQueue(m.Direct(), QueueOptions{Mode: mode, LeaseTime: 20000})
	popped := make([][]uint64, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				q.Enqueue(c, tag(i, n))
				if v, ok := q.Dequeue(c); ok {
					popped[i] = append(popped[i], v)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	total := 0
	for ci, ps := range popped {
		// FIFO per (producer, consumer) pair: one consumer must see any
		// single producer's values in increasing sequence order.
		last := map[uint64]uint64{}
		for _, v := range ps {
			producer := v >> 32
			if prev, ok := last[producer]; ok && v <= prev {
				t.Fatalf("consumer %d saw producer %d out of order (%#x after %#x)",
					ci, producer, v, prev)
			}
			last[producer] = v
			seen[v]++
			total++
		}
	}
	d := m.Direct()
	rem := 0
	for v, ok := q.Dequeue(d); ok; v, ok = q.Dequeue(d) {
		seen[v]++
		rem++
	}
	if total+rem != cores*per {
		t.Fatalf("enqueued %d, accounted %d", cores*per, total+rem)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
}

func TestQueueConcurrentBase(t *testing.T)  { runQueueConservation(t, QueueNoLease, 8, 40) }
func TestQueueConcurrentLease(t *testing.T) { runQueueConservation(t, QueueSingleLease, 8, 40) }
func TestQueueConcurrentMulti(t *testing.T) { runQueueConservation(t, QueueMultiLease, 8, 40) }
func TestQueueTwoCoreHandoff(t *testing.T) {
	// Producer/consumer across two cores: global FIFO must hold exactly.
	m := newM(2)
	q := NewQueue(m.Direct(), QueueOptions{Mode: QueueSingleLease, LeaseTime: 20000})
	const n = 100
	var got []uint64
	m.Spawn(0, func(c *machine.Ctx) {
		for i := 1; i <= n; i++ {
			q.Enqueue(c, uint64(i))
			c.Work(20)
		}
	})
	m.Spawn(0, func(c *machine.Ctx) {
		for len(got) < n {
			if v, ok := q.Dequeue(c); ok {
				got = append(got, v)
			} else {
				c.Work(50)
			}
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("single-producer FIFO violated at %d: %v...", i, got[:i+1])
		}
	}
}

// TestQueueSingleLeaseBeatsBase reproduces Figure 3 (queue) direction.
func TestQueueSingleLeaseBeatsBase(t *testing.T) {
	run := func(mode QueueLeaseMode) uint64 {
		m := newM(8)
		q := NewQueue(m.Direct(), QueueOptions{Mode: mode, LeaseTime: 20000})
		var ops uint64
		for i := 0; i < 8; i++ {
			m.Spawn(0, func(c *machine.Ctx) {
				for {
					q.Enqueue(c, 1)
					q.Dequeue(c)
					ops += 2
				}
			})
		}
		if err := m.Run(500000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return ops
	}
	base := run(QueueNoLease)
	leased := run(QueueSingleLease)
	if leased <= base {
		t.Fatalf("leased queue %d <= base %d at 8 threads", leased, base)
	}
}
