package ds

import (
	"leaserelease/internal/machine"
)

// MichaelHashMap is Michael's lock-free hash table [26]: a fixed array of
// buckets, each an independent Harris-style lock-free sorted list. All
// operations are lock-free; with LeaseTime > 0 each bucket list uses the
// predecessor-lease placement.
type MichaelHashMap struct {
	buckets []*HarrisList
	mask    uint64
}

// NewMichaelHashMap allocates nBuckets (rounded up to a power of two)
// lock-free buckets.
func NewMichaelHashMap(x machine.API, nBuckets int, leaseTime uint64) *MichaelHashMap {
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	h := &MichaelHashMap{mask: uint64(n - 1)}
	for i := 0; i < n; i++ {
		l := NewHarrisList(x)
		l.LeaseTime = leaseTime
		h.buckets = append(h.buckets, l)
	}
	return h
}

func (h *MichaelHashMap) bucket(key uint64) *HarrisList {
	return h.buckets[(key*0x9e3779b97f4a7c15)>>32&h.mask]
}

// Insert adds key, reporting whether it was absent.
func (h *MichaelHashMap) Insert(x machine.API, key uint64) bool {
	return h.bucket(key).Insert(x, key)
}

// Remove deletes key, reporting whether it was present.
func (h *MichaelHashMap) Remove(x machine.API, key uint64) bool {
	return h.bucket(key).Remove(x, key)
}

// Contains reports key membership.
func (h *MichaelHashMap) Contains(x machine.API, key uint64) bool {
	return h.bucket(key).Contains(x, key)
}

// Len counts all live entries (test oracle; quiescent use only).
func (h *MichaelHashMap) Len(x machine.API) int {
	n := 0
	for _, b := range h.buckets {
		n += b.Len(x)
	}
	return n
}

// CheckInvariants validates every bucket list (test oracle).
func (h *MichaelHashMap) CheckInvariants(x machine.API) error {
	for _, b := range h.buckets {
		if err := b.CheckInvariants(x); err != nil {
			return err
		}
	}
	return nil
}
