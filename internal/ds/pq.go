package ds

import (
	"leaserelease/internal/locks"
	"leaserelease/internal/machine"
)

// PQ is the priority-queue surface of the Figure 3 benchmark: smaller key
// = higher priority.
type PQ interface {
	Insert(x machine.API, key uint64)
	DeleteMin(x machine.API) (uint64, bool)
}

// PQFine is the baseline Lotan–Shavit priority queue [23] over the
// fine-grained-locking skiplist (see DESIGN.md substitution 3 for the
// Pugh-skiplist mapping).
type PQFine struct {
	s *LazySkipList
}

// NewPQFine allocates the baseline priority queue.
func NewPQFine(x machine.API) *PQFine {
	return &PQFine{s: NewLazySkipList(x)}
}

// Insert adds key; a concurrent duplicate is disambiguated by probing
// upward (duplicates are vanishingly rare with wide random keys).
func (p *PQFine) Insert(x machine.API, key uint64) {
	for !p.s.Insert(x, key) {
		key++
	}
}

// DeleteMin removes and returns the highest-priority key.
func (p *PQFine) DeleteMin(x machine.API) (uint64, bool) {
	return p.s.DeleteMin(x)
}

// Len is a test oracle.
func (p *PQFine) Len(x machine.API) int { return p.s.Len(x) }

// PQGlobal is the paper's lease-based priority queue: a sequential
// skiplist protected by one global try-lock, with the lock variable leased
// for the critical section (§6 "Leases for TryLocks"). With LeaseTime = 0
// it degrades to a plain global-lock queue (an additional baseline).
type PQGlobal struct {
	lock locks.TryLock
	s    *SeqSkipList
}

// NewPQGlobal allocates the global-lock priority queue. leaseTime > 0
// wraps the lock in the §6 leased pattern.
func NewPQGlobal(x machine.API, leaseTime uint64) *PQGlobal {
	var l locks.TryLock = locks.NewTTS(x)
	if leaseTime > 0 {
		l = locks.NewLeased(l, leaseTime)
	}
	return &PQGlobal{lock: l, s: NewSeqSkipList(x)}
}

// Insert adds key under the global lock.
func (p *PQGlobal) Insert(x machine.API, key uint64) {
	p.lock.Lock(x)
	p.s.Insert(x, key, 0)
	p.lock.Unlock(x)
}

// DeleteMin removes the smallest key under the global lock.
func (p *PQGlobal) DeleteMin(x machine.API) (uint64, bool) {
	p.lock.Lock(x)
	k, ok := p.s.DeleteMin(x)
	p.lock.Unlock(x)
	return k, ok
}

// Len is a test oracle.
func (p *PQGlobal) Len(x machine.API) int { return p.s.Len(x) }
