package ds

import (
	"testing"

	"leaserelease/internal/linearize"
	"leaserelease/internal/machine"
)

// TestEliminationStackLinearizable: eliminated push/pop pairs must still
// appear as a legal LIFO order in real histories.
func TestEliminationStackLinearizable(t *testing.T) {
	m := newM(4)
	s := NewEliminationStack(m.Direct(), 2)
	s.SpinCycles = 600
	rec := &linearize.Recorder{}
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 4; n++ {
				if i%2 == 0 {
					v := tag(i, n)
					inv := c.Now()
					s.Push(c, v)
					rec.Record(i, inv, c.Now(), "push", v, 0, true)
				} else {
					inv := c.Now()
					v, ok := s.Pop(c)
					rec.Record(i, inv, c.Now(), "pop", 0, v, ok)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !linearize.Check(rec.Ops, linearize.StackModel()) {
		t.Fatalf("elimination stack history not linearizable:\n%v", rec.Ops)
	}
}

// TestFCStackLinearizable: combined operations must appear as a legal
// LIFO order in real histories.
func TestFCStackLinearizable(t *testing.T) {
	m := newM(4)
	s := NewFCStack(m.Direct(), 4)
	rec := &linearize.Recorder{}
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 4; n++ {
				if c.Rand().Intn(2) == 0 {
					v := tag(i, n)
					inv := c.Now()
					s.Push(c, i, v)
					rec.Record(i, inv, c.Now(), "push", v, 0, true)
				} else {
					inv := c.Now()
					v, ok := s.Pop(c, i)
					rec.Record(i, inv, c.Now(), "pop", 0, v, ok)
				}
				c.Work(c.Rand().Uint64n(64))
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !linearize.Check(rec.Ops, linearize.StackModel()) {
		t.Fatalf("flat-combining stack history not linearizable:\n%v", rec.Ops)
	}
}

// TestLFSkipListLinearizable: lock-free skiplist under maximal key
// conflicts.
func TestLFSkipListLinearizable(t *testing.T) {
	m := newM(4)
	s := NewLFSkipList(m.Direct())
	rec := &linearize.Recorder{}
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 5; n++ {
				k := uint64(c.Rand().Intn(3) + 1)
				inv := c.Now()
				switch c.Rand().Intn(3) {
				case 0:
					ok := s.Insert(c, k)
					rec.Record(i, inv, c.Now(), "ins", k, 0, ok)
				case 1:
					ok := s.Remove(c, k)
					rec.Record(i, inv, c.Now(), "del", k, 0, ok)
				default:
					ok := s.Contains(c, k)
					rec.Record(i, inv, c.Now(), "has", k, 0, ok)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !linearize.Check(rec.Ops, linearize.SetModel()) {
		t.Fatalf("lock-free skiplist history not linearizable:\n%v", rec.Ops)
	}
}

// TestNMTreeLinearizable: lock-free BST under maximal key conflicts.
func TestNMTreeLinearizable(t *testing.T) {
	m := newM(4)
	tree := NewNMTree(m.Direct())
	rec := &linearize.Recorder{}
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 5; n++ {
				k := uint64(c.Rand().Intn(3) + 1)
				inv := c.Now()
				switch c.Rand().Intn(3) {
				case 0:
					ok := tree.Insert(c, k)
					rec.Record(i, inv, c.Now(), "ins", k, 0, ok)
				case 1:
					ok := tree.Delete(c, k)
					rec.Record(i, inv, c.Now(), "del", k, 0, ok)
				default:
					ok := tree.Contains(c, k)
					rec.Record(i, inv, c.Now(), "has", k, 0, ok)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	if !linearize.Check(rec.Ops, linearize.SetModel()) {
		t.Fatalf("lock-free BST history not linearizable:\n%v", rec.Ops)
	}
}
