package ds

import (
	"testing"
	"testing/quick"

	"leaserelease/internal/machine"
)

// TestLCRQVsSliceModel property-checks the ring queue against a slice
// model over random single-threaded op sequences (ring boundary crossings
// and segment closures included, thanks to the tiny ring).
func TestLCRQVsSliceModel(t *testing.T) {
	f := func(ops []bool) bool {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		m := machine.New(machine.DefaultConfig(1))
		q := NewLCRQ(m.Direct(), 4)
		ok := true
		m.Spawn(0, func(c *machine.Ctx) {
			var model []uint64
			next := uint64(1)
			for _, enq := range ops {
				if enq {
					q.Enqueue(c, next)
					model = append(model, next)
					next++
				} else {
					v, got := q.Dequeue(c)
					if len(model) == 0 {
						if got {
							ok = false
							return
						}
					} else {
						if !got || v != model[0] {
							ok = false
							return
						}
						model = model[1:]
					}
				}
			}
			if q.Len(c) != len(model) {
				ok = false
			}
		})
		if err := m.Drain(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHarrisListVsMapModel property-checks the lock-free list against a
// map model over random single-threaded op sequences.
func TestHarrisListVsMapModel(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
	}
	f := func(ops []op) bool {
		if len(ops) > 250 {
			ops = ops[:250]
		}
		m := machine.New(machine.DefaultConfig(1))
		l := NewHarrisList(m.Direct())
		ok := true
		m.Spawn(0, func(c *machine.Ctx) {
			model := map[uint64]bool{}
			for _, o := range ops {
				k := uint64(o.Key%32) + 1
				switch o.Kind % 3 {
				case 0:
					if l.Insert(c, k) == model[k] {
						ok = false
						return
					}
					model[k] = true
				case 1:
					if l.Remove(c, k) != model[k] {
						ok = false
						return
					}
					delete(model, k)
				default:
					if l.Contains(c, k) != model[k] {
						ok = false
						return
					}
				}
			}
			if l.Len(c) != len(model) {
				ok = false
			}
		})
		if err := m.Drain(); err != nil {
			return false
		}
		if err := l.CheckInvariants(m.Direct()); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStackQueuePairProperty: pushing a random multiset through a stack
// reverses it; through a queue preserves it — over arbitrary inputs.
func TestStackQueuePairProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) > 100 {
			vals = vals[:100]
		}
		m := machine.New(machine.DefaultConfig(1))
		d := m.Direct()
		s := NewStack(d, StackOptions{})
		q := NewQueue(d, QueueOptions{})
		ok := true
		m.Spawn(0, func(c *machine.Ctx) {
			for _, v := range vals {
				s.Push(c, uint64(v)+1)
				q.Enqueue(c, uint64(v)+1)
			}
			for i := len(vals) - 1; i >= 0; i-- {
				v, got := s.Pop(c)
				if !got || v != uint64(vals[i])+1 {
					ok = false
					return
				}
			}
			for i := 0; i < len(vals); i++ {
				v, got := q.Dequeue(c)
				if !got || v != uint64(vals[i])+1 {
					ok = false
					return
				}
			}
		})
		if err := m.Drain(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
