package ds

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// HarrisList is Harris's lock-free sorted linked list set [17]. Deletion
// marks the victim's next pointer (low bit) and physical unlinking is done
// by searches, exactly as in the original algorithm. Keys must lie in
// [1, 2^64-2].
//
// With LeaseTime > 0 the predecessor's line is leased around the unlink
// CAS in Remove (leasing traversal-path nodes more aggressively measured
// as a net loss under search-heavy workloads; see EXPERIMENTS.md).
type HarrisList struct {
	head      mem.Addr
	tail      mem.Addr
	LeaseTime uint64
}

const (
	hlKey  = 0
	hlNext = 8
	hlSize = 16

	markBit = 1
)

func marked(p uint64) bool   { return p&markBit != 0 }
func unmark(p uint64) uint64 { return p &^ markBit }

// NewHarrisList allocates an empty set with sentinels.
func NewHarrisList(x machine.API) *HarrisList {
	l := &HarrisList{head: x.Alloc(hlSize), tail: x.Alloc(hlSize)}
	x.Store(l.head+hlKey, 0)
	x.Store(l.tail+hlKey, ^uint64(0))
	x.Store(l.head+hlNext, uint64(l.tail))
	return l
}

// search returns (pred, curr) with pred.key < key <= curr.key, unlinking
// any marked nodes it passes (Harris's search).
func (l *HarrisList) search(x machine.API, key uint64) (pred, curr mem.Addr) {
retry:
	for {
		pred = l.head
		curr = mem.Addr(unmark(x.Load(pred + hlNext)))
		for {
			// Skip over marked (logically deleted) successors,
			// snipping them out.
			succ := x.Load(curr + hlNext)
			for marked(succ) {
				if !x.CAS(pred+hlNext, uint64(curr), unmark(succ)) {
					continue retry
				}
				curr = mem.Addr(unmark(succ))
				succ = x.Load(curr + hlNext)
			}
			if x.Load(curr+hlKey) >= key {
				return pred, curr
			}
			pred = curr
			curr = mem.Addr(unmark(succ))
		}
	}
}

// Insert adds key, reporting whether it was absent. The insert path is
// deliberately lease-free: under search-heavy workloads a lease on the
// predecessor — a node every passing traversal reads — costs more in
// deferred searches than the rare CAS retry it prevents (measured in
// EXPERIMENTS.md). The lease placement lives on Remove's unlink instead.
func (l *HarrisList) Insert(x machine.API, key uint64) bool {
	node := mem.Addr(0)
	for {
		pred, curr := l.search(x, key)
		if x.Load(curr+hlKey) == key {
			return false
		}
		if node == 0 {
			node = x.Alloc(hlSize)
			x.Store(node+hlKey, key)
		}
		x.Store(node+hlNext, uint64(curr))
		if x.CAS(pred+hlNext, uint64(curr), uint64(node)) {
			return true
		}
	}
}

// Remove deletes key, reporting whether it was present. The victim is
// first marked, then unlinked (by us or by a later search). The victim
// itself is deliberately never leased: it stays on the traversal path
// until unlinked, so a lease on it would stall every passing search
// (the §7 "improper use" trap; see EXPERIMENTS.md).
func (l *HarrisList) Remove(x machine.API, key uint64) bool {
	for {
		pred, curr := l.search(x, key)
		if x.Load(curr+hlKey) != key {
			return false
		}
		succ := x.Load(curr + hlNext)
		if marked(succ) {
			continue // someone else is deleting it; re-search
		}
		if !x.CAS(curr+hlNext, succ, succ|markBit) {
			continue
		}
		// Try to unlink eagerly; on failure a search will finish it.
		if l.LeaseTime > 0 {
			x.Lease(pred, l.LeaseTime)
		}
		x.CAS(pred+hlNext, uint64(curr), unmark(succ))
		if l.LeaseTime > 0 {
			x.Release(pred)
		}
		return true
	}
}

// Contains reports key membership without writing.
func (l *HarrisList) Contains(x machine.API, key uint64) bool {
	curr := mem.Addr(unmark(x.Load(l.head + hlNext)))
	for x.Load(curr+hlKey) < key {
		curr = mem.Addr(unmark(x.Load(curr + hlNext)))
	}
	return x.Load(curr+hlKey) == key && !marked(x.Load(curr+hlNext))
}

// CheckInvariants validates sortedness and that no marked node is
// reachable on a quiescent list (test oracle).
func (l *HarrisList) CheckInvariants(x machine.API) error {
	prev := uint64(0)
	for curr := mem.Addr(unmark(x.Load(l.head + hlNext))); curr != l.tail; {
		k := x.Load(curr + hlKey)
		if k <= prev {
			return errOutOfOrder
		}
		prev = k
		curr = mem.Addr(unmark(x.Load(curr + hlNext)))
	}
	return nil
}

// Len counts unmarked reachable nodes (test oracle).
func (l *HarrisList) Len(x machine.API) int {
	n := 0
	for curr := mem.Addr(unmark(x.Load(l.head + hlNext))); curr != l.tail; {
		if !marked(x.Load(curr + hlNext)) {
			n++
		}
		curr = mem.Addr(unmark(x.Load(curr + hlNext)))
	}
	return n
}
