package ds

import (
	"testing"

	"leaserelease/internal/machine"
)

func newM(cores int) *machine.Machine { return machine.New(machine.DefaultConfig(cores)) }

func TestStackSequential(t *testing.T) {
	for _, opt := range []StackOptions{
		{},
		{Lease: 20000},
		{Backoff: Backoff{Min: 16, Max: 1024}},
	} {
		m := newM(1)
		s := NewStack(m.Direct(), opt)
		var popped []uint64
		var emptyOK bool
		m.Spawn(0, func(c *machine.Ctx) {
			_, ok := s.Pop(c)
			emptyOK = !ok
			for i := uint64(1); i <= 5; i++ {
				s.Push(c, i)
			}
			for i := 0; i < 5; i++ {
				v, ok := s.Pop(c)
				if !ok {
					t.Error("premature empty")
					return
				}
				popped = append(popped, v)
			}
		})
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		if !emptyOK {
			t.Fatal("empty Pop returned a value")
		}
		for i, v := range popped {
			if v != uint64(5-i) {
				t.Fatalf("opt %+v: LIFO violated: %v", opt, popped)
			}
		}
		if s.Len(m.Direct()) != 0 {
			t.Fatal("stack not empty at end")
		}
	}
}

// tag packs (thread, seq) into a unique value.
func tag(thread, seq int) uint64 { return uint64(thread)<<32 | uint64(seq) + 1 }

// runConservation drives push/pop pairs from every thread and checks that
// the multiset of pushed values equals popped ∪ remaining (no loss, no
// duplication).
func runStackConservation(t *testing.T, opt StackOptions, cores, per int) {
	t.Helper()
	m := newM(cores)
	s := NewStack(m.Direct(), opt)
	popped := make([][]uint64, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				s.Push(c, tag(i, n))
				if v, ok := s.Pop(c); ok {
					popped[i] = append(popped[i], v)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	total := 0
	for _, ps := range popped {
		for _, v := range ps {
			seen[v]++
			total++
		}
	}
	d := m.Direct()
	// Walk remaining stack contents.
	rem := 0
	for v, ok := s.Pop(d); ok; v, ok = s.Pop(d) {
		seen[v]++
		rem++
	}
	if total+rem != cores*per {
		t.Fatalf("pushed %d, accounted %d: values lost", cores*per, total+rem)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times: duplication", v, n)
		}
	}
}

func TestStackConcurrentBase(t *testing.T) { runStackConservation(t, StackOptions{}, 8, 40) }
func TestStackConcurrentLeased(t *testing.T) {
	runStackConservation(t, StackOptions{Lease: 20000}, 8, 40)
}
func TestStackConcurrentBackoff(t *testing.T) {
	runStackConservation(t, StackOptions{Backoff: Backoff{Min: 32, Max: 2048}}, 8, 40)
}

// TestStackLeaseEliminatesCASFailures: the Figure 1 placement guarantees
// the CAS succeeds while the lease holds, so CAS failures should be (near)
// zero with leases and plentiful without.
func TestStackLeaseEliminatesCASFailures(t *testing.T) {
	run := func(opt StackOptions) machine.Stats {
		m := newM(8)
		s := NewStack(m.Direct(), opt)
		for i := 0; i < 8; i++ {
			m.Spawn(0, func(c *machine.Ctx) {
				for {
					if c.Rand().Intn(2) == 0 {
						s.Push(c, 1)
					} else {
						s.Pop(c)
					}
					c.Work(c.Rand().Uint64n(32))
				}
			})
		}
		if err := m.Run(300000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return m.Stats()
	}
	base := run(StackOptions{})
	leased := run(StackOptions{Lease: 20000})
	if base.CASFailures == 0 {
		t.Fatal("base stack shows no CAS failures under 8-way contention; contention model broken")
	}
	if leased.CASFailures*10 > base.CASFailures {
		t.Fatalf("leased CAS failures %d vs base %d: lease not preventing retries",
			leased.CASFailures, base.CASFailures)
	}
}

// TestStackLeaseThroughputWins reproduces Figure 2's direction at 8
// threads: the leased stack must beat the base stack under contention.
func TestStackLeaseThroughputWins(t *testing.T) {
	run := func(opt StackOptions) uint64 {
		m := newM(8)
		s := NewStack(m.Direct(), opt)
		var ops uint64
		for i := 0; i < 8; i++ {
			m.Spawn(0, func(c *machine.Ctx) {
				for {
					s.Push(c, 1)
					s.Pop(c)
					ops += 2
				}
			})
		}
		if err := m.Run(500000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return ops
	}
	base := run(StackOptions{})
	leased := run(StackOptions{Lease: 20000})
	if leased <= base {
		t.Fatalf("leased throughput %d <= base %d at 8 threads", leased, base)
	}
}
