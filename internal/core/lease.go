// Package core implements the paper's primary contribution: the per-core
// lease table of the Lease/Release mechanism (Algorithms 1 and 2).
//
// The table is pure bookkeeping — it decides *whether* an incoming
// coherence probe must be deferred and *what* must happen on a release —
// while the machine package wires it to the cache controller, schedules
// expiry events, and actually delivers deferred probes. Keeping the table
// free of simulator dependencies makes the paper's semantics directly
// unit-testable.
//
// Semantics implemented (paper §3–§4):
//
//   - Lease(addr, t) on an already-leased address is a no-op: leases cannot
//     be extended, preserving the MAX_LEASE_TIME bound (§3, footnote 1).
//   - At most MaxNumLeases entries; inserting into a full table evicts the
//     oldest entry in FIFO order, which the caller must treat as a
//     voluntary release.
//   - A lease's countdown starts only when exclusive ownership is granted;
//     the duration is clamped to MaxLeaseTime.
//   - At most one coherence probe is queued per leased line (Proposition 1).
//   - A hardware MultiLease group defers probes on group lines even before
//     the joint countdown starts (during the sorted acquisition phase), and
//     all counters start together once every line in the group is owned.
package core

import "leaserelease/internal/mem"

// Config bounds the leasing mechanism. Both bounds are system-wide
// constants in the paper.
type Config struct {
	// MaxLeaseTime is the upper bound, in core cycles, on any lease
	// (the paper's MAX_LEASE_TIME; §7 uses 20 000 cycles = 20 µs at 1 GHz).
	MaxLeaseTime uint64
	// MaxNumLeases is the maximum number of simultaneously held leases
	// per core (the paper's MAX_NUM_LEASES).
	MaxNumLeases int
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{MaxLeaseTime: 20000, MaxNumLeases: 8}
}

// Entry is one leased (or being-leased) cache line.
type Entry struct {
	Line     mem.Line
	Duration uint64 // clamped lease length in cycles
	Started  bool   // ownership granted, countdown running
	Deadline uint64 // absolute expiry time, valid when Started
	Gen      uint64 // generation, to lazily cancel stale expiry events

	// InGroup marks membership in the core's single active MultiLease
	// group. Group entries defer probes during the acquisition phase
	// (before Started) — the behaviour whose deadlock-freedom
	// Proposition 3 establishes via globally sorted acquisition.
	InGroup bool

	// Site identifies the program location (the "program counter" of §5's
	// speculative mechanism) that took this lease; the machine's lease
	// predictor attributes involuntary releases to it.
	Site uint64

	// ProbeQueuedAt is the cycle the deferred probe (if any) was queued;
	// the machine's telemetry uses it to measure probe-deferral delay.
	ProbeQueuedAt uint64

	probe interface{} // at most one deferred coherence probe (opaque)
}

// GrantCycle returns the cycle at which the countdown started (the grant
// time, Deadline − Duration) for a started entry; ok is false for an
// entry whose ownership is still pending.
func (e *Entry) GrantCycle() (cycle uint64, ok bool) {
	if !e.Started {
		return 0, false
	}
	return e.Deadline - e.Duration, true
}

// HasProbe reports whether a probe is queued on this entry.
func (e *Entry) HasProbe() bool { return e.probe != nil }

// TakeProbe removes and returns the queued probe (nil if none).
func (e *Entry) TakeProbe() interface{} {
	p := e.probe
	e.probe = nil
	return p
}

// Table is a core's lease table. The zero value is unusable; use NewTable.
type Table struct {
	cfg     Config
	fifo    []*Entry // insertion order, oldest first
	byLine  map[mem.Line]*Entry
	nextGen uint64
}

// NewTable returns an empty lease table.
func NewTable(cfg Config) *Table {
	if cfg.MaxNumLeases <= 0 {
		panic("core: MaxNumLeases must be positive")
	}
	return &Table{cfg: cfg, byLine: make(map[mem.Line]*Entry)}
}

// Config returns the table's bounds.
func (t *Table) Config() Config { return t.cfg }

// Len returns the number of live entries.
func (t *Table) Len() int { return len(t.fifo) }

// Find returns the entry for line l, or nil.
func (t *Table) Find(l mem.Line) *Entry { return t.byLine[l] }

// ForEach visits every live entry in FIFO (insertion) order. Callers must
// not mutate the table during iteration; checkers and diagnostics use this
// to validate bounds and FIFO ordering without copying.
func (t *Table) ForEach(fn func(e *Entry)) {
	for _, e := range t.fifo {
		fn(e)
	}
}

// Insert creates a lease entry for line l with the requested duration
// (clamped to MaxLeaseTime). If l is already leased, Insert does nothing
// and returns inserted=false — leases are never extended. If the table is
// full, the oldest entry is evicted FIFO and returned; the caller must
// treat it as a voluntary release (deliver its probe, unpin, ...).
func (t *Table) Insert(l mem.Line, duration uint64, inGroup bool) (evicted *Entry, inserted bool) {
	if _, ok := t.byLine[l]; ok {
		return nil, false
	}
	if duration > t.cfg.MaxLeaseTime {
		duration = t.cfg.MaxLeaseTime
	}
	if len(t.fifo) >= t.cfg.MaxNumLeases {
		evicted = t.removeAt(0)
	}
	t.nextGen++
	e := &Entry{Line: l, Duration: duration, Gen: t.nextGen, InGroup: inGroup}
	t.fifo = append(t.fifo, e)
	t.byLine[l] = e
	return evicted, true
}

// Start begins the countdown for line l at time now, returning the entry
// with its Deadline set. Start on a missing or already-started entry
// returns nil (the lease was force-released while its ownership request was
// in flight, or Start raced a duplicate grant).
func (t *Table) Start(l mem.Line, now uint64) *Entry {
	e := t.byLine[l]
	if e == nil || e.Started {
		return nil
	}
	e.Started = true
	e.Deadline = now + e.Duration
	return e
}

// GroupPending returns how many MultiLease-group entries are still waiting
// for exclusive ownership. Ownership of group lines arrives one by one
// (sorted order); once the last grant lands (GroupPending()==0 after the
// caller's Start bookkeeping), the machine calls StartGroup to start all
// counters together.
func (t *Table) GroupPending() int {
	n := 0
	for _, e := range t.fifo {
		if e.InGroup && !e.Started {
			n++
		}
	}
	return n
}

// StartGroup starts the countdown of every not-yet-started group entry at
// time now (correlated counters, §5 "MultiLeases require the counters ...
// to be correlated"). It returns the started entries.
func (t *Table) StartGroup(now uint64) []*Entry {
	var started []*Entry
	for _, e := range t.fifo {
		if e.InGroup && !e.Started {
			e.Started = true
			e.Deadline = now + e.Duration
			started = append(started, e)
		}
	}
	return started
}

// GroupLines returns the lines of the current MultiLease group, in table
// (acquisition) order.
func (t *Table) GroupLines() []mem.Line {
	var ls []mem.Line
	for _, e := range t.fifo {
		if e.InGroup {
			ls = append(ls, e.Line)
		}
	}
	return ls
}

// ShouldDefer reports whether a coherence probe for line l arriving at time
// now must be queued at this core rather than serviced: either the lease
// has started and has not yet expired, or the line belongs to a MultiLease
// group still in its acquisition phase.
func (t *Table) ShouldDefer(l mem.Line, now uint64) bool {
	e := t.byLine[l]
	if e == nil {
		return false
	}
	if e.Started {
		return now < e.Deadline
	}
	return e.InGroup
}

// QueueProbe stores the (single) deferred probe on line l. It panics if a
// probe is already queued — Proposition 1 guarantees the directory never
// sends a second concurrent probe for the same line, so a violation is a
// protocol bug, not a recoverable condition.
func (t *Table) QueueProbe(l mem.Line, probe interface{}) {
	e := t.byLine[l]
	if e == nil {
		panic("core: queueing probe on unleased line")
	}
	if e.probe != nil {
		panic("core: second probe queued on one line (violates Proposition 1)")
	}
	e.probe = probe
}

// Remove deletes the entry for line l and returns it (nil if absent). The
// caller services any deferred probe on the returned entry. This is the
// voluntary-release path.
func (t *Table) Remove(l mem.Line) *Entry {
	e := t.byLine[l]
	if e == nil {
		return nil
	}
	for i, x := range t.fifo {
		if x == e {
			return t.removeAt(i)
		}
	}
	panic("core: table fifo/byLine out of sync")
}

// RemoveIfGen deletes the entry for line l only if it still has generation
// gen and has started; it returns the entry or nil. Expiry events use this
// to cancel lazily: a voluntary release or FIFO eviction bumps the entry
// out, and the stale timer then finds nothing.
func (t *Table) RemoveIfGen(l mem.Line, gen uint64) *Entry {
	e := t.byLine[l]
	if e == nil || e.Gen != gen || !e.Started {
		return nil
	}
	return t.Remove(l)
}

// RemoveOldest force-releases the oldest lease (used when an L1 set is
// fully pinned). Returns nil if the table is empty.
func (t *Table) RemoveOldest() *Entry {
	if len(t.fifo) == 0 {
		return nil
	}
	return t.removeAt(0)
}

// RemoveAll empties the table, returning the removed entries in FIFO order.
// MultiLease calls this first ("the MultiLease call will first release all
// currently held leases").
func (t *Table) RemoveAll() []*Entry {
	out := t.fifo
	t.fifo = nil
	for l := range t.byLine {
		delete(t.byLine, l)
	}
	return out
}

func (t *Table) removeAt(i int) *Entry {
	e := t.fifo[i]
	t.fifo = append(t.fifo[:i], t.fifo[i+1:]...)
	delete(t.byLine, e.Line)
	return e
}
