package core

import (
	"testing"
	"testing/quick"

	"leaserelease/internal/mem"
)

func newT(max int) *Table {
	return NewTable(Config{MaxLeaseTime: 100, MaxNumLeases: max})
}

func TestInsertAndFind(t *testing.T) {
	tb := newT(4)
	ev, ins := tb.Insert(1, 50, false)
	if ev != nil || !ins {
		t.Fatalf("Insert = (%v, %v), want (nil, true)", ev, ins)
	}
	e := tb.Find(1)
	if e == nil || e.Duration != 50 || e.Started {
		t.Fatalf("Find = %+v", e)
	}
}

func TestNoLeaseExtension(t *testing.T) {
	tb := newT(4)
	tb.Insert(1, 50, false)
	tb.Start(1, 10)
	ev, ins := tb.Insert(1, 99, false)
	if ins || ev != nil {
		t.Fatal("re-leasing an existing line must be a no-op")
	}
	if e := tb.Find(1); e.Deadline != 60 {
		t.Fatalf("deadline changed to %d; extension forbidden", e.Deadline)
	}
}

func TestDurationClampedToMax(t *testing.T) {
	tb := newT(4)
	tb.Insert(1, 1e9, false)
	if e := tb.Find(1); e.Duration != 100 {
		t.Fatalf("duration = %d, want clamp to 100", e.Duration)
	}
}

func TestFIFOEvictionWhenFull(t *testing.T) {
	tb := newT(2)
	tb.Insert(1, 10, false)
	tb.Insert(2, 10, false)
	ev, ins := tb.Insert(3, 10, false)
	if !ins || ev == nil || ev.Line != 1 {
		t.Fatalf("evicted = %v, want oldest (line 1)", ev)
	}
	if tb.Find(1) != nil || tb.Find(2) == nil || tb.Find(3) == nil {
		t.Fatal("wrong entries survived")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

// TestFIFOEvictionExactBoundary pins down the off-by-one: filling the
// table to exactly MaxNumLeases evicts nothing; only the entry after that
// evicts, and it evicts precisely the oldest while the rest keep FIFO
// (generation) order.
func TestFIFOEvictionExactBoundary(t *testing.T) {
	const max = 8
	tb := newT(max)
	for i := 1; i <= max; i++ {
		ev, ins := tb.Insert(mem.Line(i), 10, false)
		if !ins || ev != nil {
			t.Fatalf("insert %d of %d: (ev=%v, ins=%v), want no eviction yet", i, max, ev, ins)
		}
	}
	if tb.Len() != max {
		t.Fatalf("Len = %d, want exactly %d", tb.Len(), max)
	}
	ev, ins := tb.Insert(mem.Line(max+1), 10, false)
	if !ins || ev == nil || ev.Line != 1 {
		t.Fatalf("insert %d: evicted %v, want oldest (line 1)", max+1, ev)
	}
	if tb.Len() != max {
		t.Fatalf("Len after boundary eviction = %d, want %d", tb.Len(), max)
	}
	// Survivors are 2..max+1 in insertion order with strictly increasing
	// generations (the invariant checker's lease-fifo rule).
	want := mem.Line(2)
	lastGen := uint64(0)
	tb.ForEach(func(e *Entry) {
		if e.Line != want {
			t.Fatalf("FIFO order broken: got line %d, want %d", e.Line, want)
		}
		if e.Gen <= lastGen {
			t.Fatalf("generations not strictly increasing: %d after %d", e.Gen, lastGen)
		}
		lastGen = e.Gen
		want++
	})
}

func TestStartSetsDeadline(t *testing.T) {
	tb := newT(4)
	tb.Insert(1, 40, false)
	e := tb.Start(1, 1000)
	if e == nil || e.Deadline != 1040 || !e.Started {
		t.Fatalf("Start = %+v", e)
	}
	if tb.Start(1, 2000) != nil {
		t.Fatal("double Start must return nil")
	}
	if tb.Start(99, 0) != nil {
		t.Fatal("Start on absent line must return nil")
	}
}

func TestShouldDefer(t *testing.T) {
	tb := newT(4)
	if tb.ShouldDefer(1, 0) {
		t.Fatal("empty table defers")
	}
	tb.Insert(1, 40, false)
	if tb.ShouldDefer(1, 0) {
		t.Fatal("unstarted single lease must not defer")
	}
	tb.Start(1, 100)
	if !tb.ShouldDefer(1, 120) {
		t.Fatal("started lease must defer before deadline")
	}
	if tb.ShouldDefer(1, 140) {
		t.Fatal("expired lease must not defer (deadline 140)")
	}
}

func TestGroupDefersDuringAcquisition(t *testing.T) {
	tb := newT(4)
	tb.Insert(5, 40, true)
	if !tb.ShouldDefer(5, 0) {
		t.Fatal("group entry must defer during acquisition phase")
	}
}

func TestQueueProbeSingle(t *testing.T) {
	tb := newT(4)
	tb.Insert(1, 40, false)
	tb.QueueProbe(1, "probe-a")
	e := tb.Remove(1)
	if e == nil || !e.HasProbe() {
		t.Fatal("probe lost")
	}
	if got := e.TakeProbe(); got != "probe-a" {
		t.Fatalf("TakeProbe = %v", got)
	}
	if e.HasProbe() {
		t.Fatal("TakeProbe did not clear probe")
	}
}

func TestSecondProbePanics(t *testing.T) {
	tb := newT(4)
	tb.Insert(1, 40, false)
	tb.QueueProbe(1, "a")
	defer func() {
		if recover() == nil {
			t.Error("second probe on one line did not panic")
		}
	}()
	tb.QueueProbe(1, "b")
}

func TestRemoveIfGen(t *testing.T) {
	tb := newT(4)
	tb.Insert(1, 40, false)
	gen := tb.Find(1).Gen
	if tb.RemoveIfGen(1, gen) != nil {
		t.Fatal("RemoveIfGen before Start must be nil (timer cannot exist)")
	}
	tb.Start(1, 0)
	if tb.RemoveIfGen(1, gen+1) != nil {
		t.Fatal("stale generation matched")
	}
	if tb.RemoveIfGen(1, gen) == nil {
		t.Fatal("matching generation did not remove")
	}
	// Re-lease the same line: new generation, stale timer must not fire.
	tb.Insert(1, 40, false)
	tb.Start(1, 0)
	if tb.RemoveIfGen(1, gen) != nil {
		t.Fatal("old-generation timer removed a fresh lease")
	}
}

func TestRemoveAllOrder(t *testing.T) {
	tb := newT(8)
	for l := mem.Line(1); l <= 3; l++ {
		tb.Insert(l, 10, false)
	}
	out := tb.RemoveAll()
	if len(out) != 3 || out[0].Line != 1 || out[2].Line != 3 {
		t.Fatalf("RemoveAll = %v", out)
	}
	if tb.Len() != 0 || tb.Find(2) != nil {
		t.Fatal("table not empty after RemoveAll")
	}
}

func TestGroupStartTogether(t *testing.T) {
	tb := newT(8)
	tb.Insert(10, 40, true)
	tb.Insert(20, 40, true)
	tb.Insert(30, 25, true)
	if got := tb.GroupPending(); got != 3 {
		t.Fatalf("GroupPending = %d, want 3", got)
	}
	started := tb.StartGroup(1000)
	if len(started) != 3 {
		t.Fatalf("started %d, want 3", len(started))
	}
	if tb.GroupPending() != 0 {
		t.Fatal("entries still pending after StartGroup")
	}
	if tb.Find(10).Deadline != 1040 || tb.Find(30).Deadline != 1025 {
		t.Fatal("joint start deadlines wrong")
	}
	lines := tb.GroupLines()
	if len(lines) != 3 || lines[0] != 10 || lines[1] != 20 || lines[2] != 30 {
		t.Fatalf("GroupLines = %v", lines)
	}
}

func TestRemoveOldest(t *testing.T) {
	tb := newT(4)
	if tb.RemoveOldest() != nil {
		t.Fatal("RemoveOldest on empty table must be nil")
	}
	tb.Insert(7, 10, false)
	tb.Insert(8, 10, false)
	if e := tb.RemoveOldest(); e == nil || e.Line != 7 {
		t.Fatalf("RemoveOldest = %v, want line 7", e)
	}
}

// leaseModel mirrors Table semantics for the property test.
type leaseModel struct {
	order []mem.Line
	max   int
}

func (m *leaseModel) insert(l mem.Line) bool {
	for _, x := range m.order {
		if x == l {
			return false
		}
	}
	if len(m.order) >= m.max {
		m.order = m.order[1:]
	}
	m.order = append(m.order, l)
	return true
}

func (m *leaseModel) remove(l mem.Line) bool {
	for i, x := range m.order {
		if x == l {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return true
		}
	}
	return false
}

// TestTableVsModel checks membership/FIFO behaviour against a simple model
// over random operation sequences.
func TestTableVsModel(t *testing.T) {
	type op struct {
		Kind byte
		L    uint8
	}
	f := func(ops []op) bool {
		tb := NewTable(Config{MaxLeaseTime: 50, MaxNumLeases: 3})
		m := &leaseModel{max: 3}
		for _, o := range ops {
			l := mem.Line(o.L % 8)
			switch o.Kind % 3 {
			case 0:
				_, ins := tb.Insert(l, 10, false)
				if ins != m.insert(l) {
					return false
				}
			case 1:
				if (tb.Remove(l) != nil) != m.remove(l) {
					return false
				}
			case 2:
				e := tb.RemoveOldest()
				if len(m.order) == 0 {
					if e != nil {
						return false
					}
				} else {
					if e == nil || e.Line != m.order[0] {
						return false
					}
					m.order = m.order[1:]
				}
			}
			if tb.Len() != len(m.order) {
				return false
			}
			for _, x := range m.order {
				if tb.Find(x) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
