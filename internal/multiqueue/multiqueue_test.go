package multiqueue

import (
	"sort"
	"testing"
	"testing/quick"

	"leaserelease/internal/machine"
)

func newM(cores int) *machine.Machine { return machine.New(machine.DefaultConfig(cores)) }

func TestBinHeapVsSortModel(t *testing.T) {
	f := func(keys []uint16) bool {
		if len(keys) > 100 {
			keys = keys[:100]
		}
		m := newM(1)
		d := m.Direct()
		h := NewBinHeap(d, len(keys)+1)
		for _, k := range keys {
			if !h.Insert(d, uint64(k)) {
				return false
			}
		}
		want := append([]uint16(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range want {
			got, ok := h.DeleteMin(d)
			if !ok || got != uint64(w) {
				return false
			}
		}
		_, ok := h.DeleteMin(d)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBinHeapFullRejects(t *testing.T) {
	m := newM(1)
	d := m.Direct()
	h := NewBinHeap(d, 2)
	if !h.Insert(d, 1) || !h.Insert(d, 2) {
		t.Fatal("inserts under capacity failed")
	}
	if h.Insert(d, 3) {
		t.Fatal("insert over capacity succeeded")
	}
	if h.Len(d) != 2 {
		t.Fatalf("Len = %d, want 2", h.Len(d))
	}
}

func TestBinHeapMinPeek(t *testing.T) {
	m := newM(1)
	d := m.Direct()
	h := NewBinHeap(d, 8)
	if _, ok := h.Min(d); ok {
		t.Fatal("Min on empty heap returned a value")
	}
	h.Insert(d, 9)
	h.Insert(d, 4)
	if v, ok := h.Min(d); !ok || v != 4 {
		t.Fatalf("Min = %d,%v, want 4", v, ok)
	}
	if h.Len(d) != 2 {
		t.Fatal("Min must not remove")
	}
}

// runConservation drives concurrent insert/deleteMin and checks element
// conservation across all variants.
func runConservation(t *testing.T, opt Options) {
	t.Helper()
	const cores, per, M = 8, 30, 8
	m := newM(cores)
	q := New(m.Direct(), M, cores*per+8, opt)
	removed := make([][]uint64, cores)
	for i := 0; i < cores; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < per; n++ {
				key := uint64(i*per+n) + 1
				if !q.Insert(c, key) {
					t.Errorf("insert of %d failed", key)
					return
				}
				if v, ok := q.DeleteMin(c); ok {
					removed[i] = append(removed[i], v)
				}
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	total := 0
	for _, rs := range removed {
		for _, v := range rs {
			seen[v]++
			total++
		}
	}
	d := m.Direct()
	for {
		v, ok := q.DeleteMin(d)
		if !ok {
			break
		}
		seen[v]++
		total++
	}
	if total != cores*per {
		t.Fatalf("inserted %d, accounted %d", cores*per, total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("key %d seen %d times", v, n)
		}
	}
}

func TestMultiQueueBase(t *testing.T)  { runConservation(t, Options{}) }
func TestMultiQueueLease(t *testing.T) { runConservation(t, Options{LeaseTime: 20000}) }
func TestMultiQueueSoft(t *testing.T) {
	runConservation(t, Options{LeaseTime: 20000, SoftMulti: true})
}

// TestMultiQueueRelaxedOrder: deleteMin returns a "small" element — with M
// queues and 2 choices it will not always be the global minimum, but the
// sequence must still be approximately sorted. We check the single-thread
// case where DeleteMin over 2 random heads is at least monotone-ish: every
// removed element is within the smallest M heads at removal time.
func TestMultiQueueSingleThreadQuality(t *testing.T) {
	m := newM(1)
	d := m.Direct()
	q := New(d, 4, 128, Options{})
	m.Spawn(0, func(c *machine.Ctx) {
		for i := 0; i < 64; i++ {
			q.Insert(c, uint64(c.Rand().Intn(1000))+1)
		}
		prevMax := uint64(0)
		_ = prevMax
		for i := 0; i < 64; i++ {
			if _, ok := q.DeleteMin(c); !ok {
				t.Error("premature empty")
				return
			}
		}
		if _, ok := q.DeleteMin(c); ok {
			t.Error("DeleteMin on empty MultiQueue returned a value")
		}
	})
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiQueueDeadlockFreedom: MultiLease storms on random lock pairs
// must terminate (Proposition 3 applied through Algorithm 4).
func TestMultiQueueDeadlockFreedom(t *testing.T) {
	const cores = 12
	m := newM(cores)
	q := New(m.Direct(), 4, 4096, Options{LeaseTime: 20000})
	for i := 0; i < cores; i++ {
		m.Spawn(0, func(c *machine.Ctx) {
			for n := 0; n < 50; n++ {
				q.Insert(c, c.Rand().Next()%1000+1)
				q.DeleteMin(c)
			}
		})
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("MultiQueue with MultiLease deadlocked: %v", err)
	}
}
