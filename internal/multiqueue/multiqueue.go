// Package multiqueue implements MultiQueues [36], the relaxed concurrent
// priority queue of the paper's Figure 4 benchmark: M sequential priority
// queues, each behind a try-lock. Insert locks one random queue; DeleteMin
// locks two random queues and pops the higher-priority head — with leases
// placed exactly as in the paper's Algorithm 4.
package multiqueue

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// BinHeap is a sequential binary min-heap of uint64 keys on simulated
// memory (the "sequential priority queue" of the MultiQueue design).
type BinHeap struct {
	base mem.Addr // [size, a0, a1, ...]
	cap  int
}

// NewBinHeap allocates a heap holding up to capacity keys.
func NewBinHeap(x machine.API, capacity int) *BinHeap {
	return &BinHeap{base: x.Alloc(uint64(8 * (capacity + 1))), cap: capacity}
}

func (h *BinHeap) slot(i int) mem.Addr { return h.base + mem.Addr(8*(i+1)) }

// Len returns the current element count.
func (h *BinHeap) Len(x machine.API) int { return int(x.Load(h.base)) }

// Insert adds key; it reports false when the heap is full.
func (h *BinHeap) Insert(x machine.API, key uint64) bool {
	n := int(x.Load(h.base))
	if n >= h.cap {
		return false
	}
	i := n
	x.Store(h.base, uint64(n+1))
	x.Store(h.slot(i), key)
	for i > 0 {
		parent := (i - 1) / 2
		pv := x.Load(h.slot(parent))
		if pv <= key {
			break
		}
		x.Store(h.slot(i), pv)
		x.Store(h.slot(parent), key)
		i = parent
	}
	return true
}

// Min returns the smallest key; ok=false when empty.
func (h *BinHeap) Min(x machine.API) (uint64, bool) {
	if x.Load(h.base) == 0 {
		return 0, false
	}
	return x.Load(h.slot(0)), true
}

// DeleteMin removes and returns the smallest key.
func (h *BinHeap) DeleteMin(x machine.API) (uint64, bool) {
	n := int(x.Load(h.base))
	if n == 0 {
		return 0, false
	}
	min := x.Load(h.slot(0))
	last := x.Load(h.slot(n - 1))
	x.Store(h.base, uint64(n-1))
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		sv := last
		if l < n {
			if lv := x.Load(h.slot(l)); lv < sv {
				small, sv = l, lv
			}
		}
		if r < n {
			if rv := x.Load(h.slot(r)); rv < sv {
				small, sv = r, rv
			}
		}
		if small == i {
			break
		}
		x.Store(h.slot(i), sv)
		i = small
	}
	if n > 0 {
		x.Store(h.slot(i), last)
	}
	return min, true
}

// Options selects the MultiQueue lease strategy.
type Options struct {
	// LeaseTime enables leases (0 = base implementation).
	LeaseTime uint64
	// SoftMulti uses the software MultiLease emulation in DeleteMin
	// instead of the hardware MultiLease.
	SoftMulti bool
	// NoDeleteLease disables the DeleteMin MultiLease while keeping the
	// Insert lease (an ablation of Algorithm 4's joint lease).
	NoDeleteLease bool
}

// MultiQueue is the relaxed priority queue.
type MultiQueue struct {
	M     int
	locks []mem.Addr // try-lock words, one line each
	heaps []*BinHeap
	opt   Options
}

// New allocates a MultiQueue over m sequential heaps of the given capacity.
func New(x machine.API, m, capacity int, opt Options) *MultiQueue {
	q := &MultiQueue{M: m, opt: opt}
	for i := 0; i < m; i++ {
		q.locks = append(q.locks, x.Alloc(8))
		q.heaps = append(q.heaps, NewBinHeap(x, capacity))
	}
	return q
}

func (q *MultiQueue) tryLock(x machine.API, i int) bool {
	if x.Load(q.locks[i]) != 0 {
		return false
	}
	return x.Swap(q.locks[i], 1) == 0
}

func (q *MultiQueue) unlock(x machine.API, i int) { x.Store(q.locks[i], 0) }

// Insert adds key (Algorithm 4, INSERT): pick a random queue, lease its
// lock, try-lock; on failure drop the lease and re-pick. It reports false
// only if the chosen heaps are full.
func (q *MultiQueue) Insert(x machine.API, key uint64) bool {
	for attempts := 0; attempts < 4*q.M; attempts++ {
		i := x.Rand().Intn(q.M)
		if q.opt.LeaseTime > 0 {
			x.Lease(q.locks[i], q.opt.LeaseTime)
		}
		if q.tryLock(x, i) {
			ok := q.heaps[i].Insert(x, key)
			q.unlock(x, i)
			if q.opt.LeaseTime > 0 {
				x.Release(q.locks[i])
			}
			if ok {
				return true
			}
			continue // heap full; re-pick
		}
		if q.opt.LeaseTime > 0 {
			x.Release(q.locks[i])
		}
		attempts-- // lock contention does not count against fullness
	}
	return false
}

// DeleteMin removes an element among the heads of two random queues
// (Algorithm 4, DELETEMIN). Leases on both locks are taken jointly and —
// deliberately — released right after the head comparison, before the long
// sequential deleteMin, so other threads can re-pick quickly (§6). ok=false
// after the queues appear globally empty.
func (q *MultiQueue) DeleteMin(x machine.API) (uint64, bool) {
	for attempts := 0; attempts < 4*q.M; attempts++ {
		i := x.Rand().Intn(q.M)
		k := x.Rand().Intn(q.M)
		if q.opt.LeaseTime > 0 && !q.opt.NoDeleteLease {
			if q.opt.SoftMulti {
				x.SoftMultiLease(q.opt.LeaseTime, q.locks[i], q.locks[k])
			} else {
				x.MultiLease(q.opt.LeaseTime, q.locks[i], q.locks[k])
			}
		}
		if q.tryLock(x, i) {
			if i == k || q.tryLock(x, k) {
				// Compare heads; keep the queue holding the smaller.
				vi, oki := q.heaps[i].Min(x)
				vk, okk := q.heaps[k].Min(x)
				if k != i && (!okk || (oki && vi <= vk)) {
					q.unlock(x, k)
				} else if k != i {
					q.unlock(x, i)
					i, oki = k, okk
				}
				if q.opt.LeaseTime > 0 && !q.opt.NoDeleteLease {
					x.ReleaseAll()
				}
				if !oki {
					q.unlock(x, i)
					continue // empty pair; re-pick
				}
				v, _ := q.heaps[i].DeleteMin(x) // long sequential part
				q.unlock(x, i)
				return v, true
			}
			q.unlock(x, i)
		}
		if q.opt.LeaseTime > 0 && !q.opt.NoDeleteLease {
			x.ReleaseAll()
		}
	}
	return 0, false
}

// Len sums all heap sizes (test oracle; quiescent use only).
func (q *MultiQueue) Len(x machine.API) int {
	n := 0
	for _, h := range q.heaps {
		n += h.Len(x)
	}
	return n
}
