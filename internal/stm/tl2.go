// Package stm implements TL2-lite, a compact version of the TL2 software
// transactional memory [11] sufficient for the paper's Figure 4/5
// transactional benchmark: write transactions over small sets of
// transactional objects, with versioned write-locks and a global version
// clock. Lease modes reproduce the paper's variants: no leases, hardware
// MultiLease on the lock words, the software MultiLease emulation, and a
// single lease on the first object only.
package stm

import (
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
)

// LeaseMode selects how a transaction protects its lock acquisitions.
type LeaseMode int

const (
	// NoLease is the base TL2: try-lock both objects, abort on failure.
	NoLease LeaseMode = iota
	// HWMulti jointly leases all lock words via hardware MultiLease
	// before acquiring.
	HWMulti
	// SWMulti uses the software MultiLease emulation (§4).
	SWMulti
	// SingleFirst leases only the first (lowest-address) lock word —
	// the paper's "leasing just the lock associated to the first object".
	SingleFirst
)

// TL2 is a fixed set of transactional objects plus the global version
// clock. Each object occupies its own cache line: [versioned-lock, value].
// The versioned lock's low bit is the lock flag; the upper bits hold the
// version.
type TL2 struct {
	clock mem.Addr
	objs  []mem.Addr
	// Mode selects the lease strategy for lock acquisition.
	Mode LeaseMode
	// LeaseTime bounds leases taken by transactions (0 disables leases
	// regardless of Mode).
	LeaseTime uint64
}

const (
	objLock  = 0
	objValue = 8

	lockBit = 1
)

// New allocates nObjs transactional objects and the global clock.
func New(x machine.API, nObjs int, leaseTime uint64) *TL2 {
	t := &TL2{clock: x.Alloc(8), LeaseTime: leaseTime}
	for i := 0; i < nObjs; i++ {
		t.objs = append(t.objs, x.Alloc(16))
	}
	return t
}

// NumObjs returns the object count.
func (t *TL2) NumObjs() int { return len(t.objs) }

// Read returns an object's value outside any transaction (test oracle).
func (t *TL2) Read(x machine.API, i int) uint64 {
	return x.Load(t.objs[i] + objValue)
}

// tryLockObj CAS-acquires an object's versioned lock, returning the
// pre-lock version word and success.
func (t *TL2) tryLockObj(x machine.API, o mem.Addr) (uint64, bool) {
	v := x.Load(o + objLock)
	if v&lockBit != 0 {
		return v, false
	}
	return v, x.CAS(o+objLock, v, v|lockBit)
}

// UpdatePair runs one TL2 write transaction adding delta to objects i and
// j (i != j): sample the clock, read both values, acquire both versioned
// locks, validate versions, write, and release with a new version. It
// returns the number of aborts incurred before the commit.
func (t *TL2) UpdatePair(x machine.API, i, j int, delta uint64) (aborts int) {
	oi, oj := t.objs[i], t.objs[j]
	for {
		t.leaseFor(x, oi, oj)
		rv := x.Load(t.clock)

		// Version first, value second: the commit-time check that the
		// lock word still equals the pre-read version then guarantees
		// the value cannot have changed in between.
		veri := x.Load(oi + objLock)
		vi := x.Load(oi + objValue)
		verj := x.Load(oj + objLock)
		vj := x.Load(oj + objValue)
		if veri&lockBit != 0 || verj&lockBit != 0 ||
			veri>>1 > rv || verj>>1 > rv {
			t.releaseLeases(x)
			aborts++
			t.backoff(x, aborts)
			continue
		}

		// Acquisition phase: try-lock both; abort on any failure.
		pvi, ok := t.tryLockObj(x, oi)
		if !ok {
			t.releaseLeases(x)
			aborts++
			t.backoff(x, aborts)
			continue
		}
		pvj, ok := t.tryLockObj(x, oj)
		if !ok {
			x.Store(oi+objLock, pvi) // restore
			t.releaseLeases(x)
			aborts++
			t.backoff(x, aborts)
			continue
		}
		// Validate: versions unchanged since our reads.
		if pvi != veri || pvj != verj {
			x.Store(oi+objLock, pvi)
			x.Store(oj+objLock, pvj)
			t.releaseLeases(x)
			aborts++
			t.backoff(x, aborts)
			continue
		}

		wv := x.FetchAdd(t.clock, 1) + 1
		x.Store(oi+objValue, vi+delta)
		x.Store(oj+objValue, vj+delta)
		// Release locks, publishing the new version.
		x.Store(oi+objLock, wv<<1)
		x.Store(oj+objLock, wv<<1)
		t.releaseLeases(x)
		return aborts
	}
}

// leaseFor takes the mode-appropriate leases on the two objects' lock
// lines.
func (t *TL2) leaseFor(x machine.API, oi, oj mem.Addr) {
	if t.LeaseTime == 0 {
		return
	}
	switch t.Mode {
	case HWMulti:
		x.MultiLease(t.LeaseTime, oi, oj)
	case SWMulti:
		x.SoftMultiLease(t.LeaseTime, oi, oj)
	case SingleFirst:
		first := oi
		if oj < oi {
			first = oj
		}
		x.Lease(first, t.LeaseTime)
	}
}

func (t *TL2) releaseLeases(x machine.API) {
	if t.LeaseTime > 0 && t.Mode != NoLease {
		x.ReleaseAll()
	}
}

// backoff pauses briefly after an abort (bounded exponential).
func (t *TL2) backoff(x machine.API, aborts int) {
	p := uint64(16)
	for i := 0; i < aborts && p < 1024; i++ {
		p *= 2
	}
	x.Work(x.Rand().Uint64n(p))
}
