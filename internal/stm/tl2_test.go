package stm

import (
	"testing"

	"leaserelease/internal/machine"
)

func newM(cores int) *machine.Machine { return machine.New(machine.DefaultConfig(cores)) }

func modes() map[string]LeaseMode {
	return map[string]LeaseMode{
		"base":    NoLease,
		"hw":      HWMulti,
		"sw":      SWMulti,
		"single1": SingleFirst,
	}
}

func TestTL2SingleThread(t *testing.T) {
	for name, mode := range modes() {
		name, mode := name, mode
		t.Run(name, func(t *testing.T) {
			m := newM(1)
			tl := New(m.Direct(), 10, 20000)
			tl.Mode = mode
			m.Spawn(0, func(c *machine.Ctx) {
				if ab := tl.UpdatePair(c, 2, 7, 5); ab != 0 {
					t.Errorf("uncontended tx aborted %d times", ab)
				}
				tl.UpdatePair(c, 7, 2, 1)
			})
			if err := m.Drain(); err != nil {
				t.Fatal(err)
			}
			d := m.Direct()
			if tl.Read(d, 2) != 6 || tl.Read(d, 7) != 6 {
				t.Fatalf("values = %d,%d, want 6,6", tl.Read(d, 2), tl.Read(d, 7))
			}
		})
	}
}

// TestTL2Serializable: concurrent pair-updates must never lose increments.
// Each commit adds 1 to two distinct objects, so the final sum over all
// objects equals exactly 2 × transactions.
func TestTL2Serializable(t *testing.T) {
	const cores, txPer, objs = 8, 50, 10
	for name, mode := range modes() {
		name, mode := name, mode
		t.Run(name, func(t *testing.T) {
			m := newM(cores)
			tl := New(m.Direct(), objs, 20000)
			tl.Mode = mode
			for i := 0; i < cores; i++ {
				m.Spawn(0, func(c *machine.Ctx) {
					for n := 0; n < txPer; n++ {
						i := c.Rand().Intn(objs)
						j := c.Rand().Intn(objs - 1)
						if j >= i {
							j++
						}
						tl.UpdatePair(c, i, j, 1)
					}
				})
			}
			if err := m.Drain(); err != nil {
				t.Fatalf("%s deadlocked: %v", name, err)
			}
			d := m.Direct()
			var sum uint64
			for i := 0; i < objs; i++ {
				sum += tl.Read(d, i)
			}
			if want := uint64(cores * txPer * 2); sum != want {
				t.Fatalf("%s: sum = %d, want %d (lost or duplicated updates)", name, sum, want)
			}
		})
	}
}

// TestTL2LeaseReducesAborts reproduces the Figure 4 TL2 direction: the
// MultiLease variant must abort far less than the base under contention.
func TestTL2LeaseReducesAborts(t *testing.T) {
	run := func(mode LeaseMode) (commits, aborts uint64) {
		const cores, objs = 8, 10
		m := newM(cores)
		tl := New(m.Direct(), objs, 20000)
		tl.Mode = mode
		for i := 0; i < cores; i++ {
			m.Spawn(0, func(c *machine.Ctx) {
				for {
					i := c.Rand().Intn(objs)
					j := c.Rand().Intn(objs - 1)
					if j >= i {
						j++
					}
					aborts += uint64(tl.UpdatePair(c, i, j, 1))
					commits++
				}
			})
		}
		if err := m.Run(500000); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return commits, aborts
	}
	_, baseAborts := run(NoLease)
	hwCommits, hwAborts := run(HWMulti)
	if baseAborts == 0 {
		t.Fatal("base TL2 shows no aborts under 8-way contention on 10 objects")
	}
	if hwAborts*5 > baseAborts {
		t.Fatalf("hw-multilease aborts %d vs base %d: leases not suppressing aborts",
			hwAborts, baseAborts)
	}
	if hwCommits == 0 {
		t.Fatal("no commits with multilease")
	}
}
