package bench

import (
	"reflect"
	"testing"

	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

// spanRun runs a leased contended counter with span tracing (keeping every
// completed span) and returns the result and the assembler.
func spanRun(t *testing.T, seed uint64, threads int) (Result, *telemetry.Spans) {
	t.Helper()
	cfg := machine.DefaultConfig(threads)
	cfg.Seed = seed
	rec := telemetry.NewRecorder()
	sp := rec.EnableSpans()
	sp.Keep = true
	r := ThroughputOpts(cfg, threads, 20_000, 100_000,
		CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
	if r.Err != nil {
		t.Fatalf("run failed: %v", r.Err)
	}
	return r, sp
}

// The acceptance invariant of the cycle accounting, on the paper's
// contended-counter workload: every completed span's phases partition its
// latency exactly, and the operation roll-up accounts for 100% of measured
// operation latency (OpCycles == OpTxnCycles + OpOtherCycles, with the
// txn part equal to the per-phase sum).
func TestSpanCycleAccountingSumsToLatency(t *testing.T) {
	r, sp := spanRun(t, 1, 8)

	if len(sp.Completed) == 0 {
		t.Fatal("no spans completed on a contended run")
	}
	for _, s := range sp.Completed {
		var sum uint64
		for _, c := range s.Phases {
			sum += c
		}
		if sum != s.Total() {
			t.Fatalf("span %#x: phases %v sum to %d, want total %d",
				s.ID, s.Phases, sum, s.Total())
		}
	}

	st := sp.Stats()
	if st.Spans == 0 || st.Deferred == 0 {
		t.Fatalf("stats %+v: want spans and deferrals on a leased contended counter", st)
	}
	var phaseSum uint64
	for _, c := range st.Phase {
		phaseSum += c
	}
	if phaseSum != st.SpanCycles {
		t.Errorf("aggregate phases sum to %d, want SpanCycles %d", phaseSum, st.SpanCycles)
	}

	if st.Ops == 0 {
		t.Fatal("no measured operations attributed")
	}
	if st.OpCycles != st.OpTxnCycles+st.OpOtherCycles {
		t.Errorf("OpCycles %d != OpTxnCycles %d + OpOtherCycles %d",
			st.OpCycles, st.OpTxnCycles, st.OpOtherCycles)
	}
	var opPhaseSum uint64
	for _, c := range st.OpPhase {
		opPhaseSum += c
	}
	if opPhaseSum != st.OpTxnCycles {
		t.Errorf("sum(OpPhase) %d != OpTxnCycles %d", opPhaseSum, st.OpTxnCycles)
	}

	// The result carries the summary for reports and tables.
	if r.Txns == nil || r.Txns.Count != st.Spans || r.Txns.OpPhases == nil {
		t.Errorf("Result.Txns = %+v, want the run's summary", r.Txns)
	}
}

// Span tracing must not perturb the simulation: the measured window is
// identical (ops, every hardware counter, fairness, latency histogram)
// with tracing on and off — which is what keeps benchmark tables
// byte-identical either way.
func TestSpanTracingDoesNotPerturbSimulation(t *testing.T) {
	run := func(spans bool) Result {
		cfg := machine.DefaultConfig(8)
		cfg.Seed = 3
		rec := telemetry.NewRecorder()
		if spans {
			rec.EnableSpans()
		}
		return ThroughputOpts(cfg, 8, 20_000, 100_000,
			CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
	}
	plain := run(false)
	traced := run(true)

	if plain.Ops != traced.Ops {
		t.Errorf("ops changed with span tracing: %d vs %d", plain.Ops, traced.Ops)
	}
	if plain.Window != traced.Window {
		t.Errorf("window stats changed with span tracing:\n%+v\n%+v", plain.Window, traced.Window)
	}
	if plain.Fairness != traced.Fairness {
		t.Errorf("fairness changed with span tracing: %v vs %v", plain.Fairness, traced.Fairness)
	}
	if !reflect.DeepEqual(plain.OpLatency, traced.OpLatency) {
		t.Errorf("op-latency histogram changed with span tracing:\n%+v\n%+v",
			plain.OpLatency, traced.OpLatency)
	}
	if traced.Txns == nil || traced.Txns.Count == 0 {
		t.Error("traced run produced no span accounting")
	}
	if plain.Txns != nil {
		t.Error("untraced run produced span accounting")
	}
}

// The reconstructed span trees are part of the determinism contract: a
// sweep of cells produces identical spans for every -parallel worker
// count (cells own private machines; host scheduling cannot leak in).
func TestSpanTreesIdenticalAcrossPoolSizes(t *testing.T) {
	sweep := func(workers int) [][]telemetry.Span {
		pool := NewPool(workers)
		defer pool.Close()
		seeds := []uint64{1, 2, 3, 4}
		futures := make([]*Future[[]telemetry.Span], len(seeds))
		for i, seed := range seeds {
			seed := seed
			futures[i] = Go(pool, func() []telemetry.Span {
				cfg := machine.DefaultConfig(4)
				cfg.Seed = seed
				rec := telemetry.NewRecorder()
				sp := rec.EnableSpans()
				sp.Keep = true
				r := ThroughputOpts(cfg, 4, 10_000, 40_000,
					CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
				if r.Err != nil {
					t.Errorf("seed %d failed: %v", seed, r.Err)
				}
				return sp.Completed
			})
		}
		out := make([][]telemetry.Span, len(futures))
		for i, f := range futures {
			out[i] = f.Get()
		}
		return out
	}

	serial := sweep(1)
	parallel := sweep(4)
	for i := range serial {
		if len(serial[i]) == 0 {
			t.Fatalf("cell %d completed no spans", i)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("cell %d span trees differ between -parallel 1 and 4", i)
		}
	}
}
