package bench

import (
	"fmt"
	"io"

	"leaserelease/internal/coherence"
	"leaserelease/internal/ds"
	"leaserelease/internal/locks"
	"leaserelease/internal/machine"
	"leaserelease/internal/multiqueue"
	"leaserelease/internal/stm"
	"leaserelease/internal/telemetry"
)

// Params controls the scale of an experiment sweep.
type Params struct {
	Threads []int  // thread counts to sweep
	Warm    uint64 // warmup cycles
	Window  uint64 // measurement window cycles

	// Pool runs the sweep's cells — one (experiment, thread count,
	// variant) measurement each — on a host worker pool. Each cell owns a
	// private simulated machine, and rows are emitted in serial order, so
	// output is byte-identical for any pool size. nil means serial.
	Pool *Pool

	// Protocol selects the coherence protocol backend for every cell of
	// the sweep ("" = MSI); see machine.Config.Protocol.
	Protocol string

	// Shards requests conservative time-windowed parallel execution
	// inside each cell's simulated machine (see machine.Config.Shards).
	// Orthogonal to Pool: Pool spreads cells across host workers, Shards
	// splits one cell's event kernel. Output is byte-identical at any
	// value; cells that fail shard certification (telemetry-enabled
	// measurements, non-MSI protocols, fault injection) silently run
	// serially.
	Shards int

	// Exp names the experiment currently sweeping (for progress cell
	// labels); Progress, when non-nil, receives live per-cell progress
	// for the -serve introspection endpoint. Both are host-side only.
	Exp      string
	Progress *Progress
}

// cellName labels one sweep cell for live introspection.
func (p Params) cellName(n int) string {
	if p.Exp == "" {
		return fmt.Sprintf("t%d", n)
	}
	return fmt.Sprintf("%s/t%d", p.Exp, n)
}

// FullParams reproduces the paper's sweeps (2..64 threads, Fig. 2 also 1).
func FullParams() Params {
	return Params{Threads: []int{2, 4, 8, 16, 32, 64}, Warm: 300_000, Window: 1_500_000}
}

// QuickParams is a fast smoke-scale sweep for tests and `-quick`.
func QuickParams() Params {
	return Params{Threads: []int{2, 8}, Warm: 50_000, Window: 200_000}
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string // e.g. "fig2"
	Paper string // what it reproduces
	Run   func(w io.Writer, p Params)
}

// All returns every experiment in the paper order of DESIGN.md's index.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: system configuration", runTable1},
		{"fig2", "Figure 2: Treiber stack throughput, with and without leases", runFig2},
		{"fig3-counter", "Figure 3: lock-based counter throughput and energy", runFig3Counter},
		{"fig3-queue", "Figure 3: Michael-Scott queue throughput and energy", runFig3Queue},
		{"fig3-pq", "Figure 3: skiplist priority queue throughput and energy", runFig3PQ},
		{"fig4-mq", "Figure 4: MultiQueues throughput and energy", runFig4MQ},
		{"fig4-tl2", "Figure 4: TL2 transactions throughput, energy, aborts", runFig4TL2},
		{"fig5-swhw", "Figure 5 left: hardware vs software MultiLeases (TL2)", runFig5SwHw},
		{"fig5-pagerank", "Figure 5 right: lock-based Pagerank", runFig5Pagerank},
		{"text-backoff", "§7 text: backoff comparison on the stack", runTextBackoff},
		{"text-lowcontention", "§7 text: low-contention structures, 20% updates", runTextLowContention},
		{"text-constmiss", "§7 text: misses and messages per op stay constant", runTextConstMiss},
		{"ablate-leasetime", "§7 text: MAX_LEASE_TIME 1K vs 20K cycles", runAblateLeaseTime},
		{"ablate-priority", "§5: prioritization (regular requests break leases)", runAblatePriority},
		{"ablate-mesi", "§8: MESI exclusive-clean fills vs plain MSI", runAblateMESI},
		{"ablate-predictor", "§5: speculative predictor skips always-expiring leases", runAblatePredictor},
		{"ablate-autolease", "§8 future work: automatic lease insertion on the plain stack", runAblateAutoLease},
		{"snapshot", "§5: cheap lock-free snapshots vs double-collect", runSnapshot},
		{"degradation", "robustness: throughput retention under core preemption, lease vs lock vs adaptive controller", runDegradation},
		{"protocol-compare", "protocol axis: lease-vs-backoff speedup under MSI vs Tardis at equal contention", runProtocolCompare},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// cfgFor builds the machine config for one sweep cell: the paper's default
// system, on the sweep's coherence protocol.
func (p Params) cfgFor(threads int) machine.Config {
	cfg := machine.DefaultConfig(threads)
	cfg.Protocol = p.Protocol
	cfg.Shards = p.Shards
	return cfg
}

// invalCol names the cycle-accounting column that holds PhaseInval
// cycles: invalidation fan-out under MSI, renewal/rts-extension service
// under Tardis (see telemetry.PhaseName).
func (p Params) invalCol() string {
	return telemetry.PhaseName(telemetry.PhaseInval, p.Protocol)
}

// cell submits one plain throughput measurement as a pool cell.
func (p Params) cell(cfg machine.Config, n int, build func(d *machine.Direct) OpFunc) *Future[Result] {
	cp := p.Progress.Cell(p.cellName(n))
	return Go(p.Pool, func() Result {
		cp.Start()
		defer cp.Done()
		return ThroughputOpts(cfg, n, p.Warm, p.Window, build, Options{Progress: cp})
	})
}

// mcell submits one telemetry-enabled measurement (latency digests plus
// transaction-span cycle accounting) as a pool cell.
func (p Params) mcell(cfg machine.Config, n int, build func(d *machine.Direct) OpFunc) *Future[Result] {
	cp := p.Progress.Cell(p.cellName(n))
	return Go(p.Pool, func() Result {
		cp.Start()
		defer cp.Done()
		return measured(cfg, n, p, build, cp)
	})
}

func runTable1(w io.Writer, p Params) {
	cfg := machine.DefaultConfig(64)
	t := NewTable("parameter", "value")
	t.Row("Core model", fmt.Sprintf("%.0f GHz, in-order, 1-cycle L1", float64(cfg.ClockHz)/1e9))
	t.Row("L1-D cache per tile", fmt.Sprintf("%d KB, %d-way, %d cycle", cfg.L1.SizeBytes/1024, cfg.L1.Ways, cfg.L1HitLat))
	t.Row("L2 tag/data latency", fmt.Sprintf("%d/%d cycles", cfg.Timing.L2Tag, cfg.Timing.L2Data))
	t.Row("Network hop", fmt.Sprintf("%d cycles (+0..%d jitter)", cfg.Timing.Net, cfg.Timing.NetJitter))
	t.Row("DRAM (cold fill)", fmt.Sprintf("%d cycles", cfg.Timing.DRAM))
	t.Row("Cache line", "64 bytes")
	proto := "MSI directory, private L1 / shared L2, per-line FIFO queues"
	if p.Protocol == coherence.ProtocolTardis {
		proto = "Tardis timestamps (wts/rts reservations), private L1 / shared L2, per-line FIFO queues"
	}
	t.Row("Coherence protocol", proto)
	t.Row("MAX_LEASE_TIME", fmt.Sprintf("%d cycles", cfg.Lease.MaxLeaseTime))
	t.Row("MAX_NUM_LEASES", cfg.Lease.MaxNumLeases)
	t.Print(w)
}

// measured runs a telemetry-enabled throughput measurement so experiments
// can report latency distributions (p50/p90/p99) and critical-path cycle
// accounting (Result.Txns) alongside means. Telemetry is host-side only,
// so the simulated numbers are byte-identical to an unmeasured run.
func measured(cfg machine.Config, n int, p Params, build func(d *machine.Direct) OpFunc, cp *CellProgress) Result {
	rec := telemetry.NewRecorder()
	rec.EnableSpans()
	rec.EnableLedger()
	return ThroughputOpts(cfg, n, p.Warm, p.Window, build,
		Options{Recorder: rec, Progress: cp})
}

func runFig2(w io.Writer, p Params) {
	t := NewTable("threads", "base Mops/s", "lease Mops/s", "speedup", "base miss/op", "lease miss/op",
		"base lat p50/p99", "lease lat p50/p99")
	threads := p.Threads
	if threads[0] != 1 {
		threads = append([]int{1}, threads...)
	}
	type row struct{ base, lease *Future[Result] }
	rows := make([]row, len(threads))
	for i, n := range threads {
		rows[i] = row{
			base:  p.mcell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{})),
			lease: p.mcell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{Lease: LeaseTime})),
		}
	}
	for i, n := range threads {
		base, lease := rows[i].base.Get(), rows[i].lease.Get()
		t.Row(n, base.MopsPerSec, lease.MopsPerSec, ratio(lease.MopsPerSec, base.MopsPerSec),
			base.MissesPerOp, lease.MissesPerOp,
			fmtP5099(base.OpLatency), fmtP5099(lease.OpLatency))
	}
	t.Print(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "where the cycles went (leased stack, % of measured op latency):")
	ct := NewTable("threads", "cycles/op", "req-net", "dir-queue", "dir-service",
		p.invalCol(), "probe-defer", "transfer", "l1+compute")
	for i, n := range threads {
		WhereCyclesWentRow(ct, n, rows[i].lease.Get().Txns)
	}
	ct.Print(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "lease-efficiency ledger (leased stack):")
	lt := NewLedgerTable()
	for i, n := range threads {
		LedgerTableRow(lt, n, rows[i].lease.Get().LeaseLedger)
	}
	lt.Print(w)
}

// fmtP5099 renders a latency digest as "p50/p99" cycles.
func fmtP5099(s *telemetry.Summary) string {
	if s == nil || s.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d", s.P50, s.P99)
}

func runFig3Counter(w io.Writer, p Params) {
	t := NewTable("threads",
		"tts Mops/s", "lease Mops/s", "ticket Mops/s", "clh Mops/s",
		"tts nJ/op", "lease nJ/op", "lease lat p50/p99", "hold p50/p99")
	type row struct{ tts, lease, ticket, clh *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			tts:    p.cell(p.cfgFor(n), n, CounterWorkload(CounterTTS)),
			lease:  p.mcell(p.cfgFor(n), n, CounterWorkload(CounterLeasedTTS)),
			ticket: p.cell(p.cfgFor(n), n, CounterWorkload(CounterTicket)),
			clh:    p.cell(p.cfgFor(n), n, CounterWorkload(CounterCLH)),
		}
	}
	for i, n := range p.Threads {
		tts, lease := rows[i].tts.Get(), rows[i].lease.Get()
		ticket, clh := rows[i].ticket.Get(), rows[i].clh.Get()
		t.Row(n, tts.MopsPerSec, lease.MopsPerSec, ticket.MopsPerSec, clh.MopsPerSec,
			tts.NJPerOp, lease.NJPerOp, fmtP5099(lease.OpLatency), fmtP5099(lease.LeaseHold))
	}
	t.Print(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "where the cycles went (leased counter, % of measured op latency):")
	ct := NewTable("threads", "cycles/op", "req-net", "dir-queue", "dir-service",
		p.invalCol(), "probe-defer", "transfer", "l1+compute")
	for i, n := range p.Threads {
		WhereCyclesWentRow(ct, n, rows[i].lease.Get().Txns)
	}
	ct.Print(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "lease-efficiency ledger (leased counter):")
	lt := NewLedgerTable()
	for i, n := range p.Threads {
		LedgerTableRow(lt, n, rows[i].lease.Get().LeaseLedger)
	}
	lt.Print(w)
}

// NewLedgerTable starts the sweep-level lease-ledger table: one row per
// thread count summarizing whether that configuration's leases earned
// their keep.
func NewLedgerTable() *Table {
	return NewTable("threads", "leases", "expired", "efficiency", "ops/lease",
		"unused cyc", "wasted cyc", "defer-inflicted cyc")
}

// LedgerTableRow appends one configuration's ledger totals. A nil or
// lease-free summary appends a dash row.
func LedgerTableRow(t *Table, label interface{}, led *telemetry.LedgerSummary) {
	if led == nil || led.Leases == 0 {
		t.Row(label, "-", "-", "-", "-", "-", "-", "-")
		return
	}
	t.Row(label, led.Leases, led.Expired,
		led.Efficiency, led.Amortization,
		led.UnusedCycles, led.UnusedCycles+led.ExpiredIdleCycles,
		led.DeferInflictedCycles)
}

// WhereCyclesWentRow appends one row of a critical-path cycle-accounting
// table: mean cycles per measured operation, then the share of that
// latency in each transaction phase plus the non-coherence remainder
// (L1 hits and local compute). The shares sum to 100% by construction
// (see telemetry.TxnStats). A nil or op-less summary appends a dash row.
func WhereCyclesWentRow(t *Table, label interface{}, tx *telemetry.TxnSummary) {
	if tx == nil || tx.Ops == 0 || tx.OpCycles == 0 || tx.OpPhases == nil {
		t.Row(label, "-", "-", "-", "-", "-", "-", "-", "-")
		return
	}
	pct := func(v uint64) string {
		return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(tx.OpCycles))
	}
	op := tx.OpPhases
	t.Row(label, fmt.Sprintf("%.0f", float64(tx.OpCycles)/float64(tx.Ops)),
		pct(op.ReqNet), pct(op.QueueWait), pct(op.DirService),
		pct(op.InvalWait), pct(op.DeferWait), pct(op.Transfer),
		pct(tx.OpOtherCycles))
}

func runFig3Queue(w io.Writer, p Params) {
	t := NewTable("threads",
		"base Mops/s", "lease Mops/s", "multi Mops/s", "flatcomb Mops/s", "lcrq Mops/s",
		"base nJ/op", "lease nJ/op")
	type row struct{ base, single, multi, fc, lcrq *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			base:   p.cell(p.cfgFor(n), n, QueueWorkload(ds.QueueNoLease)),
			single: p.cell(p.cfgFor(n), n, QueueWorkload(ds.QueueSingleLease)),
			multi:  p.cell(p.cfgFor(n), n, QueueWorkload(ds.QueueMultiLease)),
			fc:     p.cell(p.cfgFor(n), n, FCQueueWorkload(n)),
			lcrq:   p.cell(p.cfgFor(n), n, LCRQWorkload()),
		}
	}
	for i, n := range p.Threads {
		base, single := rows[i].base.Get(), rows[i].single.Get()
		multi, fc, lcrq := rows[i].multi.Get(), rows[i].fc.Get(), rows[i].lcrq.Get()
		t.Row(n, base.MopsPerSec, single.MopsPerSec, multi.MopsPerSec, fc.MopsPerSec,
			lcrq.MopsPerSec, base.NJPerOp, single.NJPerOp)
	}
	t.Print(w)
}

func runFig3PQ(w io.Writer, p Params) {
	t := NewTable("threads",
		"fine Mops/s", "global Mops/s", "lease Mops/s",
		"fine nJ/op", "lease nJ/op")
	type row struct{ fine, glob, lease *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			fine:  p.cell(p.cfgFor(n), n, PQWorkload(PQFineLocking, 512)),
			glob:  p.cell(p.cfgFor(n), n, PQWorkload(PQGlobalBase, 512)),
			lease: p.cell(p.cfgFor(n), n, PQWorkload(PQGlobalLeased, 512)),
		}
	}
	for i, n := range p.Threads {
		fine, glob, lease := rows[i].fine.Get(), rows[i].glob.Get(), rows[i].lease.Get()
		t.Row(n, fine.MopsPerSec, glob.MopsPerSec, lease.MopsPerSec,
			fine.NJPerOp, lease.NJPerOp)
	}
	t.Print(w)
}

func runFig4MQ(w io.Writer, p Params) {
	t := NewTable("threads", "base Mops/s", "lease Mops/s", "speedup", "base nJ/op", "lease nJ/op")
	type row struct{ base, lease *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			base:  p.cell(p.cfgFor(n), n, MQWorkload(multiqueue.Options{})),
			lease: p.cell(p.cfgFor(n), n, MQWorkload(multiqueue.Options{LeaseTime: LeaseTime})),
		}
	}
	for i, n := range p.Threads {
		base, lease := rows[i].base.Get(), rows[i].lease.Get()
		t.Row(n, base.MopsPerSec, lease.MopsPerSec, ratio(lease.MopsPerSec, base.MopsPerSec),
			base.NJPerOp, lease.NJPerOp)
	}
	t.Print(w)
}

func runFig4TL2(w io.Writer, p Params) {
	t := NewTable("threads",
		"base Mtx/s", "multi Mtx/s", "single Mtx/s",
		"base aborts/tx", "multi aborts/tx", "base nJ/tx", "multi nJ/tx")
	type row struct{ base, multi, single *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			base:   Go(p.Pool, func() Result { return tl2Run(p, n, stm.NoLease) }),
			multi:  Go(p.Pool, func() Result { return tl2Run(p, n, stm.HWMulti) }),
			single: Go(p.Pool, func() Result { return tl2Run(p, n, stm.SingleFirst) }),
		}
	}
	for i, n := range p.Threads {
		base, multi, single := rows[i].base.Get(), rows[i].multi.Get(), rows[i].single.Get()
		t.Row(n, base.MopsPerSec, multi.MopsPerSec, single.MopsPerSec,
			base.AbortsPerOp, multi.AbortsPerOp, base.NJPerOp, multi.NJPerOp)
	}
	t.Print(w)
}

func tl2Run(p Params, n int, mode stm.LeaseMode) Result {
	var aborts uint64
	r := Throughput(p.cfgFor(n), n, p.Warm, p.Window, TL2Workload(mode, &aborts))
	// aborts accumulated over warm+window; approximate the window share.
	if r.Ops > 0 {
		frac := float64(p.Window) / float64(p.Warm+p.Window)
		r.AbortsPerOp = float64(aborts) * frac / float64(r.Ops)
	}
	return r
}

func runFig5SwHw(w io.Writer, p Params) {
	t := NewTable("threads", "hw Mtx/s", "sw Mtx/s", "hw/sw", "hw aborts/tx", "sw aborts/tx")
	type row struct{ hw, sw *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			hw: Go(p.Pool, func() Result { return tl2Run(p, n, stm.HWMulti) }),
			sw: Go(p.Pool, func() Result { return tl2Run(p, n, stm.SWMulti) }),
		}
	}
	for i, n := range p.Threads {
		hw, sw := rows[i].hw.Get(), rows[i].sw.Get()
		t.Row(n, hw.MopsPerSec, sw.MopsPerSec, ratio(hw.MopsPerSec, sw.MopsPerSec),
			hw.AbortsPerOp, sw.AbortsPerOp)
	}
	t.Print(w)
}

func runFig5Pagerank(w io.Writer, p Params) {
	t := NewTable("threads", "base Mcycles", "lease Mcycles", "speedup")
	nodes, iters := 1024, 3
	if p.Window <= QuickParams().Window {
		nodes, iters = 256, 2
	}
	type prun struct {
		cycles uint64
		err    error
	}
	type row struct {
		n           int
		base, lease *Future[prun]
	}
	var rows []row
	for _, n := range p.Threads {
		if n > 32 {
			continue // the paper evaluates Pagerank up to 32 threads
		}
		rows = append(rows, row{
			n: n,
			base: Go(p.Pool, func() prun {
				c, _, err := PagerankRun(p.cfgFor(n), n, 0, nodes, iters)
				return prun{c, err}
			}),
			lease: Go(p.Pool, func() prun {
				c, _, err := PagerankRun(p.cfgFor(n), n, LeaseTime, nodes, iters)
				return prun{c, err}
			}),
		})
	}
	for _, r := range rows {
		base, lease := r.base.Get(), r.lease.Get()
		if base.err != nil || lease.err != nil {
			fmt.Fprintf(w, "pagerank with %d threads FAILED: base=%v lease=%v\n", r.n, base.err, lease.err)
			continue
		}
		t.Row(r.n, float64(base.cycles)/1e6, float64(lease.cycles)/1e6,
			ratio(float64(base.cycles), float64(lease.cycles)))
	}
	t.Print(w)
}

func runTextBackoff(w io.Writer, p Params) {
	t := NewTable("threads", "base Mops/s", "backoff Mops/s", "tuned-backoff Mops/s",
		"elimination Mops/s", "flatcomb Mops/s", "lease Mops/s")
	type row struct{ base, bo, tuned, elim, fc, lease *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			base: p.cell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{})),
			bo: p.cell(p.cfgFor(n), n,
				StackWorkload(ds.StackOptions{Backoff: ds.Backoff{Min: 32, Max: 4096}})),
			tuned: p.cell(p.cfgFor(n), n,
				StackWorkload(ds.StackOptions{Backoff: ds.Backoff{Min: 64, Max: 64 * uint64(n)}})),
			elim:  p.cell(p.cfgFor(n), n, EliminationStackWorkload()),
			fc:    p.cell(p.cfgFor(n), n, FCStackWorkload(n)),
			lease: p.cell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{Lease: LeaseTime})),
		}
	}
	for i, n := range p.Threads {
		r := rows[i]
		t.Row(n, r.base.Get().MopsPerSec, r.bo.Get().MopsPerSec, r.tuned.Get().MopsPerSec,
			r.elim.Get().MopsPerSec, r.fc.Get().MopsPerSec, r.lease.Get().MopsPerSec)
	}
	t.Print(w)
}

func runTextLowContention(w io.Writer, p Params) {
	// The paper's observation concerns relative deltas ("throughput is
	// the same... ≤5%"), so this sweep halves the window and skips tiny
	// thread counts to keep seven structures tractable.
	t := NewTable("structure", "threads", "base Mops/s", "lease Mops/s", "delta %")
	keyRange, prefill := 512, 256
	half := p
	half.Window = p.Window / 2
	type row struct {
		kind        SetKind
		n           int
		base, lease *Future[Result]
	}
	var rows []row
	for _, kind := range AllSetKinds() {
		for _, n := range p.Threads {
			if n < 4 && len(p.Threads) > 2 {
				continue
			}
			rows = append(rows, row{
				kind:  kind,
				n:     n,
				base:  half.cell(p.cfgFor(n), n, SetWorkload(kind, 0, keyRange, prefill)),
				lease: half.cell(p.cfgFor(n), n, SetWorkload(kind, LeaseTime, keyRange, prefill)),
			})
		}
	}
	for _, r := range rows {
		base, lease := r.base.Get(), r.lease.Get()
		t.Row(r.kind.String(), r.n, base.MopsPerSec, lease.MopsPerSec,
			100*(lease.MopsPerSec-base.MopsPerSec)/base.MopsPerSec)
	}
	t.Print(w)
}

func runTextConstMiss(w io.Writer, p Params) {
	t := NewTable("threads", "base miss/op", "lease miss/op", "base msgs/op", "lease msgs/op")
	type row struct{ base, lease *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			base:  p.cell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{})),
			lease: p.cell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{Lease: LeaseTime})),
		}
	}
	for i, n := range p.Threads {
		base, lease := rows[i].base.Get(), rows[i].lease.Get()
		t.Row(n, base.MissesPerOp, lease.MissesPerOp, base.MsgsPerOp, lease.MsgsPerOp)
	}
	t.Print(w)
}

func runAblateLeaseTime(w io.Writer, p Params) {
	// Part 1 (the paper's claim): the stack's misses/op stay constant
	// even with MAX_LEASE_TIME reduced from 20K to 1K cycles, because
	// releases are voluntary long before the bound.
	t := NewTable("threads", "20K Mops/s", "1K Mops/s", "20K miss/op", "1K miss/op", "1K invol-rel/op")
	type row struct{ long, short *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		cfgShort := p.cfgFor(n)
		cfgShort.Lease.MaxLeaseTime = 1000
		rows[i] = row{
			long:  p.cell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{Lease: 20000})),
			short: p.cell(cfgShort, n, StackWorkload(ds.StackOptions{Lease: 1000})),
		}
	}
	for i, n := range p.Threads {
		long, short := rows[i].long.Get(), rows[i].short.Get()
		invol := float64(short.Window.InvoluntaryReleases) / float64(max64(short.Ops, 1))
		t.Row(n, long.MopsPerSec, short.MopsPerSec, long.MissesPerOp, short.MissesPerOp, invol)
	}
	t.Print(w)
	fmt.Fprintln(w)
	// Part 2: when the critical section exceeds MAX_LEASE_TIME (leased
	// lock held ~300 cycles, bound 100), leases expire involuntarily and
	// the benefit degrades toward the base — the bound is load-bearing.
	longCS := func(maxLease, leaseTime uint64) func(d *machine.Direct) OpFunc {
		return func(d *machine.Direct) OpFunc {
			l := locks.NewLeased(locks.NewTTS(d), leaseTime)
			ctr := d.Alloc(8)
			return func(tid int, c *machine.Ctx) {
				l.Lock(c)
				c.Store(ctr, c.Load(ctr)+1)
				c.Work(300)
				l.Unlock(c)
				jitter(c)
			}
		}
	}
	t2 := NewTable("threads", "bound 20K Mops/s", "bound 100 Mops/s", "bound-100 invol-rel/op")
	type row2 struct{ ok, tight *Future[Result] }
	rows2 := make([]row2, len(p.Threads))
	for i, n := range p.Threads {
		cfgTight := p.cfgFor(n)
		cfgTight.Lease.MaxLeaseTime = 100
		rows2[i] = row2{
			ok:    p.cell(p.cfgFor(n), n, longCS(20000, 20000)),
			tight: p.cell(cfgTight, n, longCS(100, 100)),
		}
	}
	for i, n := range p.Threads {
		ok, tight := rows2[i].ok.Get(), rows2[i].tight.Get()
		t2.Row(n, ok.MopsPerSec, tight.MopsPerSec,
			float64(tight.Window.InvoluntaryReleases)/float64(max64(tight.Ops, 1)))
	}
	t2.Print(w)
}

func runAblatePriority(w io.Writer, p Params) {
	// §7 "Observations and Limitations": a thread that leases a lock
	// already owned by another thread and is slow to drop the lease
	// delays the owner's unlock. The prioritization mechanism (§5) lets
	// the owner's regular store break such leases. This workload makes
	// waiters improperly hold the lease for a while after a failed
	// try-lock, with and without prioritization.
	t := NewTable("threads", "queueing Mops/s", "breaking Mops/s", "speedup", "broken/op")
	type row struct{ plain, brk *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		cfgBrk := p.cfgFor(n)
		cfgBrk.RegularBreaksLease = true
		rows[i] = row{
			plain: p.cell(p.cfgFor(n), n, ImproperLockWorkload()),
			brk:   p.cell(cfgBrk, n, ImproperLockWorkload()),
		}
	}
	for i, n := range p.Threads {
		plain, brk := rows[i].plain.Get(), rows[i].brk.Get()
		t.Row(n, plain.MopsPerSec, brk.MopsPerSec, ratio(brk.MopsPerSec, plain.MopsPerSec),
			float64(brk.Window.BrokenLeases)/float64(max64(brk.Ops, 1)))
	}
	t.Print(w)
}

func runAblateMESI(w io.Writer, p Params) {
	// MESI helps read-then-write patterns most: the low-contention sets
	// (search, then update in place) and the base stack's load-then-CAS.
	t := NewTable("workload", "threads", "msi Mops/s", "mesi Mops/s", "delta %")
	type row struct{ msi, mesi *Future[Result] }
	cells := func(build func(n int) func(d *machine.Direct) OpFunc) []row {
		rows := make([]row, len(p.Threads))
		for i, n := range p.Threads {
			cfgM := p.cfgFor(n)
			cfgM.MESI = true
			rows[i] = row{
				msi:  p.cell(p.cfgFor(n), n, build(n)),
				mesi: p.cell(cfgM, n, build(n)),
			}
		}
		return rows
	}
	hash := cells(func(int) func(d *machine.Direct) OpFunc { return SetWorkload(SetHash, 0, 1024, 512) })
	stack := cells(func(int) func(d *machine.Direct) OpFunc { return StackWorkload(ds.StackOptions{}) })
	emit := func(name string, rows []row) {
		for i, n := range p.Threads {
			msi, mesi := rows[i].msi.Get(), rows[i].mesi.Get()
			t.Row(name, n, msi.MopsPerSec, mesi.MopsPerSec,
				100*(mesi.MopsPerSec-msi.MopsPerSec)/msi.MopsPerSec)
		}
	}
	emit("hashtable", hash)
	emit("stack-base", stack)
	t.Print(w)
}

func runAblatePredictor(w io.Writer, p Params) {
	// A pathological lease site: the leased critical window always
	// outlives MAX_LEASE_TIME, so every lease expires involuntarily and
	// only adds deferral latency. The §5 predictor learns to skip it.
	t := NewTable("threads", "no-lease Mops/s", "bad-lease Mops/s", "predictor Mops/s", "ignored/op")
	pathological := func(lease bool) func(d *machine.Direct) OpFunc {
		return func(d *machine.Direct) OpFunc {
			a := d.Alloc(8)
			return func(tid int, c *machine.Ctx) {
				if lease {
					c.LeaseAt(1, a, 300)
				}
				v := c.Load(a)
				c.Work(1500)
				c.CAS(a, v, v+1)
				if lease {
					c.Release(a)
				}
			}
		}
	}
	type row struct{ base, bad, pred *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		cfgBase := p.cfgFor(n)
		cfgBase.Lease.MaxLeaseTime = 300
		cfgPred := cfgBase
		cfgPred.Predictor.Enable = true
		rows[i] = row{
			base: p.cell(cfgBase, n, pathological(false)),
			bad:  p.cell(cfgBase, n, pathological(true)),
			pred: p.cell(cfgPred, n, pathological(true)),
		}
	}
	for i, n := range p.Threads {
		base, bad, pred := rows[i].base.Get(), rows[i].bad.Get(), rows[i].pred.Get()
		t.Row(n, base.MopsPerSec, bad.MopsPerSec, pred.MopsPerSec,
			float64(pred.Window.IgnoredLeases)/float64(max64(pred.Ops, 1)))
	}
	t.Print(w)
}

func runAblateAutoLease(w io.Writer, p Params) {
	// The plain (lease-free) Treiber stack run through the Auto wrapper:
	// automatic insertion should recover most of the manual-lease win
	// without touching the data structure code.
	t := NewTable("threads", "base Mops/s", "auto Mops/s", "manual Mops/s", "auto/manual")
	type row struct{ base, auto, manual *Future[Result] }
	rows := make([]row, len(p.Threads))
	for i, n := range p.Threads {
		rows[i] = row{
			base:   p.cell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{})),
			auto:   p.cell(p.cfgFor(n), n, AutoStackWorkload()),
			manual: p.cell(p.cfgFor(n), n, StackWorkload(ds.StackOptions{Lease: LeaseTime})),
		}
	}
	for i, n := range p.Threads {
		base, auto, manual := rows[i].base.Get(), rows[i].auto.Get(), rows[i].manual.Get()
		t.Row(n, base.MopsPerSec, auto.MopsPerSec, manual.MopsPerSec,
			ratio(auto.MopsPerSec, manual.MopsPerSec))
	}
	t.Print(w)
}

func runSnapshot(w io.Writer, p Params) {
	// Half the threads write all words under a joint lease; half take
	// 4-word snapshots. Snapshot counts/rounds are over warm+window.
	t := NewTable("threads", "lease snaps", "dcollect snaps", "lease rounds/snap", "dcollect rounds/snap")
	type snap struct{ attempts, snaps uint64 }
	type row struct {
		n            int
		lease, dcoll *Future[snap]
	}
	var rows []row
	for _, n := range p.Threads {
		if n < 2 {
			continue
		}
		rows = append(rows, row{
			n: n,
			lease: Go(p.Pool, func() snap {
				var s snap
				Throughput(p.cfgFor(n), n, p.Warm, p.Window, SnapshotWorkload(true, 4, &s.attempts, &s.snaps))
				return s
			}),
			dcoll: Go(p.Pool, func() snap {
				var s snap
				Throughput(p.cfgFor(n), n, p.Warm, p.Window, SnapshotWorkload(false, 4, &s.attempts, &s.snaps))
				return s
			}),
		})
	}
	for _, r := range rows {
		lease, dcoll := r.lease.Get(), r.dcoll.Get()
		t.Row(r.n, lease.snaps, dcoll.snaps,
			float64(lease.attempts)/float64(max64(lease.snaps, 1)),
			float64(dcoll.attempts)/float64(max64(dcoll.snaps, 1)))
	}
	t.Print(w)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
