package bench

import (
	"reflect"
	"testing"

	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

// ledgerRun is one measured leased-counter run with both the ledger and
// the span assembler attached, so the two accountings can be reconciled.
type ledgerRun struct {
	result Result
	lines  []telemetry.LineLedger
	totals telemetry.LedgerTotals
	defer_ uint64 // span assembler probe-defer phase total
}

func runLedgerCell(t *testing.T, seed uint64, threads int) ledgerRun {
	t.Helper()
	run, _ := runLedgerCellShards(t, seed, threads, 1)
	return run
}

// runLedgerCellShards is runLedgerCell with an explicit kernel shard
// count; it additionally reports the shard count the machine certified.
func runLedgerCellShards(t *testing.T, seed uint64, threads, shards int) (ledgerRun, int) {
	t.Helper()
	cfg := machine.DefaultConfig(threads)
	cfg.Seed = seed
	cfg.Shards = shards
	rec := telemetry.NewRecorder()
	sp := rec.EnableSpans()
	ld := rec.EnableLedger()
	var m *machine.Machine
	r := ThroughputOpts(cfg, threads, 20_000, 100_000,
		CounterWorkload(CounterLeasedTTS),
		Options{Recorder: rec,
			Hooks: []func(*machine.Machine){func(mm *machine.Machine) { m = mm }}})
	if r.Err != nil {
		t.Fatalf("seed %d shards %d run failed: %v", seed, shards, r.Err)
	}
	eff, _ := m.EffectiveShards()
	return ledgerRun{
		result: r,
		lines:  ld.Lines(),
		totals: ld.Totals(),
		defer_: sp.Stats().Phase[telemetry.PhaseDefer],
	}, eff
}

// The ledger's two conservation identities on real leased-counter runs,
// exact per seed: every line's granted cycles partition into used plus
// unused, and the total deferral the ledger charges to lines equals the
// span assembler's probe-defer phase total (same windowing, same
// completed-transactions-only fold).
func TestLedgerConservationRealRuns(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		run := runLedgerCell(t, seed, 8)
		if run.totals.Leases == 0 {
			t.Fatalf("seed %d: no leases closed on a leased contended counter", seed)
		}
		for _, s := range run.lines {
			if s.GrantedCycles != s.UsedCycles+s.UnusedCycles {
				t.Errorf("seed %d line %#x: granted %d != used %d + unused %d",
					seed, uint64(s.Line), s.GrantedCycles, s.UsedCycles, s.UnusedCycles)
			}
		}
		if run.totals.DeferInflictedCycles != run.defer_ {
			t.Errorf("seed %d: ledger defer-inflicted %d != span probe-defer phase %d",
				seed, run.totals.DeferInflictedCycles, run.defer_)
		}
		if run.result.LeaseLedger == nil {
			t.Fatalf("seed %d: Result.LeaseLedger not populated", seed)
		}
		if got := run.result.LeaseLedger.LedgerTotals; got != run.totals {
			t.Errorf("seed %d: summary totals %+v != ledger totals %+v", seed, got, run.totals)
		}
	}
}

// The ledger composes with the sharded kernel: at every shard count the
// conservation identity holds exactly per line (granted == used + unused,
// per seed), the ledger agrees with the span assembler's probe-defer
// phase, and the whole per-line ledger is identical to the sequential
// run's — the buffered bus merges lease and transaction events in
// canonical order, so the fold is order-for-order the same.
func TestLedgerConservationAcrossShards(t *testing.T) {
	const threads = 8
	for _, seed := range []uint64{1, 2} {
		base, eff := runLedgerCellShards(t, seed, threads, 1)
		if eff != 1 {
			t.Fatalf("seed %d: shards=1 ran with %d effective shards", seed, eff)
		}
		if base.totals.Leases == 0 {
			t.Fatalf("seed %d: no leases closed on a leased contended counter", seed)
		}
		for _, shards := range []int{2, 4} {
			run, eff := runLedgerCellShards(t, seed, threads, shards)
			if eff < 2 {
				t.Fatalf("seed %d shards=%d: run did not certify (eff=%d)", seed, shards, eff)
			}
			for _, s := range run.lines {
				if s.GrantedCycles != s.UsedCycles+s.UnusedCycles {
					t.Errorf("seed %d shards=%d line %#x: granted %d != used %d + unused %d",
						seed, shards, uint64(s.Line), s.GrantedCycles, s.UsedCycles, s.UnusedCycles)
				}
			}
			if run.totals.DeferInflictedCycles != run.defer_ {
				t.Errorf("seed %d shards=%d: ledger defer-inflicted %d != span probe-defer phase %d",
					seed, shards, run.totals.DeferInflictedCycles, run.defer_)
			}
			if !reflect.DeepEqual(base.lines, run.lines) {
				t.Errorf("seed %d shards=%d: per-line ledger differs from sequential run", seed, shards)
			}
			if base.totals != run.totals {
				t.Errorf("seed %d shards=%d: ledger totals differ: %+v vs %+v",
					seed, shards, base.totals, run.totals)
			}
		}
	}
}

// The ledger is part of the determinism contract: a sweep of cells
// produces identical per-line ledgers for every -parallel worker count.
func TestLedgerIdenticalAcrossPoolSizes(t *testing.T) {
	sweep := func(workers int) []ledgerRun {
		pool := NewPool(workers)
		defer pool.Close()
		seeds := []uint64{1, 2, 3, 4}
		futures := make([]*Future[ledgerRun], len(seeds))
		for i, seed := range seeds {
			seed := seed
			futures[i] = Go(pool, func() ledgerRun {
				return runLedgerCell(t, seed, 4)
			})
		}
		out := make([]ledgerRun, len(futures))
		for i, f := range futures {
			out[i] = f.Get()
		}
		return out
	}

	serial := sweep(1)
	parallel := sweep(4)
	for i := range serial {
		if len(serial[i].lines) == 0 {
			t.Fatalf("cell %d recorded no ledger lines", i)
		}
		if !reflect.DeepEqual(serial[i].lines, parallel[i].lines) {
			t.Fatalf("cell %d per-line ledgers differ between -parallel 1 and 4:\n%+v\n%+v",
				i, serial[i].lines, parallel[i].lines)
		}
		if !reflect.DeepEqual(serial[i].result.LeaseLedger, parallel[i].result.LeaseLedger) {
			t.Fatalf("cell %d ledger summaries differ between -parallel 1 and 4", i)
		}
	}
}

// The ledger must not perturb the simulation: the measured window is
// identical with the ledger on and off, and a run without the ledger
// reports no LeaseLedger.
func TestLedgerDoesNotPerturbSimulation(t *testing.T) {
	run := func(ledger bool) Result {
		cfg := machine.DefaultConfig(8)
		cfg.Seed = 3
		rec := telemetry.NewRecorder()
		if ledger {
			rec.EnableLedger()
		}
		return ThroughputOpts(cfg, 8, 20_000, 100_000,
			CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
	}
	plain := run(false)
	ledgered := run(true)

	if plain.Ops != ledgered.Ops {
		t.Errorf("ops changed with ledger: %d vs %d", plain.Ops, ledgered.Ops)
	}
	if plain.Window != ledgered.Window {
		t.Errorf("window stats changed with ledger:\n%+v\n%+v", plain.Window, ledgered.Window)
	}
	if !reflect.DeepEqual(plain.OpLatency, ledgered.OpLatency) {
		t.Errorf("op-latency histogram changed with ledger:\n%+v\n%+v",
			plain.OpLatency, ledgered.OpLatency)
	}
	if ledgered.LeaseLedger == nil || ledgered.LeaseLedger.Leases == 0 {
		t.Error("ledgered run produced no lease accounting")
	}
	if plain.LeaseLedger != nil {
		t.Error("plain run produced lease accounting")
	}
}
