package bench

import (
	"bytes"
	"strings"
	"testing"

	"leaserelease/internal/ds"
	"leaserelease/internal/machine"
)

func TestThroughputBasics(t *testing.T) {
	r := Throughput(machine.DefaultConfig(4), 4, 20_000, 100_000, StackWorkload(ds.StackOptions{Lease: LeaseTime}))
	if r.Ops == 0 {
		t.Fatal("no ops measured")
	}
	if r.Cycles != 100_000 {
		t.Fatalf("window = %d cycles, want 100000", r.Cycles)
	}
	if r.MopsPerSec <= 0 || r.NJPerOp <= 0 || r.MsgsPerOp <= 0 {
		t.Fatalf("bad derived metrics: %+v", r)
	}
}

func TestThroughputDeterministic(t *testing.T) {
	run := func() Result {
		return Throughput(machine.DefaultConfig(4), 4, 20_000, 100_000, QueueWorkload(ds.QueueSingleLease))
	}
	a, b := run(), run()
	if a.Ops != b.Ops || a.Window.TotalMsgs() != b.Window.TotalMsgs() {
		t.Fatalf("nondeterministic benchmark: %v vs %v ops", a.Ops, b.Ops)
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs every experiment at quick scale")
	}
	p := Params{Threads: []int{2, 4}, Warm: 20_000, Window: 60_000}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, p)
			out := buf.String()
			if !strings.Contains(out, "---") {
				t.Fatalf("experiment %s produced no table:\n%s", e.ID, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Fatalf("experiment %s produced NaN/Inf:\n%s", e.ID, out)
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("fig2"); !ok {
		t.Fatal("fig2 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus id found")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTable("a", "bee")
	tb.Row(1, 2.5)
	tb.Row("long-cell", 3)
	tb.Print(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "bee") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "2.500") {
		t.Fatalf("float formatting wrong: %q", lines[2])
	}
}

// TestFig2Shape verifies the headline result's direction at bench scale:
// leases must win clearly under contention (8 threads) and not lose
// meaningfully without it (1 thread).
func TestFig2Shape(t *testing.T) {
	warm, window := uint64(50_000), uint64(300_000)
	base8 := Throughput(machine.DefaultConfig(8), 8, warm, window, StackWorkload(ds.StackOptions{}))
	lease8 := Throughput(machine.DefaultConfig(8), 8, warm, window, StackWorkload(ds.StackOptions{Lease: LeaseTime}))
	if lease8.MopsPerSec < 1.2*base8.MopsPerSec {
		t.Fatalf("8-thread lease %.2f vs base %.2f: expected a clear win",
			lease8.MopsPerSec, base8.MopsPerSec)
	}
	base1 := Throughput(machine.DefaultConfig(1), 1, warm, window, StackWorkload(ds.StackOptions{}))
	lease1 := Throughput(machine.DefaultConfig(1), 1, warm, window, StackWorkload(ds.StackOptions{Lease: LeaseTime}))
	if lease1.MopsPerSec < 0.8*base1.MopsPerSec {
		t.Fatalf("1-thread lease %.2f vs base %.2f: uncontended overhead too high",
			lease1.MopsPerSec, base1.MopsPerSec)
	}
}
