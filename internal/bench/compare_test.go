package bench

import (
	"bytes"
	"strings"
	"testing"

	"leaserelease/internal/telemetry"
)

func compareRep(ds string, threads int, lease bool, ops uint64, mops float64,
	p50, p99 uint64, msgs float64) Report {
	return Report{
		DS: ds, Threads: threads, Lease: lease,
		Ops: ops, MopsPerSec: mops, MsgsPerOp: msgs,
		OpLatency: &telemetry.Summary{Count: ops, P50: p50, P99: p99},
	}
}

// readReports accepts both shapes `leasesim -json` can produce: the
// concatenated object stream of a sweep, and a JSON array.
func TestReadReportsBothShapes(t *testing.T) {
	stream := []byte(`{"ds":"counter","threads":2,"ops":10}
{"ds":"counter","threads":4,"ops":20}`)
	reps, err := readReports(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Threads != 2 || reps[1].Ops != 20 {
		t.Fatalf("stream decoded to %+v", reps)
	}

	arr := []byte(`[{"ds":"stack","threads":8,"ops":5}]`)
	reps, err = readReports(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].DS != "stack" {
		t.Fatalf("array decoded to %+v", reps)
	}

	if _, err := readReports([]byte(`not json`)); err == nil {
		t.Error("garbage input decoded without error")
	}
}

// CompareReports matches rows on (ds, threads, lease), renders the delta
// table, and counts metric changes that regress beyond the threshold.
func TestCompareReportsRegressions(t *testing.T) {
	old := []Report{
		compareRep("counter", 4, true, 1000, 10.0, 100, 500, 8.0),
		compareRep("counter", 8, true, 900, 9.0, 120, 600, 9.0),
		compareRep("stack", 4, false, 500, 5.0, 200, 900, 12.0),
	}
	cur := []Report{
		// ops -20% and p99 +40%: two regressions beyond 5%.
		compareRep("counter", 4, true, 800, 10.1, 101, 700, 8.1),
		// All within threshold.
		compareRep("counter", 8, true, 910, 9.1, 118, 590, 9.05),
		// New config (no baseline).
		compareRep("queue", 4, true, 300, 3.0, 150, 400, 6.0),
	}

	var buf bytes.Buffer
	got, compared := CompareReports(&buf, old, cur, 5)
	out := buf.String()

	if got != 2 {
		t.Errorf("regressions = %d, want 2\n%s", got, out)
	}
	if compared != 2 {
		t.Errorf("compared = %d, want 2\n%s", compared, out)
	}
	for _, want := range []string{
		"counter/t4/lease", "counter/t8/lease",
		"queue/t4/lease", "(new)",
		"stack/t4/nolease", "(dropped)",
		"-20.0% !", "+40.0% !",
		"2 configs compared, 2 regressions beyond 5.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}

	// Threshold 0 disables highlighting entirely.
	buf.Reset()
	if got, _ := CompareReports(&buf, old, cur, 0); got != 0 {
		t.Errorf("threshold 0 still reported %d regressions", got)
	}
	if strings.Contains(buf.String(), "!") {
		t.Errorf("threshold 0 still marked regressions:\n%s", buf.String())
	}
}
