package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"leaserelease/internal/coherence"
	"leaserelease/internal/faults"
	"leaserelease/internal/machine"
	"leaserelease/internal/sim"
	"leaserelease/internal/telemetry"
)

// These tests pin the sharded kernel's hard invariant: for a given config
// and seed, measured output is byte-identical at every shard count. The
// MSI cells must actually certify for parallel execution (the assertion on
// EffectiveShards keeps the comparison non-vacuous) — including
// telemetry-enabled cells, whose bus buffers emissions per shard and
// merges them in canonical order at window barriers. Everything the
// certification excludes — Tardis, fault injection, synchronous
// subscribers like the invariant checker — must degrade to serial with a
// stated reason and still produce identical output.

// shardRun runs the contended-counter workload at the given shard count
// and reports the result plus the shard count the machine actually used.
func shardRun(proto string, shards, threads int, warm, window uint64) (Result, int, string) {
	cfg := machine.DefaultConfig(threads)
	cfg.Protocol = proto
	cfg.Shards = shards
	var m *machine.Machine
	r := Throughput(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS),
		func(mm *machine.Machine) { m = mm })
	eff, reason := m.EffectiveShards()
	return r, eff, reason
}

func TestShardsByteIdenticalResults(t *testing.T) {
	const threads, warm, window = 8, 20_000, 60_000
	for _, proto := range []string{coherence.ProtocolMSI, coherence.ProtocolTardis} {
		t.Run(proto, func(t *testing.T) {
			base, eff, reason := shardRun(proto, 1, threads, warm, window)
			if base.Err != nil {
				t.Fatalf("baseline run failed: %v", base.Err)
			}
			if eff != 1 {
				t.Fatalf("shards=1 ran with %d effective shards", eff)
			}
			_ = reason
			for _, k := range []int{2, 4} {
				r, eff, reason := shardRun(proto, k, threads, warm, window)
				if r.Err != nil {
					t.Fatalf("shards=%d run failed: %v", k, r.Err)
				}
				switch proto {
				case coherence.ProtocolMSI:
					// Non-vacuous: MSI with no telemetry and no faults
					// must certify and actually run multi-shard.
					if eff < 2 {
						t.Fatalf("shards=%d: MSI run did not certify (eff=%d, reason=%q)",
							k, eff, reason)
					}
				case coherence.ProtocolTardis:
					if eff != 1 || !strings.Contains(reason, "not shard-certified") {
						t.Fatalf("shards=%d: Tardis must degrade to serial, got eff=%d reason=%q",
							k, eff, reason)
					}
				}
				if !reflect.DeepEqual(base, r) {
					t.Fatalf("shards=%d result differs from serial baseline:\nserial: %+v\nsharded: %+v",
						k, base, r)
				}
			}
		})
	}
}

// TestShardsComposeWithParallel exercises the two axes together: host
// workers across cells (Pool) and shards within each cell. Every pooled
// sharded cell must match its serial unsharded twin byte for byte.
func TestShardsComposeWithParallel(t *testing.T) {
	const threads, warm, window = 8, 20_000, 60_000
	seeds := []uint64{1, 2, 3, 4}

	serial := make([]Result, len(seeds))
	for i, seed := range seeds {
		cfg := machine.DefaultConfig(threads)
		cfg.Seed = seed
		serial[i] = Throughput(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS))
	}

	pool := NewPool(4)
	defer pool.Close()
	futs := make([]*Future[Result], len(seeds))
	effs := make([]int, len(seeds))
	for i, seed := range seeds {
		i, seed := i, seed
		futs[i] = Go(pool, func() Result {
			cfg := machine.DefaultConfig(threads)
			cfg.Seed = seed
			cfg.Shards = 4
			var m *machine.Machine
			r := Throughput(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS),
				func(mm *machine.Machine) { m = mm })
			effs[i], _ = m.EffectiveShards()
			return r
		})
	}
	for i := range seeds {
		got := futs[i].Get()
		if got.Err != nil {
			t.Fatalf("cell %d failed: %v", i, got.Err)
		}
		if effs[i] < 2 {
			t.Fatalf("cell %d did not certify for sharding (eff=%d)", i, effs[i])
		}
		if !reflect.DeepEqual(serial[i], got) {
			t.Fatalf("cell %d: pooled sharded result differs from serial baseline", i)
		}
	}
}

// TestShardsTelemetryByteIdentical is the tentpole assertion of the
// buffered bus: a fully instrumented run (Recorder + spans + ledger)
// certifies for parallel execution, and every derived digest — latency
// histograms, span accounting, lease ledger — is identical to the serial
// run's, because buffered emissions merge in canonical event order at
// window barriers.
func TestShardsTelemetryByteIdentical(t *testing.T) {
	const threads, warm, window = 8, 20_000, 60_000
	run := func(shards int) (Result, int, string) {
		cfg := machine.DefaultConfig(threads)
		cfg.Shards = shards
		rec := telemetry.NewRecorder()
		rec.EnableSpans()
		rec.EnableLedger()
		var m *machine.Machine
		r := ThroughputOpts(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS),
			Options{Recorder: rec, Hooks: []func(*machine.Machine){func(mm *machine.Machine) { m = mm }}})
		eff, reason := m.EffectiveShards()
		return r, eff, reason
	}
	base, eff, _ := run(1)
	if base.Err != nil {
		t.Fatalf("baseline run failed: %v", base.Err)
	}
	if eff != 1 {
		t.Fatalf("shards=1 ran with %d effective shards", eff)
	}
	if base.OpLatency == nil || base.Txns == nil || base.LeaseLedger == nil {
		t.Fatal("measured run lost its telemetry digests")
	}
	for _, k := range []int{2, 4} {
		sharded, eff, reason := run(k)
		if sharded.Err != nil {
			t.Fatalf("shards=%d run failed: %v", k, sharded.Err)
		}
		if eff < 2 {
			t.Fatalf("shards=%d: telemetry-enabled MSI run did not certify (eff=%d, reason=%q)",
				k, eff, reason)
		}
		if !reflect.DeepEqual(base, sharded) {
			t.Fatalf("shards=%d: telemetry-enabled result differs from serial baseline:\nserial:  %+v\nsharded: %+v",
				k, base, sharded)
		}
	}
}

// TestShardsInvariantsDegradeToSerial pins the one telemetry subscriber
// that still serializes a run: the invariant checker reads live machine
// state in its handlers, so it requires synchronous delivery and the
// certification degrades with the documented reason — producing identical
// results anyway.
func TestShardsInvariantsDegradeToSerial(t *testing.T) {
	const threads, warm, window = 8, 20_000, 60_000
	run := func(shards int) (Result, int, string) {
		cfg := machine.DefaultConfig(threads)
		cfg.Shards = shards
		var m *machine.Machine
		r := ThroughputOpts(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS),
			Options{Invariants: true,
				Hooks: []func(*machine.Machine){func(mm *machine.Machine) { m = mm }}})
		eff, reason := m.EffectiveShards()
		return r, eff, reason
	}
	base, _, _ := run(1)
	if base.Err != nil {
		t.Fatalf("serial run failed: %v", base.Err)
	}
	sharded, eff, reason := run(4)
	if eff != 1 || reason != "synchronous telemetry subscriber attached" {
		t.Fatalf("invariant-checked run must serialize: eff=%d reason=%q", eff, reason)
	}
	if !reflect.DeepEqual(base, sharded) {
		t.Fatal("invariant-checked result changed when Shards was set")
	}
}

// TestShardsEngineStats checks the engine's self-observability snapshot of
// a sharded run: present exactly when the run sharded, internally
// consistent (per-shard events sum to the total, utilizations within
// [0,1], occupancy positive), and deterministic across reruns.
func TestShardsEngineStats(t *testing.T) {
	const threads, warm, window = 8, 20_000, 60_000
	run := func(shards int) *sim.EngineStats {
		cfg := machine.DefaultConfig(threads)
		cfg.Shards = shards
		var m *machine.Machine
		r := Throughput(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS),
			func(mm *machine.Machine) { m = mm })
		if r.Err != nil {
			t.Fatalf("shards=%d run failed: %v", shards, r.Err)
		}
		return m.ShardStats()
	}
	if st := run(1); st != nil {
		t.Fatalf("sequential run must have no shard stats, got %+v", st)
	}
	st := run(4)
	if st == nil {
		t.Fatal("sharded run reported no shard stats")
	}
	if st.Shards < 2 || st.Windows == 0 || st.Barriers == 0 || st.EventsTotal == 0 {
		t.Fatalf("implausible shard stats: %+v", st)
	}
	if len(st.PerShard) != st.Shards {
		t.Fatalf("per-shard rows %d != shards %d", len(st.PerShard), st.Shards)
	}
	var sum uint64
	for i, sh := range st.PerShard {
		sum += sh.Events
		if sh.Utilization < 0 || sh.Utilization > 1 {
			t.Fatalf("shard %d utilization %v out of [0,1]", i, sh.Utilization)
		}
		if sh.ActiveWindows > st.Windows {
			t.Fatalf("shard %d active windows %d > windows %d", i, sh.ActiveWindows, st.Windows)
		}
	}
	if sum != st.EventsTotal {
		t.Fatalf("per-shard events sum %d != total %d", sum, st.EventsTotal)
	}
	if st.LookaheadOccupancy <= 0 || st.WindowCycles == 0 {
		t.Fatalf("empty window accounting: %+v", st)
	}
	if st.ImbalanceRatio < 1 {
		t.Fatalf("imbalance ratio %v < 1 (max/mean cannot be)", st.ImbalanceRatio)
	}
	if again := run(4); !reflect.DeepEqual(st, again) {
		t.Fatalf("shard stats not deterministic across reruns:\nfirst:  %+v\nsecond: %+v", st, again)
	}
}

// TestShardsSweepTablesByteIdentical renders a real experiment table —
// fig3-counter spans several lock variants (tts/ticket/clh/lease), all
// shard-certified under MSI — across shards × pool sizes × protocols and
// requires the emitted bytes never change.
func TestShardsSweepTablesByteIdentical(t *testing.T) {
	base := Params{Threads: []int{2, 8}, Warm: 20_000, Window: 60_000}
	e, ok := Find("fig3-counter")
	if !ok {
		t.Fatal("fig3-counter not found")
	}
	for _, proto := range []string{"", coherence.ProtocolTardis} {
		p := base
		p.Protocol = proto
		var serial bytes.Buffer
		e.Run(&serial, p)
		if serial.Len() == 0 {
			t.Fatalf("proto %q: experiment produced no output", proto)
		}
		for _, shards := range []int{2, 4} {
			for _, workers := range []int{1, 4} {
				q := p
				q.Shards = shards
				q.Pool = NewPool(workers)
				var got bytes.Buffer
				e.Run(&got, q)
				q.Pool.Close()
				if !bytes.Equal(serial.Bytes(), got.Bytes()) {
					t.Errorf("proto %q shards=%d workers=%d: table differs from serial:\n%s",
						proto, shards, workers, got.String())
				}
			}
		}
	}
}

// TestShardsChaosSoakDegradation is the sharded chaos-soak: fault
// injection (preemption storms) is outside the parallel certificate, so a
// sharded soak must degrade to serial with the documented reason and
// reproduce the serial degradation profile exactly — same fault schedule,
// same preempted-cycle accounting, same throughput.
func TestShardsChaosSoakDegradation(t *testing.T) {
	const threads, warm, window = 8, 20_000, 120_000
	run := func(shards int) (Result, int, string) {
		cfg := machine.DefaultConfig(threads)
		cfg.Shards = shards
		cfg.Faults = faults.Config{Enabled: true, PreemptPermille: 10,
			PreemptMin: 5_000, PreemptMax: 40_000}
		var m *machine.Machine
		r := Throughput(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS),
			func(mm *machine.Machine) { m = mm })
		eff, reason := m.EffectiveShards()
		return r, eff, reason
	}
	base, _, _ := run(1)
	if base.Err != nil {
		t.Fatalf("serial soak failed: %v", base.Err)
	}
	if base.Faults.Preemptions == 0 {
		t.Fatal("soak delivered no preemptions; raise the window or rate")
	}
	sharded, eff, reason := run(4)
	if eff != 1 || reason != "fault injection enabled" {
		t.Fatalf("faulted run must serialize: eff=%d reason=%q", eff, reason)
	}
	if !reflect.DeepEqual(base, sharded) {
		t.Fatal("sharded chaos-soak profile differs from serial")
	}
}
