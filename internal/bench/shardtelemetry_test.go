package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"leaserelease/internal/coherence"
	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

// This file pins the buffered bus end to end: every *derived* telemetry
// artifact — the Chrome-trace timeline, the hot-line ranking, the span
// cycle accounting, and the lease-ledger report — must be byte-identical
// across shard counts and host worker pools. The shards=1 run is the
// golden within each comparison: the sequential kernel's artifact defines
// the expected bytes, and every sharded/pooled rerun must reproduce them
// exactly. Any reordering, duplication, or loss in the barrier merge shows
// up as a byte diff in at least one artifact.

// cellArtifacts is one run's derived telemetry, serialized for byte
// comparison.
type cellArtifacts struct {
	timeline []byte // Chrome trace-event export (rec.Timeline.Write)
	hotlines []byte // ranked hot-line table (HotLineRows) as JSON
	txns     []byte // span cycle accounting (Result.Txns) as JSON
	ledger   []byte // joined ledger report (BuildLedgerReport) as JSON
	eff      int
	reason   string
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// telemetryArtifacts runs one fully instrumented cell (timeline + spans +
// ledger) and serializes its derived telemetry.
func telemetryArtifacts(t *testing.T, proto string, shards, threads int, seed uint64,
	warm, window uint64) cellArtifacts {
	t.Helper()
	cfg := machine.DefaultConfig(threads)
	cfg.Protocol = proto
	cfg.Shards = shards
	cfg.Seed = seed
	rec := telemetry.NewRecorder()
	rec.EnableTimeline(float64(cfg.ClockHz) / 1e6)
	rec.EnableSpans()
	rec.EnableLedger()
	var m *machine.Machine
	r := ThroughputOpts(cfg, threads, warm, window, CounterWorkload(CounterLeasedTTS),
		Options{Recorder: rec,
			Hooks: []func(*machine.Machine){func(mm *machine.Machine) { m = mm }}})
	if r.Err != nil {
		t.Fatalf("proto=%s shards=%d seed=%d run failed: %v", proto, shards, seed, r.Err)
	}
	var tl bytes.Buffer
	if err := rec.Timeline.Write(&tl); err != nil {
		t.Fatalf("timeline write: %v", err)
	}
	a := cellArtifacts{
		timeline: tl.Bytes(),
		hotlines: mustJSON(t, HotLineRows(rec, 10)),
		txns:     mustJSON(t, r.Txns),
		ledger:   mustJSON(t, BuildLedgerReport(r.LeaseLedger, rec)),
	}
	a.eff, a.reason = m.EffectiveShards()
	return a
}

func diffArtifacts(t *testing.T, label string, want, got cellArtifacts) {
	t.Helper()
	for _, c := range []struct {
		name      string
		want, got []byte
	}{
		{"timeline", want.timeline, got.timeline},
		{"hotlines", want.hotlines, got.hotlines},
		{"txn_accounting", want.txns, got.txns},
		{"ledger", want.ledger, got.ledger},
	} {
		if !bytes.Equal(c.want, c.got) {
			t.Errorf("%s: %s differs from the sequential golden (%d vs %d bytes)",
				label, c.name, len(c.want), len(c.got))
		}
	}
}

// TestShardsDerivedTelemetryByteIdentical sweeps shards 1/2/4 for both
// protocols: MSI must actually shard (non-vacuous), Tardis must degrade —
// and both must reproduce the sequential artifacts byte for byte.
func TestShardsDerivedTelemetryByteIdentical(t *testing.T) {
	const threads, warm, window = 8, 20_000, 60_000
	for _, proto := range []string{coherence.ProtocolMSI, coherence.ProtocolTardis} {
		t.Run(proto, func(t *testing.T) {
			golden := telemetryArtifacts(t, proto, 1, threads, 1, warm, window)
			if len(golden.timeline) == 0 || len(golden.txns) == 0 || len(golden.ledger) == 0 {
				t.Fatal("sequential golden produced empty artifacts")
			}
			for _, shards := range []int{2, 4} {
				got := telemetryArtifacts(t, proto, shards, threads, 1, warm, window)
				if proto == coherence.ProtocolMSI && got.eff < 2 {
					t.Fatalf("shards=%d: MSI telemetry run did not certify (eff=%d, reason=%q)",
						shards, got.eff, got.reason)
				}
				if proto == coherence.ProtocolTardis && got.eff != 1 {
					t.Fatalf("shards=%d: Tardis must degrade to serial, got eff=%d", shards, got.eff)
				}
				diffArtifacts(t, fmt.Sprintf("proto=%s shards=%d", proto, shards), golden, got)
			}
		})
	}
}

// TestShardsDerivedTelemetryComposeWithPool crosses the two parallelism
// axes: four instrumented cells (distinct seeds) run concurrently on a
// 4-worker pool with shards=4 inside each, and every cell's artifacts
// must match its sequential unsharded twin.
func TestShardsDerivedTelemetryComposeWithPool(t *testing.T) {
	const threads, warm, window = 8, 20_000, 60_000
	seeds := []uint64{1, 2, 3, 4}

	goldens := make([]cellArtifacts, len(seeds))
	for i, seed := range seeds {
		goldens[i] = telemetryArtifacts(t, coherence.ProtocolMSI, 1, threads, seed, warm, window)
	}

	pool := NewPool(4)
	defer pool.Close()
	futs := make([]*Future[cellArtifacts], len(seeds))
	for i, seed := range seeds {
		seed := seed
		futs[i] = Go(pool, func() cellArtifacts {
			return telemetryArtifacts(t, coherence.ProtocolMSI, 4, threads, seed, warm, window)
		})
	}
	for i := range seeds {
		got := futs[i].Get()
		if got.eff < 2 {
			t.Fatalf("seed %d: pooled cell did not certify (eff=%d, reason=%q)",
				seeds[i], got.eff, got.reason)
		}
		diffArtifacts(t, fmt.Sprintf("seed=%d pooled shards=4", seeds[i]), goldens[i], got)
	}
}
