package bench

import (
	"testing"

	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

// The hot-line profiler's ranking (and its per-line deferred-probe cycle
// accounting) is pinned on a seeded contended-counter run: the TTS flag
// line outranks the counter line, and the counter line — the only leased
// one — carries all deferrals and deferred cycles. Exact counts are part
// of the determinism contract; an intentional timing change must update
// them deliberately.
func TestHotLineRankingPinnedOnSeededRun(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.Seed = 1
	rec := telemetry.NewRecorder()
	r := ThroughputOpts(cfg, 4, 20_000, 100_000,
		CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
	if r.Err != nil {
		t.Fatalf("run failed: %v", r.Err)
	}

	top := rec.Lines.Top(5)
	if len(top) != 2 {
		t.Fatalf("ranked %d lines, want 2 (flag + counter)", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Score() < top[i].Score() {
			t.Fatalf("ranking not score-descending: %d before %d",
				top[i-1].Score(), top[i].Score())
		}
	}

	flag, counter := top[0], top[1]
	if uint64(flag.Line) != 0x1 || uint64(counter.Line) != 0x2 {
		t.Fatalf("ranking order = [%#x %#x], want [0x1 0x2]",
			uint64(flag.Line), uint64(counter.Line))
	}
	if flag.Score() != 8434 || counter.Score() != 5066 {
		t.Errorf("scores = [%d %d], want [8434 5066]", flag.Score(), counter.Score())
	}
	if flag.Deferred != 0 || flag.DeferredCycles != 0 {
		t.Errorf("unleased flag line has deferrals: %d probes, %d cycles",
			flag.Deferred, flag.DeferredCycles)
	}
	if counter.Deferred != 844 || counter.DeferredCycles != 90249 {
		t.Errorf("counter line deferrals = %d probes, %d cycles; want 844, 90249",
			counter.Deferred, counter.DeferredCycles)
	}
	if counter.DeferredCycles < counter.Deferred {
		t.Error("deferred cycles below one cycle per deferred probe")
	}
}
