package bench

import (
	"fmt"

	"leaserelease/internal/machine"
)

// RunError is the typed failure of one benchmark run. Every way a
// simulation can die — deadlock, livelock (engine watchdog), an escaping
// panic, a protocol violation, a blown cycle budget, or invariant-checker
// violations — is converted into a RunError carrying a structured machine
// state dump, so a failed cell in a sweep is debuggable and the rest of
// the sweep still completes.
type RunError struct {
	Threads int                `json:"threads"`
	Cycle   uint64             `json:"cycle"`
	Reason  string             `json:"reason"` // short classification: deadlock, panic, budget, invariant, ...
	Cause   error              `json:"-"`
	Detail  string             `json:"detail"` // Cause.Error(), stable for JSON
	Dump    *machine.StateDump `json:"dump,omitempty"`
}

func (e *RunError) Error() string {
	return fmt.Sprintf("bench: run with %d threads failed at cycle %d (%s): %s",
		e.Threads, e.Cycle, e.Reason, e.Detail)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Cause }
