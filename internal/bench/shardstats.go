package bench

import (
	"sync"

	"leaserelease/internal/sim"
)

// The harness keeps one process-wide sample of the parallel executor's
// self-observability counters (sim.EngineStats): the most recent run that
// actually executed on the windowed parallel kernel deposits its snapshot
// here. Hosts that aggregate many cells (leasebench -perfjson, the
// perf-smoke CI artifact) read it back with ShardSample after a sweep —
// per-cell Results deliberately do not carry engine stats, because Result
// equality across shard counts is itself a correctness assertion.
var (
	shardSampleMu sync.Mutex
	shardSample   *sim.EngineStats
)

// recordShardSample stores st as the process-wide sample (last writer
// wins; sweeps running cells in parallel race benignly). Nil is ignored.
func recordShardSample(st *sim.EngineStats) {
	if st == nil {
		return
	}
	shardSampleMu.Lock()
	shardSample = st
	shardSampleMu.Unlock()
}

// ShardSample returns the engine self-observability snapshot of the most
// recent benchmark run that executed on the parallel kernel, or nil if no
// run has (all cells sequential, or none finished yet).
func ShardSample() *sim.EngineStats {
	shardSampleMu.Lock()
	defer shardSampleMu.Unlock()
	return shardSample
}
