package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"leaserelease/internal/ds"
	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

func telemetryRun(t *testing.T, seed uint64) (Result, *telemetry.Recorder, []byte) {
	t.Helper()
	cfg := machine.DefaultConfig(8)
	cfg.Seed = seed
	rec := telemetry.NewRecorder()
	rec.EnableTimeline(float64(cfg.ClockHz) / 1e6)
	r := ThroughputOpts(cfg, 8, 20_000, 80_000,
		StackWorkload(ds.StackOptions{Lease: 20_000}),
		Options{Recorder: rec, Samples: 4})
	var buf bytes.Buffer
	if err := rec.Timeline.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return r, rec, buf.Bytes()
}

// Telemetry output is part of the experiment's reproducibility contract:
// two runs with the same seed must produce identical histograms, identical
// hot-line rankings, an identical time series, and a byte-for-byte
// identical timeline file.
func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	r1, rec1, tl1 := telemetryRun(t, 7)
	r2, rec2, tl2 := telemetryRun(t, 7)

	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("Result differs between same-seed runs:\n%+v\n%+v", r1, r2)
	}
	if rec1.OpLatency != rec2.OpLatency || rec1.LeaseHold != rec2.LeaseHold ||
		rec1.ProbeDefer != rec2.ProbeDefer || rec1.DirQueue != rec2.DirQueue {
		t.Error("raw histograms differ between same-seed runs")
	}
	top1, top2 := rec1.Lines.Top(8), rec2.Lines.Top(8)
	if !reflect.DeepEqual(top1, top2) {
		t.Errorf("hot-line ranking differs:\n%v\n%v", top1, top2)
	}
	if !bytes.Equal(tl1, tl2) {
		t.Error("timeline JSON differs between same-seed runs")
	}
	if r1.OpLatency == nil || r1.OpLatency.Count == 0 {
		t.Error("op-latency histogram empty; wrapper not observing")
	}
	if r1.LeaseHold == nil || r1.LeaseHold.Count == 0 {
		t.Error("lease-hold histogram empty on a leased stack run")
	}
	if len(r1.Series) != 4 {
		t.Errorf("series has %d samples, want 4", len(r1.Series))
	}
	if len(top1) == 0 || top1[0].Score() == 0 {
		t.Error("hot-line profile empty on a contended run")
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(tl1, &parsed); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Error("timeline has no trace events")
	}
}

// A different seed must actually change the measurement — otherwise the
// determinism test above is vacuous.
func TestTelemetrySeedSensitivity(t *testing.T) {
	r1, _, _ := telemetryRun(t, 7)
	r2, _, _ := telemetryRun(t, 8)
	if r1.Ops == r2.Ops && reflect.DeepEqual(r1.OpLatency, r2.OpLatency) {
		t.Error("seeds 7 and 8 produced identical ops and latency histogram")
	}
}

// Attaching telemetry must not perturb the simulation: the measured window
// (ops, every hardware counter, fairness) is identical with and without a
// Recorder, and with and without time-series sampling.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	run := func(o Options) Result {
		cfg := machine.DefaultConfig(8)
		cfg.Seed = 3
		return ThroughputOpts(cfg, 8, 20_000, 80_000,
			StackWorkload(ds.StackOptions{Lease: 20_000}), o)
	}
	plain := run(Options{})
	rec := telemetry.NewRecorder()
	rec.EnableTimeline(1000)
	traced := run(Options{Recorder: rec, Samples: 5})

	if plain.Ops != traced.Ops {
		t.Errorf("ops changed with telemetry: %d vs %d", plain.Ops, traced.Ops)
	}
	if plain.Window != traced.Window {
		t.Errorf("window stats changed with telemetry:\n%+v\n%+v", plain.Window, traced.Window)
	}
	if plain.Fairness != traced.Fairness {
		t.Errorf("fairness changed with telemetry: %v vs %v", plain.Fairness, traced.Fairness)
	}
}

// The JSON report must round-trip and carry the documented fields.
func TestBuildReportJSON(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.Seed = 5
	rec := telemetry.NewRecorder()
	r := ThroughputOpts(cfg, 4, 10_000, 40_000,
		StackWorkload(ds.StackOptions{Lease: 20_000}),
		Options{Recorder: rec})
	rep := BuildReport("stack", 4, true, cfg, 10_000, 40_000, r, rec, 5)

	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"ds", "threads", "lease", "seed", "ops", "mops_per_sec", "fairness",
		"op_latency_cycles", "lease_hold_cycles", "counters", "hot_lines",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	lat, ok := m["op_latency_cycles"].(map[string]any)
	if !ok {
		t.Fatal("op_latency_cycles is not an object")
	}
	for _, key := range []string{"count", "mean", "p50", "p90", "p99"} {
		if _, ok := lat[key]; !ok {
			t.Errorf("latency summary missing %q", key)
		}
	}
	if hl, ok := m["hot_lines"].([]any); !ok || len(hl) == 0 {
		t.Error("report has no hot_lines")
	}
}
