package bench

import (
	"bytes"
	"sort"
	"testing"

	"leaserelease/internal/coherence"
	"leaserelease/internal/ds"
	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

// This file is the cross-protocol differential suite: the same fixed-work
// programs run under directory MSI and under Tardis with identical seeds,
// and everything that is *semantic* — final values, conservation
// multisets, the span-sum and ledger-conservation identities — must agree
// exactly. Timing (ops, cycles, message mix) legitimately differs between
// backends and is never compared here.

// protoConfigs returns one default config per protocol backend, identical
// except for the Protocol field.
func protoConfigs(cores int) map[string]machine.Config {
	out := make(map[string]machine.Config, 2)
	for _, proto := range coherence.Protocols() {
		cfg := machine.DefaultConfig(cores)
		cfg.Protocol = proto
		out[proto] = cfg
	}
	return out
}

// TestProtocolDifferentialCounter: the fig2 primitive (leased CAS counter)
// with a fixed op budget must produce the same final value on every
// backend — atomicity is protocol-independent.
func TestProtocolDifferentialCounter(t *testing.T) {
	const cores, per = 4, 200
	for proto, cfg := range protoConfigs(cores) {
		m := machine.New(cfg)
		ctr := m.Direct().Alloc(8)
		for i := 0; i < cores; i++ {
			m.Spawn(0, func(c *machine.Ctx) {
				for n := 0; n < per; n++ {
					c.Lease(ctr, 5000)
					for {
						v := c.Load(ctr)
						if c.CAS(ctr, v, v+1) {
							break
						}
					}
					c.Release(ctr)
				}
			})
		}
		if err := m.Drain(); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if got := m.Peek(ctr); got != cores*per {
			t.Errorf("%s: counter = %d, want %d", proto, got, cores*per)
		}
		if err := m.VerifyCoherence(); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

// TestProtocolDifferentialStack: concurrent leased Treiber pushes under
// both backends; the surviving multiset must be exactly the pushed
// multiset on each, so the two backends pop identical sorted contents.
func TestProtocolDifferentialStack(t *testing.T) {
	const pushers, per = 4, 50
	contents := make(map[string][]uint64)
	for proto, cfg := range protoConfigs(pushers + 1) {
		m := machine.New(cfg)
		s := ds.NewStack(m.Direct(), ds.StackOptions{Lease: 20000})
		done := m.Direct().Alloc(8)
		for i := 0; i < pushers; i++ {
			id := i
			m.Spawn(0, func(c *machine.Ctx) {
				for n := 0; n < per; n++ {
					s.Push(c, uint64(id)<<32|uint64(n)+1)
				}
				for {
					v := c.Load(done)
					if c.CAS(done, v, v+1) {
						break
					}
				}
			})
		}
		// The popper drains the stack only after every pusher checked in,
		// so the surviving multiset is the complete pushed multiset.
		var got []uint64
		m.Spawn(0, func(c *machine.Ctx) {
			for c.Load(done) != pushers {
				c.Work(500)
			}
			for {
				v, ok := s.Pop(c)
				if !ok {
					break
				}
				got = append(got, v)
			}
		})
		if err := m.Drain(); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		const want = pushers * per
		if len(got) != want {
			t.Fatalf("%s: popped %d values, want %d", proto, len(got), want)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		contents[proto] = got
		if err := m.VerifyCoherence(); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
	msi, trd := contents[coherence.ProtocolMSI], contents[coherence.ProtocolTardis]
	for i := range msi {
		if msi[i] != trd[i] {
			t.Fatalf("sorted stack contents diverge at %d: msi %#x, tardis %#x", i, msi[i], trd[i])
		}
	}
}

// TestProtocolSpanLedgerIdentities: the two accounting identities hold on
// every backend — each completed span's phases partition its latency
// exactly (so the six-phase table always sums to 100%, whether the inval
// column means invalidation fan-out or renew-extend), and the lease
// ledger conserves granted cycles (granted == used + unused).
func TestProtocolSpanLedgerIdentities(t *testing.T) {
	for proto, cfg := range protoConfigs(8) {
		cfg.Seed = 1
		rec := telemetry.NewRecorder()
		sp := rec.EnableSpans()
		sp.Keep = true
		rec.EnableLedger()
		r := ThroughputOpts(cfg, 8, 20_000, 100_000,
			CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
		if r.Err != nil {
			t.Fatalf("%s: run failed: %v", proto, r.Err)
		}

		if len(sp.Completed) == 0 {
			t.Fatalf("%s: no spans completed on a contended run", proto)
		}
		for _, s := range sp.Completed {
			var sum uint64
			for _, c := range s.Phases {
				sum += c
			}
			if sum != s.Total() {
				t.Fatalf("%s: span %#x phases %v sum to %d, want total %d",
					proto, s.ID, s.Phases, sum, s.Total())
			}
		}
		st := sp.Stats()
		var phaseSum uint64
		for _, c := range st.Phase {
			phaseSum += c
		}
		if phaseSum != st.SpanCycles {
			t.Errorf("%s: aggregate phases sum to %d, want SpanCycles %d",
				proto, phaseSum, st.SpanCycles)
		}
		// A write-hot counter exercises the rts-jump path (renewals need
		// re-reads of unwritten lines, which this workload never does).
		if proto == coherence.ProtocolTardis && r.Window.RTSJumps == 0 {
			t.Errorf("%s: leased counter never jumped an rts reservation", proto)
		}

		led := r.LeaseLedger
		if led == nil || led.Leases == 0 {
			t.Fatalf("%s: leased run produced no ledger", proto)
		}
		if led.GrantedCycles != led.UsedCycles+led.UnusedCycles {
			t.Errorf("%s: ledger does not conserve: granted %d != used %d + unused %d",
				proto, led.GrantedCycles, led.UsedCycles, led.UnusedCycles)
		}
	}
}

// TestTardisSweepDeterministicAcrossPoolSizes extends the -parallel
// byte-identity contract to the Tardis backend and to the two-protocol
// compare experiment itself.
func TestTardisSweepDeterministicAcrossPoolSizes(t *testing.T) {
	for _, tc := range []struct {
		id       string
		protocol string
	}{
		{"fig2", coherence.ProtocolTardis},
		{"fig3-counter", coherence.ProtocolTardis},
		{"protocol-compare", ""},
	} {
		e, ok := Find(tc.id)
		if !ok {
			t.Fatalf("experiment %q not found", tc.id)
		}
		p := Params{Threads: []int{2, 4}, Warm: 20_000, Window: 60_000, Protocol: tc.protocol}

		var serial bytes.Buffer
		p.Pool = nil
		e.Run(&serial, p)

		var parallel bytes.Buffer
		p.Pool = NewPool(8)
		e.Run(&parallel, p)
		p.Pool.Close()

		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Errorf("%s/%s: -parallel 8 output differs from serial run:\nserial:\n%s\nparallel:\n%s",
				tc.id, tc.protocol, serial.String(), parallel.String())
		}
		if serial.Len() == 0 {
			t.Errorf("%s: experiment produced no output", tc.id)
		}
	}
}
