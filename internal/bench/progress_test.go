package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"leaserelease/internal/machine"
)

// The nil hub is inert: every method is safe and free so call sites need
// no enablement checks.
func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.SetPool(nil)
	p.AddSimCycles(10)
	c := p.Cell("x")
	if c != nil {
		t.Fatal("nil hub returned a non-nil cell")
	}
	c.Start()
	c.AddSimCycles(5)
	c.ObserveShards(nil)
	c.Done()
	p.ObserveShards(nil)
	s := p.Snapshot()
	if s.CellsTotal != 0 || s.SimCycles != 0 {
		t.Errorf("nil hub snapshot = %+v, want zero", s)
	}
}

// Cell lifecycle and the aggregate counter: cells progress pending ->
// running -> done and their cycles credit both the cell and the total.
func TestProgressCellLifecycle(t *testing.T) {
	p := NewProgress()
	a := p.Cell("counter/t2")
	b := p.Cell("counter/t4")

	a.Start()
	a.AddSimCycles(100)
	a.Done()
	b.Start()
	b.AddSimCycles(250)

	s := p.Snapshot()
	if s.CellsTotal != 2 || s.CellsDone != 1 || s.CellsRunning != 1 {
		t.Errorf("snapshot = %+v, want 2 cells, 1 done, 1 running", s)
	}
	if s.SimCycles != 350 {
		t.Errorf("aggregate cycles = %d, want 350", s.SimCycles)
	}
	byName := map[string]CellSnapshot{}
	for _, c := range s.Cells {
		byName[c.Name] = c
	}
	if byName["counter/t2"].State != "done" || byName["counter/t2"].SimCycles != 100 {
		t.Errorf("cell a = %+v", byName["counter/t2"])
	}
	if byName["counter/t4"].State != "running" || byName["counter/t4"].SimCycles != 250 {
		t.Errorf("cell b = %+v", byName["counter/t4"])
	}
	// Serial run: nil pool reports one inline worker, none busy.
	if s.PoolWorkers != 1 || s.PoolBusy != 0 {
		t.Errorf("nil-pool occupancy = %d/%d, want 1/0", s.PoolBusy, s.PoolWorkers)
	}
}

// The Prometheus rendering carries every metric family plus per-cell
// series with stable labels.
func TestProgressPromText(t *testing.T) {
	p := NewProgress()
	c := p.Cell("fig2/t8")
	c.Start()
	c.AddSimCycles(42)
	text := p.Snapshot().promText()
	for _, want := range []string{
		"leasesim_cells_total 1",
		"leasesim_cells_running 1",
		"leasesim_cells_done 0",
		"leasesim_pool_workers 1",
		"leasesim_pool_busy 0",
		"leasesim_sim_cycles_total 42",
		"leasesim_sim_cycles_per_second",
		`name="fig2/t8",state="running"} 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom text missing %q:\n%s", want, text)
		}
	}
}

// Serve binds a real listener; /progress serves the JSON snapshot,
// /metrics the Prometheus text, and /debug/vars the expvar surface with
// the published leasesim var.
func TestProgressServeEndpoints(t *testing.T) {
	p := NewProgress()
	cell := p.Cell("fig3/t4")
	cell.Start()
	cell.AddSimCycles(7)

	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/progress"), &snap); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if snap.CellsTotal != 1 || snap.SimCycles != 7 {
		t.Errorf("/progress = %+v, want 1 cell, 7 cycles", snap)
	}
	if !strings.Contains(string(get("/metrics")), "leasesim_sim_cycles_total 7") {
		t.Error("/metrics missing the cycle counter")
	}
	if !strings.Contains(string(get("/debug/vars")), `"leasesim"`) {
		t.Error("/debug/vars missing the leasesim var")
	}

	// A second hub can be served (tests, repeated sweeps) without the
	// expvar duplicate-publish panic, and the var follows the newest hub.
	p2 := NewProgress()
	p2.Cell("fig4/t2")
	addr2, err := p2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr2))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "fig4/t2") {
		t.Error("expvar did not repoint to the newest hub")
	}
}

// A sharded cell wired to a served hub surfaces the parallel kernel's
// self-observability gauges on /metrics: window and barrier totals,
// stall cycles, and one utilization series per shard, all parseable and
// non-negative. This is the live-scrape contract of `leasesim -serve`
// combined with -shards.
func TestProgressMetricsShardGauges(t *testing.T) {
	p := NewProgress()
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cfg := machine.DefaultConfig(8)
	cfg.Shards = 4
	cell := p.Cell("counter/t8")
	cell.Start()
	var m *machine.Machine
	r := ThroughputOpts(cfg, 8, 20_000, 60_000, CounterWorkload(CounterLeasedTTS),
		Options{Progress: cell,
			Hooks: []func(*machine.Machine){func(mm *machine.Machine) { m = mm }}})
	cell.Done()
	if r.Err != nil {
		t.Fatalf("sharded cell failed: %v", r.Err)
	}
	if eff, reason := m.EffectiveShards(); eff < 2 {
		t.Fatalf("cell did not shard (eff=%d, reason=%q); gauge test would be vacuous", eff, reason)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every gauge must be present with a parseable, non-negative value.
	gauge := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
				continue
			}
			rest := line[len(name):]
			if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
				continue // longer metric name sharing the prefix
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("%s: unparseable value in %q: %v", name, line, err)
			}
			return v
		}
		t.Fatalf("/metrics missing %s:\n%s", name, text)
		return 0
	}
	if v := gauge("leasesim_shard_count"); v < 2 {
		t.Errorf("leasesim_shard_count = %g, want >= 2", v)
	}
	if v := gauge("leasesim_shard_windows_total"); v <= 0 {
		t.Errorf("leasesim_shard_windows_total = %g, want > 0", v)
	}
	if v := gauge("leasesim_shard_barriers_total"); v <= 0 {
		t.Errorf("leasesim_shard_barriers_total = %g, want > 0", v)
	}
	if v := gauge("leasesim_shard_barrier_stall_cycles"); v < 0 {
		t.Errorf("leasesim_shard_barrier_stall_cycles = %g, want >= 0", v)
	}
	if v := gauge("leasesim_shard_lookahead_occupancy"); v <= 0 {
		t.Errorf("leasesim_shard_lookahead_occupancy = %g, want > 0", v)
	}
	nShards := int(gauge("leasesim_shard_count"))
	for i := 0; i < nShards; i++ {
		series := fmt.Sprintf(`leasesim_shard_utilization{shard="%d"}`, i)
		idx := strings.Index(text, series)
		if idx < 0 {
			t.Fatalf("/metrics missing %s", series)
		}
		rest := strings.Fields(text[idx+len(series):])
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			t.Fatalf("%s: unparseable value: %v", series, err)
		}
		if v < 0 || v > 1 {
			t.Errorf("%s = %g, want within [0,1]", series, v)
		}
	}
}

// Pool occupancy: Running tracks cells mid-execution and returns to zero;
// Workers reports the fixed pool size (and the serial conventions on nil).
func TestPoolOccupancy(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	if pool.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", pool.Workers())
	}

	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(2)
	futures := []*Future[int]{
		Go(pool, func() int { started.Done(); <-release; return 1 }),
		Go(pool, func() int { started.Done(); <-release; return 2 }),
	}
	started.Wait()
	if got := pool.Running(); got != 2 {
		t.Errorf("Running() = %d while both cells block, want 2", got)
	}
	close(release)
	for _, f := range futures {
		f.Get()
	}
	var nilPool *Pool
	if nilPool.Workers() != 1 || nilPool.Running() != 0 {
		t.Errorf("nil pool = %d workers, %d running; want 1, 0",
			nilPool.Workers(), nilPool.Running())
	}
}
