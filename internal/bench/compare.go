package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file implements `leasebench -compare old.json new.json`: a
// per-configuration delta table between two `leasesim -json` report files,
// with regressions beyond a threshold highlighted and counted so CI can
// fail on them.

// ReadReportFile loads all reports from one `leasesim -json` output file.
// Both shapes are accepted: a JSON array of reports, or the stream of
// concatenated objects a -threads sweep emits.
func ReadReportFile(path string) ([]Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reps, err := readReports(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("%s: no reports", path)
	}
	return reps, nil
}

func readReports(data []byte) ([]Report, error) {
	var arr []Report
	if err := json.Unmarshal(data, &arr); err == nil {
		return arr, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []Report
	for {
		var rep Report
		if err := dec.Decode(&rep); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// compareKey identifies one configuration across the two files.
type compareKey struct {
	DS      string
	Threads int
	Lease   bool
}

func (k compareKey) String() string {
	mode := "nolease"
	if k.Lease {
		mode = "lease"
	}
	return fmt.Sprintf("%s/t%d/%s", k.DS, k.Threads, mode)
}

// deltaPct returns the relative change new-vs-old in percent; 0 when the
// old value is 0 (no meaningful baseline).
func deltaPct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// fmtDelta renders a signed percentage column, flagging regressions.
// higherIsBetter says which direction counts as a regression; beyond
// thresholdPct the cell is marked with '!' and counted.
func fmtDelta(pct float64, higherIsBetter bool, thresholdPct float64, regressions *int) string {
	s := fmt.Sprintf("%+.1f%%", pct)
	bad := pct < -thresholdPct
	if !higherIsBetter {
		bad = pct > thresholdPct
	}
	if bad && thresholdPct > 0 {
		*regressions++
		s += " !"
	}
	return s
}

// CompareReports prints a per-configuration delta table (ops, throughput,
// latency percentiles, messages/op) between two report sets, matching rows
// on (ds, threads, lease). Metrics whose relative change regresses by more
// than thresholdPct are marked with '!'; it returns the count of such
// regressions (0 when thresholdPct is 0, i.e. highlighting disabled) and
// the number of matched configurations, so callers can emit a one-line
// verdict separately from the table.
func CompareReports(w io.Writer, old, new []Report, thresholdPct float64) (regressionCount, compared int) {
	oldBy := make(map[compareKey]*Report, len(old))
	for i := range old {
		r := &old[i]
		oldBy[compareKey{r.DS, r.Threads, r.Lease}] = r
	}

	regressions := 0
	t := NewTable("config", "ops", "Δops", "Mops/s", "ΔMops/s",
		"p50", "Δp50", "p99", "Δp99", "msgs/op", "Δmsgs/op")
	matched := 0
	for i := range new {
		n := &new[i]
		k := compareKey{n.DS, n.Threads, n.Lease}
		o, ok := oldBy[k]
		if !ok {
			t.Row(k.String(), n.Ops, "(new)", n.MopsPerSec, "-",
				latP50(n), "-", latP99(n), "-", n.MsgsPerOp, "-")
			continue
		}
		matched++
		delete(oldBy, k)
		t.Row(k.String(),
			n.Ops, fmtDelta(deltaPct(float64(o.Ops), float64(n.Ops)), true, thresholdPct, &regressions),
			n.MopsPerSec, fmtDelta(deltaPct(o.MopsPerSec, n.MopsPerSec), true, thresholdPct, &regressions),
			latP50(n), fmtDelta(deltaPct(float64(latP50(o)), float64(latP50(n))), false, thresholdPct, &regressions),
			latP99(n), fmtDelta(deltaPct(float64(latP99(o)), float64(latP99(n))), false, thresholdPct, &regressions),
			n.MsgsPerOp, fmtDelta(deltaPct(o.MsgsPerOp, n.MsgsPerOp), false, thresholdPct, &regressions),
		)
	}
	for _, k := range sortedKeys(oldBy) {
		t.Row(k.String(), "-", "(dropped)", "-", "-", "-", "-", "-", "-", "-", "-")
	}
	t.Print(w)
	fmt.Fprintf(w, "\n%d configs compared", matched)
	if thresholdPct > 0 {
		fmt.Fprintf(w, ", %d regressions beyond %.1f%% (marked '!')", regressions, thresholdPct)
	}
	fmt.Fprintln(w)
	return regressions, matched
}

// sortedKeys returns the map's keys in deterministic (string) order.
func sortedKeys(m map[compareKey]*Report) []compareKey {
	keys := make([]compareKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].String() < keys[j-1].String(); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func latP50(r *Report) uint64 {
	if r.OpLatency == nil {
		return 0
	}
	return r.OpLatency.P50
}

func latP99(r *Report) uint64 {
	if r.OpLatency == nil {
		return 0
	}
	return r.OpLatency.P99
}
