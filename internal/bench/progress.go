package bench

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leaserelease/internal/sim"
)

// Progress is the live-introspection hub of a sweep: per-cell progress,
// worker-pool occupancy, and an aggregate simulated-cycle counter from
// which simulated-cycles/s is derived. It is purely host-side — nothing
// reads it from simulation context — so serving it over HTTP alongside
// -parallel never perturbs simulated timing. All counters are atomics; a
// nil *Progress is inert, so call sites need no enablement checks.
type Progress struct {
	start     time.Time
	simCycles atomic.Uint64

	mu    sync.Mutex
	cells []*CellProgress
	pool  *Pool

	// shard is the most recent engine self-observability snapshot from a
	// cell executing on the parallel kernel (nil until one reports).
	// Cells update it live between Run chunks, so /metrics exposes
	// window/barrier/utilization gauges while a sharded cell executes.
	shard *sim.EngineStats
}

// NewProgress returns an empty hub with the rate clock started.
func NewProgress() *Progress { return &Progress{start: time.Now()} }

// SetPool points the hub at the sweep's worker pool for occupancy
// reporting. Safe with a nil pool (serial run: occupancy is 0 or 1).
func (p *Progress) SetPool(pool *Pool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.pool = pool
	p.mu.Unlock()
}

// AddSimCycles adds n simulated cycles to the aggregate rate counter.
func (p *Progress) AddSimCycles(n uint64) {
	if p != nil {
		p.simCycles.Add(n)
	}
}

// ObserveShards records the latest parallel-kernel self-observability
// snapshot for the /metrics shard gauges. Nil receiver and nil snapshot
// are both no-ops, so call sites need no enablement checks.
func (p *Progress) ObserveShards(st *sim.EngineStats) {
	if p == nil || st == nil {
		return
	}
	p.mu.Lock()
	p.shard = st
	p.mu.Unlock()
}

// Cell registers one sweep cell (pending until Start is called). Returns
// nil — still safe to use — when p is nil.
func (p *Progress) Cell(name string) *CellProgress {
	if p == nil {
		return nil
	}
	c := &CellProgress{p: p, name: name}
	p.mu.Lock()
	p.cells = append(p.cells, c)
	p.mu.Unlock()
	return c
}

// Cell states.
const (
	cellPending int32 = iota
	cellRunning
	cellDone
)

// CellProgress tracks one sweep cell's life: pending -> running -> done,
// plus the simulated cycles it has executed. All methods are nil-safe.
type CellProgress struct {
	p      *Progress
	name   string
	state  atomic.Int32
	cycles atomic.Uint64
}

// Start marks the cell running (a worker picked it up).
func (c *CellProgress) Start() {
	if c != nil {
		c.state.Store(cellRunning)
	}
}

// AddSimCycles credits n simulated cycles to the cell and the aggregate.
func (c *CellProgress) AddSimCycles(n uint64) {
	if c != nil {
		c.cycles.Add(n)
		c.p.AddSimCycles(n)
	}
}

// Done marks the cell finished.
func (c *CellProgress) Done() {
	if c != nil {
		c.state.Store(cellDone)
	}
}

// ObserveShards forwards a parallel-kernel snapshot to the hub's shard
// gauges. Nil-safe on both the cell and the snapshot.
func (c *CellProgress) ObserveShards(st *sim.EngineStats) {
	if c != nil {
		c.p.ObserveShards(st)
	}
}

// CellSnapshot is one cell's state in a Snapshot.
type CellSnapshot struct {
	Name      string `json:"name"`
	State     string `json:"state"` // "pending" | "running" | "done"
	SimCycles uint64 `json:"sim_cycles"`
}

// Snapshot is a point-in-time view of the sweep, as served on /progress.
type Snapshot struct {
	CellsTotal   int     `json:"cells_total"`
	CellsRunning int     `json:"cells_running"`
	CellsDone    int     `json:"cells_done"`
	PoolWorkers  int     `json:"pool_workers"`
	PoolBusy     int     `json:"pool_busy"`
	SimCycles    uint64  `json:"sim_cycles"`
	SimCyclesPS  float64 `json:"sim_cycles_per_sec"`
	ElapsedSec   float64 `json:"elapsed_sec"`

	Cells []CellSnapshot `json:"cells"`

	// ShardStats is the latest parallel-kernel self-observability
	// snapshot (nil while no cell has run sharded).
	ShardStats *sim.EngineStats `json:"shard_stats,omitempty"`
}

func cellStateName(s int32) string {
	switch s {
	case cellRunning:
		return "running"
	case cellDone:
		return "done"
	}
	return "pending"
}

// Snapshot captures the current state.
func (p *Progress) Snapshot() Snapshot {
	var s Snapshot
	if p == nil {
		return s
	}
	p.mu.Lock()
	cells := append([]*CellProgress(nil), p.cells...)
	pool := p.pool
	shard := p.shard
	p.mu.Unlock()
	s.ShardStats = shard

	s.CellsTotal = len(cells)
	s.Cells = make([]CellSnapshot, 0, len(cells))
	for _, c := range cells {
		st := c.state.Load()
		switch st {
		case cellRunning:
			s.CellsRunning++
		case cellDone:
			s.CellsDone++
		}
		s.Cells = append(s.Cells, CellSnapshot{
			Name: c.name, State: cellStateName(st), SimCycles: c.cycles.Load(),
		})
	}
	s.PoolWorkers, s.PoolBusy = pool.Workers(), pool.Running()
	s.SimCycles = p.simCycles.Load()
	s.ElapsedSec = time.Since(p.start).Seconds()
	if s.ElapsedSec > 0 {
		s.SimCyclesPS = float64(s.SimCycles) / s.ElapsedSec
	}
	return s
}

// promText renders the snapshot in the Prometheus text exposition format
// (as served on /metrics).
func (s Snapshot) promText() string {
	var b []byte
	line := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
		b = append(b, '\n')
	}
	line("# HELP leasesim_cells_total Sweep cells registered.")
	line("# TYPE leasesim_cells_total gauge")
	line("leasesim_cells_total %d", s.CellsTotal)
	line("# HELP leasesim_cells_running Sweep cells currently executing.")
	line("# TYPE leasesim_cells_running gauge")
	line("leasesim_cells_running %d", s.CellsRunning)
	line("# HELP leasesim_cells_done Sweep cells finished.")
	line("# TYPE leasesim_cells_done gauge")
	line("leasesim_cells_done %d", s.CellsDone)
	line("# HELP leasesim_pool_workers Host worker goroutines in the pool.")
	line("# TYPE leasesim_pool_workers gauge")
	line("leasesim_pool_workers %d", s.PoolWorkers)
	line("# HELP leasesim_pool_busy Pool workers currently running a cell.")
	line("# TYPE leasesim_pool_busy gauge")
	line("leasesim_pool_busy %d", s.PoolBusy)
	line("# HELP leasesim_sim_cycles_total Simulated cycles executed across all cells.")
	line("# TYPE leasesim_sim_cycles_total counter")
	line("leasesim_sim_cycles_total %d", s.SimCycles)
	line("# HELP leasesim_sim_cycles_per_second Simulated cycles per host wall-clock second.")
	line("# TYPE leasesim_sim_cycles_per_second gauge")
	line("leasesim_sim_cycles_per_second %g", s.SimCyclesPS)
	line("# HELP leasesim_cell_sim_cycles Simulated cycles executed by one sweep cell.")
	line("# TYPE leasesim_cell_sim_cycles counter")
	// Stable order and a unique index label (names may repeat).
	cells := append([]CellSnapshot(nil), s.Cells...)
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })
	for i, c := range cells {
		line(`leasesim_cell_sim_cycles{cell=%q,name=%q,state=%q} %d`,
			fmt.Sprintf("%d", i), c.Name, c.State, c.SimCycles)
	}
	if st := s.ShardStats; st != nil {
		line("# HELP leasesim_shard_count Effective shards of the latest parallel-kernel cell.")
		line("# TYPE leasesim_shard_count gauge")
		line("leasesim_shard_count %d", st.Shards)
		line("# HELP leasesim_shard_windows_total Parallel windows executed by the latest sharded cell.")
		line("# TYPE leasesim_shard_windows_total gauge")
		line("leasesim_shard_windows_total %d", st.Windows)
		line("# HELP leasesim_shard_barriers_total Window barriers crossed by the latest sharded cell.")
		line("# TYPE leasesim_shard_barriers_total gauge")
		line("leasesim_shard_barriers_total %d", st.Barriers)
		line("# HELP leasesim_shard_barrier_stall_cycles Shard-cycles spent idle inside windows (window span times idle shards, summed).")
		line("# TYPE leasesim_shard_barrier_stall_cycles gauge")
		line("leasesim_shard_barrier_stall_cycles %d", st.BarrierStallCycles)
		line("# HELP leasesim_shard_cross_messages_total Cross-shard events merged at barriers.")
		line("# TYPE leasesim_shard_cross_messages_total gauge")
		line("leasesim_shard_cross_messages_total %d", st.CrossShardMerged)
		line("# HELP leasesim_shard_lookahead_occupancy Mean window span over the configured lookahead (1 = full windows).")
		line("# TYPE leasesim_shard_lookahead_occupancy gauge")
		line("leasesim_shard_lookahead_occupancy %g", st.LookaheadOccupancy)
		line("# HELP leasesim_shard_imbalance_ratio Max over mean per-shard event count (1 = perfectly balanced).")
		line("# TYPE leasesim_shard_imbalance_ratio gauge")
		line("leasesim_shard_imbalance_ratio %g", st.ImbalanceRatio)
		line("# HELP leasesim_shard_events Events executed by one shard of the latest sharded cell.")
		line("# TYPE leasesim_shard_events gauge")
		line("# HELP leasesim_shard_utilization Fraction of windows in which one shard had work.")
		line("# TYPE leasesim_shard_utilization gauge")
		for i, sh := range st.PerShard {
			line(`leasesim_shard_events{shard="%d"} %d`, i, sh.Events)
			line(`leasesim_shard_utilization{shard="%d"} %g`, i, sh.Utilization)
		}
	}
	return string(b)
}

// expvarOnce guards the process-wide expvar name (Publish panics on
// duplicates); expvarCurrent lets later Serve calls repoint it.
var (
	expvarOnce    sync.Once
	expvarCurrent atomic.Pointer[Progress]
)

// Handler returns the introspection HTTP handler:
//
//	/progress    JSON Snapshot
//	/metrics     Prometheus text exposition
//	/debug/vars  standard expvar (includes a "leasesim" Snapshot var)
func (p *Progress) Handler() http.Handler {
	expvarCurrent.Store(p)
	expvarOnce.Do(func() {
		expvar.Publish("leasesim", expvar.Func(func() interface{} {
			return expvarCurrent.Load().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(p.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, p.Snapshot().promText())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Serve binds addr (e.g. ":9090") and serves the introspection endpoints
// in a background goroutine, returning the bound address. The listener
// lives for the rest of the process — sweeps exit when done.
func (p *Progress) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: p.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
