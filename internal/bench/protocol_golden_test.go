package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"leaserelease/internal/coherence"
	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

// The `leasesim -json` report is byte-identical per seed on every
// protocol backend; this pins the exact bytes of a small Tardis
// contended-counter report (counters including renewals/rts-jumps, span
// accounting, protocol tag) the same way the timeline golden pins the
// trace export. Regenerate deliberately with:
// go test ./internal/bench -run Golden -update
func TestTardisReportGolden(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	cfg.Seed = 11
	cfg.Protocol = coherence.ProtocolTardis
	rec := telemetry.NewRecorder()
	rec.EnableSpans()
	rec.EnableLedger()
	const warm, window = 5_000, 25_000
	r := ThroughputOpts(cfg, 2, warm, window,
		CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
	if r.Err != nil {
		t.Fatalf("run failed: %v", r.Err)
	}

	rep := BuildReport("counter", 2, true, cfg, warm, window, r, rec, 5)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_counter_tardis_t2_seed11.json")

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report differs from %s (%d vs %d bytes); if the change "+
			"is intentional, regenerate with -update", golden, buf.Len(), len(want))
	}

	// Sanity: the golden report carries the protocol tag and the
	// timestamp-native counters no MSI run can produce.
	var parsed Report
	if err := json.Unmarshal(want, &parsed); err != nil {
		t.Fatalf("golden report is not valid JSON: %v", err)
	}
	if parsed.Protocol != coherence.ProtocolTardis {
		t.Errorf("golden protocol = %q, want %q", parsed.Protocol, coherence.ProtocolTardis)
	}
	if parsed.Counters.Renewals == 0 && parsed.Counters.RTSJumps == 0 {
		t.Error("golden report has neither renewals nor rts-jumps")
	}
	if parsed.Counters.Msgs[coherence.MsgInval.String()] != 0 {
		t.Error("golden Tardis report records invalidation messages")
	}
}
