package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file implements the `leasebench history` store: an append-only
// JSONL file of per-run summary metrics, keyed by configuration and git
// revision, that the HTML report (htmlreport.go) renders cross-run trend
// lines from.

// HistoryFile is the JSONL store inside the history directory.
const HistoryFile = "history.jsonl"

// HistoryEntry is one recorded run summary: the configuration key, the
// source revision, and the headline metrics a trend line needs. Full
// reports (histograms, hot lines, ledger rankings) stay in the original
// -json files; the store keeps only what cross-run comparison reads.
type HistoryEntry struct {
	// Key is "<ds>/t<threads>/<lease|nolease>/s<seed>" — the unit trend
	// lines are grouped by. Fault-injected runs append "/f<profile>"
	// (faults.Config.Profile) and non-MSI-protocol runs append
	// "/p<protocol>", so degraded or per-protocol runs trend separately
	// from clean MSI ones instead of polluting their polylines.
	Key      string `json:"key"`
	GitSHA   string `json:"git_sha,omitempty"`
	Note     string `json:"note,omitempty"`
	TimeUnix int64  `json:"time_unix"`

	DS           string `json:"ds"`
	Threads      int    `json:"threads"`
	Lease        bool   `json:"lease"`
	Seed         uint64 `json:"seed"`
	FaultProfile string `json:"fault_profile,omitempty"`
	Protocol     string `json:"protocol,omitempty"`

	// ShardDowngrade records why a requested shard count fell back to
	// the sequential kernel (empty when granted or not requested). A
	// host-side execution note: it never affects the metrics, so it is
	// informational rather than part of the grouping key.
	ShardDowngrade string `json:"shard_downgrade,omitempty"`

	Ops         uint64  `json:"ops"`
	MopsPerSec  float64 `json:"mops_per_sec"`
	NJPerOp     float64 `json:"nj_per_op"`
	MsgsPerOp   float64 `json:"msgs_per_op"`
	MissesPerOp float64 `json:"l1_misses_per_op"`
	P50         uint64  `json:"op_p50,omitempty"`
	P99         uint64  `json:"op_p99,omitempty"`

	// Ledger headline metrics, present when the run had -ledger.
	LeaseEfficiency float64 `json:"lease_efficiency,omitempty"`
	Amortization    float64 `json:"lease_amortization,omitempty"`
	DeferInflicted  uint64  `json:"defer_inflicted_cycles,omitempty"`

	Error string `json:"error,omitempty"`
}

// historyKey renders the grouping key for one report.
func historyKey(r *Report) string {
	mode := "nolease"
	if r.Lease {
		mode = "lease"
	}
	key := fmt.Sprintf("%s/t%d/%s/s%d", r.DS, r.Threads, mode, r.Seed)
	if r.FaultProfile != "" {
		key += "/f" + r.FaultProfile
	}
	if r.Protocol != "" {
		key += "/p" + r.Protocol
	}
	return key
}

// HistoryEntryOf summarizes one report into a history entry stamped with
// the given revision and wall-clock time.
func HistoryEntryOf(r *Report, sha, note string, now time.Time) HistoryEntry {
	e := HistoryEntry{
		Key: historyKey(r), GitSHA: sha, Note: note, TimeUnix: now.Unix(),
		DS: r.DS, Threads: r.Threads, Lease: r.Lease, Seed: r.Seed,
		FaultProfile: r.FaultProfile, Protocol: r.Protocol,
		ShardDowngrade: r.ShardDowngrade,
		Ops:            r.Ops, MopsPerSec: r.MopsPerSec, NJPerOp: r.NJPerOp,
		MsgsPerOp: r.MsgsPerOp, MissesPerOp: r.MissesPerOp,
		Error: r.Error,
	}
	if r.OpLatency != nil {
		e.P50, e.P99 = r.OpLatency.P50, r.OpLatency.P99
	}
	if l := r.LeaseLedger; l != nil {
		e.LeaseEfficiency = l.Efficiency
		e.Amortization = l.Amortization
		e.DeferInflicted = l.DeferInflictedCycles
	}
	return e
}

// GitSHA returns the short revision of the working tree, or "" when the
// tree is not a git checkout (or git is unavailable) — history entries
// are still useful without it.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// AppendHistory summarizes every report into the append-only JSONL store
// under dir (created if missing) and returns the entries written.
func AppendHistory(dir, sha, note string, reports []Report, now time.Time) ([]HistoryEntry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, HistoryFile),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	entries := make([]HistoryEntry, 0, len(reports))
	for i := range reports {
		e := HistoryEntryOf(&reports[i], sha, note, now)
		if err := enc.Encode(e); err != nil {
			f.Close()
			return nil, err
		}
		entries = append(entries, e)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return entries, f.Close()
}

// ReadHistory loads every entry of the store under dir, in append order.
// A missing store reads as empty — the report command degrades to a
// no-trends report rather than failing.
func ReadHistory(dir string) ([]HistoryEntry, error) {
	f, err := os.Open(filepath.Join(dir, HistoryFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", HistoryFile, line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// GroupHistory buckets entries by key, preserving append order inside
// each bucket, and returns the keys sorted for deterministic rendering.
func GroupHistory(entries []HistoryEntry) (keys []string, byKey map[string][]HistoryEntry) {
	byKey = make(map[string][]HistoryEntry)
	for _, e := range entries {
		if _, ok := byKey[e.Key]; !ok {
			keys = append(keys, e.Key)
		}
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	sort.Strings(keys)
	return keys, byKey
}
