package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and prints an aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v, floats with 3 significant
// decimals.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Print writes the aligned table to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
