package bench

import (
	"bytes"
	"strings"
	"testing"

	"leaserelease/internal/ds"
	"leaserelease/internal/machine"
)

// degSmokeCell measures one (variant, rate) cell at smoke scale for the
// given seed. The window must cover many preemption durations (up to
// 300K cycles each) for the retention comparison to be meaningful.
func degSmokeCell(seed uint64, n, rate int, build func(d *machine.Direct) OpFunc) Result {
	cfg := Params{}.degradationCfg(n, rate, false)
	cfg.Seed = seed
	return Throughput(cfg, n, 50_000, 3_000_000, build)
}

// TestDegradationSmoke is the gating robustness assertion (also run as a
// CI step): at the family's highest preemption rate, the leased stack
// retains strictly more of its fault-free throughput than the lock-based
// stack, for every tested seed. A preempted lease holder blocks victims
// for at most MAX_LEASE_TIME; a preempted lock holder blocks them for
// the whole preemption — the retention gap is the mechanism's value
// under adversity, so losing it is a regression.
func TestDegradationSmoke(t *testing.T) {
	n := 8
	top := degradationRates[len(degradationRates)-1]
	for _, seed := range []uint64{1, 2} {
		lockBase := degSmokeCell(seed, n, 0, LockStackWorkload())
		lockHit := degSmokeCell(seed, n, top, LockStackWorkload())
		leaseBase := degSmokeCell(seed, n, 0, StackWorkload(ds.StackOptions{Lease: LeaseTime}))
		leaseHit := degSmokeCell(seed, n, top, StackWorkload(ds.StackOptions{Lease: LeaseTime}))
		for _, r := range []Result{lockBase, lockHit, leaseBase, leaseHit} {
			if r.Err != nil {
				t.Fatalf("seed %d: cell failed: %v", seed, r.Err)
			}
		}
		if lockHit.Window.Preemptions == 0 || leaseHit.Window.Preemptions == 0 {
			t.Fatalf("seed %d: top-rate cells saw no preemptions", seed)
		}
		lockRet := DegradationRetention(lockBase, lockHit)
		leaseRet := DegradationRetention(leaseBase, leaseHit)
		if leaseRet <= lockRet {
			t.Errorf("seed %d: lease retention %.3f <= lock retention %.3f at rate %d/1000",
				seed, leaseRet, lockRet, top)
		}
	}
}

// TestDegradationRateZeroMatchesClean: the rate-0 column of the sweep is
// an entirely fault-free run — identical counters to a config that never
// mentions faults — so existing goldens and baselines stay valid.
func TestDegradationRateZeroMatchesClean(t *testing.T) {
	build := StackWorkload(ds.StackOptions{Lease: LeaseTime})
	zero := Throughput(Params{}.degradationCfg(4, 0, false), 4, 20_000, 80_000, build)
	clean := Throughput(Params{}.cfgFor(4), 4, 20_000, 80_000, build)
	if zero.Window != clean.Window || zero.Ops != clean.Ops {
		t.Fatalf("rate-0 degradation cell differs from clean run:\nzero:  %+v\nclean: %+v",
			zero.Window, clean.Window)
	}
}

// TestDegradationParallelDeterminism: the full experiment emits byte-
// identical tables for any worker-pool size, faults included — the
// -parallel contract extended to fault-injected sweeps.
func TestDegradationParallelDeterminism(t *testing.T) {
	params := Params{Threads: []int{4}, Warm: 10_000, Window: 40_000}
	e, ok := Find("degradation")
	if !ok {
		t.Fatal("degradation experiment not registered")
	}
	var serial bytes.Buffer
	p := params
	p.Pool = nil
	e.Run(&serial, p)

	var parallel bytes.Buffer
	p.Pool = NewPool(4)
	e.Run(&parallel, p)
	p.Pool.Close()

	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("-parallel 4 degradation output differs from serial:\nserial:\n%s\nparallel:\n%s",
			serial.String(), parallel.String())
	}
	for _, want := range []string{"lock Mops/s", "lease+ctrl Mops/s", "throughput retention", "victim wait", "lease accounting"} {
		if !strings.Contains(serial.String(), want) {
			t.Errorf("degradation output missing %q:\n%s", want, serial.String())
		}
	}
}

// TestDegradationListedInExperiments: the experiment registry (and so
// `leasebench -list` and the unknown -exp error menu) includes the
// degradation family.
func TestDegradationListedInExperiments(t *testing.T) {
	for _, e := range All() {
		if e.ID == "degradation" {
			return
		}
	}
	t.Fatal("degradation missing from All()")
}
