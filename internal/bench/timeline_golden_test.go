package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"leaserelease/internal/machine"
	"leaserelease/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The Perfetto/Chrome trace-event export is byte-identical per seed; this
// pins the exact bytes (lease slices plus nested transaction slices, the
// directory track, and flow arrows) for a small contended-counter run.
// Regenerate deliberately with: go test ./internal/bench -run Golden -update
func TestTimelineGolden(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	cfg.Seed = 11
	rec := telemetry.NewRecorder()
	rec.EnableTimeline(float64(cfg.ClockHz) / 1e6)
	rec.EnableSpans()
	r := ThroughputOpts(cfg, 2, 500, 2_500,
		CounterWorkload(CounterLeasedTTS), Options{Recorder: rec})
	if r.Err != nil {
		t.Fatalf("run failed: %v", r.Err)
	}

	var buf bytes.Buffer
	if err := rec.Timeline.Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline_counter_t2_seed11.json")

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("timeline differs from %s (%d vs %d bytes); if the change "+
			"is intentional, regenerate with -update", golden, buf.Len(), len(want))
	}

	// Sanity: the golden trace is valid JSON and contains the span layers.
	var parsed struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(want, &parsed); err != nil {
		t.Fatalf("golden timeline is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range parsed.TraceEvents {
		counts[e.Ph]++
	}
	for _, ph := range []string{"X", "b", "e", "s", "f"} {
		if counts[ph] == 0 {
			t.Errorf("golden timeline has no %q events (slices/async/flow missing)", ph)
		}
	}
}
