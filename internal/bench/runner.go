// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§7): workload generators, thread
// sweeps, and text-table reporters. See DESIGN.md's experiment index for
// the paper-to-experiment mapping.
package bench

import (
	"errors"
	"fmt"

	"leaserelease/internal/faults"
	"leaserelease/internal/invariant"
	"leaserelease/internal/machine"
	"leaserelease/internal/sim"
	"leaserelease/internal/telemetry"
)

// OpFunc performs one data structure operation on behalf of thread tid.
type OpFunc func(tid int, c *machine.Ctx)

// Sample is one sampled sub-window of a measurement: the Stats delta over
// [start of sub-window, EndCycle] plus the operations completed in it.
type Sample struct {
	EndCycle uint64        `json:"end_cycle"`
	Ops      uint64        `json:"ops"`
	Stats    machine.Stats `json:"stats"`
}

// Result summarizes one measurement window.
type Result struct {
	Threads uint64
	Ops     uint64
	Cycles  uint64
	Window  machine.Stats

	MopsPerSec    float64 // million operations per wall-clock second at ClockHz
	NJPerOp       float64
	MissesPerOp   float64
	MsgsPerOp     float64
	CASFailsPerOp float64
	AbortsPerOp   float64 // filled by STM workloads

	// Fairness is minOps/maxOps across threads in the window (1 = perfect;
	// 0 = some thread starved). Lease queueing tends to raise it.
	Fairness float64

	// Distribution digests (p50/p90/p99 alongside the means above), filled
	// when the run was telemetry-enabled (Options.Recorder); nil otherwise.
	OpLatency  *telemetry.Summary // cycles per operation
	LeaseHold  *telemetry.Summary // lease start -> release/expire/break
	ProbeDefer *telemetry.Summary // probe wait behind a lease
	DirQueue   *telemetry.Summary // directory queue occupancy at arrival

	// Txns is the critical-path cycle accounting of the window's coherence
	// transactions, filled when the recorder had spans enabled
	// (Recorder.EnableSpans); nil otherwise.
	Txns *telemetry.TxnSummary

	// LeaseLedger is the lease-efficiency accounting (per-lease granted vs.
	// used cycles, ops absorbed, deferral inflicted), filled when the
	// recorder had the ledger enabled (Recorder.EnableLedger); nil otherwise.
	LeaseLedger *telemetry.LedgerSummary

	// Faults is the injector's whole-run delivery count (zero when fault
	// injection is disabled). Unlike Window it is not windowed: it counts
	// warm-up faults too, so it reports the schedule actually delivered.
	Faults faults.Stats

	// Series holds the periodic time-series samples of windowed Stats
	// deltas (Options.Samples sub-windows); nil when sampling is off.
	Series []Sample

	// Err is set when the run failed (deadlock, panic, protocol or
	// invariant violation, blown cycle budget); the metric fields above
	// are zero then. A sweep reports the failed cell and continues.
	Err *RunError
}

// Options selects the optional observability features of a Throughput run.
// The zero value reproduces the plain harness: no telemetry, no sampling.
type Options struct {
	// Recorder, when non-nil, is attached to the machine's telemetry bus
	// and additionally observes per-operation latency for every operation
	// that starts inside the measurement window.
	Recorder *telemetry.Recorder
	// Samples > 0 splits the measurement window into that many sampled
	// sub-windows reported in Result.Series.
	Samples int
	// Hooks run on the freshly built machine before any thread spawns.
	Hooks []func(*machine.Machine)
	// Invariants attaches the runtime invariant checker (see the
	// invariant package); any violation fails the run with a RunError
	// carrying the diagnostic dump. With fault injection disabled the
	// checker is a pure observer and does not change simulated timing.
	Invariants bool
	// Progress, when non-nil, receives live cell progress: the run is
	// stepped in host-side chunks (simulation-identical — only the Run
	// call granularity changes) so simulated-cycle counters advance while
	// the cell executes.
	Progress *CellProgress
}

// Throughput runs a standard throughput benchmark: build the structure,
// spawn `threads` workers looping op, warm up, then measure a window.
// Optional hooks run on the freshly built machine (e.g. to install a
// tracer) before any thread is spawned.
func Throughput(cfg machine.Config, threads int, warm, window uint64,
	build func(d *machine.Direct) OpFunc, hooks ...func(*machine.Machine)) Result {
	return ThroughputOpts(cfg, threads, warm, window, build, Options{Hooks: hooks})
}

// ThroughputOpts is Throughput with observability options. Telemetry rides
// on the host side of the simulation (bus subscribers, local-clock reads),
// so enabling it never changes simulated timing: for a given cfg.Seed the
// measured window is identical with and without a Recorder.
//
// A failed run (deadlock, livelock, escaping panic, protocol or invariant
// violation) never crashes the caller: it returns a Result whose Err
// carries the classified cause and a machine state dump.
func ThroughputOpts(cfg machine.Config, threads int, warm, window uint64,
	build func(d *machine.Direct) OpFunc, o Options) Result {

	r, err := throughputGuarded(cfg, threads, warm, window, build, o)
	if err != nil {
		var re *RunError
		if !errors.As(err, &re) {
			re = &RunError{Threads: threads, Reason: classify(err), Cause: err, Detail: err.Error()}
		}
		return Result{Threads: uint64(threads), Err: re}
	}
	return r
}

// throughputGuarded is the measurement body. Escaping panics (which the
// sim kernel re-raises on this goroutine as *sim.PanicError with cycle,
// proc, and event context) are recovered into RunErrors here.
func throughputGuarded(cfg machine.Config, threads int, warm, window uint64,
	build func(d *machine.Direct) OpFunc, o Options) (res Result, err error) {

	var m *machine.Machine
	defer func() {
		if r := recover(); r != nil {
			cause := toError(r)
			err = newRunError(m, threads, cause)
			if m != nil {
				m.Stop()
			}
		}
	}()

	m = machine.New(cfg)
	for _, h := range o.Hooks {
		h(m)
	}
	var chk *invariant.Checker
	if o.Invariants {
		chk = invariant.Attach(m, invariant.Config{})
	}
	rec := o.Recorder
	var spans *telemetry.Spans
	var ledger *telemetry.Ledger
	if rec != nil {
		spans = rec.Spans
		if spans != nil {
			// Align span accounting with the measured window: spans of
			// warm-up transactions are assembled but not aggregated.
			spans.WindowStart = warm
		}
		ledger = rec.Ledger
		if ledger != nil {
			// Same window convention: warm-up leases are not accounted.
			ledger.WindowStart = warm
		}
		rec.Attach(m.Telemetry())
	}
	op := build(m.Direct())
	if rec != nil {
		inner := op
		op = func(tid int, c *machine.Ctx) {
			start := c.Now()
			inner(tid, c)
			end := c.Now()
			// The recorder's aggregates are single-consumer host state.
			// Observe routes the op-boundary bookkeeping through the
			// telemetry stream: immediate on the sequential kernel,
			// buffered and replayed in canonical event order at the next
			// window barrier on the parallel kernel — so histogram fills,
			// span closes, and ledger op counts interleave with bus events
			// exactly as in a sequential run.
			c.Observe(func() {
				if start >= warm {
					rec.OpLatency.Observe(end - start)
				}
				if spans != nil {
					// Threads spawn on cores in order, so tid == core id.
					spans.OpEnd(tid, start, end, start >= warm)
				}
				if ledger != nil {
					ledger.OpEnd(tid, start >= warm)
				}
			})
		}
	}
	counts := make([]uint64, threads)
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for {
				op(i, c)
				counts[i]++
			}
		})
	}
	step := func(until uint64) error {
		if o.Progress == nil {
			if rerr := m.Run(until); rerr != nil {
				return newRunError(m, threads, rerr)
			}
			return nil
		}
		// Step in host-side chunks so live sim-cycle counters advance
		// during the run. The event sequence inside each chunk is exactly
		// what one big Run would execute, so results are unchanged.
		const chunk = 100_000
		for {
			now := m.Now()
			if now >= until {
				return nil
			}
			next := now + chunk
			if next > until {
				next = until
			}
			rerr := m.Run(next)
			o.Progress.AddSimCycles(m.Now() - now)
			o.Progress.ObserveShards(m.ShardStats())
			if rerr != nil {
				return newRunError(m, threads, rerr)
			}
		}
	}
	if err := step(warm); err != nil {
		return res, err
	}
	start := m.Stats()
	startCounts := append([]uint64(nil), counts...)

	var series []Sample
	if o.Samples > 0 {
		prev, prevOps := start, total(counts)
		chunk := window / uint64(o.Samples)
		for s := 0; s < o.Samples; s++ {
			end := warm + chunk*uint64(s+1)
			if s == o.Samples-1 {
				end = warm + window
			}
			if err := step(end); err != nil {
				return res, err
			}
			snap, ops := m.Stats(), total(counts)
			series = append(series, Sample{EndCycle: end, Ops: ops - prevOps, Stats: snap.Sub(prev)})
			prev, prevOps = snap, ops
		}
	} else {
		if err := step(warm + window); err != nil {
			return res, err
		}
	}
	w := m.Stats().Sub(start)
	var ops, minT, maxT uint64
	minT = ^uint64(0)
	for i := range counts {
		d := counts[i] - startCounts[i]
		ops += d
		if d < minT {
			minT = d
		}
		if d > maxT {
			maxT = d
		}
	}
	if rec != nil {
		rec.Finish(m.Now())
	}
	m.Stop()
	if ss := m.ShardStats(); ss != nil {
		recordShardSample(ss)
		o.Progress.ObserveShards(ss)
	}
	if chk != nil {
		chk.CheckNow()
		if cerr := chk.Err(); cerr != nil {
			return res, newRunError(m, threads, cerr)
		}
	}
	r := summarize(m.Config(), threads, ops, w)
	r.Faults = m.FaultStats()
	if maxT > 0 {
		r.Fairness = float64(minT) / float64(maxT)
	}
	r.Series = series
	if rec != nil {
		r.OpLatency = summaryOf(&rec.OpLatency)
		r.LeaseHold = summaryOf(&rec.LeaseHold)
		r.ProbeDefer = summaryOf(&rec.ProbeDefer)
		r.DirQueue = summaryOf(&rec.DirQueue)
		if spans != nil {
			st := spans.Stats()
			sum := st.Summary()
			r.Txns = &sum
		}
		if ledger != nil {
			sum := ledger.Summary(LedgerTopN)
			r.LeaseLedger = &sum
		}
	}
	return r, nil
}

// LedgerTopN is how many lines the ledger's top-wasted and top-deferral
// rankings carry in Result.LeaseLedger and JSON reports.
const LedgerTopN = 10

func summaryOf(h *telemetry.Hist) *telemetry.Summary {
	s := h.Summary()
	return &s
}

func total(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

func summarize(cfg machine.Config, threads int, ops uint64, w machine.Stats) Result {
	r := Result{Threads: uint64(threads), Ops: ops, Cycles: w.Cycles, Window: w}
	if w.Cycles == 0 || ops == 0 {
		return r
	}
	seconds := float64(w.Cycles) / float64(cfg.ClockHz)
	r.MopsPerSec = float64(ops) / seconds / 1e6
	r.NJPerOp = w.EnergyNJ(cfg.Energy) / float64(ops)
	r.MissesPerOp = float64(w.L1Misses) / float64(ops)
	r.MsgsPerOp = float64(w.TotalMsgs()) / float64(ops)
	r.CASFailsPerOp = float64(w.CASFailures) / float64(ops)
	return r
}

// classify maps a failure cause to a short reason tag for RunError.
func classify(err error) string {
	var (
		ie *invariant.Error
		pv *machine.ProtocolViolationError
		de *sim.DeadlockError
		se *sim.StallError
		pe *sim.PanicError
	)
	switch {
	case errors.As(err, &ie):
		return "invariant"
	case errors.As(err, &pv):
		return "protocol"
	case errors.As(err, &de):
		return "deadlock"
	case errors.As(err, &se):
		return "livelock"
	case errors.As(err, &pe):
		return "panic"
	}
	return "error"
}

func toError(r interface{}) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", r)
}

// newRunError converts a failure cause into a RunError with a machine
// state dump. Safe with m == nil (failure before construction).
func newRunError(m *machine.Machine, threads int, cause error) *RunError {
	re := &RunError{Threads: threads, Reason: classify(cause), Cause: cause, Detail: cause.Error()}
	if m != nil {
		re.Cycle = m.Now()
		re.Dump = m.DumpState()
	}
	return re
}

// DefaultCycleBudget bounds RunToCompletion when the caller passes
// budget 0: generous for every shipped experiment, but finite, so a
// non-terminating workload becomes a reported failure instead of a hang.
const DefaultCycleBudget uint64 = 500_000_000

// RunToCompletion runs a fixed-work program (e.g. Pagerank) under a cycle
// budget and reports the total cycles it took plus the stats. A run that
// deadlocks, panics, or exhausts the budget returns a *RunError (the
// cycles and stats reflect the state at failure).
func RunToCompletion(cfg machine.Config, threads int, budget uint64,
	build func(d *machine.Direct) func(tid int, c *machine.Ctx)) (cycles uint64, stats machine.Stats, err error) {

	if budget == 0 {
		budget = DefaultCycleBudget
	}
	var m *machine.Machine
	defer func() {
		if r := recover(); r != nil {
			err = newRunError(m, threads, toError(r))
			if m != nil {
				cycles, stats = m.Now(), m.Stats()
				m.Stop()
			}
		}
	}()
	m = machine.New(cfg)
	body := build(m.Direct())
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) { body(i, c) })
	}
	if rerr := m.Run(budget); rerr != nil {
		return m.Now(), m.Stats(), newRunError(m, threads, rerr)
	}
	d := m.DumpState()
	for _, c := range d.Cores {
		if !c.Done {
			re := &RunError{Threads: threads, Cycle: m.Now(), Reason: "budget",
				Detail: fmt.Sprintf("cycle budget %d exhausted before completion", budget), Dump: d}
			re.Cause = errors.New(re.Detail)
			m.Stop()
			return m.Now(), m.Stats(), re
		}
	}
	return m.Now(), m.Stats(), nil
}
