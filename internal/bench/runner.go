// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§7): workload generators, thread
// sweeps, and text-table reporters. See DESIGN.md's experiment index for
// the paper-to-experiment mapping.
package bench

import (
	"fmt"

	"leaserelease/internal/machine"
)

// OpFunc performs one data structure operation on behalf of thread tid.
type OpFunc func(tid int, c *machine.Ctx)

// Result summarizes one measurement window.
type Result struct {
	Threads uint64
	Ops     uint64
	Cycles  uint64
	Window  machine.Stats

	MopsPerSec    float64 // million operations per wall-clock second at ClockHz
	NJPerOp       float64
	MissesPerOp   float64
	MsgsPerOp     float64
	CASFailsPerOp float64
	AbortsPerOp   float64 // filled by STM workloads

	// Fairness is minOps/maxOps across threads in the window (1 = perfect;
	// 0 = some thread starved). Lease queueing tends to raise it.
	Fairness float64
}

// Throughput runs a standard throughput benchmark: build the structure,
// spawn `threads` workers looping op, warm up, then measure a window.
// Optional hooks run on the freshly built machine (e.g. to install a
// tracer) before any thread is spawned.
func Throughput(cfg machine.Config, threads int, warm, window uint64,
	build func(d *machine.Direct) OpFunc, hooks ...func(*machine.Machine)) Result {

	m := machine.New(cfg)
	for _, h := range hooks {
		h(m)
	}
	op := build(m.Direct())
	counts := make([]uint64, threads)
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) {
			for {
				op(i, c)
				counts[i]++
			}
		})
	}
	mustRun(m, warm)
	start := m.Stats()
	startCounts := append([]uint64(nil), counts...)
	mustRun(m, warm+window)
	w := m.Stats().Sub(start)
	var ops, minT, maxT uint64
	minT = ^uint64(0)
	for i := range counts {
		d := counts[i] - startCounts[i]
		ops += d
		if d < minT {
			minT = d
		}
		if d > maxT {
			maxT = d
		}
	}
	m.Stop()
	r := summarize(m.Config(), threads, ops, w)
	if maxT > 0 {
		r.Fairness = float64(minT) / float64(maxT)
	}
	return r
}

func summarize(cfg machine.Config, threads int, ops uint64, w machine.Stats) Result {
	r := Result{Threads: uint64(threads), Ops: ops, Cycles: w.Cycles, Window: w}
	if w.Cycles == 0 || ops == 0 {
		return r
	}
	seconds := float64(w.Cycles) / float64(cfg.ClockHz)
	r.MopsPerSec = float64(ops) / seconds / 1e6
	r.NJPerOp = w.EnergyNJ(cfg.Energy) / float64(ops)
	r.MissesPerOp = float64(w.L1Misses) / float64(ops)
	r.MsgsPerOp = float64(w.TotalMsgs()) / float64(ops)
	r.CASFailsPerOp = float64(w.CASFailures) / float64(ops)
	return r
}

func sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

func mustRun(m *machine.Machine, until uint64) {
	if err := m.Run(until); err != nil {
		panic(fmt.Sprintf("bench: simulated deadlock: %v", err))
	}
}

// RunToCompletion runs a fixed-work program (e.g. Pagerank) and reports
// the total cycles it took plus the stats.
func RunToCompletion(cfg machine.Config, threads int,
	build func(d *machine.Direct) func(tid int, c *machine.Ctx)) (uint64, machine.Stats) {

	m := machine.New(cfg)
	body := build(m.Direct())
	for i := 0; i < threads; i++ {
		i := i
		m.Spawn(0, func(c *machine.Ctx) { body(i, c) })
	}
	if err := m.Drain(); err != nil {
		panic(fmt.Sprintf("bench: simulated deadlock: %v", err))
	}
	return m.Now(), m.Stats()
}
