package bench

import (
	"fmt"
	"io"

	"leaserelease/internal/coherence"
	"leaserelease/internal/ds"
)

// This file implements the protocol-compare experiment: the headline
// result the pluggable-protocol subsystem exists to produce. The paper
// evaluates lease/release on a single directory-MSI substrate, leaving
// open how much of the benefit is protocol-specific; here the same
// contended workload runs under MSI and under Tardis timestamp coherence
// with identical seeds, so the lease-vs-backoff speedup can be read as a
// function of the underlying protocol. Tardis's read reservations already
// behave like hardware leases (rts extension instead of invalidation), so
// the interesting question is how much headroom an explicit lease adds on
// top — versus on MSI, where deferral is the only write-side protection.

// protoHalf is one protocol's set of sweep cells, one cellSet per thread
// count (in Params.Threads order).
type protoCells struct {
	name  string
	cells []protoCellSet
}

type protoCellSet struct {
	base    *Future[Result] // plain Treiber stack
	backoff *Future[Result] // tuned-backoff stack (best software rival)
	lease   *Future[Result] // leased stack
}

func runProtocolCompare(w io.Writer, p Params) {
	halves := make([]protoCells, 0, 2)
	for _, proto := range coherence.Protocols() {
		pp := p
		pp.Protocol = protocolTag(proto) // "" for MSI: cells match other sweeps exactly
		if p.Exp != "" {
			pp.Exp = p.Exp + "/" + proto
		}
		h := protoCells{name: proto}
		for _, n := range p.Threads {
			h.cells = append(h.cells, protoCellSet{
				base: pp.cell(pp.cfgFor(n), n, StackWorkload(ds.StackOptions{})),
				backoff: pp.cell(pp.cfgFor(n), n,
					StackWorkload(ds.StackOptions{Backoff: ds.Backoff{Min: 64, Max: 64 * uint64(n)}})),
				lease: pp.mcell(pp.cfgFor(n), n, StackWorkload(ds.StackOptions{Lease: LeaseTime})),
			})
		}
		halves = append(halves, h)
	}

	fmt.Fprintln(w, "lease vs tuned backoff on the Treiber stack, per coherence protocol")
	fmt.Fprintln(w, "(identical seeds and contention; speedup = lease Mops / backoff Mops):")
	t := NewTable("threads",
		"msi backoff", "msi lease", "msi speedup",
		"tardis backoff", "tardis lease", "tardis speedup")
	for i, n := range p.Threads {
		row := []interface{}{n}
		for _, h := range halves {
			bo, le := h.cells[i].backoff.Get(), h.cells[i].lease.Get()
			row = append(row, bo.MopsPerSec, le.MopsPerSec, ratio(le.MopsPerSec, bo.MopsPerSec))
		}
		t.Row(row...)
	}
	t.Print(w)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "lease benefit over the unprotected stack, per protocol:")
	bt := NewTable("threads", "msi base", "msi lease", "msi speedup",
		"tardis base", "tardis lease", "tardis speedup")
	for i, n := range p.Threads {
		row := []interface{}{n}
		for _, h := range halves {
			base, le := h.cells[i].base.Get(), h.cells[i].lease.Get()
			row = append(row, base.MopsPerSec, le.MopsPerSec, ratio(le.MopsPerSec, base.MopsPerSec))
		}
		bt.Row(row...)
	}
	bt.Print(w)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "coherence behavior of the unprotected stack (per op):")
	fmt.Fprintln(w, "(readers take shared copies here, so the protocols diverge: MSI pays")
	fmt.Fprintln(w, " invalidation fan-out on every write, Tardis lets reservations expire")
	fmt.Fprintln(w, " silently — renewals are tag-only re-reads, rts-jumps are writes that")
	fmt.Fprintln(w, " leapt a live reservation instead of invalidating it)")
	ct := NewTable("threads", "msi msgs/op", "msi inval/op",
		"tardis msgs/op", "tardis renew/op", "tardis rtsjump/op")
	for i, n := range p.Threads {
		msi, trd := halves[0].cells[i].base.Get(), halves[1].cells[i].base.Get()
		ct.Row(n, msi.MsgsPerOp, perOp(msi.Window.Msgs[coherence.MsgInval], msi.Ops),
			trd.MsgsPerOp, perOp(trd.Window.Renewals, trd.Ops),
			perOp(trd.Window.RTSJumps, trd.Ops))
	}
	ct.Print(w)
}

// perOp renders a counter as a per-operation rate.
func perOp(n, ops uint64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(n) / float64(ops)
}
