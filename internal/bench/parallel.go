package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the parallel experiment scheduler: a fixed set of host worker
// goroutines executing independent sweep cells. Every cell owns a private
// machine.Machine (and with it a private sim.Engine), so cells share no
// simulated state and each remains bit-for-bit deterministic; results are
// collected per cell and emitted in the original serial order, which makes
// sweep output byte-identical regardless of the worker count.
//
// A nil *Pool — and a pool of one worker — runs every cell inline on the
// submitting goroutine, reproducing the serial harness exactly.
type Pool struct {
	queue   chan func()
	wg      sync.WaitGroup
	workers int
	running atomic.Int32 // workers currently executing a cell
}

// NewPool starts a pool of the given number of workers; workers <= 0 means
// GOMAXPROCS. A single-worker pool returns nil (serial inline execution).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return nil
	}
	p := &Pool{queue: make(chan func(), workers), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.queue {
				p.running.Add(1)
				f()
				p.running.Add(-1)
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count (1 for a nil/serial pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Running returns how many workers are currently executing a cell.
// Host-side introspection only; always 0 for a nil pool.
func (p *Pool) Running() int {
	if p == nil {
		return 0
	}
	return int(p.running.Load())
}

// Close stops the workers after all submitted cells have finished. Safe on
// a nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	close(p.queue)
	p.wg.Wait()
}

// submit enqueues one cell. On a nil pool the cell runs inline, so a
// serial run executes cells in exactly the submission order.
func (p *Pool) submit(f func()) {
	if p == nil {
		f()
		return
	}
	p.queue <- f
}

// Future is the pending result of one submitted cell.
type Future[T any] struct {
	done chan struct{}
	v    T
}

// Go submits f as one cell on the pool and returns its future. Cells must
// be independent: submitting from a cell (or calling Get before all Go
// calls were issued from the orchestrating goroutine) can starve the
// queue. Experiments submit every cell of a sweep first and then Get them
// in row order.
func Go[T any](p *Pool, f func() T) *Future[T] {
	fu := &Future[T]{done: make(chan struct{})}
	p.submit(func() {
		fu.v = f()
		close(fu.done)
	})
	return fu
}

// Get blocks until the cell has run and returns its value. Get may be
// called any number of times.
func (f *Future[T]) Get() T {
	<-f.done
	return f.v
}
