package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"leaserelease/internal/telemetry"
)

func historyRep(threads int, seed uint64, mops float64, p99 uint64) Report {
	return Report{
		DS: "counter", Threads: threads, Lease: true, Seed: seed,
		Ops: 1000, MopsPerSec: mops, MsgsPerOp: 4.5,
		OpLatency: &telemetry.Summary{Count: 1000, P50: 120, P99: p99},
		LeaseLedger: &LedgerReport{LedgerTotals: telemetry.LedgerTotals{
			Leases: 50, Efficiency: 0.8, Amortization: 3.2, DeferInflictedCycles: 900,
		}},
	}
}

// AppendHistory/ReadHistory round-trip: two appends accumulate in order,
// keys carry the full configuration, and ledger headline metrics survive.
func TestHistoryAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1_700_000_000, 0)

	first, err := AppendHistory(dir, "abc1234", "baseline", []Report{
		historyRep(4, 1, 10.0, 500),
		historyRep(8, 1, 9.0, 650),
	}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || first[0].Key != "counter/t4/lease/s1" {
		t.Fatalf("first append = %+v", first)
	}
	if _, err := AppendHistory(dir, "def5678", "", []Report{
		historyRep(4, 1, 11.0, 480),
	}, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries, want 3", len(entries))
	}
	e := entries[2]
	if e.Key != "counter/t4/lease/s1" || e.GitSHA != "def5678" ||
		e.MopsPerSec != 11.0 || e.P99 != 480 ||
		e.LeaseEfficiency != 0.8 || e.DeferInflicted != 900 {
		t.Errorf("last entry = %+v", e)
	}
	if entries[0].Note != "baseline" || entries[0].TimeUnix != t0.Unix() {
		t.Errorf("first entry lost note/time: %+v", entries[0])
	}

	keys, byKey := GroupHistory(entries)
	if len(keys) != 2 || keys[0] != "counter/t4/lease/s1" || keys[1] != "counter/t8/lease/s1" {
		t.Fatalf("grouped keys = %v", keys)
	}
	if g := byKey["counter/t4/lease/s1"]; len(g) != 2 || g[0].MopsPerSec != 10.0 || g[1].MopsPerSec != 11.0 {
		t.Errorf("t4 group out of append order: %+v", g)
	}
}

// A missing store reads as empty, so `leasebench report` degrades to a
// no-trends report rather than failing.
func TestHistoryMissingStore(t *testing.T) {
	entries, err := ReadHistory(t.TempDir())
	if err != nil || entries != nil {
		t.Fatalf("missing store = (%v, %v), want (nil, nil)", entries, err)
	}
}

// The HTML report is a single self-contained document: sweep table for
// the current run, ledger rankings, and a trend section once a key has
// two recorded runs — all inline, no external asset references.
func TestWriteHTMLReport(t *testing.T) {
	cur := historyRep(4, 1, 11.0, 480)
	cur.OpLatency.Buckets = []telemetry.HistBucket{{Lo: 64, Count: 900}, {Lo: 128, Count: 100}}
	cur.LeaseLedger.TopWasted = []LedgerRow{{
		LedgerLineSummary: telemetry.LedgerLineSummary{
			Line: "0x1c0", Leases: 50, GrantedCycles: 5000, UsedCycles: 4000,
			UnusedCycles: 1000, WastedCycles: 1000, Efficiency: 0.8, Amortization: 3.2,
		},
		HotScore: 77,
	}}
	history := []HistoryEntry{
		{Key: "counter/t4/lease/s1", GitSHA: "abc1234", MopsPerSec: 10.0, P99: 500, TimeUnix: 1},
		{Key: "counter/t4/lease/s1", GitSHA: "def5678", MopsPerSec: 11.0, P99: 480, TimeUnix: 2},
		{Key: "counter/t8/lease/s1", GitSHA: "abc1234", MopsPerSec: 9.0, P99: 650, TimeUnix: 1},
	}

	var buf bytes.Buffer
	if err := WriteHTMLReport(&buf, []Report{cur}, history, "def5678", time.Unix(3, 0)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!doctype html", "counter/t4/lease/s1", // sweep row
		"svg class=\"spark\"",                                 // histogram sparkline
		"Lease ledger", "0x1c0", "Top lines by wasted cycles", // ledger section
		"Cross-run trends", "svg class=\"trend\"", // trend section (2 runs on t4 key)
		"10.000 &rarr; 11.000", "&#43;10.0%",
		"revision <code>def5678</code>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, banned := range []string{"<script src", "<link", "http://", "https://"} {
		if strings.Contains(out, banned) {
			t.Errorf("report references external assets: found %q", banned)
		}
	}

	// One history run per key: no trend lines, but the hint and the
	// latest-runs fallback (no current reports) render.
	buf.Reset()
	if err := WriteHTMLReport(&buf, nil, history[2:], "", time.Unix(3, 0)); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "Latest recorded runs") || !strings.Contains(out, "Fewer than two recorded runs") {
		t.Errorf("fallback report missing latest-runs table or trend hint:\n%s", out)
	}
	if strings.Contains(out, "svg class=\"trend\"") {
		t.Error("trend SVG rendered with a single run per key")
	}
}

// Compacted histogram buckets render sparklines identically to verbose
// buckets — the report accepts either JSON form.
func TestHTMLReportCompactBuckets(t *testing.T) {
	verbose := historyRep(4, 1, 11.0, 480)
	verbose.OpLatency.Buckets = []telemetry.HistBucket{{Lo: 64, Count: 900}, {Lo: 128, Count: 100}}
	compact := historyRep(4, 1, 11.0, 480)
	compact.OpLatency.CompactBuckets = [][2]uint64{{64, 900}, {128, 100}}

	render := func(r Report) string {
		var buf bytes.Buffer
		if err := WriteHTMLReport(&buf, []Report{r}, nil, "", time.Unix(3, 0)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render(verbose) != render(compact) {
		t.Error("verbose and compact buckets render different reports")
	}
}
