package bench

import (
	"testing"

	"leaserelease/internal/machine"
)

// benchCounterRun measures the end-to-end host cost of simulating a
// contended counter — the paper's most handoff-dense workload, so the
// number tracks the kernel's park/wake and event-dispatch speed rather
// than any single micro-path. The custom metric is simulated cycles per
// host second: the figure that decides how long a full sweep takes.
func benchCounterRun(b *testing.B, kind CounterKind, threads int) {
	cfg := machine.DefaultConfig(threads)
	cfg.Seed = 3
	build := CounterWorkload(kind)
	const warm, window = 20_000, 200_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Throughput(cfg, threads, warm, window, build)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(float64(b.N)*(warm+window)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkHostContendedCounter8(b *testing.B) {
	benchCounterRun(b, CounterTTS, 8)
}

func BenchmarkHostContendedCounterLeased8(b *testing.B) {
	benchCounterRun(b, CounterLeasedTTS, 8)
}
