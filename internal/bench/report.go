package bench

import (
	"fmt"

	"leaserelease/internal/coherence"
	"leaserelease/internal/machine"
	"leaserelease/internal/sim"
	"leaserelease/internal/telemetry"
)

// Report is the machine-readable summary of one run, as emitted by
// `leasesim -json`. Field order and types are stable: for a fixed seed
// and configuration the marshaled report is byte-for-byte reproducible.
type Report struct {
	DS           string `json:"ds"`
	Threads      int    `json:"threads"`
	Lease        bool   `json:"lease"`
	Seed         uint64 `json:"seed"`
	WarmCycles   uint64 `json:"warm_cycles"`
	WindowCycles uint64 `json:"window_cycles"`

	// FaultProfile is the compact fault-schedule identifier
	// (faults.Config.Profile) of a fault-injected run; empty — and
	// omitted, keeping clean reports byte-identical — otherwise. The
	// history store folds it into the grouping key so faulted runs get
	// their own trend lines.
	FaultProfile string `json:"fault_profile,omitempty"`

	// Protocol names the coherence protocol backend of a non-default run
	// ("tardis"); empty — and omitted, keeping MSI reports byte-identical
	// — for the default directory MSI. The history store folds it into
	// the grouping key so per-protocol runs trend separately.
	Protocol string `json:"protocol,omitempty"`

	Ops           uint64  `json:"ops"`
	MopsPerSec    float64 `json:"mops_per_sec"`
	NJPerOp       float64 `json:"nj_per_op"`
	MissesPerOp   float64 `json:"l1_misses_per_op"`
	MsgsPerOp     float64 `json:"msgs_per_op"`
	CASFailsPerOp float64 `json:"cas_fails_per_op"`
	Fairness      float64 `json:"fairness"`
	Aborts        uint64  `json:"tl2_aborts,omitempty"`

	OpLatency  *telemetry.Summary `json:"op_latency_cycles,omitempty"`
	LeaseHold  *telemetry.Summary `json:"lease_hold_cycles,omitempty"`
	ProbeDefer *telemetry.Summary `json:"probe_defer_cycles,omitempty"`
	DirQueue   *telemetry.Summary `json:"dir_queue_occupancy,omitempty"`

	// Txns is the coherence-transaction cycle accounting (span tracing).
	Txns *telemetry.TxnSummary `json:"txn_accounting,omitempty"`

	// LeaseLedger is the lease-efficiency accounting (-ledger), with the
	// ranked lines joined against the hot-line contention profile.
	LeaseLedger *LedgerReport `json:"lease_ledger,omitempty"`

	Counters Counters     `json:"counters"`
	HotLines []HotLineRow `json:"hot_lines,omitempty"`
	Series   []Sample     `json:"series,omitempty"`

	TimelineFile string `json:"timeline_file,omitempty"`

	// ShardDowngrade is the reason a requested -shards count was
	// downgraded to the sequential kernel (empty — and omitted — when the
	// request was granted or no sharding was requested). ShardStats is
	// the parallel executor's self-observability snapshot when the run
	// actually sharded. Both describe the host-side execution strategy,
	// never simulated results, so they are excluded from byte-identity
	// comparisons across shard counts.
	ShardDowngrade string           `json:"shard_downgrade,omitempty"`
	ShardStats     *sim.EngineStats `json:"shard_stats,omitempty"`

	// Error is set when the run failed (see Result.Err); the metric
	// fields above are zero then. Omitted on success, so successful
	// reports marshal byte-for-byte as before.
	Error string `json:"error,omitempty"`
}

// Counters is machine.Stats with JSON-friendly names and messages broken
// out per kind.
type Counters struct {
	Cycles              uint64            `json:"cycles"`
	L1Hits              uint64            `json:"l1_hits"`
	L1Misses            uint64            `json:"l1_misses"`
	Msgs                map[string]uint64 `json:"msgs"`
	L2Accesses          uint64            `json:"l2_accesses"`
	DRAMAccesses        uint64            `json:"dram_accesses"`
	Leases              uint64            `json:"leases"`
	MultiLeases         uint64            `json:"multi_leases"`
	VoluntaryReleases   uint64            `json:"voluntary_releases"`
	InvoluntaryReleases uint64            `json:"involuntary_releases"`
	EvictedLeases       uint64            `json:"evicted_leases"`
	ForcedReleases      uint64            `json:"forced_releases"`
	BrokenLeases        uint64            `json:"broken_leases"`
	IgnoredLeases       uint64            `json:"ignored_leases"`
	DeferredProbes      uint64            `json:"deferred_probes"`
	CASSuccesses        uint64            `json:"cas_successes"`
	CASFailures         uint64            `json:"cas_failures"`
	MaxDirQueue         int               `json:"max_dir_queue"`

	// Preemption-fault and adaptive-controller counters; omitted when
	// zero so clean-run reports stay byte-identical to older builds.
	Preemptions     uint64 `json:"preemptions,omitempty"`
	PreemptedCycles uint64 `json:"preempted_cycles,omitempty"`
	CtrlClamps      uint64 `json:"ctrl_clamps,omitempty"`
	CtrlShrinks     uint64 `json:"ctrl_shrinks,omitempty"`
	CtrlGrows       uint64 `json:"ctrl_grows,omitempty"`

	// Timestamp-protocol counters (Tardis); zero and omitted under MSI.
	Renewals uint64 `json:"renewals,omitempty"`
	RTSJumps uint64 `json:"rts_jumps,omitempty"`
}

// CountersOf converts a Stats snapshot to report form.
func CountersOf(s machine.Stats) Counters {
	msgs := make(map[string]uint64, len(s.Msgs))
	for k, n := range s.Msgs {
		msgs[coherence.MsgKind(k).String()] = n
	}
	return Counters{
		Cycles: s.Cycles, L1Hits: s.L1Hits, L1Misses: s.L1Misses,
		Msgs: msgs, L2Accesses: s.L2Accesses, DRAMAccesses: s.DRAMAccesses,
		Leases: s.Leases, MultiLeases: s.MultiLeases,
		VoluntaryReleases: s.VoluntaryReleases, InvoluntaryReleases: s.InvoluntaryReleases,
		EvictedLeases: s.EvictedLeases, ForcedReleases: s.ForcedReleases,
		BrokenLeases: s.BrokenLeases, IgnoredLeases: s.IgnoredLeases,
		DeferredProbes: s.DeferredProbes,
		CASSuccesses:   s.CASSuccesses, CASFailures: s.CASFailures,
		MaxDirQueue: s.MaxDirQueue,
		Preemptions: s.Preemptions, PreemptedCycles: s.PreemptedCycles,
		CtrlClamps: s.CtrlClamps, CtrlShrinks: s.CtrlShrinks, CtrlGrows: s.CtrlGrows,
		Renewals: s.Renewals, RTSJumps: s.RTSJumps,
	}
}

// HotLineRow is one line of the ranked hot-line table, with the line
// address rendered in hex.
type HotLineRow struct {
	Line           string `json:"line"`
	Score          uint64 `json:"score"`
	Msgs           uint64 `json:"msgs"`
	Invals         uint64 `json:"invalidations"`
	Deferred       uint64 `json:"deferred_probes"`
	DeferredCycles uint64 `json:"deferred_cycles"`
	Leases         uint64 `json:"leases"`
	Breaks         uint64 `json:"broken_leases"`
	Evictions      uint64 `json:"l1_evictions"`
	MaxQueue       uint64 `json:"max_dir_queue"`
}

// HotLineRows renders the recorder's top-k contended lines.
func HotLineRows(rec *telemetry.Recorder, k int) []HotLineRow {
	top := rec.Lines.Top(k)
	rows := make([]HotLineRow, 0, len(top))
	for i := range top {
		s := &top[i]
		rows = append(rows, HotLineRow{
			Line:  fmt.Sprintf("%#x", uint64(s.Line)),
			Score: s.Score(), Msgs: s.Msgs, Invals: s.Invals,
			Deferred: s.Deferred, DeferredCycles: s.DeferredCycles,
			Leases: s.Leases, Breaks: s.Breaks,
			Evictions: s.Evictions, MaxQueue: s.MaxQueue,
		})
	}
	return rows
}

// LedgerRow is one ranked ledger line joined with its hot-line profile
// counters: lease efficiency alongside the contention that motivated (or
// should motivate) the lease.
type LedgerRow struct {
	telemetry.LedgerLineSummary
	HotScore uint64 `json:"hotline_score"`
	Msgs     uint64 `json:"msgs"`
	Invals   uint64 `json:"invalidations"`
}

// LedgerReport is the lease-ledger section of a run report: run totals
// plus the two top-N rankings, each row joined with the hot-line profile.
type LedgerReport struct {
	telemetry.LedgerTotals
	TopWasted         []LedgerRow `json:"top_wasted,omitempty"`
	TopDeferInflicted []LedgerRow `json:"top_defer_inflicted,omitempty"`
}

// LedgerRows joins ranked ledger lines with the recorder's hot-line
// counters (zero counters when the profiler never saw the line).
func LedgerRows(lines []telemetry.LedgerLineSummary, rec *telemetry.Recorder) []LedgerRow {
	rows := make([]LedgerRow, 0, len(lines))
	for _, ls := range lines {
		row := LedgerRow{LedgerLineSummary: ls}
		if rec != nil && rec.Lines.Len() > 0 {
			s := rec.Lines.Get(ls.Addr)
			row.HotScore, row.Msgs, row.Invals = s.Score(), s.Msgs, s.Invals
		}
		rows = append(rows, row)
	}
	return rows
}

// BuildLedgerReport converts a run's ledger summary to report form,
// joining against rec's hot-line profile. Nil in, nil out.
func BuildLedgerReport(sum *telemetry.LedgerSummary, rec *telemetry.Recorder) *LedgerReport {
	if sum == nil {
		return nil
	}
	return &LedgerReport{
		LedgerTotals:      sum.LedgerTotals,
		TopWasted:         LedgerRows(sum.TopWasted, rec),
		TopDeferInflicted: LedgerRows(sum.TopDeferInflicted, rec),
	}
}

// protocolTag normalizes a config's protocol for report/history purposes:
// the default MSI (under either spelling) is the empty tag, so existing
// reports and history keys are unchanged.
func protocolTag(p string) string {
	if p == coherence.ProtocolMSI {
		return ""
	}
	return p
}

// BuildReport assembles the JSON report for one telemetry-enabled run.
func BuildReport(ds string, threads int, lease bool, cfg machine.Config,
	warm, window uint64, r Result, rec *telemetry.Recorder, hotK int) Report {

	rep := Report{
		DS: ds, Threads: threads, Lease: lease, Seed: cfg.Seed,
		WarmCycles: warm, WindowCycles: window,
		FaultProfile: cfg.Faults.Profile(),
		Protocol:     protocolTag(cfg.Protocol),
		Ops:          r.Ops, MopsPerSec: r.MopsPerSec, NJPerOp: r.NJPerOp,
		MissesPerOp: r.MissesPerOp, MsgsPerOp: r.MsgsPerOp,
		CASFailsPerOp: r.CASFailsPerOp, Fairness: r.Fairness,
		OpLatency: r.OpLatency, LeaseHold: r.LeaseHold,
		ProbeDefer: r.ProbeDefer, DirQueue: r.DirQueue,
		Txns:     r.Txns,
		Counters: CountersOf(r.Window), Series: r.Series,
	}
	if rec != nil && hotK > 0 {
		rep.HotLines = HotLineRows(rec, hotK)
	}
	rep.LeaseLedger = BuildLedgerReport(r.LeaseLedger, rec)
	if r.Err != nil {
		rep.Error = r.Err.Error()
	}
	return rep
}

// CompactReportBuckets rewrites every histogram digest in rep to the
// compacted [lo, count] bucket pair form (`leasesim -compactbuckets`).
// The default path never calls this, so default reports stay
// byte-identical.
func CompactReportBuckets(rep *Report) {
	for _, s := range []*telemetry.Summary{rep.OpLatency, rep.LeaseHold, rep.ProbeDefer, rep.DirQueue} {
		if s != nil {
			s.Compact()
		}
	}
}
