package bench

import (
	"fmt"
	"html/template"
	"io"
	"strings"
	"time"

	"leaserelease/internal/telemetry"
)

// This file renders the `leasebench report` output: a single self-
// contained static HTML file (inline CSS, inline SVG, no external assets)
// with the latest sweep table, per-run histogram sparklines, the lease-
// ledger top-N rankings, and cross-run trend lines from the history store.

// htmlReportData is the template input assembled by WriteHTMLReport.
type htmlReportData struct {
	Generated string
	GitSHA    string
	Current   []Report
	Latest    []HistoryEntry // newest entry per key (sweep table fallback)
	Trends    []trendData    // keys with >= 2 history entries
	History   int            // total history entries read
}

// trendData is one key's cross-run trend.
type trendData struct {
	Key     string
	Entries []HistoryEntry
	First   HistoryEntry
	Last    HistoryEntry
}

// DeltaPct is the relative throughput change last-vs-first in percent.
func (t trendData) DeltaPct() float64 {
	return deltaPct(t.First.MopsPerSec, t.Last.MopsPerSec)
}

// bucketPairs normalizes either histogram bucket form to [lo, count]
// pairs for sparkline rendering.
func bucketPairs(s *telemetry.Summary) [][2]uint64 {
	if s == nil {
		return nil
	}
	if len(s.CompactBuckets) > 0 {
		return s.CompactBuckets
	}
	pairs := make([][2]uint64, 0, len(s.Buckets))
	for _, b := range s.Buckets {
		pairs = append(pairs, [2]uint64{b.Lo, b.Count})
	}
	return pairs
}

// sparklineSVG renders a histogram's occupied log2 buckets as an inline
// SVG bar strip.
func sparklineSVG(s *telemetry.Summary) template.HTML {
	pairs := bucketPairs(s)
	if len(pairs) == 0 {
		return ""
	}
	const barW, gap, h = 7, 2, 30
	var maxCount uint64
	for _, p := range pairs {
		if p[1] > maxCount {
			maxCount = p[1]
		}
	}
	var b strings.Builder
	w := len(pairs)*(barW+gap) + gap
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d" role="img">`, w, h+2)
	for i, p := range pairs {
		bh := int(float64(h) * float64(p[1]) / float64(maxCount))
		if bh < 1 {
			bh = 1
		}
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="%d" height="%d"><title>&ge;%d cycles: %d</title></rect>`,
			gap+i*(barW+gap), h+1-bh, barW, bh, p[0], p[1])
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// trendSVG renders one metric's per-run values as an inline SVG polyline
// with a dot per run.
func trendSVG(entries []HistoryEntry, value func(HistoryEntry) float64) template.HTML {
	if len(entries) < 2 {
		return ""
	}
	const h = 40
	step := 36
	if len(entries) > 16 {
		step = 580 / (len(entries) - 1)
	}
	w := (len(entries)-1)*step + 12
	lo, hi := value(entries[0]), value(entries[0])
	for _, e := range entries[1:] {
		v := value(e)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	y := func(v float64) float64 { return 4 + (float64(h)-8)*(1-(v-lo)/span) }
	var pts, dots strings.Builder
	for i, e := range entries {
		x := 6 + i*step
		v := value(e)
		fmt.Fprintf(&pts, "%d,%.1f ", x, y(v))
		label := e.GitSHA
		if label == "" {
			label = time.Unix(e.TimeUnix, 0).UTC().Format("01-02 15:04")
		}
		fmt.Fprintf(&dots, `<circle cx="%d" cy="%.1f" r="2.5"><title>%s: %.3f</title></circle>`,
			x, y(v), template.HTMLEscapeString(label), v)
	}
	return template.HTML(fmt.Sprintf(
		`<svg class="trend" width="%d" height="%d" role="img"><polyline points="%s"/>%s</svg>`,
		w, h, strings.TrimSpace(pts.String()), dots.String()))
}

var htmlReportTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"sparkline": sparklineSVG,
	"mopsTrend": func(es []HistoryEntry) template.HTML {
		return trendSVG(es, func(e HistoryEntry) float64 { return e.MopsPerSec })
	},
	"p99Trend": func(es []HistoryEntry) template.HTML {
		return trendSVG(es, func(e HistoryEntry) float64 { return float64(e.P99) })
	},
	"mode": func(lease bool) string {
		if lease {
			return "lease"
		}
		return "nolease"
	},
	"f1":  func(v float64) string { return fmt.Sprintf("%.1f", v) },
	"f3":  func(v float64) string { return fmt.Sprintf("%.3f", v) },
	"pct": func(v float64) string { return fmt.Sprintf("%+.1f%%", v) },
}).Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>lease/release run report</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 70em; padding: 0 1em; color: #1a1a2e; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; border-bottom: 1px solid #ccd; padding-bottom: .2em; }
h3 { font-size: 1em; margin-bottom: .3em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { padding: .25em .7em; text-align: right; border-bottom: 1px solid #e3e3ee; font-variant-numeric: tabular-nums; }
th { background: #f2f2f8; } td:first-child, th:first-child { text-align: left; }
.meta { color: #667; } .good { color: #0a7a3c; } .bad { color: #b3262a; }
svg.spark rect { fill: #4a6fa5; } svg.trend polyline { fill: none; stroke: #4a6fa5; stroke-width: 1.5; }
svg.trend circle { fill: #1a3a6b; }
code { background: #f2f2f8; padding: 0 .25em; }
</style>
</head>
<body>
<h1>lease/release run report</h1>
<p class="meta">generated {{.Generated}}{{if .GitSHA}} at revision <code>{{.GitSHA}}</code>{{end}};
{{.History}} history entries, {{len .Trends}} trend keys.</p>

{{if .Current}}
<h2>Sweep (this run)</h2>
<table>
<tr><th>config</th><th>ops</th><th>Mops/s</th><th>nJ/op</th><th>msgs/op</th><th>miss/op</th><th>p50/p99</th><th>op-latency buckets</th></tr>
{{range .Current}}
<tr>
<td>{{.DS}}/t{{.Threads}}/{{mode .Lease}}/s{{.Seed}}{{if .Protocol}}/p{{.Protocol}}{{end}}{{if .Error}} <span class="bad">FAILED</span>{{end}}</td>
<td>{{.Ops}}</td><td>{{f3 .MopsPerSec}}</td><td>{{f1 .NJPerOp}}</td>
<td>{{f3 .MsgsPerOp}}</td><td>{{f3 .MissesPerOp}}</td>
<td>{{if .OpLatency}}{{.OpLatency.P50}}/{{.OpLatency.P99}}{{else}}-{{end}}</td>
<td>{{sparkline .OpLatency}}</td>
</tr>
{{end}}
</table>

{{range .Current}}{{if .LeaseLedger}}
<h2>Lease ledger — {{.DS}}/t{{.Threads}}/{{mode .Lease}}/s{{.Seed}}{{if .Protocol}}/p{{.Protocol}}{{end}}</h2>
<p>{{.LeaseLedger.Leases}} leases closed ({{.LeaseLedger.Expired}} expired, {{.LeaseLedger.OpenAtEnd}} open at end),
efficiency {{f3 .LeaseLedger.Efficiency}}, {{f1 .LeaseLedger.Amortization}} ops/lease,
{{.LeaseLedger.DeferInflictedCycles}} deferral cycles inflicted.</p>
{{if .LeaseLedger.TopWasted}}
<h3>Top lines by wasted cycles</h3>
<table>
<tr><th>line</th><th>leases</th><th>expired</th><th>granted</th><th>used</th><th>wasted</th><th>eff</th><th>ops/lease</th><th>defer-inflicted</th><th>hot score</th></tr>
{{range .LeaseLedger.TopWasted}}
<tr><td><code>{{.Line}}</code></td><td>{{.Leases}}</td><td>{{.Expired}}</td><td>{{.GrantedCycles}}</td><td>{{.UsedCycles}}</td>
<td>{{.WastedCycles}}</td><td>{{f3 .Efficiency}}</td><td>{{f1 .Amortization}}</td><td>{{.DeferInflictedCycles}}</td><td>{{.HotScore}}</td></tr>
{{end}}
</table>
{{end}}
{{if .LeaseLedger.TopDeferInflicted}}
<h3>Top lines by deferral inflicted</h3>
<table>
<tr><th>line</th><th>deferred txns</th><th>defer-inflicted</th><th>leases</th><th>eff</th><th>ops/lease</th><th>hot score</th></tr>
{{range .LeaseLedger.TopDeferInflicted}}
<tr><td><code>{{.Line}}</code></td><td>{{.DeferredTxns}}</td><td>{{.DeferInflictedCycles}}</td><td>{{.Leases}}</td>
<td>{{f3 .Efficiency}}</td><td>{{f1 .Amortization}}</td><td>{{.HotScore}}</td></tr>
{{end}}
</table>
{{end}}
{{end}}{{end}}
{{else if .Latest}}
<h2>Latest recorded runs</h2>
<table>
<tr><th>config</th><th>git</th><th>ops</th><th>Mops/s</th><th>msgs/op</th><th>p50/p99</th><th>lease eff</th></tr>
{{range .Latest}}
<tr><td>{{.Key}}</td><td><code>{{.GitSHA}}</code></td><td>{{.Ops}}</td><td>{{f3 .MopsPerSec}}</td>
<td>{{f3 .MsgsPerOp}}</td><td>{{.P50}}/{{.P99}}</td><td>{{f3 .LeaseEfficiency}}</td></tr>
{{end}}
</table>
{{end}}

<h2>Cross-run trends</h2>
{{if .Trends}}
<table>
<tr><th>config</th><th>runs</th><th>Mops/s (first&rarr;last)</th><th>&Delta;</th><th>Mops/s trend</th><th>p99 trend</th></tr>
{{range .Trends}}
<tr>
<td>{{.Key}}</td><td>{{len .Entries}}</td>
<td>{{f3 .First.MopsPerSec}} &rarr; {{f3 .Last.MopsPerSec}}</td>
<td class="{{if ge .DeltaPct 0.0}}good{{else}}bad{{end}}">{{pct .DeltaPct}}</td>
<td>{{mopsTrend .Entries}}</td>
<td>{{p99Trend .Entries}}</td>
</tr>
{{end}}
</table>
{{else}}
<p class="meta">Fewer than two recorded runs per configuration — run
<code>leasebench history</code> after sweeps to accumulate trend data.</p>
{{end}}
</body>
</html>
`))

// WriteHTMLReport renders the self-contained HTML report: the given
// current-run reports (sweep table, sparklines, ledger rankings) plus
// cross-run trends for every history key with at least two entries.
func WriteHTMLReport(w io.Writer, current []Report, history []HistoryEntry, sha string, now time.Time) error {
	keys, byKey := GroupHistory(history)
	data := htmlReportData{
		Generated: now.UTC().Format("2006-01-02 15:04:05 UTC"),
		GitSHA:    sha,
		Current:   current,
		History:   len(history),
	}
	for _, k := range keys {
		es := byKey[k]
		data.Latest = append(data.Latest, es[len(es)-1])
		if len(es) >= 2 {
			data.Trends = append(data.Trends, trendData{
				Key: k, Entries: es, First: es[0], Last: es[len(es)-1],
			})
		}
	}
	return htmlReportTmpl.Execute(w, data)
}
