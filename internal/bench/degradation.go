package bench

import (
	"fmt"
	"io"

	"leaserelease/internal/ds"
	"leaserelease/internal/machine"
)

// This file implements the `degradation` experiment family: throughput
// retention of contended-stack variants under deterministic core
// preemption (the robustness question the paper's fault-free evaluation
// leaves open). A preempted core simply stops issuing events for the
// drawn duration while its lease timers keep counting down in the cache
// hardware — so a preempted lease holder's leases expire involuntarily
// and victims queued behind it drain after at most MAX_LEASE_TIME,
// whereas a preempted lock holder parks every waiter for the whole
// preemption. The sweep quantifies exactly that gap, and whether the
// adaptive lease-duration controller narrows it further.

// degradationRates is the swept per-preemption-point probability
// (permille). Rate 0 leaves fault injection disabled entirely, so its
// column is byte-identical to a clean run and anchors the retention
// baseline.
var degradationRates = []int{0, 2, 5, 10}

// Preemption durations are drawn uniformly from [Min, Max]: 5-15x
// MAX_LEASE_TIME (20K). The separation matters — a preempted lease
// holder blocks its victims only until the lease deadline, while a
// preempted lock holder blocks every waiter for the whole preemption,
// so the retention gap between the variants scales with duration /
// MAX_LEASE_TIME. With durations comparable to the lease bound the gap
// vanishes (both stall victims about equally long) and the comparison
// degenerates into counting eligible preemption points. Sweep windows
// should cover many durations; use >= 10x PreemptMax (>= 3M cycles).
const (
	degradationPreemptMin = 100_000
	degradationPreemptMax = 300_000
)

// degradationCfg builds the machine config for one sweep cell. Rate 0
// keeps Faults zero so existing golden outputs are untouched; rate > 0
// sets only the preemption fields, so no other fault draws happen and
// the schedule is a pure function of (seed, core, rate).
//
// The schedule is untargeted OS jitter: every core is eligible at every
// access, like a kernel descheduling threads obliviously. (Targeted
// stalled-holder mode remains available via leasesim -preempttargeted;
// it is deliberately not used here because holder-only preemption is
// self-limiting for the lock variant — at most one core at a time is
// making progress, so at most one can be hit — which flattens the very
// curve this sweep measures.)
func (p Params) degradationCfg(n, rate int, ctrl bool) machine.Config {
	cfg := p.cfgFor(n)
	if rate > 0 {
		cfg.Faults.Enabled = true
		cfg.Faults.PreemptPermille = rate
		cfg.Faults.PreemptMin = degradationPreemptMin
		cfg.Faults.PreemptMax = degradationPreemptMax
	}
	cfg.Controller.Enable = ctrl
	return cfg
}

// degVariant is one structure variant of the degradation sweep.
type degVariant struct {
	name  string
	ctrl  bool // enable the adaptive lease-duration controller
	lease bool // lease-based (for the accounting table)
	build func(n int) func(d *machine.Direct) OpFunc
}

func degradationVariants() []degVariant {
	leased := func(int) func(d *machine.Direct) OpFunc {
		return StackWorkload(ds.StackOptions{Lease: LeaseTime})
	}
	return []degVariant{
		{"lock", false, false, func(int) func(d *machine.Direct) OpFunc {
			return LockStackWorkload()
		}},
		{"lockfree", false, false, func(int) func(d *machine.Direct) OpFunc {
			return StackWorkload(ds.StackOptions{})
		}},
		{"backoff", false, false, func(n int) func(d *machine.Direct) OpFunc {
			return StackWorkload(ds.StackOptions{Backoff: ds.Backoff{Min: 64, Max: 64 * uint64(n)}})
		}},
		{"lease", false, true, leased},
		{"lease+ctrl", true, true, leased},
	}
}

// DegradationThreads picks the sweep's single thread count: the largest
// of the params' counts, where contention (and so preemption collateral
// damage) is worst.
func DegradationThreads(p Params) int {
	n := p.Threads[0]
	for _, t := range p.Threads {
		if t > n {
			n = t
		}
	}
	return n
}

func runDegradation(w io.Writer, p Params) {
	n := DegradationThreads(p)
	variants := degradationVariants()
	top := degradationRates[len(degradationRates)-1]

	// Submit every (variant, rate) cell up front; rows are read in
	// serial order, so output bytes are pool-size independent.
	res := make([][]*Future[Result], len(variants))
	for vi, v := range variants {
		res[vi] = make([]*Future[Result], len(degradationRates))
		for ri, rate := range degradationRates {
			res[vi][ri] = p.mcell(p.degradationCfg(n, rate, v.ctrl), n, v.build(n))
		}
	}

	fmt.Fprintf(w, "degradation sweep: %d threads, preempt %d..%d cycles, rates in permille per access\n\n",
		n, degradationPreemptMin, degradationPreemptMax)

	// Table 1: absolute throughput by rate x variant.
	t := NewTable(append([]string{"preempt rate"}, variantNames(variants, " Mops/s")...)...)
	for ri, rate := range degradationRates {
		row := []interface{}{fmt.Sprintf("%d/1000", rate)}
		for vi := range variants {
			row = append(row, res[vi][ri].Get().MopsPerSec)
		}
		t.Row(row...)
	}
	t.Print(w)
	fmt.Fprintln(w)

	// Table 2: throughput retention relative to the variant's own
	// rate-0 baseline — the degradation curve proper.
	fmt.Fprintln(w, "throughput retention (% of the variant's own fault-free throughput):")
	rt := NewTable(append([]string{"preempt rate"}, variantNames(variants, " %")...)...)
	for ri, rate := range degradationRates {
		if rate == 0 {
			continue
		}
		row := []interface{}{fmt.Sprintf("%d/1000", rate)}
		for vi := range variants {
			row = append(row, fmt.Sprintf("%.1f",
				100*DegradationRetention(res[vi][0].Get(), res[vi][ri].Get())))
		}
		rt.Row(row...)
	}
	rt.Print(w)
	fmt.Fprintln(w)

	// Table 3: worst-case victim wait at the top rate — how long ops
	// stall behind a descheduled holder.
	fmt.Fprintf(w, "victim wait at the top rate (%d/1000):\n", top)
	vt := NewTable("variant", "op lat p50", "p99", "max",
		"probe-defer p99", "preemptions", "preempted cyc", "holder hits")
	for vi, v := range variants {
		r := res[vi][len(degradationRates)-1].Get()
		lat, defer99 := r.OpLatency, "-"
		if r.ProbeDefer != nil && r.ProbeDefer.Count > 0 {
			defer99 = fmt.Sprintf("%d", r.ProbeDefer.P99)
		}
		p50, p99, mx := "-", "-", "-"
		if lat != nil && lat.Count > 0 {
			p50 = fmt.Sprintf("%d", lat.P50)
			p99 = fmt.Sprintf("%d", lat.P99)
			mx = fmt.Sprintf("%d", lat.Max)
		}
		vt.Row(v.name, p50, p99, mx, defer99,
			r.Window.Preemptions, r.Window.PreemptedCycles, r.Faults.HolderPreemptions)
	}
	vt.Print(w)
	fmt.Fprintln(w)

	// Table 4: what preemption does to the lease machinery at the top
	// rate — involuntary expiries, controller activity, ledger waste.
	fmt.Fprintf(w, "lease accounting under faults (%d/1000):\n", top)
	at := NewTable("variant", "leases", "invol rel", "ctrl clamp", "ctrl shrink", "ctrl grow",
		"efficiency", "wasted cyc", "defer-inflicted cyc")
	for vi, v := range variants {
		if !v.lease {
			continue
		}
		r := res[vi][len(degradationRates)-1].Get()
		eff, wasted, inflicted := "-", "-", "-"
		if l := r.LeaseLedger; l != nil && l.Leases > 0 {
			eff = fmt.Sprintf("%.3f", l.Efficiency)
			wasted = fmt.Sprintf("%d", l.UnusedCycles+l.ExpiredIdleCycles)
			inflicted = fmt.Sprintf("%d", l.DeferInflictedCycles)
		}
		at.Row(v.name, r.Window.Leases, r.Window.InvoluntaryReleases,
			r.Window.CtrlClamps, r.Window.CtrlShrinks, r.Window.CtrlGrows,
			eff, wasted, inflicted)
	}
	at.Print(w)
}

// DegradationRetention returns faulted throughput as a fraction of the
// fault-free baseline (0 when the baseline measured nothing). Exported
// for the smoke test's lease-beats-lock assertion.
func DegradationRetention(base, faulted Result) float64 {
	if base.MopsPerSec == 0 {
		return 0
	}
	return faulted.MopsPerSec / base.MopsPerSec
}

func variantNames(vs []degVariant, suffix string) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.name + suffix
	}
	return out
}
