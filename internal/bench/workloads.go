package bench

import (
	"sync/atomic"

	"leaserelease/internal/apps/pagerank"
	"leaserelease/internal/ds"
	"leaserelease/internal/locks"
	"leaserelease/internal/machine"
	"leaserelease/internal/mem"
	"leaserelease/internal/multiqueue"
	"leaserelease/internal/stm"
)

// LeaseTime is the lease length used by all workloads, matching §7
// ("MAX_LEASE_TIME ... is set to 20K cycles").
const LeaseTime = 20000

// jitter desynchronizes op streams a little, like real-world think time.
func jitter(c *machine.Ctx) { c.Work(c.Rand().Uint64n(32)) }

// StackWorkload: 100% updates, push/pop chosen at random (Figure 2).
func StackWorkload(opt ds.StackOptions) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		s := ds.NewStack(d, opt)
		for i := 0; i < 64; i++ {
			s.Push(d, uint64(i)+1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				s.Push(c, 1)
			} else {
				s.Pop(c)
			}
			jitter(c)
		}
	}
}

// LockStackWorkload: the same Figure 2 op mix on a sequential stack
// guarded by a global TTS lock — the coarse-grained baseline whose
// throughput collapses hardest when a preempted thread parks inside the
// critical section (the degradation experiment's worst case).
func LockStackWorkload() func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		l := locks.NewTTS(d)
		s := ds.NewStack(d, ds.StackOptions{})
		for i := 0; i < 64; i++ {
			s.Push(d, uint64(i)+1)
		}
		return func(tid int, c *machine.Ctx) {
			l.Lock(c)
			if c.Rand().Intn(2) == 0 {
				s.Push(c, 1)
			} else {
				s.Pop(c)
			}
			l.Unlock(c)
			jitter(c)
		}
	}
}

// AutoStackWorkload: the plain lease-free Treiber stack run through the
// §8 automatic-lease-insertion wrapper (machine.Auto).
func AutoStackWorkload() func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		s := ds.NewStack(d, ds.StackOptions{})
		for i := 0; i < 64; i++ {
			s.Push(d, uint64(i)+1)
		}
		// Indexed by tid (one slot per core) so concurrent shards touch
		// disjoint entries — a tid-keyed map would race under -shards.
		var autos [64]*machine.Auto
		return func(tid int, c *machine.Ctx) {
			a := autos[tid]
			if a == nil {
				a = machine.NewAuto(c, LeaseTime)
				autos[tid] = a
			}
			if c.Rand().Intn(2) == 0 {
				s.Push(a, 1)
			} else {
				s.Pop(a)
			}
			jitter(c)
		}
	}
}

// FCStackWorkload: the flat-combining stack [18] under the Figure 2
// workload (the §2 "combining" software mitigation).
func FCStackWorkload(threads int) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		s := ds.NewFCStack(d, threads)
		for i := 0; i < 64; i++ {
			s.Push(d, 0, uint64(i)+1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				s.Push(c, tid, 1)
			} else {
				s.Pop(c, tid)
			}
			jitter(c)
		}
	}
}

// EliminationStackWorkload: the elimination-backoff stack under the
// Figure 2 workload (the §2 "elimination" software mitigation).
func EliminationStackWorkload() func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		s := ds.NewEliminationStack(d, 4)
		for i := 0; i < 64; i++ {
			s.Push(d, uint64(i)+1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				s.Push(c, 1)
			} else {
				s.Pop(c)
			}
			jitter(c)
		}
	}
}

// CounterKind selects the Figure 3 counter variant.
type CounterKind int

const (
	CounterTTS CounterKind = iota
	CounterLeasedTTS
	CounterTicket
	CounterCLH
)

// CounterWorkload: a contended lock protecting a counter (Figure 3 left).
func CounterWorkload(kind CounterKind) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		ctr := d.Alloc(8)
		inc := func(c *machine.Ctx) { c.Store(ctr, c.Load(ctr)+1) }
		switch kind {
		case CounterCLH:
			l := locks.NewCLH(d)
			var handles [64]*locks.CLHHandle // per-tid slots: shard-safe
			return func(tid int, c *machine.Ctx) {
				h := handles[tid]
				if h == nil {
					h = l.NewHandle(c)
					handles[tid] = h
				}
				l.Lock(c, h)
				inc(c)
				l.Unlock(c, h)
				jitter(c)
			}
		case CounterTicket:
			l := locks.NewTicket(d)
			return func(tid int, c *machine.Ctx) {
				l.Lock(c)
				inc(c)
				l.Unlock(c)
				jitter(c)
			}
		case CounterLeasedTTS:
			l := locks.NewLeased(locks.NewTTS(d), LeaseTime)
			return func(tid int, c *machine.Ctx) {
				l.Lock(c)
				inc(c)
				l.Unlock(c)
				jitter(c)
			}
		default:
			l := locks.NewTTS(d)
			return func(tid int, c *machine.Ctx) {
				l.Lock(c)
				inc(c)
				l.Unlock(c)
				jitter(c)
			}
		}
	}
}

// QueueWorkload: 100% updates, enqueue/dequeue at random (Figure 3 middle).
func QueueWorkload(mode ds.QueueLeaseMode) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		q := ds.NewQueue(d, ds.QueueOptions{Mode: mode, LeaseTime: LeaseTime})
		for i := 0; i < 64; i++ {
			q.Enqueue(d, uint64(i)+1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				q.Enqueue(c, 1)
			} else {
				q.Dequeue(c)
			}
			jitter(c)
		}
	}
}

// FCQueueWorkload: the flat-combining queue [18] under the Figure 3 queue
// workload (the optimized software comparator).
func FCQueueWorkload(threads int) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		q := ds.NewFCQueue(d, threads)
		for i := 0; i < 64; i++ {
			q.Enqueue(d, 0, uint64(i)+1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				q.Enqueue(c, tid, 1)
			} else {
				q.Dequeue(c, tid)
			}
			jitter(c)
		}
	}
}

// LCRQWorkload: the Morrison–Afek fetch&add ring queue [29] under the
// Figure 3 queue workload (the architecture-optimized comparator).
func LCRQWorkload() func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		q := ds.NewLCRQ(d, 1024)
		for i := 0; i < 64; i++ {
			q.Enqueue(d, uint64(i)+1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				q.Enqueue(c, 1)
			} else {
				q.Dequeue(c)
			}
			jitter(c)
		}
	}
}

// PQKind selects the Figure 3 priority-queue variant.
type PQKind int

const (
	PQFineLocking  PQKind = iota // Lotan–Shavit over the locking skiplist
	PQGlobalBase                 // global lock, no lease
	PQGlobalLeased               // the paper's lease variant
)

// PQWorkload: 100% updates, insert/deleteMin pairs on random keys
// (Figure 3 right).
func PQWorkload(kind PQKind, prefill int) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		var pq ds.PQ
		switch kind {
		case PQGlobalBase:
			pq = ds.NewPQGlobal(d, 0)
		case PQGlobalLeased:
			pq = ds.NewPQGlobal(d, LeaseTime)
		default:
			pq = ds.NewPQFine(d)
		}
		for i := 0; i < prefill; i++ {
			pq.Insert(d, d.Rand().Next()>>16|1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				pq.Insert(c, c.Rand().Next()>>16|1)
			} else {
				pq.DeleteMin(c)
			}
			jitter(c)
		}
	}
}

// MQWorkload: MultiQueues over 8 queues, alternating insert and deleteMin
// (Figure 4 left).
func MQWorkload(opt multiqueue.Options) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		q := multiqueue.New(d, 8, 1<<16, opt)
		for i := 0; i < 256; i++ {
			q.Insert(d, d.Rand().Next()>>16|1)
		}
		return func(tid int, c *machine.Ctx) {
			if c.Rand().Intn(2) == 0 {
				q.Insert(c, c.Rand().Next()>>16|1)
			} else {
				q.DeleteMin(c)
			}
			jitter(c)
		}
	}
}

// TL2Workload: transactions updating 2 random objects of 10 (Figure 4
// right / Figure 5 left). aborts receives the cumulative abort count.
func TL2Workload(mode stm.LeaseMode, aborts *uint64) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		tl := stm.New(d, 10, LeaseTime)
		tl.Mode = mode
		return func(tid int, c *machine.Ctx) {
			i := c.Rand().Intn(10)
			j := c.Rand().Intn(9)
			if j >= i {
				j++
			}
			atomic.AddUint64(aborts, uint64(tl.UpdatePair(c, i, j, 1)))
			jitter(c)
		}
	}
}

// ImproperLockWorkload is the §7 "improper use" scenario for the
// prioritization ablation: waiters lease the lock line before try_lock
// but are slow to drop the lease on failure, delaying the owner's unlock.
// With Config.RegularBreaksLease the owner's reset breaks such leases.
func ImproperLockWorkload() func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		l := locks.NewTTS(d)
		ctr := d.Alloc(8)
		return func(tid int, c *machine.Ctx) {
			for {
				if l.TryLock(c) {
					// Owner: plain critical section, no lease — its
					// unlock store is a regular request.
					c.Store(ctr, c.Load(ctr)+1)
					c.Work(30)
					l.Unlock(c)
					return
				}
				// Improper waiter: leases the lock line even though the
				// lock is owned, and dawdles before dropping it — the
				// owner's unlock is deferred behind this lease unless
				// prioritization breaks it.
				c.Lease(l.Addr(), LeaseTime)
				c.Load(l.Addr())
				c.Work(400)
				c.Release(l.Addr())
			}
		}
	}
}

// SetKind selects a low-contention set structure (§7 "Low Contention").
type SetKind int

const (
	SetHarris SetKind = iota
	SetLazySkip
	SetBST
	SetHash
	SetLFSkip      // lock-free skiplist [15]
	SetNMTree      // Natarajan–Mittal lock-free BST [31]
	SetMichaelHash // Michael's lock-free hash table [26]
)

// AllSetKinds lists every low-contention structure, lock-based suite
// first, then the lock-free suite.
func AllSetKinds() []SetKind {
	return []SetKind{SetHarris, SetLazySkip, SetBST, SetHash,
		SetLFSkip, SetNMTree, SetMichaelHash}
}

// String names the structure.
func (k SetKind) String() string {
	switch k {
	case SetHarris:
		return "harris-list"
	case SetLazySkip:
		return "skiplist"
	case SetBST:
		return "bst"
	case SetLFSkip:
		return "lf-skiplist"
	case SetNMTree:
		return "lf-bst"
	case SetMichaelHash:
		return "lf-hashtable"
	default:
		return "hashtable"
	}
}

// SetWorkload: 20% updates (10% insert / 10% delete), 80% searches on
// uniform random keys — the paper's low-contention experiment.
func SetWorkload(kind SetKind, lease uint64, keyRange int, prefill int) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		var ins func(x machine.API, k uint64) bool
		var del func(x machine.API, k uint64) bool
		var has func(x machine.API, k uint64) bool
		switch kind {
		case SetHarris:
			l := ds.NewHarrisList(d)
			l.LeaseTime = lease
			ins, del, has = l.Insert, l.Remove, l.Contains
		case SetLazySkip:
			s := ds.NewLazySkipList(d)
			s.LeaseTime = lease
			ins, del, has = s.Insert, s.Remove, s.Contains
		case SetBST:
			t := ds.NewBST(d)
			t.LeaseTime = lease
			ins, del, has = t.Insert, t.Delete, t.Contains
		case SetLFSkip:
			s := ds.NewLFSkipList(d)
			s.LeaseTime = lease
			ins, del, has = s.Insert, s.Remove, s.Contains
		case SetNMTree:
			t := ds.NewNMTree(d)
			t.LeaseTime = lease
			ins, del, has = t.Insert, t.Delete, t.Contains
		case SetMichaelHash:
			h := ds.NewMichaelHashMap(d, keyRange/4, lease)
			ins, del, has = h.Insert, h.Remove, h.Contains
		default:
			h := ds.NewHashMap(d, keyRange/4, lease)
			ins = func(x machine.API, k uint64) bool { return h.Put(x, k, k) }
			del = h.Delete
			has = func(x machine.API, k uint64) bool { _, ok := h.Get(x, k); return ok }
		}
		for i := 0; i < prefill; i++ {
			ins(d, uint64(d.Rand().Intn(keyRange))+1)
		}
		return func(tid int, c *machine.Ctx) {
			k := uint64(c.Rand().Intn(keyRange)) + 1
			switch p := c.Rand().Intn(10); {
			case p == 0:
				ins(c, k)
			case p == 1:
				del(c, k)
			default:
				has(c, k)
			}
			jitter(c)
		}
	}
}

// SnapshotWorkload: k-word atomic snapshots under write pressure (§5
// cheap snapshots). Half the threads are writers bumping all words under
// a joint lease; the rest snapshot with LeaseCollect or DoubleCollect.
// attempts accumulates retry rounds and snaps the snapshot count (the
// harness's op counter also includes writer iterations).
func SnapshotWorkload(useLease bool, words int, attempts, snaps *uint64) func(d *machine.Direct) OpFunc {
	return func(d *machine.Direct) OpFunc {
		addrs := make([]mem.Addr, words)
		for i := range addrs {
			addrs[i] = d.Alloc(8)
		}
		snap := ds.NewSnapshot(addrs, LeaseTime)
		return func(tid int, c *machine.Ctx) {
			if tid%2 == 0 { // writers keep the words churning
				c.MultiLease(LeaseTime, addrs...)
				for _, a := range addrs {
					c.Store(a, c.Load(a)+1)
				}
				c.ReleaseAll()
				c.Work(1200) // update period: quiet gaps shrink as
				// writer count grows with the thread count
				return
			}
			var n int
			if useLease {
				_, n = snap.LeaseCollect(c)
			} else {
				_, n = snap.DoubleCollect(c)
			}
			atomic.AddUint64(attempts, uint64(n))
			atomic.AddUint64(snaps, 1)
			jitter(c)
		}
	}
}

// PagerankRun runs the Figure 5 (right) application to completion (under
// the default cycle budget) and returns total cycles. A failed run
// returns a *RunError with the state at failure.
func PagerankRun(cfg machine.Config, threads int, leaseTime uint64, nodes, iters int) (uint64, machine.Stats, error) {
	return RunToCompletion(cfg, threads, 0, func(d *machine.Direct) func(int, *machine.Ctx) {
		pcfg := pagerank.DefaultConfig(threads)
		pcfg.Nodes = nodes
		pcfg.Iterations = iters
		pcfg.LeaseTime = leaseTime
		p := pagerank.New(d, pcfg)
		return func(tid int, c *machine.Ctx) { p.Run(c, tid) }
	})
}
