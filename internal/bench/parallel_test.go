package bench

import (
	"bytes"
	"sync/atomic"
	"testing"
)

// TestPoolDeterminism is the contract behind -parallel: a sweep run on a
// wide worker pool emits byte-identical output to a serial run, because
// every cell owns a private simulated machine and rows are collected by
// future and emitted in submission order. (Run under -race this also
// exercises the pool for data races between concurrent cells.)
func TestPoolDeterminism(t *testing.T) {
	params := Params{Threads: []int{2, 4, 8}, Warm: 20_000, Window: 60_000}

	// A heap-sweep experiment, a measured (telemetry recorder) experiment,
	// and the multi-table one with interleaved submission patterns.
	for _, id := range []string{"fig2", "fig3-counter", "ablate-mesi"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %q not found", id)
		}
		var serial bytes.Buffer
		p := params
		p.Pool = nil // serial inline execution
		e.Run(&serial, p)

		var parallel bytes.Buffer
		p.Pool = NewPool(8)
		e.Run(&parallel, p)
		p.Pool.Close()

		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Errorf("%s: -parallel 8 output differs from serial run:\nserial:\n%s\nparallel:\n%s",
				id, serial.String(), parallel.String())
		}
		if serial.Len() == 0 {
			t.Errorf("%s: experiment produced no output", id)
		}
	}
}

// TestPoolFutureOrder checks that futures resolve to their own cell's
// value regardless of execution order, and that Get is idempotent.
func TestPoolFutureOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var running atomic.Int32
	futures := make([]*Future[int], 64)
	for i := range futures {
		futures[i] = Go(p, func() int {
			running.Add(1)
			return i * i
		})
	}
	for i, fu := range futures {
		if got := fu.Get(); got != i*i {
			t.Errorf("future %d = %d, want %d", i, got, i*i)
		}
		if got := fu.Get(); got != i*i {
			t.Errorf("future %d second Get = %d, want %d", i, got, i*i)
		}
	}
	if n := running.Load(); n != 64 {
		t.Errorf("ran %d cells, want 64", n)
	}
}

// TestPoolSerialIsInline checks that workers==1 degenerates to inline
// execution on the submitting goroutine (NewPool returns nil, and a nil
// pool runs cells synchronously in submission order).
func TestPoolSerialIsInline(t *testing.T) {
	if p := NewPool(1); p != nil {
		t.Fatalf("NewPool(1) = %v, want nil (serial)", p)
	}
	var order []int
	for i := 0; i < 8; i++ {
		fu := Go[int](nil, func() int {
			order = append(order, i)
			return i
		})
		// Inline execution: the future is already resolved at submit time.
		if got := fu.Get(); got != i {
			t.Fatalf("inline future = %d, want %d", got, i)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline cells ran out of order: %v", order)
		}
	}
}
