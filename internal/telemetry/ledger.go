package telemetry

import (
	"fmt"
	"sort"

	"leaserelease/internal/mem"
)

// Ledger is the lease-efficiency ledger: it consumes CatLease and CatTxn
// bus events and produces per-line (and run-total) accounting of whether
// each lease earned its keep — granted duration vs. cycles actually held,
// operations absorbed under the lease, and the deferral cycles the lease
// inflicted on other cores' coherence transactions (Proposition 1).
//
// Accounting identities (exact, per line, enforced by tests):
//
//	GrantedCycles == UsedCycles + UnusedCycles
//	sum(DeferInflictedCycles) == span assembler probe-defer phase total
//
// A lease is counted iff its countdown started at or after WindowStart
// (the harness sets WindowStart to the warm-up boundary, matching the
// span assembler's filter). Leases still open at the end of the run are
// reported in OpenAtEnd but not folded into the cycle totals, so the
// conservation identity holds exactly.
//
// The ledger is host-side only: like every bus subscriber it observes the
// deterministic simulated clock and never mutates simulated state, so for
// a given seed the simulated run is byte-identical with or without it.
type Ledger struct {
	// WindowStart excludes leases whose countdown started before it, and
	// coherence transactions that began before it (same convention as
	// Spans.WindowStart).
	WindowStart uint64

	lines map[mem.Line]*LineLedger
	open  [][]openLease // per-core open (started) leases, insertion order
	// closed holds, per core, the lines of counted leases closed since the
	// last operation boundary: a lease acquired and released inside one
	// operation (the common leased data structure pattern) still absorbed
	// that operation, even though it is gone by the time OpEnd fires.
	closed [][]mem.Line
	txns   map[uint64]ledgerTxn
}

// openLease is one started lease whose end event has not arrived yet.
type openLease struct {
	line    mem.Line
	dur     uint64 // granted duration (LeaseStarted's Val)
	ops     uint64 // operations completed on the core while it was open
	counted bool   // started inside the window with a known duration
}

// ledgerTxn tracks one in-flight coherence transaction so the deferral
// cycles it suffered can be charged to the owning line at completion —
// the same fold point and window filter the span assembler uses, which is
// what makes the two accountings reconcile exactly.
type ledgerTxn struct {
	line             mem.Line
	begin            uint64
	probe, probeDone uint64
	forwarded        bool
	deferred         bool
}

// LineLedger is the per-cache-line lease-efficiency accounting.
type LineLedger struct {
	Line mem.Line

	Leases  uint64 // leases closed (started and ended) inside the window
	Expired uint64 // of those, closed by the MAX_LEASE_TIME timer

	GrantedCycles uint64 // sum of granted durations of closed leases
	UsedCycles    uint64 // cycles ownership was actually held
	UnusedCycles  uint64 // granted but returned early (GrantedCycles - UsedCycles)

	// ExpiredIdleCycles is the hold cycles of leases that ran to expiry
	// without absorbing a single operation: the grant deferred other cores
	// for its full duration and bought nothing — the strongest "lease too
	// long or mis-placed" signal.
	ExpiredIdleCycles uint64

	// OpsUnder is the operations the line's leases absorbed: completed
	// while a lease was open, or served by a lease acquired and released
	// inside the operation itself.
	OpsUnder uint64

	DeferredTxns         uint64 // completed transactions deferred behind this line's leases
	DeferInflictedCycles uint64 // cycles those transactions spent deferred
}

// Efficiency is the fraction of granted cycles actually held (0 if no
// lease closed yet).
func (l *LineLedger) Efficiency() float64 {
	if l.GrantedCycles == 0 {
		return 0
	}
	return float64(l.UsedCycles) / float64(l.GrantedCycles)
}

// Amortization is the mean operations absorbed per closed lease — the
// coherence transactions a lease amortizes, since without it each
// absorbed operation would re-acquire the line (0 if no lease closed).
func (l *LineLedger) Amortization() float64 {
	if l.Leases == 0 {
		return 0
	}
	return float64(l.OpsUnder) / float64(l.Leases)
}

// WastedCycles is the ranking key of the "top wasted" table: granted
// cycles returned unused plus hold cycles of expiries that absorbed no
// operation.
func (l *LineLedger) WastedCycles() uint64 {
	return l.UnusedCycles + l.ExpiredIdleCycles
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		lines: make(map[mem.Line]*LineLedger),
		txns:  make(map[uint64]ledgerTxn),
	}
}

// Line returns the (lazily created) accounting for line l.
func (ld *Ledger) Line(l mem.Line) *LineLedger {
	s, ok := ld.lines[l]
	if !ok {
		s = &LineLedger{Line: l}
		ld.lines[l] = s
	}
	return s
}

// Len returns the number of distinct lines with ledger entries.
func (ld *Ledger) Len() int { return len(ld.lines) }

// OpenLeases returns the number of started leases whose end event has not
// arrived (at end of run: leases open when the simulation stopped).
func (ld *Ledger) OpenLeases() int {
	n := 0
	for _, per := range ld.open {
		n += len(per)
	}
	return n
}

func (ld *Ledger) openFor(core int) *[]openLease {
	for core >= len(ld.open) {
		ld.open = append(ld.open, nil)
	}
	return &ld.open[core]
}

// OnLease consumes one CatLease event. Subscribe it to CatLease
// (Recorder.EnableLedger + Attach do this).
func (ld *Ledger) OnLease(e Event) {
	switch e.Kind {
	case LeaseStarted:
		per := ld.openFor(e.Core)
		// The lease table holds at most one lease per line per core, so an
		// open entry for the same line is stale; replace it defensively.
		for i := range *per {
			if (*per)[i].line == e.Line {
				*per = append((*per)[:i], (*per)[i+1:]...)
				break
			}
		}
		*per = append(*per, openLease{
			line:    e.Line,
			dur:     e.Val,
			counted: e.Val != NoVal && e.Time >= ld.WindowStart,
		})
	case LeaseReleased, LeaseExpired, LeaseEvicted, LeaseForced, LeaseBroken:
		per := ld.openFor(e.Core)
		for i := range *per {
			if (*per)[i].line != e.Line {
				continue
			}
			ol := (*per)[i]
			*per = append((*per)[:i], (*per)[i+1:]...)
			if ol.counted {
				ld.close(e, ol)
				for e.Core >= len(ld.closed) {
					ld.closed = append(ld.closed, nil)
				}
				ld.closed[e.Core] = append(ld.closed[e.Core], e.Line)
			}
			return
		}
		// No open entry: the lease never started its countdown (e.g. a
		// pending lease FIFO-evicted, Val == NoVal) — nothing was granted.
	}
}

// close folds one ended lease into its line's accounting. The reported
// hold (e.Val) never exceeds the granted duration — the expiry timer
// fires at Started+Duration and removes the entry — but the ledger clamps
// anyway so the conservation identity survives any emitter bug.
func (ld *Ledger) close(e Event, ol openLease) {
	hold := e.Val
	if hold == NoVal || hold > ol.dur {
		hold = ol.dur
	}
	s := ld.Line(e.Line)
	s.Leases++
	s.GrantedCycles += ol.dur
	s.UsedCycles += hold
	s.UnusedCycles += ol.dur - hold
	s.OpsUnder += ol.ops
	if e.Kind == LeaseExpired {
		s.Expired++
		if ol.ops == 0 {
			s.ExpiredIdleCycles += hold
		}
	}
}

// OnTxn consumes one CatTxn event. The deferral a transaction suffered is
// charged to its line only at TxnComplete and only for transactions that
// began inside the window — exactly when and what the span assembler
// folds into its probe-defer phase, so the two totals reconcile.
func (ld *Ledger) OnTxn(e Event) {
	if e.Cat != CatTxn {
		return
	}
	id := e.Val
	if e.Kind == TxnBegin {
		ld.txns[id] = ledgerTxn{line: e.Line, begin: e.Time}
		return
	}
	t, ok := ld.txns[id]
	if !ok {
		return
	}
	switch e.Kind {
	case TxnProbe:
		t.forwarded = true
		t.probe = e.Time
		ld.txns[id] = t
	case TxnDefer:
		t.deferred = true
		ld.txns[id] = t
	case TxnProbeDone:
		t.probeDone = e.Time
		ld.txns[id] = t
	case TxnComplete:
		delete(ld.txns, id)
		if t.forwarded && t.begin >= ld.WindowStart {
			s := ld.Line(t.line)
			s.DeferInflictedCycles += t.probeDone - t.probe
			if t.deferred {
				s.DeferredTxns++
			}
		}
	}
}

// OpEnd records one completed data structure operation on a core: every
// window-counted lease the core holds open — plus every counted lease it
// closed during the operation, since a lease acquired and released inside
// one operation absorbed it — absorbs the operation. The harness calls it
// at each operation boundary with measured reporting whether the
// operation started inside the measurement window.
func (ld *Ledger) OpEnd(core int, measured bool) {
	if core < len(ld.closed) && len(ld.closed[core]) > 0 {
		if measured {
			for _, l := range ld.closed[core] {
				ld.Line(l).OpsUnder++
			}
		}
		ld.closed[core] = ld.closed[core][:0]
	}
	if !measured || core >= len(ld.open) {
		return
	}
	per := ld.open[core]
	for i := range per {
		if per[i].counted {
			per[i].ops++
		}
	}
}

// LedgerTotals is the run-level (per data structure: one structure per
// run) roll-up of the per-line accounting, in JSON report form.
type LedgerTotals struct {
	Leases               uint64  `json:"leases"`
	Expired              uint64  `json:"expired"`
	OpenAtEnd            uint64  `json:"open_at_end"`
	GrantedCycles        uint64  `json:"granted_cycles"`
	UsedCycles           uint64  `json:"used_cycles"`
	UnusedCycles         uint64  `json:"unused_cycles"`
	ExpiredIdleCycles    uint64  `json:"expired_idle_cycles"`
	OpsUnder             uint64  `json:"ops_under_lease"`
	DeferredTxns         uint64  `json:"deferred_txns"`
	DeferInflictedCycles uint64  `json:"defer_inflicted_cycles"`
	Efficiency           float64 `json:"efficiency"`
	Amortization         float64 `json:"amortization"`
}

// Totals aggregates every line's accounting.
func (ld *Ledger) Totals() LedgerTotals {
	var t LedgerTotals
	for _, s := range ld.lines {
		t.Leases += s.Leases
		t.Expired += s.Expired
		t.GrantedCycles += s.GrantedCycles
		t.UsedCycles += s.UsedCycles
		t.UnusedCycles += s.UnusedCycles
		t.ExpiredIdleCycles += s.ExpiredIdleCycles
		t.OpsUnder += s.OpsUnder
		t.DeferredTxns += s.DeferredTxns
		t.DeferInflictedCycles += s.DeferInflictedCycles
	}
	t.OpenAtEnd = uint64(ld.OpenLeases())
	if t.GrantedCycles > 0 {
		t.Efficiency = float64(t.UsedCycles) / float64(t.GrantedCycles)
	}
	if t.Leases > 0 {
		t.Amortization = float64(t.OpsUnder) / float64(t.Leases)
	}
	return t
}

// Lines returns every line's accounting, sorted by line address — the
// full table behind the top-N rankings (conservation tests iterate it).
func (ld *Ledger) Lines() []LineLedger {
	all := make([]LineLedger, 0, len(ld.lines))
	for _, s := range ld.lines {
		all = append(all, *s)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Line < all[j].Line })
	return all
}

// top returns the k highest lines under key, ties broken by lower line
// address — a total order, so rankings are deterministic.
func (ld *Ledger) top(k int, key func(*LineLedger) uint64) []LineLedger {
	all := make([]LineLedger, 0, len(ld.lines))
	for _, s := range ld.lines {
		if key(s) > 0 {
			all = append(all, *s)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		ki, kj := key(&all[i]), key(&all[j])
		if ki != kj {
			return ki > kj
		}
		return all[i].Line < all[j].Line
	})
	if k >= 0 && k < len(all) {
		all = all[:k]
	}
	return all
}

// TopWasted ranks the k lines with the most wasted cycles (unused grants
// plus idle expiries).
func (ld *Ledger) TopWasted(k int) []LineLedger {
	return ld.top(k, (*LineLedger).WastedCycles)
}

// TopDeferInflicted ranks the k lines whose leases inflicted the most
// deferral cycles on other cores.
func (ld *Ledger) TopDeferInflicted(k int) []LineLedger {
	return ld.top(k, func(l *LineLedger) uint64 { return l.DeferInflictedCycles })
}

// LedgerLineSummary is the JSON form of one ranked ledger line. Addr
// carries the raw line for host-side joins (e.g. with the hot-line
// profile) and is not marshaled; Line is the hex rendering.
type LedgerLineSummary struct {
	Addr mem.Line `json:"-"`
	Line string   `json:"line"`

	Leases               uint64  `json:"leases"`
	Expired              uint64  `json:"expired"`
	GrantedCycles        uint64  `json:"granted_cycles"`
	UsedCycles           uint64  `json:"used_cycles"`
	UnusedCycles         uint64  `json:"unused_cycles"`
	ExpiredIdleCycles    uint64  `json:"expired_idle_cycles"`
	WastedCycles         uint64  `json:"wasted_cycles"`
	OpsUnder             uint64  `json:"ops_under_lease"`
	DeferredTxns         uint64  `json:"deferred_txns"`
	DeferInflictedCycles uint64  `json:"defer_inflicted_cycles"`
	Efficiency           float64 `json:"efficiency"`
	Amortization         float64 `json:"amortization"`
}

func lineSummaryOf(s *LineLedger) LedgerLineSummary {
	return LedgerLineSummary{
		Addr: s.Line, Line: fmt.Sprintf("%#x", uint64(s.Line)),
		Leases: s.Leases, Expired: s.Expired,
		GrantedCycles: s.GrantedCycles, UsedCycles: s.UsedCycles,
		UnusedCycles: s.UnusedCycles, ExpiredIdleCycles: s.ExpiredIdleCycles,
		WastedCycles: s.WastedCycles(), OpsUnder: s.OpsUnder,
		DeferredTxns:         s.DeferredTxns,
		DeferInflictedCycles: s.DeferInflictedCycles,
		Efficiency:           s.Efficiency(),
		Amortization:         s.Amortization(),
	}
}

// LedgerSummary is the JSON form of the full ledger, as embedded in run
// reports (Result.LeaseLedger / the lease_ledger report field).
type LedgerSummary struct {
	LedgerTotals
	TopWasted         []LedgerLineSummary `json:"top_wasted,omitempty"`
	TopDeferInflicted []LedgerLineSummary `json:"top_defer_inflicted,omitempty"`
}

// Summary digests the ledger: run totals plus the two top-k rankings.
func (ld *Ledger) Summary(k int) LedgerSummary {
	sum := LedgerSummary{LedgerTotals: ld.Totals()}
	for _, s := range ld.TopWasted(k) {
		s := s
		sum.TopWasted = append(sum.TopWasted, lineSummaryOf(&s))
	}
	for _, s := range ld.TopDeferInflicted(k) {
		s := s
		sum.TopDeferInflicted = append(sum.TopDeferInflicted, lineSummaryOf(&s))
	}
	return sum
}
