//go:build race

package telemetry

// raceEnabled gates tests that are invalid under the race detector (it
// instruments allocations, so testing.AllocsPerRun over-counts).
const raceEnabled = true
