package telemetry

import (
	"sort"

	"leaserelease/internal/mem"
)

// This file is the shard-safe emit path. Under the windowed parallel
// executor (sim.ConfigureSharding) the bus cannot deliver synchronously:
// shards execute concurrently and subscribers are single-consumer host
// state. Instead each shard appends its emissions — and deferred
// harness-side observations (Defer) — to its own buffer with zero
// synchronization, and the window coordinator drains every buffer at each
// barrier, folding entries into the subscribers in canonical order.
//
// The canonical order is the lexicographic key
//
//	(emit clock, event cycle, target domain, source domain, seq, buffer)
//
// where (cycle, domain, src, seq) is the engine's canonical key of the
// event that was executing when the emission happened. This reproduces the
// sequential delivery order exactly: the sequential clock is monotone, so
// sequential emissions are already sorted by emit clock; emissions at the
// same clock follow event execution order, which is the event-key order;
// and emissions during one event's execution keep their append order (the
// final buffer tie-break never fires across shards, because a full
// five-tuple tie would mean two shards executed the same event). Proc
// fast-forwards (sim.Proc.Sync) never carry an emission past the window
// horizon — the fast path is bounded by the shard's window end — so
// per-barrier drains compose into one globally sorted stream.

// DomainContext is the execution context of an emission under the
// parallel executor. sim.Domain implements it: EmitContext reports the
// emitting shard's buffer index (or -1 when the engine is not inside
// parallel windows, meaning the emission must be synchronous), the shard
// clock, and the canonical key of the event currently executing.
type DomainContext interface {
	EmitContext() (buf int, now, at uint64, dom, src uint32, seq uint64)
}

// bufEntry is one buffered emission: either an Event or a deferred
// closure, at a canonical position in the event stream.
type bufEntry struct {
	now, at  uint64
	dom, src uint32
	seq      uint64
	ev       Event
	fn       func()
}

func (a *bufEntry) before(b *bufEntry) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dom != b.dom {
		return a.dom < b.dom
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// ShardBuffers switches the bus into buffered mode with k per-shard
// buffers. The machine calls it exactly when the parallel executor
// engages (k > 1 effective shards); a sequential run never buffers, so
// its emit path is unchanged.
func (b *Bus) ShardBuffers(k int) {
	if b == nil || k <= 1 {
		return
	}
	b.bufs = make([][]bufEntry, k)
}

// Buffered reports whether ShardBuffers was applied.
func (b *Bus) Buffered() bool { return b != nil && b.bufs != nil }

// RequireSync marks the bus as carrying a subscriber that must observe
// events synchronously with simulated execution (e.g. the invariant
// checker, whose handlers read live machine state). Such a bus must not
// be buffered: machine.shardPlan degrades the run to the sequential
// executor instead. Nil-safe.
func (b *Bus) RequireSync() {
	if b != nil {
		b.needSync = true
	}
}

// NeedsSync reports whether RequireSync was called. Nil-safe.
func (b *Bus) NeedsSync() bool { return b != nil && b.needSync }

// EmitOn is Emit from an explicit execution context: synchronous when the
// bus is unbuffered (or the engine is idle), appended to the emitting
// shard's buffer under the parallel executor. Every emit site that can
// execute inside a parallel window must use EmitOn/EmitOn2 with the
// domain that is actually executing — not the domain the event is about.
func (b *Bus) EmitOn(d DomainContext, cat Category, core int, kind uint8, line mem.Line, val uint64) {
	b.EmitOn2(d, cat, core, kind, line, val, 0)
}

// EmitOn2 is EmitOn with the secondary Aux payload.
func (b *Bus) EmitOn2(d DomainContext, cat Category, core int, kind uint8, line mem.Line, val, aux uint64) {
	if !b.Wants(cat) {
		return
	}
	if b.bufs == nil {
		b.deliver(Event{Time: b.now(), Core: core, Cat: cat, Kind: kind, Line: line, Val: val, Aux: aux})
		return
	}
	buf, now, at, dom, src, seq := d.EmitContext()
	if buf < 0 {
		// Engine idle (setup or post-run): the sequential clock is
		// authoritative and synchronous delivery is safe.
		b.deliver(Event{Time: b.now(), Core: core, Cat: cat, Kind: kind, Line: line, Val: val, Aux: aux})
		return
	}
	b.bufs[buf] = append(b.bufs[buf], bufEntry{
		now: now, at: at, dom: dom, src: src, seq: seq,
		ev: Event{Time: now, Core: core, Cat: cat, Kind: kind, Line: line, Val: val, Aux: aux},
	})
}

// Defer runs fn at the current point of the telemetry stream: immediately
// when delivery is synchronous, otherwise as an entry in the emitting
// shard's buffer so the barrier merge replays it in canonical order
// relative to buffered events. The harness uses it for operation-boundary
// observations (latency histograms, span and ledger op accounting) that
// would otherwise race with — and mis-order against — buffered events.
// Nil-safe: a nil bus runs fn immediately.
func (b *Bus) Defer(d DomainContext, fn func()) {
	if b == nil || b.bufs == nil {
		fn()
		return
	}
	buf, now, at, dom, src, seq := d.EmitContext()
	if buf < 0 {
		fn()
		return
	}
	b.bufs[buf] = append(b.bufs[buf], bufEntry{
		now: now, at: at, dom: dom, src: src, seq: seq, fn: fn,
	})
}

// DrainBarrier folds every buffered entry into the subscribers in
// canonical order and resets the buffers. The engine's barrier hook calls
// it at every window barrier, where all shards are parked and everything
// they appended happens-before the drain; emissions never cross a window
// horizon, so per-barrier drains concatenate into the exact sequential
// delivery order. Drained counts accumulate in DrainedEntries.
func (b *Bus) DrainBarrier() {
	if b == nil || b.bufs == nil {
		return
	}
	n := 0
	for _, buf := range b.bufs {
		n += len(buf)
	}
	if n == 0 {
		return
	}
	merged := b.scratch[:0]
	for _, buf := range b.bufs {
		merged = append(merged, buf...)
	}
	// Stable sort: entries from one buffer with equal keys (several
	// emissions during one event's execution) keep their append order.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].before(&merged[j]) })
	for i := range merged {
		if e := &merged[i]; e.fn != nil {
			e.fn()
		} else {
			b.deliver(e.ev)
		}
	}
	b.drained += uint64(n)
	// Drop closure/event references so they can be collected, keeping the
	// backing arrays for the next window.
	for i := range merged {
		merged[i] = bufEntry{}
	}
	b.scratch = merged[:0]
	for i, buf := range b.bufs {
		for j := range buf {
			buf[j] = bufEntry{}
		}
		b.bufs[i] = buf[:0]
	}
}

// DrainedEntries is the total number of buffered entries delivered by
// DrainBarrier so far. Nil-safe.
func (b *Bus) DrainedEntries() uint64 {
	if b == nil {
		return 0
	}
	return b.drained
}
