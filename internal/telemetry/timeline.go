package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"leaserelease/internal/mem"
)

// Timeline records per-core lease intervals and instant events in the
// Chrome trace-event format, loadable in chrome://tracing and Perfetto
// (ui.perfetto.dev). Each simulated core is one timeline track (tid);
// every lease appears as a slice from countdown start to release, named
// by its cache line, with the release reason in the slice arguments.
type Timeline struct {
	// CyclesPerUS converts simulated cycles to trace microseconds (the
	// trace-event time unit). At the default 1 GHz clock, 1000 cycles
	// = 1 µs of simulated time.
	CyclesPerUS float64

	open   map[openKey]uint64 // countdown-start cycle per (core, line)
	events []chromeEvent
	cores  map[int]bool
	hasDir bool // a txn span used the directory track
}

// dirTid is the synthetic thread id of the directory track; it sits far
// above any plausible core id so the viewer shows it below the cores.
const dirTid = 1 << 20

type openKey struct {
	core int
	line mem.Line
}

// chromeEvent is one JSON object of the trace-event format. Struct (not
// map) fields keep the marshaled byte stream deterministic.
type chromeEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat,omitempty"`
	Ph    string     `json:"ph"`
	Ts    float64    `json:"ts"`
	Dur   *float64   `json:"dur,omitempty"`
	Pid   int        `json:"pid"`
	Tid   int        `json:"tid"`
	ID    string     `json:"id,omitempty"` // flow / async event id
	Scope string     `json:"s,omitempty"`
	BP    string     `json:"bp,omitempty"` // flow binding point ("e" = enclosing slice)
	Args  *traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	Line       string `json:"line,omitempty"`
	Reason     string `json:"reason,omitempty"`
	HoldCycles uint64 `json:"hold_cycles,omitempty"`
	Name       string `json:"name,omitempty"`
	Txn        string `json:"txn,omitempty"`
	Cycles     uint64 `json:"cycles,omitempty"`
	Excl       bool   `json:"excl,omitempty"`
	Deferred   bool   `json:"deferred,omitempty"`
	Owner      string `json:"owner,omitempty"`
}

// NewTimeline creates a timeline exporter; cyclesPerUS <= 0 selects the
// 1 GHz default (1000 cycles per microsecond).
func NewTimeline(cyclesPerUS float64) *Timeline {
	if cyclesPerUS <= 0 {
		cyclesPerUS = 1000
	}
	return &Timeline{
		CyclesPerUS: cyclesPerUS,
		open:        make(map[openKey]uint64),
		cores:       make(map[int]bool),
	}
}

func (t *Timeline) us(cycles uint64) float64 { return float64(cycles) / t.CyclesPerUS }

func lineName(l mem.Line) string { return fmt.Sprintf("line %#x", uint64(l)) }

func releaseReason(kind uint8) string {
	switch kind {
	case LeaseReleased:
		return "release"
	case LeaseExpired:
		return "expire"
	case LeaseEvicted:
		return "evict"
	case LeaseForced:
		return "force"
	case LeaseBroken:
		return "break"
	}
	return "unknown"
}

// OnLease consumes one CatLease event. Recorder feeds it; it may also be
// subscribed directly to a Bus.
func (t *Timeline) OnLease(e Event) {
	t.cores[e.Core] = true
	switch e.Kind {
	case LeaseStarted:
		t.open[openKey{e.Core, e.Line}] = e.Time
	case LeaseReleased, LeaseExpired, LeaseEvicted, LeaseForced, LeaseBroken:
		t.closeInterval(e.Core, e.Line, e.Time, releaseReason(e.Kind), e.Val)
	case ProbeDeferred:
		t.instant(e.Core, e.Time, "probe deferred", e.Line)
	case LeaseIgnored:
		t.instant(e.Core, e.Time, "lease ignored", e.Line)
	}
}

func (t *Timeline) closeInterval(core int, l mem.Line, now uint64, reason string, hold uint64) {
	k := openKey{core, l}
	start, ok := t.open[k]
	if !ok {
		return // lease never started its countdown (e.g. evicted while pending)
	}
	delete(t.open, k)
	dur := t.us(now - start)
	args := &traceArgs{Line: fmt.Sprintf("%#x", uint64(l)), Reason: reason}
	if hold != NoVal {
		args.HoldCycles = hold
	}
	t.events = append(t.events, chromeEvent{
		Name: lineName(l), Cat: "lease", Ph: "X",
		Ts: t.us(start), Dur: &dur, Pid: 0, Tid: core, Args: args,
	})
}

func (t *Timeline) instant(core int, now uint64, name string, l mem.Line) {
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: "lease", Ph: "i", Scope: "t",
		Ts: t.us(now), Pid: 0, Tid: core,
		Args: &traceArgs{Line: fmt.Sprintf("%#x", uint64(l))},
	})
}

// OnTxnSpan renders one completed coherence-transaction span: an outer
// slice on the requesting core's track with nested per-phase slices (the
// phases are consecutive, so nesting is exact), an async slice on the
// directory track covering the directory's involvement, and a flow arrow
// chain requester -> directory [-> owner] -> requester. Recorder wires it
// as Spans.OnComplete when both spans and a timeline are enabled.
func (t *Timeline) OnTxnSpan(s *Span) {
	t.cores[s.Core] = true
	t.hasDir = true
	id := fmt.Sprintf("%#x", s.ID)
	lineHex := fmt.Sprintf("%#x", uint64(s.Line))

	// Outer transaction slice with the full breakdown in its args.
	dur := t.us(s.End - s.Begin)
	args := &traceArgs{
		Line: lineHex, Txn: id, Cycles: s.End - s.Begin,
		Excl: s.Excl, Deferred: s.Deferred,
	}
	if s.Owner >= 0 {
		args.Owner = fmt.Sprintf("core %d", s.Owner)
	}
	t.events = append(t.events, chromeEvent{
		Name: "txn " + lineName(s.Line), Cat: "txn", Ph: "X",
		Ts: t.us(s.Begin), Dur: &dur, Pid: 0, Tid: s.Core, Args: args,
	})

	// Nested phase slices, laid end to end from Begin.
	cursor := s.Begin
	for p := Phase(0); p < NumPhases; p++ {
		c := s.Phases[p]
		if c != 0 {
			d := t.us(c)
			t.events = append(t.events, chromeEvent{
				Name: p.String(), Cat: "txn", Ph: "X",
				Ts: t.us(cursor), Dur: &d, Pid: 0, Tid: s.Core,
				Args: &traceArgs{Txn: id, Cycles: c},
			})
		}
		cursor += c
	}

	// Directory involvement as an async slice: from request arrival to
	// the end of directory service (probe dispatch on the forward path,
	// service + invalidation fan-out otherwise).
	arrive := s.Begin + s.Phases[PhaseReqNet]
	service := arrive + s.Phases[PhaseQueue]
	dirEnd := service + s.Phases[PhaseDirService] + s.Phases[PhaseInval]
	t.events = append(t.events,
		chromeEvent{
			Name: lineName(s.Line), Cat: "txn", Ph: "b",
			Ts: t.us(arrive), Pid: 0, Tid: dirTid, ID: id,
			Args: &traceArgs{Line: lineHex, Txn: id},
		},
		chromeEvent{
			Name: lineName(s.Line), Cat: "txn", Ph: "e",
			Ts: t.us(dirEnd), Pid: 0, Tid: dirTid, ID: id,
		})

	// Flow arrows: requester -> directory [-> owner] -> requester.
	t.events = append(t.events,
		chromeEvent{Name: "coherence", Cat: "txn", Ph: "s",
			Ts: t.us(s.Begin), Pid: 0, Tid: s.Core, ID: id},
		chromeEvent{Name: "coherence", Cat: "txn", Ph: "t",
			Ts: t.us(arrive), Pid: 0, Tid: dirTid, ID: id})
	if s.Owner >= 0 {
		t.cores[s.Owner] = true
		t.events = append(t.events, chromeEvent{
			Name: "coherence", Cat: "txn", Ph: "t",
			Ts: t.us(service + s.Phases[PhaseDirService]), Pid: 0, Tid: s.Owner, ID: id,
		})
	}
	t.events = append(t.events, chromeEvent{
		Name: "coherence", Cat: "txn", Ph: "f", BP: "e",
		Ts: t.us(s.End), Pid: 0, Tid: s.Core, ID: id,
	})
}

// Finish closes any still-open lease intervals at simulated time now (the
// end of the run). Keys are visited in sorted order so the output stays
// deterministic.
func (t *Timeline) Finish(now uint64) {
	keys := make([]openKey, 0, len(t.open))
	for k := range t.open {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].core != keys[j].core {
			return keys[i].core < keys[j].core
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		t.closeInterval(k.core, k.line, now, "open at end of run", NoVal)
	}
}

// Write emits the trace as a JSON object with a traceEvents array,
// prefixed by thread-name metadata so viewers label each track "core N".
// The output is byte-for-byte deterministic for a given event stream.
func (t *Timeline) Write(w io.Writer) error {
	cores := make([]int, 0, len(t.cores))
	for c := range t.cores {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	all := make([]chromeEvent, 0, len(cores)+1+len(t.events))
	all = append(all, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: &traceArgs{Name: "leaserelease machine"},
	})
	for _, c := range cores {
		all = append(all, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: c,
			Args: &traceArgs{Name: fmt.Sprintf("core %d", c)},
		})
	}
	if t.hasDir {
		all = append(all, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: dirTid,
			Args: &traceArgs{Name: "directory"},
		})
	}
	all = append(all, t.events...)
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{all, "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
