package telemetry

import (
	"testing"

	"leaserelease/internal/mem"
)

// txnEv builds one CatTxn event for feeding the span assembler directly.
func txnEv(time uint64, core int, kind uint8, line mem.Line, id, aux uint64) Event {
	return Event{Time: time, Core: core, Cat: CatTxn, Kind: kind, Line: line, Val: id, Aux: aux}
}

// The fill path (no forward, no sharers): phases must partition the span
// exactly — ReqNet, Queue, DirService (the emitted L2 latency), Transfer
// the remainder.
func TestSpanFillPathPhases(t *testing.T) {
	sp := NewSpans()
	sp.Keep = true
	const id = uint64(1)<<48 | 1
	sp.OnEvent(txnEv(100, 1, TxnBegin, 7, id, TxnFlagExcl))
	sp.OnEvent(txnEv(110, -1, TxnArrive, 7, id, 3))
	sp.OnEvent(txnEv(130, -1, TxnService, 7, id, 12))
	sp.OnEvent(txnEv(160, 1, TxnComplete, 7, id, 0))

	if len(sp.Completed) != 1 {
		t.Fatalf("completed %d spans, want 1", len(sp.Completed))
	}
	s := sp.Completed[0]
	want := [NumPhases]uint64{
		PhaseReqNet: 10, PhaseQueue: 20, PhaseDirService: 12, PhaseTransfer: 18,
	}
	if s.Phases != want {
		t.Errorf("phases = %v, want %v", s.Phases, want)
	}
	if !s.Excl || s.Lease || s.Upgrade || s.Deferred {
		t.Errorf("flags = excl=%v lease=%v upgrade=%v deferred=%v, want excl only",
			s.Excl, s.Lease, s.Upgrade, s.Deferred)
	}
	if s.Occupancy != 3 || s.Owner != -1 || s.Total() != 60 {
		t.Errorf("occ=%d owner=%d total=%d, want 3/-1/60", s.Occupancy, s.Owner, s.Total())
	}
}

// The invalidation path: the fan-out wait beyond the L2 access is its own
// phase, and the transfer remainder still closes the partition.
func TestSpanInvalPathPhases(t *testing.T) {
	sp := NewSpans()
	sp.Keep = true
	const id = uint64(2)<<48 | 9
	sp.OnEvent(txnEv(100, 2, TxnBegin, 7, id, TxnFlagExcl|TxnFlagUpgrade))
	sp.OnEvent(txnEv(110, -1, TxnArrive, 7, id, 1))
	sp.OnEvent(txnEv(130, -1, TxnService, 7, id, 12))
	sp.OnEvent(txnEv(130, -1, TxnInval, 7, id, 5))
	sp.OnEvent(txnEv(160, 2, TxnComplete, 7, id, 0))

	s := sp.Completed[0]
	want := [NumPhases]uint64{
		PhaseReqNet: 10, PhaseQueue: 20, PhaseDirService: 12,
		PhaseInval: 5, PhaseTransfer: 13,
	}
	if s.Phases != want {
		t.Errorf("phases = %v, want %v", s.Phases, want)
	}
	if !s.Upgrade {
		t.Error("upgrade flag lost")
	}
}

// The forward path with a lease deferral: DirService runs to probe
// arrival, the deferral wait is its own phase, and the owner is recorded.
func TestSpanForwardDeferPhases(t *testing.T) {
	sp := NewSpans()
	sp.Keep = true
	const id = uint64(3)<<48 | 4
	sp.OnEvent(txnEv(100, 0, TxnBegin, 9, id, 0))
	sp.OnEvent(txnEv(108, -1, TxnArrive, 9, id, 1))
	sp.OnEvent(txnEv(120, -1, TxnService, 9, id, 0))
	sp.OnEvent(txnEv(135, 3, TxnProbe, 9, id, 0))
	sp.OnEvent(txnEv(135, 3, TxnDefer, 9, id, 0))
	sp.OnEvent(txnEv(180, 3, TxnProbeDone, 9, id, 0))
	sp.OnEvent(txnEv(195, 0, TxnComplete, 9, id, 0))

	s := sp.Completed[0]
	want := [NumPhases]uint64{
		PhaseReqNet: 8, PhaseQueue: 12, PhaseDirService: 15,
		PhaseDefer: 45, PhaseTransfer: 15,
	}
	if s.Phases != want {
		t.Errorf("phases = %v, want %v", s.Phases, want)
	}
	if !s.Deferred || s.Owner != 3 {
		t.Errorf("deferred=%v owner=%d, want true/3", s.Deferred, s.Owner)
	}
	st := sp.Stats()
	if st.Spans != 1 || st.Deferred != 1 || st.SpanCycles != 95 {
		t.Errorf("stats = %+v, want 1 span, 1 deferred, 95 cycles", st)
	}
}

// Spans beginning before WindowStart are excluded from the accounting but
// still complete (Keep/OnComplete see them), and events for transactions
// the assembler never saw begin are ignored.
func TestSpanWindowFilterAndUnknownIDs(t *testing.T) {
	sp := NewSpans()
	sp.Keep = true
	sp.WindowStart = 500

	// Unknown transaction: no Begin was observed.
	sp.OnEvent(txnEv(510, -1, TxnArrive, 1, 42, 0))
	sp.OnEvent(txnEv(530, 0, TxnComplete, 1, 42, 0))

	// Pre-window transaction.
	const id = uint64(1)<<48 | 7
	sp.OnEvent(txnEv(400, 0, TxnBegin, 1, id, 0))
	sp.OnEvent(txnEv(410, -1, TxnArrive, 1, id, 0))
	sp.OnEvent(txnEv(420, -1, TxnService, 1, id, 4))
	sp.OnEvent(txnEv(440, 0, TxnComplete, 1, id, 0))

	if st := sp.Stats(); st.Spans != 0 || st.SpanCycles != 0 {
		t.Errorf("pre-window span folded into stats: %+v", st)
	}
	if len(sp.Completed) != 1 {
		t.Errorf("completed %d spans, want 1 (the pre-window one, kept)", len(sp.Completed))
	}
	if sp.Open() != 0 {
		t.Errorf("%d transactions still open, want 0", sp.Open())
	}
}

// A pathological service latency (longer than the remaining span) is
// clamped so the transfer remainder can never underflow.
func TestSpanServiceLatencyClamped(t *testing.T) {
	sp := NewSpans()
	sp.Keep = true
	const id = uint64(4)<<48 | 2
	sp.OnEvent(txnEv(100, 0, TxnBegin, 3, id, 0))
	sp.OnEvent(txnEv(105, -1, TxnArrive, 3, id, 0))
	sp.OnEvent(txnEv(110, -1, TxnService, 3, id, 10_000))
	sp.OnEvent(txnEv(140, 0, TxnComplete, 3, id, 0))

	s := sp.Completed[0]
	if s.Phases[PhaseDirService] != 30 || s.Phases[PhaseTransfer] != 0 {
		t.Errorf("service=%d transfer=%d, want clamped 30/0",
			s.Phases[PhaseDirService], s.Phases[PhaseTransfer])
	}
	var sum uint64
	for _, c := range s.Phases {
		sum += c
	}
	if sum != s.Total() {
		t.Errorf("phases sum %d != total %d", sum, s.Total())
	}
}

// OpEnd attributes the spans completed since the last boundary to the
// operation; the op-level identity OpCycles == OpTxnCycles + OpOtherCycles
// == sum(OpPhase) + OpOtherCycles must hold, and unmeasured boundaries
// only reset the pending state.
func TestSpanOpAccounting(t *testing.T) {
	sp := NewSpans()
	emit := func(id, t0 uint64) {
		sp.OnEvent(txnEv(t0, 0, TxnBegin, 1, id, 0))
		sp.OnEvent(txnEv(t0+10, -1, TxnArrive, 1, id, 0))
		sp.OnEvent(txnEv(t0+20, -1, TxnService, 1, id, 8))
		sp.OnEvent(txnEv(t0+40, 0, TxnComplete, 1, id, 0))
	}
	emit(uint64(1)<<48|1, 100) // 40 txn cycles
	emit(uint64(1)<<48|2, 150) // 40 txn cycles
	sp.OpEnd(0, 90, 200, true) // 110-cycle op, 80 inside txns

	st := sp.Stats()
	if st.Ops != 1 || st.OpCycles != 110 || st.OpTxnCycles != 80 || st.OpOtherCycles != 30 {
		t.Errorf("op accounting = %+v, want 1/110/80/30", st)
	}
	var phaseSum uint64
	for _, c := range st.OpPhase {
		phaseSum += c
	}
	if phaseSum != st.OpTxnCycles {
		t.Errorf("sum(OpPhase)=%d != OpTxnCycles=%d", phaseSum, st.OpTxnCycles)
	}

	// Unmeasured boundary: resets pending without touching the stats.
	emit(uint64(1)<<48|3, 300)
	sp.OpEnd(0, 290, 350, false)
	sp.OpEnd(0, 350, 360, true) // no pending spans left
	st = sp.Stats()
	if st.Ops != 2 || st.OpTxnCycles != 80 {
		t.Errorf("unmeasured boundary leaked into op accounting: %+v", st)
	}

	sum := st.Summary()
	if sum.OpPhases == nil {
		t.Fatal("summary missing op_phases with ops recorded")
	}
	if got := sum.OpPhases.Vec(); got != st.OpPhase {
		t.Errorf("summary op phases %v != stats %v", got, st.OpPhase)
	}
}

// The zero-overhead contract: with nobody subscribed to CatTxn, Wants
// reports false and Emit2 on that category allocates nothing — the
// instrumented hot paths stay free when span tracing is off.
func TestTxnDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	var now uint64
	b := NewBus(func() uint64 { return now })
	b.Subscribe(CatLease, func(Event) {}) // an unrelated subscriber
	if b.Wants(CatTxn) {
		t.Fatal("bus wants CatTxn with no subscriber")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		b.Emit2(CatTxn, 0, TxnBegin, 1, 99, TxnFlagExcl)
		b.Emit2(CatTxn, 0, TxnComplete, 1, 99, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled CatTxn emit allocates %.1f objects, want 0", allocs)
	}
}
