package telemetry

import (
	"sort"

	"leaserelease/internal/mem"
)

// LineStats accumulates per-cache-line contention counters. A line's
// Score ranks it in the hot-line profile.
type LineStats struct {
	Line mem.Line `json:"line"`

	Msgs           uint64 `json:"msgs"`            // coherence messages for the line
	Invals         uint64 `json:"invalidations"`   // owner probes + sharer invalidations
	Deferred       uint64 `json:"deferred_probes"` // probes queued behind a lease
	DeferredCycles uint64 `json:"deferred_cycles"` // total cycles probes spent deferred
	Leases         uint64 `json:"leases"`          // lease entries created
	Breaks         uint64 `json:"broken_leases"`   // leases broken by regular requests
	Evictions      uint64 `json:"l1_evictions"`    // L1 replacement victims
	MaxQueue       uint64 `json:"max_dir_queue"`   // peak directory queue occupancy
}

// Score is the contention ranking key: coherence conflict events
// (invalidations, deferred probes, lease breaks) weigh alongside raw
// message traffic.
func (s *LineStats) Score() uint64 {
	return s.Invals + s.Deferred + s.Breaks + s.Msgs
}

// HotLines aggregates LineStats per line and ranks the top K — turning
// "this workload is contended" into "these 3 lines are contended". The
// zero value is ready for use.
type HotLines struct {
	lines map[mem.Line]*LineStats
}

// Get returns the (lazily created) counters for line l.
func (h *HotLines) Get(l mem.Line) *LineStats {
	if h.lines == nil {
		h.lines = make(map[mem.Line]*LineStats)
	}
	s, ok := h.lines[l]
	if !ok {
		s = &LineStats{Line: l}
		h.lines[l] = s
	}
	return s
}

// Len returns the number of distinct lines observed.
func (h *HotLines) Len() int { return len(h.lines) }

// Top returns the k highest-Score lines, ties broken by more deferred
// probes, then more invalidations, then lower line address — a total
// order, so the ranking is deterministic for a given event stream.
func (h *HotLines) Top(k int) []LineStats {
	all := make([]LineStats, 0, len(h.lines))
	for _, s := range h.lines {
		all = append(all, *s)
	}
	sort.Slice(all, func(i, j int) bool {
		si, sj := all[i].Score(), all[j].Score()
		if si != sj {
			return si > sj
		}
		if all[i].Deferred != all[j].Deferred {
			return all[i].Deferred > all[j].Deferred
		}
		if all[i].Invals != all[j].Invals {
			return all[i].Invals > all[j].Invals
		}
		return all[i].Line < all[j].Line
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}
