package telemetry

// Recorder is the standard bus consumer: it folds the event stream into
// cycle-domain histograms (lease hold time, probe-deferral delay,
// directory queue occupancy), the per-line hot-line profile, and an
// optional timeline. OpLatency is not bus-fed — the bench harness
// observes it directly around each data structure operation.
//
// One Recorder serves one machine/run; Attach it to the machine's bus
// before the simulation starts.
type Recorder struct {
	OpLatency  Hist // per-operation latency, cycles (fed by the harness)
	LeaseHold  Hist // lease start -> release/expire/break, cycles
	ProbeDefer Hist // probe deferral delay behind a lease, cycles
	DirQueue   Hist // per-line directory queue occupancy at arrival

	Lines HotLines

	// Timeline, when non-nil (EnableTimeline), collects per-core lease
	// intervals for Chrome-trace export.
	Timeline *Timeline

	// Spans, when non-nil (EnableSpans), assembles CatTxn events into
	// per-transaction spans and critical-path cycle accounting. Attach
	// subscribes CatTxn only when it is set, preserving the zero-overhead
	// disabled path.
	Spans *Spans

	// Ledger, when non-nil (EnableLedger), folds lease-lifecycle and
	// transaction events into the per-line lease-efficiency ledger. Like
	// Spans it makes Attach subscribe CatTxn; when disabled the fast path
	// stays cold.
	Ledger *Ledger
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// EnableTimeline attaches a timeline exporter (see NewTimeline for the
// cyclesPerUS convention) and returns it.
func (r *Recorder) EnableTimeline(cyclesPerUS float64) *Timeline {
	r.Timeline = NewTimeline(cyclesPerUS)
	return r.Timeline
}

// EnableSpans attaches a span assembler and returns it. Call before
// Attach; when a timeline is also enabled, completed spans flow into it
// as nested transaction slices.
func (r *Recorder) EnableSpans() *Spans {
	r.Spans = NewSpans()
	return r.Spans
}

// EnableLedger attaches a lease-efficiency ledger and returns it. Call
// before Attach.
func (r *Recorder) EnableLedger() *Ledger {
	r.Ledger = NewLedger()
	return r.Ledger
}

// Attach subscribes the recorder to every category it consumes. CatTxn is
// subscribed only when spans are enabled, so the transaction-ID minting
// fast path (Bus.Wants(CatTxn)) stays cold otherwise.
func (r *Recorder) Attach(b *Bus) {
	b.Subscribe(CatLease, r.onLease)
	b.Subscribe(CatCoherence, r.onCoherence)
	b.Subscribe(CatCache, r.onCache)
	b.Subscribe(CatDirQueue, r.onDirQueue)
	if r.Spans != nil {
		if r.Timeline != nil && r.Spans.OnComplete == nil {
			r.Spans.OnComplete = r.Timeline.OnTxnSpan
		}
		b.Subscribe(CatTxn, r.Spans.OnEvent)
	}
	if r.Ledger != nil {
		b.Subscribe(CatTxn, r.Ledger.OnTxn)
	}
}

func (r *Recorder) onLease(e Event) {
	switch e.Kind {
	case LeaseCreated:
		r.Lines.Get(e.Line).Leases++
	case LeaseReleased, LeaseExpired, LeaseEvicted, LeaseForced, LeaseBroken:
		if e.Val != NoVal {
			r.LeaseHold.Observe(e.Val)
		}
		if e.Kind == LeaseBroken {
			r.Lines.Get(e.Line).Breaks++
		}
	case ProbeDeferred:
		r.Lines.Get(e.Line).Deferred++
	case ProbeServed:
		if e.Val != NoVal {
			r.ProbeDefer.Observe(e.Val)
			r.Lines.Get(e.Line).DeferredCycles += e.Val
		}
	}
	if r.Timeline != nil {
		r.Timeline.OnLease(e)
	}
	if r.Ledger != nil {
		r.Ledger.OnLease(e)
	}
}

func (r *Recorder) onCoherence(e Event) {
	s := r.Lines.Get(e.Line)
	s.Msgs += e.Val
	if e.Kind == MsgInval || e.Kind == MsgForward {
		s.Invals += e.Val
	}
}

func (r *Recorder) onCache(e Event) {
	r.Lines.Get(e.Line).Evictions++
}

func (r *Recorder) onDirQueue(e Event) {
	r.DirQueue.Observe(e.Val)
	if s := r.Lines.Get(e.Line); e.Val > s.MaxQueue {
		s.MaxQueue = e.Val
	}
}

// Finish closes the timeline (if any) at simulated end-of-run time now.
func (r *Recorder) Finish(now uint64) {
	if r.Timeline != nil {
		r.Timeline.Finish(now)
	}
}
