package telemetry

import (
	"fmt"

	"leaserelease/internal/mem"
)

// Phase indexes one segment of a coherence transaction's critical path.
// The segments are consecutive and disjoint, so for every completed span
// they sum exactly to the transaction's total latency (Complete - Begin).
type Phase int

const (
	// PhaseReqNet: request network traversal, core -> directory (includes
	// mesh jitter and injected message delays).
	PhaseReqNet Phase = iota
	// PhaseQueue: wait in the line's directory FIFO queue (the paper's
	// Assumption 1 queueing delay, plus any injected directory stall).
	PhaseQueue
	// PhaseDirService: directory tag/data service — L2 tag + data access
	// (+DRAM on a cold fill); on the forward path, tag lookup plus the
	// hop to the owning core.
	PhaseDirService
	// PhaseInval: sharer invalidation fan-out beyond the L2 access.
	PhaseInval
	// PhaseDefer: probe deferral behind the owner's lease, bounded by
	// MAX_LEASE_TIME (Proposition 1).
	PhaseDefer
	// PhaseTransfer: data transfer back to the requesting core.
	PhaseTransfer
	// NumPhases is the number of critical-path phases.
	NumPhases
)

// PhaseName returns the display name of a phase under the named coherence
// protocol. The only divergence is PhaseInval: Tardis has no invalidation
// fan-out — its writes jump past read reservations instead — so under
// Tardis that bucket carries tag-only renew/extension service cycles and
// is labeled accordingly. Every other phase (and every phase under MSI)
// keeps its canonical String name.
func PhaseName(p Phase, protocol string) string {
	if protocol == "tardis" && p == PhaseInval {
		return "renew-extend"
	}
	return p.String()
}

func (p Phase) String() string {
	switch p {
	case PhaseReqNet:
		return "req-net"
	case PhaseQueue:
		return "dir-queue"
	case PhaseDirService:
		return "dir-service"
	case PhaseInval:
		return "inval-fanout"
	case PhaseDefer:
		return "probe-defer"
	case PhaseTransfer:
		return "transfer"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Span is one reconstructed coherence transaction: a GetS/GetX/upgrade
// request and everything it spawned (forward, deferral, invalidations),
// with a per-phase breakdown of its latency.
type Span struct {
	ID    uint64   // transaction ID minted at the requesting core
	Core  int      // requesting core
	Owner int      // probed owner core on the forward path, else -1
	Line  mem.Line // requested cache line

	Excl     bool // GetX (exclusive) request
	Lease    bool // initiated by a Lease instruction
	Upgrade  bool // requester held the line Shared
	Deferred bool // the owner probe was deferred behind a lease
	Renewal  bool // served as a tag-only timestamp renewal (Tardis)

	Begin, End uint64 // submit and completion cycles
	Occupancy  uint64 // directory queue occupancy at arrival

	Phases [NumPhases]uint64 // cycle breakdown; sums to End-Begin
}

// Total returns the span's end-to-end latency in cycles.
func (s *Span) Total() uint64 { return s.End - s.Begin }

// openSpan is a transaction mid-assembly.
type openSpan struct {
	span       Span
	arrive     uint64
	service    uint64
	serviceLat uint64 // TxnService Aux: L2 service cycles (0 on forward path)
	invalExtra uint64 // TxnInval Aux: fan-out wait beyond the L2 access
	probe      uint64 // probe arrival at the owner (forward path)
	probeDone  uint64 // owner downgraded
	forwarded  bool
}

// TxnStats is the aggregated critical-path cycle accounting of a run's
// coherence transactions, plus the operation-level roll-up maintained by
// the harness's OpEnd calls. All counters cover only spans whose Begin is
// at or after WindowStart.
type TxnStats struct {
	Spans      uint64            // completed transactions counted
	Deferred   uint64            // transactions that hit a lease deferral
	Renewals   uint64            // transactions served as tag-only renewals (Tardis)
	SpanCycles uint64            // sum of span totals
	Phase      [NumPhases]uint64 // per-phase cycle totals across spans

	// Operation-level accounting (filled when the harness brackets ops
	// with OpEnd): OpCycles is total measured operation latency,
	// OpTxnCycles the part spent inside coherence transactions (with its
	// per-phase split in OpPhase), and OpOtherCycles the remainder (L1
	// hits and local compute). OpCycles == OpTxnCycles + OpOtherCycles
	// and OpTxnCycles == sum(OpPhase) by construction, which is what lets
	// a "where the cycles went" table account for 100% of measured
	// operation latency.
	Ops           uint64
	OpCycles      uint64
	OpTxnCycles   uint64
	OpOtherCycles uint64
	OpPhase       [NumPhases]uint64
}

// Spans assembles CatTxn bus events into per-transaction spans and folds
// them into critical-path cycle accounting. Subscribe OnEvent to CatTxn
// (Recorder.EnableSpans does this); the zero value is not ready — use
// NewSpans.
type Spans struct {
	// WindowStart excludes transactions beginning before it (the harness
	// sets it to the warm-up boundary so accounting matches the measured
	// window).
	WindowStart uint64

	// Keep retains every completed span in Completed (tests, exporters).
	// Off by default: long runs complete millions of transactions.
	Keep      bool
	Completed []Span

	// OnComplete, when non-nil, observes every completed span in
	// completion order (the Timeline uses it to draw transaction slices).
	OnComplete func(*Span)

	stats   TxnStats
	open    map[uint64]*openSpan
	pending []pendingOp // per-core span cycles since the last op boundary
}

// pendingOp accumulates the spans completed on one core since its last
// operation boundary.
type pendingOp struct {
	txnCycles uint64
	phase     [NumPhases]uint64
	deferred  uint64
	spans     uint64
}

// NewSpans returns an empty span assembler.
func NewSpans() *Spans {
	return &Spans{open: make(map[uint64]*openSpan)}
}

// Stats returns a snapshot of the aggregated cycle accounting.
func (sp *Spans) Stats() TxnStats { return sp.stats }

// Open returns the number of transactions still in flight.
func (sp *Spans) Open() int { return len(sp.open) }

// OnEvent consumes one CatTxn event. Events for one transaction arrive in
// simulated-time order; events of unknown transactions (begun before the
// assembler attached) are ignored.
func (sp *Spans) OnEvent(e Event) {
	if e.Cat != CatTxn {
		return
	}
	id := e.Val
	if e.Kind == TxnBegin {
		o := &openSpan{span: Span{
			ID: id, Core: e.Core, Owner: -1, Line: e.Line, Begin: e.Time,
			Excl:    e.Aux&TxnFlagExcl != 0,
			Lease:   e.Aux&TxnFlagLease != 0,
			Upgrade: e.Aux&TxnFlagUpgrade != 0,
		}}
		sp.open[id] = o
		return
	}
	o, ok := sp.open[id]
	if !ok {
		return
	}
	switch e.Kind {
	case TxnArrive:
		o.arrive = e.Time
		o.span.Occupancy = e.Aux
	case TxnService:
		o.service = e.Time
		o.serviceLat = e.Aux
	case TxnInval:
		o.invalExtra = e.Aux
	case TxnRenew:
		// Tag-only renewal service cycles land in the PhaseInval bucket:
		// Tardis replaces invalidation fan-out with rts renew/extension,
		// so the bucket stays the "coherence work beyond the L2 access"
		// slot under either protocol (see PhaseName).
		o.invalExtra = e.Aux
		o.span.Renewal = true
	case TxnProbe:
		o.forwarded = true
		o.probe = e.Time
		o.span.Owner = e.Core
	case TxnDefer:
		o.span.Deferred = true
	case TxnProbeDone:
		o.probeDone = e.Time
	case TxnComplete:
		delete(sp.open, id)
		o.span.End = e.Time
		sp.finalize(o)
	}
}

// finalize computes the phase breakdown and folds the span into the
// aggregates. Phases are consecutive critical-path segments, so they sum
// exactly to End-Begin; PhaseTransfer is the closing remainder.
func (sp *Spans) finalize(o *openSpan) {
	s := &o.span
	s.Phases[PhaseReqNet] = o.arrive - s.Begin
	s.Phases[PhaseQueue] = o.service - o.arrive
	if o.forwarded {
		s.Phases[PhaseDirService] = o.probe - o.service
		s.Phases[PhaseDefer] = o.probeDone - o.probe
		s.Phases[PhaseTransfer] = s.End - o.probeDone
	} else {
		lat := o.serviceLat
		if rest := s.End - o.service; lat > rest {
			lat = rest
		}
		s.Phases[PhaseDirService] = lat
		s.Phases[PhaseInval] = o.invalExtra
		s.Phases[PhaseTransfer] = s.End - o.service - lat - o.invalExtra
	}

	if s.Begin >= sp.WindowStart {
		sp.stats.Spans++
		sp.stats.SpanCycles += s.Total()
		if s.Deferred {
			sp.stats.Deferred++
		}
		if s.Renewal {
			sp.stats.Renewals++
		}
		for i, c := range s.Phases {
			sp.stats.Phase[i] += c
		}
		p := sp.pendingFor(s.Core)
		p.spans++
		p.txnCycles += s.Total()
		if s.Deferred {
			p.deferred++
		}
		for i, c := range s.Phases {
			p.phase[i] += c
		}
	}
	if sp.Keep {
		sp.Completed = append(sp.Completed, *s)
	}
	if sp.OnComplete != nil {
		sp.OnComplete(s)
	}
}

func (sp *Spans) pendingFor(core int) *pendingOp {
	for core >= len(sp.pending) {
		sp.pending = append(sp.pending, pendingOp{})
	}
	return &sp.pending[core]
}

// OpEnd closes one data structure operation on a core: the harness calls
// it with the operation's [start, end) cycle window and whether the
// operation lies inside the measurement window. Spans completed on the
// core since the previous boundary are attributed to the operation;
// measured operations roll up into the op-level accounting, unmeasured
// ones only reset the pending state.
func (sp *Spans) OpEnd(core int, start, end uint64, measured bool) {
	p := sp.pendingFor(core)
	if measured {
		sp.stats.Ops++
		sp.stats.OpCycles += end - start
		sp.stats.OpTxnCycles += p.txnCycles
		sp.stats.OpOtherCycles += (end - start) - p.txnCycles
		for i, c := range p.phase {
			sp.stats.OpPhase[i] += c
		}
	}
	*p = pendingOp{}
}

// PhaseCycles is one row of a rendered cycle-accounting breakdown.
type PhaseCycles struct {
	Name   string
	Cycles uint64
}

// Breakdown lists the per-phase totals in canonical phase order, followed
// by the op-level "other" bucket (L1 hits + local compute) when operation
// accounting is present.
func (t *TxnStats) Breakdown() []PhaseCycles {
	out := make([]PhaseCycles, 0, NumPhases+1)
	for p := Phase(0); p < NumPhases; p++ {
		out = append(out, PhaseCycles{p.String(), t.Phase[p]})
	}
	if t.Ops > 0 {
		out = append(out, PhaseCycles{"l1+compute", t.OpOtherCycles})
	}
	return out
}

// TxnPhases is the named-field form of a per-phase cycle split.
type TxnPhases struct {
	ReqNet     uint64 `json:"req_net_cycles"`
	QueueWait  uint64 `json:"dir_queue_wait_cycles"`
	DirService uint64 `json:"dir_service_cycles"`
	InvalWait  uint64 `json:"inval_fanout_cycles"`
	DeferWait  uint64 `json:"probe_defer_cycles"`
	Transfer   uint64 `json:"data_transfer_cycles"`
}

func phasesOf(p [NumPhases]uint64) TxnPhases {
	return TxnPhases{
		ReqNet:     p[PhaseReqNet],
		QueueWait:  p[PhaseQueue],
		DirService: p[PhaseDirService],
		InvalWait:  p[PhaseInval],
		DeferWait:  p[PhaseDefer],
		Transfer:   p[PhaseTransfer],
	}
}

// Vec returns the split back in canonical Phase order.
func (t TxnPhases) Vec() [NumPhases]uint64 {
	var v [NumPhases]uint64
	v[PhaseReqNet] = t.ReqNet
	v[PhaseQueue] = t.QueueWait
	v[PhaseDirService] = t.DirService
	v[PhaseInval] = t.InvalWait
	v[PhaseDefer] = t.DeferWait
	v[PhaseTransfer] = t.Transfer
	return v
}

// TxnSummary is the JSON form of TxnStats, as embedded in run reports.
// Phases covers every window transaction; OpPhases only the transactions
// attributed to measured operations, so OpCycles == OpOtherCycles +
// sum(OpPhases) exactly.
type TxnSummary struct {
	Count       uint64    `json:"count"`
	Deferred    uint64    `json:"deferred"`
	Renewals    uint64    `json:"renewals,omitempty"` // omitted under MSI, so its reports are unchanged
	TotalCycles uint64    `json:"total_cycles"`
	Phases      TxnPhases `json:"phases"`

	Ops           uint64     `json:"ops,omitempty"`
	OpCycles      uint64     `json:"op_cycles,omitempty"`
	OpTxnCycles   uint64     `json:"op_txn_cycles,omitempty"`
	OpOtherCycles uint64     `json:"op_other_cycles,omitempty"`
	OpPhases      *TxnPhases `json:"op_phases,omitempty"`
}

// Summary converts the accounting to its JSON form.
func (t *TxnStats) Summary() TxnSummary {
	s := TxnSummary{
		Count: t.Spans, Deferred: t.Deferred, Renewals: t.Renewals, TotalCycles: t.SpanCycles,
		Phases: phasesOf(t.Phase),
		Ops:    t.Ops, OpCycles: t.OpCycles,
		OpTxnCycles: t.OpTxnCycles, OpOtherCycles: t.OpOtherCycles,
	}
	if t.Ops > 0 {
		op := phasesOf(t.OpPhase)
		s.OpPhases = &op
	}
	return s
}
