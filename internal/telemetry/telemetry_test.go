package telemetry

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"leaserelease/internal/mem"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero hist must report zeros")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000, 1000, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1<<40 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	wantMean := float64(0+1+2+3+100+1000+1000+(1<<40)) / 8
	if h.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

// Quantiles must be monotone in q, bounded by [min, max], and roughly
// track the underlying distribution despite log bucketing.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	prev := uint64(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("quantile %v = %d outside [%d, %d]", q, v, h.Min(), h.Max())
		}
		prev = v
	}
	p50 := h.Quantile(0.5)
	// Log-bucketed: p50 of uniform(1..1000) must land within the
	// containing power-of-two bucket of the true median 500.
	if p50 < 256 || p50 > 1000 {
		t.Fatalf("p50 = %d, want within [256, 1000]", p50)
	}
}

func TestHistAddMatchesMergedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var a, b, merged Hist
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 20))
		merged.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Add(&b)
	if !reflect.DeepEqual(a, merged) {
		t.Fatal("Add result differs from single-stream histogram")
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	if b.Wants(CatLease) {
		t.Fatal("nil bus wants events")
	}
	b.Emit(CatLease, 0, LeaseCreated, 1, 0) // must not panic
}

func TestBusRouting(t *testing.T) {
	now := uint64(7)
	b := NewBus(func() uint64 { return now })
	var lease, all []Event
	b.Subscribe(CatLease, func(e Event) { lease = append(lease, e) })
	b.SubscribeAll(func(e Event) { all = append(all, e) })
	if !b.Wants(CatLease) || !b.Wants(CatCache) {
		t.Fatal("Wants must reflect subscriptions")
	}
	b.Emit(CatLease, 3, LeaseStarted, mem.Line(0x40), NoVal)
	now = 9
	b.Emit(CatCache, 1, 2, mem.Line(0x80), 1)
	if len(lease) != 1 || len(all) != 2 {
		t.Fatalf("lease=%d all=%d, want 1/2", len(lease), len(all))
	}
	want := Event{Time: 7, Core: 3, Cat: CatLease, Kind: LeaseStarted, Line: 0x40, Val: NoVal}
	if lease[0] != want {
		t.Fatalf("event = %+v, want %+v", lease[0], want)
	}
	if all[1].Time != 9 || all[1].Cat != CatCache {
		t.Fatalf("second event = %+v", all[1])
	}
}

func TestHotLinesRankingDeterministic(t *testing.T) {
	build := func(order []int) []LineStats {
		var h HotLines
		for _, i := range order {
			l := mem.Line(i)
			s := h.Get(l)
			s.Msgs = uint64(i % 3)     // many score ties
			s.Deferred = uint64(i % 2) // tie-break level 1
			s.Invals = uint64(i % 2)   // tie-break level 2
		}
		return h.Top(10)
	}
	order := make([]int, 64)
	for i := range order {
		order[i] = i
	}
	a := build(order)
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	bTop := build(order)
	if !reflect.DeepEqual(a, bTop) {
		t.Fatalf("ranking depends on insertion order:\n%v\n%v", a, bTop)
	}
	for i := 1; i < len(a); i++ {
		if a[i].Score() > a[i-1].Score() {
			t.Fatal("ranking not sorted by score")
		}
	}
}

func TestTimelineDeterministicOutput(t *testing.T) {
	feed := func() *Timeline {
		tl := NewTimeline(1000)
		tl.OnLease(Event{Time: 100, Core: 1, Kind: LeaseStarted, Line: 0x40})
		tl.OnLease(Event{Time: 150, Core: 0, Kind: LeaseStarted, Line: 0x80})
		tl.OnLease(Event{Time: 160, Core: 1, Kind: ProbeDeferred, Line: 0x40})
		tl.OnLease(Event{Time: 180, Core: 1, Kind: LeaseReleased, Line: 0x40, Val: 80})
		tl.OnLease(Event{Time: 500, Core: 2, Kind: LeaseStarted, Line: 0xc0})
		tl.Finish(1000) // cores 0 and 2 still open
		return tl
	}
	var a, b bytes.Buffer
	if err := feed().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := feed().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("timeline output not byte-for-byte deterministic")
	}
	out := a.String()
	for _, want := range []string{`"traceEvents"`, `"ph": "X"`, `"ph": "i"`, `"reason": "open at end of run"`, `"core 2"`} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Fatalf("timeline output missing %q:\n%s", want, out)
		}
	}
}

// A closed lease interval must convert cycles to trace microseconds via
// CyclesPerUS.
func TestTimelineUnits(t *testing.T) {
	tl := NewTimeline(1000)
	tl.OnLease(Event{Time: 2000, Core: 0, Kind: LeaseStarted, Line: 0x40})
	tl.OnLease(Event{Time: 4000, Core: 0, Kind: LeaseExpired, Line: 0x40, Val: 2000})
	if len(tl.events) != 1 {
		t.Fatalf("events = %d, want 1", len(tl.events))
	}
	e := tl.events[0]
	if e.Ts != 2.0 || e.Dur == nil || *e.Dur != 2.0 {
		t.Fatalf("ts/dur = %v/%v, want 2.0/2.0", e.Ts, e.Dur)
	}
	if e.Args == nil || e.Args.HoldCycles != 2000 || e.Args.Reason != "expire" {
		t.Fatalf("args = %+v", e.Args)
	}
}

func TestRecorderFoldsEvents(t *testing.T) {
	now := uint64(0)
	b := NewBus(func() uint64 { return now })
	r := NewRecorder()
	r.EnableTimeline(1000)
	r.Attach(b)

	l := mem.Line(0x40)
	b.Emit(CatLease, 0, LeaseCreated, l, NoVal)
	now = 10
	b.Emit(CatLease, 0, LeaseStarted, l, NoVal)
	now = 20
	b.Emit(CatLease, 0, ProbeDeferred, l, NoVal)
	now = 60
	b.Emit(CatLease, 0, LeaseReleased, l, 50)
	b.Emit(CatLease, 0, ProbeServed, l, 40)
	b.Emit(CatCoherence, -1, MsgInval, l, 2)
	b.Emit(CatCoherence, -1, MsgReply, l, 1)
	b.Emit(CatDirQueue, 1, 0, l, 5)
	b.Emit(CatCache, 0, 2, l, 1)
	// A lease that never starts must not pollute the hold histogram.
	b.Emit(CatLease, 1, LeaseEvicted, mem.Line(0x80), NoVal)

	if got := r.LeaseHold.Count(); got != 1 {
		t.Fatalf("hold count = %d, want 1", got)
	}
	if got := r.LeaseHold.Max(); got != 50 {
		t.Fatalf("hold max = %d, want 50", got)
	}
	if got := r.ProbeDefer.Max(); got != 40 {
		t.Fatalf("defer max = %d, want 40", got)
	}
	if got := r.DirQueue.Max(); got != 5 {
		t.Fatalf("dirq max = %d, want 5", got)
	}
	s := r.Lines.Get(l)
	if s.Leases != 1 || s.Deferred != 1 || s.Msgs != 3 || s.Invals != 2 ||
		s.Evictions != 1 || s.MaxQueue != 5 {
		t.Fatalf("line stats = %+v", s)
	}
	if len(r.Timeline.events) != 2 { // probe-deferred instant + closed slice
		t.Fatalf("timeline events = %d, want 2", len(r.Timeline.events))
	}
}
