package telemetry

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets covers the full uint64 range: bucket b holds values v with
// bits.Len64(v) == b, i.e. bucket 0 is exactly {0} and bucket b >= 1 is
// [2^(b-1), 2^b).
const histBuckets = 65

// Hist is a fixed-size, allocation-free, log2-bucketed histogram of
// cycle-domain measurements. The zero value is an empty histogram ready
// for use; Observe is O(1) and never allocates, so it is safe on the
// simulator's hot path.
type Hist struct {
	counts   [histBuckets]uint64
	n        uint64
	sum      uint64
	min, max uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.counts[bits.Len64(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n }

// Min returns the smallest observation (0 if empty).
func (h *Hist) Min() uint64 { return h.min }

// Max returns the largest observation (0 if empty).
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the exact arithmetic mean (0 if empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Add merges o into h.
func (h *Hist) Add(o *Hist) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// bucketBounds returns the inclusive value range covered by bucket b.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	lo = uint64(1) << uint(b-1)
	hi = lo<<1 - 1
	return lo, hi
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1), linearly
// interpolated inside the containing log bucket and clamped to the exact
// observed [min, max]. Deterministic for identical observation streams.
func (h *Hist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	var cum float64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			lo, hi := bucketBounds(b)
			frac := (target - cum) / float64(c)
			v := lo + uint64(frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += float64(c)
	}
	return h.max
}

// HistBucket is one occupied log2 bucket in a Summary's full bucket
// array: Count observations fell in the inclusive value range [Lo, Hi].
type HistBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Summary is the percentile digest of a Hist, as reported in JSON run
// reports and bench results. Buckets carries the full (occupied-only)
// bucket array so reports can be re-analyzed offline without re-running.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	// Buckets is the default full bucket form; CompactBuckets is the
	// opt-in compacted form (Compact): [lo, count] pairs, the bucket's
	// upper bound being implied by the log2 bucketing. At most one of the
	// two is populated, so default reports marshal byte-for-byte as
	// before the compact form existed.
	Buckets        []HistBucket `json:"buckets,omitempty"`
	CompactBuckets [][2]uint64  `json:"buckets_compact,omitempty"`
}

// Compact converts the full bucket array in place to the compacted
// [lo, count] pair form (satisfying offline re-analysis at roughly a
// third of the bytes). A summary already compacted, or without buckets,
// is unchanged.
func (s *Summary) Compact() {
	if len(s.Buckets) == 0 {
		return
	}
	s.CompactBuckets = make([][2]uint64, len(s.Buckets))
	for i, b := range s.Buckets {
		s.CompactBuckets[i] = [2]uint64{b.Lo, b.Count}
	}
	s.Buckets = nil
}

// Summary digests the histogram into count/mean/p50/p90/p99/min/max plus
// the occupied bucket array.
func (h *Hist) Summary() Summary {
	var buckets []HistBucket
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(b)
		buckets = append(buckets, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return Summary{
		Count:   h.n,
		Mean:    h.Mean(),
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
		Min:     h.min,
		Max:     h.max,
		Buckets: buckets,
	}
}

// String renders the digest on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// String renders the histogram digest plus a compact bucket sparkline.
func (h *Hist) String() string {
	var b strings.Builder
	b.WriteString(h.Summary().String())
	if h.n == 0 {
		return b.String()
	}
	b.WriteString(" |")
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, _ := bucketBounds(i)
		fmt.Fprintf(&b, " %d:%d", lo, c)
	}
	return b.String()
}
