// Package telemetry is the simulator's observability layer: a structured
// event bus the machine/coherence/cache layers emit into, cycle-domain
// log-bucketed histograms, a hot-line profiler, and timeline/JSON
// exporters.
//
// The layer is zero-overhead when disabled: every emit site is guarded by
// Bus.Wants, which is a nil-check plus one bitmask test, and no Event is
// even constructed unless at least one subscriber registered for the
// category. Because all event payloads are keyed to the deterministic
// simulated clock, all derived telemetry (histograms, hot-line rankings,
// timelines) is byte-for-byte reproducible for a given seed.
package telemetry

import "leaserelease/internal/mem"

// Category partitions events into independently subscribable streams.
type Category uint8

const (
	// CatLease carries lease-lifecycle events (Event.Kind is one of the
	// Lease*/Probe* kinds below, mirrored by machine.TraceKind).
	CatLease Category = iota
	// CatCoherence carries per-line coherence-message events (Event.Kind
	// is one of the Msg* kinds; Event.Val is the message count).
	CatCoherence
	// CatCache carries L1 eviction events (Event.Kind is the victim's MSI
	// state as a uint8; Event.Line is the victim line).
	CatCache
	// CatDirQueue carries directory queue-pressure events: one event per
	// request arrival, with Event.Val the line's queue occupancy
	// (including the request in service).
	CatDirQueue
	// CatTxn carries coherence-transaction span events (Event.Kind is one
	// of the Txn* kinds below; Event.Val is the transaction ID minted at
	// the requesting core, Event.Aux a kind-specific payload). The span
	// assembler (Spans) reconstructs per-transaction phase breakdowns
	// from this stream.
	CatTxn
	// NumCategories is the number of event categories.
	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatLease:
		return "lease"
	case CatCoherence:
		return "coherence"
	case CatCache:
		return "cache"
	case CatDirQueue:
		return "dirqueue"
	case CatTxn:
		return "txn"
	}
	return "category?"
}

// Lease-lifecycle kinds (CatLease). The first nine values are the canonical
// numbering of machine.TraceKind, which aliases them; ProbeServed exists
// only on the bus (it carries the deferral delay, not a lease transition).
const (
	LeaseCreated  uint8 = iota // lease table entry created
	LeaseStarted               // ownership granted, countdown running; Val = granted duration
	LeaseReleased              // voluntary release; Val = hold cycles
	LeaseExpired               // MAX_LEASE_TIME timer fired; Val = hold cycles
	LeaseEvicted               // FIFO-evicted by a newer lease; Val = hold cycles or NoVal
	LeaseForced                // force-released to unpin a full L1 set; Val likewise
	LeaseBroken                // broken by a regular request (§5); Val likewise
	ProbeDeferred              // an incoming probe was queued behind the lease
	LeaseIgnored               // skipped by the §5 speculative predictor
	ProbeServed                // a deferred probe was delivered; Val = deferral delay
)

// Coherence message kinds (CatCoherence). coherence.MsgKind aliases these,
// keeping the numbering in one place.
const (
	MsgRequest uint8 = iota
	MsgReply
	MsgForward
	MsgInval
	MsgAck
	MsgWriteback
)

// NumMsgKinds is the number of coherence message kinds.
const NumMsgKinds = 6

// Coherence-transaction span kinds (CatTxn). Every CatTxn event carries the
// transaction ID in Event.Val; Event.Aux is kind-specific. A transaction's
// life is Begin -> Arrive -> Service -> { fill | inval fan-out |
// forward/probe [-> defer] } -> Complete; the span assembler turns the
// timestamps into a per-phase cycle breakdown.
const (
	// TxnBegin: the requesting core submitted the request. Aux is a
	// TxnFlag* bitmask describing the request.
	TxnBegin uint8 = iota
	// TxnArrive: the request entered the line's directory FIFO queue.
	// Aux is the queue occupancy at arrival (including in-service).
	TxnArrive
	// TxnService: the request became head-of-queue and entered service.
	// Aux is the directory's L2 tag/data service latency in cycles (0 on
	// the forward path, where service time is measured to probe arrival).
	TxnService
	// TxnInval: sharer invalidations fanned out. Aux is the extra wait in
	// cycles beyond the L2 access before the grant can be sent.
	TxnInval
	// TxnProbe: the forwarded probe reached the owning core (Event.Core).
	TxnProbe
	// TxnDefer: the probe was queued behind the owner's active lease.
	TxnDefer
	// TxnProbeDone: the owner downgraded its copy (immediately, or after
	// the deferring lease released).
	TxnProbeDone
	// TxnComplete: the grant was committed and the requester resumed.
	TxnComplete
	// TxnRenew: a timestamp protocol served the request as a tag-only
	// renewal — the line was unwritten since the requester's last copy, so
	// only its read reservation (rts) was extended, with no data transfer.
	// Aux is the renewal service latency in cycles; the span assembler
	// books it into the PhaseInval bucket, which under Tardis holds
	// renew/extension cycles instead of invalidation fan-out.
	TxnRenew
)

// TxnFlag* describe a transaction in TxnBegin's Aux payload.
const (
	TxnFlagExcl    uint64 = 1 << iota // GetX (exclusive) request
	TxnFlagLease                      // initiated by a Lease instruction
	TxnFlagUpgrade                    // requester held the line Shared (S->M upgrade)
)

// NoVal marks an Event.Val that carries no measurement (e.g. the hold time
// of a lease that never started its countdown).
const NoVal = ^uint64(0)

// Event is one telemetry event. Kind and Val are category-specific; see the
// Category constants.
type Event struct {
	Time uint64   // simulated cycle of the event
	Core int      // emitting core, or -1 for directory-side events
	Cat  Category // event category
	Kind uint8    // category-specific subtype
	Line mem.Line // cache line the event concerns (0 if none)
	Val  uint64   // category-specific payload (duration, occupancy, count)
	Aux  uint64   // secondary payload (CatTxn kind payloads; else 0)
}

// Bus is a multi-subscriber event bus over the simulated machine. A nil
// *Bus is valid and inert: Wants reports false and Emit is a no-op, so
// emitters need no nil checks beyond calling the methods.
//
// Subscribers run synchronously on the simulation goroutine, in
// subscription order; they observe events in global simulated-time order
// and must not mutate simulated state.
type Bus struct {
	now  func() uint64
	mask uint32
	subs [NumCategories][]func(Event)

	// Buffered (sharded) mode: one append-only buffer per shard, drained
	// into the subscribers in canonical order at window barriers. Nil for
	// a sequential run — every emission then delivers synchronously. See
	// shardbus.go.
	bufs    [][]bufEntry
	scratch []bufEntry

	// needSync records that some subscriber must observe events
	// synchronously with simulated execution (RequireSync); such a bus
	// must not be buffered. drained counts entries delivered by barrier
	// drains (DrainedEntries).
	needSync bool
	drained  uint64
}

// NewBus creates a bus whose events are timestamped by now (typically the
// simulation engine's clock).
func NewBus(now func() uint64) *Bus {
	return &Bus{now: now}
}

// Subscribe registers fn for one category and enables emission for it.
func (b *Bus) Subscribe(cat Category, fn func(Event)) {
	if cat >= NumCategories {
		panic("telemetry: bad category")
	}
	b.subs[cat] = append(b.subs[cat], fn)
	b.mask |= 1 << cat
}

// SubscribeAll registers fn for every category.
func (b *Bus) SubscribeAll(fn func(Event)) {
	for c := Category(0); c < NumCategories; c++ {
		b.Subscribe(c, fn)
	}
}

// Wants reports whether anyone is listening to cat. It is the hot-path
// guard: emitters call it before assembling an event's payload.
func (b *Bus) Wants(cat Category) bool {
	return b != nil && b.mask&(1<<cat) != 0
}

// Emit timestamps and delivers an event to cat's subscribers. No-op when
// nobody subscribed (or b is nil).
func (b *Bus) Emit(cat Category, core int, kind uint8, line mem.Line, val uint64) {
	b.Emit2(cat, core, kind, line, val, 0)
}

// Emit2 is Emit with the secondary Aux payload (CatTxn events use it for
// kind-specific measurements alongside the transaction ID in val).
func (b *Bus) Emit2(cat Category, core int, kind uint8, line mem.Line, val, aux uint64) {
	if !b.Wants(cat) {
		return
	}
	b.deliver(Event{Time: b.now(), Core: core, Cat: cat, Kind: kind, Line: line, Val: val, Aux: aux})
}

// deliver hands one event to its category's subscribers.
func (b *Bus) deliver(e Event) {
	for _, fn := range b.subs[e.Cat] {
		fn(e)
	}
}
