package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"

	"leaserelease/internal/mem"
)

// leaseEv builds one CatLease event for feeding the ledger directly.
func leaseEv(time uint64, core int, kind uint8, line mem.Line, val uint64) Event {
	return Event{Time: time, Core: core, Cat: CatLease, Kind: kind, Line: line, Val: val}
}

// The core conservation identity: for every line, the granted cycles of
// closed leases partition exactly into used and unused cycles, whatever
// mix of end kinds closed them.
func TestLedgerConservation(t *testing.T) {
	ld := NewLedger()

	// Line 7: an early release (40 of 100) and a full-duration expiry
	// that absorbed operations.
	ld.OnLease(leaseEv(100, 0, LeaseStarted, 7, 100))
	ld.OpEnd(0, true)
	ld.OnLease(leaseEv(140, 0, LeaseReleased, 7, 40))
	ld.OnLease(leaseEv(200, 1, LeaseStarted, 7, 100))
	ld.OpEnd(1, true)
	ld.OpEnd(1, true)
	ld.OnLease(leaseEv(300, 1, LeaseExpired, 7, 100))

	// Line 9: an expiry that absorbed nothing — its full hold is idle.
	ld.OnLease(leaseEv(150, 2, LeaseStarted, 9, 80))
	ld.OnLease(leaseEv(230, 2, LeaseExpired, 9, 80))

	for _, want := range []struct {
		line                                mem.Line
		leases, expired                     uint64
		granted, used, unused, idle, opsUnd uint64
	}{
		{7, 2, 1, 200, 140, 60, 0, 3},
		{9, 1, 1, 80, 80, 0, 80, 0},
	} {
		s := ld.Line(want.line)
		if s.Leases != want.leases || s.Expired != want.expired ||
			s.GrantedCycles != want.granted || s.UsedCycles != want.used ||
			s.UnusedCycles != want.unused || s.ExpiredIdleCycles != want.idle ||
			s.OpsUnder != want.opsUnd {
			t.Errorf("line %d ledger = %+v, want %+v", want.line, *s, want)
		}
		if s.GrantedCycles != s.UsedCycles+s.UnusedCycles {
			t.Errorf("line %d: granted %d != used %d + unused %d",
				want.line, s.GrantedCycles, s.UsedCycles, s.UnusedCycles)
		}
	}
	if got := ld.Line(7).WastedCycles(); got != 60 {
		t.Errorf("line 7 wasted = %d, want 60 (unused only)", got)
	}
	if got := ld.Line(9).WastedCycles(); got != 80 {
		t.Errorf("line 9 wasted = %d, want 80 (idle expiry)", got)
	}
	tot := ld.Totals()
	if tot.Leases != 3 || tot.GrantedCycles != 280 || tot.UsedCycles != 220 ||
		tot.UnusedCycles != 60 || tot.OpsUnder != 3 || tot.OpenAtEnd != 0 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.Efficiency != 220.0/280.0 || tot.Amortization != 1.0 {
		t.Errorf("efficiency=%v amortization=%v, want 220/280 and 1",
			tot.Efficiency, tot.Amortization)
	}
}

// Leases started before WindowStart, or whose grant never started a
// countdown (Val == NoVal), are excluded from the cycle totals; a lease
// still open at the end is reported but not folded.
func TestLedgerWindowAndNoVal(t *testing.T) {
	ld := NewLedger()
	ld.WindowStart = 500

	// Pre-window lease: start and end both ignored for accounting.
	ld.OnLease(leaseEv(400, 0, LeaseStarted, 3, 50))
	ld.OnLease(leaseEv(450, 0, LeaseReleased, 3, 50))

	// Countdown never started: FIFO-evicted while pending.
	ld.OnLease(leaseEv(600, 1, LeaseStarted, 3, NoVal))
	ld.OnLease(leaseEv(610, 1, LeaseEvicted, 3, NoVal))

	// End with no matching start (e.g. created pre-attach): ignored.
	ld.OnLease(leaseEv(620, 2, LeaseBroken, 3, 10))

	// In-window lease, still open at the end of the run.
	ld.OnLease(leaseEv(700, 0, LeaseStarted, 3, 90))

	tot := ld.Totals()
	if tot.Leases != 0 || tot.GrantedCycles != 0 || tot.UsedCycles != 0 {
		t.Errorf("excluded leases leaked into totals: %+v", tot)
	}
	if tot.OpenAtEnd != 1 {
		t.Errorf("open at end = %d, want 1", tot.OpenAtEnd)
	}
}

// A reported hold longer than the grant (emitter bug) is clamped so the
// conservation identity cannot underflow; NoVal hold counts as the full
// grant (the lease was cut without a measured hold).
func TestLedgerHoldClamped(t *testing.T) {
	ld := NewLedger()
	ld.OnLease(leaseEv(0, 0, LeaseStarted, 1, 60))
	ld.OnLease(leaseEv(70, 0, LeaseForced, 1, 70)) // hold > granted
	ld.OnLease(leaseEv(100, 0, LeaseStarted, 1, 40))
	ld.OnLease(leaseEv(120, 0, LeaseBroken, 1, NoVal)) // unmeasured hold

	s := ld.Line(1)
	if s.GrantedCycles != 100 || s.UsedCycles != 100 || s.UnusedCycles != 0 {
		t.Errorf("clamped ledger = %+v, want granted=used=100", *s)
	}
}

// The deferral fold: a forwarded transaction charges probeDone-probe to
// its line at TxnComplete — and only then, only if it began inside the
// window. DeferredTxns counts only transactions that actually deferred.
func TestLedgerDeferFold(t *testing.T) {
	ld := NewLedger()
	ld.WindowStart = 100

	// Forwarded + deferred, in window: charged.
	ld.OnTxn(txnEv(120, 0, TxnBegin, 5, 1, 0))
	ld.OnTxn(txnEv(140, 3, TxnProbe, 5, 1, 0))
	ld.OnTxn(txnEv(140, 3, TxnDefer, 5, 1, 0))
	ld.OnTxn(txnEv(190, 3, TxnProbeDone, 5, 1, 0))
	ld.OnTxn(txnEv(200, 0, TxnComplete, 5, 1, 0))

	// Forwarded but served immediately (no TxnDefer): probe round-trip
	// cycles still fold, but it is not a deferred transaction.
	ld.OnTxn(txnEv(210, 1, TxnBegin, 5, 2, 0))
	ld.OnTxn(txnEv(220, 3, TxnProbe, 5, 2, 0))
	ld.OnTxn(txnEv(225, 3, TxnProbeDone, 5, 2, 0))
	ld.OnTxn(txnEv(230, 1, TxnComplete, 5, 2, 0))

	// Began before the window: excluded even though it completes inside.
	ld.OnTxn(txnEv(90, 2, TxnBegin, 5, 3, 0))
	ld.OnTxn(txnEv(140, 3, TxnProbe, 5, 3, 0))
	ld.OnTxn(txnEv(150, 3, TxnProbeDone, 5, 3, 0))
	ld.OnTxn(txnEv(160, 2, TxnComplete, 5, 3, 0))

	// Never completes: nothing charged.
	ld.OnTxn(txnEv(300, 0, TxnBegin, 5, 4, 0))
	ld.OnTxn(txnEv(310, 3, TxnProbe, 5, 4, 0))
	ld.OnTxn(txnEv(350, 3, TxnDefer, 5, 4, 0))

	// Fill path (never forwarded): nothing charged.
	ld.OnTxn(txnEv(400, 1, TxnBegin, 5, 5, 0))
	ld.OnTxn(txnEv(440, 1, TxnComplete, 5, 5, 0))

	s := ld.Line(5)
	if s.DeferInflictedCycles != 55 { // 50 + 5
		t.Errorf("defer inflicted = %d, want 55", s.DeferInflictedCycles)
	}
	if s.DeferredTxns != 1 {
		t.Errorf("deferred txns = %d, want 1", s.DeferredTxns)
	}
}

// OpEnd absorbs an operation into every counted open lease on the core —
// and only measured operations, and only counted leases.
func TestLedgerOpEnd(t *testing.T) {
	ld := NewLedger()
	ld.WindowStart = 100
	ld.OnLease(leaseEv(50, 0, LeaseStarted, 1, 40))  // pre-window: not counted
	ld.OnLease(leaseEv(120, 0, LeaseStarted, 2, 40)) // counted
	ld.OnLease(leaseEv(130, 1, LeaseStarted, 3, 40)) // other core

	ld.OpEnd(0, true)
	ld.OpEnd(0, false) // warm-up op: ignored
	ld.OpEnd(5, true)  // core with no leases: no-op

	ld.OnLease(leaseEv(150, 0, LeaseReleased, 1, 40))
	ld.OnLease(leaseEv(150, 0, LeaseReleased, 2, 30))
	ld.OnLease(leaseEv(150, 1, LeaseReleased, 3, 20))

	if got := ld.Line(2).OpsUnder; got != 1 {
		t.Errorf("line 2 ops under lease = %d, want 1", got)
	}
	if got := ld.Line(1).OpsUnder; got != 0 {
		t.Errorf("pre-window lease absorbed %d ops, want 0", got)
	}
	if got := ld.Line(3).OpsUnder; got != 0 {
		t.Errorf("other core's lease absorbed %d ops, want 0", got)
	}
}

// A lease acquired and released inside one operation — the common leased
// data structure pattern, where the release precedes the operation
// boundary — still absorbs that operation; an unmeasured boundary
// discards the pending credit instead.
func TestLedgerOpEndCreditsLeasesClosedInOp(t *testing.T) {
	ld := NewLedger()

	// Op 1 (measured): acquire and release two leases inside the op.
	ld.OnLease(leaseEv(100, 0, LeaseStarted, 1, 50))
	ld.OnLease(leaseEv(120, 0, LeaseReleased, 1, 20))
	ld.OnLease(leaseEv(130, 0, LeaseStarted, 2, 50))
	ld.OnLease(leaseEv(150, 0, LeaseReleased, 2, 20))
	ld.OpEnd(0, true)

	if got := ld.Line(1).OpsUnder; got != 1 {
		t.Errorf("line 1 ops = %d, want 1 (lease closed within the op)", got)
	}
	if got := ld.Line(2).OpsUnder; got != 1 {
		t.Errorf("line 2 ops = %d, want 1", got)
	}

	// Op 2 (unmeasured): its in-op lease earns nothing, and the credit
	// does not leak into the next measured boundary.
	ld.OnLease(leaseEv(200, 0, LeaseStarted, 1, 50))
	ld.OnLease(leaseEv(220, 0, LeaseReleased, 1, 20))
	ld.OpEnd(0, false)
	ld.OpEnd(0, true)
	if got := ld.Line(1).OpsUnder; got != 1 {
		t.Errorf("line 1 ops = %d after unmeasured op, want still 1", got)
	}
	if got := ld.Totals(); got.Amortization != 2.0/3.0 {
		t.Errorf("amortization = %v, want 2/3 (2 ops over 3 leases)", got.Amortization)
	}
}

// Rankings are deterministic (ties break toward the lower line address),
// zero-valued lines are omitted, and the summary's hex rendering and
// derived fields match the per-line accounting.
func TestLedgerTopAndSummary(t *testing.T) {
	ld := NewLedger()
	for _, l := range []mem.Line{0x30, 0x10, 0x20} {
		ld.OnLease(leaseEv(0, 0, LeaseStarted, l, 100))
		ld.OnLease(leaseEv(40, 0, LeaseReleased, l, 40)) // 60 wasted each
	}
	ld.OnLease(leaseEv(200, 0, LeaseStarted, 0x40, 100))
	ld.OnLease(leaseEv(300, 0, LeaseExpired, 0x40, 100)) // idle expiry: 100 wasted

	top := ld.TopWasted(3)
	if len(top) != 3 || top[0].Line != 0x40 || top[1].Line != 0x10 || top[2].Line != 0x20 {
		t.Fatalf("top wasted order = %+v", top)
	}
	if ds := ld.TopDeferInflicted(5); len(ds) != 0 {
		t.Errorf("no deferrals but top defer-inflicted = %+v", ds)
	}

	sum := ld.Summary(2)
	if len(sum.TopWasted) != 2 || sum.TopWasted[0].Line != "0x40" ||
		sum.TopWasted[0].Addr != 0x40 || sum.TopWasted[0].WastedCycles != 100 {
		t.Errorf("summary top wasted = %+v", sum.TopWasted)
	}
	raw, err := json.Marshal(sum.TopWasted[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["line"] != "0x40" {
		t.Errorf("marshaled line = %v, want 0x40", decoded["line"])
	}
	if _, ok := decoded["Addr"]; ok {
		t.Error("raw Addr field leaked into JSON")
	}
}

// Summary.Compact rewrites occupied buckets as [lo, count] pairs and
// drops the verbose form; both forms carry the same data.
func TestHistSummaryCompact(t *testing.T) {
	var h Hist
	h.Observe(3)
	h.Observe(100)
	h.Observe(100)
	s := h.Summary()
	verbose := make([][2]uint64, len(s.Buckets))
	for i, b := range s.Buckets {
		verbose[i] = [2]uint64{b.Lo, b.Count}
	}

	s.Compact()
	if len(s.Buckets) != 0 {
		t.Errorf("verbose buckets survived Compact: %+v", s.Buckets)
	}
	if !reflect.DeepEqual(s.CompactBuckets, verbose) {
		t.Errorf("compact %v != verbose pairs %v", s.CompactBuckets, verbose)
	}

	var empty Summary
	empty.Compact()
	if empty.CompactBuckets != nil {
		t.Errorf("empty summary grew compact buckets: %v", empty.CompactBuckets)
	}
}

// The zero-overhead contract for the ledger: with nobody subscribed to
// CatLease, the instrumented lease paths allocate nothing.
func TestLeaseDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	var now uint64
	b := NewBus(func() uint64 { return now })
	b.Subscribe(CatTxn, func(Event) {}) // an unrelated subscriber
	if b.Wants(CatLease) {
		t.Fatal("bus wants CatLease with no subscriber")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		b.Emit(CatLease, 0, LeaseStarted, 1, 64)
		b.Emit(CatLease, 0, LeaseReleased, 1, 40)
	})
	if allocs != 0 {
		t.Errorf("disabled CatLease emit allocates %.1f objects, want 0", allocs)
	}
}
