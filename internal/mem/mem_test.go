package mem

import (
	"testing"
	"testing/quick"
)

func TestStoreLoadRoundTrip(t *testing.T) {
	var s Store
	s.Store(64, 42)
	if got := s.Load(64); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	if got := s.Load(72); got != 0 {
		t.Fatalf("unwritten word = %d, want 0", got)
	}
}

func TestStoreAcrossPages(t *testing.T) {
	var s Store
	addrs := []Addr{8, 1 << 15, 1 << 20, 1 << 33, 1<<40 + 64}
	for i, a := range addrs {
		s.Store(a, uint64(i)+100)
	}
	for i, a := range addrs {
		if got := s.Load(a); got != uint64(i)+100 {
			t.Fatalf("Load(%#x) = %d, want %d", a, got, i+100)
		}
	}
}

func TestStoreUnalignedPanics(t *testing.T) {
	var s Store
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	s.Load(3)
}

func TestStorePropertyModel(t *testing.T) {
	// Random store/load sequences agree with a map model.
	f := func(ops []struct {
		A uint16
		V uint64
	}) bool {
		var s Store
		model := map[Addr]uint64{}
		for _, op := range ops {
			a := Addr(op.A) * WordSize
			s.Store(a, op.V)
			model[a] = op.V
		}
		for a, v := range model {
			if s.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineMath(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf boundaries wrong")
	}
	if Line(3).Base() != 192 {
		t.Fatalf("Line(3).Base() = %d, want 192", Line(3).Base())
	}
}

func TestAllocNonOverlapping(t *testing.T) {
	al := NewAllocator()
	a := al.Alloc(24)
	b := al.Alloc(8)
	if a == 0 {
		t.Fatal("allocation returned NULL address")
	}
	if b < a+24 {
		t.Fatalf("blocks overlap: a=%d (24 bytes), b=%d", a, b)
	}
	if a%WordSize != 0 || b%WordSize != 0 {
		t.Fatal("allocations not word aligned")
	}
}

func TestAllocAlignedNoFalseSharing(t *testing.T) {
	al := NewAllocator()
	al.Alloc(8) // misalign the frontier
	a := al.AllocAligned(8)
	b := al.AllocAligned(70)
	c := al.AllocAligned(8)
	if a%LineSize != 0 || b%LineSize != 0 || c%LineSize != 0 {
		t.Fatal("AllocAligned not line aligned")
	}
	if LineOf(a) == LineOf(b) || LineOf(b) == LineOf(c) || LineOf(b+64) == LineOf(c) {
		t.Fatal("AllocAligned blocks share a cache line")
	}
}

func TestAllocProperty(t *testing.T) {
	// Allocations are disjoint and aligned for arbitrary size sequences.
	f := func(sizes []uint16, aligned bool) bool {
		al := NewAllocator()
		var prevEnd Addr
		for _, sz := range sizes {
			var a Addr
			if aligned {
				a = al.AllocAligned(uint64(sz))
			} else {
				a = al.Alloc(uint64(sz))
			}
			if a < prevEnd || a == 0 {
				return false
			}
			n := uint64(sz)
			if n == 0 {
				n = WordSize
			}
			prevEnd = a + Addr(n)
			if aligned && a%LineSize != 0 {
				return false
			}
			if a%WordSize != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
