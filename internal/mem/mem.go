// Package mem models the simulated physical memory: a flat 64-bit address
// space of 8-byte words, plus a bump allocator that data structures use to
// carve out cache-line-aligned storage.
//
// The store holds architectural values only; all timing (caches, coherence)
// is modeled elsewhere. Addresses are plain uint64s in the simulated
// machine's address space, never host pointers.
package mem

import (
	"sync"
	"sync/atomic"
)

// Addr is a simulated memory address (byte-granular).
type Addr uint64

// Line identifies a cache line (Addr >> LineShift).
type Line uint64

const (
	// LineSize is the cache line size in bytes, matching the paper's
	// Table 1 (64 bytes).
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// WordSize is the access granularity in bytes.
	WordSize = 8
)

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Base returns the first address of the line.
func (l Line) Base() Addr { return Addr(l) << LineShift }

const (
	pageWords = 1 << 12 // 4096 words = 32 KiB per page
	pageShift = 12 + 3  // byte address -> page index shift
)

// Store is the backing word store. The zero value is ready to use; unwritten
// words read as zero.
//
// The page index is copy-on-write behind an atomic pointer so concurrent
// shards can access the store without a lock on the hot path: readers and
// writers of existing pages go straight to the page array, and only page
// creation takes the mutex (copying the index, then publishing the new
// snapshot). Word-level discipline is the coherence protocol's job — within
// one execution window two shards never touch the same word, because
// ownership transfer costs at least a network hop more than the lookahead.
type Store struct {
	pages atomicPages
	mu    sync.Mutex // serializes page creation only
}

type atomicPages = atomic.Pointer[map[uint64]*[pageWords]uint64]

// Load returns the 8-byte word at address a. a must be word-aligned.
func (s *Store) Load(a Addr) uint64 {
	checkAligned(a)
	m := s.pages.Load()
	if m == nil {
		return 0
	}
	p, ok := (*m)[uint64(a)>>pageShift]
	if !ok {
		return 0
	}
	return p[(uint64(a)>>3)&(pageWords-1)]
}

// Store writes the 8-byte word at address a. a must be word-aligned.
func (s *Store) Store(a Addr, v uint64) {
	checkAligned(a)
	idx := uint64(a) >> pageShift
	if m := s.pages.Load(); m != nil {
		if p, ok := (*m)[idx]; ok {
			p[(uint64(a)>>3)&(pageWords-1)] = v
			return
		}
	}
	s.page(idx)[(uint64(a)>>3)&(pageWords-1)] = v
}

// page returns the page for idx, creating and publishing it under the
// mutex if needed.
func (s *Store) page(idx uint64) *[pageWords]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.pages.Load()
	if old != nil {
		if p, ok := (*old)[idx]; ok {
			return p // another writer created it meanwhile
		}
	}
	next := make(map[uint64]*[pageWords]uint64, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	p := new([pageWords]uint64)
	next[idx] = p
	s.pages.Store(&next)
	return p
}

func checkAligned(a Addr) {
	if a%WordSize != 0 {
		panic("mem: unaligned word access")
	}
}

// Allocator hands out simulated memory. It is a simple bump allocator:
// simulated programs never free (the paper's benchmarks likewise elide
// memory reclamation; see DESIGN.md).
type Allocator struct {
	next Addr
}

// NewAllocator returns an allocator starting at a non-zero base so that
// address 0 can serve as the simulated NULL.
func NewAllocator() *Allocator {
	return &Allocator{next: LineSize} // skip line 0; addr 0 is NULL
}

// NewAllocatorAt returns an allocator whose arena starts at base. Disjoint
// fixed bases give each simulated core a private arena: allocations need
// no lock and the addresses one core sees are independent of other cores'
// allocation activity. base 0 is bumped to LineSize (NULL protection).
func NewAllocatorAt(base Addr) *Allocator {
	if base == 0 {
		base = LineSize
	}
	return &Allocator{next: base}
}

// Alloc returns a word-aligned block of at least size bytes.
func (al *Allocator) Alloc(size uint64) Addr {
	if size == 0 {
		size = WordSize
	}
	size = (size + WordSize - 1) &^ (WordSize - 1)
	a := al.next
	al.next += Addr(size)
	return a
}

// AllocAligned returns a block of at least size bytes starting on a cache
// line boundary and padded to a whole number of lines, so that no two
// AllocAligned blocks share a line. Concurrent data structures use this to
// avoid false sharing, as §7 of the paper prescribes.
func (al *Allocator) AllocAligned(size uint64) Addr {
	if rem := uint64(al.next) % LineSize; rem != 0 {
		al.next += Addr(LineSize - rem)
	}
	a := al.next
	if size == 0 {
		size = WordSize
	}
	size = (size + LineSize - 1) &^ (LineSize - 1)
	al.next += Addr(size)
	return a
}

// Brk returns the current allocation frontier (for diagnostics).
func (al *Allocator) Brk() Addr { return al.next }
