package coherence

import (
	"fmt"

	"leaserelease/internal/cache"
	"leaserelease/internal/mem"
	"leaserelease/internal/telemetry"
)

// Canonical protocol names, as accepted by machine.Config.Protocol and the
// cmds' -protocol flags.
const (
	// ProtocolMSI is the directory-based MSI protocol (Directory), the
	// substrate the paper evaluates on. The empty string also selects it.
	ProtocolMSI = "msi"
	// ProtocolTardis is the Tardis-style logical-timestamp protocol
	// (package coherence/tardis): read reservations via rts extension
	// instead of invalidation fan-out.
	ProtocolTardis = "tardis"
)

// Protocols lists the valid protocol names, in canonical order.
func Protocols() []string { return []string{ProtocolMSI, ProtocolTardis} }

// ValidProtocol reports whether name selects a known protocol. The empty
// string is valid (it means the default, MSI).
func ValidProtocol(name string) bool {
	switch name {
	case "", ProtocolMSI, ProtocolTardis:
		return true
	}
	return false
}

// ProtoStats is a snapshot of a protocol's internal counters, merged into
// machine.Stats. Renewals and RTSJumps stay zero under MSI.
type ProtoStats struct {
	// MaxQueue is the peak per-line request queue occupancy observed.
	MaxQueue int
	// DeferredProbes counts probes queued at a leased core.
	DeferredProbes uint64
	// Renewals counts tag-only timestamp renewals (Tardis: a re-read of an
	// unwritten line extends rts without a data transfer).
	Renewals uint64
	// RTSJumps counts writes whose logical commit time jumped past an
	// active read reservation — each one an invalidation fan-out that MSI
	// would have paid and Tardis did not.
	RTSJumps uint64
}

// Protocol is a pluggable coherence protocol: request admission and
// service, probe/inval delivery back through an Env, completion hand-off,
// and the state queries the dump/invariant layers need. Directory (MSI)
// and tardis.Protocol implement it; the machine depends only on this
// interface after construction.
//
// All methods must be called from engine-event context (they are not
// goroutine-safe), matching the deterministic simulation discipline.
type Protocol interface {
	// Name returns the canonical protocol name (Protocol* constants).
	Name() string

	// Submit issues a core's request at the current time; the protocol
	// calls back into its Env (probes, invalidations, Complete) as the
	// transaction progresses.
	Submit(req *Request)
	// ProbeDone resumes a probe the Env deferred behind a lease. owner is
	// the core that held the probe (the call runs in that core's context,
	// which under sharding determines the source domain of the resulting
	// messages).
	ProbeDone(owner int, req *Request)
	// Writeback records a dirty (Modified) eviction by core on line l.
	Writeback(core int, l mem.Line)
	// SharerDrop records a silent Shared eviction by core on line l.
	SharerDrop(core int, l mem.Line)

	// LineInfo reports the protocol's committed view of one line: a
	// protocol-specific state string, the owner (valid when owned), a
	// sharer/reader bitset, and whether the line is mid-transaction.
	LineInfo(l mem.Line) (state string, owner int, sharers uint64, busy bool)
	// ForEachLine visits every line the protocol has ever tracked.
	ForEachLine(fn func(l mem.Line, state string, owner int, sharers uint64, busy bool))
	// QueueLen returns the line's current request queue length (including
	// the request in service).
	QueueLen(l mem.Line) int
	// LineTimestamps reports a timestamp protocol's per-line (wts, rts);
	// ok is false for protocols without timestamps (MSI).
	LineTimestamps(l mem.Line) (wts, rts uint64, ok bool)
	// CoreTimestamp reports a timestamp protocol's per-core program
	// timestamp; ok is false for protocols without one.
	CoreTimestamp(core int) (pts uint64, ok bool)

	// VerifyLine cross-checks one non-busy line's committed protocol state
	// against the cores' L1 states (l1 reports each core's cached state)
	// and the protocol's own internal invariants — MSI agreement for the
	// directory, timestamp order (wts <= rts, reservations within rts) for
	// Tardis. It returns the first violation found.
	VerifyLine(l mem.Line, ncores int, l1 func(core int) cache.State) error

	// ProtoStats snapshots the protocol's internal counters.
	ProtoStats() ProtoStats
	// SetBus wires the telemetry bus (created lazily by the machine).
	SetBus(b *telemetry.Bus)

	// LeaseStarted and LeaseReleased notify the protocol of the core-side
	// lease lifecycle, letting a protocol with native reservation support
	// map leases onto its own mechanism: under Tardis a started lease
	// becomes a bounded rts reservation (duration is already clamped to
	// MAX_LEASE_TIME) and a release truncates it. MSI ignores both — all
	// its lease logic stays on the core side, as in the paper.
	LeaseStarted(core int, l mem.Line, duration uint64)
	LeaseReleased(core int, l mem.Line)
}

// ---- Directory's Protocol implementation ----

// Name returns ProtocolMSI.
func (d *Directory) Name() string { return ProtocolMSI }

// SetBus wires the telemetry bus into the directory.
func (d *Directory) SetBus(b *telemetry.Bus) { d.Bus = b }

// ProtoStats snapshots the directory's internal counters.
func (d *Directory) ProtoStats() ProtoStats {
	return ProtoStats{MaxQueue: d.MaxQueue, DeferredProbes: d.DeferredProbes}
}

// LineTimestamps reports ok=false: MSI has no timestamps.
func (d *Directory) LineTimestamps(mem.Line) (uint64, uint64, bool) { return 0, 0, false }

// CoreTimestamp reports ok=false: MSI has no program timestamps.
func (d *Directory) CoreTimestamp(int) (uint64, bool) { return 0, false }

// LeaseStarted is a no-op: MSI keeps all lease state on the core side.
func (d *Directory) LeaseStarted(int, mem.Line, uint64) {}

// LeaseReleased is a no-op: MSI keeps all lease state on the core side.
func (d *Directory) LeaseReleased(int, mem.Line) {}

// VerifyLine cross-checks one line's committed directory state against
// every core's L1 state: a Modified line has no second writer and no stale
// sharer, a Shared line has no writer and only recorded sharers, an
// Invalid line is cached nowhere. The caller must skip busy lines.
func (d *Directory) VerifyLine(l mem.Line, ncores int, l1 func(core int) cache.State) error {
	state, owner, sharers, _ := d.LineInfo(l)
	for c := 0; c < ncores; c++ {
		st := l1(c)
		switch state {
		case "M":
			if st == cache.Modified && c != owner {
				return fmt.Errorf("line %#x: dir owner %d but core %d holds M", uint64(l), owner, c)
			}
			if st == cache.Shared {
				return fmt.Errorf("line %#x: dir M but core %d holds S", uint64(l), c)
			}
		case "S":
			if st == cache.Modified {
				return fmt.Errorf("line %#x: dir S but core %d holds M", uint64(l), c)
			}
			if st == cache.Shared && sharers&(1<<uint(c)) == 0 {
				return fmt.Errorf("line %#x: core %d holds S but is not a recorded sharer", uint64(l), c)
			}
		case "I":
			if st != cache.Invalid {
				return fmt.Errorf("line %#x: dir I but core %d holds %v", uint64(l), c, st)
			}
		}
	}
	return nil
}

var _ Protocol = (*Directory)(nil)
