package coherence_test

import (
	"testing"

	"leaserelease/internal/cache"
	"leaserelease/internal/coherence"
	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
)

// FuzzDirectory drives the directory controller with byte-derived but
// protocol-legal interleavings of requests, writebacks, silent sharer
// drops, and probe deferrals (the lease mechanism's directory-visible
// behaviour), against a model environment that mirrors every L1 state
// transition the Env callbacks imply. At quiescence the directory's
// committed state must agree with the model: single writer, sharer-set
// containment, no copies of an Invalid line, and every request completed.
//
// The same corpus is fuzzed twice per input — once fault-free, once with
// deterministic fault injection — so injected stalls and latency jitter
// are continuously checked to be protocol-preserving.
func FuzzDirectory(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x30, 0x41, 0x52})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0x81, 0x42, 0xc3, 0x24, 0xa5, 0x66, 0xe7, 0x08, 0x99})
	f.Add([]byte{0x10, 0x21, 0x32, 0x03, 0x14, 0x25, 0x36, 0x07, 0x18, 0x29,
		0x3a, 0x0b, 0x1c, 0x2d, 0x3e, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		runDirectoryModel(t, data, faults.Config{})
		runDirectoryModel(t, data, faults.DefaultConfig())
	})
}

const (
	fzCores = 4
	fzLines = 4
)

// fuzzEnv is a model implementation of coherence.Env: it tracks the L1
// state every callback implies and flags protocol-illegal callbacks.
type fuzzEnv struct {
	t   *testing.T
	eng *sim.Engine
	d   *coherence.Directory

	// copies[c][l] is core c's modeled L1 state for line l (absent = I).
	copies [fzCores]map[mem.Line]cache.State
	// outstanding marks cores with an in-flight request.
	outstanding [fzCores]bool
	// deferred marks (core,line) pairs with a probe queued behind a
	// modeled lease; such lines are pinned (no writeback).
	deferred map[[2]uint64]bool

	// byte-driven decisions
	bytes []byte
	pos   int
}

func (e *fuzzEnv) nextByte() byte {
	if e.pos >= len(e.bytes) {
		return 0
	}
	b := e.bytes[e.pos]
	e.pos++
	return b
}

func (e *fuzzEnv) key(core int, l mem.Line) [2]uint64 {
	return [2]uint64{uint64(core), uint64(l)}
}

func (e *fuzzEnv) DeliverProbe(owner int, req *coherence.Request) bool {
	if e.deferred[e.key(owner, req.Line)] {
		e.t.Fatalf("second probe delivered to core %d for line %#x while one is deferred (Proposition 1)",
			owner, uint64(req.Line))
	}
	if _, held := e.copies[owner][req.Line]; !held {
		// Owner already evicted (writeback raced the forward): nothing to
		// downgrade.
		return false
	}
	if e.nextByte()%4 == 0 { // model a lease: defer the probe
		k := e.key(owner, req.Line)
		e.deferred[k] = true
		delay := sim.Time(e.nextByte())*7 + 1
		e.eng.After(delay, func() {
			delete(e.deferred, k)
			e.downgrade(owner, req)
			e.d.ProbeDone(owner, req)
		})
		return true
	}
	e.downgrade(owner, req)
	return false
}

func (e *fuzzEnv) downgrade(owner int, req *coherence.Request) {
	if req.Excl {
		delete(e.copies[owner], req.Line)
	} else {
		e.copies[owner][req.Line] = cache.Shared
	}
}

func (e *fuzzEnv) Invalidate(core int, line mem.Line) {
	if st, held := e.copies[core][line]; held && st == cache.Modified {
		e.t.Fatalf("invalidate sent to core %d holding line %#x Modified", core, uint64(line))
	}
	delete(e.copies[core], line)
}

func (e *fuzzEnv) Complete(req *coherence.Request, st cache.State) {
	if !e.outstanding[req.Core] {
		e.t.Fatalf("completion for core %d with no outstanding request (line %#x)",
			req.Core, uint64(req.Line))
	}
	e.outstanding[req.Core] = false
	e.copies[req.Core][req.Line] = st
}

func (e *fuzzEnv) CountMsg(coherence.MsgKind, int) {}
func (e *fuzzEnv) CountL2()                        {}
func (e *fuzzEnv) CountDRAM()                      {}

func runDirectoryModel(t *testing.T, data []byte, fcfg faults.Config) {
	eng := sim.NewEngine()
	env := &fuzzEnv{t: t, eng: eng, bytes: data, deferred: make(map[[2]uint64]bool)}
	for c := range env.copies {
		env.copies[c] = make(map[mem.Line]cache.State)
	}
	d := coherence.NewDirectory(eng, env, coherence.DefaultTiming())
	d.Faults = faults.New(fcfg, 42)
	env.d = d

	lines := make([]mem.Line, fzLines)
	for i := range lines {
		lines[i] = mem.LineOf(mem.Addr(0x1000 + i*64))
	}

	// One op per 2 bytes: [op/core/line packed, delay]. Ops are validated
	// against the model at execution time so every issued request is legal.
	var step func(i int)
	step = func(i int) {
		if i+1 >= len(data) {
			return
		}
		b, delay := data[i], sim.Time(data[i+1])
		core := int(b>>2) % fzCores
		line := lines[int(b>>4)%fzLines]
		switch b % 4 {
		case 0, 1: // read (0) or exclusive (1) request
			excl := b%4 == 1
			st, held := env.copies[core][line]
			satisfied := held && (!excl || st == cache.Modified)
			if !env.outstanding[core] && !satisfied {
				env.outstanding[core] = true
				d.Submit(&coherence.Request{Core: core, Line: line, Excl: excl})
			}
		case 2: // dirty eviction
			if st, held := env.copies[core][line]; held && st == cache.Modified &&
				!env.deferred[env.key(core, line)] {
				delete(env.copies[core], line)
				d.Writeback(core, line)
			}
		case 3: // silent Shared drop
			if st, held := env.copies[core][line]; held && st == cache.Shared {
				delete(env.copies[core], line)
				d.SharerDrop(core, line)
			}
		}
		eng.After(delay+1, func() { step(i + 2) })
	}
	eng.After(0, func() { step(0) })
	if err := eng.Drain(); err != nil {
		t.Fatalf("engine did not drain: %v", err)
	}

	// Quiescent cross-check: directory state vs the model.
	for c := range env.outstanding {
		if env.outstanding[c] {
			t.Fatalf("core %d request never completed", c)
		}
	}
	for _, l := range lines {
		state, owner, sharers, busy := d.LineInfo(l)
		if busy {
			t.Fatalf("line %#x still busy after drain", uint64(l))
		}
		writers, holders := 0, 0
		for c := 0; c < fzCores; c++ {
			st, held := env.copies[c][l]
			if !held {
				continue
			}
			holders++
			if st == cache.Modified {
				writers++
				if state != "M" || owner != c {
					t.Fatalf("line %#x: core %d holds Modified but directory says %s owner %d",
						uint64(l), c, state, owner)
				}
			}
			if sharers&(1<<uint(c)) == 0 {
				t.Fatalf("line %#x: core %d holds a copy but is not in sharer set %#x (state %s)",
					uint64(l), c, sharers, state)
			}
		}
		if writers > 1 {
			t.Fatalf("line %#x has %d writers", uint64(l), writers)
		}
		if state == "I" && holders != 0 {
			t.Fatalf("line %#x: directory says Invalid but %d cores hold copies", uint64(l), holders)
		}
		if state == "S" && writers != 0 {
			t.Fatalf("line %#x: directory says Shared but a core holds it Modified", uint64(l))
		}
	}
}
