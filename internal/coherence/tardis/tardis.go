// Package tardis implements Tardis-style logical-timestamp cache
// coherence ("Tardis 2.0: Optimized Time Traveling Coherence for Relaxed
// Consistency Models") as a second coherence.Protocol backend.
//
// Instead of tracking a sharer list and fanning out invalidations, the
// timestamp manager keeps per-line write/read timestamps (wts, rts) in the
// cycle domain:
//
//   - A read grant is a bounded reservation: the requester may keep its
//     Shared copy until an absolute expiry cycle, rts is extended to cover
//     it (rts = max(rts, grant+ReadLease)), and the copy self-invalidates
//     when the reservation elapses — no message, no directory transaction.
//   - A write to a line with unexpired reservations does not invalidate
//     them: its logical commit time jumps past rts (wts = rts+1) and the
//     stale Shared copies expire on their own. This is the fan-out MSI
//     pays and Tardis does not (counted as RTSJumps).
//   - A re-read of a line whose wts is unchanged since the reader's last
//     reservation is a tag-only renewal: the manager only extends rts, at
//     L2-tag latency, with no data transfer (counted as Renewals).
//   - Per-core program timestamps (pts) advance to the wts of every line
//     read or written, giving each core a logical position in the
//     timestamp order (exposed for dumps; physical timing is unaffected).
//
// Ownership transfer still requires a probe to the current owner —
// exactly MSI's forward path — which is where the paper's lease deferral
// plugs in unchanged: a leased owner queues the probe and the directory
// waits for ProbeDone. Leases also map natively onto the timestamp model:
// a started lease extends the owned line's rts by the lease duration
// (bounded by MAX_LEASE_TIME upstream) and a release truncates the
// extension back to what outstanding read reservations still need.
//
// Data always comes from the shared backing store, so operation results
// are exact even while stale-timing Shared copies coexist with a new
// owner; wts/rts/pts govern timing and are validated by VerifyLine
// (timestamp-order invariants), never consulted for values.
//
// The MESI Exclusive-clean option does not apply and cfg.MESI is ignored.
package tardis

import (
	"fmt"

	"leaserelease/internal/cache"
	"leaserelease/internal/coherence"
	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
	"leaserelease/internal/telemetry"
)

// Config tunes the protocol. The zero value picks defaults.
type Config struct {
	// ReadLease is the physical-cycle length of one read reservation: how
	// long a granted Shared copy stays readable before self-invalidating.
	// Longer reservations amortize more reads per fetch but delay a
	// writer's logical commit time further past rts. Default 2000.
	ReadLease uint64
}

func (c Config) withDefaults() Config {
	if c.ReadLease == 0 {
		c.ReadLease = 2000
	}
	return c
}

// reservation is one core's read grant on a line. The record outlives the
// reservation itself (end in the past) so a later re-read can check
// whether the line was written since (wts match = tag-only renewal).
type reservation struct {
	end uint64 // absolute cycle the Shared copy self-invalidates
	gen uint64 // grant generation; stale self-invalidation timers no-op
	wts uint64 // line wts at grant time (renewal check)
}

// entry is the timestamp manager's per-line state.
type entry struct {
	wts     uint64 // logical write timestamp (cycle domain)
	rts     uint64 // logical read timestamp: reads are valid through rts
	owned   bool
	owner   int
	busy    bool
	queue   []*coherence.Request
	touched bool // filled at least once (cold-miss tracking)
	res     map[int]*reservation

	// Pending transition for the request in service (at most one per
	// line), committed on complete.
	pOwned bool
	pRead  bool // grant a read reservation to the requester
	pRenew bool // served as a tag-only renewal
	pPrev  int  // previous owner to re-reserve on a read-forward, or -1
}

// Protocol is the Tardis timestamp manager (the directory-side agent).
// It implements coherence.Protocol against the same Env as the MSI
// directory, so the machine's core side is shared between backends.
type Protocol struct {
	eng *sim.Engine
	env coherence.Env
	t   coherence.Timing
	cfg Config

	entries map[mem.Line]*entry
	rng     sim.RNG
	pts     []uint64 // per-core program timestamps
	genSeq  uint64

	// MaxQueue is the peak per-line queue occupancy observed; the other
	// counters are described on coherence.ProtoStats.
	MaxQueue       int
	DeferredProbes uint64
	Renewals       uint64
	RTSJumps       uint64

	// Bus and Faults mirror Directory's fields: nil values are inert.
	Bus    *telemetry.Bus
	Faults *faults.Injector
}

// New builds a Tardis timestamp manager over the given engine and
// environment for ncores cores.
func New(eng *sim.Engine, env coherence.Env, t coherence.Timing, cfg Config, ncores int) *Protocol {
	return &Protocol{
		eng: eng, env: env, t: t, cfg: cfg.withDefaults(),
		entries: make(map[mem.Line]*entry),
		rng:     sim.NewRNG(0x7A2D15), // independent of the MSI directory's stream
		pts:     make([]uint64, ncores),
	}
}

// Name returns coherence.ProtocolTardis.
func (p *Protocol) Name() string { return coherence.ProtocolTardis }

// SetBus wires the telemetry bus.
func (p *Protocol) SetBus(b *telemetry.Bus) { p.Bus = b }

// ProtoStats snapshots the manager's internal counters.
func (p *Protocol) ProtoStats() coherence.ProtoStats {
	return coherence.ProtoStats{
		MaxQueue: p.MaxQueue, DeferredProbes: p.DeferredProbes,
		Renewals: p.Renewals, RTSJumps: p.RTSJumps,
	}
}

func (p *Protocol) entry(l mem.Line) *entry {
	e, ok := p.entries[l]
	if !ok {
		e = &entry{res: make(map[int]*reservation), pPrev: -1}
		p.entries[l] = e
	}
	return e
}

func (p *Protocol) countMsg(l mem.Line, kind coherence.MsgKind, n int) {
	p.env.CountMsg(kind, n)
	p.Bus.Emit(telemetry.CatCoherence, -1, uint8(kind), l, uint64(n))
}

func (p *Protocol) txn(req *coherence.Request, core int, kind uint8, aux uint64) {
	if req.Txn != 0 {
		p.Bus.Emit2(telemetry.CatTxn, core, kind, req.Line, req.Txn, aux)
	}
}

// jitter draws 0..NetJitter extra cycles from the manager's own RNG.
func (p *Protocol) jitter() sim.Time {
	if p.t.NetJitter == 0 {
		return 0
	}
	return p.rng.Uint64n(uint64(p.t.NetJitter) + 1)
}

// Submit issues a request from a core at the current time; one network hop
// (plus jitter) to the timestamp manager, then the line's FIFO queue.
func (p *Protocol) Submit(req *coherence.Request) {
	req.Issued = p.eng.Now()
	p.countMsg(req.Line, coherence.MsgRequest, 1)
	p.eng.After(p.t.Net+p.jitter()+p.Faults.MsgDelay(), func() { p.arrive(req) })
}

func (p *Protocol) arrive(req *coherence.Request) {
	e := p.entry(req.Line)
	e.queue = append(e.queue, req)
	occ := len(e.queue)
	if e.busy {
		occ++
	}
	if occ > p.MaxQueue {
		p.MaxQueue = occ
	}
	p.Bus.Emit(telemetry.CatDirQueue, req.Core, 0, req.Line, uint64(occ))
	p.txn(req, req.Core, telemetry.TxnArrive, uint64(occ))
	if !e.busy {
		p.serviceMaybeStalled(req.Line)
	}
}

func (p *Protocol) serviceMaybeStalled(l mem.Line) {
	if st := p.Faults.DirStall(); st > 0 {
		p.eng.After(st, func() { p.service(l) })
		return
	}
	p.service(l)
}

// canRenew reports whether core's read can be served as a tag-only
// renewal: it held a reservation on the line and the line's wts is
// unchanged since, so only rts needs extending — the data the core last
// saw is still current.
func (e *entry) canRenew(core int) bool {
	rec, ok := e.res[core]
	return ok && rec.wts == e.wts
}

// service begins processing the head of the line's queue.
func (p *Protocol) service(l mem.Line) {
	e := p.entry(l)
	if e.busy || len(e.queue) == 0 {
		return
	}
	req := e.queue[0]
	e.queue = e.queue[1:]
	e.busy = true
	e.pRenew, e.pPrev = false, -1

	switch {
	case e.owned && e.owner != req.Core:
		// Ownership transfer needs the owner's copy back: forward a probe,
		// exactly as MSI does — this is where lease deferral applies.
		if req.Excl {
			e.pOwned, e.pRead = true, false
		} else {
			e.pOwned, e.pRead = false, true
			e.pPrev = e.owner // the downgraded owner keeps a readable copy
		}
		p.txn(req, req.Core, telemetry.TxnService, 0)
		p.countMsg(l, coherence.MsgForward, 1)
		owner := e.owner
		p.eng.After(p.t.L2Tag+p.t.Net+p.Faults.MsgDelay(), func() { p.probeArrive(owner, req) })

	case !req.Excl && e.touched && e.canRenew(req.Core):
		// Tag-only renewal: wts is unchanged since the requester's last
		// reservation, so the manager only extends rts — no data access,
		// no transfer beyond the grant message.
		e.pOwned, e.pRead, e.pRenew = false, true, true
		lat := p.t.L2Tag
		p.Renewals++
		p.txn(req, req.Core, telemetry.TxnService, 0)
		if req.Txn != 0 {
			p.Bus.Emit2(telemetry.CatTxn, req.Core, telemetry.TxnRenew, l, req.Txn, uint64(lat))
		}
		p.countMsg(l, coherence.MsgReply, 1)
		p.eng.After(lat+p.t.Net+p.Faults.MsgDelay(), func() { p.complete(req) })

	default:
		// Fill from L2/DRAM (or a write to an unowned line). Note the
		// write case sends no invalidations even with unexpired read
		// reservations outstanding: the commit jumps past rts instead.
		lat := p.t.L2Tag + p.t.L2Data
		p.env.CountL2()
		if !e.touched {
			e.touched = true
			lat += p.t.DRAM
			p.env.CountDRAM()
		}
		if req.Excl {
			e.pOwned, e.pRead = true, false
		} else {
			e.pOwned, e.pRead = false, true
		}
		p.txn(req, req.Core, telemetry.TxnService, uint64(lat))
		p.countMsg(l, coherence.MsgReply, 1)
		p.eng.After(lat+p.t.Net+p.Faults.MsgDelay(), func() { p.complete(req) })
	}
}

// probeArrive runs when a forwarded probe reaches the owning core.
func (p *Protocol) probeArrive(owner int, req *coherence.Request) {
	p.txn(req, owner, telemetry.TxnProbe, 0)
	if p.env.DeliverProbe(owner, req) {
		p.DeferredProbes++
		p.txn(req, owner, telemetry.TxnDefer, 0)
		return // env calls ProbeDone on lease release/expiry
	}
	p.ownerDowngraded(req)
}

// ProbeDone resumes a deferred probe after the lease on req.Line released.
// owner (the releasing core) is unused here: Tardis always runs
// single-shard, where the source domain does not matter.
func (p *Protocol) ProbeDone(owner int, req *coherence.Request) { p.ownerDowngraded(req) }

func (p *Protocol) ownerDowngraded(req *coherence.Request) {
	p.txn(req, req.Core, telemetry.TxnProbeDone, 0)
	p.countMsg(req.Line, coherence.MsgReply, 1)
	p.countMsg(req.Line, coherence.MsgAck, 1)
	p.eng.After(p.t.Inval+p.t.Net+p.Faults.MsgDelay(), func() { p.complete(req) })
}

// reserve grants core a read reservation on l until end: the record feeds
// renewal checks and VerifyLine, and the timer self-invalidates the copy
// when the reservation elapses — costing no coherence messages.
func (p *Protocol) reserve(e *entry, core int, l mem.Line, end uint64) {
	p.genSeq++
	gen := p.genSeq
	e.res[core] = &reservation{end: end, gen: gen, wts: e.wts}
	p.eng.At(end, func() {
		rec, ok := e.res[core]
		if !ok || rec.gen != gen {
			return // re-granted, evicted, or promoted to owner meanwhile
		}
		p.env.Invalidate(core, l)
	})
}

// complete commits the pending transition, installs the line at the
// requester, and starts servicing the next queued request.
func (p *Protocol) complete(req *coherence.Request) {
	e := p.entry(req.Line)
	now := p.eng.Now()
	st := cache.Shared
	if e.pOwned {
		st = cache.Modified
		wts := now
		if e.rts >= wts {
			// Unexpired read reservations (or a logical clock already
			// ahead): the write's logical commit time jumps past rts
			// rather than invalidating the readers.
			wts = e.rts + 1
			p.RTSJumps++
		}
		e.wts, e.rts = wts, wts
		e.owned, e.owner = true, req.Core
		delete(e.res, req.Core) // the owner needs no read reservation
		p.bumpPts(req.Core, wts)
	} else {
		end := now + p.cfg.ReadLease
		if e.rts < end {
			e.rts = end
		}
		p.reserve(e, req.Core, req.Line, end)
		if e.pPrev >= 0 && e.pPrev != req.Core {
			// A read-forward downgraded the owner to Shared: its copy
			// stays readable under the same reservation bound.
			p.reserve(e, e.pPrev, req.Line, end)
		}
		e.owned = false
		p.bumpPts(req.Core, e.wts)
	}
	e.busy = false
	e.pPrev = -1
	p.txn(req, req.Core, telemetry.TxnComplete, 0)
	p.env.Complete(req, st)
	if len(e.queue) > 0 {
		p.serviceMaybeStalled(req.Line)
	}
}

func (p *Protocol) bumpPts(core int, ts uint64) {
	if core >= 0 && core < len(p.pts) && p.pts[core] < ts {
		p.pts[core] = ts
	}
}

// Writeback records a dirty eviction by core on line l: ownership is
// surrendered; timestamps persist (they describe the logical past).
func (p *Protocol) Writeback(core int, l mem.Line) {
	p.countMsg(l, coherence.MsgWriteback, 1)
	if e, ok := p.entries[l]; ok && e.owned && e.owner == core {
		e.owned = false
	}
}

// SharerDrop records a silent Shared eviction: the reservation record is
// dropped so the self-invalidation timer no-ops and a later re-read takes
// a full fill (the data is gone from the L1 either way).
func (p *Protocol) SharerDrop(core int, l mem.Line) {
	if e, ok := p.entries[l]; ok {
		delete(e.res, core)
	}
}

// LeaseStarted maps a started lease onto the timestamp model: the lease is
// a bounded rts reservation on the owned line — rts extends to cover the
// lease window (duration is clamped to MAX_LEASE_TIME upstream), declaring
// the owner's copy logically valid through the lease deadline.
func (p *Protocol) LeaseStarted(core int, l mem.Line, duration uint64) {
	e, ok := p.entries[l]
	if !ok || !e.owned || e.owner != core {
		return
	}
	if end := p.eng.Now() + duration; e.rts < end {
		e.rts = end
	}
}

// LeaseReleased truncates the lease's rts extension: rts shrinks back to
// the latest cycle something still needs it — the line's wts, now, or an
// outstanding read reservation's end — so a subsequent write commits
// without jumping past a reservation nobody holds anymore.
func (p *Protocol) LeaseReleased(core int, l mem.Line) {
	e, ok := p.entries[l]
	if !ok || !e.owned || e.owner != core {
		return
	}
	floor := e.wts
	if now := p.eng.Now(); now > floor {
		floor = now
	}
	for _, rec := range e.res {
		if rec.end > floor {
			floor = rec.end
		}
	}
	if floor < e.rts {
		e.rts = floor
	}
}

// state classifies a line for dumps and LineInfo: owned lines are "M"; an
// unowned line with a live reservation is "S"; otherwise "I". readers is
// the bitset of cores with unexpired reservations.
func (e *entry) state(now uint64) (st string, readers uint64) {
	for c, rec := range e.res {
		if rec.end >= now && c >= 0 && c < 64 {
			readers |= 1 << uint(c)
		}
	}
	switch {
	case e.owned:
		return "M", readers
	case readers != 0:
		return "S", readers
	}
	return "I", readers
}

// LineInfo reports the manager's committed view of one line.
func (p *Protocol) LineInfo(l mem.Line) (string, int, uint64, bool) {
	e, ok := p.entries[l]
	if !ok {
		return "I", 0, 0, false
	}
	st, readers := e.state(p.eng.Now())
	owner := 0
	if e.owned {
		owner = e.owner
	}
	return st, owner, readers, e.busy || len(e.queue) > 0
}

// ForEachLine visits every line the manager has ever tracked.
func (p *Protocol) ForEachLine(fn func(l mem.Line, state string, owner int, sharers uint64, busy bool)) {
	now := p.eng.Now()
	for l, e := range p.entries {
		st, readers := e.state(now)
		owner := 0
		if e.owned {
			owner = e.owner
		}
		fn(l, st, owner, readers, e.busy || len(e.queue) > 0)
	}
}

// QueueLen returns the line's current queue length (including in-service).
func (p *Protocol) QueueLen(l mem.Line) int {
	if e, ok := p.entries[l]; ok {
		n := len(e.queue)
		if e.busy {
			n++
		}
		return n
	}
	return 0
}

// LineTimestamps reports the line's (wts, rts); ok is false for a line the
// manager has never tracked.
func (p *Protocol) LineTimestamps(l mem.Line) (uint64, uint64, bool) {
	if e, ok := p.entries[l]; ok {
		return e.wts, e.rts, true
	}
	return 0, 0, false
}

// CoreTimestamp reports the core's program timestamp.
func (p *Protocol) CoreTimestamp(core int) (uint64, bool) {
	if core >= 0 && core < len(p.pts) {
		return p.pts[core], true
	}
	return 0, false
}

// VerifyLine validates the Tardis agreement and timestamp-order
// invariants for one non-busy line:
//
//   - wts <= rts (a write commits inside the line's read-valid window);
//   - a Modified L1 copy exists only at the recorded owner;
//   - a Shared L1 copy is backed by an unexpired read reservation (stale
//     copies are legal in Tardis only until their reservation elapses —
//     the self-invalidation timer enforces that bound);
//   - every reservation's expiry lies within rts.
func (p *Protocol) VerifyLine(l mem.Line, ncores int, l1 func(core int) cache.State) error {
	e, ok := p.entries[l]
	if !ok {
		return nil
	}
	now := p.eng.Now()
	if e.wts > e.rts {
		return fmt.Errorf("line %#x: wts %d exceeds rts %d", uint64(l), e.wts, e.rts)
	}
	for c := 0; c < ncores; c++ {
		switch l1(c) {
		case cache.Modified:
			if !e.owned || e.owner != c {
				rec := "unowned"
				if e.owned {
					rec = fmt.Sprintf("owner %d", e.owner)
				}
				return fmt.Errorf("line %#x: core %d holds M but timestamp manager records %s", uint64(l), c, rec)
			}
		case cache.Shared:
			rec, held := e.res[c]
			if !held {
				return fmt.Errorf("line %#x: core %d holds S with no read reservation", uint64(l), c)
			}
			if rec.end < now {
				return fmt.Errorf("line %#x: core %d Shared copy outlived its reservation (end %d, now %d)",
					uint64(l), c, rec.end, now)
			}
			if rec.end > e.rts {
				return fmt.Errorf("line %#x: core %d reservation end %d exceeds rts %d",
					uint64(l), c, rec.end, e.rts)
			}
		}
	}
	return nil
}

var _ coherence.Protocol = (*Protocol)(nil)
