// Package coherence implements a transaction-level directory-based MSI
// cache coherence protocol with per-line FIFO request queues, the substrate
// the paper's Lease/Release mechanism plugs into.
//
// The directory matches the paper's setup (§7): "The directory structure in
// Graphite implements a separate request queue per cache line" — this is
// the paper's Assumption 1, on which the MultiLease deadlock-freedom proof
// (Proposition 3) rests. One request per line is in service at a time
// (Proposition 1: at most a single outstanding request can be queued at a
// core); all others wait in the line's FIFO queue at the directory.
//
// The package owns protocol state and timing; the per-core side (L1 state
// changes, lease deferral decisions, waking the requesting core) is
// delegated to an Env implemented by the machine package, keeping this
// state machine independently testable.
package coherence

import (
	"fmt"
	"sync/atomic"

	"leaserelease/internal/cache"
	"leaserelease/internal/faults"
	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
	"leaserelease/internal/telemetry"
)

// MsgKind classifies coherence messages for traffic and energy accounting.
// The values alias the telemetry package's canonical numbering, so bus
// events carry MsgKind verbatim in Event.Kind.
type MsgKind int

const (
	// MsgRequest is a core's GetS/GetX request to the directory.
	MsgRequest = MsgKind(telemetry.MsgRequest)
	// MsgReply is a data/grant reply to the requesting core.
	MsgReply = MsgKind(telemetry.MsgReply)
	// MsgForward is a directory-to-owner probe forward.
	MsgForward = MsgKind(telemetry.MsgForward)
	// MsgInval is a directory-to-sharer invalidation.
	MsgInval = MsgKind(telemetry.MsgInval)
	// MsgAck is an acknowledgment (invalidation ack or ownership-transfer
	// notice to the directory).
	MsgAck = MsgKind(telemetry.MsgAck)
	// MsgWriteback is a dirty-eviction writeback notice.
	MsgWriteback = MsgKind(telemetry.MsgWriteback)
)

// NumMsgKinds is the number of distinct message kinds.
const NumMsgKinds = telemetry.NumMsgKinds

func (k MsgKind) String() string {
	switch k {
	case MsgRequest:
		return "request"
	case MsgReply:
		return "reply"
	case MsgForward:
		return "forward"
	case MsgInval:
		return "inval"
	case MsgAck:
		return "ack"
	case MsgWriteback:
		return "writeback"
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// Timing holds the latency parameters of the memory system beyond L1,
// in core cycles.
type Timing struct {
	Net    sim.Time // one network hop (core <-> directory/L2, core <-> core)
	L2Tag  sim.Time // L2/directory tag lookup
	L2Data sim.Time
	Inval  sim.Time // probe/invalidation processing at a core
	DRAM   sim.Time // extra latency for the first-ever (cold) fill of a line

	// NetJitter adds a deterministic pseudo-random 0..NetJitter cycles to
	// each request's network traversal, modeling mesh routing/occupancy
	// variability. Without it the fully synchronous simulation can lock
	// into unrealistically failure-free convoys (real hardware — and even
	// the loosely-synchronized Graphite — has such jitter implicitly).
	NetJitter sim.Time
}

// DefaultTiming mirrors the paper's Table 1 (L2 tag/data 3/8 cycles) with
// a 15-cycle mesh hop and 100-cycle DRAM.
func DefaultTiming() Timing {
	return Timing{Net: 15, L2Tag: 3, L2Data: 8, Inval: 2, DRAM: 100, NetJitter: 4}
}

// Request is one coherence transaction: a core asking for a line in Shared
// (Excl=false) or Modified (Excl=true) state.
type Request struct {
	Core  int
	Line  mem.Line
	Excl  bool
	Lease bool // initiated by a Lease instruction (see Config.RegularBreaksLease)

	// Txn is the transaction ID minted at the requesting core when span
	// tracing is enabled (telemetry.CatTxn has a subscriber); zero
	// otherwise. Every CatTxn event the transaction spawns — through the
	// directory, the owner's lease table, and back — carries it in
	// Event.Val, so the span assembler can reconstruct the causal tree.
	Txn uint64

	Issued sim.Time // submission time (for latency accounting)

	// newState/newOwner/newSharers: directory transition decided when the
	// request is serviced, committed on completion. exclClean marks a
	// MESI Exclusive-clean fill of a read request.
	newState   dirState
	newOwner   int
	newSharers uint64
	exclClean  bool
}

type dirState uint8

const (
	dirI dirState = iota
	dirS
	dirM
)

type dirEntry struct {
	state   dirState
	owner   int
	sharers uint64 // bitset over cores; Directory supports at most 64 cores
	busy    bool
	queue   []*Request
	touched bool // line has been filled at least once (cold-miss tracking)
}

// Env is the per-core side of the protocol, implemented by the machine.
// All methods are called from engine-event context.
type Env interface {
	// DeliverProbe presents an ownership/read probe for req.Line to the
	// owning core. If the core holds an active lease on the line (or the
	// line is part of a MultiLease group being acquired), the env queues
	// the probe and returns true; it must later call Directory.ProbeDone
	// when the lease releases. Otherwise the env downgrades its L1 copy
	// (to S for a read probe, to I for an ownership probe) and returns
	// false.
	DeliverProbe(owner int, req *Request) (deferred bool)
	// Invalidate tells a sharer core to drop its Shared copy. Never
	// deferred: leased lines are always Modified (§8: "a core leasing a
	// line demands it in Exclusive state").
	Invalidate(core int, line mem.Line)
	// Complete delivers the grant to the requester: install the line in
	// st and resume the stalled core. Called at the completion time.
	Complete(req *Request, st cache.State)
	// CountMsg accounts n coherence messages of the given kind.
	CountMsg(kind MsgKind, n int)
	// CountL2 accounts one L2 data access; CountDRAM one DRAM access.
	CountL2()
	CountDRAM()
}

// Directory is the shared-L2 directory controller.
//
// Under the sharded engine the directory's own state (entries, queues, RNG)
// lives in the system domain; every mutation of it happens in sys-domain
// events. Core-side effects (probe delivery, invalidation, grant install)
// are scheduled as events on the owning core's domain, and every
// cross-domain message carries at least Timing.Net cycles of latency — the
// conservative lookahead the windowed executor relies on.
type Directory struct {
	eng *sim.Engine
	env Env
	t   Timing

	// dom is the system domain (directory/L2/memory side); cores caches
	// per-core domain handles for scheduling core-side events.
	dom   *sim.Domain
	cores [64]*sim.Domain

	// MESI enables MESI-style Exclusive-clean fills (§8 "Other
	// Protocols"): a read fill with no other sharer is granted in
	// exclusive state, so the first subsequent write needs no upgrade
	// transaction. Lease semantics are unchanged — a lease always
	// demands exclusive state.
	MESI bool

	entries map[mem.Line]*dirEntry
	rng     sim.RNG

	// MaxQueue is the maximum per-line queue occupancy observed (§5
	// discusses leases potentially increasing directory queuing).
	MaxQueue int
	// DeferredProbes counts probes that were queued at a leased core.
	DeferredProbes uint64

	// Bus, when set, receives per-line coherence-message events
	// (telemetry.CatCoherence) and queue-pressure events
	// (telemetry.CatDirQueue). A nil bus costs one predictable branch
	// per message.
	Bus *telemetry.Bus

	// Faults, when set, injects protocol-legal perturbations: extra
	// per-hop message latency and pre-service directory stalls. Per-line
	// FIFO order is preserved — a stall delays when the head of a line's
	// queue enters service, never which request that is. A nil injector
	// is inert.
	Faults *faults.Injector
}

// NewDirectory builds a directory over the given engine and environment.
func NewDirectory(eng *sim.Engine, env Env, t Timing) *Directory {
	return &Directory{
		eng: eng, env: env, t: t,
		dom:     eng.Sys(),
		entries: make(map[mem.Line]*dirEntry),
		rng:     sim.NewRNG(0xD12EC7),
	}
}

// coreDom returns the scheduling domain of core c (the proc domains are
// keyed by core id, see Engine.Spawn).
func (d *Directory) coreDom(c int) *sim.Domain {
	if d.cores[c] == nil {
		d.cores[c] = d.eng.Domain(uint32(c))
	}
	return d.cores[c]
}

func (d *Directory) entry(l mem.Line) *dirEntry {
	e, ok := d.entries[l]
	if !ok {
		e = &dirEntry{}
		d.entries[l] = e
	}
	return e
}

// countMsg accounts n messages of one kind with the machine's counters
// and mirrors them, per line, onto the telemetry bus. dc is the domain the
// caller is executing on (the emit context routing the event to the right
// shard buffer under the parallel executor) — not necessarily the domain
// the message concerns.
func (d *Directory) countMsg(dc *sim.Domain, l mem.Line, kind MsgKind, n int) {
	d.env.CountMsg(kind, n)
	d.Bus.EmitOn(dc, telemetry.CatCoherence, -1, uint8(kind), l, uint64(n))
}

// txn emits one CatTxn span event for req from the executing domain dc.
// req.Txn == 0 (tracing disabled, or the request predates the subscriber)
// makes every site a single predictable branch.
func (d *Directory) txn(dc *sim.Domain, req *Request, core int, kind uint8, aux uint64) {
	if req.Txn != 0 {
		d.Bus.EmitOn2(dc, telemetry.CatTxn, core, kind, req.Line, req.Txn, aux)
	}
}

// Submit issues a request from a core at the current time. The request
// message takes one network hop (plus jitter) to reach the directory,
// where it enters the line's FIFO queue.
//
// Submit runs in the requesting core's domain. The message is scheduled at
// the fixed +Net lower bound (the conservative lookahead); jitter and fault
// delays are drawn at the directory in canonical arrival order, so the RNG
// draw sequence — and hence every simulated number — is identical at any
// shard count.
func (d *Directory) Submit(req *Request) {
	src := d.coreDom(req.Core)
	req.Issued = src.Now()
	d.countMsg(src, req.Line, MsgRequest, 1)
	src.CrossAt(d.dom, src.Now()+d.t.Net, func() { d.reachDir(req) })
}

// jitter draws 0..NetJitter extra cycles from the directory's RNG.
func (d *Directory) jitter() sim.Time {
	if d.t.NetJitter == 0 {
		return 0
	}
	return d.rng.Uint64n(uint64(d.t.NetJitter) + 1)
}

// reachDir runs in the directory's domain when a request has covered the
// minimum network distance; it applies the variable part of the traversal
// (jitter, injected delay) before the request enters the line's queue.
func (d *Directory) reachDir(req *Request) {
	if extra := d.jitter() + d.Faults.MsgDelay(); extra > 0 {
		d.dom.After(extra, func() { d.arrive(req) })
		return
	}
	d.arrive(req)
}

func (d *Directory) arrive(req *Request) {
	e := d.entry(req.Line)
	e.queue = append(e.queue, req)
	occ := len(e.queue)
	if e.busy {
		occ++ // include the request currently in service
	}
	if occ > d.MaxQueue {
		d.MaxQueue = occ
	}
	d.Bus.EmitOn(d.dom, telemetry.CatDirQueue, req.Core, 0, req.Line, uint64(occ))
	d.txn(d.dom, req, req.Core, telemetry.TxnArrive, uint64(occ))
	if !e.busy {
		d.serviceMaybeStalled(req.Line)
	}
}

// serviceMaybeStalled starts servicing a line's queue head, optionally
// after an injected directory stall. The stall delays only *when* the head
// enters service; service itself re-checks the busy bit, so a racing
// second schedule is harmless and per-line FIFO order is preserved.
func (d *Directory) serviceMaybeStalled(l mem.Line) {
	if st := d.Faults.DirStall(); st > 0 {
		d.dom.After(st, func() { d.service(l) })
		return
	}
	d.service(l)
}

// service begins processing the head of the line's queue. Runs in engine
// context at the directory.
func (d *Directory) service(l mem.Line) {
	e := d.entry(l)
	if e.busy || len(e.queue) == 0 {
		return
	}
	req := e.queue[0]
	e.queue = e.queue[1:]
	e.busy = true

	switch {
	case e.state == dirM && e.owner != req.Core:
		// Forward a probe to the owner; the lease mechanism may defer it
		// there. Directory tag lookup, then one hop to the owner.
		if req.Excl {
			req.newState, req.newOwner = dirM, req.Core
		} else {
			req.newState = dirS
			req.newSharers = bit(e.owner) | bit(req.Core)
		}
		d.txn(d.dom, req, req.Core, telemetry.TxnService, 0)
		d.countMsg(d.dom, l, MsgForward, 1)
		owner := e.owner
		od := d.coreDom(owner)
		d.dom.CrossAt(od, d.dom.Now()+d.t.L2Tag+d.t.Net+d.Faults.MsgDelay(),
			func() { d.probeArrive(owner, req) })

	case e.state == dirS && req.Excl:
		// Invalidate all other sharers, then grant Modified.
		req.newState, req.newOwner = dirM, req.Core
		others := e.sharers &^ bit(req.Core)
		k := countBits(others)
		dataReady := d.t.L2Tag + d.t.L2Data
		d.txn(d.dom, req, req.Core, telemetry.TxnService, uint64(dataReady))
		if k > 0 {
			d.countMsg(d.dom, l, MsgInval, k)
			d.countMsg(d.dom, l, MsgAck, k)
			for c := 0; c < 64; c++ {
				if others&bit(c) != 0 {
					c := c
					d.dom.CrossAt(d.coreDom(c), d.dom.Now()+d.t.L2Tag+d.t.Net,
						func() { d.env.Invalidate(c, l) })
				}
			}
			acksDone := d.t.L2Tag + d.t.Net + d.t.Inval + d.t.Net
			if acksDone > dataReady {
				dataReady = acksDone
			}
		}
		if extra := dataReady - (d.t.L2Tag + d.t.L2Data); extra > 0 {
			d.txn(d.dom, req, req.Core, telemetry.TxnInval, uint64(extra))
		}
		d.env.CountL2()
		d.countMsg(d.dom, l, MsgReply, 1)
		d.scheduleComplete(d.dom, d.dom.Now()+dataReady+d.t.Net+d.Faults.MsgDelay(), req)

	default:
		// Uncached fill, a read of a Shared line, or a request by the
		// recorded owner itself (possible after an eviction writeback
		// raced this request): serve from L2/DRAM.
		lat := d.t.L2Tag + d.t.L2Data
		d.env.CountL2()
		if !e.touched {
			e.touched = true
			lat += d.t.DRAM
			d.env.CountDRAM()
		}
		d.txn(d.dom, req, req.Core, telemetry.TxnService, uint64(lat))
		switch {
		case req.Excl:
			req.newState, req.newOwner = dirM, req.Core
		case d.MESI && e.state == dirI:
			// Sole reader: grant Exclusive (MESI E). The requester may
			// silently upgrade to Modified on its first write.
			req.newState, req.newOwner = dirM, req.Core
			req.exclClean = true
		default:
			req.newState = dirS
			req.newSharers = e.sharers | bit(req.Core)
		}
		d.countMsg(d.dom, l, MsgReply, 1)
		d.scheduleComplete(d.dom, d.dom.Now()+lat+d.t.Net+d.Faults.MsgDelay(), req)
	}
}

// probeArrive runs in the owning core's domain when a forwarded probe
// reaches it.
func (d *Directory) probeArrive(owner int, req *Request) {
	od := d.coreDom(owner)
	d.txn(od, req, owner, telemetry.TxnProbe, 0)
	if d.env.DeliverProbe(owner, req) {
		atomic.AddUint64(&d.DeferredProbes, 1)
		d.txn(od, req, owner, telemetry.TxnDefer, 0)
		return // env will call ProbeDone on lease release/expiry
	}
	d.ownerDowngraded(owner, req)
}

// ProbeDone resumes a deferred probe: the machine calls it from the owning
// core's context (after downgrading its L1 copy) when the lease on
// req.Line is released, voluntarily or involuntarily.
func (d *Directory) ProbeDone(owner int, req *Request) { d.ownerDowngraded(owner, req) }

// ownerDowngraded runs in the (former) owner's domain: the owner sends the
// data directly to the requester and an ownership-transfer ack to the
// directory.
func (d *Directory) ownerDowngraded(owner int, req *Request) {
	src := d.coreDom(owner)
	d.txn(src, req, req.Core, telemetry.TxnProbeDone, 0)
	d.countMsg(src, req.Line, MsgReply, 1)
	d.countMsg(src, req.Line, MsgAck, 1)
	d.scheduleComplete(src, src.Now()+d.t.Inval+d.t.Net+d.Faults.MsgDelay(), req)
}

// scheduleComplete schedules the two halves of a transaction's completion
// from domain src at time t: the grant delivery to the requesting core, and
// the directory's state commit. The grant is a core-domain event; the
// commit is a sys-domain event whose closure captures the decided
// transition (it never reads req, so the requester may immediately reuse
// the Request object). Both land at the same cycle; the event key orders
// the core delivery before the directory commit, matching the sequential
// protocol's observable order.
func (d *Directory) scheduleComplete(src *sim.Domain, t sim.Time, req *Request) {
	st := cache.Shared
	if req.Excl || req.exclClean {
		st = cache.Modified
	}
	line, core, txnID := req.Line, req.Core, req.Txn
	ns, no, nsh := req.newState, req.newOwner, req.newSharers
	dst := d.coreDom(req.Core)
	src.CrossAt(dst, t, func() {
		d.txn(dst, req, core, telemetry.TxnComplete, 0)
		d.env.Complete(req, st)
	})
	src.CrossAt(d.dom, t, func() { d.commit(line, ns, no, nsh, txnID) })
}

// commit applies the directory transition decided at service time and
// starts servicing the next queued request for the line. Runs in the
// directory's domain; it deliberately captures values rather than the
// Request, which the requester owns again by this point.
func (d *Directory) commit(l mem.Line, ns dirState, no int, nsh uint64, txnID uint64) {
	_ = txnID
	e := d.entry(l)
	e.state = ns
	e.owner = no
	e.sharers = nsh
	if e.state == dirM {
		e.sharers = bit(no)
	}
	e.busy = false
	if len(e.queue) > 0 {
		d.serviceMaybeStalled(l)
	}
}

// Writeback records a dirty eviction by core on line l. The notice takes
// one network hop to reach the directory; a transaction that races it sees
// the stale owner and resolves via the probe path (the staleness guard
// below drops the notice if ownership has already moved on).
func (d *Directory) Writeback(core int, l mem.Line) {
	src := d.coreDom(core)
	d.countMsg(src, l, MsgWriteback, 1)
	src.CrossAt(d.dom, src.Now()+d.t.Net, func() {
		e := d.entry(l)
		if e.state == dirM && e.owner == core {
			e.state = dirI
			e.sharers = 0
		}
	})
}

// SharerDrop records a silent Shared eviction (no message in MSI; the
// directory's sharer list simply goes stale, and a later invalidation to a
// non-holder is absorbed by the core). The bookkeeping update still rides
// a one-hop notification so the directory map is only touched from its own
// domain.
func (d *Directory) SharerDrop(core int, l mem.Line) {
	src := d.coreDom(core)
	src.CrossAt(d.dom, src.Now()+d.t.Net, func() {
		if e, ok := d.entries[l]; ok {
			e.sharers &^= bit(core)
		}
	})
}

// State reports the directory's view of a line (for tests/diagnostics):
// "I", "S", or "M", the owner (valid for M), and the sharer bitset.
func (d *Directory) State(l mem.Line) (state string, owner int, sharers uint64) {
	e, ok := d.entries[l]
	if !ok {
		return "I", 0, 0
	}
	switch e.state {
	case dirS:
		return "S", 0, e.sharers
	case dirM:
		return "M", e.owner, e.sharers
	}
	return "I", 0, 0
}

// LineInfo reports the full directory view of one line, including whether
// it is mid-transaction (busy, or with queued requests). Runtime checkers
// use it to validate a single line per event instead of scanning the
// whole directory.
func (d *Directory) LineInfo(l mem.Line) (state string, owner int, sharers uint64, busy bool) {
	e, ok := d.entries[l]
	if !ok {
		return "I", 0, 0, false
	}
	st := "I"
	switch e.state {
	case dirS:
		st = "S"
	case dirM:
		st = "M"
	}
	return st, e.owner, e.sharers, e.busy || len(e.queue) > 0
}

// ForEachLine visits every line the directory has ever tracked, reporting
// its committed state. busy lines are mid-transaction; checkers should
// skip them.
func (d *Directory) ForEachLine(fn func(l mem.Line, state string, owner int, sharers uint64, busy bool)) {
	for l, e := range d.entries {
		st := "I"
		switch e.state {
		case dirS:
			st = "S"
		case dirM:
			st = "M"
		}
		fn(l, st, e.owner, e.sharers, e.busy || len(e.queue) > 0)
	}
}

// QueueLen returns the current queue length for a line (tests/diagnostics).
func (d *Directory) QueueLen(l mem.Line) int {
	if e, ok := d.entries[l]; ok {
		n := len(e.queue)
		if e.busy {
			n++
		}
		return n
	}
	return 0
}

func bit(c int) uint64 {
	if c < 0 || c >= 64 {
		panic("coherence: core index out of range (directory supports <= 64 cores)")
	}
	return 1 << uint(c)
}

func countBits(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
