package coherence

import (
	"testing"

	"leaserelease/internal/cache"
	"leaserelease/internal/mem"
	"leaserelease/internal/sim"
)

// mockEnv records protocol callbacks and lets tests defer probes.
type mockEnv struct {
	t         *testing.T
	msgs      [NumMsgKinds]int
	l2, dram  int
	completes []struct {
		req *Request
		st  cache.State
		at  sim.Time
	}
	invals []struct {
		core int
		line mem.Line
	}
	probes    []*Request
	deferNext bool
	eng       *sim.Engine
}

func (m *mockEnv) DeliverProbe(owner int, req *Request) bool {
	if m.deferNext {
		m.probes = append(m.probes, req)
		return true
	}
	return false
}
func (m *mockEnv) Invalidate(core int, line mem.Line) {
	m.invals = append(m.invals, struct {
		core int
		line mem.Line
	}{core, line})
}
func (m *mockEnv) Complete(req *Request, st cache.State) {
	m.completes = append(m.completes, struct {
		req *Request
		st  cache.State
		at  sim.Time
	}{req, st, m.eng.Now()})
}
func (m *mockEnv) CountMsg(kind MsgKind, n int) { m.msgs[kind] += n }
func (m *mockEnv) CountL2()                     { m.l2++ }
func (m *mockEnv) CountDRAM()                   { m.dram++ }

func setup(t *testing.T) (*sim.Engine, *mockEnv, *Directory) {
	eng := sim.NewEngine()
	env := &mockEnv{t: t, eng: eng}
	d := NewDirectory(eng, env, Timing{Net: 10, L2Tag: 2, L2Data: 5, Inval: 1, DRAM: 50})
	return eng, env, d
}

func TestColdFillTimingAndState(t *testing.T) {
	eng, env, d := setup(t)
	req := &Request{Core: 0, Line: 7, Excl: true}
	d.Submit(req)
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(env.completes) != 1 {
		t.Fatalf("completes = %d, want 1", len(env.completes))
	}
	c := env.completes[0]
	if c.st != cache.Modified {
		t.Fatalf("state = %v, want M", c.st)
	}
	// Net + (L2Tag + L2Data + DRAM) + Net = 10+2+5+50+10 = 77.
	if c.at != 77 {
		t.Fatalf("completion at %d, want 77", c.at)
	}
	if st, owner, _ := d.State(7); st != "M" || owner != 0 {
		t.Fatalf("dir state = %s owner %d, want M/0", st, owner)
	}
	if env.dram != 1 || env.l2 != 1 {
		t.Fatalf("dram=%d l2=%d, want 1/1", env.dram, env.l2)
	}
	if env.msgs[MsgRequest] != 1 || env.msgs[MsgReply] != 1 {
		t.Fatalf("msgs = %v", env.msgs)
	}
}

func TestWarmSharedFill(t *testing.T) {
	eng, env, d := setup(t)
	d.Submit(&Request{Core: 0, Line: 3, Excl: false})
	eng.Drain()
	d.Submit(&Request{Core: 1, Line: 3, Excl: false})
	eng.Drain()
	if st, _, sharers := d.State(3); st != "S" || sharers != 0b11 {
		t.Fatalf("dir = %s sharers %b, want S/11", st, sharers)
	}
	if env.dram != 1 {
		t.Fatalf("dram = %d, want 1 (second fill is warm)", env.dram)
	}
}

func TestSharedToModifiedInvalidates(t *testing.T) {
	eng, env, d := setup(t)
	d.Submit(&Request{Core: 0, Line: 3, Excl: false})
	d.Submit(&Request{Core: 1, Line: 3, Excl: false})
	eng.Drain()
	d.Submit(&Request{Core: 1, Line: 3, Excl: true}) // upgrade, inval core 0
	eng.Drain()
	if len(env.invals) != 1 || env.invals[0].core != 0 {
		t.Fatalf("invals = %v, want core 0 only", env.invals)
	}
	if st, owner, _ := d.State(3); st != "M" || owner != 1 {
		t.Fatalf("dir = %s/%d, want M/1", st, owner)
	}
	if env.msgs[MsgInval] != 1 || env.msgs[MsgAck] != 1 {
		t.Fatalf("msgs = %v", env.msgs)
	}
}

func TestForwardToOwner(t *testing.T) {
	eng, env, d := setup(t)
	d.Submit(&Request{Core: 0, Line: 3, Excl: true})
	eng.Drain()
	d.Submit(&Request{Core: 1, Line: 3, Excl: false}) // GetS: owner downgrades to S
	eng.Drain()
	if st, _, sharers := d.State(3); st != "S" || sharers != 0b11 {
		t.Fatalf("dir = %s sharers %b, want S with both", st, sharers)
	}
	if env.msgs[MsgForward] != 1 {
		t.Fatalf("forwards = %d, want 1", env.msgs[MsgForward])
	}
}

func TestPerLineFIFOOrder(t *testing.T) {
	eng, env, d := setup(t)
	// Three writers contend on one line; completions must be FIFO by
	// submission and strictly serialized.
	d.Submit(&Request{Core: 0, Line: 9, Excl: true})
	d.Submit(&Request{Core: 1, Line: 9, Excl: true})
	d.Submit(&Request{Core: 2, Line: 9, Excl: true})
	eng.Drain()
	if len(env.completes) != 3 {
		t.Fatalf("completes = %d, want 3", len(env.completes))
	}
	for i, c := range env.completes {
		if c.req.Core != i {
			t.Fatalf("completion %d for core %d: FIFO violated", i, c.req.Core)
		}
		if i > 0 && c.at <= env.completes[i-1].at {
			t.Fatalf("completions not serialized: %v", env.completes)
		}
	}
	if st, owner, _ := d.State(9); st != "M" || owner != 2 {
		t.Fatalf("final dir = %s/%d, want M/2", st, owner)
	}
}

func TestIndependentLinesProgressIndependently(t *testing.T) {
	eng, env, d := setup(t)
	// Assumption 1: requests on distinct lines do not queue behind each
	// other.
	d.Submit(&Request{Core: 0, Line: 1, Excl: true})
	d.Submit(&Request{Core: 1, Line: 2, Excl: true})
	eng.Drain()
	if len(env.completes) != 2 {
		t.Fatal("both requests must complete")
	}
	if env.completes[0].at != env.completes[1].at {
		t.Fatalf("parallel cold fills completed at %d and %d, want same cycle",
			env.completes[0].at, env.completes[1].at)
	}
}

func TestDeferredProbeStallsLineOnly(t *testing.T) {
	eng, env, d := setup(t)
	d.Submit(&Request{Core: 0, Line: 5, Excl: true})
	eng.Drain()
	env.deferNext = true
	d.Submit(&Request{Core: 1, Line: 5, Excl: true}) // probe deferred at core 0
	d.Submit(&Request{Core: 2, Line: 6, Excl: true}) // other line: must complete
	eng.Drain()
	if len(env.probes) != 1 {
		t.Fatalf("deferred probes = %d, want 1", len(env.probes))
	}
	done := 0
	for _, c := range env.completes {
		if c.req.Core == 2 {
			done++
		}
		if c.req.Core == 1 {
			t.Fatal("deferred request completed without ProbeDone")
		}
	}
	if done != 1 {
		t.Fatal("independent line was stalled by a deferred probe")
	}
	if d.DeferredProbes != 1 {
		t.Fatalf("DeferredProbes = %d", d.DeferredProbes)
	}
	// Now release: ProbeDone resumes the stalled transaction.
	env.deferNext = false
	d.ProbeDone(0, env.probes[0])
	eng.Drain()
	if st, owner, _ := d.State(5); st != "M" || owner != 1 {
		t.Fatalf("after ProbeDone dir = %s/%d, want M/1", st, owner)
	}
}

func TestQueueBehindDeferredProbe(t *testing.T) {
	eng, env, d := setup(t)
	d.Submit(&Request{Core: 0, Line: 5, Excl: true})
	eng.Drain()
	env.deferNext = true
	d.Submit(&Request{Core: 1, Line: 5, Excl: true})
	eng.Drain()
	env.deferNext = false
	d.Submit(&Request{Core: 2, Line: 5, Excl: true}) // queues at directory
	eng.Drain()
	if got := d.QueueLen(5); got != 2 { // one in service + one queued
		t.Fatalf("QueueLen = %d, want 2", got)
	}
	d.ProbeDone(0, env.probes[0])
	eng.Drain()
	// Both queued requests complete in order; core 2's probe is NOT
	// deferred (deferNext off), so everything drains.
	if st, owner, _ := d.State(5); st != "M" || owner != 2 {
		t.Fatalf("final dir = %s/%d, want M/2", st, owner)
	}
	if d.MaxQueue < 2 {
		t.Fatalf("MaxQueue = %d, want >= 2", d.MaxQueue)
	}
}

func TestWritebackInvalidatesDirState(t *testing.T) {
	eng, _, d := setup(t)
	d.Submit(&Request{Core: 0, Line: 4, Excl: true})
	eng.Drain()
	d.Writeback(0, 4) // async: the notice takes one network hop
	eng.Drain()
	if st, _, _ := d.State(4); st != "I" {
		t.Fatalf("dir after writeback = %s, want I", st)
	}
	// Stale writeback from a non-owner is ignored.
	d.Submit(&Request{Core: 1, Line: 4, Excl: true})
	eng.Drain()
	d.Writeback(0, 4)
	eng.Drain()
	if st, owner, _ := d.State(4); st != "M" || owner != 1 {
		t.Fatalf("stale writeback clobbered dir state: %s/%d", st, owner)
	}
}

func TestSharerDrop(t *testing.T) {
	eng, _, d := setup(t)
	d.Submit(&Request{Core: 0, Line: 4, Excl: false})
	d.Submit(&Request{Core: 1, Line: 4, Excl: false})
	eng.Drain()
	d.SharerDrop(0, 4) // async: the notice takes one network hop
	eng.Drain()
	if _, _, sharers := d.State(4); sharers != 0b10 {
		t.Fatalf("sharers = %b, want 10", sharers)
	}
}
