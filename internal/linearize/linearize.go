// Package linearize checks concurrent operation histories for
// linearizability against a sequential model, in the style of Wing & Gong
// with bitset memoization (Lowe). The simulator's deterministic global
// timestamps make collecting precise invocation/response windows trivial,
// so data structure tests can assert linearizability directly instead of
// settling for conservation checks.
//
// Histories are limited to 64 completed operations (a bitset holds the
// "taken" frontier); tests use several small windows rather than one huge
// history, since checking is exponential in the worst case.
package linearize

import (
	"fmt"
	"sort"
)

// Op is one completed operation.
type Op struct {
	Thread  int
	Invoke  uint64 // timestamp at operation start
	Respond uint64 // timestamp at operation end (>= Invoke)
	Kind    string // model-specific, e.g. "push", "pop"
	Arg     uint64
	Ret     uint64
	RetOK   bool // e.g. pop on empty has RetOK=false
}

func (o Op) String() string {
	return fmt.Sprintf("t%d[%d,%d] %s(%d)=(%d,%v)",
		o.Thread, o.Invoke, o.Respond, o.Kind, o.Arg, o.Ret, o.RetOK)
}

// Model is a sequential specification. States must be immutable values:
// Apply returns a fresh state.
type Model struct {
	// Init returns the initial state.
	Init func() interface{}
	// Apply runs op on state; ok=false means the op's result is not
	// possible in this state.
	Apply func(state interface{}, op Op) (next interface{}, ok bool)
	// Key returns a canonical string for memoization.
	Key func(state interface{}) string
}

// Check reports whether history h is linearizable with respect to m.
// It panics if h has more than 64 operations.
func Check(h []Op, m Model) bool {
	if len(h) > 64 {
		panic("linearize: history longer than 64 ops")
	}
	ops := append([]Op(nil), h...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	type memoKey struct {
		taken uint64
		state string
	}
	seen := map[memoKey]bool{}

	var dfs func(taken uint64, state interface{}) bool
	dfs = func(taken uint64, state interface{}) bool {
		if taken == (uint64(1)<<len(ops))-1 {
			return true
		}
		mk := memoKey{taken, m.Key(state)}
		if seen[mk] {
			return false
		}
		seen[mk] = true
		// An op may linearize next only if no untaken op responded
		// before it was invoked.
		minResp := ^uint64(0)
		for i := range ops {
			if taken&(1<<uint(i)) == 0 && ops[i].Respond < minResp {
				minResp = ops[i].Respond
			}
		}
		for i := range ops {
			if taken&(1<<uint(i)) != 0 {
				continue
			}
			if ops[i].Invoke > minResp {
				break // ops are invoke-sorted; none later can come first
			}
			if next, ok := m.Apply(state, ops[i]); ok {
				if dfs(taken|1<<uint(i), next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(0, m.Init())
}

// --- standard models ---

// QueueModel specifies a FIFO queue of uint64s with distinct elements.
// Ops: "enq"(Arg), "deq"() -> (Ret, RetOK); RetOK=false means empty.
func QueueModel() Model {
	return Model{
		Init: func() interface{} { return []uint64{} },
		Apply: func(state interface{}, op Op) (interface{}, bool) {
			q := state.([]uint64)
			switch op.Kind {
			case "enq":
				next := make([]uint64, len(q)+1)
				copy(next, q)
				next[len(q)] = op.Arg
				return next, true
			case "deq":
				if !op.RetOK {
					return q, len(q) == 0
				}
				if len(q) == 0 || q[0] != op.Ret {
					return nil, false
				}
				return append([]uint64{}, q[1:]...), true
			}
			return nil, false
		},
		Key: keyUints,
	}
}

// StackModel specifies a LIFO stack. Ops: "push"(Arg), "pop"() ->
// (Ret, RetOK).
func StackModel() Model {
	return Model{
		Init: func() interface{} { return []uint64{} },
		Apply: func(state interface{}, op Op) (interface{}, bool) {
			s := state.([]uint64)
			switch op.Kind {
			case "push":
				next := make([]uint64, len(s)+1)
				copy(next, s)
				next[len(s)] = op.Arg
				return next, true
			case "pop":
				if !op.RetOK {
					return s, len(s) == 0
				}
				if len(s) == 0 || s[len(s)-1] != op.Ret {
					return nil, false
				}
				return append([]uint64{}, s[:len(s)-1]...), true
			}
			return nil, false
		},
		Key: keyUints,
	}
}

// SetModel specifies a set. Ops: "ins"(Arg)->RetOK (true if absent),
// "del"(Arg)->RetOK (true if present), "has"(Arg)->RetOK.
func SetModel() Model {
	return Model{
		Init: func() interface{} { return map[uint64]bool(nil) },
		Apply: func(state interface{}, op Op) (interface{}, bool) {
			s := state.(map[uint64]bool)
			in := s[op.Arg]
			clone := func(add, del bool) map[uint64]bool {
				n := make(map[uint64]bool, len(s)+1)
				for k := range s {
					n[k] = true
				}
				if add {
					n[op.Arg] = true
				}
				if del {
					delete(n, op.Arg)
				}
				return n
			}
			switch op.Kind {
			case "ins":
				if op.RetOK == in {
					return nil, false
				}
				return clone(true, false), true
			case "del":
				if op.RetOK != in {
					return nil, false
				}
				return clone(false, true), true
			case "has":
				return s, op.RetOK == in
			}
			return nil, false
		},
		Key: func(state interface{}) string {
			s := state.(map[uint64]bool)
			keys := make([]uint64, 0, len(s))
			for k := range s {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			return keyUints(keys)
		},
	}
}

// RegisterModel specifies a read/write register. Ops: "write"(Arg),
// "read"()->Ret.
func RegisterModel() Model {
	return Model{
		Init: func() interface{} { return uint64(0) },
		Apply: func(state interface{}, op Op) (interface{}, bool) {
			v := state.(uint64)
			switch op.Kind {
			case "write":
				return op.Arg, true
			case "read":
				return v, op.Ret == v
			}
			return nil, false
		},
		Key: func(state interface{}) string { return fmt.Sprint(state) },
	}
}

func keyUints(state interface{}) string {
	return fmt.Sprint(state)
}

// Recorder collects ops from simulated threads. The simulator is
// sequential, so no synchronization is needed.
type Recorder struct{ Ops []Op }

// Record appends one completed op.
func (r *Recorder) Record(thread int, invoke, respond uint64, kind string, arg, ret uint64, retOK bool) {
	r.Ops = append(r.Ops, Op{
		Thread: thread, Invoke: invoke, Respond: respond,
		Kind: kind, Arg: arg, Ret: ret, RetOK: retOK,
	})
}
