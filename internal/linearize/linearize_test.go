package linearize

import "testing"

func op(th int, inv, resp uint64, kind string, arg, ret uint64, ok bool) Op {
	return Op{Thread: th, Invoke: inv, Respond: resp, Kind: kind, Arg: arg, Ret: ret, RetOK: ok}
}

func TestQueueSequentialAccepted(t *testing.T) {
	h := []Op{
		op(0, 0, 1, "enq", 1, 0, true),
		op(0, 2, 3, "enq", 2, 0, true),
		op(0, 4, 5, "deq", 0, 1, true),
		op(0, 6, 7, "deq", 0, 2, true),
		op(0, 8, 9, "deq", 0, 0, false),
	}
	if !Check(h, QueueModel()) {
		t.Fatal("legal sequential queue history rejected")
	}
}

func TestQueueFIFOViolationRejected(t *testing.T) {
	h := []Op{
		op(0, 0, 1, "enq", 1, 0, true),
		op(0, 2, 3, "enq", 2, 0, true),
		op(1, 4, 5, "deq", 0, 2, true), // out of order!
		op(1, 6, 7, "deq", 0, 1, true),
	}
	if Check(h, QueueModel()) {
		t.Fatal("FIFO violation accepted")
	}
}

func TestQueueConcurrentOverlapAccepted(t *testing.T) {
	// Two concurrent enqueues followed by two dequeues: either order
	// works, so any dequeue order is linearizable.
	h := []Op{
		op(0, 0, 10, "enq", 1, 0, true),
		op(1, 0, 10, "enq", 2, 0, true),
		op(0, 11, 12, "deq", 0, 2, true),
		op(1, 13, 14, "deq", 0, 1, true),
	}
	if !Check(h, QueueModel()) {
		t.Fatal("valid interleaving rejected")
	}
}

func TestQueueEmptyDeqDuringWindow(t *testing.T) {
	// deq->empty overlapping an enqueue is fine (linearize deq first)...
	h := []Op{
		op(0, 0, 10, "enq", 1, 0, true),
		op(1, 0, 10, "deq", 0, 0, false),
	}
	if !Check(h, QueueModel()) {
		t.Fatal("overlapping empty-dequeue rejected")
	}
	// ...but not after the enqueue responded with nothing dequeued since.
	h2 := []Op{
		op(0, 0, 1, "enq", 1, 0, true),
		op(1, 2, 3, "deq", 0, 0, false),
	}
	if Check(h2, QueueModel()) {
		t.Fatal("impossible empty-dequeue accepted")
	}
}

func TestStackModel(t *testing.T) {
	h := []Op{
		op(0, 0, 1, "push", 1, 0, true),
		op(0, 2, 3, "push", 2, 0, true),
		op(0, 4, 5, "pop", 0, 2, true),
		op(0, 6, 7, "pop", 0, 1, true),
	}
	if !Check(h, StackModel()) {
		t.Fatal("legal LIFO history rejected")
	}
	bad := []Op{
		op(0, 0, 1, "push", 1, 0, true),
		op(0, 2, 3, "push", 2, 0, true),
		op(0, 4, 5, "pop", 0, 1, true), // FIFO order: illegal for a stack
		op(0, 6, 7, "pop", 0, 2, true),
	}
	if Check(bad, StackModel()) {
		t.Fatal("LIFO violation accepted")
	}
}

func TestSetModel(t *testing.T) {
	h := []Op{
		op(0, 0, 1, "ins", 5, 0, true),
		op(1, 2, 3, "has", 5, 0, true),
		op(0, 4, 5, "del", 5, 0, true),
		op(1, 6, 7, "has", 5, 0, false),
		op(0, 8, 9, "del", 5, 0, false),
	}
	if !Check(h, SetModel()) {
		t.Fatal("legal set history rejected")
	}
	bad := []Op{
		op(0, 0, 1, "ins", 5, 0, true),
		op(1, 2, 3, "has", 5, 0, false), // must see it
	}
	if Check(bad, SetModel()) {
		t.Fatal("lost insert accepted")
	}
}

func TestRegisterModel(t *testing.T) {
	// Classic non-linearizable register history: read sees a value, a
	// later non-overlapping read sees the older one.
	bad := []Op{
		op(0, 0, 10, "write", 1, 0, true),
		op(1, 11, 12, "read", 0, 1, true),
		op(2, 13, 14, "read", 0, 0, true), // stale after new value read
	}
	if Check(bad, RegisterModel()) {
		t.Fatal("stale read accepted")
	}
	good := []Op{
		op(0, 0, 20, "write", 1, 0, true),
		op(1, 1, 2, "read", 0, 0, true), // during the write: old value ok
		op(2, 3, 4, "read", 0, 1, true), // or new value
	}
	if !Check(good, RegisterModel()) {
		t.Fatal("valid overlapping reads rejected")
	}
}

func TestCheckPanicsOnHugeHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for >64 ops")
		}
	}()
	Check(make([]Op, 65), QueueModel())
}
