module leaserelease

go 1.22
